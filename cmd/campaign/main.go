// Command campaign coordinates one logical sweep or exploration across a
// fleet of processes: it plans a campaign directory (immutable manifest +
// unit/shard layout), runs or resumes individual shards with exact-once
// watermark checkpointing, and merges the unit reports — or any mix of
// standalone cmd/sweep / cmd/explore reports — into one campaign report.
//
// The merged result is a pure function of the campaign fingerprint and seed
// set: independent of shard count, interleaving and where shards were
// killed and resumed. CI pins this by byte-comparing a killed-and-resumed
// 3-shard campaign's canonical merge against a 1-shard reference.
//
// Examples:
//
//	campaign plan -dir runs/c1 -name c1 -explore explore.json -units 6 -shards 3
//	campaign run  -dir runs/c1 -shard 1   # one per machine/process; rerun = resume
//	campaign merge -dir runs/c1 -out c1.report.json -canonical-out c1.canonical.txt
//	campaign merge -out all.json shard1.json shard2.json shard3.json
//	campaign status -dir runs/c1
//
// Exit codes: 0 success, 2 usage or setup error (including incomplete
// campaigns and mismatched fingerprints at merge), 3 cancelled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"

	"weakestfd/internal/campaign"
	"weakestfd/internal/cliutil"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		return usageErr("want a subcommand: plan, run, resume, merge, status")
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "plan":
		return runPlan(args)
	case "run", "resume":
		// Running IS resuming: a shard continues past its watermark either way.
		return runShard(args)
	case "merge":
		return runMerge(args)
	case "status":
		return runStatus(args)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(os.Stderr, "usage: campaign <plan|run|resume|merge|status> [flags]")
		return 0
	default:
		return usageErr("unknown subcommand %q (want plan, run, resume, merge, status)", cmd)
	}
}

// runPlan writes a campaign directory's immutable manifest.
func runPlan(args []string) int {
	fs := flag.NewFlagSet("campaign plan", flag.ExitOnError)
	var (
		dir    = fs.String("dir", "", "campaign directory (created if missing)")
		name   = fs.String("name", "", "campaign name (default: base of -dir)")
		units  = fs.Int("units", 0, "work units (sweep: contiguous grid slices; explore: seeds)")
		shards = fs.Int("shards", 1, "shards the units are assigned to")
		gridF  = fs.String("grid", "", "sweep campaign: JSON grid-spec file (cmd/sweep -grid format)")
		explF  = fs.String("explore", "", "explore campaign: JSON explore-spec file")
	)
	fs.Parse(args)
	if *dir == "" {
		return usageErr("plan: -dir is required")
	}
	if (*gridF == "") == (*explF == "") {
		return usageErr("plan: want exactly one of -grid and -explore")
	}
	m := &campaign.Manifest{
		Name:   *name,
		Units:  *units,
		Shards: *shards,
	}
	if m.Name == "" {
		m.Name = baseName(*dir)
	}
	switch {
	case *gridF != "":
		m.Kind = campaign.KindSweep
		m.Grid = &cliutil.GridSpec{}
		if err := readJSON(*gridF, m.Grid); err != nil {
			return usageErr("plan: %v", err)
		}
	case *explF != "":
		m.Kind = campaign.KindExplore
		m.Explore = &campaign.ExploreSpec{}
		if err := readJSON(*explF, m.Explore); err != nil {
			return usageErr("plan: %v", err)
		}
		if *units == 0 {
			return usageErr("plan: -units is required (explore unit i runs at seed %d+i)", m.Explore.Seed)
		}
	}
	if err := campaign.Plan(*dir, m); err != nil {
		return usageErr("plan: %v", err)
	}
	fmt.Fprintf(os.Stderr, "campaign %s: planned %d %s units across %d shards in %s\n",
		m.Name, m.Units, m.Kind, m.Shards, *dir)
	fmt.Fprintf(os.Stderr, "campaign %s: fingerprint %s\n", m.Name, m.Fingerprint)
	return 0
}

// runShard executes or resumes one shard of a planned campaign.
func runShard(args []string) int {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	var (
		dir      = fs.String("dir", "", "campaign directory")
		shard    = fs.Int("shard", 1, "shard to run (1-based)")
		workers  = fs.Int("workers", 0, "worker goroutines per unit (0 = GOMAXPROCS); does not affect results")
		journals = fs.String("journals", "", "directory to dump full trace journals of retained unit failures into (replay them with cmd/replay); does not affect unit reports")
		progress = fs.Duration("progress", 0, "JSONL progress interval on stderr (0 = off); units are the progress unit")
	)
	fs.Parse(args)
	if *dir == "" {
		return usageErr("run: -dir is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var unitsDone, unitsTotal atomic.Int64
	stopProgress := cliutil.StartProgress(os.Stderr, *progress, func() cliutil.ProgressLine {
		return cliutil.ProgressLine{Tool: "campaign", Done: unitsDone.Load(), Total: unitsTotal.Load()}
	})
	done, total, err := campaign.RunShard(ctx, campaign.RunOptions{
		Dir:        *dir,
		Shard:      *shard,
		Workers:    *workers,
		Log:        os.Stderr,
		JournalDir: *journals,
		OnUnit: func(done, total int) {
			unitsDone.Store(int64(done))
			unitsTotal.Store(int64(total))
		},
	})
	stopProgress()
	switch {
	case err != nil && ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "campaign: shard %d cancelled at %d/%d units; rerun to resume\n", *shard, done, total)
		return 3
	case err != nil:
		return usageErr("run: %v", err)
	default:
		fmt.Fprintf(os.Stderr, "campaign: shard %d complete (%d/%d units)\n", *shard, done, total)
		return 0
	}
}

// runMerge folds reports into one campaign report: either a campaign
// directory's unit reports (completeness- and digest-checked) or an explicit
// list of report files.
func runMerge(args []string) int {
	fs := flag.NewFlagSet("campaign merge", flag.ExitOnError)
	var (
		dir          = fs.String("dir", "", "campaign directory to merge (all units must be complete)")
		out          = fs.String("out", "", "merged report path (default stdout)")
		canonicalOut = fs.String("canonical-out", "", "also write the canonical text rendering (the byte-comparable form)")
	)
	fs.Parse(args)
	files := fs.Args()
	if (*dir == "") == (len(files) == 0) {
		return usageErr("merge: want either -dir or a list of report files")
	}

	var inputs []campaign.Input
	if *dir != "" {
		var err error
		if inputs, err = campaign.DirInputs(*dir); err != nil {
			return usageErr("merge: %v", err)
		}
	} else {
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				return usageErr("merge: %v", err)
			}
			in, err := campaign.ReadInput(f, data)
			if err != nil {
				return usageErr("merge: %v", err)
			}
			inputs = append(inputs, in)
		}
	}

	merged, err := campaign.MergeReports(inputs)
	if err != nil {
		return usageErr("merge: %v", err)
	}
	merged.GeneratedBy = "cmd/campaign " + strings.Join(os.Args[1:], " ")
	merged.GoVersion = runtime.Version()

	if err := cliutil.WriteJSON(*out, merged); err != nil {
		fmt.Fprintf(os.Stderr, "campaign: write report: %v\n", err)
		return 2
	}
	if *canonicalOut != "" {
		if err := cliutil.WriteFileAtomic(*canonicalOut, []byte(merged.Canonical())); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: write %s: %v\n", *canonicalOut, err)
			return 2
		}
	}
	return 0
}

// runStatus prints per-shard progress.
func runStatus(args []string) int {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory")
	fs.Parse(args)
	if *dir == "" {
		return usageErr("status: -dir is required")
	}
	m, err := campaign.LoadManifest(*dir)
	if err != nil {
		return usageErr("status: %v", err)
	}
	states, err := campaign.ShardStates(*dir, m)
	if err != nil {
		return usageErr("status: %v", err)
	}
	fmt.Printf("campaign %s: kind=%s units=%d shards=%d\n", m.Name, m.Kind, m.Units, m.Shards)
	fmt.Printf("fingerprint: %s\n", m.Fingerprint)
	doneAll := true
	for _, st := range states {
		total := st.UnitHi - st.UnitLo
		state := "pending"
		switch {
		case st.Done():
			state = "done"
		case st.Watermark > 0:
			state = "running"
		}
		if !st.Done() {
			doneAll = false
		}
		fmt.Printf("shard %d: units [%d,%d) %d/%d %s\n", st.Shard, st.UnitLo, st.UnitHi, st.Watermark, total, state)
	}
	if doneAll {
		fmt.Println("all shards complete; ready to merge")
	}
	return 0
}

// readJSON strictly parses a JSON spec file.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parse %s: %v", path, err)
	}
	return nil
}

func baseName(dir string) string {
	dir = strings.TrimRight(dir, "/")
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		return dir[i+1:]
	}
	return dir
}

func usageErr(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
	return 2
}
