// Command replay re-executes a journaled run and holds it to its journal.
//
// The step scheduler makes the full record stream a pure function of
// (seed, config), so replaying a journal's embedded config must reproduce
// the recorded stream record-for-record. The default mode does exactly
// that: it rebuilds the protocol from the journal's meta, re-runs the
// scenario with a record-by-record checker attached, and either confirms a
// full match (including the byte-equal trace fingerprint) or stops at the
// first scheduler decision that differs, printing the record index,
// expected vs actual, and a window of surrounding journal context.
//
// Three offline modes need no re-execution:
//
//	replay -verify <journal>   recompute the SHA-256 over the records and
//	                           cross-check the recorded trace fingerprint
//	replay -stats <journal>    recompute the probe fold over the records and
//	                           assert it equals the live capture in the meta
//	replay -diff <a> <b>       compare two journals, reporting the first
//	                           meta or record difference
//
// Every mode that loads a single journal prints a header first: protocol,
// schema, capture mode, the per-kind record counters of the recorded trace,
// and the taint reason when the run escaped to wall-clock.
//
// And -record produces journals without needing a retained failure: it
// runs one scenario point with full capture and writes the journal —
// note that a run which only fails by hitting its wall-clock backstop
// records a *tainted* journal (the cut point is not schedule-determined),
// which replay will then refuse with the taint reason.
//
//	replay -record -proto consensus -n 5 -seed 7 -o run.journal
//
// Examples:
//
//	replay runs/journals/failure-000041.journal
//	replay -window 10 failure.journal
//	replay -verify failure.journal
//	replay -diff before.journal after.journal
//
// Exit codes: 0 full match (or verified, or identical, or recorded),
// 1 divergence (or failed verification, or differing journals), 2 usage
// or setup error (unreadable or future-schema journals, tainted runs,
// ring suffixes), 3 cancelled (SIGINT/SIGTERM).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"weakestfd/internal/cliutil"
	"weakestfd/internal/journal"
	"weakestfd/internal/probe"
	"weakestfd/internal/scenario"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		verify      = flag.Bool("verify", false, "verify the journal offline: recompute the record hash against the recorded trace fingerprint (no re-execution)")
		diff        = flag.Bool("diff", false, "compare two journals, reporting the first meta or record difference (no re-execution)")
		stats       = flag.Bool("stats", false, "recompute the probe fold offline from the journal's records, assert it matches the recorded live capture, and print it (no re-execution)")
		record      = flag.Bool("record", false, "run one scenario point with full capture and write its journal (-proto/-n/-seed/..., -o)")
		window      = flag.Int("window", 5, "journal context records shown around a divergence")
		rounds      = flag.Int("rounds", 8, "instances per run (consensus/multi; not stored in the journal meta)")
		coordinator = flag.Int("coordinator", 0, "coordinator process (twopc; not stored in the journal meta)")
		proto       = flag.String("proto", "consensus", "-record: protocol, one of "+cliutil.ProtoNames)
		n           = flag.Int("n", 5, "-record: number of processes")
		seed        = flag.Int64("seed", 1, "-record: schedule seed")
		delays      = flag.String("delays", "", "-record: delay range min:max (scenario default when empty)")
		crashes     = flag.String("crashes", "", "-record: crash schedule, entries p@time")
		timeout     = flag.Duration("timeout", 0, "-record: wall-clock backstop (scenario default when 0)")
		out         = flag.String("o", "", "-record: journal output path (required)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: replay [flags] <journal>")
		fmt.Fprintln(os.Stderr, "       replay -verify <journal>")
		fmt.Fprintln(os.Stderr, "       replay -stats <journal>")
		fmt.Fprintln(os.Stderr, "       replay -diff <a> <b>")
		fmt.Fprintln(os.Stderr, "       replay -record [-proto P -n N -seed S ...] -o <journal>")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	modes := 0
	for _, m := range []bool{*verify, *diff, *stats, *record} {
		if m {
			modes++
		}
	}
	switch {
	case modes > 1:
		return usageErr("-verify, -diff, -stats and -record are mutually exclusive")
	case *record:
		if len(args) != 0 || *out == "" {
			return usageErr("-record wants no positional arguments and a -o path")
		}
		return runRecord(*proto, *n, *rounds, *coordinator, *seed, *delays, *crashes, *timeout, *out)
	case *diff:
		if len(args) != 2 {
			return usageErr("-diff wants exactly two journals, got %d", len(args))
		}
		return runDiff(args[0], args[1])
	case *verify:
		if len(args) != 1 {
			return usageErr("-verify wants exactly one journal, got %d", len(args))
		}
		return runVerify(args[0])
	case *stats:
		if len(args) != 1 {
			return usageErr("-stats wants exactly one journal, got %d", len(args))
		}
		return runStats(args[0])
	default:
		if len(args) != 1 {
			return usageErr("want exactly one journal, got %d (see -h)", len(args))
		}
		return runReplay(args[0], *window, *rounds, *coordinator)
	}
}

// runReplay re-executes the journal's run and asserts every scheduler
// decision against the recorded stream.
func runReplay(path string, window, rounds, coordinator int) int {
	j, err := journal.ReadFile(path)
	if err != nil {
		return usageErr("%v", err)
	}
	printHeader(path, j)
	if err := j.Replayable(); err != nil {
		return usageErr("%s: %v", path, err)
	}
	var cfg scenario.Config
	if err := json.Unmarshal(j.Meta.Config, &cfg); err != nil {
		return usageErr("%s: parse journal config: %v", path, err)
	}
	if j.Meta.Protocol == "" {
		return usageErr("%s: journal records no protocol name to rebuild the run from", path)
	}
	proto, err := cliutil.BuildProtocol(j.Meta.Protocol, cfg.N, rounds, coordinator)
	if err != nil {
		return usageErr("%s: %v", path, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := scenario.Replay(ctx, proto, j)
	switch {
	case ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "replay: cancelled after %d of %d records\n", res.Matched, len(j.Records))
		return 3
	case err != nil:
		return usageErr("%s: %v", path, err)
	case res.Divergence != nil:
		fmt.Print(res.Divergence.Report(j, window))
		return 1
	default:
		fmt.Printf("replay: %s: all %d records matched; trace fingerprint %s (verdict: %s)\n",
			path, res.Matched, res.Result.TraceFingerprint, verdictWord(res.Result.Verdict.OK))
		return 0
	}
}

// runRecord runs one scenario point with full journal capture and writes
// the journal file — the no-failure-needed way to mint a replayable
// artifact (tainted captures are still written: they are inspectable, and
// the refusal belongs to replay/verify).
func runRecord(protoName string, n, rounds, coordinator int, seed int64, delays, crashes string, timeout time.Duration, out string) int {
	p, err := cliutil.BuildProtocol(protoName, n, rounds, coordinator)
	if err != nil {
		return usageErr("-record: %v", err)
	}
	opts := []scenario.Option{scenario.WithSeed(seed), scenario.WithJournal(scenario.JournalAll)}
	if delays != "" {
		dr, err := cliutil.ParseDelays(delays)
		if err != nil || len(dr) != 1 {
			return usageErr("-record: want exactly one delay range min:max, got %q", delays)
		}
		opts = append(opts, scenario.WithDelays(dr[0].Min, dr[0].Max))
	}
	if crashes != "" {
		cs, err := cliutil.ParseCrashes(crashes, n)
		if err != nil {
			return usageErr("-record: %v", err)
		}
		if len(cs) != 1 {
			return usageErr("-record: want exactly one crash schedule, got %d", len(cs))
		}
		opts = append(opts, scenario.WithCrashes(cs[0]...))
	}
	if timeout > 0 {
		opts = append(opts, scenario.WithTimeout(timeout))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res := scenario.New(n, opts...).Run(ctx, p)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "replay: -record cancelled")
		return 3
	}
	if res.Journal == nil {
		return usageErr("-record: the run produced no journal: %s", res.Verdict)
	}
	data, err := res.Journal.Encode()
	if err != nil {
		return usageErr("-record: %v", err)
	}
	if err := cliutil.WriteFileAtomic(out, data); err != nil {
		return usageErr("-record: %v", err)
	}
	if reason := res.Journal.Meta.TaintReason; reason != "" {
		fmt.Fprintf(os.Stderr, "replay: warning: recorded a tainted run (%s); the journal is inspectable but not replayable\n", reason)
	}
	fmt.Printf("replay: recorded %d records -> %s (verdict: %s, fingerprint %s)\n",
		len(res.Journal.Records), out, verdictWord(res.Verdict.OK), res.Journal.Meta.TraceFingerprint)
	return 0
}

// printHeader summarises a loaded journal before any mode acts on it: the
// protocol, schema and capture mode, the per-kind record counters of the
// recorded trace, and — when the run escaped to wall-clock — the taint
// reason, so a refused replay still tells the reader what the journal holds.
func printHeader(path string, j *journal.Journal) {
	m := j.Meta
	mode := m.Mode
	if mode == "" {
		mode = "full"
	}
	fmt.Printf("replay: %s: proto=%s schema=%d mode=%s records=%d (events=%d messages=%d timers=%d crashes=%d grants=%d)\n",
		path, m.Protocol, m.SchemaVersion, mode, len(j.Records), m.Events, m.Messages, m.Timers, m.Crashes, m.Grants)
	if m.TaintReason != "" {
		fmt.Printf("replay: %s: tainted: %s\n", path, m.TaintReason)
	}
}

// runStats recomputes the probe fold offline — a pure fold over the
// journal's records, no re-execution — asserts it equals the live capture
// stored in the journal's meta, and prints the probes. The equality is the
// point: it proves the journal and the analyzer agree on what the recorded
// schedule did.
func runStats(path string) int {
	j, err := journal.ReadFile(path)
	if err != nil {
		return usageErr("%v", err)
	}
	printHeader(path, j)
	live := j.Meta.Probes
	if live == nil {
		if j.Meta.SchemaVersion < 2 {
			return usageErr("%s: journal predates probe capture (schema %d); re-record it with a current build", path, j.Meta.SchemaVersion)
		}
		return usageErr("%s: journal carries no live probe capture to check against", path)
	}
	stream, err := j.RecomputeProbes()
	if err != nil {
		return usageErr("%s: %v", path, err)
	}
	recomputed, err := json.Marshal(stream)
	if err != nil {
		return usageErr("%s: encode recomputed probes: %v", path, err)
	}
	recorded, err := json.Marshal(live.Stream)
	if err != nil {
		return usageErr("%s: encode recorded probes: %v", path, err)
	}
	if string(recomputed) != string(recorded) {
		fmt.Fprintf(os.Stderr, "replay: %s: offline probe fold differs from the live capture\n  recorded:   %s\n  recomputed: %s\n", path, recorded, recomputed)
		return 1
	}
	fmt.Printf("replay: %s: offline probe fold over %d records matches the live capture\n", path, stream.Records)
	fmt.Printf("  stream: events=%d messages=%d timers=%d crashes=%d grants=%d exits=%d decisions=%d\n",
		stream.Events, stream.Messages, stream.Timers, stream.Crashes, stream.Grants, stream.Exits, stream.Decisions)
	fmt.Printf("  message_delay:     %s\n", probe.Summary(&stream.MessageDelay))
	fmt.Printf("  quiescence_gap:    %s\n", probe.Summary(&stream.QuiescenceGap))
	fmt.Printf("  decision_latency:  %s\n", probe.Summary(&stream.DecisionLatency))
	fmt.Printf("  decision_depth:    %s\n", probe.Summary(&stream.DecisionDepth))
	fmt.Printf("  crash_to_decision: %s\n", probe.Summary(&stream.CrashToDecision))
	for _, p := range stream.PerProcess {
		fmt.Printf("  p%d: grants=%d sends=%d deliveries=%d\n", p.Proc, p.Grants, p.Sends, p.Deliveries)
	}
	if d := live.Detection; d != nil {
		fmt.Printf("  detection (live capture): crashes=%d detected=%d missed=%d latency %s\n",
			d.Crashes, d.Detected, d.Missed, probe.Summary(&d.Latency))
	}
	return 0
}

// runVerify recomputes the record hash offline. Refusals (tainted runs,
// ring suffixes — journals that have no fingerprint to check) are setup
// errors; an actual hash mismatch is an integrity failure.
func runVerify(path string) int {
	j, err := journal.ReadFile(path)
	if err != nil {
		return usageErr("%v", err)
	}
	if j.Meta.TaintReason != "" || j.Meta.TraceFingerprint == "" || !j.Complete() {
		err := j.Verify()
		return usageErr("%s: %v", path, err)
	}
	if err := j.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "replay: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("replay: %s: verified %d records against trace fingerprint %s\n",
		path, len(j.Records), j.Meta.TraceFingerprint)
	return 0
}

// runDiff compares two journals structurally: the meta line first, then the
// record streams index by index, reporting the first difference.
func runDiff(pathA, pathB string) int {
	a, err := journal.ReadFile(pathA)
	if err != nil {
		return usageErr("%v", err)
	}
	b, err := journal.ReadFile(pathB)
	if err != nil {
		return usageErr("%v", err)
	}
	differs := false
	if metaLine(a.Meta) != metaLine(b.Meta) || !bytesEqual(a.Meta.Config, b.Meta.Config) {
		differs = true
		fmt.Printf("meta differs:\n  %s: %s\n  %s: %s\n", pathA, metaLine(a.Meta), pathB, metaLine(b.Meta))
	}
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		if a.Records[i] != b.Records[i] {
			differs = true
			fmt.Printf("record streams differ at index %d:\n  %s: %s\n  %s: %s\n",
				a.Meta.FirstIndex+i, pathA, a.Records[i], pathB, b.Records[i])
			break
		}
	}
	if !differs && len(a.Records) != len(b.Records) {
		differs = true
		long, short, longPath := a, b, pathA
		if len(b.Records) > len(a.Records) {
			long, short, longPath = b, a, pathB
		}
		fmt.Printf("record streams differ in length: %s holds %d records, %s holds %d; first extra in %s at index %d:\n  %s\n",
			pathA, len(a.Records), pathB, len(b.Records), longPath, short.Meta.FirstIndex+len(short.Records), long.Records[len(short.Records)])
	}
	if differs {
		return 1
	}
	fmt.Printf("replay: journals are identical (%d records)\n", len(a.Records))
	return 0
}

// metaLine renders a meta for diff output and comparison, eliding the
// embedded config bytes (compared separately).
func metaLine(m journal.Meta) string {
	cfg := m.Config
	m.Config = nil
	data, _ := json.Marshal(m)
	if len(cfg) > 0 {
		return fmt.Sprintf("%s (+%d-byte config)", data, len(cfg))
	}
	return string(data)
}

func bytesEqual(a, b json.RawMessage) bool { return string(a) == string(b) }

func verdictWord(ok bool) string {
	if ok {
		return "pass"
	}
	return "fail"
}

func usageErr(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "replay: "+format+"\n", args...)
	return 2
}
