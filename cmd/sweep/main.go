// Command sweep is the schedule-space grid driver: it expands a grid spec
// (flags or a JSON file) over a base scenario, fans the runs across worker
// goroutines — and, with --shard k/m, across independent processes covering
// disjoint contiguous slices of the row-major index space — streams
// progress, and emits a JSON report in the same committed-snapshot style as
// BENCH_net.json. With --minimize, the first retained failure is shrunk to
// a minimal reproducer (scenario.Minimize) before the report is written.
//
// Reports carry a schema_version and the grid fingerprint, so cmd/campaign
// can fold shard reports from independent invocations into one campaign
// report and refuse mixing reports from different grids.
//
// Examples:
//
//	sweep -proto consensus -n 5 -seeds 1-1000 -delays 1ms:50ms \
//	      -crashes '-;4@5ms;0@8ms' -progress 2s
//	sweep -proto consensus -n 5 -seeds 1-64 \
//	      -detectors 'omega-sigma,perfect,eventually-perfect{stabilize:50},eventually-strong{stabilize:50}' \
//	      -crashes '-;4@5ms'
//	sweep -proto consensus/multi -rounds 16 -seeds 1-64
//	sweep -proto nbac -seeds 1-250000 -shard 3/8 -keep -1 -out shard3.json
//
// Exit codes: 0 all runs passed, 1 spec failures, 2 usage or setup error,
// 3 cancelled (SIGINT/SIGTERM).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"weakestfd/internal/cliutil"
	"weakestfd/internal/scenario"
)

func defaultSpec() cliutil.GridSpec {
	return cliutil.GridSpec{Proto: "consensus", N: 5, Rounds: 8, Seeds: "1-16", Timeout: "30s", Keep: 8}
}

func main() {
	os.Exit(run())
}

func run() int {
	def := defaultSpec()
	var (
		proto       = flag.String("proto", def.Proto, "protocol: "+cliutil.ProtoNames)
		n           = flag.Int("n", def.N, "number of processes")
		rounds      = flag.Int("rounds", def.Rounds, "instances per run (consensus/multi)")
		coordinator = flag.Int("coordinator", def.Coordinator, "coordinator process (twopc)")
		seeds       = flag.String("seeds", def.Seeds, "seed list/ranges, e.g. 1-1000 or 1,2,7-9")
		detectors   = flag.String("detectors", def.Detectors, "detector-spec axis, e.g. 'omega-sigma,perfect,eventually-perfect{stabilize:50},eventually-strong' (empty = scenario default; registry grammar class{suspect:N,detect:N,stabilize:N,switch:N,policy:..})")
		delays      = flag.String("delays", def.Delays, "delay ranges, e.g. 0:200us,1ms:50ms (empty = scenario default)")
		crashes     = flag.String("crashes", def.Crashes, "crash schedules split by ';', entries p@time; '-' is the crash-free point, e.g. '-;4@5ms;1@2ms,3@10ms'")
		drop        = flag.Float64("drop", def.Drop, "per-message drop probability (combine with -safety-only)")
		suspicion   = flag.Int64("suspicion", def.Suspicion, "Σ/Ω suspicion delay, logical ticks")
		fsDelay     = flag.Int64("fs-delay", def.FSDelay, "FS detection delay, logical ticks")
		psiSwitch   = flag.Int64("psi-switch", def.PsiSwitch, "Ψ switch time, logical ticks")
		safetyOnly  = flag.Bool("safety-only", def.SafetyOnly, "check only safety clauses (no termination)")
		timeout     = flag.String("timeout", def.Timeout, "per-run wall-clock backstop")
		shard       = flag.String("shard", def.Shard, "shard k/m: cover slice k of m of the grid's row-major index space")
		workers     = flag.Int("workers", def.Workers, "worker goroutines (0 = GOMAXPROCS)")
		keep        = flag.Int("keep", def.Keep, "failing Results to retain in full (0 or negative = none, count only)")
		gridFile    = flag.String("grid", "", "JSON grid-spec file; explicit flags override its keys")
		out         = flag.String("out", "", "report path (default stdout)")
		minimize    = flag.Bool("minimize", false, "shrink the first retained failure to a minimal reproducer")
		probes      = flag.Bool("probes", def.Probes, "fold per-run trace probes into the report's aggregates (step mode only)")
		progress    = flag.Duration("progress", 0, "JSONL progress interval on stderr (0 = off)")
	)
	var prof cliutil.ProfileFlags
	prof.Register(flag.CommandLine)
	var journals cliutil.JournalFlags
	journals.Register(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		return usageErr("%v", err)
	}
	defer prof.Stop()

	sp := def
	if *gridFile != "" {
		data, err := os.ReadFile(*gridFile)
		if err != nil {
			return usageErr("read grid spec: %v", err)
		}
		if err := json.Unmarshal(data, &sp); err != nil {
			return usageErr("parse grid spec %s: %v", *gridFile, err)
		}
	}
	// Explicit flags win over the spec file.
	overlay := map[string]func(){
		"proto": func() { sp.Proto = *proto }, "n": func() { sp.N = *n },
		"rounds": func() { sp.Rounds = *rounds }, "coordinator": func() { sp.Coordinator = *coordinator },
		"seeds": func() { sp.Seeds = *seeds }, "detectors": func() { sp.Detectors = *detectors },
		"delays":  func() { sp.Delays = *delays },
		"crashes": func() { sp.Crashes = *crashes }, "drop": func() { sp.Drop = *drop },
		"suspicion": func() { sp.Suspicion = *suspicion }, "fs-delay": func() { sp.FSDelay = *fsDelay },
		"psi-switch": func() { sp.PsiSwitch = *psiSwitch }, "safety-only": func() { sp.SafetyOnly = *safetyOnly },
		"timeout": func() { sp.Timeout = *timeout }, "shard": func() { sp.Shard = *shard },
		"workers": func() { sp.Workers = *workers }, "keep": func() { sp.Keep = *keep },
		"probes": func() { sp.Probes = *probes },
	}
	flag.Visit(func(f *flag.Flag) {
		if apply, ok := overlay[f.Name]; ok {
			apply()
		}
	})

	base, grid, p, err := cliutil.BuildGrid(sp)
	if err != nil {
		return usageErr("%v", err)
	}
	if *minimize && grid.KeepFailures == scenario.KeepAllCounts {
		// Minimisation needs a retained failure to start from.
		fmt.Fprintln(os.Stderr, "sweep: -minimize needs a retained failure; keeping 1 despite -keep")
		grid.KeepFailures = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lo, hi := grid.Shard.Bounds(grid.Size())
	var done, passed atomic.Int64
	grid.OnRun = func(_ int, res *scenario.Result) {
		done.Add(1)
		if res.Verdict.OK {
			passed.Add(1)
		}
	}
	stopProgress := cliutil.StartProgress(os.Stderr, *progress, func() cliutil.ProgressLine {
		d := done.Load()
		ok := passed.Load()
		return cliutil.ProgressLine{Tool: "sweep", Done: d, Total: int64(hi - lo), Passed: ok, Failed: d - ok}
	})

	res := scenario.Sweep(ctx, base, grid, p)
	stopProgress()

	rep := cliutil.SweepReport{
		SchemaVersion:   cliutil.ReportSchemaVersion,
		GeneratedBy:     "cmd/sweep " + strings.Join(os.Args[1:], " "),
		GoVersion:       runtime.Version(),
		GridFingerprint: grid.Fingerprint(base.Config()),
		Proto:           p.Name(),
		N:               sp.N,
		GridSize:        res.GridSize,
		Shard:           sp.Shard,
		IndexLo:         res.IndexLo,
		IndexHi:         res.IndexHi,
		Runs:            res.Runs,
		Passed:          res.Passed,
		Faulted:         res.Faulted,
		Cancelled:       res.Cancelled,
		ElapsedMS:       float64(res.Elapsed) / float64(time.Millisecond),
		RunsPerSec:      res.RunsPerSec,
		Probes:          res.Probes,
	}
	for _, d := range res.Detectors {
		rep.Detectors = append(rep.Detectors, cliutil.DetectorReport(d))
	}
	for i, f := range res.Failures {
		rep.Failures = append(rep.Failures, cliutil.FailureReport{
			Index:       res.FailureIndices[i],
			Violations:  f.Verdict.Violations,
			Fingerprint: f.Fingerprint(),
			Config:      f.Config,
		})
	}
	if journals.Enabled() && ctx.Err() == nil {
		for i, f := range res.Failures {
			name := fmt.Sprintf("failure-%06d", res.FailureIndices[i])
			path, err := journals.Dump(ctx, name, f.Config, p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "sweep: journaled failure %d -> %s\n", res.FailureIndices[i], path)
		}
	}
	if *minimize && len(res.Failures) > 0 && ctx.Err() == nil {
		min, err := scenario.Minimize(ctx, res.Failures[0].Config, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: minimize: %v\n", err)
		} else {
			rep.Minimized = &cliutil.MinimizedReport{
				FromIndex:   res.FailureIndices[0],
				Candidates:  min.Candidates,
				Violations:  min.Result.Verdict.Violations,
				Fingerprint: min.Fingerprint,
				Config:      min.Config,
			}
		}
	}

	if err := cliutil.WriteJSON(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: write report: %v\n", err)
		return 2
	}

	switch {
	case ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "sweep: cancelled after %d of %d runs\n", res.Runs-res.Cancelled, res.Runs)
		return 3
	case res.Faulted > 0:
		fmt.Fprintf(os.Stderr, "sweep: %d of %d runs violated the spec\n", res.Faulted, res.Runs)
		return 1
	default:
		return 0
	}
}

func usageErr(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	return 2
}
