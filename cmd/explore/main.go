// Command explore is the coverage-guided schedule-space driver: instead of
// expanding a uniform grid like cmd/sweep, it runs internal/explore's
// fuzzer-style loop — a corpus of behaviour-novel configurations, seeded
// deterministic mutators, an energy schedule chasing the edge where
// behaviour last changed — minimises the failures it finds, and optionally
// locates per-class solvability boundaries with -frontier.
//
// The whole run is a pure function of -seed (for schedule-determined
// protocols, no -wall budget, -depth-signal off): re-invoking with the same
// flags reproduces the report byte-for-byte up to the timing fields
// (elapsed_ms, explore_runs_per_sec), which is asserted by CI.
//
// Persistence flags connect explorations across invocations and machines:
// -corpus-in seeds this run with a serialized corpus (a -corpus-out file or
// any explore report), -corpus-out serializes this run's corpus state, and
// -frontier-state checkpoints the frontier bisection after every run so an
// interrupted search resumes losing at most one run. Reports carry a
// schema_version and a space fingerprint, so cmd/campaign can fold
// differently-seeded reports into one campaign report and refuse mixing
// incompatible searches.
//
// Examples:
//
//	explore -proto consensus -n 5 -seed 7 -runs 500 \
//	    -classes 'omega-sigma,perfect,eventually-perfect{stabilize:50},eventually-strong{stabilize:50}' \
//	    -timeout 250ms -minimize 3 -progress 2s
//	explore -proto consensus -n 5 -runs 200 \
//	    -frontier 'eventually-perfect:stabilize:100000;eventually-strong:stabilize:1000' \
//	    -frontier-seeds 1,2,3 -frontier-state frontier.json
//	explore -proto consensus -n 5 -seed 8 -runs 500 \
//	    -corpus-in gen1.corpus.json -corpus-out gen2.corpus.json
//
// Exit codes: 0 exploration completed (found failures are a result, not an
// error), 2 usage or setup error, 3 cancelled (SIGINT/SIGTERM).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"weakestfd/internal/cliutil"
	"weakestfd/internal/explore"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/scenario"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		proto         = flag.String("proto", "consensus", "protocol: "+cliutil.ProtoNames)
		n             = flag.Int("n", 5, "number of processes")
		rounds        = flag.Int("rounds", 8, "instances per run (consensus/multi)")
		coordinator   = flag.Int("coordinator", 0, "coordinator process (twopc)")
		seed          = flag.Int64("seed", 1, "master seed; the whole exploration is a pure function of it")
		runs          = flag.Int("runs", 256, "exploration run budget")
		wall          = flag.Duration("wall", 0, "wall-clock budget (0 = none; a wall-bounded run is not reproducible)")
		batch         = flag.Int("batch", 0, "generation size (0 = default)")
		workers       = flag.Int("workers", 0, "concurrent runs per generation (0 = GOMAXPROCS)")
		classes       = flag.String("classes", "omega-sigma,perfect,eventually-perfect{stabilize:50},eventually-strong{stabilize:50}", "detector-class alphabet the class mutator swaps between (registry grammar)")
		crashes       = flag.String("crashes", "", "base crash schedule, entries p@time (mutators edit it; frontier probes run it as-is)")
		delays        = flag.String("delays", "1ms:3ms", "base delay range min:max")
		timeout       = flag.Duration("timeout", 250*time.Millisecond, "per-run wall-clock backstop (genuine non-termination failures each cost this)")
		safetyOnly    = flag.Bool("safety-only", false, "check only safety clauses; also arms the drop-rate mutator")
		minimize      = flag.Int("minimize", 3, "distinct failure signatures to minimize (0 or negative = none)")
		depthSignal   = flag.Bool("depth-signal", false, "mix suspect-history depth into the novelty signature (trades reproducibility for sensitivity)")
		traceSignal   = flag.Bool("trace-signal", false, "mix the step scheduler's bucketed trace shape into the novelty signature (stays byte-reproducible)")
		frontier      = flag.String("frontier", "", "frontier axes 'class:param:max' split by ';', e.g. 'eventually-perfect:stabilize:100000;eventually-strong:stabilize:1000'")
		frontierSeeds = flag.String("frontier-seeds", "", "probe seeds for the frontier search (default: the master seed)")
		frontierState = flag.String("frontier-state", "", "frontier checkpoint file: resumed from if present, rewritten after every probe run")
		corpusIn      = flag.String("corpus-in", "", "seed corpus file (a -corpus-out file or any explore report)")
		corpusOut     = flag.String("corpus-out", "", "serialize the final corpus state here (atomic write)")
		out           = flag.String("out", "", "report path (default stdout)")
		progress      = flag.Duration("progress", 0, "JSONL progress interval on stderr (0 = off)")
	)
	var prof cliutil.ProfileFlags
	prof.Register(flag.CommandLine)
	var journals cliutil.JournalFlags
	journals.Register(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		return usageErr("%v", err)
	}
	defer prof.Stop()

	p, err := cliutil.BuildProtocol(*proto, *n, *rounds, *coordinator)
	if err != nil {
		return usageErr("%v", err)
	}
	alphabet, err := cliutil.ParseDetectors(*classes)
	if err != nil {
		return usageErr("classes: %v", err)
	}
	delayRanges, err := cliutil.ParseDelays(*delays)
	if err != nil || len(delayRanges) != 1 {
		return usageErr("delays: want exactly one min:max range (got %q)", *delays)
	}
	axes, err := parseFrontier(*frontier)
	if err != nil {
		return usageErr("frontier: %v", err)
	}
	probeSeeds, probeSpan, err := cliutil.ParseSeeds(*frontierSeeds)
	if err != nil {
		return usageErr("frontier-seeds: %v", err)
	}
	// Every frontier probe costs one run per seed, so the cap applies to the
	// expanded list regardless of which syntax produced it.
	const maxProbeSeeds = 64
	if total := len(probeSeeds) + probeSpan.N; total > maxProbeSeeds {
		return usageErr("frontier-seeds: %d probe seeds is past any useful confirmation depth (max %d)", total, maxProbeSeeds)
	}
	for i := 0; i < probeSpan.N; i++ {
		probeSeeds = append(probeSeeds, probeSpan.From+int64(i))
	}

	var seedCorpus *explore.CorpusState
	if *corpusIn != "" {
		data, err := os.ReadFile(*corpusIn)
		if err != nil {
			return usageErr("corpus-in: %v", err)
		}
		// Accept either a serialized corpus state or a full explore report
		// (whose corpus doubles as a seedable state).
		if sw, ex, err := cliutil.ReadAnyReport(*corpusIn, data); err == nil {
			if sw != nil {
				return usageErr("corpus-in %s: is a sweep report, which carries no corpus", *corpusIn)
			}
			seedCorpus = ex.CorpusState()
		} else if seedCorpus, err = explore.LoadCorpus(data); err != nil {
			return usageErr("corpus-in %s: %v", *corpusIn, err)
		}
	}

	baseSchedules, err := cliutil.ParseCrashes(*crashes, *n)
	if err != nil {
		return usageErr("crashes: %v", err)
	}
	if len(baseSchedules) > 1 {
		return usageErr("crashes: the base takes one schedule, not %d (the mutators explore variants)", len(baseSchedules))
	}
	baseOpts := []scenario.Option{
		scenario.WithSeed(*seed),
		scenario.WithDelays(delayRanges[0].Min, delayRanges[0].Max),
		scenario.WithTimeout(*timeout),
	}
	if len(baseSchedules) == 1 {
		baseOpts = append(baseOpts, scenario.WithCrashes(baseSchedules[0]...))
	}
	if *safetyOnly {
		baseOpts = append(baseOpts, scenario.WithSafetyOnly())
	}
	base := scenario.New(*n, baseOpts...).Config()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The CLI has no sentinel baggage: 0 means "no minimisation", unlike the
	// library's 0 → default-of-3 (the same contract cmd/sweep gives -keep).
	minimizeLimit := *minimize
	if minimizeLimit <= 0 {
		minimizeLimit = -1
	}

	var done, failed atomic.Int64
	opts := explore.Options{
		Seed:          *seed,
		Runs:          *runs,
		Wall:          *wall,
		Batch:         *batch,
		Workers:       *workers,
		Proto:         p,
		Base:          base,
		Classes:       alphabet,
		MinimizeLimit: minimizeLimit,
		DepthSignal:   *depthSignal,
		TraceSignal:   *traceSignal,
		SeedCorpus:    seedCorpus,
		OnRun: func(_ int, res *scenario.Result) {
			done.Add(1)
			if !res.Verdict.OK {
				failed.Add(1)
			}
		},
	}
	stopProgress := cliutil.StartProgress(os.Stderr, *progress, func() cliutil.ProgressLine {
		return cliutil.ProgressLine{Tool: "explore", Done: done.Load(), Total: int64(*runs), Failed: failed.Load()}
	})

	rep, err := explore.Explore(ctx, opts)
	stopProgress()
	if err != nil {
		return usageErr("%v", err)
	}

	var outRep cliutil.ExploreReport
	outRep.FromExplore(rep)
	outRep.GeneratedBy = "cmd/explore " + strings.Join(os.Args[1:], " ")
	outRep.GoVersion = runtime.Version()
	outRep.SpaceFingerprint = explore.SpaceFingerprint(opts)
	outRep.ElapsedMS = float64(rep.Elapsed) / float64(time.Millisecond)
	outRep.RunsPerSec = rep.RunsPerSec

	if journals.Enabled() && ctx.Err() == nil {
		for _, f := range rep.Failures {
			name := fmt.Sprintf("failure-run%06d", f.Run)
			path, err := journals.Dump(ctx, name, f.Config, p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "explore: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "explore: journaled failure at run %d -> %s\n", f.Run, path)
		}
	}

	if *corpusOut != "" {
		data, err := rep.CorpusState().Marshal()
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore: corpus-out: %v\n", err)
			return 2
		}
		if err := cliutil.WriteFileAtomic(*corpusOut, data); err != nil {
			fmt.Fprintf(os.Stderr, "explore: corpus-out %s: %v\n", *corpusOut, err)
			return 2
		}
	}

	if len(axes) > 0 && ctx.Err() == nil {
		seeds := probeSeeds
		if len(seeds) == 0 {
			seeds = []int64{base.Seed}
		}
		var state *explore.FrontierState
		var checkpoint func(*explore.FrontierState) error
		if *frontierState != "" {
			if data, err := os.ReadFile(*frontierState); err == nil {
				if state, err = explore.LoadFrontierState(data); err != nil {
					return usageErr("frontier-state %s: %v", *frontierState, err)
				}
			} else if !os.IsNotExist(err) {
				return usageErr("frontier-state: %v", err)
			}
			checkpoint = func(st *explore.FrontierState) error {
				data, err := st.Marshal()
				if err != nil {
					return err
				}
				return cliutil.WriteFileAtomic(*frontierState, data)
			}
		}
		bounds, err := explore.FrontierResume(ctx, base, p, axes, seeds, state, checkpoint)
		outRep.Frontier = bounds
		for _, b := range bounds {
			outRep.FrontierRuns += b.Runs
			fmt.Fprintf(os.Stderr, "explore: frontier %s:%s = %s\n", b.Spec, b.Param, describeBoundary(b))
		}
		if err != nil && ctx.Err() == nil {
			return usageErr("frontier: %v", err)
		}
	}

	if err := cliutil.WriteJSON(*out, outRep); err != nil {
		fmt.Fprintf(os.Stderr, "explore: write report: %v\n", err)
		return 2
	}

	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "explore: cancelled after %d of %d runs\n", rep.Runs, rep.Budget)
		return 3
	}
	fmt.Fprintf(os.Stderr, "explore: %d runs, %d behaviour classes, %d failure signatures (%d minimized)\n",
		rep.Runs, rep.Novel, len(rep.Failures), len(rep.Minimized))
	return 0
}

// parseFrontier parses ';'-separated axes 'class:param:max'; the class may
// carry a {...} parameter block (colons inside it do not split).
func parseFrontier(s string) ([]explore.Axis, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var axes []explore.Axis
	for _, entry := range strings.Split(s, ";") {
		if strings.TrimSpace(entry) == "" {
			continue
		}
		parts, err := cliutil.SplitTopLevel(strings.TrimSpace(entry), ':')
		if err != nil {
			return nil, err
		}
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad axis %q (want class:param:max)", entry)
		}
		spec, err := fd.ParseSpec(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, err
		}
		maxTicks, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil || maxTicks <= 0 {
			return nil, fmt.Errorf("bad axis ceiling %q (want positive ticks)", parts[2])
		}
		axis := explore.Axis{Spec: spec, Param: strings.TrimSpace(parts[1]), Max: model.Time(maxTicks)}
		if err := explore.ValidateAxis(axis); err != nil {
			return nil, err
		}
		axes = append(axes, axis)
	}
	return axes, nil
}

// describeBoundary renders a boundary for the progress stream.
func describeBoundary(b explore.Boundary) string {
	switch {
	case b.Unsolvable:
		return "unsolvable at any quality"
	case b.Censored:
		return fmt.Sprintf("passes through the ceiling %d", b.Max)
	case b.Inverted:
		return fmt.Sprintf("min passing %d, max failing %d", b.MinPassing, b.MaxFailing)
	default:
		return fmt.Sprintf("max passing %d, min failing %d", b.MaxPassing, b.MinFailing)
	}
}

func usageErr(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "explore: "+format+"\n", args...)
	return 2
}
