module weakestfd

go 1.24
