package sim

import (
	"weakestfd/internal/model"
)

// This file contains step-model algorithms ("automata") used by the
// extraction constructions and by the simulation-based model-checking tests:
//
//   - ConsensusAutomaton: single-decree ballot consensus driven by (Ω, Σ)
//     failure-detector values — the step-model counterpart of
//     internal/consensus.BallotConsensus.
//   - QCAutomaton: quittable consensus driven by Ψ values (Figure 2 in the
//     step model); it embeds ConsensusAutomaton for the (Ω, Σ) branch.
//
// Both treat their states as immutable: every Step works on a copy.

// Ballot numbers for the step-model consensus.
type Ballot int64

// Message types used by the consensus automaton.
const (
	simPrepare  = "sim.prepare"
	simPromise  = "sim.promise"
	simAccept   = "sim.accept"
	simAccepted = "sim.accepted"
	simNack     = "sim.nack"
	simDecide   = "sim.decide"
)

type simPrepareMsg struct{ Ballot Ballot }

type simPromiseMsg struct {
	Ballot      Ballot
	Accepted    Ballot
	AcceptedVal any
	HasAccepted bool
}

type simAcceptMsg struct {
	Ballot Ballot
	Val    any
}

type simAcceptedMsg struct{ Ballot Ballot }

type simNackMsg struct {
	Ballot Ballot
	Higher Ballot
}

type simDecideMsg struct{ Val any }

// consState is the per-process state of the consensus automaton.
type consState struct {
	proposal any

	// Acceptor role.
	promised    Ballot
	accepted    Ballot
	acceptedVal any
	hasAccepted bool

	// Proposer role.
	ballot    Ballot
	phase     int // 0 idle, 1 awaiting promises, 2 awaiting accepteds
	acks      model.ProcessSet
	bestBal   Ballot
	bestVal   any
	hasBest   bool
	chosenVal any
	maxSeen   Ballot

	decided  bool
	decision any
	relayed  bool
}

// ConsensusAutomaton is a single-decree ballot consensus in the step model.
// The failure-detector value of every step must be a model.OmegaSigmaValue;
// the process trusted by the Ω component drives ballots, and quorum waits
// complete when the Σ component's quorum is covered by acknowledgements.
type ConsensusAutomaton struct{}

// InitialState implements Automaton.
func (ConsensusAutomaton) InitialState(_ model.ProcessID, _ int, input any) State {
	return consState{
		proposal: input,
		promised: -1,
		accepted: -1,
		bestBal:  -1,
		maxSeen:  -1,
		acks:     model.NewProcessSet(),
	}
}

// Output implements Automaton.
func (ConsensusAutomaton) Output(state State) (any, bool) {
	s := state.(consState)
	if s.decided {
		return s.decision, true
	}
	return nil, false
}

// Step implements Automaton.
func (a ConsensusAutomaton) Step(ctx StepContext, state State, msg *Message, fdValue any) (State, []Message) {
	s := state.(consState)
	os, _ := fdValue.(model.OmegaSigmaValue)
	return a.step(ctx, s, msg, os)
}

func (ConsensusAutomaton) step(ctx StepContext, s consState, msg *Message, os model.OmegaSigmaValue) (consState, []Message) {
	var out []Message
	s.acks = s.acks.Clone() // keep the previous state's set immutable

	broadcast := func(typ string, payload any) {
		for i := 0; i < ctx.N; i++ {
			out = append(out, Message{From: ctx.Self, To: model.ProcessID(i), Type: typ, Payload: payload})
		}
	}
	send := func(to model.ProcessID, typ string, payload any) {
		out = append(out, Message{From: ctx.Self, To: to, Type: typ, Payload: payload})
	}

	// 1. Handle the delivered message, if any.
	if msg != nil {
		switch msg.Type {
		case simPrepare:
			m := msg.Payload.(simPrepareMsg)
			if m.Ballot > s.maxSeen {
				s.maxSeen = m.Ballot
			}
			if m.Ballot >= s.promised {
				s.promised = m.Ballot
				send(msg.From, simPromise, simPromiseMsg{Ballot: m.Ballot, Accepted: s.accepted, AcceptedVal: s.acceptedVal, HasAccepted: s.hasAccepted})
			} else {
				send(msg.From, simNack, simNackMsg{Ballot: m.Ballot, Higher: s.promised})
			}
		case simAccept:
			m := msg.Payload.(simAcceptMsg)
			if m.Ballot > s.maxSeen {
				s.maxSeen = m.Ballot
			}
			if m.Ballot >= s.promised {
				s.promised = m.Ballot
				s.accepted = m.Ballot
				s.acceptedVal = m.Val
				s.hasAccepted = true
				send(msg.From, simAccepted, simAcceptedMsg{Ballot: m.Ballot})
			} else {
				send(msg.From, simNack, simNackMsg{Ballot: m.Ballot, Higher: s.promised})
			}
		case simPromise:
			m := msg.Payload.(simPromiseMsg)
			if s.phase == 1 && s.ballot == m.Ballot {
				s.acks.Add(msg.From)
				if m.HasAccepted && m.Accepted > s.bestBal {
					s.bestBal = m.Accepted
					s.bestVal = m.AcceptedVal
					s.hasBest = true
				}
			}
		case simAccepted:
			m := msg.Payload.(simAcceptedMsg)
			if s.phase == 2 && s.ballot == m.Ballot {
				s.acks.Add(msg.From)
			}
		case simNack:
			m := msg.Payload.(simNackMsg)
			if m.Higher > s.maxSeen {
				s.maxSeen = m.Higher
			}
			if s.phase != 0 && s.ballot == m.Ballot {
				s.phase = 0
				s.acks = model.NewProcessSet()
			}
		case simDecide:
			m := msg.Payload.(simDecideMsg)
			if !s.decided {
				s.decided = true
				s.decision = m.Val
			}
		}
	}

	if s.decided {
		if !s.relayed {
			s.relayed = true
			broadcast(simDecide, simDecideMsg{Val: s.decision})
		}
		return s, out
	}

	// 2. Quorum checks with the current Σ output.
	if s.phase == 1 && os.Quorum.SubsetOf(s.acks) && !os.Quorum.IsEmpty() {
		value := s.proposal
		if s.hasBest {
			value = s.bestVal
		}
		s.chosenVal = value
		s.phase = 2
		s.acks = model.NewProcessSet()
		broadcast(simAccept, simAcceptMsg{Ballot: s.ballot, Val: value})
	} else if s.phase == 2 && os.Quorum.SubsetOf(s.acks) && !os.Quorum.IsEmpty() {
		s.decided = true
		s.decision = s.chosenVal
		s.relayed = true
		broadcast(simDecide, simDecideMsg{Val: s.decision})
		return s, out
	}

	// 3. Leader-driven ballot start.
	if s.phase == 0 && os.Leader == ctx.Self {
		n := Ballot(ctx.N)
		id := Ballot(ctx.Self)
		round := s.maxSeen/n + 1
		b := round*n + id
		if b <= s.maxSeen {
			b += n
		}
		s.maxSeen = b
		s.ballot = b
		s.phase = 1
		s.acks = model.NewProcessSet()
		s.bestBal = -1
		s.hasBest = false
		broadcast(simPrepare, simPrepareMsg{Ballot: b})
	}

	return s, out
}

// QCOutcome is the output of the QC automaton: Quit, or a regular value.
type QCOutcome struct {
	Quit  bool
	Value any
}

// qcState is the per-process state of the QC automaton.
type qcState struct {
	proposal any
	quit     bool
	started  bool
	inner    consState
}

// QCAutomaton is Figure 2 in the step model: quittable consensus from Ψ. The
// failure-detector value of every step must be a model.PsiValue. While Ψ is
// ⊥ the process takes nop steps; if Ψ behaves like FS the process decides
// Quit; once Ψ behaves like (Ω, Σ) the process runs the embedded consensus
// automaton on its proposal.
type QCAutomaton struct {
	cons ConsensusAutomaton
}

// InitialState implements Automaton.
func (q QCAutomaton) InitialState(p model.ProcessID, n int, input any) State {
	return qcState{
		proposal: input,
		inner:    q.cons.InitialState(p, n, input).(consState),
	}
}

// Output implements Automaton.
func (q QCAutomaton) Output(state State) (any, bool) {
	s := state.(qcState)
	if s.quit {
		return QCOutcome{Quit: true}, true
	}
	if v, ok := q.cons.Output(s.inner); ok {
		return QCOutcome{Value: v}, true
	}
	return nil, false
}

// Step implements Automaton.
func (q QCAutomaton) Step(ctx StepContext, state State, msg *Message, fdValue any) (State, []Message) {
	s := state.(qcState)
	if s.quit {
		return s, nil
	}
	psi, _ := fdValue.(model.PsiValue)
	switch psi.Phase {
	case model.PsiBottom:
		// Line 1 of Figure 2: nop while Ψ is ⊥. Delivered messages stay
		// conceptually "in flight": the algorithm has not started yet, so we
		// re-enqueue anything delivered early by returning it to the buffer.
		if msg != nil && !s.started {
			return s, []Message{*msg}
		}
		return s, nil
	case model.PsiFS:
		if s.started {
			// The specification of Ψ forbids switching regimes; if it ever
			// happened the safest behaviour is to keep running consensus.
			inner, out := q.cons.step(ctx, s.inner, msg, model.OmegaSigmaValue{})
			s.inner = inner
			return s, out
		}
		s.quit = true
		return s, nil
	default: // model.PsiOmegaSigma
		s.started = true
		inner, out := q.cons.step(ctx, s.inner, msg, psi.OS)
		s.inner = inner
		return s, out
	}
}

var (
	_ Automaton = ConsensusAutomaton{}
	_ Automaton = QCAutomaton{}
)
