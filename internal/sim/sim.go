// Package sim is a deterministic, step-level simulation kernel implementing
// the formal model of Section 2 of the paper: algorithms are automata;
// a step 〈p, m, d〉 is one process receiving a single message (or the empty
// message λ), querying its failure detector and seeing value d, sending
// messages and changing state; a schedule is a sequence of steps applied to a
// configuration (process states plus the message buffer).
//
// The kernel exists for two reasons:
//
//   - The necessity construction of Figure 3 (extracting Ψ from any QC
//     algorithm) simulates runs of the given algorithm that are compatible
//     with sampled failure-detector values; that simulation needs exactly
//     this step-level machinery (internal/extract builds on it).
//   - It doubles as a lightweight model checker: the step-model algorithms in
//     automata.go are exercised over thousands of seeded random schedules and
//     crash patterns, checking agreement/validity over many more interleavings
//     than the goroutine runtime can reach in the same time.
//
// Unlike internal/net, nothing here is concurrent: runs are reproducible from
// a seed.
package sim

import (
	"fmt"
	"math/rand"

	"weakestfd/internal/model"
)

// State is a process state. Automata must treat states as immutable values:
// Step must return a fresh state rather than mutating its argument, because
// the extraction machinery replays schedules from shared configurations.
type State any

// Message is an undelivered protocol message in the simulated message buffer.
type Message struct {
	From    model.ProcessID
	To      model.ProcessID
	Type    string
	Payload any
}

// String implements fmt.Stringer.
func (m Message) String() string { return fmt.Sprintf("%v->%v %s", m.From, m.To, m.Type) }

// StepContext gives an automaton its identity and the system size during a
// step.
type StepContext struct {
	Self model.ProcessID
	N    int
}

// Automaton is the paper's algorithm A, factored per process. The kernel
// calls InitialState once per process and then Step for every step the
// scheduler assigns to that process.
type Automaton interface {
	// InitialState returns process p's initial state given its input (e.g. a
	// proposal); input may be nil for input-less algorithms.
	InitialState(p model.ProcessID, n int, input any) State
	// Step executes one atomic step: msg is the delivered message or nil for
	// the empty message λ, fdValue is the value the failure detector module
	// returned in this step. It returns the successor state and any messages
	// to send.
	Step(ctx StepContext, state State, msg *Message, fdValue any) (State, []Message)
	// Output returns the process's externally visible output (e.g. its
	// decision) if it has one.
	Output(state State) (any, bool)
}

// Step is the paper's 〈p, m, d〉: process p receives message m (nil = λ) and
// sees failure-detector value d. BufferIndex records which buffer entry was
// consumed (-1 for λ); it is meaningful only relative to the configuration
// the step was generated from.
type Step struct {
	Process     model.ProcessID
	Msg         *Message
	BufferIndex int
	FDValue     any
}

// Schedule is a finite sequence of steps.
type Schedule []Step

// Participants returns the set of processes that take at least one step.
func (s Schedule) Participants() model.ProcessSet {
	out := model.NewProcessSet()
	for _, st := range s {
		out.Add(st.Process)
	}
	return out
}

// Configuration is a global state: one automaton state per process plus the
// message buffer of sent-but-undelivered messages.
type Configuration struct {
	States []State
	Buffer []Message
}

// NewConfiguration builds the initial configuration of an automaton for n
// processes with the given per-process inputs (inputs may be nil).
func NewConfiguration(a Automaton, n int, inputs []any) *Configuration {
	cfg := &Configuration{States: make([]State, n)}
	for i := 0; i < n; i++ {
		var in any
		if i < len(inputs) {
			in = inputs[i]
		}
		cfg.States[i] = a.InitialState(model.ProcessID(i), n, in)
	}
	return cfg
}

// Clone returns a deep-enough copy: states are shared (automata treat them as
// immutable), the buffer slice is copied.
func (c *Configuration) Clone() *Configuration {
	states := make([]State, len(c.States))
	copy(states, c.States)
	buffer := make([]Message, len(c.Buffer))
	copy(buffer, c.Buffer)
	return &Configuration{States: states, Buffer: buffer}
}

// N returns the number of processes.
func (c *Configuration) N() int { return len(c.States) }

// PendingFor returns the indices of buffered messages addressed to p.
func (c *Configuration) PendingFor(p model.ProcessID) []int {
	var out []int
	for i, m := range c.Buffer {
		if m.To == p {
			out = append(out, i)
		}
	}
	return out
}

// Apply executes one step of automaton a on the configuration, in place.
// The step's BufferIndex selects the delivered message (-1 for λ); it panics
// if the index is stale (out of range or addressed to another process), which
// indicates a bug in the caller's bookkeeping.
func (c *Configuration) Apply(a Automaton, step Step) {
	var msg *Message
	if step.BufferIndex >= 0 {
		if step.BufferIndex >= len(c.Buffer) {
			panic(fmt.Sprintf("sim: stale buffer index %d (buffer has %d messages)", step.BufferIndex, len(c.Buffer)))
		}
		m := c.Buffer[step.BufferIndex]
		if m.To != step.Process {
			panic(fmt.Sprintf("sim: buffer index %d addressed to %v, step is by %v", step.BufferIndex, m.To, step.Process))
		}
		msg = &m
		c.Buffer = append(c.Buffer[:step.BufferIndex], c.Buffer[step.BufferIndex+1:]...)
	}
	ctx := StepContext{Self: step.Process, N: c.N()}
	newState, sent := a.Step(ctx, c.States[int(step.Process)], msg, step.FDValue)
	c.States[int(step.Process)] = newState
	c.Buffer = append(c.Buffer, sent...)
}

// Outputs returns the outputs of all processes that have one.
func (c *Configuration) Outputs(a Automaton) map[model.ProcessID]any {
	out := make(map[model.ProcessID]any)
	for i, st := range c.States {
		if v, ok := a.Output(st); ok {
			out[model.ProcessID(i)] = v
		}
	}
	return out
}

// DetectorFunc supplies the failure-detector value process p sees when it
// takes a step at simulated time t. It is the simulation-side counterpart of
// a failure-detector history H(p, t).
type DetectorFunc func(p model.ProcessID, t model.Time) any

// Clock is a settable logical clock satisfying fd.TimeSource, used to drive
// the oracle detectors from simulated time.
type Clock struct {
	t model.Time
}

// Now returns the current simulated time.
func (c *Clock) Now() model.Time { return c.t }

// Set moves the simulated time to t.
func (c *Clock) Set(t model.Time) { c.t = t }

// RunResult summarises one simulated run.
type RunResult struct {
	Config   *Configuration
	Schedule Schedule
	Samples  *model.History
	Steps    int
	// Decided maps each process to its output, for processes that produced
	// one before the run ended.
	Decided map[model.ProcessID]any
}

// Runner generates runs of an automaton under a failure pattern, a failure
// detector and a scheduling policy.
type Runner struct {
	Automaton Automaton
	N         int
	Inputs    []any
	Pattern   *model.FailurePattern
	Detector  DetectorFunc
	Clock     *Clock
	// Lambda is the probability (0..1) that a scheduled process takes a λ
	// step even though it has pending messages; λ steps are always taken when
	// there is nothing to deliver. Default 0.2.
	Lambda float64
	// RecordSamples, when set, receives every failure-detector sample taken
	// during the run.
	RecordSamples *model.History
}

// Run executes up to maxSteps steps using a seeded random scheduler and stops
// early once stop returns true (stop may be nil). Only processes that have
// not crashed (per the failure pattern at the current simulated time) take
// steps; the simulated time is the step index.
func (r *Runner) Run(seed int64, maxSteps int, stop func(*Configuration) bool) RunResult {
	rng := rand.New(rand.NewSource(seed))
	cfg := NewConfiguration(r.Automaton, r.N, r.Inputs)
	lambda := r.Lambda
	if lambda <= 0 {
		lambda = 0.2
	}
	var sched Schedule
	steps := 0
	for t := model.Time(1); steps < maxSteps; t++ {
		if stop != nil && stop(cfg) {
			break
		}
		if r.Clock != nil {
			r.Clock.Set(t)
		}
		alive := r.Pattern.AliveAt(t)
		if alive.IsEmpty() {
			break
		}
		candidates := alive.Slice()
		p := candidates[rng.Intn(len(candidates))]
		pending := cfg.PendingFor(p)
		idx := -1
		if len(pending) > 0 && rng.Float64() >= lambda {
			idx = pending[rng.Intn(len(pending))]
		}
		var fdVal any
		if r.Detector != nil {
			fdVal = r.Detector(p, t)
		}
		if r.RecordSamples != nil {
			r.RecordSamples.Record(p, t, fdVal)
		}
		step := Step{Process: p, BufferIndex: idx, FDValue: fdVal}
		if idx >= 0 {
			m := cfg.Buffer[idx]
			step.Msg = &m
		}
		cfg.Apply(r.Automaton, step)
		sched = append(sched, step)
		steps++
	}
	return RunResult{
		Config:   cfg,
		Schedule: sched,
		Samples:  r.RecordSamples,
		Steps:    steps,
		Decided:  cfg.Outputs(r.Automaton),
	}
}
