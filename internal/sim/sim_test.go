package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"weakestfd/internal/model"
)

// echoAutomaton: every process sends its input to all once, and outputs the
// number of distinct senders it has heard from. Used to test the kernel.
type echoAutomaton struct{}

type echoState struct {
	input     any
	sent      bool
	heardFrom model.ProcessSet
}

func (echoAutomaton) InitialState(_ model.ProcessID, _ int, input any) State {
	return echoState{input: input, heardFrom: model.NewProcessSet()}
}

func (echoAutomaton) Output(state State) (any, bool) {
	s := state.(echoState)
	if s.heardFrom.Len() > 0 {
		return s.heardFrom.Len(), true
	}
	return nil, false
}

func (echoAutomaton) Step(ctx StepContext, state State, msg *Message, _ any) (State, []Message) {
	s := state.(echoState)
	s.heardFrom = s.heardFrom.Clone()
	var out []Message
	if !s.sent {
		s.sent = true
		for i := 0; i < ctx.N; i++ {
			out = append(out, Message{From: ctx.Self, To: model.ProcessID(i), Type: "echo", Payload: s.input})
		}
	}
	if msg != nil {
		s.heardFrom.Add(msg.From)
	}
	return s, out
}

func TestConfigurationApplyAndBuffer(t *testing.T) {
	a := echoAutomaton{}
	cfg := NewConfiguration(a, 2, []any{"x", "y"})
	if cfg.N() != 2 || len(cfg.Buffer) != 0 {
		t.Fatalf("initial configuration wrong")
	}
	// p0 takes a λ step: it broadcasts its input.
	cfg.Apply(a, Step{Process: 0, BufferIndex: -1})
	if len(cfg.Buffer) != 2 {
		t.Fatalf("buffer = %v", cfg.Buffer)
	}
	pending := cfg.PendingFor(1)
	if len(pending) != 1 {
		t.Fatalf("pending for p1 = %v", pending)
	}
	// p1 receives it.
	idx := pending[0]
	m := cfg.Buffer[idx]
	cfg.Apply(a, Step{Process: 1, BufferIndex: idx, Msg: &m})
	if out, ok := a.Output(cfg.States[1]); !ok || out.(int) != 1 {
		t.Fatalf("output of p1 = %v, %v", out, ok)
	}
	// The consumed message is gone from the buffer; the only message still
	// pending for p1 is its own broadcast (sent during its step).
	remaining := cfg.PendingFor(1)
	if len(remaining) != 1 || cfg.Buffer[remaining[0]].From != 1 {
		t.Fatalf("pending for p1 after delivery = %v (buffer %v)", remaining, cfg.Buffer)
	}
}

func TestConfigurationCloneIsIndependent(t *testing.T) {
	a := echoAutomaton{}
	cfg := NewConfiguration(a, 2, []any{"x", "y"})
	cfg.Apply(a, Step{Process: 0, BufferIndex: -1})
	snapshot := cfg.Clone()
	bufLen := len(snapshot.Buffer)

	pending := cfg.PendingFor(1)
	m := cfg.Buffer[pending[0]]
	cfg.Apply(a, Step{Process: 1, BufferIndex: pending[0], Msg: &m})

	if len(snapshot.Buffer) != bufLen {
		t.Fatalf("clone's buffer changed")
	}
	if _, ok := a.Output(snapshot.States[1]); ok {
		t.Fatalf("clone's state changed")
	}
}

func TestApplyPanicsOnStaleIndex(t *testing.T) {
	a := echoAutomaton{}
	cfg := NewConfiguration(a, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("stale buffer index did not panic")
		}
	}()
	cfg.Apply(a, Step{Process: 0, BufferIndex: 5})
}

func TestApplyPanicsOnWrongRecipient(t *testing.T) {
	a := echoAutomaton{}
	cfg := NewConfiguration(a, 2, []any{"x", "y"})
	cfg.Apply(a, Step{Process: 0, BufferIndex: -1}) // p0 broadcasts
	// Find a message addressed to p0 and try to deliver it to p1.
	idx := cfg.PendingFor(0)[0]
	defer func() {
		if recover() == nil {
			t.Fatalf("wrong-recipient delivery did not panic")
		}
	}()
	cfg.Apply(a, Step{Process: 1, BufferIndex: idx})
}

func TestScheduleParticipants(t *testing.T) {
	s := Schedule{{Process: 0}, {Process: 2}, {Process: 0}}
	if got := s.Participants(); !got.Equal(model.NewProcessSet(0, 2)) {
		t.Fatalf("Participants = %v", got)
	}
}

// runConsensus runs the consensus automaton with a random scheduler under the
// given pattern until every alive process decides (or steps run out) and
// returns the decisions.
func runConsensus(seed int64, n int, pattern *model.FailurePattern, inputs []any, maxSteps int) map[model.ProcessID]any {
	a := ConsensusAutomaton{}
	r := &Runner{
		Automaton: a,
		N:         n,
		Inputs:    inputs,
		Pattern:   pattern,
		Detector:  OmegaSigmaDetector(pattern),
	}
	res := r.Run(seed, maxSteps, func(cfg *Configuration) bool {
		outs := cfg.Outputs(a)
		for _, p := range pattern.Correct().Slice() {
			if _, ok := outs[p]; !ok {
				return false
			}
		}
		return len(outs) > 0
	})
	return res.Decided
}

func TestSimConsensusFailureFree(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	decided := runConsensus(1, 3, pattern, []any{0, 1, 1}, 20000)
	if len(decided) != 3 {
		t.Fatalf("only %d processes decided", len(decided))
	}
	first := decided[0]
	for p, v := range decided {
		if v != first {
			t.Fatalf("disagreement: %v decided %v, p0 decided %v", p, v, first)
		}
	}
	if first != 0 && first != 1 {
		t.Fatalf("decision %v was never proposed", first)
	}
}

func TestSimConsensusWithCrashes(t *testing.T) {
	pattern := model.NewFailurePattern(4)
	pattern.Crash(0, 50) // the initial leader crashes early
	pattern.Crash(3, 200)
	decided := runConsensus(7, 4, pattern, []any{10, 11, 12, 13}, 40000)
	for _, p := range pattern.Correct().Slice() {
		if _, ok := decided[p]; !ok {
			t.Fatalf("correct process %v did not decide", p)
		}
	}
	var vals []any
	for _, v := range decided {
		vals = append(vals, v)
	}
	for _, v := range vals {
		if v != vals[0] {
			t.Fatalf("disagreement among decisions: %v", vals)
		}
	}
}

// Property: over random seeds, crash patterns and proposals, the step-model
// consensus never violates agreement or validity (termination is not asserted
// here because adversarial random schedules may legitimately need more steps
// than the bound).
func TestQuickSimConsensusSafety(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		pattern := model.NewFailurePattern(n)
		for i := 0; i < n-1; i++ {
			if rng.Intn(3) == 0 {
				pattern.Crash(model.ProcessID(i), model.Time(1+rng.Intn(300)))
			}
		}
		inputs := make([]any, n)
		proposed := map[any]bool{}
		for i := range inputs {
			inputs[i] = rng.Intn(3)
			proposed[inputs[i]] = true
		}
		decided := runConsensus(rng.Int63(), n, pattern, inputs, 4000)
		var prev any
		first := true
		for _, v := range decided {
			if !proposed[v] {
				return false // validity violated
			}
			if !first && v != prev {
				return false // agreement violated
			}
			prev, first = v, false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSimQCDecidesValueInOmegaSigmaRegime(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	a := QCAutomaton{}
	r := &Runner{
		Automaton: a,
		N:         3,
		Inputs:    []any{1, 0, 1},
		Pattern:   pattern,
		Detector:  PsiDetector(pattern, 10, true),
	}
	res := r.Run(3, 20000, func(cfg *Configuration) bool {
		return len(cfg.Outputs(a)) == 3
	})
	if len(res.Decided) != 3 {
		t.Fatalf("only %d processes decided", len(res.Decided))
	}
	for p, v := range res.Decided {
		out := v.(QCOutcome)
		if out.Quit {
			t.Fatalf("%v decided Quit with no failure", p)
		}
		if out.Value != 0 && out.Value != 1 {
			t.Fatalf("%v decided unproposed value %v", p, out.Value)
		}
	}
}

func TestSimQCQuitsInFSRegime(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	pattern.Crash(2, 5) // before the Ψ switch point
	a := QCAutomaton{}
	r := &Runner{
		Automaton: a,
		N:         3,
		Inputs:    []any{1, 0, 1},
		Pattern:   pattern,
		Detector:  PsiDetector(pattern, 10, true),
	}
	res := r.Run(4, 20000, func(cfg *Configuration) bool {
		outs := cfg.Outputs(a)
		return len(outs) >= 2
	})
	for p, v := range res.Decided {
		if p == 2 {
			continue
		}
		if !v.(QCOutcome).Quit {
			t.Fatalf("%v decided %v, want Quit", p, v)
		}
	}
	if len(res.Decided) < 2 {
		t.Fatalf("correct processes did not decide")
	}
}

// Property: the step-model QC never violates agreement and never quits
// without a failure.
func TestQuickSimQCSafety(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3
		pattern := model.NewFailurePattern(n)
		crashed := false
		for i := 0; i < n-1; i++ {
			if rng.Intn(3) == 0 {
				pattern.Crash(model.ProcessID(i), model.Time(1+rng.Intn(100)))
				crashed = true
			}
		}
		a := QCAutomaton{}
		r := &Runner{
			Automaton: a,
			N:         n,
			Inputs:    []any{rng.Intn(2), rng.Intn(2), rng.Intn(2)},
			Pattern:   pattern,
			Detector:  PsiDetector(pattern, model.Time(rng.Intn(50)), rng.Intn(2) == 0),
		}
		res := r.Run(rng.Int63(), 3000, nil)
		var prev QCOutcome
		first := true
		for _, v := range res.Decided {
			out := v.(QCOutcome)
			if out.Quit && !crashed {
				return false
			}
			if !first && out != prev {
				return false
			}
			prev, first = out, false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerRecordsSamplesAndClock(t *testing.T) {
	pattern := model.NewFailurePattern(2)
	clock := &Clock{}
	hist := model.NewHistory()
	r := &Runner{
		Automaton:     echoAutomaton{},
		N:             2,
		Inputs:        []any{"a", "b"},
		Pattern:       pattern,
		Detector:      FSDetector(pattern),
		Clock:         clock,
		RecordSamples: hist,
	}
	res := r.Run(9, 50, nil)
	if res.Steps != 50 {
		t.Fatalf("Steps = %d", res.Steps)
	}
	if hist.Len() != 50 {
		t.Fatalf("samples = %d", hist.Len())
	}
	if clock.Now() == 0 {
		t.Fatalf("clock not advanced")
	}
	for _, s := range hist.Samples() {
		if s.Value.(model.FSValue) != model.Green {
			t.Fatalf("FS sample red without failures")
		}
	}
}

func TestRunnerStopsWhenAllCrashed(t *testing.T) {
	pattern := model.NewFailurePattern(2)
	pattern.Crash(0, 1)
	pattern.Crash(1, 1)
	r := &Runner{Automaton: echoAutomaton{}, N: 2, Pattern: pattern}
	res := r.Run(1, 1000, nil)
	if res.Steps != 0 {
		t.Fatalf("steps taken with all processes crashed: %d", res.Steps)
	}
}

func TestMessageString(t *testing.T) {
	m := Message{From: 0, To: 1, Type: "x"}
	if m.String() != "p0->p1 x" {
		t.Fatalf("String = %q", m.String())
	}
}
