package sim

import (
	"weakestfd/internal/model"
)

// Simulated failure detectors: deterministic functions of the (static, planned)
// failure pattern and the simulated time, handed to the Runner as
// DetectorFunc values. They realise the same definitions as the oracle
// detectors in internal/fd, specialised to the simulation's time base.

// OmegaSigmaDetector returns a DetectorFunc producing model.OmegaSigmaValue
// samples: the leader is the lowest-id process not yet crashed at the sample
// time, the quorum is the set of processes not yet crashed. Both converge to
// the correct processes, and any two quorums intersect as long as at least
// one process is correct.
func OmegaSigmaDetector(pattern *model.FailurePattern) DetectorFunc {
	return func(_ model.ProcessID, t model.Time) any {
		alive := pattern.AliveAt(t)
		leader, ok := alive.Min()
		if !ok {
			leader = 0
		}
		return model.OmegaSigmaValue{Leader: leader, Quorum: alive}
	}
}

// PsiDetector returns a DetectorFunc producing model.PsiValue samples
// realising Ψ: ⊥ until switchAfter, then permanently either the FS regime
// (only if preferFS is set and a failure occurred by switchAfter) or the
// (Ω, Σ) regime. Because the regime is a deterministic function of the static
// failure pattern, every process makes the same choice, as the specification
// requires.
func PsiDetector(pattern *model.FailurePattern, switchAfter model.Time, preferFS bool) DetectorFunc {
	osDet := OmegaSigmaDetector(pattern)
	return func(p model.ProcessID, t model.Time) any {
		if t < switchAfter {
			return model.PsiValue{Phase: model.PsiBottom}
		}
		if preferFS && pattern.FailureOccurredBy(switchAfter) {
			sig := model.Green
			if pattern.FailureOccurredBy(t) {
				sig = model.Red
			}
			return model.PsiValue{Phase: model.PsiFS, FS: sig}
		}
		return model.PsiValue{Phase: model.PsiOmegaSigma, OS: osDet(p, t).(model.OmegaSigmaValue)}
	}
}

// FSDetector returns a DetectorFunc producing model.FSValue samples: red
// exactly once a failure has occurred.
func FSDetector(pattern *model.FailurePattern) DetectorFunc {
	return func(_ model.ProcessID, t model.Time) any {
		if pattern.FailureOccurredBy(t) {
			return model.Red
		}
		return model.Green
	}
}
