package fd

import (
	"reflect"
	"testing"

	"weakestfd/internal/model"
)

func TestParseSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"omega-sigma",
		"perfect",
		"perfect{suspect:10}",
		"eventually-perfect{suspect:10,stabilize:50}",
		"eventually-strong{stabilize:50}",
		"omega-sigma{suspect:3,detect:7,switch:40,policy:fs-on-failure}",
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
		again, err := ParseSpec(spec.String())
		if err != nil || again != spec {
			t.Fatalf("re-parse of %q: %+v, %v", spec.String(), again, err)
		}
	}
}

func TestParseSpecNormalisesKeyOrderAndSpaces(t *testing.T) {
	spec, err := ParseSpec(" eventually-perfect{ stabilize:50 , suspect:10 } ")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if want := "eventually-perfect{suspect:10,stabilize:50}"; spec.String() != want {
		t.Fatalf("canonical form = %q, want %q", spec.String(), want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"{suspect:1}",
		"perfect{suspect}",
		"perfect{suspect:-3}",
		"perfect{suspect:x}",
		"perfect{bogus:1}",
		"perfect{policy:maybe}",
		"perfect{suspect:1",
		"perfect{}",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", s)
		}
	}
}

func TestParseSpecListSplitsTopLevelCommasOnly(t *testing.T) {
	specs, err := ParseSpecList("omega-sigma, perfect{suspect:2}, eventually-perfect{suspect:10,stabilize:50}")
	if err != nil {
		t.Fatalf("ParseSpecList: %v", err)
	}
	var got []string
	for _, s := range specs {
		got = append(got, s.String())
	}
	want := []string{"omega-sigma", "perfect{suspect:2}", "eventually-perfect{suspect:10,stabilize:50}"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("specs = %v, want %v", got, want)
	}
	if _, err := ParseSpecList("perfect{suspect:1"); err == nil {
		t.Fatalf("unbalanced brace accepted")
	}
}

func TestSpecZeroValueIsDefaultFamily(t *testing.T) {
	var spec DetectorSpec
	if got := spec.String(); got != "omega-sigma" {
		t.Fatalf("zero spec renders %q", got)
	}
	pattern := model.NewFailurePattern(3)
	clock := &fakeClock{}
	suite, err := Build(pattern, clock, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if suite.Omega == nil || suite.Sigma == nil || suite.FS == nil || suite.Psi == nil {
		t.Fatalf("default family incomplete: %+v", suite)
	}
	if suite.Suspects != nil {
		t.Fatalf("default family has a suspect list")
	}
}

func TestRegistryBuildsAllClasses(t *testing.T) {
	pattern := model.NewFailurePattern(5)
	clock := &fakeClock{}
	for _, tc := range []struct {
		name                 string
		wantFS, wantSuspects bool
	}{
		{ClassOmegaSigma, true, false},
		{ClassPerfect, true, true},
		{ClassEventuallyPerfect, false, true},
		{ClassEventuallyStrong, false, true},
	} {
		suite, err := Build(pattern, clock, DetectorSpec{Class: tc.name})
		if err != nil {
			t.Fatalf("Build(%s): %v", tc.name, err)
		}
		if suite.Omega == nil || suite.Sigma == nil {
			t.Fatalf("%s: missing Ω or Σ", tc.name)
		}
		if (suite.FS != nil) != tc.wantFS || (suite.Psi != nil) != tc.wantFS {
			t.Fatalf("%s: FS/Ψ presence = %v/%v, want %v", tc.name, suite.FS != nil, suite.Psi != nil, tc.wantFS)
		}
		if (suite.Suspects != nil) != tc.wantSuspects {
			t.Fatalf("%s: Suspects presence = %v, want %v", tc.name, suite.Suspects != nil, tc.wantSuspects)
		}
		if suite.Spec.Class != tc.name {
			t.Fatalf("%s: suite spec = %+v", tc.name, suite.Spec)
		}
	}
}

func TestRegistryAliasesAndUnknown(t *testing.T) {
	r := DefaultRegistry()
	for alias, want := range map[string]string{
		"":          ClassOmegaSigma,
		"oracle":    ClassOmegaSigma,
		"p":         ClassPerfect,
		"diamond-p": ClassEventuallyPerfect,
		"<>s":       ClassEventuallyStrong,
	} {
		got, ok := r.Resolve(alias)
		if !ok || got != want {
			t.Fatalf("Resolve(%q) = %q, %v", alias, got, ok)
		}
	}
	if _, err := Build(model.NewFailurePattern(2), &fakeClock{}, DetectorSpec{Class: "nope"}); err == nil {
		t.Fatalf("unknown class built")
	}
}

func TestRegistryRegisterCustomClass(t *testing.T) {
	r := NewRegistry()
	r.Register("custom", func(env Env, spec DetectorSpec) (*Suite, error) {
		return &Suite{Omega: &OracleOmega{Pattern: env.Pattern, Clock: env.Clock}}, nil
	}, "suspect")
	suite, err := r.Build(Env{Pattern: model.NewFailurePattern(2), Clock: &fakeClock{}}, DetectorSpec{Class: "custom"})
	if err != nil || suite.Omega == nil {
		t.Fatalf("custom class: %v, %+v", err, suite)
	}
	if got := r.Params("custom"); len(got) != 1 || got[0] != "suspect" {
		t.Fatalf("Params(custom) = %v", got)
	}
}

func TestRegistryParamsPerClass(t *testing.T) {
	r := NewRegistry()
	for class, want := range map[string][]string{
		ClassOmegaSigma:        {"suspect", "detect", "switch"},
		ClassPerfect:           {"suspect"},
		ClassEventuallyPerfect: {"suspect", "stabilize"},
		"diamond-s":            {"suspect", "stabilize"}, // aliases resolve
	} {
		if got := r.Params(class); !reflect.DeepEqual(got, want) {
			t.Fatalf("Params(%s) = %v, want %v", class, got, want)
		}
	}
	if got := r.Params("nope"); got != nil {
		t.Fatalf("Params(unknown) = %v, want nil", got)
	}
}

func TestSpecParamLookup(t *testing.T) {
	spec := DetectorSpec{Class: ClassOmegaSigma}
	keys := SpecParamKeys()
	want := []string{"suspect", "detect", "stabilize", "switch", "interval", "timeout"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("SpecParamKeys = %v, want %v", keys, want)
	}
	for i, key := range keys {
		p, ok := spec.Param(key)
		if !ok {
			t.Fatalf("Param(%q) not found", key)
		}
		*p = model.Time(i + 1)
	}
	if _, ok := spec.Param("policy"); ok {
		t.Fatalf("Param(policy) resolved; policy is not a time parameter")
	}
	// The pointers returned by Param alias TimeParams in canonical order.
	for i, p := range spec.TimeParams() {
		if *p != model.Time(i+1) {
			t.Fatalf("param %d = %d after writes through Param", i, *p)
		}
	}
	if want := "omega-sigma{suspect:1,detect:2,stabilize:3,switch:4,interval:5,timeout:6}"; spec.String() != want {
		t.Fatalf("rendered %q, want %q", spec.String(), want)
	}
	if again := MustParseSpec(spec.String()); again != spec {
		t.Fatalf("round trip: %+v != %+v", again, spec)
	}
}
