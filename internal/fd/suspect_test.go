package fd

import (
	"testing"
	"testing/quick"

	"weakestfd/internal/model"
)

// sampleTicks is the probe schedule of the suspect property tests: it spans
// the chaotic prefix, the crash times and a long convergence tail.
var sampleTicks = []model.Time{0, 5, 10, 20, 40, 80, 200}

// suspectHistory runs the oracle over a random seeded crash schedule and
// returns the pattern plus the recorded suspect-list history. keepOneCorrect
// crashes at most n-1 processes so the eventual clauses are non-vacuous.
func suspectHistory(seed int64, shape SuspectShape) (*model.FailurePattern, *model.History) {
	rng := newRand(seed)
	n := 2 + rng.Intn(5)
	pattern := model.NewFailurePattern(n)
	clock := &fakeClock{}
	crashes := rng.Intn(n)
	for i := 0; i < crashes; i++ {
		pattern.Crash(model.ProcessID(i), model.Time(1+rng.Intn(50)))
	}
	sus := &OracleSuspects{
		Pattern:        pattern,
		Clock:          clock,
		Shape:          shape,
		SuspicionDelay: model.Time(rng.Intn(5)),
		StabilizeAfter: model.Time(rng.Intn(60)),
	}
	hist := model.NewHistory()
	for _, tick := range sampleTicks {
		clock.t = tick
		for p := 0; p < n; p++ {
			// Crashed processes stop querying their module, as in a real run.
			if pattern.CrashedAt(model.ProcessID(p), tick) {
				continue
			}
			hist.Record(model.ProcessID(p), tick, sus.At(model.ProcessID(p)))
		}
	}
	return pattern, hist
}

// Property: the P-shaped oracle satisfies the perfect-detector clauses for
// every seeded crash schedule.
func TestQuickOraclePerfectSpec(t *testing.T) {
	prop := func(seed int64) bool {
		pattern, hist := suspectHistory(seed, ShapePerfect)
		return model.CheckPerfect(pattern, hist, model.DefaultCheckOptions()).OK
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the ◇P-shaped oracle satisfies the ◇P clauses (and therefore the
// ◇S ones — ◇P refines ◇S).
func TestQuickOracleEventuallyPerfectSpec(t *testing.T) {
	prop := func(seed int64) bool {
		pattern, hist := suspectHistory(seed, ShapeEventuallyPerfect)
		if !model.CheckEventuallyPerfect(pattern, hist, model.DefaultCheckOptions()).OK {
			return false
		}
		return model.CheckEventuallyStrong(pattern, hist, model.DefaultCheckOptions()).OK
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the ◇S-shaped oracle satisfies the ◇S clauses.
func TestQuickOracleEventuallyStrongSpec(t *testing.T) {
	prop := func(seed int64) bool {
		pattern, hist := suspectHistory(seed, ShapeEventuallyStrong)
		return model.CheckEventuallyStrong(pattern, hist, model.DefaultCheckOptions()).OK
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// The classes are genuinely distinct: the ◇P oracle's chaotic prefix
// violates P's perpetual accuracy, and the ◇S oracle's permanent defamation
// violates ◇P's eventual strong accuracy.
func TestSuspectShapesAreDistinct(t *testing.T) {
	pattern := model.NewFailurePattern(4)
	clock := &fakeClock{}

	dp := &OracleSuspects{Pattern: pattern, Clock: clock, Shape: ShapeEventuallyPerfect, StabilizeAfter: 50}
	hist := model.NewHistory()
	clock.t = 10 // inside the prefix: p0 suspects everyone else, falsely
	hist.Record(0, 10, dp.At(0))
	if model.CheckPerfect(pattern, hist, model.SafetyOnlyCheckOptions()).OK {
		t.Fatalf("◇P prefix passed P's perpetual accuracy")
	}

	ds := &OracleSuspects{Pattern: pattern, Clock: clock, Shape: ShapeEventuallyStrong, StabilizeAfter: 0}
	hist = model.NewHistory()
	clock.t = 100
	for p := 0; p < 4; p++ {
		hist.Record(model.ProcessID(p), 100, ds.At(model.ProcessID(p)))
	}
	if model.CheckEventuallyPerfect(pattern, hist, model.DefaultCheckOptions()).OK {
		t.Fatalf("◇S defamation passed ◇P's eventual strong accuracy")
	}
	if v := model.CheckEventuallyStrong(pattern, hist, model.DefaultCheckOptions()); !v.OK {
		t.Fatalf("◇S oracle failed its own class: %v", v)
	}
}

func TestSuspectOmegaConvergesToLowestTrusted(t *testing.T) {
	clock := &fakeClock{}
	for _, shape := range []SuspectShape{ShapePerfect, ShapeEventuallyPerfect, ShapeEventuallyStrong} {
		pattern := model.NewFailurePattern(4)
		pattern.Crash(0, 5)
		sus := &OracleSuspects{Pattern: pattern, Clock: clock, Shape: shape, StabilizeAfter: 20}
		omega := SuspectOmega{Suspects: sus, N: 4}
		clock.t = 100
		for p := 1; p < 4; p++ {
			if got := omega.At(model.ProcessID(p)); got != 1 {
				t.Fatalf("%v: leader at p%d = %v, want p1", shape, p, got)
			}
		}
	}
}

// Property: any two SuspectSigma outputs intersect, across shapes, times and
// schedules — the perpetual Σ clause the derivation must never lose, chaos
// prefix included.
func TestQuickSuspectSigmaIntersection(t *testing.T) {
	prop := func(seed int64) bool {
		rng := newRand(seed)
		n := 2 + rng.Intn(5)
		pattern := model.NewFailurePattern(n)
		clock := &fakeClock{}
		crashes := rng.Intn(n)
		for i := 0; i < crashes; i++ {
			pattern.Crash(model.ProcessID(i), model.Time(1+rng.Intn(50)))
		}
		shape := SuspectShape(rng.Intn(3))
		sus := &OracleSuspects{
			Pattern:        pattern,
			Clock:          clock,
			Shape:          shape,
			SuspicionDelay: model.Time(rng.Intn(5)),
			StabilizeAfter: model.Time(rng.Intn(60)),
		}
		sigma := SuspectSigma{Suspects: sus, N: n, Accurate: shape == ShapePerfect}
		var outputs []model.ProcessSet
		for _, tick := range sampleTicks {
			clock.t = tick
			for p := 0; p < n; p++ {
				if pattern.CrashedAt(model.ProcessID(p), tick) {
					continue
				}
				outputs = append(outputs, sigma.At(model.ProcessID(p)))
			}
		}
		for i := range outputs {
			for j := i + 1; j < len(outputs); j++ {
				if !outputs[i].Intersects(outputs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSuspectFSRedExactlyOnSuspicion(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	clock := &fakeClock{}
	sus := &OracleSuspects{Pattern: pattern, Clock: clock, Shape: ShapePerfect, SuspicionDelay: 2}
	fs := SuspectFS{Suspects: sus}
	if fs.At(0) != model.Green {
		t.Fatalf("red with no crash")
	}
	pattern.Crash(1, 10)
	clock.t = 11
	if fs.At(0) != model.Green {
		t.Fatalf("red before the suspicion delay elapsed")
	}
	clock.t = 12
	if fs.At(0) != model.Red {
		t.Fatalf("green after the crash became visible")
	}
}
