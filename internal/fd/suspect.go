package fd

import (
	"weakestfd/internal/model"
)

// Chandra–Toueg suspect-list detectors, implemented once against the generic
// core: OracleSuspects realises the classes P, ◇P and ◇S as shapes of one
// oracle over the live failure pattern, and SuspectOmega / SuspectSigma /
// SuspectFS derive the paper's detectors from a suspect source so the same
// protocols can run against every class. The derivations are honest: each is
// sound exactly under the assumptions the literature requires (P derives a
// true Σ; ◇P and ◇S derive a majority-quorum Σ that is safe always but live
// only in majority-correct runs), so sweeping a protocol across classes shows
// which class actually solves the problem on which grid points.

// SuspectShape selects which Chandra–Toueg class OracleSuspects realises.
type SuspectShape int

const (
	// ShapePerfect is the perfect detector P: the suspect list is exactly
	// the set of visibly crashed processes at every time — strong accuracy
	// (no process suspected before it crashes) plus strong completeness.
	ShapePerfect SuspectShape = iota
	// ShapeEventuallyPerfect is ◇P: before StabilizeAfter every process
	// falsely suspects everyone but itself; afterwards the output is the
	// visibly crashed set. Eventual strong accuracy, strong completeness.
	ShapeEventuallyPerfect
	// ShapeEventuallyStrong is ◇S: the same chaotic prefix, but after
	// StabilizeAfter the output permanently defames every process except the
	// querier and the lowest-id visibly-alive process. Strong completeness
	// plus eventual weak accuracy only — correct processes other than the
	// eventual leader stay suspected forever, which is exactly what
	// separates ◇S from ◇P.
	ShapeEventuallyStrong
)

// String implements fmt.Stringer.
func (s SuspectShape) String() string {
	switch s {
	case ShapePerfect:
		return "P"
	case ShapeEventuallyPerfect:
		return "◇P"
	case ShapeEventuallyStrong:
		return "◇S"
	default:
		return "SuspectShape(?)"
	}
}

// OracleSuspects is the suspect-list oracle realising P, ◇P or ◇S over the
// live failure pattern, per Shape. SuspicionDelay postpones the moment a
// crash becomes visible (exercising the eventual completeness clause);
// StabilizeAfter bounds the chaotic false-suspicion prefix of the ◇ classes
// (it is ignored by ShapePerfect, whose accuracy clause is perpetual).
type OracleSuspects struct {
	Pattern        *model.FailurePattern
	Clock          TimeSource
	Shape          SuspectShape
	SuspicionDelay model.Time
	StabilizeAfter model.Time
}

// At implements SuspectSource.
func (o *OracleSuspects) At(p model.ProcessID) model.ProcessSet {
	now := o.Clock.Now()
	n := o.Pattern.N()
	if o.Shape != ShapePerfect && now < o.StabilizeAfter {
		// Chaotic prefix: suspect everyone but yourself. Legal for both ◇
		// classes (their accuracy clauses are eventual) and maximally
		// disruptive to quorum formation, which is what the prefix is for.
		out := model.AllProcesses(n)
		out.Remove(p)
		return out
	}
	crashed := model.AllProcesses(n).Minus(visibleAlive(o.Pattern, now, o.SuspicionDelay))
	if o.Shape == ShapeEventuallyStrong {
		// Defame everyone except the querier and the lowest-id visibly-alive
		// process: completeness holds (all crashed are suspected), and
		// eventually exactly one correct process — the eventual leader — is
		// suspected by nobody, the weak-accuracy clause of ◇S.
		out := model.AllProcesses(n)
		out.Remove(p)
		if leader, ok := visibleAlive(o.Pattern, now, o.SuspicionDelay).Min(); ok {
			out.Remove(leader)
		}
		return out.Union(crashed)
	}
	return crashed
}

// SuspectOmega derives Ω from a suspect source: the leader is the lowest-id
// unsuspected process (the classical ◇S → Ω reduction). Once the suspect
// list has converged — ◇ classes past their prefix, all crashes visible —
// every process outputs the same correct leader.
type SuspectOmega struct {
	Suspects SuspectSource
	N        int
}

// At implements OmegaSource.
func (s SuspectOmega) At(p model.ProcessID) model.ProcessID {
	trusted := model.AllProcesses(s.N).Minus(s.Suspects.At(p))
	if leader, ok := trusted.Min(); ok {
		return leader
	}
	// Everyone suspected (possible only in a chaotic prefix that does not
	// even spare the querier, or when all processes crashed): the output is
	// unconstrained; trust yourself.
	return p
}

// SuspectSigma derives Σ from a suspect source. With Accurate set (class P:
// suspicion implies crash) the complement of the suspect list is itself a
// correct Σ in every environment — it contains every correct process, so any
// two outputs intersect, and it converges to exactly the correct set. Without
// it (◇P, ◇S: false suspicion possible) the complement may momentarily
// exclude correct processes, so the derivation only trusts it when it is a
// strict majority and otherwise falls back to the fixed lowest-id majority:
// all outputs are then majorities, hence pairwise intersecting — safety in
// every run — while termination additionally needs the emitted quorum to be
// eventually all-correct, which holds exactly in majority-correct runs for
// ◇P and can fail for ◇S (whose converged complement is just {leader,
// querier}). That asymmetry is the point: it is the class structure of the
// paper made executable.
type SuspectSigma struct {
	Suspects SuspectSource
	N        int
	Accurate bool
}

// At implements SigmaSource.
func (s SuspectSigma) At(p model.ProcessID) model.ProcessSet {
	trusted := model.AllProcesses(s.N).Minus(s.Suspects.At(p))
	if s.Accurate || 2*trusted.Len() > s.N {
		return trusted
	}
	majority := model.NewProcessSet()
	for i := 0; i < s.N/2+1; i++ {
		majority.Add(model.ProcessID(i))
	}
	return majority
}

// SuspectFS derives a failure signal from an accurate suspect source: red as
// soon as anyone is suspected. Sound only for class P, where suspicion
// implies a crash (the accuracy clause of FS); deriving FS from a ◇ class
// would turn red during the false-suspicion prefix with no failure.
type SuspectFS struct {
	Suspects SuspectSource
}

// At implements FSSource.
func (s SuspectFS) At(p model.ProcessID) model.FSValue {
	if s.Suspects.At(p).IsEmpty() {
		return model.Green
	}
	return model.Red
}

var (
	_ SuspectSource = (*OracleSuspects)(nil)
	_ OmegaSource   = SuspectOmega{}
	_ SigmaSource   = SuspectSigma{}
	_ FSSource      = SuspectFS{}
)
