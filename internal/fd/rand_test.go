package fd

import "math/rand"

// newRand returns a deterministic PRNG for property tests seeded from a
// quick-check-generated value.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
