package fd

import (
	"weakestfd/internal/model"
)

// OracleConfig tunes the whole oracle detector family of one run: how long
// crashes stay invisible to Σ and Ω, how long FS takes to turn red, and when
// (and into which regime) Ψ leaves ⊥. All delays are logical ticks. The zero
// value is the exact-oracle family: crashes visible immediately, Ψ switching
// at time zero into its (Ω, Σ) regime unless a failure already occurred.
type OracleConfig struct {
	// SuspicionDelay is how many logical ticks after a crash the crashed
	// process keeps appearing in Σ quorums and as an Ω leader candidate.
	SuspicionDelay model.Time
	// DetectionDelay is how many logical ticks after the first crash the FS
	// signal turns red.
	DetectionDelay model.Time
	// PsiSwitchAfter is the logical time at which Ψ leaves ⊥.
	PsiSwitchAfter model.Time
	// PsiPolicy selects Ψ's regime at switch time. The zero value
	// (PreferOmegaSigma) always picks (Ω, Σ); PreferFSOnFailure picks FS
	// when a failure has occurred by the switch.
	PsiPolicy PsiPolicy
}

// Oracles is the oracle-backed realisation of every detector the paper's
// protocols consume, wired over one failure pattern and clock. It is the
// detector side of a scenario: hand Omega/Sigma to the register and consensus
// constructions, Psi and FS to the QC/NBAC stack.
type Oracles struct {
	Omega *OracleOmega
	Sigma *OracleSigma
	FS    *OracleFS
	Psi   *OraclePsi
}

// NewOracles builds the oracle detector family over the given live failure
// pattern and clock. Ψ's underlying (Ω, Σ) and FS regimes are the returned
// Omega/Sigma/FS detectors themselves, so the whole family shares one
// consistent view (including the configured delays).
func NewOracles(pattern *model.FailurePattern, clock TimeSource, cfg OracleConfig) *Oracles {
	o := &Oracles{
		Omega: &OracleOmega{Pattern: pattern, Clock: clock, SuspicionDelay: cfg.SuspicionDelay},
		Sigma: &OracleSigma{Pattern: pattern, Clock: clock, SuspicionDelay: cfg.SuspicionDelay},
		FS:    &OracleFS{Pattern: pattern, Clock: clock, DetectionDelay: cfg.DetectionDelay},
	}
	o.Psi = &OraclePsi{
		Pattern:     pattern,
		Clock:       clock,
		SwitchAfter: cfg.PsiSwitchAfter,
		Policy:      cfg.PsiPolicy,
		Omega:       o.Omega,
		Sigma:       o.Sigma,
		FS:          o.FS,
	}
	return o
}
