package fd

import (
	"testing"
	"testing/quick"

	"weakestfd/internal/model"
)

// fakeClock is a settable TimeSource.
type fakeClock struct{ t model.Time }

func (c *fakeClock) Now() model.Time { return c.t }

func TestOracleSigmaTracksVisibleAlive(t *testing.T) {
	pattern := model.NewFailurePattern(4)
	clock := &fakeClock{}
	sigma := &OracleSigma{Pattern: pattern, Clock: clock}

	if got := sigma.At(0); !got.Equal(model.AllProcesses(4)) {
		t.Fatalf("initial quorum = %v", got)
	}
	pattern.Crash(2, 10)
	clock.t = 9
	if got := sigma.At(1); !got.Contains(2) {
		t.Fatalf("quorum before crash time should still contain p2: %v", got)
	}
	clock.t = 10
	if got := sigma.At(1); got.Contains(2) {
		t.Fatalf("quorum after crash contains crashed process: %v", got)
	}
}

func TestOracleSigmaSuspicionDelay(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	clock := &fakeClock{}
	sigma := &OracleSigma{Pattern: pattern, Clock: clock, SuspicionDelay: 5}
	pattern.Crash(0, 10)
	clock.t = 12
	if got := sigma.At(1); !got.Contains(0) {
		t.Fatalf("crash visible before suspicion delay elapsed: %v", got)
	}
	clock.t = 15
	if got := sigma.At(1); got.Contains(0) {
		t.Fatalf("crash still hidden after suspicion delay: %v", got)
	}
}

// Property: any two OracleSigma outputs intersect and eventually equal the
// correct set, for random crash patterns that keep at least one process
// correct — the two clauses of Σ's specification.
func TestQuickOracleSigmaSpec(t *testing.T) {
	prop := func(seed int64) bool {
		rng := newRand(seed)
		n := 2 + rng.Intn(5)
		pattern := model.NewFailurePattern(n)
		clock := &fakeClock{}
		// Crash up to n-1 processes at random times in [1, 50].
		crashes := rng.Intn(n)
		for i := 0; i < crashes; i++ {
			pattern.Crash(model.ProcessID(i), model.Time(1+rng.Intn(50)))
		}
		sigma := &OracleSigma{Pattern: pattern, Clock: clock, SuspicionDelay: model.Time(rng.Intn(5))}
		hist := model.NewHistory()
		for _, tick := range []model.Time{0, 5, 10, 20, 40, 80, 200} {
			clock.t = tick
			for p := 0; p < n; p++ {
				hist.Record(model.ProcessID(p), tick, sigma.At(model.ProcessID(p)))
			}
		}
		return model.CheckSigma(pattern, hist, model.DefaultCheckOptions()).OK
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOracleOmegaConvergesToLowestCorrect(t *testing.T) {
	pattern := model.NewFailurePattern(4)
	clock := &fakeClock{}
	omega := &OracleOmega{Pattern: pattern, Clock: clock}

	if got := omega.At(3); got != 0 {
		t.Fatalf("initial leader = %v", got)
	}
	pattern.Crash(0, 5)
	pattern.Crash(1, 8)
	clock.t = 20
	for p := 0; p < 4; p++ {
		if got := omega.At(model.ProcessID(p)); got != 2 {
			t.Fatalf("leader at %d = %v, want p2", p, got)
		}
	}
}

func TestOracleOmegaAllCrashed(t *testing.T) {
	pattern := model.NewFailurePattern(2)
	clock := &fakeClock{t: 100}
	pattern.Crash(0, 1)
	pattern.Crash(1, 1)
	omega := &OracleOmega{Pattern: pattern, Clock: clock}
	_ = omega.At(0) // must not panic; value unconstrained
}

func TestQuickOracleOmegaSpec(t *testing.T) {
	prop := func(seed int64) bool {
		rng := newRand(seed)
		n := 2 + rng.Intn(5)
		pattern := model.NewFailurePattern(n)
		clock := &fakeClock{}
		crashes := rng.Intn(n)
		for i := 0; i < crashes; i++ {
			pattern.Crash(model.ProcessID(rng.Intn(n)), model.Time(1+rng.Intn(50)))
		}
		if pattern.Correct().IsEmpty() {
			return true
		}
		omega := &OracleOmega{Pattern: pattern, Clock: clock, SuspicionDelay: model.Time(rng.Intn(4))}
		hist := model.NewHistory()
		for _, tick := range []model.Time{0, 10, 30, 60, 200} {
			clock.t = tick
			for p := 0; p < n; p++ {
				hist.Record(model.ProcessID(p), tick, omega.At(model.ProcessID(p)))
			}
		}
		return model.CheckOmega(pattern, hist, model.DefaultCheckOptions()).OK
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOracleFS(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	clock := &fakeClock{}
	fs := &OracleFS{Pattern: pattern, Clock: clock, DetectionDelay: 3}

	if fs.At(0) != model.Green {
		t.Fatalf("green expected before any failure")
	}
	pattern.Crash(1, 10)
	clock.t = 11
	if fs.At(0) != model.Green {
		t.Fatalf("red before detection delay elapsed")
	}
	clock.t = 13
	if fs.At(0) != model.Red {
		t.Fatalf("green after detection delay elapsed")
	}
}

func TestOraclePsiOmegaSigmaBranch(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	clock := &fakeClock{}
	psi := &OraclePsi{Pattern: pattern, Clock: clock, SwitchAfter: 10, Policy: PreferFSOnFailure}

	if got := psi.At(0); got.Phase != model.PsiBottom {
		t.Fatalf("before switch: %v", got)
	}
	if psi.Mode() != model.PsiBottom {
		t.Fatalf("Mode before switch = %v", psi.Mode())
	}
	clock.t = 10
	got := psi.At(0)
	if got.Phase != model.PsiOmegaSigma {
		t.Fatalf("no failure: expected (Ω,Σ) regime, got %v", got)
	}
	// A failure after the decision must not flip the regime.
	pattern.Crash(2, 11)
	clock.t = 20
	if got := psi.At(1); got.Phase != model.PsiOmegaSigma {
		t.Fatalf("regime flipped after decision: %v", got)
	}
	if psi.Mode() != model.PsiOmegaSigma {
		t.Fatalf("Mode = %v", psi.Mode())
	}
}

func TestOraclePsiFSBranch(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	clock := &fakeClock{}
	psi := &OraclePsi{Pattern: pattern, Clock: clock, SwitchAfter: 10, Policy: PreferFSOnFailure}
	pattern.Crash(0, 5)
	clock.t = 12
	got := psi.At(1)
	if got.Phase != model.PsiFS || got.FS != model.Red {
		t.Fatalf("expected FS:red, got %v", got)
	}
	if psi.Mode() != model.PsiFS {
		t.Fatalf("Mode = %v", psi.Mode())
	}
}

func TestOraclePsiPreferOmegaSigmaEvenAfterFailure(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	clock := &fakeClock{}
	psi := &OraclePsi{Pattern: pattern, Clock: clock, SwitchAfter: 0, Policy: PreferOmegaSigma}
	pattern.Crash(0, 1)
	clock.t = 10
	if got := psi.At(2); got.Phase != model.PsiOmegaSigma {
		t.Fatalf("PreferOmegaSigma policy switched to %v", got)
	}
}

// Property: OraclePsi histories always validate against the Ψ specification.
func TestQuickOraclePsiSpec(t *testing.T) {
	prop := func(seed int64) bool {
		rng := newRand(seed)
		n := 2 + rng.Intn(4)
		pattern := model.NewFailurePattern(n)
		clock := &fakeClock{}
		crashes := rng.Intn(n)
		for i := 0; i < crashes; i++ {
			pattern.Crash(model.ProcessID(i), model.Time(1+rng.Intn(30)))
		}
		policy := PreferOmegaSigma
		if rng.Intn(2) == 0 {
			policy = PreferFSOnFailure
		}
		psi := &OraclePsi{
			Pattern:     pattern,
			Clock:       clock,
			SwitchAfter: model.Time(rng.Intn(40)),
			Policy:      policy,
		}
		hist := model.NewHistory()
		for _, tick := range []model.Time{0, 5, 15, 35, 60, 200} {
			clock.t = tick
			for p := 0; p < n; p++ {
				hist.Record(model.ProcessID(p), tick, psi.At(model.ProcessID(p)))
			}
		}
		return model.CheckPsi(pattern, hist, model.DefaultCheckOptions()).OK
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBindRecordsHistories(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	clock := &fakeClock{t: 7}
	omegaHist, sigmaHist := model.NewHistory(), model.NewHistory()

	var omega Omega = Bind[model.ProcessID]{Proc: 1, Src: &OracleOmega{Pattern: pattern, Clock: clock}, Clock: clock, Hist: omegaHist}
	var sigma Sigma = Bind[model.ProcessSet]{Proc: 1, Src: &OracleSigma{Pattern: pattern, Clock: clock}, Clock: clock, Hist: sigmaHist}

	if got := omega.Sample(); got != 0 {
		t.Fatalf("omega Sample = %v", got)
	}
	if got := sigma.Sample(); !got.Equal(model.AllProcesses(3)) {
		t.Fatalf("sigma Sample = %v", got)
	}
	if omegaHist.Len() != 1 || sigmaHist.Len() != 1 {
		t.Fatalf("histories not recorded: %d, %d", omegaHist.Len(), sigmaHist.Len())
	}
	s := omegaHist.Samples()[0]
	if s.Process != 1 || s.Time != 7 {
		t.Fatalf("sample = %+v", s)
	}

	fsHist, psiHist := model.NewHistory(), model.NewHistory()
	bfs := Bind[model.FSValue]{Proc: 2, Src: &OracleFS{Pattern: pattern, Clock: clock}, Clock: clock, Hist: fsHist}
	if bfs.Sample() != model.Green {
		t.Fatalf("Sample = %v", bfs.Sample())
	}
	bpsi := Bind[model.PsiValue]{Proc: 0, Src: &OraclePsi{Pattern: pattern, Clock: clock}, Clock: clock, Hist: psiHist}
	if bpsi.Sample().Phase != model.PsiOmegaSigma {
		t.Fatalf("Sample = %v", bpsi.Sample())
	}
	if fsHist.Len() != 1 || psiHist.Len() == 0 {
		t.Fatalf("fs/psi histories not recorded")
	}
}

func TestBindWithoutHistory(t *testing.T) {
	pattern := model.NewFailurePattern(2)
	clock := &fakeClock{}
	b := BindTo[model.ProcessID](0, &OracleOmega{Pattern: pattern, Clock: clock}, clock)
	if b.Sample() != 0 {
		t.Fatalf("Sample wrong")
	}
}
