package fd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"weakestfd/internal/model"
)

// DetectorSpec is the declarative description of one detector family: a
// registry class name plus quality parameters. It is the unit the scenario
// harness, the minimiser and the sweep CLI pass around: comparable, JSON- and
// flag-serialisable, with a canonical String form that doubles as its
// fingerprint. The zero value is the exact paper family — "omega-sigma" with
// crashes visible immediately and Ψ switching at time zero.
//
// All delays are logical ticks of the run's clock, except the heartbeat
// pacing parameters, which message-passing classes read as microseconds of
// virtual time. Which parameters matter depends on the class:
//
//	omega-sigma        suspicion (Σ/Ω lag), detection (FS lag), switch + policy (Ψ)
//	perfect            suspicion (completeness lag; accuracy stays perpetual)
//	eventually-perfect suspicion, stabilize (end of the false-suspicion prefix)
//	eventually-strong  suspicion, stabilize
//	heartbeat          interval, timeout (virtual-time µs; internal/fdimpl)
//
// Parameters a class does not consume are ignored by its builder; the
// registry records which keys each class consumes (Registry.Params), which
// is what mutation and frontier searches enumerate.
type DetectorSpec struct {
	// Class is the registry name of the detector family; empty means
	// "omega-sigma", the paper's (Ω, Σ, FS, Ψ) oracle family.
	Class string `json:"class,omitempty"`
	// SuspicionDelay is how many ticks after a crash the crashed process
	// keeps being trusted (appears in Σ quorums, as an Ω leader candidate,
	// outside suspect lists).
	SuspicionDelay model.Time `json:"suspicion,omitempty"`
	// DetectionDelay is how many ticks after the first crash the FS signal
	// turns red.
	DetectionDelay model.Time `json:"detection,omitempty"`
	// StabilizeAfter is when the ◇ classes end their false-suspicion prefix.
	StabilizeAfter model.Time `json:"stabilize,omitempty"`
	// PsiSwitchAfter is the tick at which Ψ leaves ⊥.
	PsiSwitchAfter model.Time `json:"psi_switch,omitempty"`
	// HeartbeatInterval is the pacing of message-passing detector classes,
	// in microseconds of virtual time (0 = the implementation's default).
	HeartbeatInterval model.Time `json:"hb_interval,omitempty"`
	// HeartbeatTimeout is the silence threshold of message-passing detector
	// classes, in microseconds of virtual time (0 = the implementation's
	// default).
	HeartbeatTimeout model.Time `json:"hb_timeout,omitempty"`
	// PsiPolicy selects Ψ's regime at switch time.
	PsiPolicy PsiPolicy `json:"psi_policy,omitempty"`
}

// ParamDir classifies how a quality parameter's value relates to detector
// strength — the monotonicity contract a frontier bisection leans on.
type ParamDir int

const (
	// DirNone: the parameter has no monotone quality convention; searches
	// must skip it. The direction of unknown keys.
	DirNone ParamDir = iota
	// DirWeakens: the degradation convention — 0 is the exact detector and
	// larger values are strictly weaker quality.
	DirWeakens
	// DirStrengthens: the inverted convention of the heartbeat pacing
	// parameters — 0 means "the implementation's default", and among
	// positive values a larger one is *stronger* (a longer timeout tolerates
	// more delay). A search over such an axis looks for the smallest
	// positive value that still passes, never probing 0.
	DirStrengthens
)

// String renders the direction for error messages.
func (d ParamDir) String() string {
	switch d {
	case DirWeakens:
		return "weakens"
	case DirStrengthens:
		return "strengthens"
	}
	return "none"
}

// specParam is one named quality parameter of the spec grammar, in canonical
// render order. One table drives parsing, rendering and the minimiser's
// shrink dimensions. dir records each parameter's monotone quality
// convention: the degradation axes weaken (0 is the exact detector and
// larger values are strictly weaker), while the heartbeat pacing parameters
// strengthen among positive values (0 means "the implementation's default"
// and a larger timeout is *stronger*) — searches pick their bracket per
// direction (fd.ParamDirection).
var specParams = []struct {
	key string
	dir ParamDir
	get func(*DetectorSpec) *model.Time
}{
	{"suspect", DirWeakens, func(s *DetectorSpec) *model.Time { return &s.SuspicionDelay }},
	{"detect", DirWeakens, func(s *DetectorSpec) *model.Time { return &s.DetectionDelay }},
	{"stabilize", DirWeakens, func(s *DetectorSpec) *model.Time { return &s.StabilizeAfter }},
	{"switch", DirWeakens, func(s *DetectorSpec) *model.Time { return &s.PsiSwitchAfter }},
	{"interval", DirStrengthens, func(s *DetectorSpec) *model.Time { return &s.HeartbeatInterval }},
	{"timeout", DirStrengthens, func(s *DetectorSpec) *model.Time { return &s.HeartbeatTimeout }},
}

// ParamDirection reports the named parameter's monotone quality convention;
// DirNone for unknown keys.
func ParamDirection(key string) ParamDir {
	for _, p := range specParams {
		if p.key == key {
			return p.dir
		}
	}
	return DirNone
}

// ParamWeakens reports whether the named parameter follows the degradation
// convention (0 = exact, larger = weaker); false for unknown keys and for
// parameters with inverted or defaulted-at-zero semantics (ParamDirection
// distinguishes those).
func ParamWeakens(key string) bool {
	return ParamDirection(key) == DirWeakens
}

// TimeParams returns pointers to the spec's logical-tick quality parameters,
// in canonical order — the dimensions a shrinker (scenario.Minimize) bisects.
func (s *DetectorSpec) TimeParams() []*model.Time {
	out := make([]*model.Time, len(specParams))
	for i, p := range specParams {
		out[i] = p.get(s)
	}
	return out
}

// SpecParamKeys returns the grammar keys of the quality parameters, in
// canonical render order — the full axis alphabet a mutation or frontier
// search can enumerate (restrict it per class with Registry.Params).
func SpecParamKeys() []string {
	out := make([]string, len(specParams))
	for i, p := range specParams {
		out[i] = p.key
	}
	return out
}

// Param returns a pointer to the quality parameter named by the grammar key,
// or false for an unknown key. It is the programmatic form of the spec
// grammar, used by the frontier search and the config mutators to perturb
// one named axis.
func (s *DetectorSpec) Param(key string) (*model.Time, bool) {
	for _, p := range specParams {
		if p.key == key {
			return p.get(s), true
		}
	}
	return nil, false
}

// Zeroed returns the spec with every quality parameter reset: the same class
// at its exact, perturbation-free quality.
func (s DetectorSpec) Zeroed() DetectorSpec {
	return DetectorSpec{Class: s.Class}
}

// className returns the spec's class with the default applied.
func (s DetectorSpec) className() string {
	if s.Class == "" {
		return ClassOmegaSigma
	}
	return s.Class
}

// String renders the spec canonically in the registry grammar:
// "class{key:value,...}" with zero-valued parameters omitted and keys in
// fixed order, or just "class" for an unperturbed spec. The rendering is
// parseable by ParseSpec and byte-stable, so it serves as the spec's
// fingerprint in result fingerprints and minimiser memos.
func (s DetectorSpec) String() string {
	var parts []string
	for _, p := range specParams {
		if v := *p.get(&s); v != 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", p.key, v))
		}
	}
	if s.PsiPolicy != PreferOmegaSigma {
		parts = append(parts, "policy:fs-on-failure")
	}
	if len(parts) == 0 {
		return s.className()
	}
	return s.className() + "{" + strings.Join(parts, ",") + "}"
}

// ParseSpec parses the registry grammar: a class name, optionally followed by
// "{key:value,...}" quality parameters. Keys are suspect, detect, stabilize,
// switch (logical-tick integers) and policy (omega-sigma | fs-on-failure).
// Examples:
//
//	omega-sigma
//	perfect{suspect:10}
//	eventually-perfect{suspect:10,stabilize:50}
//	omega-sigma{switch:40,policy:fs-on-failure}
//
// Class aliases are resolved by the registry at build time, not here, so a
// parsed spec round-trips through String unchanged.
func ParseSpec(s string) (DetectorSpec, error) {
	var spec DetectorSpec
	s = strings.TrimSpace(s)
	body, hasBody := "", false
	if i := strings.IndexByte(s, '{'); i >= 0 {
		if !strings.HasSuffix(s, "}") {
			return spec, fmt.Errorf("detector spec %q: unterminated parameter block", s)
		}
		body, hasBody = s[i+1:len(s)-1], true
		s = s[:i]
	}
	if s == "" {
		return spec, fmt.Errorf("detector spec: empty class name")
	}
	spec.Class = s
	if !hasBody {
		return spec, nil
	}
	if strings.TrimSpace(body) == "" {
		return spec, fmt.Errorf("detector spec %q: empty parameter block", s)
	}
	for _, kv := range strings.Split(body, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), ":")
		if !ok {
			return spec, fmt.Errorf("detector spec %q: bad parameter %q (want key:value)", s, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "policy" {
			switch val {
			case "omega-sigma", "os":
				spec.PsiPolicy = PreferOmegaSigma
			case "fs-on-failure", "fs":
				spec.PsiPolicy = PreferFSOnFailure
			default:
				return spec, fmt.Errorf("detector spec %q: unknown policy %q", s, val)
			}
			continue
		}
		found := false
		for _, p := range specParams {
			if p.key == key {
				ticks, err := strconv.ParseInt(val, 10, 64)
				if err != nil || ticks < 0 {
					return spec, fmt.Errorf("detector spec %q: bad %s value %q (want logical ticks >= 0)", s, key, val)
				}
				*p.get(&spec) = model.Time(ticks)
				found = true
				break
			}
		}
		if !found {
			return spec, fmt.Errorf("detector spec %q: unknown parameter %q", s, key)
		}
	}
	return spec, nil
}

// MustParseSpec is ParseSpec for static spec literals; it panics on error.
func MustParseSpec(s string) DetectorSpec {
	spec, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// ParseSpecList splits a list of specs on top-level commas (commas inside a
// {...} parameter block do not split) and parses each element — the format of
// the sweep CLI's -detectors axis.
func ParseSpecList(s string) ([]DetectorSpec, error) {
	var out []DetectorSpec
	depth, start := 0, 0
	flush := func(end int) error {
		part := strings.TrimSpace(s[start:end])
		if part == "" {
			return nil
		}
		spec, err := ParseSpec(part)
		if err != nil {
			return err
		}
		out = append(out, spec)
		return nil
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("detector list %q: unbalanced '}'", s)
			}
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("detector list %q: unbalanced '{'", s)
	}
	if err := flush(len(s)); err != nil {
		return nil, err
	}
	return out, nil
}

// Suite is the full detector side of one run, built from a DetectorSpec over
// a live failure pattern: one system-wide source per detector the paper's
// protocols consume. Fields the spec's class cannot honestly provide are nil
// — e.g. the ◇ classes yield no FS or Ψ (false suspicion would violate their
// accuracy clauses) — and protocols requiring a missing detector must refuse
// to set up, which is how a sweep reports "this class does not solve this
// problem" rather than silently faking the detector.
type Suite struct {
	// Spec is the specification the suite was built from.
	Spec DetectorSpec
	// Omega is the leader detector Ω, or nil.
	Omega OmegaSource
	// Sigma is the quorum detector Σ (possibly a derived emulation whose
	// liveness needs a correct majority — see SuspectSigma), or nil.
	Sigma SigmaSource
	// FS is the failure-signal detector, or nil.
	FS FSSource
	// Psi is the detector Ψ, or nil.
	Psi PsiSource
	// Suspects is the Chandra–Toueg suspect-list view, nil unless the class
	// is one of P, ◇P, ◇S.
	Suspects SuspectSource
	// Stop tears down whatever the builder stood up (message-passing
	// classes run background protocols per process); nil for the oracle
	// classes, which have nothing to stop. Callers that Build a suite own
	// calling it.
	Stop func()
}

// Env is the build context a detector class constructs its suite over: the
// live failure pattern and clock every class needs, plus the hooks only some
// classes consume.
type Env struct {
	// Pattern is the run's live failure pattern.
	Pattern *model.FailurePattern
	// Clock is the run's logical clock.
	Clock TimeSource
	// Runtime is the run's message-passing runtime (a *net.Network when the
	// scenario harness builds the suite), for detector classes implemented
	// over communication rather than over the oracle pattern; nil when only
	// oracle classes are in play. Builders that need it must type-assert and
	// error helpfully when it is absent.
	Runtime any
	// SuspectHist, if non-nil, receives every suspect-list sample the built
	// suite serves (recorded through fd.Bind's history hook): give it a
	// model.History ring cap and sweeps can measure detector activity
	// without unbounded memory. Classes without a suspect view ignore it.
	SuspectHist *model.History
}

// Builder constructs a detector suite of one class over a build environment.
type Builder func(env Env, spec DetectorSpec) (*Suite, error)

// Registered class names of the built-in families.
const (
	// ClassOmegaSigma is the paper's oracle family: Ω, Σ, FS and Ψ over the
	// live pattern (the former NewOracles). The default class.
	ClassOmegaSigma = "omega-sigma"
	// ClassPerfect is Chandra–Toueg's perfect detector P, with Ω, Σ, FS and
	// Ψ all derived from its (always accurate) suspect list.
	ClassPerfect = "perfect"
	// ClassEventuallyPerfect is ◇P: suspect list with a false-suspicion
	// prefix, derived Ω, majority-fallback Σ, no FS or Ψ.
	ClassEventuallyPerfect = "eventually-perfect"
	// ClassEventuallyStrong is ◇S: like ◇P but permanently defaming all
	// correct processes except the eventual leader.
	ClassEventuallyStrong = "eventually-strong"
)

// classAliases maps accepted alternate names onto registered classes.
var classAliases = map[string]string{
	"":          ClassOmegaSigma,
	"oracle":    ClassOmegaSigma,
	"p":         ClassPerfect,
	"diamond-p": ClassEventuallyPerfect,
	"<>p":       ClassEventuallyPerfect,
	"diamond-s": ClassEventuallyStrong,
	"<>s":       ClassEventuallyStrong,
}

// classEntry is one registered class: its builder plus the grammar keys its
// builder consumes.
type classEntry struct {
	build  Builder
	params []string
}

// Registry maps detector class names to suite builders. The zero value is
// empty; NewRegistry returns one with the built-in classes registered.
// Registries are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	classes map[string]classEntry
}

// NewRegistry returns a registry with the built-in classes (omega-sigma,
// perfect, eventually-perfect, eventually-strong) registered.
func NewRegistry() *Registry {
	r := &Registry{}
	r.Register(ClassOmegaSigma, buildOmegaSigma, "suspect", "detect", "switch")
	r.Register(ClassPerfect, buildSuspectClass(ShapePerfect), "suspect")
	r.Register(ClassEventuallyPerfect, buildSuspectClass(ShapeEventuallyPerfect), "suspect", "stabilize")
	r.Register(ClassEventuallyStrong, buildSuspectClass(ShapeEventuallyStrong), "suspect", "stabilize")
	return r
}

// Register adds (or replaces) a class builder. The optional params name the
// spec-grammar keys the class's builder consumes (see SpecParamKeys); they
// are what Params reports to mutation and frontier searches, so a class
// registered without them is treated as consuming no quality parameter.
func (r *Registry) Register(class string, b Builder, params ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.classes == nil {
		r.classes = make(map[string]classEntry)
	}
	r.classes[class] = classEntry{build: b, params: params}
}

// Params returns the spec-grammar keys the class's builder consumes (aliases
// resolved), in the order they were registered; nil for an unknown class.
func (r *Registry) Params(class string) []string {
	if canon, ok := classAliases[class]; ok {
		class = canon
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.classes[class].params...)
}

// Classes returns the registered class names, sorted.
func (r *Registry) Classes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.classes))
	for c := range r.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Resolve canonicalises a class name (default and aliases applied) and
// reports whether it is registered.
func (r *Registry) Resolve(class string) (string, bool) {
	if canon, ok := classAliases[class]; ok {
		class = canon
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.classes[class]
	return class, ok
}

// Build constructs the suite the spec describes over the given environment.
// Unknown classes error with the registered alternatives.
func (r *Registry) Build(env Env, spec DetectorSpec) (*Suite, error) {
	class, ok := r.Resolve(spec.Class)
	if !ok {
		return nil, fmt.Errorf("fd: unknown detector class %q (registered: %s)", spec.Class, strings.Join(r.Classes(), ", "))
	}
	r.mu.RLock()
	b := r.classes[class].build
	r.mu.RUnlock()
	suite, err := b(env, spec)
	if err != nil {
		return nil, fmt.Errorf("fd: build %s: %w", spec, err)
	}
	suite.Spec = spec
	return suite, nil
}

// defaultRegistry serves the package-level Build.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the package-level registry with the built-in
// classes; callers may Register additional classes on it.
func DefaultRegistry() *Registry { return defaultRegistry }

// Build constructs spec's suite using the default registry, over an
// oracle-only environment (no runtime, no history). The scenario harness
// builds through DefaultRegistry().Build with a full Env instead.
func Build(pattern *model.FailurePattern, clock TimeSource, spec DetectorSpec) (*Suite, error) {
	return defaultRegistry.Build(Env{Pattern: pattern, Clock: clock}, spec)
}

// buildOmegaSigma is the paper's oracle family — Ω, Σ, FS and Ψ over the
// live pattern, Ψ's regimes wired to the very same Ω/Σ/FS detectors so the
// whole family shares one consistent view (including the configured delays).
func buildOmegaSigma(env Env, spec DetectorSpec) (*Suite, error) {
	omega := &OracleOmega{Pattern: env.Pattern, Clock: env.Clock, SuspicionDelay: spec.SuspicionDelay}
	sigma := &OracleSigma{Pattern: env.Pattern, Clock: env.Clock, SuspicionDelay: spec.SuspicionDelay}
	fs := &OracleFS{Pattern: env.Pattern, Clock: env.Clock, DetectionDelay: spec.DetectionDelay}
	return &Suite{
		Omega: omega,
		Sigma: sigma,
		FS:    fs,
		Psi: &OraclePsi{
			Pattern:     env.Pattern,
			Clock:       env.Clock,
			SwitchAfter: spec.PsiSwitchAfter,
			Policy:      spec.PsiPolicy,
			Omega:       omega,
			Sigma:       sigma,
			FS:          fs,
		},
	}, nil
}

// buildSuspectClass derives a full-as-honestly-possible suite from the
// suspect oracle of the given shape. P derives everything (its list is
// accurate, so the complement is a true Σ and non-emptiness a true failure
// signal); the ◇ classes derive Ω and a majority-fallback Σ only. With
// env.SuspectHist set, the suspect source is wrapped so every sample the
// derived detectors take is recorded — the derivations query through the
// wrapper, so the recorded history is exactly what the protocol consumed.
func buildSuspectClass(shape SuspectShape) Builder {
	return func(env Env, spec DetectorSpec) (*Suite, error) {
		n := env.Pattern.N()
		var sus SuspectSource = &OracleSuspects{
			Pattern:        env.Pattern,
			Clock:          env.Clock,
			Shape:          shape,
			SuspicionDelay: spec.SuspicionDelay,
			StabilizeAfter: spec.StabilizeAfter,
		}
		if env.SuspectHist != nil {
			sus = Recorded(sus, env.Clock, n, env.SuspectHist)
		}
		suite := &Suite{
			Suspects: sus,
			Omega:    SuspectOmega{Suspects: sus, N: n},
			Sigma:    SuspectSigma{Suspects: sus, N: n, Accurate: shape == ShapePerfect},
		}
		if shape == ShapePerfect {
			fs := SuspectFS{Suspects: sus}
			suite.FS = fs
			suite.Psi = &OraclePsi{
				Pattern:     env.Pattern,
				Clock:       env.Clock,
				SwitchAfter: spec.PsiSwitchAfter,
				Policy:      spec.PsiPolicy,
				Omega:       suite.Omega,
				Sigma:       suite.Sigma,
				FS:          fs,
			}
		}
		return suite, nil
	}
}
