// Package fd defines the failure-detector abstractions of the paper and their
// oracle-backed realisations.
//
// Two levels of interface are provided:
//
//   - System-wide sources (OmegaSource, SigmaSource, FSSource, PsiSource):
//     a single object modelling the whole detector D; queries carry the
//     identity of the querying process, mirroring the paper's H(p, t).
//   - Per-process modules (Omega, Sigma, FS, Psi): the view a protocol
//     running at one process has of its local failure-detector module. Bind*
//     adapters connect a source to a process and optionally record every
//     sample into a model.History so that runs can be checked against the
//     formal specifications.
//
// The oracle detectors in this package read the live model.FailurePattern
// maintained by the runtime (internal/net) or the simulator (internal/sim).
// They are exact realisations of the definitions in Section 2 and Section 6.1
// of the paper; the message-passing implementations (which need extra
// assumptions such as a correct majority or partial synchrony) live in
// internal/fdimpl.
package fd

import (
	"weakestfd/internal/model"
)

// TimeSource provides the current logical time; *net.Clock and the simulator
// clock satisfy it.
type TimeSource interface {
	Now() model.Time
}

// Omega is the per-process view of the leader detector Ω: it outputs the id
// of a process, and eventually outputs the id of the same correct process at
// all correct processes.
type Omega interface {
	Leader() model.ProcessID
}

// Sigma is the per-process view of the quorum detector Σ: it outputs a set of
// processes such that any two outputs (at any processes and times) intersect,
// and eventually every output at a correct process contains only correct
// processes.
type Sigma interface {
	Quorum() model.ProcessSet
}

// FS is the per-process view of the failure-signal detector: green while no
// failure has occurred; after a failure occurs (and only then) it eventually
// outputs red permanently at every correct process.
type FS interface {
	Signal() model.FSValue
}

// Psi is the per-process view of the detector Ψ (Section 6.1): ⊥ for an
// initial period, then either an FS behaviour (allowed only if a failure
// occurred) or an (Ω, Σ) behaviour, with all processes making the same choice.
type Psi interface {
	Value() model.PsiValue
}

// OmegaSigma is the composition (Ω, Σ) used by the consensus algorithm.
type OmegaSigma interface {
	Omega
	Sigma
}

// OmegaSource is a system-wide Ω.
type OmegaSource interface {
	LeaderAt(p model.ProcessID) model.ProcessID
}

// SigmaSource is a system-wide Σ.
type SigmaSource interface {
	QuorumAt(p model.ProcessID) model.ProcessSet
}

// FSSource is a system-wide FS.
type FSSource interface {
	SignalAt(p model.ProcessID) model.FSValue
}

// PsiSource is a system-wide Ψ.
type PsiSource interface {
	ValueAt(p model.ProcessID) model.PsiValue
}
