// Package fd defines the failure-detector abstractions of the paper and their
// oracle-backed realisations.
//
// The package is built around one generic pair of interfaces:
//
//   - Source[V] is a system-wide detector D: a single object modelling the
//     whole failure-detector history, queried as H(p, t) — At carries the
//     identity of the querying process, the time is whatever the source's
//     clock says.
//   - Detector[V] is the per-process module: the view a protocol running at
//     one process has of its local failure-detector module. Bind[V] is the
//     one adapter connecting a Source to a process; it optionally records
//     every sample into a model.History so runs can be checked against the
//     formal specifications.
//
// The classes of the paper (and of Chandra–Toueg) are thin aliases over the
// generic pair, differing only in the value type V they output:
//
//	Omega    = Detector[model.ProcessID]  — leader hints
//	Sigma    = Detector[model.ProcessSet] — quorums
//	FS       = Detector[model.FSValue]    — failure signal
//	Psi      = Detector[model.PsiValue]   — the NBAC detector Ψ
//	Suspects = Detector[model.ProcessSet] — Chandra–Toueg suspect lists
//
// so protocol packages read naturally while every piece of binding, history
// recording and quality perturbation is implemented exactly once.
//
// Which concrete family a run gets is declarative: a DetectorSpec names a
// class ("omega-sigma", "perfect", "eventually-perfect", "eventually-strong")
// plus quality parameters, and the Registry builds the corresponding Suite of
// sources over a live model.FailurePattern. The oracle detectors read the
// live pattern maintained by the runtime (internal/net) or the simulator
// (internal/sim); they are exact realisations of the definitions in Section 2
// and Section 6.1 of the paper. The message-passing implementations (which
// need extra assumptions such as a correct majority or partial synchrony)
// live in internal/fdimpl.
package fd

import (
	"weakestfd/internal/model"
)

// TimeSource provides the current logical time; *net.Clock and the simulator
// clock satisfy it.
type TimeSource interface {
	Now() model.Time
}

// Detector is the per-process view of a failure detector with range V: each
// query samples the module's current output.
type Detector[V any] interface {
	Sample() V
}

// Source is a system-wide failure detector with range V: At(p) is the
// paper's H(p, t), the output of p's module at the current time.
type Source[V any] interface {
	At(p model.ProcessID) V
}

// Omega is the per-process view of the leader detector Ω: it outputs the id
// of a process, and eventually outputs the id of the same correct process at
// all correct processes.
type Omega = Detector[model.ProcessID]

// Sigma is the per-process view of the quorum detector Σ: it outputs a set of
// processes such that any two outputs (at any processes and times) intersect,
// and eventually every output at a correct process contains only correct
// processes.
type Sigma = Detector[model.ProcessSet]

// FS is the per-process view of the failure-signal detector: green while no
// failure has occurred; after a failure occurs (and only then) it eventually
// outputs red permanently at every correct process.
type FS = Detector[model.FSValue]

// Psi is the per-process view of the detector Ψ (Section 6.1): ⊥ for an
// initial period, then either an FS behaviour (allowed only if a failure
// occurred) or an (Ω, Σ) behaviour, with all processes making the same choice.
type Psi = Detector[model.PsiValue]

// Suspects is the per-process view of a Chandra–Toueg-style detector
// (P, ◇P, ◇S): it outputs the set of processes it currently suspects to have
// crashed. The class determines which completeness/accuracy clauses the
// output obeys.
type Suspects = Detector[model.ProcessSet]

// OmegaSource is a system-wide Ω.
type OmegaSource = Source[model.ProcessID]

// SigmaSource is a system-wide Σ.
type SigmaSource = Source[model.ProcessSet]

// FSSource is a system-wide FS.
type FSSource = Source[model.FSValue]

// PsiSource is a system-wide Ψ.
type PsiSource = Source[model.PsiValue]

// SuspectSource is a system-wide suspect-list detector (P, ◇P or ◇S).
type SuspectSource = Source[model.ProcessSet]
