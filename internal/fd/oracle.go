package fd

import (
	"sync"

	"weakestfd/internal/model"
)

// Oracle-backed detectors. Each reads the live failure pattern maintained by
// the runtime (crashes are recorded there the moment they are injected) and
// is therefore an exact realisation of the corresponding formal definition.
// An optional suspicion delay postpones the moment a crash becomes visible to
// the detector, exercising the "eventually ..." clauses of the specifications
// without ever violating the perpetual ones.

// OracleSigma is the quorum detector Σ: it outputs the set of processes whose
// crash (if any) is not yet visible. Every output contains every correct
// process, so any two outputs intersect (as long as at least one process is
// correct, which every environment in this module guarantees), and once all
// crashes are visible the output is exactly the set of correct processes.
type OracleSigma struct {
	Pattern *model.FailurePattern
	Clock   TimeSource
	// SuspicionDelay is how many logical ticks after a crash the crashed
	// process keeps appearing in quorums. Zero means crashes are visible
	// immediately.
	SuspicionDelay model.Time

	mu         sync.Mutex
	cached     model.ProcessSet
	haveCache  bool
	validUntil model.Time // cache holds for query times < validUntil
	version    uint64     // pattern version the cache was computed at
}

// At implements SigmaSource. The returned set is shared across samples and
// must be treated as immutable: the visible-alive set only changes when a
// crash is recorded or a suspicion delay expires, so consecutive samples
// reuse one memoized set instead of rebuilding it on every query — the
// quorum-guard poll loops of the protocols sample Σ on every tick.
func (o *OracleSigma) At(model.ProcessID) model.ProcessSet {
	now := o.Clock.Now()
	version := o.Pattern.Version()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.haveCache && o.version == version && now < o.validUntil {
		return o.cached
	}
	o.cached, o.validUntil = o.Pattern.VisiblyAlive(now, o.SuspicionDelay)
	o.haveCache = true
	o.version = version
	return o.cached
}

// OracleOmega is the leader detector Ω: it outputs the lowest-id process whose
// crash is not yet visible. Eventually that is the lowest-id correct process
// at every process.
type OracleOmega struct {
	Pattern        *model.FailurePattern
	Clock          TimeSource
	SuspicionDelay model.Time
}

// At implements OmegaSource.
func (o *OracleOmega) At(model.ProcessID) model.ProcessID {
	if leader, ok := o.Pattern.MinVisiblyAlive(o.Clock.Now(), o.SuspicionDelay); ok {
		return leader
	}
	// All processes crashed: the output is unconstrained by the spec
	// (there are no correct processes); return process 0.
	return 0
}

// OracleFS is the failure-signal detector: green until a crash has occurred
// (and has become visible after DetectionDelay ticks), red permanently
// afterwards.
type OracleFS struct {
	Pattern *model.FailurePattern
	Clock   TimeSource
	// DetectionDelay is how many logical ticks after the first crash the
	// signal turns red. Zero means immediately.
	DetectionDelay model.Time
}

// At implements FSSource.
func (o *OracleFS) At(model.ProcessID) model.FSValue {
	first, ok := o.Pattern.FirstCrashTime()
	if ok && first+o.DetectionDelay <= o.Clock.Now() {
		return model.Red
	}
	return model.Green
}

// PsiPolicy selects which regime OraclePsi switches to when it leaves ⊥.
type PsiPolicy int

const (
	// PreferOmegaSigma always switches to the (Ω, Σ) regime.
	PreferOmegaSigma PsiPolicy = iota
	// PreferFSOnFailure switches to the FS regime if a failure has occurred
	// by the switch time, and to (Ω, Σ) otherwise.
	PreferFSOnFailure
)

// OraclePsi is the detector Ψ of Section 6.1. Every process outputs ⊥ until
// the logical clock passes SwitchAfter; the first query after that point
// fixes the regime for all processes — FS if the policy is PreferFSOnFailure
// and a failure has already occurred, (Ω, Σ) otherwise — as the specification
// requires (the FS regime is legitimate only after a failure, and all
// processes must make the same choice even though they may switch at
// different times).
type OraclePsi struct {
	Pattern     *model.FailurePattern
	Clock       TimeSource
	SwitchAfter model.Time
	Policy      PsiPolicy

	// Underlying regimes. If nil, oracle detectors with no suspicion delay
	// over the same pattern and clock are used.
	Omega OmegaSource
	Sigma SigmaSource
	FS    FSSource

	mu      sync.Mutex
	decided bool
	mode    model.PsiPhase

	fallbackOnce sync.Once
	fbOmega      OmegaSource
	fbSigma      SigmaSource
	fbFS         FSSource
}

// fallbacks interns the default regime detectors once, so a Ψ sampled in a
// hot loop does not allocate a fresh oracle per query (and the Σ fallback
// keeps its memoized sample across queries).
func (o *OraclePsi) fallbacks() {
	o.fallbackOnce.Do(func() {
		o.fbOmega = o.Omega
		o.fbSigma = o.Sigma
		o.fbFS = o.FS
		if o.fbOmega == nil {
			o.fbOmega = &OracleOmega{Pattern: o.Pattern, Clock: o.Clock}
		}
		if o.fbSigma == nil {
			o.fbSigma = &OracleSigma{Pattern: o.Pattern, Clock: o.Clock}
		}
		if o.fbFS == nil {
			o.fbFS = &OracleFS{Pattern: o.Pattern, Clock: o.Clock}
		}
	})
}

func (o *OraclePsi) omega() OmegaSource {
	o.fallbacks()
	return o.fbOmega
}

func (o *OraclePsi) sigma() SigmaSource {
	o.fallbacks()
	return o.fbSigma
}

func (o *OraclePsi) fs() FSSource {
	o.fallbacks()
	return o.fbFS
}

// At implements PsiSource.
func (o *OraclePsi) At(p model.ProcessID) model.PsiValue {
	now := o.Clock.Now()
	if now < o.SwitchAfter {
		return model.PsiValue{Phase: model.PsiBottom}
	}
	o.mu.Lock()
	if !o.decided {
		o.decided = true
		if o.Policy == PreferFSOnFailure && o.Pattern.FailureOccurredBy(now) {
			o.mode = model.PsiFS
		} else {
			o.mode = model.PsiOmegaSigma
		}
	}
	mode := o.mode
	o.mu.Unlock()

	switch mode {
	case model.PsiFS:
		return model.PsiValue{Phase: model.PsiFS, FS: o.fs().At(p)}
	default:
		return model.PsiValue{
			Phase: model.PsiOmegaSigma,
			OS: model.OmegaSigmaValue{
				Leader: o.omega().At(p),
				Quorum: o.sigma().At(p),
			},
		}
	}
}

// Mode returns the regime Ψ has committed to, or PsiBottom if it has not left
// ⊥ yet at any process.
func (o *OraclePsi) Mode() model.PsiPhase {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.decided {
		return model.PsiBottom
	}
	return o.mode
}

// visibleAlive returns the processes whose crash is not yet visible at time
// now given the suspicion delay. The set is freshly built and owned by the
// caller.
func visibleAlive(pattern *model.FailurePattern, now, delay model.Time) model.ProcessSet {
	alive, _ := pattern.VisiblyAlive(now, delay)
	return alive
}

var (
	_ SigmaSource = (*OracleSigma)(nil)
	_ OmegaSource = (*OracleOmega)(nil)
	_ FSSource    = (*OracleFS)(nil)
	_ PsiSource   = (*OraclePsi)(nil)
)
