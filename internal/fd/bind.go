package fd

import (
	"weakestfd/internal/model"
)

// BoundOmega binds an OmegaSource to one process, satisfying Omega. If Hist
// is non-nil every query is recorded (with the time from Clock) so the run
// can be validated with model.CheckOmega.
type BoundOmega struct {
	Proc  model.ProcessID
	Src   OmegaSource
	Clock TimeSource
	Hist  *model.History
}

// Leader implements Omega.
func (b BoundOmega) Leader() model.ProcessID {
	v := b.Src.LeaderAt(b.Proc)
	if b.Hist != nil {
		b.Hist.Record(b.Proc, b.Clock.Now(), v)
	}
	return v
}

// BoundSigma binds a SigmaSource to one process, satisfying Sigma (and
// quorum.SigmaSource). If Hist is non-nil every query is recorded.
type BoundSigma struct {
	Proc  model.ProcessID
	Src   SigmaSource
	Clock TimeSource
	Hist  *model.History
}

// Quorum implements Sigma.
func (b BoundSigma) Quorum() model.ProcessSet {
	v := b.Src.QuorumAt(b.Proc)
	if b.Hist != nil {
		b.Hist.Record(b.Proc, b.Clock.Now(), v)
	}
	return v
}

// BoundFS binds an FSSource to one process, satisfying FS.
type BoundFS struct {
	Proc  model.ProcessID
	Src   FSSource
	Clock TimeSource
	Hist  *model.History
}

// Signal implements FS.
func (b BoundFS) Signal() model.FSValue {
	v := b.Src.SignalAt(b.Proc)
	if b.Hist != nil {
		b.Hist.Record(b.Proc, b.Clock.Now(), v)
	}
	return v
}

// BoundPsi binds a PsiSource to one process, satisfying Psi.
type BoundPsi struct {
	Proc  model.ProcessID
	Src   PsiSource
	Clock TimeSource
	Hist  *model.History
}

// Value implements Psi.
func (b BoundPsi) Value() model.PsiValue {
	v := b.Src.ValueAt(b.Proc)
	if b.Hist != nil {
		b.Hist.Record(b.Proc, b.Clock.Now(), v)
	}
	return v
}

// BoundOmegaSigma is the per-process composition (Ω, Σ).
type BoundOmegaSigma struct {
	BoundOmega
	BoundSigma
}

// NewBoundOmegaSigma builds the per-process pair detector for process p.
func NewBoundOmegaSigma(p model.ProcessID, omega OmegaSource, sigma SigmaSource, clock TimeSource, omegaHist, sigmaHist *model.History) BoundOmegaSigma {
	return BoundOmegaSigma{
		BoundOmega: BoundOmega{Proc: p, Src: omega, Clock: clock, Hist: omegaHist},
		BoundSigma: BoundSigma{Proc: p, Src: sigma, Clock: clock, Hist: sigmaHist},
	}
}

var (
	_ Omega      = BoundOmega{}
	_ Sigma      = BoundSigma{}
	_ FS         = BoundFS{}
	_ Psi        = BoundPsi{}
	_ OmegaSigma = BoundOmegaSigma{}
)
