package fd

import (
	"weakestfd/internal/model"
)

// Bind connects a system-wide Source[V] to one process, satisfying
// Detector[V]: every Sample queries the source as that process. If Hist is
// non-nil every query is recorded (with the time from Clock) so the run can
// be validated with the specification checkers in internal/model. This one
// generic adapter replaces the former per-class BoundOmega / BoundSigma /
// BoundFS / BoundPsi zoo: process binding, history recording and any future
// perturbation live here exactly once, for every detector class.
//
// Bind is a value type and its query path performs no allocation of its own
// (internal/bench pins this at 0 allocs/op); whatever the source allocates to
// produce V is the source's business.
type Bind[V any] struct {
	Proc  model.ProcessID
	Src   Source[V]
	Clock TimeSource
	Hist  *model.History
}

// Sample implements Detector[V].
func (b Bind[V]) Sample() V {
	v := b.Src.At(b.Proc)
	if b.Hist != nil {
		b.Hist.Record(b.Proc, b.Clock.Now(), v)
	}
	return v
}

// BindTo is the common no-history binding: src's module at process p.
func BindTo[V any](p model.ProcessID, src Source[V], clock TimeSource) Bind[V] {
	return Bind[V]{Proc: p, Src: src, Clock: clock}
}

// BindAll returns the no-history bindings of src at every process of an
// n-process system as one contiguous slice. Group constructors store
// &binds[p] in their Detector-typed fields: converting a pointer to an
// interface allocates nothing, so binding a whole group costs one allocation
// instead of one boxed Bind value per process.
func BindAll[V any](src Source[V], clock TimeSource, n int) []Bind[V] {
	binds := make([]Bind[V], n)
	for p := range binds {
		binds[p] = Bind[V]{Proc: model.ProcessID(p), Src: src, Clock: clock}
	}
	return binds
}

// Recorded wraps a system-wide source over n processes so that every query
// records the sampled value into hist: At(p) routes through one pre-built
// per-process Bind, so history recording stays implemented exactly once (in
// Bind) while callers keep the Source[V] shape. Give hist a ring cap
// (model.History.SetLimit) when the samples are informational — a sweep's
// novelty signal, not a checker input — so recording stays O(cap) per run.
func Recorded[V any](src Source[V], clock TimeSource, n int, hist *model.History) Source[V] {
	r := &recordedSource[V]{binds: make([]Bind[V], n)}
	for p := range r.binds {
		r.binds[p] = Bind[V]{Proc: model.ProcessID(p), Src: src, Clock: clock, Hist: hist}
	}
	return r
}

// recordedSource is the Source[V] view over the per-process Binds.
type recordedSource[V any] struct {
	binds []Bind[V]
}

// At implements Source[V].
func (r *recordedSource[V]) At(p model.ProcessID) V {
	return r.binds[int(p)].Sample()
}

var (
	_ Omega    = Bind[model.ProcessID]{}
	_ Sigma    = Bind[model.ProcessSet]{}
	_ FS       = Bind[model.FSValue]{}
	_ Psi      = Bind[model.PsiValue]{}
	_ Suspects = Bind[model.ProcessSet]{}
)
