package fdimpl

import (
	"testing"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

// eventually polls cond every millisecond until it holds or the deadline
// expires, reporting whether it held.
func eventually(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestMajoritySigmaConvergesToCorrectMajority(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(1))
	defer nw.Close()

	// Boot the ensemble atomically so virtual time cannot race ahead of
	// processes whose detector is not up yet.
	nw.Freeze()
	sigmas := make([]*MajoritySigma, n)
	for i := 0; i < n; i++ {
		sigmas[i] = StartMajoritySigma(nw.Endpoint(model.ProcessID(i)), 5*time.Millisecond)
	}
	nw.Thaw()
	defer func() {
		for _, s := range sigmas[:4] { // sigma[4] belongs to a crashed process; its goroutine exits via context
			s.Stop()
		}
	}()

	// Crash two processes: a majority (3 of 5) stays correct.
	nw.Crash(3)
	nw.Crash(4)

	correct := model.NewProcessSet(0, 1, 2)
	ok := eventually(5*time.Second, func() bool {
		for i := 0; i < 3; i++ {
			q := sigmas[i].Sample()
			if !q.SubsetOf(correct) || !q.Contains(model.ProcessID(i)) {
				return false
			}
		}
		return true
	})
	if !ok {
		for i := 0; i < 3; i++ {
			t.Logf("sigma[%d] = %v", i, sigmas[i].Sample())
		}
		t.Fatalf("majority sigma did not converge to correct processes")
	}

	// Any two current quorums of live processes must intersect (they are
	// majorities of the same 5-process system).
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if !sigmas[i].Sample().Intersects(sigmas[j].Sample()) {
				t.Fatalf("disjoint majority quorums: %v vs %v", sigmas[i].Sample(), sigmas[j].Sample())
			}
		}
	}
}

func TestMajoritySigmaInitialQuorumIsFullSet(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(2))
	defer nw.Close()
	s := StartMajoritySigma(nw.Endpoint(0), time.Hour) // never completes a round
	defer s.Stop()
	if got := s.Sample(); !got.Equal(model.AllProcesses(3)) {
		t.Fatalf("initial quorum = %v", got)
	}
}

func TestHeartbeatOmegaElectsLowestCorrect(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(3))
	defer nw.Close()

	nw.Freeze()
	omegas := make([]*HeartbeatOmega, n)
	for i := 0; i < n; i++ {
		omegas[i] = StartHeartbeatOmega(nw.Endpoint(model.ProcessID(i)), 3*time.Millisecond, 40*time.Millisecond)
	}
	nw.Thaw()
	defer func() {
		for i := 1; i < n; i++ {
			omegas[i].Stop()
		}
	}()

	// Initially everyone should come to trust p0.
	if !eventually(5*time.Second, func() bool {
		for i := 0; i < n; i++ {
			if omegas[i].Sample() != 0 {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("omega did not converge to p0 before any crash")
	}

	// Crash p0: the survivors must converge on p1.
	nw.Crash(0)
	if !eventually(5*time.Second, func() bool {
		for i := 1; i < n; i++ {
			if omegas[i].Sample() != 1 {
				return false
			}
		}
		return true
	}) {
		for i := 1; i < n; i++ {
			t.Logf("omega[%d] = %v", i, omegas[i].Sample())
		}
		t.Fatalf("omega did not converge to p1 after p0 crashed")
	}
}

func TestHeartbeatFSTurnsRedOnlyAfterCrash(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(4))
	defer nw.Close()

	// An FS ensemble must boot atomically: if virtual time runs while a
	// process's detector is not started yet, its silence is indistinguishable
	// from a crash and the signal would (correctly, but unhelpfully) turn red.
	nw.Freeze()
	fss := make([]*HeartbeatFS, n)
	for i := 0; i < n; i++ {
		fss[i] = StartHeartbeatFS(nw.Endpoint(model.ProcessID(i)), 3*time.Millisecond, 40*time.Millisecond)
	}
	nw.Thaw()
	defer func() {
		for i := 0; i < 2; i++ {
			fss[i].Stop()
		}
	}()

	// Without failures the signal should stay green well past the grace
	// period.
	time.Sleep(150 * time.Millisecond)
	for i := 0; i < n; i++ {
		if fss[i].Sample() != model.Green {
			t.Fatalf("fs[%d] red without any crash", i)
		}
	}

	nw.Crash(2)
	if !eventually(5*time.Second, func() bool {
		return fss[0].Sample() == model.Red && fss[1].Sample() == model.Red
	}) {
		t.Fatalf("fs did not turn red after crash")
	}
}

func TestStopIsIdempotentAndTerminates(t *testing.T) {
	nw := net.NewNetwork(2, net.WithSeed(5))
	defer nw.Close()
	s := StartMajoritySigma(nw.Endpoint(0), 5*time.Millisecond)
	o := StartHeartbeatOmega(nw.Endpoint(0), 5*time.Millisecond, 20*time.Millisecond)
	f := StartHeartbeatFS(nw.Endpoint(0), 5*time.Millisecond, 20*time.Millisecond)
	s.Stop()
	s.Stop()
	o.Stop()
	f.Stop()
}

func TestDetectorsExitWhenProcessCrashes(t *testing.T) {
	nw := net.NewNetwork(2, net.WithSeed(6))
	defer nw.Close()
	s := StartMajoritySigma(nw.Endpoint(1), 5*time.Millisecond)
	nw.Crash(1)
	done := make(chan struct{})
	go func() {
		<-s.done
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("detector goroutine did not exit after its process crashed")
	}
}
