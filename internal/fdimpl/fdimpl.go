// Package fdimpl contains message-passing implementations of the failure
// detectors used in the paper, built only from communication over the
// asynchronous runtime (internal/net):
//
//   - MajoritySigma: the Introduction's "Σ ex nihilo" construction — each
//     process periodically sends join-quorum messages and adopts any majority
//     of responders as its quorum. It is a correct Σ exactly in
//     majority-correct environments, which is the paper's point: with a
//     correct majority Σ comes for free, so the (Ω, Σ) result generalises the
//     classical majority-only result.
//   - HeartbeatOmega: a timeout-based Ω that elects the lowest-id process
//     that is still heartbeating. It converges when message delays are
//     eventually bounded (true of the in-memory runtime), a partial-synchrony
//     assumption the asynchronous model itself does not grant.
//   - HeartbeatFS: a timeout-based failure signal that turns red permanently
//     once any process stops heartbeating. Its accuracy (never red without a
//     crash) also rests on the partial-synchrony assumption; the oracle FS in
//     internal/fd is the assumption-free reference.
//
// All intervals and timeouts are measured on the network's clock: virtual
// time under the default virtual-time scheduler (where a heartbeat round
// costs no wall-clock time), wall-clock time under net.WithRealTime. Under
// the default step scheduler the loops run as scheduler tasks with
// task-bound tickers: the dispatcher delivers a tick only once every task is
// parked, so virtual time cannot run ahead of the detector loops by
// construction. Under the free-running ablation (net.WithFreeRunning) the
// channel tickers' event-queue backpressure plays that role heuristically —
// either way the partial-synchrony assumption these detectors need survives
// time being simulated.
//
// All three run a background goroutine per process; callers must Stop them
// (or close the network) when done.
//
// The whole family is also packaged as the "heartbeat" class of
// fd.DefaultRegistry (see heartbeat.go), so scenario sweeps and explore runs
// can compare the implemented detectors against the oracles on one grid.
package fdimpl

import (
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

// MajoritySigma is a message-based Σ for majority-correct environments.
type MajoritySigma struct {
	ep       *net.Endpoint
	interval time.Duration
	ticker   *net.Timer
	task     *net.Task

	mu     sync.Mutex
	quorum model.ProcessSet

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

const sigmaInstance = "fdimpl.sigma"

// StartMajoritySigma starts the join-quorum protocol at ep's process, probing
// every interval of virtual time. The initial quorum is the full process set
// (trivially intersecting with everything).
//
// The probe ticker and the first probe are issued synchronously, before
// Start returns: under the virtual-time scheduler the pending ticker is what
// stops the clock from racing past this process while its loop goroutine is
// still being scheduled. The loop consumes its instance exclusively through
// Endpoint.TryRecv — do not Subscribe to it elsewhere. Start a whole
// ensemble under Network.Freeze/Thaw for a simultaneous boot.
func StartMajoritySigma(ep *net.Endpoint, interval time.Duration) *MajoritySigma {
	s := &MajoritySigma{
		ep:       ep,
		interval: interval,
		ticker:   ep.NewTicker(interval),
		quorum:   model.AllProcesses(ep.N()),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	ep.Broadcast(sigmaInstance, "probe", sigmaProbe{Round: 0})
	s.task = ep.Network().Go(ep, "fdimpl.sigma", s.run)
	return s
}

// Sample implements fd.Sigma: it returns the most recent majority of
// responders (or the full set before the first round completes).
func (s *MajoritySigma) Sample() model.ProcessSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quorum.Clone()
}

// Stop terminates the background protocol.
func (s *MajoritySigma) Stop() {
	s.once.Do(func() { close(s.stop) })
	s.task.Wake()
	<-s.done
}

type sigmaProbe struct{ Round int }
type sigmaAck struct{ Round int }

func (s *MajoritySigma) run(task *net.Task) {
	defer close(s.done)
	defer s.ticker.Stop()
	s.ticker.Bind(task)

	round := 0
	acked := map[int]model.ProcessSet{}
	majority := s.ep.N()/2 + 1

	handle := func(msg net.Message) {
		switch msg.Type {
		case "probe":
			probe := msg.Payload.(sigmaProbe)
			s.ep.Send(msg.From, sigmaInstance, "ack", sigmaAck{Round: probe.Round})
		case "ack":
			// Accept acks for the previous round too: a peer that answers a
			// probe at its own next tick produces an ack that systematically
			// reaches us one round late (all tickers share virtual
			// deadlines), so an exact-round check would discard almost every
			// ack and leave quorum formation to a scheduling race.
			ack := msg.Payload.(sigmaAck)
			if ack.Round < round-1 || ack.Round > round {
				return
			}
			set, ok := acked[ack.Round]
			if !ok {
				set = model.NewProcessSet(s.ep.ID())
				acked[ack.Round] = set
			}
			set.Add(msg.From)
			if set.Len() >= majority {
				s.mu.Lock()
				s.quorum = set.Clone()
				s.mu.Unlock()
			}
		}
	}

	// Drain synchronously before advancing the round: TryRecv reads the
	// mailbox ring directly, so everything the dispatcher has delivered up to
	// this tick is processed first. In step mode the run-to-quiescence
	// handshake paces rounds by processing progress; in free-running mode,
	// holding the tick back holds virtual time back (see net.Timer).
	tick := func() {
		for {
			msg, ok := s.ep.TryRecv(sigmaInstance)
			if !ok {
				break
			}
			handle(msg)
		}
		delete(acked, round-1)
		round++
		s.ep.Broadcast(sigmaInstance, "probe", sigmaProbe{Round: round})
	}

	if task != nil {
		for {
			select {
			case <-s.stop:
				return
			default:
			}
			if s.ep.Context().Err() != nil {
				return
			}
			if s.ticker.TryFire() {
				tick()
			} else {
				task.Await(nil)
			}
		}
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.ep.Context().Done():
			return
		case <-s.ticker.C:
			tick()
		}
	}
}

// HeartbeatOmega is a timeout-based Ω: the leader is the lowest-id process
// that has heartbeated within the timeout (the local process always trusts
// itself).
type HeartbeatOmega struct {
	ep       *net.Endpoint
	interval time.Duration
	timeout  time.Duration
	ticker   *net.Timer
	task     *net.Task
	start    time.Duration

	mu     sync.Mutex
	leader model.ProcessID

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

const omegaInstance = "fdimpl.omega"

// StartHeartbeatOmega starts heartbeating at ep's process. timeout should be
// several times the heartbeat interval plus the maximum expected message
// delay, all in virtual time. Setup (ticker, first heartbeat) happens
// synchronously, before Start returns; the loop consumes its instance
// exclusively through Endpoint.TryRecv — do not Subscribe to it elsewhere.
// Start a whole ensemble under Network.Freeze/Thaw for a simultaneous boot.
func StartHeartbeatOmega(ep *net.Endpoint, interval, timeout time.Duration) *HeartbeatOmega {
	o := &HeartbeatOmega{
		ep:       ep,
		interval: interval,
		timeout:  timeout,
		ticker:   ep.NewTicker(interval),
		start:    ep.VirtualNow(),
		leader:   0,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	ep.Broadcast(omegaInstance, "hb", nil)
	o.task = ep.Network().Go(ep, "fdimpl.omega", o.run)
	return o
}

// Sample implements fd.Omega.
func (o *HeartbeatOmega) Sample() model.ProcessID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.leader
}

// Stop terminates the background protocol.
func (o *HeartbeatOmega) Stop() {
	o.once.Do(func() { close(o.stop) })
	o.task.Wake()
	<-o.done
}

func (o *HeartbeatOmega) run(task *net.Task) {
	defer close(o.done)
	defer o.ticker.Stop()
	o.ticker.Bind(task)

	lastHeard := make(map[model.ProcessID]time.Duration)

	recompute := func(now time.Duration) {
		leader := o.ep.ID()
		for i := 0; i < o.ep.N(); i++ {
			p := model.ProcessID(i)
			if p == o.ep.ID() {
				// The local process always trusts itself; it is considered
				// below via the initial value of leader.
				continue
			}
			heard, ok := lastHeard[p]
			alive := (ok && now-heard <= o.timeout) || (!ok && now-o.start <= o.timeout)
			if alive && p < leader {
				leader = p
			}
		}
		o.mu.Lock()
		o.leader = leader
		o.mu.Unlock()
	}

	// Drain synchronously before recomputing: TryRecv reads the mailbox ring
	// directly, so freshness reflects everything the dispatcher has delivered
	// up to this tick. In the task path "now" is the fire deadline read back
	// from the virtual clock — the dispatcher grants the woken task before
	// popping any further event, so the clock cannot have moved past it.
	tick := func(now time.Duration) {
		for {
			msg, ok := o.ep.TryRecv(omegaInstance)
			if !ok {
				break
			}
			if msg.Type == "hb" {
				lastHeard[msg.From] = now
			}
		}
		o.ep.Broadcast(omegaInstance, "hb", nil)
		recompute(now)
	}

	if task != nil {
		for {
			select {
			case <-o.stop:
				return
			default:
			}
			if o.ep.Context().Err() != nil {
				return
			}
			if o.ticker.TryFire() {
				tick(o.ep.VirtualNow())
			} else {
				task.Await(nil)
			}
		}
	}
	for {
		select {
		case <-o.stop:
			return
		case <-o.ep.Context().Done():
			return
		case now := <-o.ticker.C:
			tick(now)
		}
	}
}

// HeartbeatFS is a timeout-based failure signal: once any process has been
// silent for longer than the timeout (after an initial grace period), the
// signal turns red permanently.
type HeartbeatFS struct {
	ep       *net.Endpoint
	interval time.Duration
	timeout  time.Duration
	ticker   *net.Timer
	task     *net.Task
	start    time.Duration

	mu  sync.Mutex
	red bool

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

const fsInstance = "fdimpl.fs"

// StartHeartbeatFS starts heartbeating at ep's process. Setup (ticker, first
// heartbeat) happens synchronously, before Start returns; the loop consumes
// its instance exclusively through Endpoint.TryRecv — do not Subscribe to it
// elsewhere. Start a whole ensemble under Network.Freeze/Thaw for a
// simultaneous boot.
func StartHeartbeatFS(ep *net.Endpoint, interval, timeout time.Duration) *HeartbeatFS {
	f := &HeartbeatFS{
		ep:       ep,
		interval: interval,
		timeout:  timeout,
		ticker:   ep.NewTicker(interval),
		start:    ep.VirtualNow(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	ep.Broadcast(fsInstance, "hb", nil)
	f.task = ep.Network().Go(ep, "fdimpl.fs", f.run)
	return f
}

// Sample implements fd.FS.
func (f *HeartbeatFS) Sample() model.FSValue {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.red {
		return model.Red
	}
	return model.Green
}

// Stop terminates the background protocol.
func (f *HeartbeatFS) Stop() {
	f.once.Do(func() { close(f.stop) })
	f.task.Wake()
	<-f.done
}

func (f *HeartbeatFS) run(task *net.Task) {
	defer close(f.done)
	defer f.ticker.Stop()
	f.ticker.Bind(task)

	lastHeard := make(map[model.ProcessID]time.Duration)
	grace := 2 * f.timeout

	// Drain synchronously before the timeout check: TryRecv reads the
	// mailbox ring directly, so the check runs against every heartbeat the
	// dispatcher has delivered up to this tick. The signal is sticky, so a
	// single stale window would falsely turn it red forever — this is the
	// path that must not race.
	tick := func(now time.Duration) {
		for {
			msg, ok := f.ep.TryRecv(fsInstance)
			if !ok {
				break
			}
			if msg.Type == "hb" {
				lastHeard[msg.From] = now
			}
		}
		f.ep.Broadcast(fsInstance, "hb", nil)
		if now-f.start < grace {
			return
		}
		for i := 0; i < f.ep.N(); i++ {
			p := model.ProcessID(i)
			if p == f.ep.ID() {
				continue
			}
			heard, ok := lastHeard[p]
			if !ok {
				heard = f.start + grace
			}
			if now-heard > f.timeout {
				f.mu.Lock()
				f.red = true
				f.mu.Unlock()
			}
		}
	}

	if task != nil {
		for {
			select {
			case <-f.stop:
				return
			default:
			}
			if f.ep.Context().Err() != nil {
				return
			}
			if f.ticker.TryFire() {
				tick(f.ep.VirtualNow())
			} else {
				task.Await(nil)
			}
		}
	}
	for {
		select {
		case <-f.stop:
			return
		case <-f.ep.Context().Done():
			return
		case now := <-f.ticker.C:
			tick(now)
		}
	}
}

var (
	_ fd.Sigma = (*MajoritySigma)(nil)
	_ fd.Omega = (*HeartbeatOmega)(nil)
	_ fd.FS    = (*HeartbeatFS)(nil)
)
