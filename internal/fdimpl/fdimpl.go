// Package fdimpl contains message-passing implementations of the failure
// detectors used in the paper, built only from communication over the
// asynchronous runtime (internal/net):
//
//   - MajoritySigma: the Introduction's "Σ ex nihilo" construction — each
//     process periodically sends join-quorum messages and adopts any majority
//     of responders as its quorum. It is a correct Σ exactly in
//     majority-correct environments, which is the paper's point: with a
//     correct majority Σ comes for free, so the (Ω, Σ) result generalises the
//     classical majority-only result.
//   - HeartbeatOmega: a timeout-based Ω that elects the lowest-id process
//     that is still heartbeating. It converges when message delays are
//     eventually bounded (true of the in-memory runtime), a partial-synchrony
//     assumption the asynchronous model itself does not grant.
//   - HeartbeatFS: a timeout-based failure signal that turns red permanently
//     once any process stops heartbeating. Its accuracy (never red without a
//     crash) also rests on the partial-synchrony assumption; the oracle FS in
//     internal/fd is the assumption-free reference.
//
// All three run a background goroutine per process; callers must Stop them
// (or close the network) when done.
package fdimpl

import (
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

// MajoritySigma is a message-based Σ for majority-correct environments.
type MajoritySigma struct {
	ep       *net.Endpoint
	interval time.Duration

	mu     sync.Mutex
	quorum model.ProcessSet

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

const sigmaInstance = "fdimpl.sigma"

// StartMajoritySigma starts the join-quorum protocol at ep's process, probing
// every interval. The initial quorum is the full process set (trivially
// intersecting with everything).
func StartMajoritySigma(ep *net.Endpoint, interval time.Duration) *MajoritySigma {
	s := &MajoritySigma{
		ep:       ep,
		interval: interval,
		quorum:   model.AllProcesses(ep.N()),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

// Quorum implements fd.Sigma: it returns the most recent majority of
// responders (or the full set before the first round completes).
func (s *MajoritySigma) Quorum() model.ProcessSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quorum.Clone()
}

// Stop terminates the background protocol.
func (s *MajoritySigma) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

type sigmaProbe struct{ Round int }
type sigmaAck struct{ Round int }

func (s *MajoritySigma) run() {
	defer close(s.done)
	inbox := s.ep.Subscribe(sigmaInstance)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()

	round := 0
	acked := model.NewProcessSet(s.ep.ID())
	majority := s.ep.N()/2 + 1
	s.ep.Broadcast(sigmaInstance, "probe", sigmaProbe{Round: round})

	for {
		select {
		case <-s.stop:
			return
		case <-s.ep.Context().Done():
			return
		case <-ticker.C:
			round++
			acked = model.NewProcessSet(s.ep.ID())
			s.ep.Broadcast(sigmaInstance, "probe", sigmaProbe{Round: round})
		case msg := <-inbox:
			switch msg.Type {
			case "probe":
				probe := msg.Payload.(sigmaProbe)
				s.ep.Send(msg.From, sigmaInstance, "ack", sigmaAck{Round: probe.Round})
			case "ack":
				ack := msg.Payload.(sigmaAck)
				if ack.Round != round {
					continue
				}
				acked.Add(msg.From)
				if acked.Len() >= majority {
					s.mu.Lock()
					s.quorum = acked.Clone()
					s.mu.Unlock()
				}
			}
		}
	}
}

// HeartbeatOmega is a timeout-based Ω: the leader is the lowest-id process
// that has heartbeated within the timeout (the local process always trusts
// itself).
type HeartbeatOmega struct {
	ep       *net.Endpoint
	interval time.Duration
	timeout  time.Duration

	mu     sync.Mutex
	leader model.ProcessID

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

const omegaInstance = "fdimpl.omega"

// StartHeartbeatOmega starts heartbeating at ep's process. timeout should be
// several times the heartbeat interval plus the maximum expected message
// delay.
func StartHeartbeatOmega(ep *net.Endpoint, interval, timeout time.Duration) *HeartbeatOmega {
	o := &HeartbeatOmega{
		ep:       ep,
		interval: interval,
		timeout:  timeout,
		leader:   0,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go o.run()
	return o
}

// Leader implements fd.Omega.
func (o *HeartbeatOmega) Leader() model.ProcessID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.leader
}

// Stop terminates the background protocol.
func (o *HeartbeatOmega) Stop() {
	o.once.Do(func() { close(o.stop) })
	<-o.done
}

func (o *HeartbeatOmega) run() {
	defer close(o.done)
	inbox := o.ep.Subscribe(omegaInstance)
	ticker := time.NewTicker(o.interval)
	defer ticker.Stop()

	lastHeard := make(map[model.ProcessID]time.Time)
	start := time.Now()
	o.ep.Broadcast(omegaInstance, "hb", nil)

	recompute := func() {
		now := time.Now()
		leader := o.ep.ID()
		for i := 0; i < o.ep.N(); i++ {
			p := model.ProcessID(i)
			if p == o.ep.ID() {
				// The local process always trusts itself; it is considered
				// below via the initial value of leader.
				continue
			}
			heard, ok := lastHeard[p]
			alive := (ok && now.Sub(heard) <= o.timeout) || (!ok && now.Sub(start) <= o.timeout)
			if alive && p < leader {
				leader = p
			}
		}
		o.mu.Lock()
		o.leader = leader
		o.mu.Unlock()
	}

	for {
		select {
		case <-o.stop:
			return
		case <-o.ep.Context().Done():
			return
		case <-ticker.C:
			o.ep.Broadcast(omegaInstance, "hb", nil)
			recompute()
		case msg := <-inbox:
			if msg.Type == "hb" {
				lastHeard[msg.From] = time.Now()
				recompute()
			}
		}
	}
}

// HeartbeatFS is a timeout-based failure signal: once any process has been
// silent for longer than the timeout (after an initial grace period), the
// signal turns red permanently.
type HeartbeatFS struct {
	ep       *net.Endpoint
	interval time.Duration
	timeout  time.Duration

	mu  sync.Mutex
	red bool

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

const fsInstance = "fdimpl.fs"

// StartHeartbeatFS starts heartbeating at ep's process.
func StartHeartbeatFS(ep *net.Endpoint, interval, timeout time.Duration) *HeartbeatFS {
	f := &HeartbeatFS{
		ep:       ep,
		interval: interval,
		timeout:  timeout,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go f.run()
	return f
}

// Signal implements fd.FS.
func (f *HeartbeatFS) Signal() model.FSValue {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.red {
		return model.Red
	}
	return model.Green
}

// Stop terminates the background protocol.
func (f *HeartbeatFS) Stop() {
	f.once.Do(func() { close(f.stop) })
	<-f.done
}

func (f *HeartbeatFS) run() {
	defer close(f.done)
	inbox := f.ep.Subscribe(fsInstance)
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()

	lastHeard := make(map[model.ProcessID]time.Time)
	start := time.Now()
	grace := 2 * f.timeout
	f.ep.Broadcast(fsInstance, "hb", nil)

	for {
		select {
		case <-f.stop:
			return
		case <-f.ep.Context().Done():
			return
		case <-ticker.C:
			f.ep.Broadcast(fsInstance, "hb", nil)
			now := time.Now()
			if now.Sub(start) < grace {
				continue
			}
			for i := 0; i < f.ep.N(); i++ {
				p := model.ProcessID(i)
				if p == f.ep.ID() {
					continue
				}
				heard, ok := lastHeard[p]
				if !ok {
					heard = start.Add(grace)
				}
				if now.Sub(heard) > f.timeout {
					f.mu.Lock()
					f.red = true
					f.mu.Unlock()
				}
			}
		case msg := <-inbox:
			if msg.Type == "hb" {
				lastHeard[msg.From] = time.Now()
			}
		}
	}
}

var (
	_ fd.Sigma = (*MajoritySigma)(nil)
	_ fd.Omega = (*HeartbeatOmega)(nil)
	_ fd.FS    = (*HeartbeatFS)(nil)
)
