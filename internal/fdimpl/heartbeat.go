package fdimpl

// The "heartbeat" detector class: the message-passing detectors of this
// package packaged as an fd.Registry class, so sweeps and explore runs can
// put the implemented detectors on the same grid axis as the oracles and
// measure where the implementations' extra assumptions (partial synchrony
// for Ω and FS accuracy, a correct majority for Σ liveness) actually bite.
//
// The class builds, per process, a HeartbeatOmega, a MajoritySigma and a
// HeartbeatFS over the run's *net.Network (handed in through fd.Env.Runtime)
// and serves them as system-wide sources. It provides no Ψ — a
// message-passing Ψ needs its own agreement machinery to make every process
// pick the same regime, which no timeout argument gives you — so the QC/NBAC
// stack refuses to set up under it, which is itself a sweep-visible result.
//
// Quality parameters (registry grammar, both in microseconds of virtual
// time; 0 = default):
//
//	heartbeat{interval:N}  heartbeat/probe period   (default 1000 = 1ms)
//	heartbeat{timeout:N}   silence threshold        (default 5000 = 5ms)
//
// A timeout below the network's typical delay plus the interval makes the
// detectors false-suspect permanently — deliberately reachable, since that
// boundary is exactly what a frontier search over the class measures.

import (
	"fmt"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

// ClassHeartbeat is the registry name of the message-passing detector class.
const ClassHeartbeat = "heartbeat"

// Defaults of the heartbeat pacing parameters, chosen for the runtime's
// default [0, 200µs] delay range: the timeout clears the worst default delay
// by an order of magnitude, so false suspicion needs either a perturbed spec
// or a genuinely slower network.
const (
	DefaultHeartbeatInterval = time.Millisecond
	DefaultHeartbeatTimeout  = 5 * time.Millisecond
)

func init() {
	fd.DefaultRegistry().Register(ClassHeartbeat, BuildHeartbeat, "interval", "timeout")
}

// hbDuration converts a spec parameter (virtual-time microseconds) into a
// duration, applying the default for the zero value.
func hbDuration(v model.Time, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	return time.Duration(v) * time.Microsecond
}

// BuildHeartbeat is the fd.Builder of the heartbeat class. It needs the
// run's *net.Network in env.Runtime; the returned suite's Stop tears the
// whole ensemble down and must be called (the detectors run one goroutine
// per process each). Build it under Network.Freeze so the ensemble boots
// simultaneously — the scenario harness does.
func BuildHeartbeat(env fd.Env, spec fd.DetectorSpec) (*fd.Suite, error) {
	nw, ok := env.Runtime.(*net.Network)
	if !ok {
		return nil, fmt.Errorf("heartbeat class needs a *net.Network runtime, got %T", env.Runtime)
	}
	interval := hbDuration(spec.HeartbeatInterval, DefaultHeartbeatInterval)
	timeout := hbDuration(spec.HeartbeatTimeout, DefaultHeartbeatTimeout)

	n := nw.N()
	omegas := make([]fd.Detector[model.ProcessID], n)
	sigmas := make([]fd.Detector[model.ProcessSet], n)
	fss := make([]fd.Detector[model.FSValue], n)
	stops := make([]func(), 0, 3*n)
	for i := 0; i < n; i++ {
		ep := nw.Endpoint(model.ProcessID(i))
		o := StartHeartbeatOmega(ep, interval, timeout)
		s := StartMajoritySigma(ep, interval)
		f := StartHeartbeatFS(ep, interval, timeout)
		omegas[i], sigmas[i], fss[i] = o, s, f
		stops = append(stops, o.Stop, s.Stop, f.Stop)
	}
	return &fd.Suite{
		Omega: moduleSource[model.ProcessID]{mods: omegas},
		Sigma: moduleSource[model.ProcessSet]{mods: sigmas},
		FS:    moduleSource[model.FSValue]{mods: fss},
		Stop: func() {
			for _, stop := range stops {
				stop()
			}
		},
	}, nil
}

// moduleSource serves per-process detector modules as one system-wide
// source: At(p) samples p's own module, the inverse of the fd.Bind direction
// the oracle classes take. (An oracle is one global object bound outward to
// processes; an implementation is n process-local objects bound inward into
// one source.)
type moduleSource[V any] struct {
	mods []fd.Detector[V]
}

// At implements fd.Source[V].
func (s moduleSource[V]) At(p model.ProcessID) V {
	return s.mods[int(p)].Sample()
}
