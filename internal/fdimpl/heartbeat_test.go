package fdimpl

import (
	"strings"
	"testing"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

// TestHeartbeatClassBuildsFullEnsemble: the registry class stands up Ω, Σ
// and FS over the run's network, honestly refuses to fake Ψ or a suspect
// list, and Stop tears the whole ensemble down.
func TestHeartbeatClassBuildsFullEnsemble(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(11))
	defer nw.Close()

	nw.Freeze()
	suite, err := fd.DefaultRegistry().Build(
		fd.Env{Pattern: nw.Pattern(), Clock: nw.Clock(), Runtime: nw},
		fd.MustParseSpec("heartbeat{interval:2000,timeout:30000}"),
	)
	nw.Thaw()
	if err != nil {
		t.Fatalf("build heartbeat suite: %v", err)
	}
	defer suite.Stop()

	if suite.Omega == nil || suite.Sigma == nil || suite.FS == nil {
		t.Fatalf("heartbeat suite incomplete: %+v", suite)
	}
	if suite.Psi != nil || suite.Suspects != nil {
		t.Fatalf("heartbeat suite fakes Ψ or a suspect list: %+v", suite)
	}
	if suite.Spec.Class != ClassHeartbeat {
		t.Fatalf("suite spec = %+v", suite.Spec)
	}

	// The implemented detectors converge like their oracle counterparts:
	// everyone elects p0, quorums intersect, signal green while crash-free.
	if !eventually(5*time.Second, func() bool {
		for i := 0; i < n; i++ {
			if suite.Omega.At(model.ProcessID(i)) != 0 {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("heartbeat omega did not converge to p0")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			qi, qj := suite.Sigma.At(model.ProcessID(i)), suite.Sigma.At(model.ProcessID(j))
			if !qi.Intersects(qj) {
				t.Fatalf("disjoint heartbeat quorums: %v vs %v", qi, qj)
			}
		}
	}
	if got := suite.FS.At(0); got != model.Green {
		t.Fatalf("crash-free heartbeat FS = %v, want green", got)
	}
}

// TestHeartbeatClassNeedsRuntime: building the class without a network in
// the environment is a helpful error, not a panic — the oracle-only fd.Build
// path cannot serve message-passing detectors.
func TestHeartbeatClassNeedsRuntime(t *testing.T) {
	_, err := fd.Build(model.NewFailurePattern(3), net.NewClock(), fd.DetectorSpec{Class: ClassHeartbeat})
	if err == nil || !strings.Contains(err.Error(), "net.Network") {
		t.Fatalf("runtime-less heartbeat build: %v", err)
	}
}

// TestHeartbeatClassStopIsIdempotentUnderCrash: stopping the ensemble after
// some of its processes crashed must not hang (crashed loops exited through
// their endpoint context already).
func TestHeartbeatClassStopIsIdempotentUnderCrash(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(12))
	defer nw.Close()
	nw.Freeze()
	suite, err := fd.DefaultRegistry().Build(
		fd.Env{Pattern: nw.Pattern(), Clock: nw.Clock(), Runtime: nw},
		fd.DetectorSpec{Class: ClassHeartbeat},
	)
	nw.Thaw()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	nw.Crash(2)
	done := make(chan struct{})
	go func() {
		suite.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("suite.Stop hung after a crash")
	}
}
