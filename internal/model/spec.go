package model

import (
	"fmt"
	"sort"
)

// Verdict is the result of checking a recorded failure-detector history (or a
// problem execution) against a formal specification. OK is true when no
// violation was found; Violations lists human-readable reasons otherwise.
type Verdict struct {
	OK         bool
	Violations []string
}

// Ok returns a passing verdict.
func Ok() Verdict { return Verdict{OK: true} }

// Fail returns a failing verdict with one formatted violation.
func Fail(format string, args ...any) Verdict {
	return Verdict{OK: false, Violations: []string{fmt.Sprintf(format, args...)}}
}

// Merge combines v with other: the result is OK only if both are, and carries
// the union of the violations.
func (v Verdict) Merge(other Verdict) Verdict {
	return Verdict{
		OK:         v.OK && other.OK,
		Violations: append(append([]string{}, v.Violations...), other.Violations...),
	}
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v.OK {
		return "OK"
	}
	return fmt.Sprintf("FAIL(%d violations): %v", len(v.Violations), v.Violations)
}

// CheckOptions tunes the finite-history interpretation of the specifications.
type CheckOptions struct {
	// RequireEventual, when true (the default used by Default-constructed
	// options), makes the checkers enforce the "eventually ..." clauses by
	// examining the last sample of each correct process. Runs that were cut
	// short before detectors stabilised can disable it to check only the
	// perpetual (safety) clauses.
	RequireEventual bool
}

// DefaultCheckOptions enforces both perpetual and eventual clauses.
func DefaultCheckOptions() CheckOptions { return CheckOptions{RequireEventual: true} }

// SafetyOnlyCheckOptions enforces only the perpetual (safety) clauses.
func SafetyOnlyCheckOptions() CheckOptions { return CheckOptions{RequireEventual: false} }

// CheckSigma validates a history of ProcessSet samples against the quorum
// failure detector Sigma:
//
//   - Intersection: any two samples, at any processes and times, intersect.
//   - Completeness: eventually every sample at a correct process contains only
//     correct processes (checked on the last sample of each correct process).
func CheckSigma(f *FailurePattern, h *History, opts CheckOptions) Verdict {
	v := Ok()
	samples := h.Samples()
	sets := make([]ProcessSet, 0, len(samples))
	for _, s := range samples {
		set, ok := s.Value.(ProcessSet)
		if !ok {
			return Fail("sigma: sample at %v time %d has type %T, want ProcessSet", s.Process, s.Time, s.Value)
		}
		sets = append(sets, set)
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if !sets[i].Intersects(sets[j]) {
				v = v.Merge(Fail("sigma intersection violated: sample %d at %v (%v) and sample %d at %v (%v) are disjoint",
					i, samples[i].Process, sets[i], j, samples[j].Process, sets[j]))
			}
		}
	}
	if opts.RequireEventual {
		correct := f.Correct()
		byProc := h.ByProcess()
		for _, p := range correct.Slice() {
			ss := byProc[p]
			if len(ss) == 0 {
				continue
			}
			last := ss[len(ss)-1].Value.(ProcessSet)
			if !last.SubsetOf(correct) {
				v = v.Merge(Fail("sigma completeness violated: last quorum of correct %v is %v, not a subset of correct %v",
					p, last, correct))
			}
		}
	}
	return v
}

// CheckOmega validates a history of ProcessID samples against the leader
// failure detector Omega: eventually all correct processes output the id of
// the same correct process (checked on the last sample of each correct
// process).
func CheckOmega(f *FailurePattern, h *History, opts CheckOptions) Verdict {
	for _, s := range h.Samples() {
		if _, ok := s.Value.(ProcessID); !ok {
			return Fail("omega: sample at %v time %d has type %T, want ProcessID", s.Process, s.Time, s.Value)
		}
	}
	if !opts.RequireEventual {
		return Ok()
	}
	v := Ok()
	correct := f.Correct()
	byProc := h.ByProcess()
	var leader ProcessID
	haveLeader := false
	for _, p := range correct.Slice() {
		ss := byProc[p]
		if len(ss) == 0 {
			continue
		}
		last := ss[len(ss)-1].Value.(ProcessID)
		if !correct.Contains(last) {
			v = v.Merge(Fail("omega violated: correct %v finally trusts faulty %v", p, last))
		}
		if !haveLeader {
			leader, haveLeader = last, true
		} else if last != leader {
			v = v.Merge(Fail("omega violated: correct processes disagree on final leader (%v vs %v)", leader, last))
		}
	}
	return v
}

// CheckFS validates a history of FSValue samples against the failure-signal
// detector FS:
//
//   - Accuracy: a sample is red at time t only if a failure occurred by t.
//   - Completeness: if some process is faulty, eventually every correct
//     process outputs red permanently (checked on last samples).
func CheckFS(f *FailurePattern, h *History, opts CheckOptions) Verdict {
	v := Ok()
	for _, s := range h.Samples() {
		val, ok := s.Value.(FSValue)
		if !ok {
			return Fail("fs: sample at %v time %d has type %T, want FSValue", s.Process, s.Time, s.Value)
		}
		if val == Red && !f.FailureOccurredBy(s.Time) {
			v = v.Merge(Fail("fs accuracy violated: %v saw red at time %d but no failure had occurred", s.Process, s.Time))
		}
	}
	if opts.RequireEventual && !f.Faulty().IsEmpty() {
		byProc := h.ByProcess()
		for _, p := range f.Correct().Slice() {
			ss := byProc[p]
			if len(ss) == 0 {
				continue
			}
			if ss[len(ss)-1].Value.(FSValue) != Red {
				v = v.Merge(Fail("fs completeness violated: failure occurred but correct %v finally outputs green", p))
			}
		}
	}
	return v
}

// CheckOmegaSigma validates a history of OmegaSigmaValue samples by splitting
// it into its Omega and Sigma components and checking each.
func CheckOmegaSigma(f *FailurePattern, h *History, opts CheckOptions) Verdict {
	omegaH, sigmaH := NewHistory(), NewHistory()
	for _, s := range h.Samples() {
		val, ok := s.Value.(OmegaSigmaValue)
		if !ok {
			return Fail("omegasigma: sample at %v time %d has type %T, want OmegaSigmaValue", s.Process, s.Time, s.Value)
		}
		omegaH.Record(s.Process, s.Time, val.Leader)
		sigmaH.Record(s.Process, s.Time, val.Quorum)
	}
	return CheckOmega(f, omegaH, opts).Merge(CheckSigma(f, sigmaH, opts))
}

// CheckPsi validates a history of PsiValue samples against the detector Psi
// (Section 6.1):
//
//   - Each process's stream is a (possibly empty) ⊥-prefix followed by samples
//     all of one regime, FS or (Omega, Sigma); it never mixes regimes or
//     returns to ⊥.
//   - All processes that leave ⊥ choose the same regime.
//   - The FS regime may be chosen only if a failure occurred by the time of
//     the first non-⊥ sample.
//   - The embedded sub-histories validate against FS, respectively
//     (Omega, Sigma).
func CheckPsi(f *FailurePattern, h *History, opts CheckOptions) Verdict {
	v := Ok()
	byProc := h.ByProcess()
	fsH, osH := NewHistory(), NewHistory()
	chosen := PsiBottom
	chosenBy := ProcessID(-1)
	for p, ss := range byProc {
		phase := PsiBottom
		for _, s := range ss {
			val, ok := s.Value.(PsiValue)
			if !ok {
				return Fail("psi: sample at %v time %d has type %T, want PsiValue", s.Process, s.Time, s.Value)
			}
			switch val.Phase {
			case PsiBottom:
				if phase != PsiBottom {
					v = v.Merge(Fail("psi violated: %v returned to ⊥ at time %d after leaving it", p, s.Time))
				}
			case PsiFS, PsiOmegaSigma:
				if phase != PsiBottom && phase != val.Phase {
					v = v.Merge(Fail("psi violated: %v switched regimes from %v to %v at time %d", p, phase, val.Phase, s.Time))
				}
				if phase == PsiBottom {
					phase = val.Phase
					if val.Phase == PsiFS && !f.FailureOccurredBy(s.Time) {
						v = v.Merge(Fail("psi violated: %v entered FS regime at time %d with no prior failure", p, s.Time))
					}
					if chosen == PsiBottom {
						chosen, chosenBy = val.Phase, p
					} else if chosen != val.Phase {
						v = v.Merge(Fail("psi violated: %v chose %v but %v chose %v", p, val.Phase, chosenBy, chosen))
					}
				}
				if val.Phase == PsiFS {
					fsH.Record(s.Process, s.Time, val.FS)
				} else {
					osH.Record(s.Process, s.Time, val.OS)
				}
			default:
				v = v.Merge(Fail("psi: unknown phase %v at %v time %d", val.Phase, p, s.Time))
			}
		}
	}
	if opts.RequireEventual {
		// Every correct process with samples must eventually leave ⊥.
		for _, p := range f.Correct().Slice() {
			ss := byProc[p]
			if len(ss) == 0 {
				continue
			}
			last := ss[len(ss)-1].Value.(PsiValue)
			if last.Phase == PsiBottom {
				v = v.Merge(Fail("psi violated: correct %v never left ⊥", p))
			}
		}
	}
	switch chosen {
	case PsiFS:
		v = v.Merge(CheckFS(f, fsH, opts))
	case PsiOmegaSigma:
		v = v.Merge(CheckOmegaSigma(f, osH, opts))
	}
	return v
}

// validateSuspects type-checks a suspect-list history (one ProcessSet per
// sample), for the Chandra–Toueg classes P, ◇P, ◇S. Processes are visited in
// sorted order so the first-offender failure message — which reaches result
// fingerprints — is byte-stable.
func validateSuspects(byProc map[ProcessID][]Sample, class string) Verdict {
	for _, p := range sortedProcs(byProc) {
		for _, s := range byProc[p] {
			if _, ok := s.Value.(ProcessSet); !ok {
				return Fail("%s: sample at %v time %d has type %T, want ProcessSet", class, s.Process, s.Time, s.Value)
			}
		}
	}
	return Ok()
}

// sortedProcs returns byProc's keys in ascending order.
func sortedProcs(byProc map[ProcessID][]Sample) []ProcessID {
	procs := make([]ProcessID, 0, len(byProc))
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	return procs
}

// checkStrongCompleteness enforces the clause shared by P, ◇P and ◇S:
// eventually every faulty process is (permanently) suspected by every correct
// process — checked on the last sample of each correct process. byProc is the
// caller's h.ByProcess() view, computed once per checker.
func checkStrongCompleteness(f *FailurePattern, byProc map[ProcessID][]Sample, class string) Verdict {
	v := Ok()
	faulty := f.Faulty()
	for _, p := range f.Correct().Slice() {
		ss := byProc[p]
		if len(ss) == 0 {
			continue
		}
		last := ss[len(ss)-1].Value.(ProcessSet)
		if !faulty.SubsetOf(last) {
			v = v.Merge(Fail("%s completeness violated: correct %v finally suspects %v, missing faulty %v",
				class, p, last, faulty.Minus(last)))
		}
	}
	return v
}

// CheckPerfect validates a history of ProcessSet samples (suspect lists)
// against the perfect failure detector P:
//
//   - Strong accuracy (perpetual): no process is suspected before it crashes —
//     every suspected process at time t crashed at or before t.
//   - Strong completeness: eventually every faulty process is permanently
//     suspected by every correct process (checked on last samples).
func CheckPerfect(f *FailurePattern, h *History, opts CheckOptions) Verdict {
	byProc := h.ByProcess()
	v := validateSuspects(byProc, "perfect")
	if !v.OK {
		return v
	}
	for _, p := range sortedProcs(byProc) {
		for _, s := range byProc[p] {
			for _, q := range s.Value.(ProcessSet).Slice() {
				if ct := f.CrashTime(q); ct == NeverCrashes || ct > s.Time {
					v = v.Merge(Fail("perfect accuracy violated: %v suspected %v at time %d before any crash of %v",
						s.Process, q, s.Time, q))
				}
			}
		}
	}
	if opts.RequireEventual {
		v = v.Merge(checkStrongCompleteness(f, byProc, "perfect"))
	}
	return v
}

// CheckEventuallyPerfect validates a suspect-list history against ◇P:
//
//   - Eventual strong accuracy: eventually no correct process is suspected by
//     any correct process (checked on last samples).
//   - Strong completeness, as for P.
//
// The perpetual clause of P is deliberately absent: any finite prefix of
// false suspicion is legal.
func CheckEventuallyPerfect(f *FailurePattern, h *History, opts CheckOptions) Verdict {
	byProc := h.ByProcess()
	v := validateSuspects(byProc, "eventually-perfect")
	if !v.OK || !opts.RequireEventual {
		return v
	}
	correct := f.Correct()
	for _, p := range correct.Slice() {
		ss := byProc[p]
		if len(ss) == 0 {
			continue
		}
		last := ss[len(ss)-1].Value.(ProcessSet)
		if wrong := last.Intersect(correct); !wrong.IsEmpty() {
			v = v.Merge(Fail("eventually-perfect accuracy violated: correct %v finally suspects correct %v", p, wrong))
		}
	}
	return v.Merge(checkStrongCompleteness(f, byProc, "eventually-perfect"))
}

// CheckEventuallyStrong validates a suspect-list history against ◇S:
//
//   - Eventual weak accuracy: eventually some correct process is never
//     suspected by any correct process (checked on last samples: a correct
//     process must exist outside every correct process's final suspect list).
//   - Strong completeness, as for P.
func CheckEventuallyStrong(f *FailurePattern, h *History, opts CheckOptions) Verdict {
	byProc := h.ByProcess()
	v := validateSuspects(byProc, "eventually-strong")
	if !v.OK || !opts.RequireEventual {
		return v
	}
	correct := f.Correct()
	trusted := correct.Clone() // candidates nobody finally suspects
	sampled := false
	for _, p := range correct.Slice() {
		ss := byProc[p]
		if len(ss) == 0 {
			continue
		}
		sampled = true
		trusted = trusted.Minus(ss[len(ss)-1].Value.(ProcessSet))
	}
	if sampled && trusted.IsEmpty() {
		v = v.Merge(Fail("eventually-strong accuracy violated: every correct process is finally suspected by some correct process"))
	}
	return v.Merge(checkStrongCompleteness(f, byProc, "eventually-strong"))
}
