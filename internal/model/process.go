package model

import (
	"fmt"
	"sort"
	"strings"
)

// ProcessID identifies a process. Processes in a system of size n are
// numbered 0..n-1.
type ProcessID int

// Time is a logical instant of the discrete global clock of the paper's
// model. Processes cannot read it; it is used by failure patterns, recorded
// failure-detector histories and the simulator.
type Time int64

// String implements fmt.Stringer.
func (p ProcessID) String() string { return fmt.Sprintf("p%d", int(p)) }

// ProcessSet is a finite set of process identifiers. The zero value is an
// empty, usable set once initialised through NewProcessSet or Add on a
// non-nil map; use NewProcessSet for a ready-to-use value.
type ProcessSet struct {
	members map[ProcessID]struct{}
}

// NewProcessSet returns a set containing the given processes.
func NewProcessSet(ps ...ProcessID) ProcessSet {
	s := ProcessSet{members: make(map[ProcessID]struct{}, len(ps))}
	for _, p := range ps {
		s.members[p] = struct{}{}
	}
	return s
}

// NewProcessSetCap returns an empty set with room for n members, for callers
// that know the eventual size and want to avoid incremental map growth.
func NewProcessSetCap(n int) ProcessSet {
	return ProcessSet{members: make(map[ProcessID]struct{}, n)}
}

// AllProcesses returns the set {0, ..., n-1}.
func AllProcesses(n int) ProcessSet {
	s := ProcessSet{members: make(map[ProcessID]struct{}, n)}
	for i := 0; i < n; i++ {
		s.members[ProcessID(i)] = struct{}{}
	}
	return s
}

func (s *ProcessSet) ensure() {
	if s.members == nil {
		s.members = make(map[ProcessID]struct{})
	}
}

// Add inserts p into the set.
func (s *ProcessSet) Add(p ProcessID) {
	s.ensure()
	s.members[p] = struct{}{}
}

// Clear removes every member, keeping the allocated capacity for reuse.
func (s *ProcessSet) Clear() {
	clear(s.members)
}

// Remove deletes p from the set; it is a no-op if p is absent.
func (s *ProcessSet) Remove(p ProcessID) {
	if s.members == nil {
		return
	}
	delete(s.members, p)
}

// Contains reports whether p is a member.
func (s ProcessSet) Contains(p ProcessID) bool {
	_, ok := s.members[p]
	return ok
}

// Len returns the number of members.
func (s ProcessSet) Len() int { return len(s.members) }

// IsEmpty reports whether the set has no members.
func (s ProcessSet) IsEmpty() bool { return len(s.members) == 0 }

// Clone returns an independent copy of the set.
func (s ProcessSet) Clone() ProcessSet {
	c := ProcessSet{members: make(map[ProcessID]struct{}, len(s.members))}
	for p := range s.members {
		c.members[p] = struct{}{}
	}
	return c
}

// Union returns a new set containing the members of s and t.
func (s ProcessSet) Union(t ProcessSet) ProcessSet {
	u := s.Clone()
	for p := range t.members {
		u.members[p] = struct{}{}
	}
	return u
}

// Intersect returns a new set containing the members common to s and t.
func (s ProcessSet) Intersect(t ProcessSet) ProcessSet {
	u := NewProcessSet()
	for p := range s.members {
		if t.Contains(p) {
			u.members[p] = struct{}{}
		}
	}
	return u
}

// Minus returns a new set containing the members of s that are not in t.
func (s ProcessSet) Minus(t ProcessSet) ProcessSet {
	u := NewProcessSet()
	for p := range s.members {
		if !t.Contains(p) {
			u.members[p] = struct{}{}
		}
	}
	return u
}

// Intersects reports whether s and t share at least one member.
func (s ProcessSet) Intersects(t ProcessSet) bool {
	small, large := s, t
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for p := range small.members {
		if large.Contains(p) {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every member of s belongs to t.
func (s ProcessSet) SubsetOf(t ProcessSet) bool {
	for p := range s.members {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// Equal reports whether s and t have exactly the same members.
func (s ProcessSet) Equal(t ProcessSet) bool {
	return s.Len() == t.Len() && s.SubsetOf(t)
}

// Slice returns the members in ascending order.
func (s ProcessSet) Slice() []ProcessID {
	out := make([]ProcessID, 0, len(s.members))
	for p := range s.members {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Min returns the smallest member and true, or 0 and false if the set is empty.
func (s ProcessSet) Min() (ProcessID, bool) {
	if s.IsEmpty() {
		return 0, false
	}
	first := true
	var min ProcessID
	for p := range s.members {
		if first || p < min {
			min = p
			first = false
		}
	}
	return min, true
}

// String implements fmt.Stringer, e.g. "{p0,p2,p3}".
func (s ProcessSet) String() string {
	ids := s.Slice()
	parts := make([]string, len(ids))
	for i, p := range ids {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}
