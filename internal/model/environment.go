package model

import "fmt"

// Environment is the set of failure patterns under which an algorithm is
// required to work (Section 2 of the paper). An environment is represented
// intentionally as a predicate: the paper quantifies over arbitrary
// environments, and tests instantiate both the canned ones below and ad-hoc
// predicates.
type Environment interface {
	// Allows reports whether the failure pattern belongs to the environment.
	Allows(f *FailurePattern) bool
	// Name returns a short human-readable identifier used in traces and
	// experiment tables.
	Name() string
}

// envFunc adapts a predicate to the Environment interface.
type envFunc struct {
	name string
	fn   func(*FailurePattern) bool
}

func (e envFunc) Allows(f *FailurePattern) bool { return e.fn(f) }
func (e envFunc) Name() string                  { return e.name }

// EnvironmentFunc builds an Environment from a name and a predicate.
func EnvironmentFunc(name string, fn func(*FailurePattern) bool) Environment {
	return envFunc{name: name, fn: fn}
}

// AnyEnvironment admits every failure pattern except the one in which all
// processes crash (the paper's problems are vacuous without at least one
// correct process; every weakest-failure-detector statement presupposes it).
func AnyEnvironment() Environment {
	return envFunc{
		name: "any",
		fn: func(f *FailurePattern) bool {
			return f.Correct().Len() >= 1
		},
	}
}

// MajorityCorrect admits failure patterns in which a strict majority of the
// processes are correct. This is the environment of Attiya–Bar-Noy–Dolev and
// of the original Chandra–Hadzilacos–Toueg weakest-failure-detector result.
func MajorityCorrect() Environment {
	return envFunc{
		name: "majority-correct",
		fn: func(f *FailurePattern) bool {
			return f.Correct().Len()*2 > f.N()
		},
	}
}

// MaxFailures admits failure patterns with at most f faulty processes.
func MaxFailures(f int) Environment {
	return envFunc{
		name: fmt.Sprintf("max-failures-%d", f),
		fn: func(fp *FailurePattern) bool {
			return fp.NumFaulty() <= f && fp.Correct().Len() >= 1
		},
	}
}

// FailureFree admits only the failure pattern with no crashes.
func FailureFree() Environment {
	return envFunc{
		name: "failure-free",
		fn:   func(f *FailurePattern) bool { return f.NumFaulty() == 0 },
	}
}

// CrashesBefore admits failure patterns in which process p does not crash
// after process q: either p is correct, or q crashes and p's crash time is not
// earlier than q's. It illustrates the paper's example environment "process p
// never fails before process q".
func CrashesBefore(q, p ProcessID) Environment {
	return envFunc{
		name: fmt.Sprintf("%v-never-before-%v", p, q),
		fn: func(f *FailurePattern) bool {
			pt, qt := f.CrashTime(p), f.CrashTime(q)
			if pt == NeverCrashes {
				return true
			}
			return qt != NeverCrashes && qt <= pt
		},
	}
}

// MinorityCorrect admits failure patterns in which at least one but at most a
// minority of processes are correct — the interesting regime where
// majority-based constructions stop working and Sigma is genuinely needed.
func MinorityCorrect() Environment {
	return envFunc{
		name: "minority-correct",
		fn: func(f *FailurePattern) bool {
			c := f.Correct().Len()
			return c >= 1 && c*2 <= f.N()
		},
	}
}
