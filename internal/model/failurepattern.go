package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NeverCrashes is the crash time recorded for a process that is correct in a
// failure pattern. Any Time value compared against it is smaller.
const NeverCrashes = Time(1<<62 - 1)

// FailurePattern is the function F of the paper: F(t) is the set of processes
// that have crashed through time t. It is represented by the crash time of
// each process (NeverCrashes for correct processes). Crashed processes do not
// recover, so F(t) ⊆ F(t+1) by construction.
//
// A FailurePattern can be used in two modes:
//
//   - as a static description (a planned crash schedule handed to the
//     simulator or the runtime before a run), or
//   - as a live record: the runtime calls Crash(p, t) when it kills a
//     process, and failure detectors backed by the oracle read CrashedAt.
//
// The type is safe for concurrent use.
type FailurePattern struct {
	mu      sync.RWMutex
	n       int
	crash   map[ProcessID]Time
	frozen  bool
	version uint64
}

// NewFailurePattern returns a failure pattern over n processes in which every
// process is (so far) correct.
func NewFailurePattern(n int) *FailurePattern {
	return &FailurePattern{n: n, crash: make(map[ProcessID]Time, n)}
}

// N returns the number of processes in the system.
func (f *FailurePattern) N() int { return f.n }

// Crash records that process p crashes at time t. If p already has an earlier
// crash time the earlier one is kept (a process crashes once). Crash panics if
// p is out of range or the pattern has been frozen.
func (f *FailurePattern) Crash(p ProcessID, t Time) {
	if int(p) < 0 || int(p) >= f.n {
		panic(fmt.Sprintf("model: crash of out-of-range process %v (n=%d)", p, f.n))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.frozen {
		panic("model: Crash called on a frozen FailurePattern")
	}
	if old, ok := f.crash[p]; ok && old <= t {
		return
	}
	f.crash[p] = t
	f.version++
}

// Version returns a counter that changes whenever the pattern records a new
// (or earlier) crash. Detectors that derive values from the pattern can use
// it to cache across queries: a sample computed at version v over inputs that
// otherwise only depend on time stays valid while Version() == v.
func (f *FailurePattern) Version() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.version
}

// Freeze marks the pattern immutable; later Crash calls panic. Tests freeze a
// planned pattern to guard against accidental mutation.
func (f *FailurePattern) Freeze() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.frozen = true
}

// CrashTime returns the crash time of p, or NeverCrashes if p is correct.
func (f *FailurePattern) CrashTime(p ProcessID) Time {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if t, ok := f.crash[p]; ok {
		return t
	}
	return NeverCrashes
}

// CrashedAt reports whether p has crashed by time t (p ∈ F(t)).
func (f *FailurePattern) CrashedAt(p ProcessID, t Time) bool {
	return f.CrashTime(p) <= t
}

// CrashedBy returns F(t): the set of processes that have crashed through t.
func (f *FailurePattern) CrashedBy(t Time) ProcessSet {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := NewProcessSet()
	for p, ct := range f.crash {
		if ct <= t {
			s.Add(p)
		}
	}
	return s
}

// AliveAt returns Π − F(t): the processes that have not crashed by time t.
func (f *FailurePattern) AliveAt(t Time) ProcessSet {
	alive := AllProcesses(f.n)
	f.mu.RLock()
	defer f.mu.RUnlock()
	for p, ct := range f.crash {
		if ct <= t {
			alive.Remove(p)
		}
	}
	return alive
}

// MinVisiblyAlive returns the lowest-id process whose crash (if any) is not
// yet visible at time now given the suspicion delay, and true; or (0, false)
// if every process's crash is visible. It takes the pattern lock once and
// allocates nothing, unlike building the full alive set just to take its
// minimum — the Ω oracle calls this on every sample.
func (f *FailurePattern) MinVisiblyAlive(now, delay Time) (ProcessID, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for i := 0; i < f.n; i++ {
		ct, crashed := f.crash[ProcessID(i)]
		if !crashed || ct+delay > now {
			return ProcessID(i), true
		}
	}
	return 0, false
}

// VisiblyAlive returns the set of processes whose crash (if any) is not yet
// visible at time now given the suspicion delay, together with the first time
// at which that set next changes given the crashes recorded so far
// (NeverCrashes if it never does). The expiry lets callers cache the set: it
// is valid for every query time in [now, next).
func (f *FailurePattern) VisiblyAlive(now, delay Time) (ProcessSet, Time) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	alive := NewProcessSetCap(f.n)
	next := NeverCrashes
	for i := 0; i < f.n; i++ {
		ct, crashed := f.crash[ProcessID(i)]
		if !crashed {
			alive.Add(ProcessID(i))
			continue
		}
		if visibleAt := ct + delay; visibleAt > now {
			alive.Add(ProcessID(i))
			if visibleAt < next {
				next = visibleAt
			}
		}
	}
	return alive, next
}

// Faulty returns faulty(F): every process with a recorded crash, regardless of
// time.
func (f *FailurePattern) Faulty() ProcessSet {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := NewProcessSet()
	for p := range f.crash {
		s.Add(p)
	}
	return s
}

// Correct returns correct(F) = Π − faulty(F).
func (f *FailurePattern) Correct() ProcessSet {
	return AllProcesses(f.n).Minus(f.Faulty())
}

// FirstCrashTime returns the earliest crash time in the pattern and true, or
// (0, false) if no process crashes.
func (f *FailurePattern) FirstCrashTime() (Time, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	found := false
	var min Time
	for _, ct := range f.crash {
		if !found || ct < min {
			min = ct
			found = true
		}
	}
	return min, found
}

// FailureOccurredBy reports whether F(t) is non-empty.
func (f *FailurePattern) FailureOccurredBy(t Time) bool {
	first, ok := f.FirstCrashTime()
	return ok && first <= t
}

// NumFaulty returns |faulty(F)|.
func (f *FailurePattern) NumFaulty() int { return f.Faulty().Len() }

// Clone returns an independent (unfrozen) copy of the pattern.
func (f *FailurePattern) Clone() *FailurePattern {
	f.mu.RLock()
	defer f.mu.RUnlock()
	c := NewFailurePattern(f.n)
	for p, t := range f.crash {
		c.crash[p] = t
	}
	return c
}

// String renders the pattern as "n=5 crashes[p1@10 p3@20]".
func (f *FailurePattern) String() string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	type ct struct {
		p ProcessID
		t Time
	}
	cts := make([]ct, 0, len(f.crash))
	for p, t := range f.crash {
		cts = append(cts, ct{p, t})
	}
	sort.Slice(cts, func(i, j int) bool { return cts[i].p < cts[j].p })
	parts := make([]string, len(cts))
	for i, c := range cts {
		parts[i] = fmt.Sprintf("%v@%d", c.p, c.t)
	}
	return fmt.Sprintf("n=%d crashes[%s]", f.n, strings.Join(parts, " "))
}
