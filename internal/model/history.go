package model

import (
	"fmt"
	"sort"
	"sync"
)

// FSValue is the range of the failure-signal detector FS: green or red.
type FSValue int

// Values of FS.
const (
	Green FSValue = iota
	Red
)

// String implements fmt.Stringer.
func (v FSValue) String() string {
	if v == Red {
		return "red"
	}
	return "green"
}

// OmegaSigmaValue is a sample of the composed detector (Omega, Sigma): a
// leader hint and a quorum.
type OmegaSigmaValue struct {
	Leader ProcessID
	Quorum ProcessSet
}

// String implements fmt.Stringer.
func (v OmegaSigmaValue) String() string {
	return fmt.Sprintf("(leader=%v, quorum=%v)", v.Leader, v.Quorum)
}

// PsiPhase identifies which regime a Psi sample belongs to.
type PsiPhase int

// Phases of Psi: the initial ⊥ phase, the FS regime, and the (Omega, Sigma)
// regime.
const (
	PsiBottom PsiPhase = iota
	PsiFS
	PsiOmegaSigma
)

// String implements fmt.Stringer.
func (p PsiPhase) String() string {
	switch p {
	case PsiBottom:
		return "⊥"
	case PsiFS:
		return "FS"
	case PsiOmegaSigma:
		return "(Ω,Σ)"
	default:
		return fmt.Sprintf("PsiPhase(%d)", int(p))
	}
}

// PsiValue is a sample of the detector Psi. Exactly one regime is meaningful,
// selected by Phase: Bottom carries no data, FS carries an FSValue, and
// OmegaSigma carries an OmegaSigmaValue.
type PsiValue struct {
	Phase PsiPhase
	FS    FSValue
	OS    OmegaSigmaValue
}

// String implements fmt.Stringer.
func (v PsiValue) String() string {
	switch v.Phase {
	case PsiBottom:
		return "⊥"
	case PsiFS:
		return "FS:" + v.FS.String()
	case PsiOmegaSigma:
		return "ΩΣ:" + v.OS.String()
	default:
		return fmt.Sprintf("PsiValue(%d)", int(v.Phase))
	}
}

// Sample is one recorded failure-detector output: process p saw value V at
// (logical) time T. The concrete type of Value depends on the detector:
// ProcessID for Omega, ProcessSet for Sigma, FSValue for FS, PsiValue for Psi,
// OmegaSigmaValue for the pair.
type Sample struct {
	Process ProcessID
	Time    Time
	Value   any
}

// History is a finite record of failure-detector samples, the executable
// counterpart of the paper's failure-detector history H : Π × T → R. Samples
// are appended by the runtime or the simulator as processes query their
// detector modules; the specification checkers in spec.go consume it.
//
// By default a history grows without bound — every query of a bound detector
// records a sample, which is what the checkers need but is a real memory
// hazard for count-only million-run sweeps. SetLimit (or NewHistoryWithLimit)
// opts into a ring of the most recent samples instead; checkers then see a
// sliding window, so perpetual clauses are only checked over the retained
// suffix — keep full recording for checker paths and cap only where the
// history is informational.
//
// A History is safe for concurrent use.
type History struct {
	mu      sync.Mutex
	samples []Sample
	// limit > 0 makes samples a ring of the most recent limit entries;
	// start is the ring head (index of the oldest retained sample).
	limit   int
	start   int
	dropped int64
}

// NewHistory returns an empty, unbounded history.
func NewHistory() *History { return &History{} }

// NewHistoryWithLimit returns an empty history retaining at most limit
// samples (the most recent ones); limit <= 0 means unbounded.
func NewHistoryWithLimit(limit int) *History {
	h := &History{}
	h.SetLimit(limit)
	return h
}

// SetLimit caps the history at the most recent limit samples, dropping the
// oldest ones now if it already holds more; limit <= 0 removes the cap.
func (h *History) SetLimit(limit int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.linearize()
	if limit > 0 && len(h.samples) > limit {
		h.dropped += int64(len(h.samples) - limit)
		h.samples = append([]Sample(nil), h.samples[len(h.samples)-limit:]...)
	}
	h.limit = limit
}

// linearize restores recording order in h.samples (ring head back to 0).
// Callers must hold h.mu.
func (h *History) linearize() {
	if h.start == 0 {
		return
	}
	out := make([]Sample, 0, len(h.samples))
	out = append(out, h.samples[h.start:]...)
	out = append(out, h.samples[:h.start]...)
	h.samples, h.start = out, 0
}

// Record appends a sample; with a limit set, the oldest retained sample is
// dropped once the ring is full.
func (h *History) Record(p ProcessID, t Time, v any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Sample{Process: p, Time: t, Value: v}
	if h.limit > 0 && len(h.samples) == h.limit {
		h.samples[h.start] = s
		h.start = (h.start + 1) % h.limit
		h.dropped++
		return
	}
	h.samples = append(h.samples, s)
}

// Len returns the number of retained samples.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Dropped returns how many samples the ring limit has discarded; 0 for an
// unbounded history.
func (h *History) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Samples returns a copy of the retained samples in recording order.
func (h *History) Samples() []Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Sample, 0, len(h.samples))
	out = append(out, h.samples[h.start:]...)
	out = append(out, h.samples[:h.start]...)
	return out
}

// ByProcess returns, for each process, its samples sorted by time (stable in
// recording order for equal times).
func (h *History) ByProcess() map[ProcessID][]Sample {
	all := h.Samples()
	out := make(map[ProcessID][]Sample)
	for _, s := range all {
		out[s.Process] = append(out[s.Process], s)
	}
	for p := range out {
		ss := out[p]
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].Time < ss[j].Time })
	}
	return out
}
