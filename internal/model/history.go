package model

import (
	"fmt"
	"sort"
	"sync"
)

// FSValue is the range of the failure-signal detector FS: green or red.
type FSValue int

// Values of FS.
const (
	Green FSValue = iota
	Red
)

// String implements fmt.Stringer.
func (v FSValue) String() string {
	if v == Red {
		return "red"
	}
	return "green"
}

// OmegaSigmaValue is a sample of the composed detector (Omega, Sigma): a
// leader hint and a quorum.
type OmegaSigmaValue struct {
	Leader ProcessID
	Quorum ProcessSet
}

// String implements fmt.Stringer.
func (v OmegaSigmaValue) String() string {
	return fmt.Sprintf("(leader=%v, quorum=%v)", v.Leader, v.Quorum)
}

// PsiPhase identifies which regime a Psi sample belongs to.
type PsiPhase int

// Phases of Psi: the initial ⊥ phase, the FS regime, and the (Omega, Sigma)
// regime.
const (
	PsiBottom PsiPhase = iota
	PsiFS
	PsiOmegaSigma
)

// String implements fmt.Stringer.
func (p PsiPhase) String() string {
	switch p {
	case PsiBottom:
		return "⊥"
	case PsiFS:
		return "FS"
	case PsiOmegaSigma:
		return "(Ω,Σ)"
	default:
		return fmt.Sprintf("PsiPhase(%d)", int(p))
	}
}

// PsiValue is a sample of the detector Psi. Exactly one regime is meaningful,
// selected by Phase: Bottom carries no data, FS carries an FSValue, and
// OmegaSigma carries an OmegaSigmaValue.
type PsiValue struct {
	Phase PsiPhase
	FS    FSValue
	OS    OmegaSigmaValue
}

// String implements fmt.Stringer.
func (v PsiValue) String() string {
	switch v.Phase {
	case PsiBottom:
		return "⊥"
	case PsiFS:
		return "FS:" + v.FS.String()
	case PsiOmegaSigma:
		return "ΩΣ:" + v.OS.String()
	default:
		return fmt.Sprintf("PsiValue(%d)", int(v.Phase))
	}
}

// Sample is one recorded failure-detector output: process p saw value V at
// (logical) time T. The concrete type of Value depends on the detector:
// ProcessID for Omega, ProcessSet for Sigma, FSValue for FS, PsiValue for Psi,
// OmegaSigmaValue for the pair.
type Sample struct {
	Process ProcessID
	Time    Time
	Value   any
}

// History is a finite record of failure-detector samples, the executable
// counterpart of the paper's failure-detector history H : Π × T → R. Samples
// are appended by the runtime or the simulator as processes query their
// detector modules; the specification checkers in spec.go consume it.
//
// A History is safe for concurrent use.
type History struct {
	mu      sync.Mutex
	samples []Sample
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Record appends a sample.
func (h *History) Record(p ProcessID, t Time, v any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, Sample{Process: p, Time: t, Value: v})
}

// Len returns the number of recorded samples.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Samples returns a copy of all samples in recording order.
func (h *History) Samples() []Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Sample, len(h.samples))
	copy(out, h.samples)
	return out
}

// ByProcess returns, for each process, its samples sorted by time (stable in
// recording order for equal times).
func (h *History) ByProcess() map[ProcessID][]Sample {
	all := h.Samples()
	out := make(map[ProcessID][]Sample)
	for _, s := range all {
		out[s.Process] = append(out[s.Process], s)
	}
	for p := range out {
		ss := out[p]
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].Time < ss[j].Time })
	}
	return out
}
