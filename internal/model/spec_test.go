package model

import (
	"testing"
)

func twoCrashPattern() *FailurePattern {
	f := NewFailurePattern(3)
	f.Crash(2, 50)
	return f
}

func TestCheckSigmaAccepts(t *testing.T) {
	f := twoCrashPattern() // correct = {0,1}
	h := NewHistory()
	h.Record(0, 10, NewProcessSet(0, 1, 2))
	h.Record(1, 20, NewProcessSet(1, 2))
	h.Record(2, 30, NewProcessSet(0, 1, 2))
	h.Record(0, 100, NewProcessSet(0, 1))
	h.Record(1, 110, NewProcessSet(0, 1))
	if v := CheckSigma(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("valid sigma history rejected: %v", v)
	}
}

func TestCheckSigmaIntersectionViolation(t *testing.T) {
	f := NewFailurePattern(4)
	h := NewHistory()
	h.Record(0, 1, NewProcessSet(0, 1))
	h.Record(1, 2, NewProcessSet(2, 3))
	if v := CheckSigma(f, h, SafetyOnlyCheckOptions()); v.OK {
		t.Fatalf("disjoint quorums accepted")
	}
}

func TestCheckSigmaCompletenessViolation(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 10, NewProcessSet(0, 2)) // final quorum of correct p0 contains faulty p2
	h.Record(1, 10, NewProcessSet(0, 1))
	if v := CheckSigma(f, h, DefaultCheckOptions()); v.OK {
		t.Fatalf("incomplete sigma history accepted")
	}
	if v := CheckSigma(f, h, SafetyOnlyCheckOptions()); !v.OK {
		t.Fatalf("safety-only check should pass: %v", v)
	}
}

func TestCheckSigmaWrongType(t *testing.T) {
	h := NewHistory()
	h.Record(0, 1, "not a set")
	if v := CheckSigma(NewFailurePattern(2), h, DefaultCheckOptions()); v.OK {
		t.Fatalf("wrong sample type accepted")
	}
}

func TestCheckOmegaAccepts(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 1, ProcessID(2)) // early mistaken leader is fine
	h.Record(0, 100, ProcessID(0))
	h.Record(1, 100, ProcessID(0))
	h.Record(2, 40, ProcessID(2)) // faulty process's output is unconstrained
	if v := CheckOmega(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("valid omega history rejected: %v", v)
	}
}

func TestCheckOmegaDisagreement(t *testing.T) {
	f := NewFailurePattern(3)
	h := NewHistory()
	h.Record(0, 100, ProcessID(0))
	h.Record(1, 100, ProcessID(1))
	if v := CheckOmega(f, h, DefaultCheckOptions()); v.OK {
		t.Fatalf("disagreeing final leaders accepted")
	}
}

func TestCheckOmegaFaultyLeader(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 100, ProcessID(2))
	h.Record(1, 100, ProcessID(2))
	if v := CheckOmega(f, h, DefaultCheckOptions()); v.OK {
		t.Fatalf("faulty final leader accepted")
	}
	if v := CheckOmega(f, h, SafetyOnlyCheckOptions()); !v.OK {
		t.Fatalf("safety-only omega check should pass: %v", v)
	}
}

func TestCheckFSAccepts(t *testing.T) {
	f := twoCrashPattern() // crash at 50
	h := NewHistory()
	h.Record(0, 10, Green)
	h.Record(1, 10, Green)
	h.Record(0, 60, Red)
	h.Record(1, 70, Red)
	if v := CheckFS(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("valid fs history rejected: %v", v)
	}
}

func TestCheckFSPrematureRed(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 10, Red) // before the crash at 50
	if v := CheckFS(f, h, SafetyOnlyCheckOptions()); v.OK {
		t.Fatalf("premature red accepted")
	}
}

func TestCheckFSMissingRed(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 100, Green)
	h.Record(1, 100, Green)
	if v := CheckFS(f, h, DefaultCheckOptions()); v.OK {
		t.Fatalf("missing eventual red accepted")
	}
	if v := CheckFS(f, h, SafetyOnlyCheckOptions()); !v.OK {
		t.Fatalf("safety-only fs check should pass: %v", v)
	}
}

func TestCheckFSNoFailureAllGreen(t *testing.T) {
	f := NewFailurePattern(3)
	h := NewHistory()
	h.Record(0, 10, Green)
	h.Record(1, 999, Green)
	if v := CheckFS(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("all-green history without failures rejected: %v", v)
	}
}

func TestCheckOmegaSigma(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 100, OmegaSigmaValue{Leader: 0, Quorum: NewProcessSet(0, 1)})
	h.Record(1, 100, OmegaSigmaValue{Leader: 0, Quorum: NewProcessSet(0, 1)})
	if v := CheckOmegaSigma(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("valid (omega,sigma) history rejected: %v", v)
	}
	bad := NewHistory()
	bad.Record(0, 100, OmegaSigmaValue{Leader: 0, Quorum: NewProcessSet(0)})
	bad.Record(1, 100, OmegaSigmaValue{Leader: 0, Quorum: NewProcessSet(1)})
	if v := CheckOmegaSigma(f, bad, DefaultCheckOptions()); v.OK {
		t.Fatalf("disjoint quorums accepted through pair checker")
	}
}

func psiOS(leader ProcessID, quorum ProcessSet) PsiValue {
	return PsiValue{Phase: PsiOmegaSigma, OS: OmegaSigmaValue{Leader: leader, Quorum: quorum}}
}

func psiFS(v FSValue) PsiValue { return PsiValue{Phase: PsiFS, FS: v} }

func TestCheckPsiOmegaSigmaBranch(t *testing.T) {
	f := NewFailurePattern(3) // no failures
	h := NewHistory()
	h.Record(0, 1, PsiValue{Phase: PsiBottom})
	h.Record(1, 1, PsiValue{Phase: PsiBottom})
	h.Record(2, 1, PsiValue{Phase: PsiBottom})
	for _, p := range []ProcessID{0, 1, 2} {
		h.Record(p, 100, psiOS(1, NewProcessSet(0, 1, 2)))
	}
	if v := CheckPsi(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("valid psi (omega,sigma) history rejected: %v", v)
	}
}

func TestCheckPsiFSBranch(t *testing.T) {
	f := twoCrashPattern() // crash at 50; correct = {0,1}
	h := NewHistory()
	h.Record(0, 1, PsiValue{Phase: PsiBottom})
	h.Record(1, 1, PsiValue{Phase: PsiBottom})
	h.Record(0, 60, psiFS(Red))
	h.Record(1, 70, psiFS(Red))
	if v := CheckPsi(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("valid psi FS history rejected: %v", v)
	}
}

func TestCheckPsiFSWithoutFailureRejected(t *testing.T) {
	f := NewFailurePattern(3)
	h := NewHistory()
	h.Record(0, 10, psiFS(Green))
	if v := CheckPsi(f, h, SafetyOnlyCheckOptions()); v.OK {
		t.Fatalf("FS regime without failure accepted")
	}
}

func TestCheckPsiMixedChoiceRejected(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 60, psiFS(Red))
	h.Record(1, 60, psiOS(0, NewProcessSet(0, 1)))
	if v := CheckPsi(f, h, SafetyOnlyCheckOptions()); v.OK {
		t.Fatalf("processes choosing different regimes accepted")
	}
}

func TestCheckPsiRegimeSwitchRejected(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 60, psiFS(Red))
	h.Record(0, 70, psiOS(0, NewProcessSet(0, 1)))
	if v := CheckPsi(f, h, SafetyOnlyCheckOptions()); v.OK {
		t.Fatalf("regime switch accepted")
	}
}

func TestCheckPsiReturnToBottomRejected(t *testing.T) {
	f := twoCrashPattern()
	h := NewHistory()
	h.Record(0, 60, psiFS(Red))
	h.Record(0, 70, PsiValue{Phase: PsiBottom})
	if v := CheckPsi(f, h, SafetyOnlyCheckOptions()); v.OK {
		t.Fatalf("return to bottom accepted")
	}
}

func TestCheckPsiStuckAtBottomRejectedEventually(t *testing.T) {
	f := NewFailurePattern(2)
	h := NewHistory()
	h.Record(0, 10, PsiValue{Phase: PsiBottom})
	h.Record(1, 10, psiOS(0, NewProcessSet(0, 1)))
	if v := CheckPsi(f, h, DefaultCheckOptions()); v.OK {
		t.Fatalf("correct process stuck at bottom accepted")
	}
	if v := CheckPsi(f, h, SafetyOnlyCheckOptions()); !v.OK {
		t.Fatalf("safety-only psi check should pass: %v", v)
	}
}

func TestVerdictMerge(t *testing.T) {
	v := Ok().Merge(Fail("a")).Merge(Fail("b"))
	if v.OK || len(v.Violations) != 2 {
		t.Fatalf("Merge = %v", v)
	}
	if Ok().Merge(Ok()).String() != "OK" {
		t.Fatalf("String of OK verdict wrong")
	}
}

func TestHistoryByProcessSorted(t *testing.T) {
	h := NewHistory()
	h.Record(1, 30, Green)
	h.Record(1, 10, Green)
	h.Record(0, 20, Green)
	by := h.ByProcess()
	if len(by[1]) != 2 || by[1][0].Time != 10 || by[1][1].Time != 30 {
		t.Fatalf("ByProcess not sorted: %v", by[1])
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestValueStringers(t *testing.T) {
	if Green.String() != "green" || Red.String() != "red" {
		t.Errorf("FSValue strings wrong")
	}
	if PsiBottom.String() != "⊥" || PsiFS.String() != "FS" || PsiOmegaSigma.String() != "(Ω,Σ)" {
		t.Errorf("PsiPhase strings wrong")
	}
	v := PsiValue{Phase: PsiFS, FS: Red}
	if v.String() != "FS:red" {
		t.Errorf("PsiValue string = %q", v.String())
	}
	os := OmegaSigmaValue{Leader: 1, Quorum: NewProcessSet(1, 2)}
	if os.String() != "(leader=p1, quorum={p1,p2})" {
		t.Errorf("OmegaSigmaValue string = %q", os.String())
	}
}
