package model

import (
	"testing"
)

// record fills h with one suspect-list sample per (process, tick) from f.
func recordSuspects(h *History, n int, ticks []Time, at func(p ProcessID, t Time) ProcessSet) {
	for _, t := range ticks {
		for i := 0; i < n; i++ {
			p := ProcessID(i)
			h.Record(p, t, at(p, t))
		}
	}
}

func TestCheckPerfectAccuracyViolation(t *testing.T) {
	f := NewFailurePattern(3)
	h := NewHistory()
	// p1 suspects p2 at time 5, but p2 never crashes.
	h.Record(1, 5, NewProcessSet(2))
	if v := CheckPerfect(f, h, SafetyOnlyCheckOptions()); v.OK {
		t.Fatalf("false suspicion passed the perfect accuracy clause")
	}
	// Suspicion after the crash is fine.
	f2 := NewFailurePattern(3)
	f2.Crash(2, 4)
	h2 := NewHistory()
	h2.Record(1, 5, NewProcessSet(2))
	if v := CheckPerfect(f2, h2, SafetyOnlyCheckOptions()); !v.OK {
		t.Fatalf("post-crash suspicion failed accuracy: %v", v)
	}
	// Suspicion before the crash time is not.
	h3 := NewHistory()
	h3.Record(1, 3, NewProcessSet(2))
	if v := CheckPerfect(f2, h3, SafetyOnlyCheckOptions()); v.OK {
		t.Fatalf("pre-crash suspicion passed accuracy")
	}
}

func TestCheckCompletenessOnLastSamples(t *testing.T) {
	f := NewFailurePattern(3)
	f.Crash(2, 4)
	h := NewHistory()
	// p0 and p1 finally suspect the faulty p2: complete.
	recordSuspects(h, 2, []Time{10}, func(ProcessID, Time) ProcessSet { return NewProcessSet(2) })
	for name, check := range map[string]func(*FailurePattern, *History, CheckOptions) Verdict{
		"P": CheckPerfect, "<>P": CheckEventuallyPerfect, "<>S": CheckEventuallyStrong,
	} {
		if v := check(f, h, DefaultCheckOptions()); !v.OK {
			t.Fatalf("%s: complete history failed: %v", name, v)
		}
	}
	// p1's final list misses p2: incomplete under every class.
	h.Record(1, 20, NewProcessSet())
	for name, check := range map[string]func(*FailurePattern, *History, CheckOptions) Verdict{
		"P": CheckPerfect, "<>P": CheckEventuallyPerfect, "<>S": CheckEventuallyStrong,
	} {
		if v := check(f, h, DefaultCheckOptions()); v.OK {
			t.Fatalf("%s: incomplete final list passed", name)
		}
	}
}

func TestCheckEventuallyPerfectForbidsFinalFalseSuspicion(t *testing.T) {
	f := NewFailurePattern(3)
	h := NewHistory()
	// A false-suspicion prefix is fine as long as the final samples are clean.
	h.Record(0, 1, NewProcessSet(1, 2))
	recordSuspects(h, 3, []Time{50}, func(p ProcessID, _ Time) ProcessSet { return NewProcessSet() })
	if v := CheckEventuallyPerfect(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("clean convergence failed ◇P: %v", v)
	}
	// A final sample still suspecting a correct process is not.
	h.Record(0, 60, NewProcessSet(1))
	if v := CheckEventuallyPerfect(f, h, DefaultCheckOptions()); v.OK {
		t.Fatalf("final false suspicion passed ◇P")
	}
	// ...but it is legal under ◇S as long as someone stays trusted by all.
	if v := CheckEventuallyStrong(f, h, DefaultCheckOptions()); !v.OK {
		t.Fatalf("◇S rejected a single defamed correct process: %v", v)
	}
}

func TestCheckEventuallyStrongNeedsOneTrustedCorrect(t *testing.T) {
	f := NewFailurePattern(2)
	h := NewHistory()
	// Each correct process finally suspects the other: nobody is trusted by
	// all correct processes — the weak-accuracy clause fails.
	h.Record(0, 10, NewProcessSet(1))
	h.Record(1, 10, NewProcessSet(0))
	if v := CheckEventuallyStrong(f, h, DefaultCheckOptions()); v.OK {
		t.Fatalf("mutual defamation passed ◇S")
	}
}

func TestSuspectCheckersRejectWrongSampleType(t *testing.T) {
	f := NewFailurePattern(2)
	h := NewHistory()
	h.Record(0, 1, 42)
	for name, check := range map[string]func(*FailurePattern, *History, CheckOptions) Verdict{
		"P": CheckPerfect, "<>P": CheckEventuallyPerfect, "<>S": CheckEventuallyStrong,
	} {
		if v := check(f, h, DefaultCheckOptions()); v.OK {
			t.Fatalf("%s accepted a non-ProcessSet sample", name)
		}
	}
}

func TestHistoryRingLimit(t *testing.T) {
	h := NewHistoryWithLimit(3)
	for i := 0; i < 5; i++ {
		h.Record(ProcessID(i%2), Time(i), i)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if h.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", h.Dropped())
	}
	got := h.Samples()
	for i, want := range []int{2, 3, 4} {
		if got[i].Value.(int) != want {
			t.Fatalf("Samples[%d] = %v, want %d (ring must keep the most recent in order)", i, got[i].Value, want)
		}
	}
	// Lowering the limit on a full ring drops the oldest retained samples.
	h.SetLimit(2)
	got = h.Samples()
	if len(got) != 2 || got[0].Value.(int) != 3 || got[1].Value.(int) != 4 {
		t.Fatalf("after SetLimit(2): %v", got)
	}
	if h.Dropped() != 3 {
		t.Fatalf("Dropped after shrink = %d, want 3", h.Dropped())
	}
	// Removing the cap restores unbounded growth.
	h.SetLimit(0)
	for i := 5; i < 10; i++ {
		h.Record(0, Time(i), i)
	}
	if h.Len() != 7 {
		t.Fatalf("uncapped Len = %d, want 7", h.Len())
	}
	first := h.Samples()[0]
	if first.Value.(int) != 3 {
		t.Fatalf("recording order lost across SetLimit: first = %v", first.Value)
	}
}

func TestHistoryUnboundedByDefault(t *testing.T) {
	h := NewHistory()
	for i := 0; i < 100; i++ {
		h.Record(0, Time(i), i)
	}
	if h.Len() != 100 || h.Dropped() != 0 {
		t.Fatalf("default history capped: len=%d dropped=%d", h.Len(), h.Dropped())
	}
}
