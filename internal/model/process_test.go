package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProcessSetBasics(t *testing.T) {
	s := NewProcessSet(1, 3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Fatalf("membership wrong: %v", s)
	}
	s.Add(2)
	if !s.Contains(2) {
		t.Fatalf("Add failed")
	}
	s.Remove(5)
	if s.Contains(5) {
		t.Fatalf("Remove failed")
	}
	if got := s.String(); got != "{p1,p2,p3}" {
		t.Fatalf("String = %q", got)
	}
}

func TestProcessSetZeroValueUsable(t *testing.T) {
	var s ProcessSet
	if !s.IsEmpty() || s.Contains(0) || s.Len() != 0 {
		t.Fatalf("zero set not empty")
	}
	s.Add(7)
	if !s.Contains(7) {
		t.Fatalf("Add on zero value failed")
	}
	var r ProcessSet
	r.Remove(3) // must not panic
}

func TestAllProcesses(t *testing.T) {
	s := AllProcesses(4)
	want := []ProcessID{0, 1, 2, 3}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestProcessSetAlgebra(t *testing.T) {
	a := NewProcessSet(0, 1, 2)
	b := NewProcessSet(2, 3)
	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewProcessSet(2)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewProcessSet(0, 1)) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Errorf("Intersects = false")
	}
	if a.Intersects(NewProcessSet(9)) {
		t.Errorf("Intersects with disjoint = true")
	}
	if !NewProcessSet(1, 2).SubsetOf(a) {
		t.Errorf("SubsetOf = false")
	}
	if NewProcessSet(1, 9).SubsetOf(a) {
		t.Errorf("SubsetOf = true for non-subset")
	}
}

func TestProcessSetCloneIndependence(t *testing.T) {
	a := NewProcessSet(1, 2)
	b := a.Clone()
	b.Add(3)
	if a.Contains(3) {
		t.Fatalf("Clone aliases original")
	}
}

func TestProcessSetMin(t *testing.T) {
	if _, ok := NewProcessSet().Min(); ok {
		t.Fatalf("Min on empty returned ok")
	}
	if m, ok := NewProcessSet(4, 2, 9).Min(); !ok || m != 2 {
		t.Fatalf("Min = %v, %v", m, ok)
	}
}

// randomSet builds a pseudo-random set over 0..universe-1 from raw int64 seeds,
// used by the quick-check properties below.
func randomSet(seed int64, universe int) ProcessSet {
	r := rand.New(rand.NewSource(seed))
	s := NewProcessSet()
	n := r.Intn(universe + 1)
	for i := 0; i < n; i++ {
		s.Add(ProcessID(r.Intn(universe)))
	}
	return s
}

func TestQuickSetUnionContainsBoth(t *testing.T) {
	prop := func(s1, s2 int64) bool {
		a, b := randomSet(s1, 10), randomSet(s2, 10)
		u := a.Union(b)
		return a.SubsetOf(u) && b.SubsetOf(u) && u.Len() <= a.Len()+b.Len()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetIntersectSymmetricAndSound(t *testing.T) {
	prop := func(s1, s2 int64) bool {
		a, b := randomSet(s1, 10), randomSet(s2, 10)
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if !i1.Equal(i2) {
			return false
		}
		if i1.IsEmpty() == a.Intersects(b) && !(i1.IsEmpty() && !a.Intersects(b)) {
			return false
		}
		return i1.SubsetOf(a) && i1.SubsetOf(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetMinusDisjointFromSubtrahend(t *testing.T) {
	prop := func(s1, s2 int64) bool {
		a, b := randomSet(s1, 10), randomSet(s2, 10)
		d := a.Minus(b)
		return d.SubsetOf(a) && !d.Intersects(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
