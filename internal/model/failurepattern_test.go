package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFailurePatternBasics(t *testing.T) {
	f := NewFailurePattern(5)
	if f.N() != 5 {
		t.Fatalf("N = %d", f.N())
	}
	f.Crash(1, 10)
	f.Crash(3, 20)

	if !f.CrashedAt(1, 10) || f.CrashedAt(1, 9) {
		t.Errorf("CrashedAt wrong for p1")
	}
	if f.CrashTime(0) != NeverCrashes {
		t.Errorf("CrashTime of correct process = %d", f.CrashTime(0))
	}
	if got := f.Faulty(); !got.Equal(NewProcessSet(1, 3)) {
		t.Errorf("Faulty = %v", got)
	}
	if got := f.Correct(); !got.Equal(NewProcessSet(0, 2, 4)) {
		t.Errorf("Correct = %v", got)
	}
	if got := f.CrashedBy(15); !got.Equal(NewProcessSet(1)) {
		t.Errorf("CrashedBy(15) = %v", got)
	}
	if got := f.AliveAt(25); !got.Equal(NewProcessSet(0, 2, 4)) {
		t.Errorf("AliveAt(25) = %v", got)
	}
	if first, ok := f.FirstCrashTime(); !ok || first != 10 {
		t.Errorf("FirstCrashTime = %d, %v", first, ok)
	}
	if f.FailureOccurredBy(9) || !f.FailureOccurredBy(10) {
		t.Errorf("FailureOccurredBy wrong")
	}
	if f.NumFaulty() != 2 {
		t.Errorf("NumFaulty = %d", f.NumFaulty())
	}
}

func TestFailurePatternEarliestCrashWins(t *testing.T) {
	f := NewFailurePattern(3)
	f.Crash(0, 30)
	f.Crash(0, 10)
	f.Crash(0, 50)
	if got := f.CrashTime(0); got != 10 {
		t.Fatalf("CrashTime = %d, want 10", got)
	}
}

func TestFailurePatternNoCrashes(t *testing.T) {
	f := NewFailurePattern(4)
	if _, ok := f.FirstCrashTime(); ok {
		t.Errorf("FirstCrashTime reported a crash")
	}
	if f.FailureOccurredBy(NeverCrashes - 1) {
		t.Errorf("FailureOccurredBy true with no crashes")
	}
	if !f.Correct().Equal(AllProcesses(4)) {
		t.Errorf("Correct = %v", f.Correct())
	}
}

func TestFailurePatternFreeze(t *testing.T) {
	f := NewFailurePattern(2)
	f.Crash(0, 1)
	f.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatalf("Crash after Freeze did not panic")
		}
	}()
	f.Crash(1, 2)
}

func TestFailurePatternOutOfRangePanics(t *testing.T) {
	f := NewFailurePattern(2)
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-range Crash did not panic")
		}
	}()
	f.Crash(7, 1)
}

func TestFailurePatternClone(t *testing.T) {
	f := NewFailurePattern(3)
	f.Crash(1, 5)
	c := f.Clone()
	c.Crash(2, 6)
	if f.Faulty().Contains(2) {
		t.Fatalf("Clone aliases original")
	}
	if !c.Faulty().Contains(1) {
		t.Fatalf("Clone lost crash record")
	}
}

func TestFailurePatternString(t *testing.T) {
	f := NewFailurePattern(3)
	f.Crash(2, 7)
	f.Crash(0, 3)
	if got := f.String(); got != "n=3 crashes[p0@3 p2@7]" {
		t.Fatalf("String = %q", got)
	}
}

// Property: F(t) is monotone non-decreasing in t, and faulty(F) is the union
// of all F(t).
func TestQuickFailurePatternMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		f := NewFailurePattern(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				f.Crash(ProcessID(i), Time(r.Intn(100)))
			}
		}
		prev := NewProcessSet()
		for tick := Time(0); tick <= 100; tick += 10 {
			cur := f.CrashedBy(tick)
			if !prev.SubsetOf(cur) {
				return false
			}
			prev = cur
		}
		return prev.SubsetOf(f.Faulty()) && f.Faulty().Equal(f.CrashedBy(NeverCrashes))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: alive and crashed partition the process set at every time.
func TestQuickFailurePatternAliveCrashedPartition(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		f := NewFailurePattern(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				f.Crash(ProcessID(i), Time(r.Intn(50)))
			}
		}
		for tick := Time(0); tick <= 60; tick += 7 {
			alive, crashed := f.AliveAt(tick), f.CrashedBy(tick)
			if alive.Intersects(crashed) {
				return false
			}
			if !alive.Union(crashed).Equal(AllProcesses(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvironments(t *testing.T) {
	maj := NewFailurePattern(5)
	maj.Crash(0, 1)
	maj.Crash(1, 2)

	minr := NewFailurePattern(5)
	minr.Crash(0, 1)
	minr.Crash(1, 2)
	minr.Crash(2, 3)

	allCrash := NewFailurePattern(3)
	allCrash.Crash(0, 1)
	allCrash.Crash(1, 1)
	allCrash.Crash(2, 1)

	none := NewFailurePattern(3)

	tests := []struct {
		name string
		env  Environment
		f    *FailurePattern
		want bool
	}{
		{"any allows majority pattern", AnyEnvironment(), maj, true},
		{"any allows minority pattern", AnyEnvironment(), minr, true},
		{"any rejects all-crashed", AnyEnvironment(), allCrash, false},
		{"majority-correct accepts 3/5 correct", MajorityCorrect(), maj, true},
		{"majority-correct rejects 2/5 correct", MajorityCorrect(), minr, false},
		{"minority-correct rejects 3/5 correct", MinorityCorrect(), maj, false},
		{"minority-correct accepts 2/5 correct", MinorityCorrect(), minr, true},
		{"max-failures-2 accepts 2 faults", MaxFailures(2), maj, true},
		{"max-failures-2 rejects 3 faults", MaxFailures(2), minr, false},
		{"failure-free rejects crashes", FailureFree(), maj, false},
		{"failure-free accepts none", FailureFree(), none, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.env.Allows(tc.f); got != tc.want {
				t.Fatalf("%s.Allows(%v) = %v, want %v", tc.env.Name(), tc.f, got, tc.want)
			}
		})
	}
}

func TestCrashesBeforeEnvironment(t *testing.T) {
	// Environment: p1 never crashes before p0.
	env := CrashesBefore(0, 1)

	ok1 := NewFailurePattern(3) // p1 correct
	ok2 := NewFailurePattern(3) // p0 at 5, p1 at 10
	ok2.Crash(0, 5)
	ok2.Crash(1, 10)
	bad := NewFailurePattern(3) // p1 crashes, p0 correct
	bad.Crash(1, 10)

	if !env.Allows(ok1) || !env.Allows(ok2) {
		t.Errorf("environment rejected allowed patterns")
	}
	if env.Allows(bad) {
		t.Errorf("environment accepted forbidden pattern")
	}
}

func TestEnvironmentFunc(t *testing.T) {
	env := EnvironmentFunc("p0-correct", func(f *FailurePattern) bool {
		return !f.Faulty().Contains(0)
	})
	if env.Name() != "p0-correct" {
		t.Fatalf("Name = %q", env.Name())
	}
	f := NewFailurePattern(2)
	if !env.Allows(f) {
		t.Fatalf("Allows = false for empty pattern")
	}
	f.Crash(0, 1)
	if env.Allows(f) {
		t.Fatalf("Allows = true after p0 crash")
	}
}
