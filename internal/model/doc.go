// Package model defines the formal model of the paper "The Weakest Failure
// Detectors to Solve Certain Fundamental Problems in Distributed Computing"
// (Delporte-Gallet et al., PODC 2004), Section 2: processes, failure patterns,
// environments, failure-detector histories, and the specifications of the
// failure detectors Sigma, Omega, FS and Psi.
//
// The package is purely descriptive: it contains no protocol code. It is the
// shared vocabulary of the simulation kernel (internal/sim), the goroutine
// runtime (internal/net), the failure-detector implementations (internal/fd,
// internal/fdimpl) and the specification checkers used by tests and by the
// extraction constructions (internal/extract).
//
// Times are logical. The paper assumes a discrete global clock that processes
// cannot read; here Time is an int64 tick used by failure patterns, recorded
// histories and the simulator. The goroutine runtime maps wall-clock progress
// onto these ticks only for bookkeeping.
package model
