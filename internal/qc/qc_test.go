package qc

import (
	"context"
	"sync"
	"testing"
	"time"

	"weakestfd/internal/check"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

const testTimeout = 20 * time.Second

// runQC has every process propose concurrently and returns the recorded
// outcome; processes listed in crashAfter are crashed shortly after proposals
// start.
func runQC(t *testing.T, nw *net.Network, group Group, proposals map[model.ProcessID]Value, crashAfter []model.ProcessID) check.QCOutcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	outcome := check.QCOutcome{Proposals: map[model.ProcessID]any{}}
	for p, v := range proposals {
		outcome.Proposals[p] = v
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range group {
		p := model.ProcessID(i)
		wg.Add(1)
		go func(p model.ProcessID, q *PsiQC) {
			defer wg.Done()
			d, err := q.Propose(ctx, proposals[p])
			end := nw.Clock().Now()
			if err != nil {
				if !nw.Crashed(p) {
					t.Errorf("qc propose by correct %v failed: %v", p, err)
				}
				return
			}
			mu.Lock()
			outcome.Decisions = append(outcome.Decisions, check.Decision{
				Process: p,
				Value:   check.QCDecision{Quit: d.Quit, Value: d.Value},
				Time:    end,
			})
			mu.Unlock()
		}(p, group[i])
	}
	if len(crashAfter) > 0 {
		time.Sleep(3 * time.Millisecond)
		for _, p := range crashAfter {
			nw.Crash(p)
		}
	}
	wg.Wait()
	return outcome
}

// Experiment E6: with no failure Ψ must take the (Ω, Σ) branch and QC decides
// a proposed value.
func TestPsiQCDecidesValueWithoutFailure(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(1))
	defer nw.Close()
	psi := &fd.OraclePsi{Pattern: nw.Pattern(), Clock: nw.Clock(), SwitchAfter: 5, Policy: fd.PreferFSOnFailure}
	group := NewPsiGroup(nw, "novfail", psi)
	defer group.Stop()

	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposals[model.ProcessID(i)] = i % 2
	}
	outcome := runQC(t, nw, group, proposals, nil)
	if v := check.CheckQC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("qc spec violated: %v", v)
	}
	for _, d := range outcome.Decisions {
		if d.Value.(check.QCDecision).Quit {
			t.Fatalf("process %v decided Quit although no failure occurred", d.Process)
		}
	}
}

// Experiment E6: a failure occurs before Ψ switches and the policy prefers
// FS, so every process returns Quit — which the specification allows exactly
// because a failure occurred.
func TestPsiQCQuitsAfterFailure(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(2))
	defer nw.Close()
	psi := &fd.OraclePsi{Pattern: nw.Pattern(), Clock: nw.Clock(), SwitchAfter: 10, Policy: fd.PreferFSOnFailure}
	group := NewPsiGroup(nw, "quit", psi)
	defer group.Stop()

	// Crash p3 before anyone proposes: Ψ will observe the failure at switch
	// time and enter its FS regime.
	nw.Crash(3)

	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposals[model.ProcessID(i)] = i % 2
	}
	outcome := runQC(t, nw, group, proposals, nil)
	if v := check.CheckQC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("qc spec violated: %v", v)
	}
	if len(outcome.Decisions) != 3 {
		t.Fatalf("expected 3 decisions, got %d", len(outcome.Decisions))
	}
	for _, d := range outcome.Decisions {
		if !d.Value.(check.QCDecision).Quit {
			t.Fatalf("process %v decided %v, want Quit", d.Process, d.Value)
		}
	}
}

// Experiment E6: even after a failure, Ψ may keep behaving like (Ω, Σ)
// (quitting is an option, never an obligation); QC then decides a proposed
// value.
func TestPsiQCValueDecisionDespiteFailure(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(3))
	defer nw.Close()
	psi := &fd.OraclePsi{Pattern: nw.Pattern(), Clock: nw.Clock(), SwitchAfter: 0, Policy: fd.PreferOmegaSigma}
	group := NewPsiGroup(nw, "nofs", psi)
	defer group.Stop()

	nw.Crash(3)

	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposals[model.ProcessID(i)] = 10 + i
	}
	outcome := runQC(t, nw, group, proposals, nil)
	if v := check.CheckQC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("qc spec violated: %v", v)
	}
	for _, d := range outcome.Decisions {
		if d.Value.(check.QCDecision).Quit {
			t.Fatalf("process %v decided Quit under PreferOmegaSigma policy", d.Process)
		}
	}
}

// Experiment E6: the Ω leader crashes while QC is running in the (Ω, Σ)
// branch; the survivors must still decide consistently.
func TestPsiQCSurvivesLeaderCrashMidRun(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(4))
	defer nw.Close()
	psi := &fd.OraclePsi{Pattern: nw.Pattern(), Clock: nw.Clock(), SwitchAfter: 0, Policy: fd.PreferOmegaSigma}
	group := NewPsiGroup(nw, "leadercrash", psi)
	defer group.Stop()

	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposals[model.ProcessID(i)] = i
	}
	outcome := runQC(t, nw, group, proposals, []model.ProcessID{0})
	if v := check.CheckQC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("qc spec violated: %v", v)
	}
	if len(outcome.Decisions) < n-1 {
		t.Fatalf("only %d of %d survivors decided", len(outcome.Decisions), n-1)
	}
}

func TestPsiQCWaitsOutBottomPhase(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(5))
	defer nw.Close()
	// Ψ leaves ⊥ only after the logical clock reaches 40; clock ticks are
	// driven by message traffic, which the consensus sub-protocol generates
	// once processes start proposing.
	psi := &fd.OraclePsi{Pattern: nw.Pattern(), Clock: nw.Clock(), SwitchAfter: 40, Policy: fd.PreferFSOnFailure}
	group := NewPsiGroup(nw, "bottom", psi)
	defer group.Stop()

	// Generate some background traffic so the clock advances past the switch
	// point even before consensus messages start flowing.
	go func() {
		for i := 0; i < 50; i++ {
			nw.Endpoint(0).Send(1, "noise", "tick", nil)
			time.Sleep(time.Millisecond)
		}
	}()

	proposals := map[model.ProcessID]Value{0: 1, 1: 1, 2: 0}
	outcome := runQC(t, nw, group, proposals, nil)
	if v := check.CheckQC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("qc spec violated: %v", v)
	}
}

func TestDecisionString(t *testing.T) {
	if (Decision{Quit: true}).String() != "Q" {
		t.Fatalf("Quit string wrong")
	}
	if (Decision{Value: 3}).String() != "3" {
		t.Fatalf("value string wrong")
	}
}

func TestPsiOmegaSigmaAdapterFallback(t *testing.T) {
	pattern := model.NewFailurePattern(3)
	clock := net.NewClock()
	psi := &fd.OraclePsi{Pattern: pattern, Clock: clock, SwitchAfter: 1000, Policy: fd.PreferOmegaSigma}
	bound := fd.BindTo(model.ProcessID(1), psi, clock)
	shared := psiOmegaSigma{self: 1, n: 3, psi: bound}
	if got := (psiOmega{shared}).Sample(); got != 1 {
		t.Fatalf("fallback leader = %v, want self", got)
	}
	if got := (psiSigma{shared}).Sample(); !got.Equal(model.AllProcesses(3)) {
		t.Fatalf("fallback quorum = %v", got)
	}
}
