// Package qc implements quittable consensus (QC, Section 5): like consensus,
// except that processes may agree on the special value Quit when (and only
// when) a failure has occurred.
//
// The package provides the sufficiency half of the paper's Theorem 5: the
// algorithm of Figure 2, which solves QC in any environment given the failure
// detector Ψ. Each process waits for its Ψ module to leave ⊥; if Ψ starts
// behaving like FS (which it may do only after a failure), the process
// returns Quit, otherwise Ψ behaves like (Ω, Σ) and the process runs the
// (Ω, Σ)-based consensus of internal/consensus on its proposal.
//
// The converse construction — extracting Ψ from an arbitrary QC algorithm
// (Figure 3) — lives in internal/extract. The reduction between QC and NBAC
// (Figures 4 and 5) lives in internal/nbac.
package qc

import (
	"context"
	"fmt"
	"time"

	"weakestfd/internal/consensus"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/quorum"
	"weakestfd/internal/trace"
)

// Value is a proposed or decided (non-Quit) value; it must be comparable.
type Value = consensus.Value

// Decision is the outcome of a QC instance: either Quit, or a regular decided
// value.
type Decision struct {
	Quit  bool
	Value Value
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	if d.Quit {
		return "Q"
	}
	return fmt.Sprintf("%v", d.Value)
}

// QC is a single-shot quittable-consensus instance at one process. Both the
// Ψ-based algorithm of this package and the NBAC-based transformation in
// internal/nbac satisfy it.
type QC interface {
	Propose(ctx context.Context, v Value) (Decision, error)
}

// PsiQC is the algorithm of Figure 2: quittable consensus from Ψ.
type PsiQC struct {
	ep      *net.Endpoint
	psi     fd.Psi
	cons    *consensus.BallotConsensus
	poll    time.Duration
	metrics *trace.Metrics
}

// Option configures a PsiQC participant.
type Option func(*pqcOptions)

type pqcOptions struct {
	poll    time.Duration
	metrics *trace.Metrics
	consOps []consensus.Option
}

// WithPollInterval sets how often the ⊥-wait of line 1 of Figure 2 re-samples
// Ψ. The interval is virtual time on the network's scheduler, so the wait
// costs no wall-clock time. Default 1ms.
func WithPollInterval(d time.Duration) Option { return func(o *pqcOptions) { o.poll = d } }

// WithMetrics attaches a metrics sink.
func WithMetrics(m *trace.Metrics) Option { return func(o *pqcOptions) { o.metrics = m } }

// WithConsensusOptions forwards options to the embedded (Ω, Σ) consensus
// participant.
func WithConsensusOptions(opts ...consensus.Option) Option {
	return func(o *pqcOptions) { o.consOps = opts }
}

// NewPsiQC creates the participant for the process behind ep in the QC
// instance named by instance, using psi as its local Ψ module. The embedded
// consensus participant extracts its Ω and Σ from Ψ's (Ω, Σ) regime, exactly
// as line 6 of Figure 2 prescribes.
func NewPsiQC(ep *net.Endpoint, instance string, psi fd.Psi, opts ...Option) *PsiQC {
	o := pqcOptions{poll: time.Millisecond, metrics: trace.NewMetrics()}
	for _, fn := range opts {
		fn(&o)
	}
	shared := psiOmegaSigma{self: ep.ID(), n: ep.N(), psi: psi}
	cons := consensus.NewBallotConsensus(ep, "qc."+instance, psiOmega{shared}, quorum.SigmaGuard{Source: psiSigma{shared}}, o.consOps...)
	return &PsiQC{
		ep:      ep,
		psi:     psi,
		cons:    cons,
		poll:    o.poll,
		metrics: o.metrics,
	}
}

// Metrics returns the participant's metrics sink.
func (q *PsiQC) Metrics() *trace.Metrics { return q.metrics }

// Stop shuts down the embedded consensus participant.
func (q *PsiQC) Stop() { q.cons.Stop() }

// Propose runs Figure 2 with proposal v.
func (q *PsiQC) Propose(ctx context.Context, v Value) (Decision, error) {
	q.metrics.Inc("propose")
	ctx, release := net.AdoptTask(ctx, q.ep, "qc.propose")
	defer release()
	task := net.TaskFrom(ctx)
	ticker := q.ep.NewTicker(q.poll)
	ticker.Bind(task)
	defer ticker.Stop()

	// Line 1: wait until Ψ leaves ⊥. Each iteration is a "nop" step of the
	// paper's Figure 2, and like every step it advances the global logical
	// clock (the runtime otherwise only ticks on message activity).
	for {
		val := q.psi.Sample()
		if val.Phase != model.PsiBottom {
			break
		}
		if task != nil {
			if err := ctx.Err(); err != nil {
				return Decision{}, fmt.Errorf("qc propose: %w", err)
			}
			if err := q.ep.Context().Err(); err != nil {
				return Decision{}, fmt.Errorf("qc propose: %w", err)
			}
			if ticker.TryFire() {
				q.ep.Clock().Tick()
			} else {
				task.Await(ctx)
			}
			continue
		}
		q.ep.Clock().Tick()
		select {
		case <-ctx.Done():
			return Decision{}, fmt.Errorf("qc propose: %w", ctx.Err())
		case <-q.ep.Context().Done():
			return Decision{}, fmt.Errorf("qc propose: %w", q.ep.Context().Err())
		case <-ticker.C:
		}
	}
	// The ⊥-wait is over; release the ticker before blocking in the embedded
	// consensus, whose waits ride their own timers — an unconsumed virtual
	// tick would freeze the network's clock.
	ticker.Stop()

	// Lines 2-4: if Ψ behaves like FS, a failure has occurred; return Quit.
	if q.psi.Sample().Phase == model.PsiFS {
		q.metrics.Inc("decided.quit")
		return Decision{Quit: true}, nil
	}

	// Lines 5-7: Ψ behaves like (Ω, Σ); run the (Ω, Σ) consensus.
	d, err := q.cons.Propose(ctx, v)
	if err != nil {
		return Decision{}, fmt.Errorf("qc propose: %w", err)
	}
	q.metrics.Inc("decided.value")
	return Decision{Value: d}, nil
}

// Run executes one single-shot quittable consensus at this participant: it
// proposes input and returns the Decision (the scenario harness's common
// participant entry point).
func (q *PsiQC) Run(ctx context.Context, input any) (any, error) {
	d, err := q.Propose(ctx, input)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// psiOmegaSigma carries the Ψ module its two projections share: psiOmega and
// psiSigma expose a Ψ in its (Ω, Σ) regime as the Omega and Sigma modules the
// consensus protocol needs. Before Ψ has switched (which only happens if a
// projection is queried outside Figure 2's order), they fall back to trusting
// the local process and the full process set — safe defaults that cannot
// violate quorum intersection.
type psiOmegaSigma struct {
	self model.ProcessID
	n    int
	psi  fd.Psi
}

// psiOmega is the Ω projection of a Ψ module.
type psiOmega struct{ psiOmegaSigma }

// Sample implements fd.Omega.
func (a psiOmega) Sample() model.ProcessID {
	v := a.psi.Sample()
	if v.Phase == model.PsiOmegaSigma {
		return v.OS.Leader
	}
	return a.self
}

// psiSigma is the Σ projection of a Ψ module.
type psiSigma struct{ psiOmegaSigma }

// Sample implements fd.Sigma (and quorum.SigmaSource).
func (a psiSigma) Sample() model.ProcessSet {
	v := a.psi.Sample()
	if v.Phase == model.PsiOmegaSigma {
		return v.OS.Quorum
	}
	return model.AllProcesses(a.n)
}

var (
	_ fd.Omega = psiOmega{}
	_ fd.Sigma = psiSigma{}
)

// Group is the set of Ψ-based QC participants of one instance, indexed by
// process id.
type Group []*PsiQC

// Stop stops every participant.
func (g Group) Stop() {
	for _, q := range g {
		q.Stop()
	}
}

// NewPsiGroup builds a QC participant for every process of the network, each
// bound to its module of the system-wide Ψ source.
func NewPsiGroup(nw *net.Network, instance string, psi fd.PsiSource, opts ...Option) Group {
	g := make(Group, nw.N())
	for i := 0; i < nw.N(); i++ {
		ep := nw.Endpoint(model.ProcessID(i))
		bound := fd.BindTo(ep.ID(), psi, nw.Clock())
		g[i] = NewPsiQC(ep, instance, bound, opts...)
	}
	return g
}
