package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags is the shared -cpuprofile/-memprofile plumbing of the
// schedule-space CLIs (cmd/sweep, cmd/explore). Both drivers exist to run
// millions of scheduled executions, so "where does a grid spend its time and
// allocations" is a first-class question; registering the same two flags
// here keeps the profiling story identical across them.
//
// Usage:
//
//	var prof cliutil.ProfileFlags
//	prof.Register(flag.CommandLine)
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
type ProfileFlags struct {
	// CPUPath and MemPath are the destination files ("" disables each).
	CPUPath string
	MemPath string

	cpuFile *os.File
}

// Register installs -cpuprofile and -memprofile on fs.
func (pf *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&pf.CPUPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&pf.MemPath, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling if -cpuprofile was given. Call after flag
// parsing; pair with a deferred Stop.
func (pf *ProfileFlags) Start() error {
	if pf.CPUPath == "" {
		return nil
	}
	f, err := os.Create(pf.CPUPath)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	pf.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, if either was
// requested. Errors are reported on stderr rather than returned: profiling
// failure at teardown must not change the driver's exit code, which sweeps'
// calling scripts interpret (pass/fail/cancelled).
func (pf *ProfileFlags) Stop() {
	if pf.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := pf.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		}
		pf.cpuFile = nil
	}
	if pf.MemPath != "" {
		f, err := os.Create(pf.MemPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialise the final live set before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}
}
