package cliutil

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer serializes writes: the emitter goroutine and the test both
// touch the buffer.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestStartProgressEmitsFinalLine: stop() always flushes one terminal line,
// so a consumer sees the final counts even when the run outpaces the ticker;
// every line is one standalone JSON object with the shared shape.
func TestStartProgressEmitsFinalLine(t *testing.T) {
	var buf lockedBuffer
	var done int64
	stop := StartProgress(&buf, time.Hour, func() ProgressLine {
		return ProgressLine{Tool: "sweep", Done: done, Total: 10, Passed: done}
	})
	done = 7
	stop()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly the final line, got %d: %q", len(lines), buf.String())
	}
	var line ProgressLine
	if err := json.Unmarshal([]byte(lines[0]), &line); err != nil {
		t.Fatalf("final line is not JSON: %v: %q", err, lines[0])
	}
	if line.Tool != "sweep" || line.Done != 7 || line.Total != 10 || line.Passed != 7 {
		t.Fatalf("final line %+v, want the terminal snapshot", line)
	}
}

// TestStartProgressZeroInterval: a non-positive interval disables emission
// entirely — the no-op stop must also write nothing.
func TestStartProgressZeroInterval(t *testing.T) {
	var buf lockedBuffer
	stop := StartProgress(&buf, 0, func() ProgressLine {
		t.Fatal("snapshot taken with progress disabled")
		return ProgressLine{}
	})
	stop()
	if buf.String() != "" {
		t.Fatalf("disabled progress wrote %q", buf.String())
	}
}
