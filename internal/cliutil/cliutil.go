// Package cliutil holds the flag-value grammars shared by the schedule-space
// CLIs (cmd/sweep, cmd/explore): seed lists and ranges, delay ranges, crash
// schedules, shard specs, detector-spec axes and protocol names. Both
// drivers accept the same value syntax because they parse it here, exactly
// once.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/scenario"
)

// SplitTopLevel splits s on sep, ignoring separators nested inside {...}
// parameter blocks — the brace-aware splitter every list grammar carrying
// detector specs needs (a spec like "perfect{suspect:3,stabilize:9}" embeds
// both commas and colons). Empty elements are preserved; unbalanced braces
// are an error.
func SplitTopLevel(s string, sep byte) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced '}' in %q", s)
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '{' in %q", s)
	}
	return append(out, s[start:]), nil
}

// ParseSeeds parses "1-1000" / "1,2,7-9" / "-5" style seed lists. A single
// pure range becomes an unmaterialised scenario.SeedSpan — the million-seed
// case stays O(1) in memory per shard process; mixed lists are expanded
// explicitly (and capped: a huge axis belongs in one span, not a list).
func ParseSeeds(s string) ([]int64, scenario.SeedSpan, error) {
	var none scenario.SeedSpan
	if strings.TrimSpace(s) == "" {
		return nil, none, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) == 1 {
		if a, b, ok, err := parseSeedRange(parts[0]); err != nil {
			return nil, none, err
		} else if ok {
			n := b - a + 1
			if n <= 0 || n > 1<<40 { // <= 0 catches int64 wrap on absurd spans
				return nil, none, fmt.Errorf("range %q is too large for one grid", parts[0])
			}
			return nil, scenario.SeedSpan{From: a, N: int(n)}, nil
		}
	}
	var out []int64
	for _, part := range parts {
		if strings.TrimSpace(part) == "" {
			continue
		}
		a, b, isRange, err := parseSeedRange(part)
		if err != nil {
			return nil, none, err
		}
		if !isRange {
			b = a
		}
		if int64(len(out))+(b-a) >= 1<<24 {
			return nil, none, fmt.Errorf("seed list expands past %d entries — use one contiguous range (kept as an unmaterialised span) instead", 1<<24)
		}
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
	}
	return out, none, nil
}

// parseSeedRange parses one list element: "a-b" (isRange=true) or a single
// seed "a" (isRange=false, returned in a). The range separator is the first
// '-' after position 0, so negative seeds ("-5", "-9--5") parse too.
func parseSeedRange(part string) (a, b int64, isRange bool, err error) {
	part = strings.TrimSpace(part)
	if v, err := strconv.ParseInt(part, 10, 64); err == nil {
		return v, 0, false, nil
	}
	if len(part) > 1 {
		if idx := strings.Index(part[1:], "-"); idx >= 0 {
			a, err1 := strconv.ParseInt(strings.TrimSpace(part[:idx+1]), 10, 64)
			b, err2 := strconv.ParseInt(strings.TrimSpace(part[idx+2:]), 10, 64)
			if err1 == nil && err2 == nil && b >= a {
				return a, b, true, nil
			}
		}
	}
	return 0, 0, false, fmt.Errorf("bad seed or range %q", part)
}

// ParseDelays parses "min:max[,min:max...]" delay-range lists.
func ParseDelays(s string) ([]scenario.DelayRange, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []scenario.DelayRange
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad delay range %q (want min:max)", part)
		}
		min, err1 := time.ParseDuration(strings.TrimSpace(lo))
		max, err2 := time.ParseDuration(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || max < min || min < 0 {
			return nil, fmt.Errorf("bad delay range %q", part)
		}
		out = append(out, scenario.DelayRange{Min: min, Max: max})
	}
	return out, nil
}

// ParseCrashes parses ';'-separated crash schedules of ','-separated p@time
// entries; "-" (or an empty schedule) is the explicit crash-free point.
func ParseCrashes(s string, n int) ([][]scenario.Crash, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out [][]scenario.Crash
	for _, sched := range strings.Split(s, ";") {
		sched = strings.TrimSpace(sched)
		if sched == "" || sched == "-" {
			out = append(out, nil)
			continue
		}
		var crashes []scenario.Crash
		for _, entry := range strings.Split(sched, ",") {
			proc, at, ok := strings.Cut(strings.TrimSpace(entry), "@")
			if !ok {
				return nil, fmt.Errorf("bad crash %q (want p@time)", entry)
			}
			pid, err := strconv.Atoi(strings.TrimSpace(proc))
			if err != nil || pid < 0 || pid >= n {
				return nil, fmt.Errorf("bad crash process %q (n=%d)", proc, n)
			}
			t, err := time.ParseDuration(strings.TrimSpace(at))
			if err != nil || t < 0 {
				return nil, fmt.Errorf("bad crash time %q", at)
			}
			crashes = append(crashes, scenario.Crash{P: model.ProcessID(pid), At: t})
		}
		out = append(out, crashes)
	}
	return out, nil
}

// ParseShard parses "k/m".
func ParseShard(s string) (scenario.Shard, error) {
	if strings.TrimSpace(s) == "" {
		return scenario.Shard{}, nil
	}
	k, m, ok := strings.Cut(s, "/")
	if !ok {
		return scenario.Shard{}, fmt.Errorf("bad shard %q (want k/m)", s)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(k))
	cnt, err2 := strconv.Atoi(strings.TrimSpace(m))
	if err1 != nil || err2 != nil || cnt < 1 || idx < 1 || idx > cnt {
		return scenario.Shard{}, fmt.Errorf("bad shard %q (want k/m with 1 <= k <= m)", s)
	}
	return scenario.Shard{Index: idx, Count: cnt}, nil
}

// ParseDetectors parses a comma-separated detector-spec list (registry
// grammar, commas inside {...} blocks do not split) and validates every
// class against the default registry, so unknown classes fail at flag time
// with the registered alternatives, not mid-sweep.
func ParseDetectors(s string) ([]fd.DetectorSpec, error) {
	specs, err := fd.ParseSpecList(s)
	if err != nil {
		return nil, err
	}
	for _, ds := range specs {
		if _, ok := fd.DefaultRegistry().Resolve(ds.Class); !ok {
			return nil, fmt.Errorf("unknown class %q (registered: %s)", ds.Class, strings.Join(fd.DefaultRegistry().Classes(), ", "))
		}
	}
	return specs, nil
}

// ProtoNames documents the protocol grammar for flag help strings.
const ProtoNames = "consensus, consensus/majority, consensus/registers, consensus/multi[-majority], qc, qc/from-nbac, nbac, twopc, registers, register/majority, extract/sigma[-majority]"

// BuildProtocol maps a protocol name onto its scenario descriptor. rounds
// parameterises the multi-instance workloads, coordinator the 2PC baseline
// (validated against n).
func BuildProtocol(name string, n, rounds, coordinator int) (scenario.Protocol, error) {
	switch name {
	case "consensus", "consensus/omega-sigma":
		return scenario.Consensus{}, nil
	case "consensus/majority":
		return scenario.Consensus{Majority: true}, nil
	case "consensus/registers":
		return scenario.Consensus{Registers: true}, nil
	case "consensus/multi", "multiconsensus":
		return scenario.MultiConsensus{Rounds: rounds}, nil
	case "consensus/multi-majority":
		return scenario.MultiConsensus{Rounds: rounds, Majority: true}, nil
	case "qc", "qc/psi":
		return scenario.QC{}, nil
	case "qc/from-nbac":
		return scenario.NBACQC{}, nil
	case "nbac", "nbac/psi-fs":
		return scenario.NBAC{}, nil
	case "twopc", "nbac/twopc":
		if coordinator < 0 || coordinator >= n {
			return nil, fmt.Errorf("twopc coordinator %d out of range 0..%d", coordinator, n-1)
		}
		return scenario.TwoPC{Coordinator: model.ProcessID(coordinator)}, nil
	case "registers", "register/sigma":
		return scenario.Registers{}, nil
	case "register/majority":
		return scenario.Registers{Majority: true}, nil
	case "extract/sigma":
		return scenario.SigmaExtraction{}, nil
	case "extract/sigma-majority":
		return scenario.SigmaExtraction{Majority: true}, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}
