package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"weakestfd/internal/scenario"
)

// JournalFlags is the shared journal-dump flag of the failure-retaining CLIs
// (cmd/sweep, cmd/explore, cmd/campaign): -journals <dir> makes every
// retained failure dump a full trace journal next to the report, replayable
// with cmd/replay. Register it on the flag set, then call Dump once per
// retained failing config.
type JournalFlags struct {
	Dir string
}

// Register installs the flag.
func (jf *JournalFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&jf.Dir, "journals", "", "directory to dump full trace journals of retained failures into (replay them with cmd/replay)")
}

// Enabled reports whether journal dumping was requested.
func (jf *JournalFlags) Enabled() bool { return jf.Dir != "" }

// Dump re-executes cfg with full-stream journaling and writes the journal to
// <dir>/<name>.journal (atomically), returning the path. Step-mode runs are
// deterministic and capture is observe-only, so the re-run reproduces the
// retained failure's exact schedule rather than perturbing it; the price is
// one extra run per retained failure, paid only when -journals is set. The
// journal is written even if the re-run's verdict changed (it then still
// documents the schedule the config produces), but a run with no trace to
// journal — free-running, or tainted by its wall-clock timeout — is an
// error naming the reason.
func (jf *JournalFlags) Dump(ctx context.Context, name string, cfg scenario.Config, proto scenario.Protocol) (string, error) {
	if err := os.MkdirAll(jf.Dir, 0o755); err != nil {
		return "", fmt.Errorf("journals: %w", err)
	}
	c := cfg.Clone()
	c.Journal = scenario.JournalAll
	c.Recorder = nil
	res := scenario.FromConfig(c).Run(ctx, proto)
	if res.Journal == nil {
		if reason := res.TraceSummary.TaintReason; reason != "" {
			return "", fmt.Errorf("journals: %s: run produced no journal: %s", name, reason)
		}
		return "", fmt.Errorf("journals: %s: run produced no journal (free-running mode, or no runners launched): %v", name, res.Verdict)
	}
	data, err := res.Journal.Encode()
	if err != nil {
		return "", fmt.Errorf("journals: %s: %w", name, err)
	}
	path := filepath.Join(jf.Dir, name+".journal")
	if err := WriteFileAtomic(path, data); err != nil {
		return "", fmt.Errorf("journals: %s: %w", name, err)
	}
	return path, nil
}
