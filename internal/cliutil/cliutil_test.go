package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"weakestfd/internal/scenario"
)

// TestSplitTopLevel pins the brace-aware splitter both CLIs lean on: commas
// and colons inside {...} parameter blocks never split, top-level ones
// always do, empties survive, unbalanced braces error.
func TestSplitTopLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		sep  byte
		want []string
	}{
		{"a,b,c", ',', []string{"a", "b", "c"}},
		{"perfect{suspect:2,stabilize:9},omega-sigma", ',', []string{"perfect{suspect:2,stabilize:9}", "omega-sigma"}},
		{"eventually-perfect{suspect:3}:stabilize:200", ':', []string{"eventually-perfect{suspect:3}", "stabilize", "200"}},
		{"", ',', []string{""}},
		{"a,,b", ',', []string{"a", "", "b"}},
		{"{a,b}", ',', []string{"{a,b}"}},
	} {
		got, err := SplitTopLevel(tc.in, tc.sep)
		if err != nil {
			t.Fatalf("SplitTopLevel(%q, %q): %v", tc.in, tc.sep, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("SplitTopLevel(%q, %q) = %q, want %q", tc.in, tc.sep, got, tc.want)
		}
	}
	for _, bad := range []string{"a{b,c", "a}b", "x{y}}"} {
		if _, err := SplitTopLevel(bad, ','); err == nil {
			t.Errorf("SplitTopLevel(%q) accepted unbalanced braces", bad)
		}
	}
}

func TestParseSeedsFormsAndSpan(t *testing.T) {
	seeds, span, err := ParseSeeds("1,2,7-9")
	if err != nil || span.N != 0 || !reflect.DeepEqual(seeds, []int64{1, 2, 7, 8, 9}) {
		t.Fatalf("mixed list: %v %+v %v", seeds, span, err)
	}
	seeds, span, err = ParseSeeds("5-1000004")
	if err != nil || seeds != nil || span != (scenario.SeedSpan{From: 5, N: 1000000}) {
		t.Fatalf("pure range should become a span: %v %+v %v", seeds, span, err)
	}
	if _, span, err := ParseSeeds("-9--7"); err != nil || span != (scenario.SeedSpan{From: -9, N: 3}) {
		t.Fatalf("negative range: %+v %v", span, err)
	}
	seeds, _, err = ParseSeeds("-9--7,4")
	if err != nil || !reflect.DeepEqual(seeds, []int64{-9, -8, -7, 4}) {
		t.Fatalf("negative range in list: %v %v", seeds, err)
	}
	if _, _, err = ParseSeeds("3-1"); err == nil {
		t.Fatalf("descending range accepted")
	}
}

func TestParseDelaysAndCrashes(t *testing.T) {
	delays, err := ParseDelays("0:200us,1ms:50ms")
	if err != nil || len(delays) != 2 || delays[1].Max != 50*time.Millisecond {
		t.Fatalf("delays: %v %v", delays, err)
	}
	crashes, err := ParseCrashes("-;2@300us;0@0s,1@2ms", 3)
	if err != nil || len(crashes) != 3 || crashes[0] != nil || len(crashes[2]) != 2 {
		t.Fatalf("crashes: %v %v", crashes, err)
	}
	if _, err = ParseCrashes("5@1ms", 3); err == nil {
		t.Fatalf("out-of-range crash process accepted")
	}
}

func TestParseDetectorsValidatesRegistry(t *testing.T) {
	specs, err := ParseDetectors("omega-sigma,heartbeat{interval:500},eventually-strong{stabilize:50}")
	if err != nil || len(specs) != 3 {
		t.Fatalf("detector list: %v %v", specs, err)
	}
	if _, err = ParseDetectors("no-such-class"); err == nil {
		t.Fatalf("unknown detector class accepted")
	}
}

func TestParseShard(t *testing.T) {
	sh, err := ParseShard("3/8")
	if err != nil || sh != (scenario.Shard{Index: 3, Count: 8}) {
		t.Fatalf("shard: %+v %v", sh, err)
	}
	for _, bad := range []string{"0/4", "5/4", "x/2", "3"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("shard %q accepted", bad)
		}
	}
}

func TestBuildProtocolNames(t *testing.T) {
	for _, name := range []string{"consensus", "consensus/multi", "qc", "nbac", "twopc", "registers", "extract/sigma"} {
		if _, err := BuildProtocol(name, 5, 4, 0); err != nil {
			t.Errorf("BuildProtocol(%s): %v", name, err)
		}
	}
	if _, err := BuildProtocol("twopc", 3, 1, 7); err == nil {
		t.Errorf("out-of-range coordinator accepted")
	}
	if _, err := BuildProtocol("nope", 3, 1, 0); err == nil {
		t.Errorf("unknown protocol accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var pf ProfileFlags
	pf.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := pf.Start(); err != nil {
		t.Fatal(err)
	}
	pf.Stop()
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}

	// Disabled flags are a no-op on both sides.
	var off ProfileFlags
	if err := off.Start(); err != nil {
		t.Fatalf("disabled Start: %v", err)
	}
	off.Stop()
}
