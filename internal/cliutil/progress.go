package cliutil

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Progress is the shared machine-readable progress protocol of the long-running
// CLIs: cmd/sweep, cmd/explore and cmd/campaign all emit the same JSONL shape
// on stderr when -progress is set, one object per line per tick, so a driver
// script watches any of them with the same three lines of parsing. stdout
// stays reserved for the report artifact.

// ProgressLine is one progress tick. Tool names the emitting command; Done
// and Total count the tool's unit of work (runs for sweep/explore, campaign
// units for campaign; Total is 0 when unknown). Passed/Failed/Novel are
// tool-specific counters, omitted when not meaningful. ElapsedS and PerSec
// are filled by the emitter from its own clock.
type ProgressLine struct {
	Tool   string `json:"tool"`
	Done   int64  `json:"done"`
	Total  int64  `json:"total,omitempty"`
	Passed int64  `json:"passed,omitempty"`
	Failed int64  `json:"failed,omitempty"`
	Novel  int64  `json:"novel,omitempty"`
	// ElapsedS is seconds since the emitter started; PerSec is Done/ElapsedS.
	ElapsedS float64 `json:"elapsed_s"`
	PerSec   float64 `json:"per_sec,omitempty"`
}

// StartProgress emits one JSON line to w every interval, built from snap()
// (called on the emitter goroutine; the snapshot must read its counters
// atomically). It returns a stop function that halts the ticker, emits one
// final line — so a consumer always sees the terminal counts — and waits for
// the goroutine to exit. A non-positive interval is a no-op with a no-op stop.
func StartProgress(w io.Writer, interval time.Duration, snap func() ProgressLine) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	start := time.Now()
	emit := func() {
		line := snap()
		line.ElapsedS = time.Since(start).Seconds()
		if line.ElapsedS > 0 {
			line.PerSec = float64(line.Done) / line.ElapsedS
		}
		data, err := json.Marshal(line)
		if err != nil {
			return // a ProgressLine always marshals; keep the tick silent if not
		}
		fmt.Fprintf(w, "%s\n", data)
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				emit()
			case <-done:
				emit()
				return
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}
