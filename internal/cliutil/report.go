package cliutil

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"weakestfd/internal/explore"
	"weakestfd/internal/model"
	"weakestfd/internal/probe"
	"weakestfd/internal/scenario"
)

// Shared report I/O: cmd/sweep, cmd/explore and the campaign layer all emit
// and ingest the same BENCH_net.json-styled JSON artifacts. The structs live
// here, exactly once, so a report written by any driver is readable by every
// other — campaign unit reports are these very shapes with the campaign
// provenance fields filled in and the wall-clock fields left zero.

// ReportSchemaVersion is the version stamped into every report this build
// writes. Loaders reject reports stamped with a *newer* version — the fields
// they would silently drop or misread are exactly the ones a newer writer
// added — and accept older ones (absent fields keep zero values).
const ReportSchemaVersion = 1

// CheckReportVersion rejects a schema version from the future.
func CheckReportVersion(kind string, v int) error {
	if v > ReportSchemaVersion {
		return fmt.Errorf("%s: schema_version %d is newer than this build understands (%d); rebuild or use a newer binary", kind, v, ReportSchemaVersion)
	}
	return nil
}

// SweepReport is the JSON artifact of one grid sweep — cmd/sweep's output
// and the campaign sweep-unit report. GeneratedBy, GoVersion, ElapsedMS and
// RunsPerSec are wall-clock provenance, excluded from deterministic
// comparisons and left empty in campaign unit reports.
type SweepReport struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedBy   string `json:"generated_by,omitempty"`
	GoVersion     string `json:"go_version,omitempty"`
	// Campaign and Unit identify a campaign unit report; empty/absent for a
	// standalone cmd/sweep invocation.
	Campaign string `json:"campaign,omitempty"`
	Unit     *int   `json:"unit,omitempty"`
	// GridFingerprint is scenario.Grid.Fingerprint over the base config:
	// the identity campaign merge requires to agree across inputs.
	GridFingerprint string           `json:"grid_fingerprint,omitempty"`
	Proto           string           `json:"proto"`
	N               int              `json:"n"`
	GridSize        int              `json:"grid_size"`
	Shard           string           `json:"shard,omitempty"`
	IndexLo         int              `json:"index_lo"`
	IndexHi         int              `json:"index_hi"`
	Runs            int              `json:"runs"`
	Passed          int              `json:"passed"`
	Faulted         int              `json:"faulted"`
	Cancelled       int              `json:"cancelled"`
	ElapsedMS       float64          `json:"elapsed_ms,omitempty"`
	RunsPerSec      float64          `json:"runs_per_sec,omitempty"`
	Detectors       []DetectorReport `json:"detectors,omitempty"`
	// Probes is the sweep-wide probe aggregate (-probes): mergeable
	// histograms of per-run message cost, decision latency and detection
	// latency, byte-stable per (grid, shard) and summed across shards by
	// campaign merge.
	Probes    *probe.Agg       `json:"probes,omitempty"`
	Failures  []FailureReport  `json:"failures,omitempty"`
	Minimized *MinimizedReport `json:"minimized,omitempty"`
}

// DetectorReport is one detector spec's share of a sweep — the per-class
// pass/fail column of the cross-detector comparison the -detectors axis runs.
type DetectorReport struct {
	Spec      string `json:"spec"`
	Runs      int    `json:"runs"`
	Passed    int    `json:"passed"`
	Faulted   int    `json:"faulted"`
	Cancelled int    `json:"cancelled"`
	// Probes is the spec's probe aggregate (-probes): the per-class
	// detection-latency vs message-cost comparison column.
	Probes *probe.Agg `json:"probes,omitempty"`
}

// FailureReport pins one failing grid point: its global row-major index (the
// stable coordinate for re-running it on any shard layout), the violations,
// the outcome fingerprint and the exact Config to reproduce it in isolation.
type FailureReport struct {
	Index       int             `json:"index"`
	Violations  []string        `json:"violations"`
	Fingerprint string          `json:"fingerprint"`
	Config      scenario.Config `json:"config"`
}

// MinimizedReport is the delta-debugged reproducer of the first retained
// failure.
type MinimizedReport struct {
	FromIndex   int             `json:"from_index"`
	Candidates  int             `json:"candidates"`
	Violations  []string        `json:"violations"`
	Fingerprint string          `json:"fingerprint"`
	Config      scenario.Config `json:"config"`
}

// ExploreReport is the JSON artifact of one exploration — cmd/explore's
// output and the campaign explore-unit report. It carries the full corpus
// state (corpus + behaviours + failure_sigs), so any explore report doubles
// as a loadable seed corpus.
type ExploreReport struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedBy   string `json:"generated_by,omitempty"`
	GoVersion     string `json:"go_version,omitempty"`
	Campaign      string `json:"campaign,omitempty"`
	Unit          *int   `json:"unit,omitempty"`
	// SpaceFingerprint is explore.SpaceFingerprint of the exploration's
	// options: everything that shapes the search except the seed, so
	// differently-seeded units of one campaign share it.
	SpaceFingerprint string  `json:"space_fingerprint,omitempty"`
	Proto            string  `json:"proto"`
	N                int     `json:"n"`
	Seed             int64   `json:"seed"`
	Budget           int     `json:"budget"`
	Runs             int     `json:"runs"`
	Novel            int     `json:"novel"`
	Duplicates       int     `json:"duplicates"`
	Cancelled        int     `json:"cancelled,omitempty"`
	FirstFail        int     `json:"first_failure_run,omitempty"`
	ElapsedMS        float64 `json:"elapsed_ms,omitempty"`
	RunsPerSec       float64 `json:"explore_runs_per_sec,omitempty"`

	Corpus             []explore.Entry            `json:"corpus,omitempty"`
	Behaviours         []string                   `json:"behaviours,omitempty"`
	FailureSigs        []string                   `json:"failure_sigs,omitempty"`
	Mutators           []*explore.MutatorStat     `json:"mutators,omitempty"`
	Failures           []explore.Failure          `json:"failures,omitempty"`
	Minimized          []explore.MinimizedFailure `json:"minimized,omitempty"`
	MinimizeCandidates int                        `json:"minimize_candidates,omitempty"`
	Frontier           []explore.Boundary         `json:"frontier,omitempty"`
	FrontierRuns       int                        `json:"frontier_runs,omitempty"`
}

// FromExplore fills the deterministic fields from an exploration report.
func (r *ExploreReport) FromExplore(rep *explore.Report) {
	r.SchemaVersion = ReportSchemaVersion
	r.Proto = rep.Proto
	r.N = rep.N
	r.Seed = rep.Seed
	r.Budget = rep.Budget
	r.Runs = rep.Runs
	r.Novel = rep.Novel
	r.Duplicates = rep.Duplicates
	r.Cancelled = rep.Cancelled
	r.FirstFail = rep.FirstFailureRun
	r.Corpus = rep.Corpus
	r.Behaviours = rep.Behaviours
	r.FailureSigs = rep.FailureSigs
	r.Mutators = rep.Mutators
	r.Failures = rep.Failures
	r.Minimized = rep.Minimized
	r.MinimizeCandidates = rep.MinimizeCandidates
}

// CorpusState extracts the report's corpus state — the seedable form.
func (r *ExploreReport) CorpusState() *explore.CorpusState {
	return &explore.CorpusState{
		SchemaVersion: explore.CorpusVersion,
		Entries:       r.Corpus,
		Behaviours:    r.Behaviours,
		FailureSigs:   r.FailureSigs,
	}
}

// WriteJSON marshals v as indented JSON with a trailing newline — the
// committed-snapshot style of every report — to path, or to stdout when
// path is empty. File writes go through a same-directory temp file and
// rename, so a crash mid-write never leaves a half-written artifact where a
// resume would trust one.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	data = append(data, '\n')
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return WriteFileAtomic(path, data)
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename: readers see either the old contents or the new, never a prefix.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Chmod(name, 0o644); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// reportSniff distinguishes the two report kinds and surfaces the version.
type reportSniff struct {
	SchemaVersion int  `json:"schema_version"`
	GridSize      *int `json:"grid_size"`
	Budget        *int `json:"budget"`
}

// ReadAnyReport parses data as either report kind (exactly one of the
// returns is non-nil on success), rejecting future schema versions. kind
// names the source in errors.
func ReadAnyReport(kind string, data []byte) (*SweepReport, *ExploreReport, error) {
	var sniff reportSniff
	if err := json.Unmarshal(data, &sniff); err != nil {
		return nil, nil, fmt.Errorf("%s: parse: %w", kind, err)
	}
	if err := CheckReportVersion(kind, sniff.SchemaVersion); err != nil {
		return nil, nil, err
	}
	switch {
	case sniff.GridSize != nil:
		var r SweepReport
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, nil, fmt.Errorf("%s: parse sweep report: %w", kind, err)
		}
		// The probe blocks version independently of the report envelope —
		// gate them the same way, so a report written by a newer probe
		// schema is refused rather than silently misaggregated.
		if err := r.Probes.CheckVersion(kind); err != nil {
			return nil, nil, err
		}
		for i := range r.Detectors {
			if err := r.Detectors[i].Probes.CheckVersion(kind); err != nil {
				return nil, nil, err
			}
		}
		return &r, nil, nil
	case sniff.Budget != nil:
		var r ExploreReport
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, nil, fmt.Errorf("%s: parse explore report: %w", kind, err)
		}
		return nil, &r, nil
	default:
		return nil, nil, fmt.Errorf("%s: neither a sweep report (no grid_size) nor an explore report (no budget)", kind)
	}
}

// GridSpec is the complete description of one grid sweep: every field maps
// 1:1 onto a cmd/sweep flag and onto a key of its -grid JSON file, and a
// campaign manifest embeds one verbatim as the sweep work description.
// SchemaVersion is optional in hand-written files (0 reads as "current").
type GridSpec struct {
	SchemaVersion int     `json:"schema_version,omitempty"`
	Proto         string  `json:"proto"`
	N             int     `json:"n"`
	Rounds        int     `json:"rounds"`
	Coordinator   int     `json:"coordinator"`
	Seeds         string  `json:"seeds"`
	Detectors     string  `json:"detectors"`
	Delays        string  `json:"delays"`
	Crashes       string  `json:"crashes"`
	Drop          float64 `json:"drop"`
	Suspicion     int64   `json:"suspicion"`
	FSDelay       int64   `json:"fs_delay"`
	PsiSwitch     int64   `json:"psi_switch"`
	SafetyOnly    bool    `json:"safety_only"`
	Timeout       string  `json:"timeout"`
	Shard         string  `json:"shard"`
	Workers       int     `json:"workers"`
	Keep          int     `json:"keep"`
	Probes        bool    `json:"probes,omitempty"`
}

// BuildGrid turns the spec into the Sweep inputs: the base scenario, the
// grid and the protocol descriptor. The single definition both cmd/sweep
// and campaign sweep units build through, so a grid fingerprint computed by
// one is valid for the other.
func BuildGrid(sp GridSpec) (*scenario.Scenario, scenario.Grid, scenario.Protocol, error) {
	var grid scenario.Grid
	if err := CheckReportVersion("grid spec", sp.SchemaVersion); err != nil {
		return nil, grid, nil, err
	}
	if sp.N <= 0 {
		return nil, grid, nil, fmt.Errorf("invalid process count %d", sp.N)
	}
	p, err := BuildProtocol(sp.Proto, sp.N, sp.Rounds, sp.Coordinator)
	if err != nil {
		return nil, grid, nil, err
	}
	timeout, err := time.ParseDuration(sp.Timeout)
	if err != nil {
		return nil, grid, nil, fmt.Errorf("timeout: %v", err)
	}
	opts := []scenario.Option{
		scenario.WithTimeout(timeout),
		scenario.WithDropRate(sp.Drop),
		scenario.WithSuspicionDelay(model.Time(sp.Suspicion)),
		scenario.WithFSDetectionDelay(model.Time(sp.FSDelay)),
	}
	if sp.PsiSwitch != 0 {
		opts = append(opts, scenario.WithPsiSwitch(model.Time(sp.PsiSwitch), 0))
	}
	if sp.SafetyOnly {
		opts = append(opts, scenario.WithSafetyOnly())
	}
	base := scenario.New(sp.N, opts...)

	if grid.Seeds, grid.SeedSpan, err = ParseSeeds(sp.Seeds); err != nil {
		return nil, grid, nil, fmt.Errorf("seeds: %v", err)
	}
	if strings.TrimSpace(sp.Detectors) != "" {
		// The axis replaces the base spec wholesale per grid point, exactly
		// like -delays replaces the base delay range — so base detector
		// quality flags would be silently dropped. Refuse the combination:
		// quality parameters of an axis spec belong in its grammar.
		if sp.Suspicion != 0 || sp.FSDelay != 0 || sp.PsiSwitch != 0 {
			return nil, grid, nil, fmt.Errorf("detectors: -suspicion/-fs-delay/-psi-switch cannot combine with -detectors; put quality parameters in the spec grammar, e.g. 'omega-sigma{suspect:%d}'", sp.Suspicion)
		}
		if grid.Detectors, err = ParseDetectors(sp.Detectors); err != nil {
			return nil, grid, nil, fmt.Errorf("detectors: %v", err)
		}
	}
	if grid.Delays, err = ParseDelays(sp.Delays); err != nil {
		return nil, grid, nil, fmt.Errorf("delays: %v", err)
	}
	if grid.Crashes, err = ParseCrashes(sp.Crashes, sp.N); err != nil {
		return nil, grid, nil, fmt.Errorf("crashes: %v", err)
	}
	if grid.Shard, err = ParseShard(sp.Shard); err != nil {
		return nil, grid, nil, fmt.Errorf("shard: %v", err)
	}
	grid.Workers = sp.Workers
	grid.Probes = sp.Probes
	// The CLI has no compatibility baggage: 0 means "retain none", unlike
	// the library's historical 0 → 8 default.
	grid.KeepFailures = sp.Keep
	if sp.Keep <= 0 {
		grid.KeepFailures = scenario.KeepAllCounts
	}
	return base, grid, p, nil
}
