// Package netrun bridges the two execution substrates: it runs a step-model
// algorithm (a sim.Automaton) on the goroutine runtime (internal/net), so the
// same algorithm object can be both simulated — as the extraction
// construction of Figure 3 requires — and genuinely executed by concurrent
// processes exchanging real messages.
package netrun

import (
	"context"
	"fmt"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/sim"
)

// Detector supplies the failure-detector value for each step of the local
// process; internal/fd's bound modules can be adapted with a closure.
type Detector func() any

// Runner executes one process's side of a step-model algorithm over the
// network.
type Runner struct {
	Endpoint  *net.Endpoint
	Instance  string
	Automaton sim.Automaton
	Detector  Detector
	Input     any
	// Poll is the virtual-time pause between steps when no message is pending
	// (a λ step is taken on each poll). Default 500µs. Under the virtual-time
	// scheduler the pause costs no wall-clock time: the λ ticker rides the
	// network's event queue, so the loop blocks on the queue and wakes the
	// moment no earlier event exists, instead of sleep-polling.
	Poll time.Duration
}

// Run executes steps until the automaton produces an output, the context is
// cancelled, or the process crashes. Every process of the system must run a
// Runner with the same Instance for messages to flow.
func (r *Runner) Run(ctx context.Context) (any, error) {
	poll := r.Poll
	if poll == 0 {
		poll = 500 * time.Microsecond
	}
	instance := "netrun." + r.Instance
	ep := r.Endpoint
	// Step mode: adopt the caller so the message/λ-step loop below runs as a
	// scheduler task.
	ctx, release := net.AdoptTask(ctx, ep, "netrun.run")
	defer release()
	task := net.TaskFrom(ctx)
	stepCtx := sim.StepContext{Self: ep.ID(), N: ep.N()}
	state := r.Automaton.InitialState(ep.ID(), ep.N(), r.Input)

	ticker := ep.NewTicker(poll)
	ticker.Bind(task)
	defer ticker.Stop()

	dispatch := func(msg *sim.Message) {
		var fdVal any
		if r.Detector != nil {
			fdVal = r.Detector()
		}
		newState, out := r.Automaton.Step(stepCtx, state, msg, fdVal)
		state = newState
		for _, m := range out {
			ep.Send(m.To, instance, m.Type, m)
		}
	}

	if task != nil {
		in := ep.Instance(instance)
		in.Watch(task)
		defer in.Watch(nil)
		for {
			if v, ok := r.Automaton.Output(state); ok {
				return v, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("netrun %s at %v: %w", r.Instance, ep.ID(), err)
			}
			if err := ep.Context().Err(); err != nil {
				return nil, fmt.Errorf("netrun %s at %v: %w", r.Instance, ep.ID(), err)
			}
			// Pending messages take priority over λ steps: a λ step models
			// "no message available".
			if msg, ok := in.TryRecv(); ok {
				m := msg.Payload.(sim.Message)
				dispatch(&m)
				continue
			}
			if ticker.TryFire() {
				// λ step: lets detector-driven transitions (leadership,
				// quorum re-evaluation) make progress without message
				// traffic, and advances the logical clock like any step.
				ep.Clock().Tick()
				dispatch(nil)
				continue
			}
			task.Await(ctx)
		}
	}

	inbox := ep.Subscribe(instance)
	for {
		if v, ok := r.Automaton.Output(state); ok {
			return v, nil
		}
		// Pending messages take priority over λ steps: a λ step models "no
		// message available", and under virtual time holding the tick back
		// holds the clock back until this process has processed its traffic.
		// Cancellation stays in this select too — with it only in the
		// blocking select below, sustained traffic would starve the context
		// check and a livelocked automaton would ignore its deadline.
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("netrun %s at %v: %w", r.Instance, ep.ID(), ctx.Err())
		case <-ep.Context().Done():
			return nil, fmt.Errorf("netrun %s at %v: %w", r.Instance, ep.ID(), ep.Context().Err())
		case msg := <-inbox:
			m := msg.Payload.(sim.Message)
			dispatch(&m)
			continue
		default:
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("netrun %s at %v: %w", r.Instance, ep.ID(), ctx.Err())
		case <-ep.Context().Done():
			return nil, fmt.Errorf("netrun %s at %v: %w", r.Instance, ep.ID(), ep.Context().Err())
		case msg := <-inbox:
			m := msg.Payload.(sim.Message)
			dispatch(&m)
		case <-ticker.C:
			// λ step: lets detector-driven transitions (leadership, quorum
			// re-evaluation) make progress without message traffic, and
			// advances the logical clock like any other step.
			ep.Clock().Tick()
			dispatch(nil)
		}
	}
}

// RunWith executes a copy of the runner with input as its per-run input — the
// scenario harness's participant shape (Run keeps the wired-input form used
// by RunAll). The copy leaves the receiver reusable across runs.
func (r *Runner) RunWith(ctx context.Context, input any) (any, error) {
	rr := *r
	rr.Input = input
	return rr.Run(ctx)
}

// RunAll runs the automaton at every process of the network concurrently and
// returns the outputs of the processes that produced one (crashed processes
// are omitted). inputs[i] is process i's input.
func RunAll(ctx context.Context, nw *net.Network, instance string, a sim.Automaton, detectors []Detector, inputs []any, poll time.Duration) (map[model.ProcessID]any, error) {
	type result struct {
		p   model.ProcessID
		out any
		err error
	}
	ch := make(chan result, nw.N())
	for i := 0; i < nw.N(); i++ {
		p := model.ProcessID(i)
		var det Detector
		if i < len(detectors) {
			det = detectors[i]
		}
		var input any
		if i < len(inputs) {
			input = inputs[i]
		}
		r := &Runner{Endpoint: nw.Endpoint(p), Instance: instance, Automaton: a, Detector: det, Input: input, Poll: poll}
		go func() {
			out, err := r.Run(ctx)
			ch <- result{p: p, out: out, err: err}
		}()
	}
	outputs := make(map[model.ProcessID]any)
	var firstErr error
	for i := 0; i < nw.N(); i++ {
		res := <-ch
		if res.err != nil {
			if !nw.Crashed(res.p) && firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		outputs[res.p] = res.out
	}
	return outputs, firstErr
}
