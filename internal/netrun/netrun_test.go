package netrun

import (
	"context"
	"testing"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/sim"
)

func omegaSigmaDetectors(nw *net.Network) []Detector {
	out := make([]Detector, nw.N())
	omega := &fd.OracleOmega{Pattern: nw.Pattern(), Clock: nw.Clock()}
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	for i := 0; i < nw.N(); i++ {
		p := model.ProcessID(i)
		out[i] = func() any {
			return model.OmegaSigmaValue{Leader: omega.At(p), Quorum: sigma.At(p)}
		}
	}
	return out
}

// The step-model consensus automaton, executed over the real goroutine
// runtime, must reach agreement on a proposed value.
func TestRunAllConsensusAutomaton(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(1))
	defer nw.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	outputs, err := RunAll(ctx, nw, "cons", sim.ConsensusAutomaton{}, omegaSigmaDetectors(nw), []any{10, 20, 30}, 0)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(outputs) != n {
		t.Fatalf("only %d outputs", len(outputs))
	}
	first := outputs[0]
	for p, v := range outputs {
		if v != first {
			t.Fatalf("disagreement: %v decided %v, p0 decided %v", p, v, first)
		}
	}
	if first != 10 && first != 20 && first != 30 {
		t.Fatalf("decided value %v was never proposed", first)
	}
}

// A crash mid-run must not prevent the surviving processes from deciding, nor
// break agreement.
func TestRunAllConsensusAutomatonWithCrash(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(2))
	defer nw.Close()

	go func() {
		time.Sleep(2 * time.Millisecond)
		nw.Crash(0) // initial leader
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	outputs, err := RunAll(ctx, nw, "crash", sim.ConsensusAutomaton{}, omegaSigmaDetectors(nw), []any{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(outputs) < n-1 {
		t.Fatalf("only %d outputs", len(outputs))
	}
	var prev any
	firstSeen := false
	for _, v := range outputs {
		if firstSeen && v != prev {
			t.Fatalf("disagreement among outputs: %v", outputs)
		}
		prev, firstSeen = v, true
	}
}

// The QC automaton over the runtime, driven by the Ψ oracle in its FS regime,
// must return Quit at the correct processes.
func TestRunAllQCAutomatonQuits(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(3))
	defer nw.Close()
	nw.Crash(2)

	psi := &fd.OraclePsi{Pattern: nw.Pattern(), Clock: nw.Clock(), SwitchAfter: 0, Policy: fd.PreferFSOnFailure}
	detectors := make([]Detector, n)
	for i := 0; i < n; i++ {
		p := model.ProcessID(i)
		detectors[i] = func() any { return psi.At(p) }
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	outputs, err := RunAll(ctx, nw, "qc", sim.QCAutomaton{}, detectors, []any{0, 1, 0}, 0)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for p, v := range outputs {
		if !v.(sim.QCOutcome).Quit {
			t.Fatalf("%v decided %v, want Quit", p, v)
		}
	}
	if len(outputs) != 2 {
		t.Fatalf("expected 2 outputs, got %d", len(outputs))
	}
}

func TestRunnerStopsOnContextCancel(t *testing.T) {
	nw := net.NewNetwork(2, net.WithSeed(4))
	defer nw.Close()
	// Detector that never elects this process and never completes quorums, so
	// the automaton never decides.
	det := func() any { return model.OmegaSigmaValue{Leader: 1, Quorum: model.NewProcessSet(0, 1)} }
	r := &Runner{Endpoint: nw.Endpoint(0), Instance: "stuck", Automaton: sim.ConsensusAutomaton{}, Detector: det, Input: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := r.Run(ctx); err == nil {
		t.Fatalf("Run returned without error despite cancelled context")
	}
}
