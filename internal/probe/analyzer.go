package probe

import (
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

// Analyzer folds the step scheduler's record stream into StreamProbes,
// implementing net.TraceRecorder. It rides the token-serialized recorder
// tee beside the trace digest (and any journal capture), so it needs no
// locking, and Record does bounded arithmetic plus amortized slice growth —
// nothing that blocks the scheduler's critical path.
//
// The fold is pure: the same record sequence always produces the same
// StreamProbes, which is how replay -stats recomputes a run's probes
// offline from its journal and asserts byte equality with the live capture.
type Analyzer struct {
	s StreamProbes

	lastAt    int64 // At of the last delivered event
	haveLast  bool
	lastCrash int64 // At of the latest crash event
	haveCrash bool

	perProc []ProcessProbes // dense by process id; compacted by Finish
}

// NewAnalyzer returns an analyzer expecting roughly n processes (the
// per-process vector is pre-sized; it still grows if ids exceed it).
func NewAnalyzer(n int) *Analyzer {
	if n < 0 {
		n = 0
	}
	return &Analyzer{perProc: make([]ProcessProbes, n)}
}

// proc returns the per-process slot for id, growing the vector on demand.
func (a *Analyzer) proc(id uint64) *ProcessProbes {
	for uint64(len(a.perProc)) <= id {
		a.perProc = append(a.perProc, ProcessProbes{})
	}
	return &a.perProc[id]
}

// Record implements net.TraceRecorder.
func (a *Analyzer) Record(r net.TraceRecord) {
	a.s.Records++
	switch r.Op {
	case net.TraceOpEvent:
		a.s.Events++
		if a.haveLast {
			a.s.QuiescenceGap.Observe(r.At - a.lastAt)
		}
		a.lastAt, a.haveLast = r.At, true
		switch r.Kind {
		case net.TraceKindMessage:
			a.s.Messages++
			a.s.MessageDelay.Observe(r.At - r.SentAt)
			a.proc(r.To).Deliveries++
			a.proc(r.From).Sends++
		case net.TraceKindTimer:
			a.s.Timers++
		case net.TraceKindCrash:
			a.s.Crashes++
			a.lastCrash, a.haveCrash = r.At, true
			a.s.CrashedProcs = append(a.s.CrashedProcs, r.To)
		}
	case net.TraceOpGrant:
		a.s.Grants++
		a.proc(r.Proc).Grants++
	case net.TraceOpExit:
		a.s.Exits++
		if r.Group {
			// A group task's clean exit is a protocol runner's decision
			// point. Its virtual time is the At of the last delivered event:
			// the exiting task holds the token, so the clock has not moved
			// since that delivery.
			a.s.Decisions++
			at := int64(0)
			if a.haveLast {
				at = a.lastAt
			}
			a.s.DecisionLatency.Observe(at)
			a.s.DecisionDepth.Observe(a.s.Events)
			if a.haveCrash {
				a.s.CrashToDecision.Observe(at - a.lastCrash)
			}
		}
	}
}

// Finish returns the fold, compacting the per-process vector (active
// processes only, in id order). The analyzer is spent afterwards.
func (a *Analyzer) Finish() StreamProbes {
	for id := range a.perProc {
		p := a.perProc[id]
		if p.Grants == 0 && p.Deliveries == 0 && p.Sends == 0 {
			continue
		}
		p.Proc = uint64(id)
		a.s.PerProcess = append(a.s.PerProcess, p)
	}
	a.perProc = nil
	return a.s
}

// DetectionFrom joins a run's crash events against its retained suspect
// history: for each process in crashed (the stream's CrashedProcs — crashes
// the trace actually delivered, which keeps the join on the deterministic
// side of the trace boundary even if the live pattern gains crashes
// afterwards), the first stable suspicion — the earliest retained sample
// (from any process other than the crashed one; a process never suspects
// itself) containing the crashed process after which no later retained
// sample from another process omits it. Latency is detection time minus
// crash time in logical ticks, clamped at 0 when a persistent false
// suspicion predates the crash.
//
// The join is deterministic on the trace tier: in step mode detector
// queries are token-serialized, so the sample stream — including which
// samples a bounded history ring drops — is a pure function of
// (seed, config). A dropped prefix can only delay or miss a detection,
// never invent one, and does so identically across runs.
func DetectionFrom(pattern *model.FailurePattern, crashed []uint64, samples []model.Sample) *DetectionProbes {
	d := &DetectionProbes{}
	if pattern == nil {
		return d
	}
	for _, c := range crashed {
		q := model.ProcessID(c)
		crashAt := pattern.CrashTime(q)
		if crashAt == model.NeverCrashes {
			continue
		}
		d.Crashes++
		// Walk backwards to the last sample that omits q; the first stable
		// suspicion is the earliest containing sample after it.
		lastOmit := -1
		for i := len(samples) - 1; i >= 0; i-- {
			s := samples[i]
			if s.Process == q {
				continue
			}
			set, isSet := s.Value.(model.ProcessSet)
			if !isSet {
				continue
			}
			if !set.Contains(q) {
				lastOmit = i
				break
			}
		}
		detected := false
		for i := lastOmit + 1; i < len(samples); i++ {
			s := samples[i]
			if s.Process == q {
				continue
			}
			set, isSet := s.Value.(model.ProcessSet)
			if !isSet || !set.Contains(q) {
				continue
			}
			latency := int64(s.Time) - int64(crashAt)
			if latency < 0 {
				latency = 0
			}
			d.Detected++
			d.Latency.Observe(latency)
			detected = true
			break
		}
		if !detected {
			d.Missed++
		}
	}
	return d
}
