package probe

import (
	"encoding/json"
	"testing"

	"weakestfd/internal/model"
)

// TestHistogramBuckets pins the bucketing contract: bucket 0 holds exactly
// the zero value, bucket k > 0 holds [2^(k-1), 2^k), and the dense vector is
// trimmed to the highest occupied bucket.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024} {
		h.Observe(v)
	}
	if h.Count != 9 {
		t.Fatalf("count %d, want 9", h.Count)
	}
	if h.Min != 0 || h.Max != 1024 {
		t.Fatalf("min/max %d/%d, want 0/1024", h.Min, h.Max)
	}
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1}
	for i, c := range h.Buckets {
		if c != want[i] {
			t.Fatalf("bucket %d holds %d, want %d (buckets %v)", i, c, want[i], h.Buckets)
		}
	}
	if len(h.Buckets) != 12 {
		t.Fatalf("buckets not trimmed to highest occupied: len %d, want 12", len(h.Buckets))
	}
	// Quantiles return bucket upper bounds, clamped to the true max.
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d, want 0", q)
	}
	// p50 of 9 samples targets the 4th observation; the cumulative count
	// crosses 4 in bucket 2, whose upper bound is 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3 (upper bound of bucket 2)", q)
	}
	if q := h.Quantile(1); q != 1024 {
		t.Fatalf("p100 = %d, want the clamped max 1024", q)
	}
}

// TestHistogramNegativeClamps: virtual-time arithmetic can produce negative
// deltas only through misuse; the histogram clamps them to zero before any
// bookkeeping rather than corrupting the bucket index.
func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if len(h.Buckets) != 1 || h.Buckets[0] != 1 {
		t.Fatalf("negative observation landed in %v, want bucket 0", h.Buckets)
	}
	if h.Min != 0 || h.Sum != 0 {
		t.Fatalf("min/sum %d/%d, want 0/0 (clamped before bookkeeping)", h.Min, h.Sum)
	}
}

func encodeJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

// TestHistogramMergeCommutes: merge is element-wise addition, so any merge
// order yields byte-identical encodings — the property campaign's
// order-independent fold rests on.
func TestHistogramMergeCommutes(t *testing.T) {
	build := func(vals ...int64) Histogram {
		var h Histogram
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	// Build each operand fresh: a struct copy would alias the Buckets slice
	// and Merge mutates in place.
	ab := build(1, 5, 900)
	ab.Merge(build(0, 2, 64))
	ba := build(0, 2, 64)
	ba.Merge(build(1, 5, 900))
	if got, want := encodeJSON(t, ab), encodeJSON(t, ba); got != want {
		t.Fatalf("merge is order-dependent:\n  a+b: %s\n  b+a: %s", got, want)
	}
	if ab.Count != 6 || ab.Sum != 1+5+900+0+2+64 {
		t.Fatalf("merged counters wrong: %+v", ab)
	}
}

func synthProbes(messages int64, latencies ...int64) *Probes {
	p := &Probes{SchemaVersion: Version}
	p.Stream.Messages = messages
	for _, l := range latencies {
		p.Stream.DecisionLatency.Observe(l)
	}
	p.Detection = &DetectionProbes{Crashes: 1, Detected: 1}
	p.Detection.Latency.Observe(latencies[0])
	return p
}

// TestAggMergeAlgebra pins the merge algebra the campaign layer assumes:
// commutative and associative byte-for-byte, with a schema-version mismatch
// refused rather than silently mixed.
func TestAggMergeAlgebra(t *testing.T) {
	mk := func(ps ...*Probes) *Agg {
		a := NewAgg()
		for _, p := range ps {
			a.Add(p)
		}
		return a
	}
	x := synthProbes(10, 100, 200)
	y := synthProbes(900, 5)
	z := synthProbes(64, 1<<20)

	ab := mk(x, y)
	if err := ab.Merge(mk(z)); err != nil {
		t.Fatalf("merge: %v", err)
	}
	bc := mk(z)
	if err := bc.Merge(mk(x, y)); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got, want := encodeJSON(t, ab), encodeJSON(t, bc); got != want {
		t.Fatalf("agg merge is order-dependent:\n  (x+y)+z: %s\n  z+(x+y): %s", got, want)
	}
	if ab.Runs != 3 {
		t.Fatalf("merged runs %d, want 3", ab.Runs)
	}
	if got, want := encodeJSON(t, ab), encodeJSON(t, mk(x, y, z)); got != want {
		t.Fatalf("merge does not equal the direct fold:\n  merged: %s\n  direct: %s", got, want)
	}

	future := NewAgg()
	future.SchemaVersion = Version + 1
	if err := NewAgg().Merge(future); err == nil {
		t.Fatal("merging mismatched schema versions was accepted")
	}
	if err := future.CheckVersion("test"); err == nil {
		t.Fatal("future schema version passed CheckVersion")
	}
}

// TestProbesEncodeStable: Encode is canonical — equal values encode
// byte-identically, and Equal is exactly encoding equality.
func TestProbesEncodeStable(t *testing.T) {
	a := synthProbes(10, 100, 200)
	b := synthProbes(10, 100, 200)
	ea, err := a.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if string(ea) != string(eb) {
		t.Fatalf("equal probes encode differently:\n  %s\n  %s", ea, eb)
	}
	if !a.Equal(b) {
		t.Fatal("Equal is false for identical probes")
	}
	b.Stream.Messages++
	if a.Equal(b) {
		t.Fatal("Equal is true for differing probes")
	}
}

// TestDetectionFrom pins the suspect-history join on a hand-built history:
// process 2 crashes at tick 50; the first containing sample after the last
// omitting one is the detection point.
func TestDetectionFrom(t *testing.T) {
	pattern := model.NewFailurePattern(4)
	pattern.Crash(2, 50)
	set := func(ids ...model.ProcessID) model.ProcessSet {
		return model.NewProcessSet(ids...)
	}
	samples := []model.Sample{
		{Process: 0, Time: 10, Value: set()},       // before the crash: nothing suspected
		{Process: 1, Time: 60, Value: set()},       // after the crash, not yet detected
		{Process: 0, Time: 70, Value: set(2)},      // first stable suspicion: latency 20
		{Process: 1, Time: 90, Value: set(2)},      // stays suspected
		{Process: 2, Time: 95, Value: set()},       // the crashed process never self-suspects; ignored
		{Process: 3, Time: 99, Value: "not-a-set"}, // foreign sample kinds are skipped
	}
	d := DetectionFrom(pattern, []uint64{2}, samples)
	if d.Crashes != 1 || d.Detected != 1 || d.Missed != 0 {
		t.Fatalf("counters %+v, want 1 crash detected", d)
	}
	if d.Latency.Max != 20 {
		t.Fatalf("latency %d, want 20 ticks (crash 50 -> sample 70)", d.Latency.Max)
	}

	// A crash nothing ever suspects is missed, not silently dropped.
	pattern2 := model.NewFailurePattern(4)
	pattern2.Crash(1, 30)
	d2 := DetectionFrom(pattern2, []uint64{1}, samples)
	if d2.Crashes != 1 || d2.Detected != 0 || d2.Missed != 1 {
		t.Fatalf("undetected crash counted as %+v, want missed", d2)
	}

	// A late unsuspicion re-anchors the join: suspicion must be *stable*.
	flappy := []model.Sample{
		{Process: 0, Time: 60, Value: set(2)}, // suspected...
		{Process: 1, Time: 80, Value: set()},  // ...then cleared: not stable yet
		{Process: 0, Time: 95, Value: set(2)}, // stable from here
	}
	d3 := DetectionFrom(pattern, []uint64{2}, flappy)
	if d3.Detected != 1 || d3.Latency.Max != 45 {
		t.Fatalf("flappy join gave %+v, want detection at tick 95 (latency 45)", d3)
	}
}
