// Package probe is the streaming trace-analytics layer over the step
// scheduler's record stream: a set of allocation-light analyzers that fold
// the same token-serialized net.TraceRecorder stream the journal captures
// into a structured, byte-stable set of run shapes — log-bucketed
// virtual-time histograms (message delay, decision latency, inter-event
// quiescence gaps), per-process grant/delivery/send counts, decision depth,
// crash-to-decision distance, and (joined against recorded suspect
// histories) failure-detection latency.
//
// # Place on the determinism contract
//
// Probes are trace-tier: a pure fold over the record stream, which in step
// mode is a byte-reproducible pure function of (seed, config). Two
// identically-configured runs therefore produce byte-identical Probes
// (Encode), the property the determinism tests pin under -race. Capture is
// observe-only — an Analyzer rides the TraceRecorder tee beside the digest
// and the journal, so a probed run keeps the TraceFingerprint of its
// unprobed twin. Free-running runs have no record stream to fold and refuse
// probes with a reason (scenario.Run fails the run, mirroring the journal
// refusal); tainted runs forfeit them the way they forfeit the fingerprint.
//
// # Histogram bucketing
//
// Every histogram is log2-bucketed: bucket 0 holds the value 0, bucket k>0
// holds [2^(k-1), 2^k). Bucket indices are bits.Len64 of the value — cheap
// enough for the emit path — and the bucket vector is dense and trimmed, so
// the encoding carries no ceiling-dependent padding. Log bucketing is what
// makes the merge algebra work: merging histograms is element-wise addition
// (commutative and associative; idempotence is supplied by campaign's
// exact-once range disjointness), and percentile summaries (Quantile) are
// rendered from the merged buckets, never stored.
package probe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"
)

// Version is the probe schema version stamped into every Probes and Agg
// block. Report loaders refuse future versions — the same policy as
// cliutil reports and journals.
const Version = 1

// maxBuckets bounds a log2 histogram over int64 values: bucket 0 plus one
// bucket per bit position.
const maxBuckets = 65

// Histogram is a mergeable log2-bucketed histogram of non-negative int64
// samples (virtual-time nanoseconds, logical ticks, or counts — the unit is
// the field's, not the histogram's). Negative samples clamp to 0: every
// quantity probed is non-negative by construction, so a negative value is a
// fold bug surfacing, not data.
type Histogram struct {
	// Count is the number of observations; Sum their total.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum,omitempty"`
	// Min and Max are the extreme observations (0/0 when Count == 0).
	Min int64 `json:"min,omitempty"`
	Max int64 `json:"max,omitempty"`
	// Buckets is the dense log2 bucket vector, trimmed of trailing zeros:
	// Buckets[0] counts zeros, Buckets[k] counts values in [2^(k-1), 2^k).
	Buckets []int64 `json:"buckets,omitempty"`
}

// bucketOf maps a sample to its log2 bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe folds one sample in.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	idx := bucketOf(v)
	for len(h.Buckets) <= idx {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[idx]++
}

// Merge folds other into h element-wise. Merging is commutative and
// associative; both sides' bucket vectors may have different lengths.
func (h *Histogram) Merge(other Histogram) {
	if other.Count == 0 {
		return
	}
	if h.Count == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for len(h.Buckets) < len(other.Buckets) {
		h.Buckets = append(h.Buckets, 0)
	}
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
}

// Quantile returns an upper bound for the p-quantile (0 <= p <= 1): the
// largest value of the bucket in which the cumulative count crosses
// p*Count, clamped to Max. A render-time summary — percentiles are computed
// from merged buckets, never stored, so merging stays exact.
func (h *Histogram) Quantile(p float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(p * float64(h.Count))
	if target < 1 {
		target = 1
	}
	if target > h.Count {
		target = h.Count
	}
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			hi := int64(1)<<uint(i) - 1
			if hi > h.Max {
				return h.Max
			}
			return hi
		}
	}
	return h.Max
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// ProcessProbes is one process's share of the record stream: how many step
// grants its tasks received, how many messages it was delivered, how many
// of the delivered messages it had sent.
type ProcessProbes struct {
	Proc       uint64 `json:"proc"`
	Grants     int64  `json:"grants,omitempty"`
	Deliveries int64  `json:"deliveries,omitempty"`
	Sends      int64  `json:"sends,omitempty"`
}

// StreamProbes is the pure fold of one run's record stream: counters,
// shape histograms and the per-process vector. Every field is a function of
// the records alone, so it is recomputable offline from a complete journal
// (replay -stats) and must match the live capture exactly.
type StreamProbes struct {
	// Records counts every record folded; the per-kind counters mirror
	// TraceStats and must agree with the journal meta.
	Records  int64 `json:"records"`
	Events   int64 `json:"events"`
	Messages int64 `json:"messages,omitempty"`
	Timers   int64 `json:"timers,omitempty"`
	Crashes  int64 `json:"crashes,omitempty"`
	Grants   int64 `json:"grants,omitempty"`
	// Exits counts clean task exits; Decisions the group-task subset — the
	// protocol runners' decision points.
	Exits     int64 `json:"exits,omitempty"`
	Decisions int64 `json:"decisions,omitempty"`
	// MessageDelay buckets each delivered message's drawn delay
	// (delivery time minus enqueue time, virtual ns).
	MessageDelay Histogram `json:"message_delay"`
	// QuiescenceGap buckets the virtual-time gaps between consecutive
	// delivered events — the run's idle structure.
	QuiescenceGap Histogram `json:"quiescence_gap"`
	// DecisionLatency buckets, per group-task exit, the virtual time at
	// which the deciding process exited (the At of the last event delivered
	// before its exit record).
	DecisionLatency Histogram `json:"decision_latency"`
	// DecisionDepth buckets, per group-task exit, how many events had been
	// delivered when the process decided.
	DecisionDepth Histogram `json:"decision_depth"`
	// CrashToDecision buckets, per group-task exit after the first crash
	// event, the virtual-time distance from the latest crash to the
	// decision. Empty for crash-free runs.
	CrashToDecision Histogram `json:"crash_to_decision"`
	// PerProcess is the per-process grant/delivery/send vector, ordered by
	// process id; processes with no activity are elided.
	PerProcess []ProcessProbes `json:"per_process,omitempty"`
	// CrashedProcs lists the processes whose crash events the stream
	// delivered, in delivery order — the deterministic crash set the
	// detection join keys on (the live failure pattern can gain crashes
	// after the trace boundary; those are not part of this run's trace).
	CrashedProcs []uint64 `json:"crashed_procs,omitempty"`
}

// DetectionProbes is the failure-detection latency join: recorded crashes
// against recorded suspect histories. Times are logical ticks (the clock
// suspect samples and failure patterns are stamped in), not virtual ns.
type DetectionProbes struct {
	// Crashes is how many crashes the run's failure pattern records;
	// Detected how many reached a stable suspicion in the retained history;
	// Missed the rest (no suspect view, suspicion never stabilized, or the
	// history ring dropped the evidence).
	Crashes  int64 `json:"crashes"`
	Detected int64 `json:"detected,omitempty"`
	Missed   int64 `json:"missed,omitempty"`
	// Latency buckets, per detected crash, the distance in logical ticks
	// from the crash to its first stable suspicion (the earliest sample
	// containing the crashed process after which no later retained sample
	// from another process omits it), clamped at 0 for suspicions that
	// predate the crash.
	Latency Histogram `json:"latency"`
}

// Probes is one run's complete probe block: the stream fold plus the
// optional detection join. Byte-stable per (seed, config) via Encode.
type Probes struct {
	SchemaVersion int          `json:"schema_version"`
	Stream        StreamProbes `json:"stream"`
	// Detection is nil when the run recorded no suspect history to join
	// against (HistoryLimit <= 0).
	Detection *DetectionProbes `json:"detection,omitempty"`
}

// Encode renders the probes canonically: compact JSON over fixed structs,
// byte-identical for equal values. The determinism tests compare these
// bytes; reports embed the same structs.
func (p *Probes) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(p); err != nil {
		return nil, fmt.Errorf("probe: encode: %w", err)
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// Equal compares two probe blocks by canonical encoding.
func (p *Probes) Equal(q *Probes) bool {
	if p == nil || q == nil {
		return p == q
	}
	a, errA := p.Encode()
	b, errB := q.Encode()
	return errA == nil && errB == nil && bytes.Equal(a, b)
}

// CheckVersion refuses probe blocks stamped with a future schema version,
// mirroring the report and journal gates.
func (p *Probes) CheckVersion(source string) error {
	if p != nil && p.SchemaVersion > Version {
		return fmt.Errorf("%s: probe schema_version %d is newer than this build understands (%d); rebuild or use a newer binary", source, p.SchemaVersion, Version)
	}
	return nil
}

// Agg is the mergeable cross-run probe aggregate sweep and campaign reports
// carry per grid slice and per detector class: run-level summaries folded
// into histograms whose merge is plain element-wise addition — commutative
// and associative, with idempotence supplied by campaign's exact-once range
// disjointness, so it slots into the same merge algebra as the run counts.
type Agg struct {
	SchemaVersion int `json:"schema_version"`
	// Runs is how many runs were folded in.
	Runs int64 `json:"runs"`
	// Messages buckets each run's delivered-message count — the message
	// cost axis of the detector comparison.
	Messages Histogram `json:"messages"`
	// DecisionLatency merges the runs' per-process decision-latency
	// histograms (virtual ns).
	DecisionLatency Histogram `json:"decision_latency"`
	// DetectionLatency merges the runs' crash-detection latencies (logical
	// ticks); CrashesSeen/Detected/Missed sum the detection counters.
	DetectionLatency Histogram `json:"detection_latency"`
	CrashesSeen      int64     `json:"crashes_seen,omitempty"`
	Detected         int64     `json:"detected,omitempty"`
	Missed           int64     `json:"missed,omitempty"`
}

// NewAgg returns an empty aggregate at the current schema version.
func NewAgg() *Agg { return &Agg{SchemaVersion: Version} }

// Add folds one run's probes in.
func (a *Agg) Add(p *Probes) {
	if p == nil {
		return
	}
	a.Runs++
	a.Messages.Observe(p.Stream.Messages)
	a.DecisionLatency.Merge(p.Stream.DecisionLatency)
	if d := p.Detection; d != nil {
		a.DetectionLatency.Merge(d.Latency)
		a.CrashesSeen += d.Crashes
		a.Detected += d.Detected
		a.Missed += d.Missed
	}
}

// Merge folds b into a. Both sides must carry the same schema version; the
// caller guarantees the runs behind them are disjoint (campaign's exact-once
// range check), which is what makes the sum idempotent at the algebra level.
func (a *Agg) Merge(b *Agg) error {
	if b == nil {
		return nil
	}
	if a.SchemaVersion != b.SchemaVersion {
		return fmt.Errorf("probe: cannot merge aggregates of schema versions %d and %d", a.SchemaVersion, b.SchemaVersion)
	}
	a.Runs += b.Runs
	a.Messages.Merge(b.Messages)
	a.DecisionLatency.Merge(b.DecisionLatency)
	a.DetectionLatency.Merge(b.DetectionLatency)
	a.CrashesSeen += b.CrashesSeen
	a.Detected += b.Detected
	a.Missed += b.Missed
	return nil
}

// CheckVersion refuses aggregates stamped with a future schema version.
func (a *Agg) CheckVersion(source string) error {
	if a != nil && a.SchemaVersion > Version {
		return fmt.Errorf("%s: probe schema_version %d is newer than this build understands (%d); rebuild or use a newer binary", source, a.SchemaVersion, Version)
	}
	return nil
}

// Summary renders one histogram as a compact percentile line for canonical
// reports: count, mean and p50/p90/p99 upper bounds.
func Summary(h *Histogram) string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p90<=%d p99<=%d max=%d",
		h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max)
}
