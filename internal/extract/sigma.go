// Package extract implements the "necessity" constructions of the paper: the
// transformation algorithms that emulate a weakest failure detector out of
// any algorithm solving the corresponding problem.
//
//   - SigmaExtractor (Figure 1): given an implementation of atomic registers
//     (one register per process, written by its owner), emulate the quorum
//     detector Σ. This is the necessity half of Theorem 1.
//   - PsiExtractor (Figure 3): given a QC algorithm A using a failure
//     detector D, emulate Ψ — initially ⊥, then either an FS behaviour
//     (only after a real failure) or an (Ω, Σ) behaviour agreed on by all
//     processes. This is the necessity half of Theorem 6. The Ω component of
//     the (Ω, Σ) regime uses a documented executable approximation of the
//     Chandra–Hadzilacos–Toueg limit-forest argument; see the PsiExtractor
//     documentation and DESIGN.md, substitution 5.
//
// Both extractors run against the concrete implementations in this module
// (the Σ-register of internal/register, the step-model QC automaton of
// internal/sim), standing in for the paper's universally quantified
// "any algorithm A" — no executable artifact can quantify over all
// algorithms; see DESIGN.md, substitution 3.
package extract

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/register"
	"weakestfd/internal/trace"
)

// RegContents is the value the Figure 1 transformation stores in each
// register: the write counter k and the set Ei of participant sets of the
// owner's previous writes.
type RegContents struct {
	K    int
	Sets []model.ProcessSet
}

// SigmaExtractor runs the Figure 1 transformation at one process: it
// repeatedly writes to its own register, tracks the participants of each
// write, reads every other register, and contacts one member of every
// participant set it observes. Its Quorum output satisfies the Σ
// specification whenever the underlying registers are atomic and live.
type SigmaExtractor struct {
	ep       *net.Endpoint
	regs     []*register.Register[RegContents]
	pingInst string
	pongInst string
	interval time.Duration
	metrics  *trace.Metrics
	hist     *model.History

	mu     sync.Mutex
	output model.ProcessSet
	rounds int

	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	respDone chan struct{}
}

// SigmaExtractorConfig configures one process's extractor.
type SigmaExtractorConfig struct {
	// Endpoint is the local process's network endpoint.
	Endpoint *net.Endpoint
	// Registers holds this process's handle on every register group;
	// Registers[j] must be the register written by process j. The extractor
	// writes only to Registers[Endpoint.ID()].
	Registers []*register.Register[RegContents]
	// Instance namespaces the extractor's own ping/pong traffic.
	Instance string
	// Interval is the pause between iterations of the main loop. Default 1ms.
	Interval time.Duration
	// History, if non-nil, receives every Σ-output update for spec checking.
	// Pass model.NewHistoryWithLimit for long-lived extractors whose history
	// is informational rather than checker input — a capped history keeps
	// only the most recent samples, so the perpetual Σ clauses would be
	// checked over a sliding window only.
	History *model.History
	// Metrics, if non-nil, counts iterations and pings.
	Metrics *trace.Metrics
}

// StartSigmaExtractor starts the transformation at one process. Every process
// of the system must run one for the construction to be meaningful (each
// provides the responder of task 2 and writes its own register).
func StartSigmaExtractor(cfg SigmaExtractorConfig) *SigmaExtractor {
	interval := cfg.Interval
	if interval == 0 {
		interval = time.Millisecond
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = trace.NewMetrics()
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &SigmaExtractor{
		ep:       cfg.Endpoint,
		regs:     cfg.Registers,
		pingInst: "xsigma." + cfg.Instance + ".ping",
		pongInst: "xsigma." + cfg.Instance + ".pong",
		interval: interval,
		metrics:  metrics,
		hist:     cfg.History,
		output:   model.AllProcesses(cfg.Endpoint.N()),
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		respDone: make(chan struct{}),
	}
	go e.respond()
	go e.run()
	return e
}

// Sample implements fd.Sigma: the current emulated Σ output.
func (e *SigmaExtractor) Sample() model.ProcessSet {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.output.Clone()
}

// Rounds returns how many iterations of the main loop have completed.
func (e *SigmaExtractor) Rounds() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rounds
}

// Metrics returns the extractor's metrics sink.
func (e *SigmaExtractor) Metrics() *trace.Metrics { return e.metrics }

// Stop terminates the extractor's background goroutines.
func (e *SigmaExtractor) Stop() {
	e.cancel()
	<-e.done
	<-e.respDone
}

type pingMsg struct {
	Token int64
}

type pongMsg struct {
	Token int64
}

// respond implements task 2 of Figure 1: answer every ping.
func (e *SigmaExtractor) respond() {
	defer close(e.respDone)
	inbox := e.ep.Subscribe(e.pingInst)
	for {
		select {
		case <-e.ctx.Done():
			return
		case <-e.ep.Context().Done():
			return
		case msg := <-inbox:
			if msg.Type == "ping" {
				e.ep.Send(msg.From, e.pongInst, "pong", pongMsg{Token: msg.Payload.(pingMsg).Token})
			}
		}
	}
}

// run implements task 1 of Figure 1.
func (e *SigmaExtractor) run() {
	defer close(e.done)
	self := int(e.ep.ID())
	pongs := e.ep.Subscribe(e.pongInst)

	sets := []model.ProcessSet{model.AllProcesses(e.ep.N())} // Ei, with Pi(0) = Π
	prev := model.AllProcesses(e.ep.N())                     // Pi(k-1)
	token := int64(0)

	for k := 1; ; k++ {
		if e.ctx.Err() != nil || e.ep.Crashed() {
			return
		}
		// Line 8: write (k, Ei) into our own register and record the
		// participants of the write.
		participants, err := e.regs[self].WriteTracked(e.ctx, RegContents{K: k, Sets: cloneSets(sets)})
		if err != nil {
			return
		}
		e.metrics.Inc("writes")
		// Line 9: Ei := Ei ∪ {Pi(k)}.
		sets = append(sets, participants)
		// Line 10: Fi := Pi(k−1).
		trusted := prev.Clone()

		// Lines 11-16: read every register and select one live member of
		// every participant set it contains.
		aborted := false
		for j := 0; j < e.ep.N() && !aborted; j++ {
			contents, err := e.regs[j].Read(e.ctx)
			if err != nil {
				return
			}
			for _, x := range contents.Sets {
				pt, ok := e.selectFrom(x, &token, pongs)
				if !ok {
					aborted = true
					break
				}
				trusted.Add(pt)
			}
		}
		if aborted {
			return
		}

		// Line 17: publish the new Σ-output.
		e.mu.Lock()
		e.output = trusted
		e.rounds = k
		e.mu.Unlock()
		if e.hist != nil {
			e.hist.Record(e.ep.ID(), e.ep.Clock().Now(), trusted.Clone())
		}
		e.metrics.Inc("rounds")

		prev = participants

		// Inter-round pause on the network's virtual clock: free in
		// wall-clock terms, ordered against the traffic of the round.
		timer := e.ep.NewTimer(e.interval)
		select {
		case <-e.ctx.Done():
			timer.Stop()
			return
		case <-e.ep.Context().Done():
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}

// selectFrom sends a ping to every member of x and waits for the first pong
// for this token from a member of x (lines 14-16 of Figure 1).
func (e *SigmaExtractor) selectFrom(x model.ProcessSet, token *int64, pongs <-chan net.Message) (model.ProcessID, bool) {
	*token++
	t := *token
	for _, q := range x.Slice() {
		e.ep.Send(q, e.pingInst, "ping", pingMsg{Token: t})
		e.metrics.Inc("pings")
	}
	for {
		select {
		case <-e.ctx.Done():
			return 0, false
		case <-e.ep.Context().Done():
			return 0, false
		case msg := <-pongs:
			if msg.Type != "pong" {
				continue
			}
			if msg.Payload.(pongMsg).Token != t || !x.Contains(msg.From) {
				continue // stale pong from an earlier token
			}
			return msg.From, true
		}
	}
}

func cloneSets(sets []model.ProcessSet) []model.ProcessSet {
	out := make([]model.ProcessSet, len(sets))
	for i, s := range sets {
		out[i] = s.Clone()
	}
	return out
}

// SigmaExtractionGroup wires the full Figure 1 construction over a network: n
// register groups (one per owner) implemented by the supplied register
// builder, plus one extractor per process.
type SigmaExtractionGroup struct {
	Extractors []*SigmaExtractor
	Histories  []*model.History
	regGroups  []register.Group[RegContents]
}

// Stop stops every extractor and register replica.
func (g *SigmaExtractionGroup) Stop() {
	for _, e := range g.Extractors {
		e.Stop()
	}
	for _, rg := range g.regGroups {
		rg.Stop()
	}
}

// NewSigmaExtractionGroupFromSigmaRegisters builds the construction on top of
// the Σ-based register (the usual instantiation: the register implementation
// is the one that uses the failure detector D = Σ, and the extractor
// re-derives a Σ from it).
func NewSigmaExtractionGroupFromSigmaRegisters(nw *net.Network, instance string, sigma fd.SigmaSource, interval time.Duration) *SigmaExtractionGroup {
	groups := make([]register.Group[RegContents], nw.N())
	for owner := 0; owner < nw.N(); owner++ {
		groups[owner] = register.NewSigmaGroup[RegContents](nw, fmt.Sprintf("x%s.r%d", instance, owner), sigma)
	}
	return newSigmaExtractionGroup(nw, instance, groups, interval)
}

// NewSigmaExtractionGroupFromMajorityRegisters builds the construction on top
// of the majority-based register (valid in majority-correct environments,
// where Σ is extractable "ex nihilo").
func NewSigmaExtractionGroupFromMajorityRegisters(nw *net.Network, instance string, interval time.Duration) *SigmaExtractionGroup {
	groups := make([]register.Group[RegContents], nw.N())
	for owner := 0; owner < nw.N(); owner++ {
		groups[owner] = register.NewMajorityGroup[RegContents](nw, fmt.Sprintf("x%s.r%d", instance, owner))
	}
	return newSigmaExtractionGroup(nw, instance, groups, interval)
}

func newSigmaExtractionGroup(nw *net.Network, instance string, groups []register.Group[RegContents], interval time.Duration) *SigmaExtractionGroup {
	g := &SigmaExtractionGroup{
		Extractors: make([]*SigmaExtractor, nw.N()),
		Histories:  make([]*model.History, nw.N()),
		regGroups:  groups,
	}
	for i := 0; i < nw.N(); i++ {
		regs := make([]*register.Register[RegContents], nw.N())
		for owner := 0; owner < nw.N(); owner++ {
			regs[owner] = groups[owner][i]
		}
		hist := model.NewHistory()
		g.Histories[i] = hist
		g.Extractors[i] = StartSigmaExtractor(SigmaExtractorConfig{
			Endpoint:  nw.Endpoint(model.ProcessID(i)),
			Registers: regs,
			Instance:  instance,
			Interval:  interval,
			History:   hist,
		})
	}
	return g
}

// CombinedHistory merges the per-process Σ-output histories into one, for the
// model.CheckSigma specification checker.
func (g *SigmaExtractionGroup) CombinedHistory() *model.History {
	combined := model.NewHistory()
	for _, h := range g.Histories {
		for _, s := range h.Samples() {
			combined.Record(s.Process, s.Time, s.Value)
		}
	}
	return combined
}

var _ fd.Sigma = (*SigmaExtractor)(nil)
