package journal

import "weakestfd/internal/net"

// Recorder captures a run's trace record stream, implementing
// net.TraceRecorder. Full mode (NewRecorder(KeepAll)) keeps every record;
// ring mode (NewRecorder(k), k > 0) keeps the last k — cheap enough for
// always-on capture, at the price of producing a suffix journal once it
// wraps.
//
// Record needs no locking: the step scheduler serializes recorder calls by
// its token handoff (see net.TraceRecorder). Reading the journal back is
// only valid after the run's trace group has exited.
type Recorder struct {
	max   int // ring capacity; <= 0 keeps all
	recs  []Record
	next  int // ring write position, when wrapped
	total int // records seen
}

// NewRecorder returns a recorder keeping the last max records, or every
// record when max is KeepAll (or any value <= 0).
func NewRecorder(max int) *Recorder {
	r := &Recorder{max: max}
	if max > 0 {
		r.recs = make([]Record, 0, max)
	}
	return r
}

// Record implements net.TraceRecorder.
func (r *Recorder) Record(tr net.TraceRecord) {
	r.total++
	if r.max <= 0 || len(r.recs) < r.max {
		r.recs = append(r.recs, FromNet(tr))
		return
	}
	r.recs[r.next] = FromNet(tr)
	r.next++
	if r.next == r.max {
		r.next = 0
	}
}

// Total is how many records the run produced (>= the number retained).
func (r *Recorder) Total() int { return r.total }

// Journal assembles the captured stream into a journal under meta. The
// capture fields of meta (Mode, FirstIndex, TotalRecords, schema version)
// are filled in here; callers provide provenance and integrity fields
// (Protocol, Config, TraceFingerprint, TaintReason, counters).
func (r *Recorder) Journal(meta Meta) *Journal {
	meta.SchemaVersion = Version
	meta.TotalRecords = r.total
	recs := make([]Record, 0, len(r.recs))
	if r.max > 0 && r.total > r.max {
		meta.Mode = ModeRing
		meta.FirstIndex = r.total - r.max
		recs = append(recs, r.recs[r.next:]...)
		recs = append(recs, r.recs[:r.next]...)
	} else {
		if r.max > 0 {
			meta.Mode = ModeRing
		} else {
			meta.Mode = ModeFull
		}
		meta.FirstIndex = 0
		recs = append(recs, r.recs...)
	}
	return &Journal{Meta: meta, Records: recs}
}
