// Package journal stores the step scheduler's trace record stream as a
// structured, versioned on-disk artifact, and replays it.
//
// The trace tier (internal/net's step scheduler) already makes the full
// record stream — deliveries, task grants, clean exits, logical clocks — a
// byte-reproducible pure function of (seed, config), but by itself keeps only
// its SHA-256 (the TraceFingerprint). A journal keeps the records: every
// field the trace hash sees, nothing it does not, captured through the
// net.TraceRecorder hook that sits beside the digest. On top of the stored
// stream sit three operations:
//
//   - Verify recomputes the SHA-256 over the journal's records through the
//     same net.TraceRecord.AppendHash encoding the live digest uses and
//     cross-checks it against the recorded fingerprint — proof that the
//     journal and the hash saw the identical stream.
//   - Checker re-checks a live run against the journal record-by-record
//     (scenario.Replay wires it in as the run's recorder), stopping at the
//     first mismatch with a precise Divergence.
//   - IsPrefix compares two journals for prefix containment, the acceptance
//     relation trace-minimisation uses.
//
// # Place on the determinism contract
//
// Journal bytes are trace-tier: in step mode they are a pure function of
// (seed, config) — two identically-configured runs journal byte-identical
// files — and capturing them is observe-only, so a journaled run keeps the
// TraceFingerprint of its unjournaled twin. Free-running runs have no step
// trace and refuse journaling outright (scenario.Run fails the run rather
// than writing an empty journal). Tainted runs (a wall-clock escape cut the
// schedule at a point virtual time cannot pin) journal their taint reason in
// place of a fingerprint, and replay refuses them with that reason.
//
// # On-disk format
//
// A journal is JSON-lines: line 1 is the Meta object (schema_version first),
// each subsequent line one Record. Loaders reject future schema versions, the
// same policy as cliutil reports. Encoding is canonical — encoding/json over
// fixed structs — so load → re-encode is byte-identity, which the round-trip
// tests pin.
package journal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"weakestfd/internal/net"
	"weakestfd/internal/probe"
)

// Version is the journal schema version this build reads and writes. Loaders
// reject journals stamped with a newer version — the records they would
// silently misread are exactly the ones a newer writer added fields to.
// Version 2 added the observational record fields (sent, proc, group) and the
// probe block in the meta; version-1 journals still load, verify and replay
// (the checker masks fields their writer could not have known), but offline
// probe recomputation refuses them — the fields it folds are not there.
const Version = 2

// KeepAll selects full-mode capture (every record) when passed as a
// recorder's ring size; positive sizes keep the last K records.
const KeepAll = -1

// Meta is the journal header: provenance and integrity data for the record
// stream that follows.
type Meta struct {
	SchemaVersion int `json:"schema_version"`
	// Protocol is the run's protocol name (scenario.Protocol.Name) — the
	// registry key replay rebuilds the protocol from.
	Protocol string `json:"protocol,omitempty"`
	// Config is the run's scenario configuration, embedded verbatim so a
	// journal is a self-contained reproducer (the journaling knobs
	// themselves are zeroed: replaying attaches a checker, not a recorder).
	Config json.RawMessage `json:"config,omitempty"`
	// TraceFingerprint is the run's trace digest — the hex SHA-256 the
	// records must hash back to (Verify). Empty for tainted runs.
	TraceFingerprint string `json:"trace_fingerprint,omitempty"`
	// TaintReason is why the run forfeited its trace, when it did: the
	// wall-clock escape that cut the schedule. Replay refuses tainted
	// journals with this reason instead of diverging confusingly.
	TaintReason string `json:"taint_reason,omitempty"`
	// Mode is "full" or "ring".
	Mode string `json:"mode"`
	// FirstIndex is the stream index of the first retained record: 0 in
	// full mode, TotalRecords-len(records) after a ring wrapped. A journal
	// with FirstIndex > 0 is a suffix — inspectable, but neither verifiable
	// nor replayable.
	FirstIndex int `json:"first_index"`
	// TotalRecords is how many records the run produced (>= the number
	// retained).
	TotalRecords int `json:"total_records"`
	// Events..Grants mirror the run's TraceStats counters.
	Events   int64 `json:"events"`
	Messages int64 `json:"messages"`
	Timers   int64 `json:"timers"`
	Crashes  int64 `json:"crashes"`
	Grants   int64 `json:"grants"`
	// Probes is the run's live-captured probe block (schema v2+): the fold
	// of the very record stream this journal stores, kept so replay -stats
	// can recompute the stream probes offline and assert equality, and so
	// the detection join (which needs the suspect history, not stored here)
	// survives alongside the records.
	Probes *probe.Probes `json:"probes,omitempty"`
}

// Modes of Meta.Mode.
const (
	ModeFull = "full"
	ModeRing = "ring"
)

// Record is one trace record in journal form — net.TraceRecord with the op
// and kind bytes rendered as strings for greppability. The zero values of
// optional fields are omitted, so a grant line is just
// {"op":"G","task":7}.
type Record struct {
	Op       string `json:"op"`             // "E", "G", "X"
	Kind     string `json:"kind,omitempty"` // "message", "timer", "crash" (events only)
	At       int64  `json:"at,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
	From     uint64 `json:"from,omitempty"`
	To       uint64 `json:"to,omitempty"`
	Instance string `json:"inst,omitempty"`
	Type     string `json:"type,omitempty"`
	Tid      uint64 `json:"tid,omitempty"`
	Task     uint64 `json:"task,omitempty"`
	// Sent, Proc and Group are the schema-v2 observational fields (message
	// enqueue time; granting/exiting task's process; trace-group exit flag).
	// They ride outside the trace hash, so Verify is version-independent.
	Sent  int64  `json:"sent,omitempty"`
	Proc  uint64 `json:"proc,omitempty"`
	Group bool   `json:"group,omitempty"`
}

// opNames / kindNames map the net-level record bytes to journal strings.
var opNames = map[byte]string{
	net.TraceOpEvent: "E",
	net.TraceOpGrant: "G",
	net.TraceOpExit:  "X",
}

var kindNames = map[byte]string{
	net.TraceKindMessage: "message",
	net.TraceKindTimer:   "timer",
	net.TraceKindCrash:   "crash",
}

// FromNet converts a live trace record to journal form.
func FromNet(tr net.TraceRecord) Record {
	r := Record{Op: opNames[tr.Op]}
	switch tr.Op {
	case net.TraceOpEvent:
		r.Kind = kindNames[tr.Kind]
		r.At = tr.At
		r.Seq = tr.Seq
		switch tr.Kind {
		case net.TraceKindMessage:
			r.From, r.To = tr.From, tr.To
			r.Instance, r.Type = tr.Instance, tr.Type
			r.Sent = tr.SentAt
		case net.TraceKindTimer:
			r.Tid = tr.Tid
		case net.TraceKindCrash:
			r.To = tr.To
		}
	case net.TraceOpGrant, net.TraceOpExit:
		r.Task = tr.Task
		r.Proc = tr.Proc
		r.Group = tr.Group
	}
	return r
}

// ToNet converts back to the net-level record, the form AppendHash is
// defined on. It rejects unknown ops and kinds (a corrupted or
// hand-mangled journal) rather than hashing garbage.
func (r Record) ToNet() (net.TraceRecord, error) {
	tr := net.TraceRecord{}
	switch r.Op {
	case "E":
		tr.Op = net.TraceOpEvent
	case "G":
		tr.Op = net.TraceOpGrant
	case "X":
		tr.Op = net.TraceOpExit
	default:
		return tr, fmt.Errorf("journal: unknown record op %q", r.Op)
	}
	if tr.Op == net.TraceOpEvent {
		switch r.Kind {
		case "message":
			tr.Kind = net.TraceKindMessage
			tr.From, tr.To = r.From, r.To
			tr.Instance, tr.Type = r.Instance, r.Type
			tr.SentAt = r.Sent
		case "timer":
			tr.Kind = net.TraceKindTimer
			tr.Tid = r.Tid
		case "crash":
			tr.Kind = net.TraceKindCrash
			tr.To = r.To
		default:
			return tr, fmt.Errorf("journal: unknown event kind %q", r.Kind)
		}
		tr.At, tr.Seq = r.At, r.Seq
	} else {
		tr.Task = r.Task
		tr.Proc = r.Proc
		tr.Group = r.Group
	}
	return tr, nil
}

// String renders the record compactly for divergence reports.
func (r Record) String() string {
	switch r.Op {
	case "E":
		switch r.Kind {
		case "message":
			return fmt.Sprintf("E message at=%d seq=%d %d->%d %s/%s", r.At, r.Seq, r.From, r.To, r.Instance, r.Type)
		case "timer":
			return fmt.Sprintf("E timer at=%d seq=%d tid=%d", r.At, r.Seq, r.Tid)
		case "crash":
			return fmt.Sprintf("E crash at=%d seq=%d p=%d", r.At, r.Seq, r.To)
		}
	case "G":
		return fmt.Sprintf("G task=%d", r.Task)
	case "X":
		return fmt.Sprintf("X task=%d", r.Task)
	}
	b, _ := json.Marshal(r)
	return string(b)
}

// Journal is one run's captured record stream plus its header.
type Journal struct {
	Meta    Meta
	Records []Record
}

// Encode renders the journal canonically: the meta line, then one line per
// record, each compact JSON. Encoding a loaded journal reproduces the input
// byte-for-byte (the round-trip tests pin this), so journals can be
// compared, hashed and diffed as files.
func (j *Journal) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(j.Meta); err != nil {
		return nil, fmt.Errorf("journal: encode meta: %w", err)
	}
	for i := range j.Records {
		if err := enc.Encode(j.Records[i]); err != nil {
			return nil, fmt.Errorf("journal: encode record %d: %w", j.Meta.FirstIndex+i, err)
		}
	}
	return buf.Bytes(), nil
}

// Decode parses a journal, rejecting future schema versions.
func Decode(data []byte) (*Journal, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("journal: read meta line: %w", err)
		}
		return nil, fmt.Errorf("journal: empty input")
	}
	j := &Journal{}
	if err := json.Unmarshal(sc.Bytes(), &j.Meta); err != nil {
		return nil, fmt.Errorf("journal: parse meta line: %w", err)
	}
	if j.Meta.SchemaVersion > Version {
		return nil, fmt.Errorf("journal: schema_version %d is newer than this build understands (%d); rebuild or use a newer binary", j.Meta.SchemaVersion, Version)
	}
	for line := 1; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("journal: parse record line %d: %w", line, err)
		}
		j.Records = append(j.Records, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	return j, nil
}

// ReadFile loads a journal from path.
func ReadFile(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	j, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return j, nil
}

// Complete reports whether the journal holds the run's whole record stream.
// A ring capture that wrapped is a suffix: still inspectable, but not
// verifiable or replayable.
func (j *Journal) Complete() bool {
	return j.Meta.FirstIndex == 0 && len(j.Records) == j.Meta.TotalRecords
}

// suffixErr names exactly what is missing from a suffix journal.
func (j *Journal) suffixErr(op string) error {
	return fmt.Errorf("journal is a suffix: ring capture kept the last %d of %d records (first retained index %d); %s needs a full journal (capture with KeepAll)",
		len(j.Records), j.Meta.TotalRecords, j.Meta.FirstIndex, op)
}

// Verify recomputes the SHA-256 over the journal's records — through the
// same AppendHash encoding the live digest consumed — and cross-checks it
// against the recorded TraceFingerprint. A pass proves the journal and the
// trace hash saw the identical stream; drift between the recorder and the
// digest encodings (the class of bug PR 8's timer-lease leak was) fails
// here.
func (j *Journal) Verify() error {
	if j.Meta.TaintReason != "" {
		return fmt.Errorf("journal records a tainted run, which has no fingerprint to verify against: %s", j.Meta.TaintReason)
	}
	if j.Meta.TraceFingerprint == "" {
		return fmt.Errorf("journal records no trace fingerprint")
	}
	if !j.Complete() {
		return j.suffixErr("verification")
	}
	h := sha256.New()
	var buf [64]byte
	for i := range j.Records {
		tr, err := j.Records[i].ToNet()
		if err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		h.Write(tr.AppendHash(buf[:0]))
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != j.Meta.TraceFingerprint {
		return fmt.Errorf("journal records hash to %s, but the recorded trace fingerprint is %s: the journal and the trace digest did not see the same stream", got, j.Meta.TraceFingerprint)
	}
	return nil
}

// RecomputeProbes folds the journal's stored record stream through the
// probe analyzer — the offline twin of live capture, no re-execution. It
// refuses journals that cannot anchor the fold: tainted runs (the stream
// was cut at a wall-clock point), ring suffixes (the fold needs the whole
// stream) and schema-v1 journals (their records lack the sent/proc/group
// fields the fold consumes; re-record with this build).
func (j *Journal) RecomputeProbes() (probe.StreamProbes, error) {
	var none probe.StreamProbes
	if j.Meta.TaintReason != "" {
		return none, fmt.Errorf("journal records a tainted run; its stream was cut by wall-clock and has no well-defined probes: %s", j.Meta.TaintReason)
	}
	if !j.Complete() {
		return none, j.suffixErr("probe recomputation")
	}
	if j.Meta.SchemaVersion < 2 {
		return none, fmt.Errorf("journal schema_version %d predates the probe fields (sent/proc/group landed in 2); re-record the run to compute probes offline", j.Meta.SchemaVersion)
	}
	a := probe.NewAnalyzer(0)
	for i := range j.Records {
		tr, err := j.Records[i].ToNet()
		if err != nil {
			return none, fmt.Errorf("record %d: %w", i, err)
		}
		a.Record(tr)
	}
	return a.Finish(), nil
}

// Replayable reports whether the journal can anchor a replay, with a
// precise refusal otherwise: tainted runs (the schedule suffix was cut by
// wall-clock; replay would diverge at an unpinnable point) and ring
// suffixes (replay would "diverge" at record 0 for the wrong reason).
func (j *Journal) Replayable() error {
	if j.Meta.TaintReason != "" {
		return fmt.Errorf("journal records a tainted run; the recorded schedule is not reproducible: %s", j.Meta.TaintReason)
	}
	if !j.Complete() {
		return j.suffixErr("replay")
	}
	if len(j.Meta.Config) == 0 {
		return fmt.Errorf("journal carries no scenario config to re-execute")
	}
	return nil
}

// IsPrefix reports whether short's record stream is a prefix of long's.
// Both journals must be complete (a ring suffix has no well-defined
// prefix relation). This is the acceptance relation trace-minimisation
// uses: a shrunk config whose whole schedule is an exact prefix of the
// reference schedule exercised the same executions, just fewer of them.
func IsPrefix(long, short *Journal) bool {
	if !long.Complete() || !short.Complete() {
		return false
	}
	if len(short.Records) > len(long.Records) {
		return false
	}
	for i := range short.Records {
		if short.Records[i] != long.Records[i] {
			return false
		}
	}
	return true
}
