package journal

import (
	"fmt"
	"strings"

	"weakestfd/internal/net"
)

// Checker asserts a live run against a journal record-by-record,
// implementing net.TraceRecorder: scenario.Replay attaches it to the
// re-executed run, and every scheduler decision — which event was delivered,
// which task was granted, which task exited — is compared against the
// recorded one the moment it is made. The first mismatch is captured as a
// Divergence; subsequent records are ignored (everything after the first
// divergence is downstream noise).
type Checker struct {
	j    *Journal
	next int
	div  *Divergence
	// legacy marks a journal written before schema v2: its records lack the
	// observational fields (sent/proc/group), so the checker masks them on
	// the live side — the hashed schedule is what replay holds a run to, and
	// it is version-independent.
	legacy bool
}

// NewChecker returns a checker over j, which must be complete
// (Journal.Replayable).
func NewChecker(j *Journal) *Checker {
	return &Checker{j: j, legacy: j.Meta.SchemaVersion < 2}
}

// Record implements net.TraceRecorder.
func (c *Checker) Record(tr net.TraceRecord) {
	if c.div != nil {
		return
	}
	actual := FromNet(tr)
	if c.legacy {
		actual.Sent, actual.Proc, actual.Group = 0, 0, false
	}
	if c.next >= len(c.j.Records) {
		c.div = &Divergence{Index: c.next, Actual: &actual,
			Reason: "the run produced a record past the journal's end"}
		return
	}
	if expected := c.j.Records[c.next]; actual != expected {
		c.div = &Divergence{Index: c.next, Expected: &expected, Actual: &actual,
			Reason: "the run's record differs from the journal's"}
		return
	}
	c.next++
}

// Finish returns the divergence, if any, after the run completed: either the
// first mismatched record, or — when the run ended with journal records
// still unconsumed — a divergence at the first unconsumed record.
func (c *Checker) Finish() *Divergence {
	if c.div == nil && c.next < len(c.j.Records) {
		expected := c.j.Records[c.next]
		c.div = &Divergence{Index: c.next, Expected: &expected,
			Reason: fmt.Sprintf("the run ended after %d records; the journal holds %d more", c.next, len(c.j.Records)-c.next)}
	}
	return c.div
}

// Matched is how many records matched before the divergence (or all of them).
func (c *Checker) Matched() int { return c.next }

// Divergence pins the first point where a replayed run departed from its
// journal.
type Divergence struct {
	// Index is the stream index of the first mismatched record.
	Index int
	// Expected is the journal's record at Index; nil when the run overran
	// the journal's end.
	Expected *Record
	// Actual is the run's record at Index; nil when the run ended early.
	Actual *Record
	// Reason classifies the mismatch.
	Reason string
}

// Error implements error, so a divergence can travel as one.
func (d *Divergence) Error() string {
	return fmt.Sprintf("replay diverged at record %d: %s", d.Index, d.Reason)
}

// Report renders the divergence with a surrounding window of journal
// context: the record index, expected vs actual, and up to window matching
// records on each side — enough to see what the schedule was doing when it
// forked.
func (d *Divergence) Report(j *Journal, window int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay diverged at record %d (%s)\n", d.Index, d.Reason)
	if d.Expected != nil {
		fmt.Fprintf(&b, "  expected: %s\n", d.Expected)
	} else {
		fmt.Fprintf(&b, "  expected: <end of journal after %d records>\n", len(j.Records))
	}
	if d.Actual != nil {
		fmt.Fprintf(&b, "  actual:   %s\n", d.Actual)
	} else {
		fmt.Fprintf(&b, "  actual:   <run ended>\n")
	}
	if window <= 0 {
		return b.String()
	}
	lo := d.Index - window
	if lo < 0 {
		lo = 0
	}
	hi := d.Index + window + 1
	if hi > len(j.Records) {
		hi = len(j.Records)
	}
	if lo < hi {
		fmt.Fprintf(&b, "  journal context (records %d..%d):\n", lo, hi-1)
		for i := lo; i < hi; i++ {
			marker := "   "
			if i == d.Index {
				marker = ">>>"
			}
			fmt.Fprintf(&b, "  %s %6d  %s\n", marker, i, j.Records[i])
		}
	}
	return b.String()
}
