package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"weakestfd/internal/net"
)

// sampleStream synthesizes a plausible trace stream covering every record
// shape: message, timer and crash events plus grants and exits.
func sampleStream(n int) []net.TraceRecord {
	var out []net.TraceRecord
	for i := 0; out == nil || len(out) < n; i++ {
		out = append(out,
			net.TraceRecord{Op: net.TraceOpEvent, Kind: net.TraceKindMessage, At: int64(10 * i), Seq: uint64(3 * i), From: uint64(i % 4), To: uint64((i + 1) % 4), Instance: "scn", Type: fmt.Sprintf("m%d", i)},
			net.TraceRecord{Op: net.TraceOpGrant, Task: uint64(i % 5)},
			net.TraceRecord{Op: net.TraceOpEvent, Kind: net.TraceKindTimer, At: int64(10*i + 5), Seq: uint64(3*i + 1), Tid: uint64(i)},
			net.TraceRecord{Op: net.TraceOpEvent, Kind: net.TraceKindCrash, At: int64(10*i + 7), Seq: uint64(3*i + 2), To: uint64(i % 4)},
			net.TraceRecord{Op: net.TraceOpExit, Task: uint64(i % 5)},
		)
	}
	return out[:n]
}

// capture runs a stream through a recorder and assembles the journal, with
// the fingerprint computed the way the live digest computes it.
func capture(t *testing.T, stream []net.TraceRecord, max int) *Journal {
	t.Helper()
	rec := NewRecorder(max)
	h := sha256.New()
	var buf [64]byte
	for _, tr := range stream {
		rec.Record(tr)
		h.Write(tr.AppendHash(buf[:0]))
	}
	return rec.Journal(Meta{
		Protocol:         "consensus/omega-sigma",
		Config:           json.RawMessage(`{"n":4,"seed":7}`),
		TraceFingerprint: hex.EncodeToString(h.Sum(nil)),
	})
}

// TestRoundTripByteStability pins the canonical encoding: encode → decode →
// encode is byte-identity, and decode reproduces the structs exactly.
func TestRoundTripByteStability(t *testing.T) {
	j := capture(t, sampleStream(25), KeepAll)
	first, err := j.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(first)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(j.Meta, back.Meta) || !reflect.DeepEqual(j.Records, back.Records) {
		t.Fatal("decoded journal differs structurally from the original")
	}
	second, err := back.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("encode → decode → encode is not byte-identity:\n%s\nvs\n%s", first, second)
	}
}

// TestRecordConversionRoundTrip: every record shape survives the
// net → journal → net conversion exactly, so the recomputed hash sees the
// same bytes the live digest saw.
func TestRecordConversionRoundTrip(t *testing.T) {
	for i, tr := range sampleStream(10) {
		back, err := FromNet(tr).ToNet()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if back != tr {
			t.Fatalf("record %d: round-trip changed the record: %+v vs %+v", i, back, tr)
		}
	}
}

// TestDecodeRefusesFutureSchema: a journal stamped with a newer schema
// version is refused at load, not silently misread.
func TestDecodeRefusesFutureSchema(t *testing.T) {
	j := capture(t, sampleStream(5), KeepAll)
	j.Meta.SchemaVersion = Version + 1
	data, err := j.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("future schema not refused: %v", err)
	}
}

// TestVerify: the fingerprint recomputation passes on an intact journal and
// pins any record mutation.
func TestVerify(t *testing.T) {
	j := capture(t, sampleStream(25), KeepAll)
	if err := j.Verify(); err != nil {
		t.Fatalf("intact journal failed verification: %v", err)
	}
	mut := capture(t, sampleStream(25), KeepAll)
	mut.Records[12].At++
	if err := mut.Verify(); err == nil || !strings.Contains(err.Error(), "hash to") {
		t.Fatalf("mutated journal passed verification: %v", err)
	}
	bad := capture(t, sampleStream(5), KeepAll)
	bad.Records[0].Op = "Z"
	if err := bad.Verify(); err == nil || !strings.Contains(err.Error(), "unknown record op") {
		t.Fatalf("mangled op not rejected: %v", err)
	}
	tainted := capture(t, sampleStream(5), KeepAll)
	tainted.Meta.TraceFingerprint = ""
	tainted.Meta.TaintReason = "wall-clock escape: test"
	if err := tainted.Verify(); err == nil || !strings.Contains(err.Error(), "tainted") {
		t.Fatalf("tainted journal not refused: %v", err)
	}
}

// TestRingSuffix pins the ring semantics: a wrapped capture keeps the last
// K records in stream order with FirstIndex advanced, and is refused — as a
// suffix, not as a divergence — by both verification and replay.
func TestRingSuffix(t *testing.T) {
	stream := sampleStream(30)
	j := capture(t, stream, 10)
	if j.Meta.Mode != ModeRing || j.Meta.TotalRecords != 30 || j.Meta.FirstIndex != 20 {
		t.Fatalf("ring meta: %+v", j.Meta)
	}
	if len(j.Records) != 10 {
		t.Fatalf("ring retained %d records, want 10", len(j.Records))
	}
	for i, tr := range stream[20:] {
		if j.Records[i] != FromNet(tr) {
			t.Fatalf("ring record %d is not stream record %d: %+v", i, 20+i, j.Records[i])
		}
	}
	if j.Complete() {
		t.Fatal("a wrapped ring capture claims to be complete")
	}
	if err := j.Verify(); err == nil || !strings.Contains(err.Error(), "journal is a suffix") {
		t.Fatalf("suffix verification refusal: %v", err)
	}
	if err := j.Replayable(); err == nil || !strings.Contains(err.Error(), "journal is a suffix") {
		t.Fatalf("suffix replay refusal: %v", err)
	}

	// An unwrapped ring (capacity never exceeded) is still a complete stream.
	small := capture(t, stream[:8], 10)
	if small.Meta.Mode != ModeRing || !small.Complete() {
		t.Fatalf("unwrapped ring: mode %q, complete %v", small.Meta.Mode, small.Complete())
	}
	if err := small.Verify(); err != nil {
		t.Fatalf("unwrapped ring failed verification: %v", err)
	}
}

// TestCheckerDivergence feeds mutated streams through the checker and pins
// the divergence index at the head, middle and tail of the stream, plus the
// two length mismatches (overrun and early end).
func TestCheckerDivergence(t *testing.T) {
	stream := sampleStream(21)
	j := capture(t, stream, KeepAll)

	replayThrough := func(chk *Checker, s []net.TraceRecord) {
		for _, tr := range s {
			chk.Record(tr)
		}
	}

	// A faithful replay matches everything.
	chk := NewChecker(j)
	replayThrough(chk, stream)
	if div := chk.Finish(); div != nil {
		t.Fatalf("faithful replay diverged: %v", div)
	}
	if chk.Matched() != len(stream) {
		t.Fatalf("matched %d of %d", chk.Matched(), len(stream))
	}

	for _, at := range []int{0, 10, 20} {
		mutated := append([]net.TraceRecord(nil), stream...)
		mutated[at].Seq += 99
		chk := NewChecker(j)
		replayThrough(chk, mutated)
		div := chk.Finish()
		if div == nil || div.Index != at {
			t.Fatalf("mutation at %d: divergence %+v", at, div)
		}
		if div.Expected == nil || div.Actual == nil || *div.Expected == *div.Actual {
			t.Fatalf("mutation at %d: expected/actual not captured: %+v", at, div)
		}
		rep := div.Report(j, 3)
		if !strings.Contains(rep, fmt.Sprintf("diverged at record %d", at)) || !strings.Contains(rep, ">>>") {
			t.Fatalf("mutation at %d: report missing index or marker:\n%s", at, rep)
		}
	}

	// The run produced a record past the journal's end.
	chk = NewChecker(j)
	replayThrough(chk, append(append([]net.TraceRecord(nil), stream...), stream[0]))
	if div := chk.Finish(); div == nil || div.Index != len(stream) || div.Expected != nil {
		t.Fatalf("overrun divergence: %+v", chk.Finish())
	}

	// The run ended with journal records unconsumed.
	chk = NewChecker(j)
	replayThrough(chk, stream[:15])
	div := chk.Finish()
	if div == nil || div.Index != 15 || div.Actual != nil || !strings.Contains(div.Reason, "the journal holds 6 more") {
		t.Fatalf("early-end divergence: %+v", div)
	}
}

// TestIsPrefix pins the minimisation acceptance relation.
func TestIsPrefix(t *testing.T) {
	stream := sampleStream(20)
	long := capture(t, stream, KeepAll)
	short := capture(t, stream[:12], KeepAll)
	if !IsPrefix(long, short) {
		t.Fatal("a true prefix was rejected")
	}
	if IsPrefix(short, long) {
		t.Fatal("a longer stream was accepted as a prefix of a shorter one")
	}
	if !IsPrefix(long, long) {
		t.Fatal("a journal is not a prefix of itself")
	}
	diverged := capture(t, stream[:12], KeepAll)
	diverged.Records[5].Task += 7
	if IsPrefix(long, diverged) {
		t.Fatal("a diverging stream was accepted as a prefix")
	}
	suffix := capture(t, stream, 8)
	if IsPrefix(long, suffix) || IsPrefix(suffix, short) {
		t.Fatal("a ring suffix participated in the prefix relation")
	}
}
