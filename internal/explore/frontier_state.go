package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"weakestfd/internal/model"
	"weakestfd/internal/scenario"
)

// Resumable frontier search: the bisection of searchAxis is deterministic —
// same base, axes and seeds probe the same values in the same order — so a
// search can be snapshotted as the list of probes taken so far and replayed
// from a snapshot without re-running anything already measured. That is the
// frontier's side of the campaign determinism contract: the boundaries are a
// pure function of (base config, axes, seeds), independent of where the
// search was interrupted and resumed.

// FrontierStateVersion is the schema version of serialized FrontierState;
// loaders reject versions newer than they understand.
const FrontierStateVersion = 1

// ProbeState records one probed parameter value of one axis. Seeds run in
// order and a probe stops at its first failing seed, so SeedsDone counts a
// prefix of all-passing seeds; Done marks the probe finished with outcome
// Pass after Runs scenario runs.
type ProbeState struct {
	Value     model.Time `json:"value"`
	SeedsDone int        `json:"seeds_done,omitempty"`
	Runs      int        `json:"runs,omitempty"`
	Done      bool       `json:"done,omitempty"`
	Pass      bool       `json:"pass,omitempty"`
}

// AxisState is the persisted progress of one axis's bisection: the probes
// taken so far in search order, and the finished boundary once Done.
type AxisState struct {
	Axis     string       `json:"axis"` // canonical "class:param:max"
	Probes   []ProbeState `json:"probes,omitempty"`
	Done     bool         `json:"done,omitempty"`
	Boundary *Boundary    `json:"boundary,omitempty"`
}

// FrontierState is a serializable snapshot of a frontier search:
// per-axis bisection state plus a fingerprint of the search inputs, so a
// resume against different inputs is refused instead of silently replayed.
type FrontierState struct {
	SchemaVersion int         `json:"schema_version"`
	Fingerprint   string      `json:"fingerprint"`
	Axes          []AxisState `json:"axes,omitempty"`
}

// FrontierFingerprint is the identity a FrontierState binds to: the base
// config's canonical key, the axes and the seed list. Byte-stable.
func FrontierFingerprint(base scenario.Config, axes []Axis, seeds []int64) string {
	var sb strings.Builder
	sb.WriteString("frontier{")
	sb.WriteString(base.Key())
	sb.WriteString(";axes=")
	for i, a := range axes {
		if i > 0 {
			sb.WriteByte('|')
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(";seeds=")
	for i, s := range seeds {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", s)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Marshal renders the state as canonical indented JSON, byte-stable for
// equal states.
func (st *FrontierState) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		return nil, fmt.Errorf("frontier state: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadFrontierState parses a serialized FrontierState, rejecting versions
// newer than FrontierStateVersion.
func LoadFrontierState(data []byte) (*FrontierState, error) {
	var st FrontierState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("frontier state: parse: %w", err)
	}
	if st.SchemaVersion > FrontierStateVersion {
		return nil, fmt.Errorf("frontier state: schema_version %d is newer than supported version %d", st.SchemaVersion, FrontierStateVersion)
	}
	return &st, nil
}

// FrontierResume is Frontier with snapshot/restore: it resumes from state
// (nil or empty starts fresh) and, when checkpoint is non-nil, calls it with
// the updated state after every completed scenario run, so an interrupted
// search loses at most one run. The state's fingerprint must match the
// search inputs. Axes already finished in the state return their stored
// boundary without re-running; an in-flight axis resumes mid-probe.
//
// The returned boundaries are byte-identical to an uninterrupted Frontier
// over the same inputs, wherever the search was cut and resumed.
func FrontierResume(ctx context.Context, base scenario.Config, proto scenario.Protocol, axes []Axis, seeds []int64, state *FrontierState, checkpoint func(*FrontierState) error) ([]Boundary, error) {
	if proto == nil {
		return nil, fmt.Errorf("frontier: proto is required")
	}
	if base.N <= 0 {
		return nil, fmt.Errorf("frontier: base config is required (N = %d)", base.N)
	}
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	fp := FrontierFingerprint(base, axes, seeds)
	if state == nil {
		state = &FrontierState{SchemaVersion: FrontierStateVersion, Fingerprint: fp}
	}
	if state.SchemaVersion == 0 {
		state.SchemaVersion = FrontierStateVersion
	}
	if state.Fingerprint == "" {
		state.Fingerprint = fp
	}
	if state.Fingerprint != fp {
		return nil, fmt.Errorf("frontier: state fingerprint mismatch:\n  state:  %s\n  search: %s", state.Fingerprint, fp)
	}
	out := make([]Boundary, 0, len(axes))
	for i, axis := range axes {
		if i >= len(state.Axes) {
			state.Axes = append(state.Axes, AxisState{Axis: axis.String()})
		}
		st := &state.Axes[i]
		if st.Axis != axis.String() {
			return nil, fmt.Errorf("frontier: state axis %d is %q, search has %q (stale state?)", i, st.Axis, axis)
		}
		if st.Done && st.Boundary != nil {
			out = append(out, *st.Boundary)
			continue
		}
		var ckpt func() error
		if checkpoint != nil {
			ckpt = func() error { return checkpoint(state) }
		}
		b, err := searchAxis(ctx, base, proto, axis, seeds, st, ckpt)
		if err != nil {
			return out, err
		}
		st.Done = true
		bCopy := b
		st.Boundary = &bCopy
		if err := checkpointState(checkpoint, state); err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}

// checkpointState invokes the state callback if set, wrapping its error.
func checkpointState(checkpoint func(*FrontierState) error, state *FrontierState) error {
	if checkpoint == nil {
		return nil
	}
	if err := checkpoint(state); err != nil {
		return fmt.Errorf("frontier: checkpoint: %w", err)
	}
	return nil
}
