package explore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// SpaceFingerprint is the identity of an exploration's search space:
// everything in the options that shapes which configurations get probed and
// what the per-seed result is — the protocol, the base config (seed zeroed
// out), the class alphabet, the run budget, the generation size, the
// minimisation cap and the depth-signal switch — and nothing that does not
// (the seed itself, wall budget, worker count, callbacks). Two explorations
// with equal space fingerprints and different seeds are independent samples
// of one campaign's space, which is what lets campaign merge fold their
// reports: the merged result is a pure function of (fingerprint, seed set).
// A custom Mutators set is not representable and must be nil.
func SpaceFingerprint(opts Options) string {
	batch := opts.Batch
	if batch <= 0 {
		batch = defaultBatch
	}
	minimize := opts.MinimizeLimit
	if minimize == 0 {
		minimize = defaultMinimize
	}
	if minimize < 0 {
		minimize = -1
	}
	base := opts.Base
	base.Seed = 0
	proto := ""
	if opts.Proto != nil {
		proto = opts.Proto.Name()
	}
	classes := make([]string, len(opts.Classes))
	for i, c := range opts.Classes {
		classes[i] = c.String()
	}
	// The trace signal renders as its signature depth, not a boolean:
	// "probes" marks the probe-deepened shapes (runs carry Config.Probes and
	// traceShape folds probe statistics in), which partition behaviours more
	// finely than the plain counters did — a different search space, so a
	// different fingerprint.
	traceTag := "false"
	if opts.TraceSignal {
		traceTag = "probes"
	}
	return fmt.Sprintf("explore{proto=%s;base=%s;classes=%s;runs=%d;batch=%d;minimize=%d;depth=%t;trace=%s}",
		proto, base.Key(), strings.Join(classes, ","), opts.Runs, batch, minimize, opts.DepthSignal, traceTag)
}

// Corpus persistence: the exploration's full resumable state — corpus
// entries with their energies, the behaviour set and the failure dedup set —
// serialized as canonical JSON. A later exploration seeded with the state
// (Options.SeedCorpus) continues where this one stopped, and campaign shards
// hand corpora to each other across generations through the same files.
//
// Entries keep their discovery order, so Parent indices stay valid within
// one serialized corpus. Merging corpora (campaign.MergeCorpora) has no
// shared discovery order to preserve, so merged entries are re-sorted by
// signature and their Parent links cleared — provenance fields survive a
// merge as annotations only.

// CorpusVersion is the schema version of serialized corpus state; loaders
// reject versions newer than they understand.
const CorpusVersion = 1

// CorpusState is the serializable exploration state.
type CorpusState struct {
	SchemaVersion int `json:"schema_version"`
	// Entries is the corpus; within one exploration's serialization, in
	// discovery order.
	Entries []Entry `json:"entries,omitempty"`
	// Behaviours is the sorted set of behaviour parts already seen — the
	// hot-entry novelty judgement of the energy schedule.
	Behaviours []string `json:"behaviours,omitempty"`
	// FailureSigs is the sorted failure dedup set: signatures whose
	// failures have already been reported, so a resumed exploration does
	// not re-report them.
	FailureSigs []string `json:"failure_sigs,omitempty"`
}

// CorpusState extracts the report's resumable corpus state.
func (r *Report) CorpusState() *CorpusState {
	st := &CorpusState{
		SchemaVersion: CorpusVersion,
		Entries:       append([]Entry(nil), r.Corpus...),
		Behaviours:    append([]string(nil), r.Behaviours...),
		FailureSigs:   append([]string(nil), r.FailureSigs...),
	}
	sort.Strings(st.Behaviours)
	sort.Strings(st.FailureSigs)
	return st
}

// Marshal renders the state as canonical indented JSON: byte-stable for
// equal states, diffable, and re-loadable by LoadCorpus.
func (c *CorpusState) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return nil, fmt.Errorf("corpus: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadCorpus parses a serialized corpus, rejecting versions newer than
// CorpusVersion.
func LoadCorpus(data []byte) (*CorpusState, error) {
	var st CorpusState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("corpus: parse: %w", err)
	}
	if st.SchemaVersion > CorpusVersion {
		return nil, fmt.Errorf("corpus: schema_version %d is newer than supported version %d", st.SchemaVersion, CorpusVersion)
	}
	return &st, nil
}

// sortedKeys returns the map's keys, sorted.
func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
