package explore

import (
	"context"
	"fmt"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/scenario"
)

// The solvability-frontier search: the paper ranks detector classes by what
// they solve; the quality parameters of a class interpolate *within* it
// (suspicion lag, stabilisation time, detection lag — 0 is the exact
// detector, larger is weaker). For each class×parameter axis, Frontier
// binary-searches the largest parameter value at which the protocol still
// passes — turning the sweep driver's fixed grid points into a measured
// boundary, e.g. "◇P solves consensus on this crash schedule up to
// stabilize=K and not at K+1".
//
// Axes come in two directions (fd.ParamDirection). Weakening axes follow the
// degradation convention: 0 is the exact detector, larger is weaker, and the
// search brackets the largest passing value. Strengthening axes — the
// heartbeat pacing parameters — are inverted: 0 means "the implementation's
// default" and among positive values larger is *stronger*, so the search
// never probes 0 and brackets the *smallest* passing value in [1, Max]
// instead. Parameters with no monotone convention are rejected by
// ValidateAxis.
//
// The searched parameters are monotone in principle; the measured boundary
// is a *resource-bounded* fact — a run that cannot outlast its perturbation
// within the configured wall-clock backstop counts as not solving — which is
// exactly what makes the boundary finite and locatable for axes whose
// failures are starvation, not structure. Structural boundaries (a class
// that cannot solve the problem at any quality, like ◇S consensus under a
// crashed fallback-quorum member) report as Unsolvable; axes whose best
// searchable value still passes report as Censored.

// Axis is one frontier search dimension: a detector class (with any fixed
// quality parameters) and the grammar key of the parameter to bisect, up to
// the ceiling Max.
type Axis struct {
	// Spec is the detector class under search; its other parameters stay
	// fixed at their configured values.
	Spec fd.DetectorSpec
	// Param is the spec-grammar key of the searched parameter (suspect,
	// detect, stabilize, switch, interval, timeout — see fd.SpecParamKeys).
	// It must be a parameter the class's builder consumes
	// (fd.Registry.Params) with a monotone direction (fd.ParamDirection).
	Param string
	// Max is the search ceiling, in the parameter's own units.
	Max model.Time
}

// String renders the axis as "class:param:max".
func (a Axis) String() string { return fmt.Sprintf("%s:%s:%d", a.Spec, a.Param, a.Max) }

// Boundary is the measured solvability boundary of one axis.
type Boundary struct {
	// Spec and Param identify the axis (Spec in canonical spec grammar).
	Spec  string     `json:"spec"`
	Param string     `json:"param"`
	Max   model.Time `json:"max"`
	// Inverted marks a strengthening axis (fd.DirStrengthens): the search
	// ran over [1, Max] for the smallest passing value, and the bracket
	// lives in MinPassing/MaxFailing instead of MaxPassing/MinFailing.
	Inverted bool `json:"inverted,omitempty"`
	// Unsolvable: the protocol fails at the axis's strongest searchable
	// value — parameter 0 (the exact detector) on a weakening axis, Max on
	// an inverted one — so no searchable quality solves the problem on this
	// schedule.
	Unsolvable bool `json:"unsolvable,omitempty"`
	// Censored: the protocol passes at the axis's weakest searchable value
	// — Max on a weakening axis, 1 on an inverted one — so the boundary, if
	// any, lies beyond the search range.
	Censored bool `json:"censored,omitempty"`
	// MaxPassing and MinFailing bracket a weakening axis's boundary: the
	// largest probed value that passed and the smallest that failed. For an
	// interior boundary MinFailing == MaxPassing + 1; Censored leaves
	// MinFailing 0, Unsolvable leaves MaxPassing 0 meaningless (MinFailing
	// is 0 itself).
	MaxPassing model.Time `json:"max_passing"`
	MinFailing model.Time `json:"min_failing"`
	// MinPassing and MaxFailing bracket an inverted axis's boundary: the
	// smallest probed value that passed and the largest that failed. For an
	// interior boundary MinPassing == MaxFailing + 1; Censored leaves
	// MaxFailing 0 (1 passed), Unsolvable leaves both 0.
	MinPassing model.Time `json:"min_passing,omitempty"`
	MaxFailing model.Time `json:"max_failing,omitempty"`
	// Probes counts distinct parameter values probed; Runs the scenario
	// runs they cost (probes × seeds, minus early exits). Both accumulate
	// across resumed invocations.
	Probes int `json:"probes"`
	Runs   int `json:"runs"`
}

// Tighter reports whether b brackets its axis's boundary at least as tightly
// as other measures the same axis — the merge order for campaign aggregation.
// A resolved bracket beats an unresolved one; among interior brackets the
// narrower wins; Unsolvable/Censored verdicts are exact, so they beat
// everything. Boundaries of distinct axes are incomparable; callers key by
// (Spec, Param, Max) first.
func (b Boundary) Tighter(other Boundary) bool {
	return b.width() < other.width()
}

// width is the bracket width Tighter compares: 0 for the exact verdicts,
// the open range size for interior brackets.
func (b Boundary) width() model.Time {
	if b.Unsolvable || b.Censored {
		return 0
	}
	if b.Inverted {
		if b.MinPassing == 0 && b.MaxFailing == 0 {
			return b.Max + 1 // unmeasured
		}
		return b.MinPassing - b.MaxFailing
	}
	if b.MaxPassing == 0 && b.MinFailing == 0 {
		return b.Max + 1 // unmeasured
	}
	return b.MinFailing - b.MaxPassing
}

// Frontier locates the solvability boundary of each axis over the base
// configuration: a probe at value q runs proto once per seed (base.Seed when
// seeds is empty) with the axis's spec, its searched parameter set to q; the
// probe passes only if every seeded run passes. Binary search assumes pass
// monotonicity in q per the axis's direction (weakening: pass at q ⇒ pass at
// all smaller q; inverted: pass at q ⇒ pass at all larger q), which holds
// for the quality parameters by construction and is pinned by the
// monotonicity tests; a non-monotone axis still terminates, reporting one
// valid bracket.
//
// The search is deterministic for deterministic protocols: same base, axes
// and seeds — same boundaries. Cancelling ctx aborts with an error.
func Frontier(ctx context.Context, base scenario.Config, proto scenario.Protocol, axes []Axis, seeds []int64) ([]Boundary, error) {
	return FrontierResume(ctx, base, proto, axes, seeds, nil, nil)
}

// ValidateAxis checks the axis against the registry: the class must be
// registered, Param one of the parameters its builder consumes with a
// positive ceiling, and — the assumption the bisection leans on — the
// parameter must have a monotone direction (fd.ParamDirection): either the
// degradation convention (0 exact, larger weaker) or the heartbeat pacing
// parameters' inverted convention (0 default, larger stronger). Parameters
// with no convention are rejected: a bisection over them would report a
// boundary that does not exist. Frontier itself validates too; CLIs call
// this at flag time.
func ValidateAxis(a Axis) error {
	class, ok := fd.DefaultRegistry().Resolve(a.Spec.Class)
	if !ok {
		return fmt.Errorf("frontier axis %s: unknown class %q", a, a.Spec.Class)
	}
	if a.Max <= 0 {
		return fmt.Errorf("frontier axis %s: ceiling must be positive", a)
	}
	consumed := false
	for _, key := range fd.DefaultRegistry().Params(class) {
		if key == a.Param {
			consumed = true
			break
		}
	}
	if !consumed {
		return fmt.Errorf("frontier axis %s: class %s does not consume parameter %q (it consumes: %v)",
			a, class, a.Param, fd.DefaultRegistry().Params(class))
	}
	if fd.ParamDirection(a.Param) == fd.DirNone {
		return fmt.Errorf("frontier axis %s: parameter %q has no monotone direction (neither weakening nor strengthening) the bisection needs", a, a.Param)
	}
	if fd.ParamDirection(a.Param) == fd.DirStrengthens && a.Max < 2 {
		return fmt.Errorf("frontier axis %s: inverted axis needs ceiling >= 2 (0 means default and is not probed)", a)
	}
	return nil
}

// searchAxis bisects one axis, recording progress in st (never nil) and
// checkpointing via ckpt (may be nil) after every completed run.
func searchAxis(ctx context.Context, base scenario.Config, proto scenario.Protocol, axis Axis, seeds []int64, st *AxisState, ckpt func() error) (Boundary, error) {
	inverted := fd.ParamDirection(axis.Param) == fd.DirStrengthens
	b := Boundary{Spec: axis.Spec.String(), Param: axis.Param, Max: axis.Max, Inverted: inverted}
	if err := ValidateAxis(axis); err != nil {
		return b, err
	}

	probeIdx := 0
	passAt := func(q model.Time) (bool, error) {
		// Replay or resume a recorded probe: the bisection is
		// deterministic, so the i-th probe of a resumed search lands on the
		// same value as the i-th probe of the original — anything else
		// means the state belongs to a different search.
		var rec *ProbeState
		if probeIdx < len(st.Probes) {
			rec = &st.Probes[probeIdx]
			if rec.Value != q {
				return false, fmt.Errorf("frontier axis %s: resume state probes value %d where the search probes %d (stale state?)", axis, rec.Value, q)
			}
		} else {
			st.Probes = append(st.Probes, ProbeState{Value: q})
			rec = &st.Probes[len(st.Probes)-1]
		}
		probeIdx++
		b.Probes++
		if rec.Done {
			b.Runs += rec.Runs
			return rec.Pass, nil
		}
		// Seeds run in order and a probe fails on its first failing seed,
		// so SeedsDone seeds all passed — skip them on resume.
		for i := rec.SeedsDone; i < len(seeds); i++ {
			cfg := base.Clone()
			cfg.Seed = seeds[i]
			cfg.Detector = axis.Spec
			p, ok := cfg.Detector.Param(axis.Param)
			if !ok {
				return false, fmt.Errorf("frontier axis %s: no such parameter", axis)
			}
			*p = q
			res := scenario.FromConfig(cfg).Run(ctx, proto)
			rec.Runs++
			b.Runs++
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("frontier axis %s: cancelled: %w", axis, err)
			}
			if !res.Verdict.OK {
				rec.Done, rec.Pass = true, false
				if err := checkpoint(ckpt); err != nil {
					return false, err
				}
				return false, nil
			}
			rec.SeedsDone = i + 1
			if err := checkpoint(ckpt); err != nil {
				return false, err
			}
		}
		rec.Done, rec.Pass = true, true
		if err := checkpoint(ckpt); err != nil {
			return false, err
		}
		return true, nil
	}

	// strongest/weakest searchable values per direction.
	strongest, weakest := model.Time(0), axis.Max
	if inverted {
		strongest, weakest = axis.Max, 1
	}

	ok, err := passAt(strongest)
	if err != nil {
		return b, err
	}
	if !ok {
		b.Unsolvable = true
		if inverted {
			b.MaxFailing = strongest
		}
		return b, nil
	}
	ok, err = passAt(weakest)
	if err != nil {
		return b, err
	}
	if ok {
		b.Censored = true
		if inverted {
			b.MinPassing = weakest
		} else {
			b.MaxPassing = weakest
		}
		return b, nil
	}

	if inverted {
		lo, hi := model.Time(1), axis.Max // lo fails, hi passes
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			ok, err := passAt(mid)
			if err != nil {
				return b, err
			}
			if ok {
				hi = mid
			} else {
				lo = mid
			}
		}
		b.MaxFailing, b.MinPassing = lo, hi
		return b, nil
	}

	lo, hi := model.Time(0), axis.Max // lo passes, hi fails
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := passAt(mid)
		if err != nil {
			return b, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	b.MaxPassing, b.MinFailing = lo, hi
	return b, nil
}

// checkpoint invokes the callback if set, wrapping its error.
func checkpoint(ckpt func() error) error {
	if ckpt == nil {
		return nil
	}
	if err := ckpt(); err != nil {
		return fmt.Errorf("frontier: checkpoint: %w", err)
	}
	return nil
}
