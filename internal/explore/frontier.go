package explore

import (
	"context"
	"fmt"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/scenario"
)

// The solvability-frontier search: the paper ranks detector classes by what
// they solve; the quality parameters of a class interpolate *within* it
// (suspicion lag, stabilisation time, detection lag — 0 is the exact
// detector, larger is weaker). For each class×parameter axis, Frontier
// binary-searches the largest parameter value at which the protocol still
// passes — turning the sweep driver's fixed grid points into a measured
// boundary, e.g. "◇P solves consensus on this crash schedule up to
// stabilize=K and not at K+1".
//
// The searched parameters weaken monotonically in principle; the measured
// boundary is a *resource-bounded* fact — a run that cannot outlast its
// perturbation within the configured wall-clock backstop counts as not
// solving — which is exactly what makes the boundary finite and locatable
// for axes whose failures are starvation, not structure. Structural
// boundaries (a class that cannot solve the problem at any quality, like ◇S
// consensus under a crashed fallback-quorum member) report as Unsolvable;
// axes whose ceiling still passes report as Censored.

// Axis is one frontier search dimension: a detector class (with any fixed
// quality parameters) and the grammar key of the parameter to bisect, up to
// the ceiling Max.
type Axis struct {
	// Spec is the detector class under search; its other parameters stay
	// fixed at their configured values.
	Spec fd.DetectorSpec
	// Param is the spec-grammar key of the searched parameter (suspect,
	// detect, stabilize, switch, ... — see fd.SpecParamKeys). It must be a
	// parameter the class's builder consumes (fd.Registry.Params).
	Param string
	// Max is the search ceiling, in the parameter's own units.
	Max model.Time
}

// String renders the axis as "class:param:max".
func (a Axis) String() string { return fmt.Sprintf("%s:%s:%d", a.Spec, a.Param, a.Max) }

// Boundary is the measured solvability boundary of one axis.
type Boundary struct {
	// Spec and Param identify the axis (Spec in canonical spec grammar).
	Spec  string     `json:"spec"`
	Param string     `json:"param"`
	Max   model.Time `json:"max"`
	// Unsolvable: the protocol fails even at parameter 0 (the exact
	// detector of the class) — the class does not solve the problem on this
	// schedule at any quality.
	Unsolvable bool `json:"unsolvable,omitempty"`
	// Censored: the protocol still passes at Max — the boundary, if any,
	// lies beyond the search ceiling.
	Censored bool `json:"censored,omitempty"`
	// MaxPassing and MinFailing bracket the boundary: the largest probed
	// value that passed and the smallest that failed. For an interior
	// boundary MinFailing == MaxPassing + 1; Censored leaves MinFailing 0,
	// Unsolvable leaves MaxPassing 0 meaningless (MinFailing is 0 itself).
	MaxPassing model.Time `json:"max_passing"`
	MinFailing model.Time `json:"min_failing"`
	// Probes counts distinct parameter values probed; Runs the scenario
	// runs they cost (probes × seeds).
	Probes int `json:"probes"`
	Runs   int `json:"runs"`
}

// Frontier locates the solvability boundary of each axis over the base
// configuration: a probe at value q runs proto once per seed (base.Seed when
// seeds is empty) with the axis's spec, its searched parameter set to q; the
// probe passes only if every seeded run passes. Binary search assumes pass
// monotonicity in q (pass at q ⇒ pass at all smaller q), which holds for
// the quality parameters by construction and is pinned by the monotonicity
// tests; a non-monotone axis still terminates, reporting one valid bracket.
//
// The search is deterministic for deterministic protocols: same base, axes
// and seeds — same boundaries. Cancelling ctx aborts with an error.
func Frontier(ctx context.Context, base scenario.Config, proto scenario.Protocol, axes []Axis, seeds []int64) ([]Boundary, error) {
	if proto == nil {
		return nil, fmt.Errorf("frontier: proto is required")
	}
	if base.N <= 0 {
		return nil, fmt.Errorf("frontier: base config is required (N = %d)", base.N)
	}
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	out := make([]Boundary, 0, len(axes))
	for _, axis := range axes {
		b, err := searchAxis(ctx, base, proto, axis, seeds)
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
	return out, nil
}

// ValidateAxis checks the axis against the registry: the class must be
// registered, Param one of the parameters its builder consumes with a
// positive ceiling, and — the assumption the bisection leans on — the
// parameter must follow the degradation convention (fd.ParamWeakens: 0 is
// the exact detector, larger is strictly weaker). The heartbeat pacing
// parameters are rejected here: their zero means "default" and a larger
// timeout is *stronger*, so a bisection over them would report a boundary
// that does not exist. Frontier itself validates too; CLIs call this at
// flag time.
func ValidateAxis(a Axis) error {
	class, ok := fd.DefaultRegistry().Resolve(a.Spec.Class)
	if !ok {
		return fmt.Errorf("frontier axis %s: unknown class %q", a, a.Spec.Class)
	}
	if a.Max <= 0 {
		return fmt.Errorf("frontier axis %s: ceiling must be positive", a)
	}
	consumed := false
	for _, key := range fd.DefaultRegistry().Params(class) {
		if key == a.Param {
			consumed = true
			break
		}
	}
	if !consumed {
		return fmt.Errorf("frontier axis %s: class %s does not consume parameter %q (it consumes: %v)",
			a, class, a.Param, fd.DefaultRegistry().Params(class))
	}
	if !fd.ParamWeakens(a.Param) {
		return fmt.Errorf("frontier axis %s: parameter %q does not follow the weakening convention (0 = exact, larger = weaker) the bisection needs", a, a.Param)
	}
	return nil
}

// searchAxis bisects one axis.
func searchAxis(ctx context.Context, base scenario.Config, proto scenario.Protocol, axis Axis, seeds []int64) (Boundary, error) {
	b := Boundary{Spec: axis.Spec.String(), Param: axis.Param, Max: axis.Max}
	if err := ValidateAxis(axis); err != nil {
		return b, err
	}

	passAt := func(q model.Time) (bool, error) {
		b.Probes++
		for _, seed := range seeds {
			cfg := base.Clone()
			cfg.Seed = seed
			cfg.Detector = axis.Spec
			p, ok := cfg.Detector.Param(axis.Param)
			if !ok {
				return false, fmt.Errorf("frontier axis %s: no such parameter", axis)
			}
			*p = q
			res := scenario.FromConfig(cfg).Run(ctx, proto)
			b.Runs++
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("frontier axis %s: cancelled: %w", axis, err)
			}
			if !res.Verdict.OK {
				return false, nil
			}
		}
		return true, nil
	}

	ok, err := passAt(0)
	if err != nil {
		return b, err
	}
	if !ok {
		b.Unsolvable = true
		return b, nil
	}
	ok, err = passAt(axis.Max)
	if err != nil {
		return b, err
	}
	if ok {
		b.Censored = true
		b.MaxPassing = axis.Max
		return b, nil
	}

	lo, hi := model.Time(0), axis.Max // lo passes, hi fails
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := passAt(mid)
		if err != nil {
			return b, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	b.MaxPassing, b.MinFailing = lo, hi
	return b, nil
}
