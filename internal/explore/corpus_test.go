package explore

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestCorpusRoundTrip: serialize → load → identical canonical bytes, and an
// exploration seeded with the loaded state is indistinguishable from one
// seeded with the original — the property that lets corpora travel through
// files between campaign generations.
func TestCorpusRoundTrip(t *testing.T) {
	ctx := context.Background()
	rep, err := Explore(ctx, testOptions(exploreSeed))
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	st := rep.CorpusState()
	if len(st.Entries) == 0 {
		t.Fatal("exploration yielded an empty corpus")
	}
	data, err := st.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	loaded, err := LoadCorpus(data)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	data2, err := loaded.Marshal()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("corpus round-trip not byte-stable:\n%s\nvs\n%s", data, data2)
	}

	optsA := testOptions(exploreSeed + 1)
	optsA.SeedCorpus = st
	optsB := testOptions(exploreSeed + 1)
	optsB.SeedCorpus = loaded
	a, err := Explore(ctx, optsA)
	if err != nil {
		t.Fatalf("seeded explore: %v", err)
	}
	b, err := Explore(ctx, optsB)
	if err != nil {
		t.Fatalf("seeded explore from loaded corpus: %v", err)
	}
	if ca, cb := a.Canonical(), b.Canonical(); ca != cb {
		t.Fatalf("loaded corpus seeds a different exploration\n--- original ---\n%s\n--- loaded ---\n%s", ca, cb)
	}

	// Seeded entries lead the new corpus, in their serialized order, and
	// their signatures are not re-counted as novel discoveries.
	if len(a.Corpus) < len(st.Entries) {
		t.Fatalf("seeded corpus lost entries: %d < %d", len(a.Corpus), len(st.Entries))
	}
	for i, e := range st.Entries {
		if a.Corpus[i].Signature != e.Signature {
			t.Fatalf("seeded entry %d: signature %s, want %s", i, a.Corpus[i].Signature, e.Signature)
		}
	}
}

// TestLoadCorpusRejectsFuture: a corpus from a newer build is refused, not
// silently misread.
func TestLoadCorpusRejectsFuture(t *testing.T) {
	if _, err := LoadCorpus([]byte(`{"schema_version": 2}`)); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future corpus version: err=%v, want newer-version refusal", err)
	}
}
