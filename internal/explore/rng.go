package explore

import (
	"time"

	"weakestfd/internal/model"
)

// Rand is the exploration's deterministic random stream: a splitmix64
// generator implemented here so that an exploration's mutation choices are a
// pure function of its seed forever — independent of Go version, platform
// and the standard library's generator evolution. Every consumer (parent
// selection, mutator selection, each mutator's own draws) pulls from one
// sequential stream, which is what makes the whole run replayable from the
// seed alone.
type Rand struct {
	state uint64
}

// newRand seeds a stream. Distinct seeds give uncorrelated streams (the
// constant is the splitmix64 golden-gamma increment).
func newRand(seed int64) *Rand {
	return &Rand{state: uint64(seed) + 0x9E3779B97F4A7C15}
}

// Uint64 returns the next raw draw.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a draw in [0, n); n must be positive.
func (r *Rand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64 draw.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a draw in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Pick returns an index drawn proportionally to the given non-negative
// weights (an all-zero slice falls back to uniform).
func (r *Rand) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// quantum is the grain of every mutated duration: mutation draws land on a
// coarse lattice so that the novelty signature's buckets (and human eyes)
// see structure, not noise.
const quantum = 250 * time.Microsecond

// Quantized returns a duration drawn uniformly from {0, q, 2q, ..., max}
// rounded to the mutation quantum.
func (r *Rand) Quantized(max time.Duration) time.Duration {
	steps := int(max/quantum) + 1
	return time.Duration(r.Intn(steps)) * quantum
}

// Ticks returns a logical-tick value drawn from {0, 25, 50, ..., max}.
func (r *Rand) Ticks(max model.Time) model.Time {
	const grain = 25
	steps := int(max/grain) + 1
	return model.Time(r.Intn(steps) * grain)
}
