package explore

import (
	"fmt"
	"strings"
	"time"
)

// Report is everything one exploration produced. All fields except Elapsed
// and RunsPerSec are deterministic per Options.Seed (for schedule-determined
// protocols, no wall budget, DepthSignal off); Canonical renders exactly
// that deterministic content, byte-stably — the form the determinism tests
// compare and external tooling may diff.
type Report struct {
	Seed  int64  `json:"seed"`
	Proto string `json:"proto"`
	N     int    `json:"n"`
	// Budget is the requested run budget; Runs is how many actually
	// executed (less than Budget when a wall budget or cancellation ended
	// the exploration early).
	Budget int `json:"budget"`
	Runs   int `json:"runs"`
	// Novel and Duplicates partition the executed runs by whether their
	// signature was new (Novel == len(Corpus)); Cancelled counts budget
	// swallowed by context cancellation.
	Novel      int `json:"novel"`
	Duplicates int `json:"duplicates"`
	Cancelled  int `json:"cancelled,omitempty"`
	// FirstFailureRun is the 1-based run index of the first spec violation
	// (0 = none found) — the number to compare against a uniform grid's
	// runs-to-first-failure.
	FirstFailureRun int `json:"first_failure_run,omitempty"`
	// Corpus is the novelty corpus in discovery order (seeded entries, if
	// any, first in their stored order). Novel counts its length, seeded
	// entries included.
	Corpus []Entry `json:"corpus"`
	// Behaviours is the sorted set of behaviour parts seen (including ones
	// restored from a seed corpus); FailureSigs the sorted failure dedup
	// set. Together with Corpus they are the full resumable corpus state —
	// see CorpusState.
	Behaviours  []string `json:"behaviours,omitempty"`
	FailureSigs []string `json:"failure_sigs,omitempty"`
	// Mutators aggregates applied/novel counts per mutator, in first-use
	// order.
	Mutators []*MutatorStat `json:"mutators"`
	// Failures are the found failing behaviour classes, deduplicated by
	// signature, in discovery order.
	Failures []Failure `json:"failures,omitempty"`
	// Minimized holds the delta-debugged reproducers (deduplicated by
	// minimal fingerprint); MinimizeCandidates counts the candidate runs
	// the minimisation phase spent on top of the exploration budget.
	Minimized          []MinimizedFailure `json:"minimized,omitempty"`
	MinimizeCandidates int                `json:"minimize_candidates,omitempty"`
	// Elapsed and RunsPerSec are wall-clock measurements: real but not
	// reproducible, hence excluded from Canonical.
	Elapsed    time.Duration `json:"elapsed"`
	RunsPerSec float64       `json:"runs_per_sec"`
}

// Canonical renders the report's deterministic content byte-stably: the
// whole exploration as a function of the seed, with the wall-clock
// measurements left out. Two explorations of the same Options must render
// identically — that is the package's reproducibility contract, pinned by
// the determinism tests.
func (r *Report) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explore seed=%d proto=%s n=%d budget=%d runs=%d novel=%d dup=%d cancelled=%d first_failure_run=%d\n",
		r.Seed, r.Proto, r.N, r.Budget, r.Runs, r.Novel, r.Duplicates, r.Cancelled, r.FirstFailureRun)
	b.WriteString("corpus:\n")
	for i, e := range r.Corpus {
		fmt.Fprintf(&b, "  %d: run=%d parent=%d via=%s picks=%d children=%d failing=%t sig=%s\n",
			i, e.FoundAtRun, e.Parent, e.Mutator, e.Picks, e.Children, e.Failing, e.Signature)
	}
	b.WriteString("mutators:\n")
	for _, m := range r.Mutators {
		fmt.Fprintf(&b, "  %s: applied=%d novel=%d\n", m.Name, m.Applied, m.Novel)
	}
	if len(r.Failures) > 0 {
		b.WriteString("failures:\n")
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "  run=%d sig=%s violations=%v\n", f.Run, f.Signature, f.Violations)
			writeIndented(&b, f.Fingerprint)
		}
	}
	if len(r.Minimized) > 0 {
		fmt.Fprintf(&b, "minimized (candidates=%d):\n", r.MinimizeCandidates)
		for _, m := range r.Minimized {
			fmt.Fprintf(&b, "  from_run=%d candidates=%d violations=%v\n", m.FromRun, m.Candidates, m.Violations)
			writeIndented(&b, m.Fingerprint)
		}
	}
	return b.String()
}

// writeIndented writes a multi-line fingerprint at uniform indentation.
func writeIndented(b *strings.Builder, s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Fprintf(b, "    %s\n", line)
	}
}
