package explore

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/scenario"
)

// The novelty signature: a deliberately lossy rendering of one run that
// answers "did this run exhibit a behaviour class we have not seen yet?".
// It abstracts Result.Fingerprint along two lines:
//
//   - Config features are bucketed and the seed is dropped entirely: a new
//     seed over the same schedule shape is the same territory, not a
//     discovery, so uniform seed churn cannot inflate the corpus.
//   - Outcomes are kept as shape, not values: which processes decided,
//     which errored, and the partition of decided values (who agreed with
//     whom), plus the *classes* of the spec violations — the clause that
//     failed, stripped of the tick counts and process details that vary
//     between identically-seeded runs.
//
// Everything the signature reads is schedule-determined, so for the
// deterministic protocols the signature — and hence the whole exploration —
// is byte-reproducible per seed. Result.HistoryDepth is the one deliberate
// exception: it is a real behaviour signal (how hard the run worked its
// detectors) but, like tick counts, it is scheduling-dependent, so it joins
// the signature only when Options.DepthSignal opts in. The trace shape
// (Options.TraceSignal) sits on the reproducible side: the step scheduler's
// record counters are part of the pinned schedule, so bucketing them adds
// how-it-ran sensitivity without giving up byte-reproducibility.

// SignatureOf renders res's novelty signature: the bucketed configuration
// territory plus the behaviour part (BehaviourOf). withDepth additionally
// mixes in the log-bucketed suspect-history depth (see Options.DepthSignal);
// withTrace mixes in the bucketed trace shape (see Options.TraceSignal).
func SignatureOf(res *scenario.Result, withDepth, withTrace bool) string {
	cfg := res.Config
	var b strings.Builder
	fmt.Fprintf(&b, "%s n=%d det=%s delay=%d drop=%d crashes=%s",
		res.Protocol, cfg.N, specShape(cfg.Detector),
		durationBucket(cfg.MaxDelay),
		boolBit(cfg.DropRate > 0), crashShape(cfg.Crashes))
	fmt.Fprintf(&b, " %s", BehaviourOf(res))
	if withDepth {
		fmt.Fprintf(&b, " hist=%d", logBucket(uint64(res.HistoryDepth)))
	}
	if withTrace {
		fmt.Fprintf(&b, " trace=%s", traceShape(res))
	}
	return b.String()
}

// traceShape buckets the step scheduler's trace counters: delivered events,
// messages among them, and task step grants, each on the shared log4 scale —
// how much schedule a run burned, not what it computed. Runs without a
// pinned trace (the free-running ablation, timeout-tainted runs) render "~":
// one territory, deliberately not subdivided, because their schedule suffix
// is exactly the part the scheduler could not pin.
//
// When the run carried the probe analyzer (trace-signal explorations set
// Config.Probes on every run), the shape deepens with the probe fold's
// summary statistics on the same log4 scale: worst decision latency and
// decision depth, worst inter-event quiescence gap, worst crash-to-decision
// distance, and the per-process grant skew (max − min grants) — how the
// schedule was *distributed*, which raw counters cannot see. All of it is
// trace-tier, so the deepened signature stays byte-reproducible per seed.
func traceShape(res *scenario.Result) string {
	if res.TraceFingerprint == "" {
		return "~"
	}
	st := res.TraceSummary
	shape := fmt.Sprintf("e%d/m%d/g%d",
		logBucket(uint64(st.Events)), logBucket(uint64(st.Messages)), logBucket(uint64(st.Grants)))
	if p := res.Probes; p != nil {
		s := &p.Stream
		var skew int64
		if len(s.PerProcess) > 0 {
			lo, hi := s.PerProcess[0].Grants, s.PerProcess[0].Grants
			for _, pp := range s.PerProcess[1:] {
				lo, hi = min(lo, pp.Grants), max(hi, pp.Grants)
			}
			skew = hi - lo
		}
		shape += fmt.Sprintf("/dl%d/dd%d/q%d/cd%d/k%d",
			logBucket(uint64(s.DecisionLatency.Max)), logBucket(uint64(s.DecisionDepth.Max)),
			logBucket(uint64(s.QuiescenceGap.Max)), logBucket(uint64(s.CrashToDecision.Max)),
			logBucket(uint64(skew)))
	}
	return shape
}

// BehaviourOf is the pure behaviour part of the signature — what the run
// *did* (verdict class and outcome shape), with every configuration feature
// left out. The energy schedule treats a run whose behaviour part is new as
// a hot discovery, while a new configuration territory with already-seen
// behaviour is only lukewarm: territory is worth holding, behaviour change
// is worth chasing.
func BehaviourOf(res *scenario.Result) string {
	return fmt.Sprintf("verdict=%s out=%s", verdictClass(res.Verdict.OK, res.Verdict.Violations), outcomeShape(res.Outcomes))
}

func boolBit(v bool) int {
	if v {
		return 1
	}
	return 0
}

// logBucket is the shared coarse scale: 0 for 0, else ceil(log4) — about
// four buckets per two orders of magnitude, deliberately crude: every extra
// bucket multiplies the signature space, and an inflated space turns
// coverage guidance back into a random walk.
func logBucket(v uint64) int {
	return (bits.Len64(v) + 1) / 2
}

// durationBucket buckets a duration on the log4 scale of 250µs units.
func durationBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return logBucket(uint64(d / (250 * time.Microsecond)))
}

// specShape renders a detector spec with its quality parameters bucketed:
// the class and which parameters are perturbed (and roughly how hard) are
// behaviour classes; every exact tick value is not.
func specShape(spec fd.DetectorSpec) string {
	var parts []string
	for _, key := range fd.SpecParamKeys() {
		p, _ := spec.Param(key)
		if p != nil && *p != 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", key, logBucket(uint64(*p))))
		}
	}
	class := spec.Class
	if class == "" {
		class = "omega-sigma"
	}
	if len(parts) == 0 {
		return class
	}
	return class + "{" + strings.Join(parts, ",") + "}"
}

// crashShape renders the crash schedule as the sorted set of crashing
// processes with bucketed times — who crashes and roughly when, with
// schedule order abstracted away.
func crashShape(crashes []scenario.Crash) string {
	if len(crashes) == 0 {
		return "-"
	}
	parts := make([]string, len(crashes))
	for i, c := range crashes {
		parts[i] = fmt.Sprintf("%d@%d", int(c.P), durationBucket(c.At))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// verdictClass is "pass", or the sorted set of violation classes — each
// violation reduced to its clause prefix (the text before the first ':'),
// which names the failed clause ("consensus termination violated",
// "scenario setup", ...) while dropping the process- and tick-level detail
// that varies between runs of the same failure mode.
func verdictClass(ok bool, violations []string) string {
	if ok {
		return "pass"
	}
	seen := map[string]bool{}
	var classes []string
	for _, v := range violations {
		class := v
		if i := strings.IndexByte(v, ':'); i >= 0 {
			class = v[:i]
		}
		if !seen[class] {
			seen[class] = true
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	return "fail(" + strings.Join(classes, ";") + ")"
}

// outcomeShape renders per-process outcomes in process order: 'e' errored,
// '-' took no step, or v<k> where k indexes the distinct decided values in
// first-seen order — so "everyone agreed" reads v0v0v0 and a split reads
// v0v1v0, independent of the concrete values (which carry the seed).
// Crash-scheduled processes render like any other: whether such a process
// squeezes its decision in before its crash fires used to be a goroutine
// race even for a fixed seed and was masked as 'x', but under the step
// scheduler the crash is an ordinary ordered event against a deterministic
// grant schedule, so the outcome is schedule-determined and carries real
// signal (decided-then-crashed vs crashed-first are different behaviours).
func outcomeShape(outs []scenario.Outcome) string {
	var b strings.Builder
	classes := map[string]int{}
	for _, o := range outs {
		switch {
		case o.Returned:
			key := fmt.Sprint(o.Value)
			k, ok := classes[key]
			if !ok {
				k = len(classes)
				classes[key] = k
			}
			fmt.Fprintf(&b, "v%d", k)
		case o.Err != nil:
			b.WriteByte('e')
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}
