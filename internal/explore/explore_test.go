package explore

import (
	"context"
	"strings"
	"testing"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/scenario"
)

// testAlphabet is the detector-class alphabet of the exploration tests: the
// paper's family, the two exact Chandra–Toueg classes and the stabilising ◇
// classes — the same axis the sweep acceptance tests use.
func testAlphabet() []fd.DetectorSpec {
	return []fd.DetectorSpec{
		{Class: fd.ClassOmegaSigma},
		{Class: fd.ClassPerfect},
		fd.MustParseSpec("eventually-perfect{stabilize:50}"),
		fd.MustParseSpec("eventually-strong{stabilize:50}"),
	}
}

// testOptions is the shared exploration setup: (Ω, Σ) consensus at n=5 over
// the class alphabet, a short wall-clock backstop so genuine
// non-termination failures (◇S) cost 150ms, not 30s. The base delay range
// sits on the mutation alphabet's delay floor (see mutate.go): decisions
// stay several milliseconds of virtual time away from every mutated crash,
// keeping each sampled point schedule-determined.
func testOptions(seed int64) Options {
	return Options{
		Seed:          seed,
		Runs:          64,
		Batch:         8,
		Proto:         scenario.Consensus{},
		Base:          scenario.New(5, scenario.WithDelays(time.Millisecond, 3*time.Millisecond), scenario.WithTimeout(150*time.Millisecond)).Config(),
		Classes:       testAlphabet(),
		MinimizeLimit: 1,
	}
}

// exploreSeed is the pinned master seed of the deterministic tests.
const exploreSeed = 5

// TestExploreDeterministicPerSeed is the reproducibility contract: the whole
// exploration — corpus, energies' effect on picks, failures, minimised
// reproducers — is a pure function of the seed, byte-for-byte.
func TestExploreDeterministicPerSeed(t *testing.T) {
	ctx := context.Background()
	a, err := Explore(ctx, testOptions(exploreSeed))
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	b, err := Explore(ctx, testOptions(exploreSeed))
	if err != nil {
		t.Fatalf("second explore: %v", err)
	}
	if ca, cb := a.Canonical(), b.Canonical(); ca != cb {
		t.Fatalf("exploration not reproducible per seed\n--- first ---\n%s\n--- second ---\n%s", ca, cb)
	}
	if a.Runs != a.Budget {
		t.Fatalf("executed %d of %d budgeted runs without cancellation", a.Runs, a.Budget)
	}
}

// TestExploreCorpusDedup: the corpus holds one entry per behaviour
// signature, every executed run is either novel or a counted duplicate, and
// the base config seeds the corpus.
func TestExploreCorpusDedup(t *testing.T) {
	rep, err := Explore(context.Background(), testOptions(exploreSeed))
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range rep.Corpus {
		if seen[e.Signature] {
			t.Fatalf("corpus holds signature twice: %s", e.Signature)
		}
		seen[e.Signature] = true
	}
	if rep.Novel != len(rep.Corpus) {
		t.Fatalf("Novel = %d, corpus holds %d", rep.Novel, len(rep.Corpus))
	}
	if rep.Novel+rep.Duplicates != rep.Runs {
		t.Fatalf("runs do not partition: %d novel + %d dup != %d runs", rep.Novel, rep.Duplicates, rep.Runs)
	}
	if rep.Novel < 4 {
		t.Fatalf("exploration found only %d behaviour classes; the axis alone has more", rep.Novel)
	}
	first := rep.Corpus[0]
	if first.Parent != -1 || first.Mutator != "base" || first.FoundAtRun != 1 {
		t.Fatalf("corpus[0] is not the base config: %+v", first)
	}
	for _, f := range rep.Failures {
		if !seen[f.Signature] {
			t.Fatalf("failure signature %q missing from corpus", f.Signature)
		}
	}
}

// TestExploreFindsAndMinimizesKnownFailureFasterThanGrid is the acceptance
// criterion: starting from a passing base, the feedback loop must reach the
// known ◇S consensus non-termination failure in strictly fewer runs than the
// equivalent uniform grid (same class alphabet, the single-crash schedule
// family the crash mutator draws from, weakest class last — the natural
// sweep layout), and shrink it to the canonical minimal reproducer.
func TestExploreFindsAndMinimizesKnownFailureFasterThanGrid(t *testing.T) {
	ctx := context.Background()
	rep, err := Explore(ctx, testOptions(exploreSeed))
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.FirstFailureRun == 0 {
		t.Fatalf("exploration found no failure in %d runs", rep.Runs)
	}

	// The equivalent uniform grid: every alphabet class × the single-crash
	// schedules ('-' plus one mid-protocol crash per process) over the same
	// base scenario. Row-major scan, runs-to-first-failure.
	crashAxis := [][]scenario.Crash{nil}
	for p := 4; p >= 0; p-- {
		crashAxis = append(crashAxis, []scenario.Crash{{P: model.ProcessID(p), At: 500 * time.Microsecond}})
	}
	grid := scenario.Grid{Detectors: testAlphabet(), Crashes: crashAxis}
	gridRuns := 0
	baseCfg := testOptions(exploreSeed).Base
	for i := 0; i < grid.Size(); i++ {
		gridRuns++
		res := scenario.FromConfig(grid.ConfigAt(baseCfg, i)).Run(ctx, scenario.Consensus{})
		if !res.Verdict.OK {
			break
		}
	}
	t.Logf("explore first failure at run %d; uniform grid at run %d of %d", rep.FirstFailureRun, gridRuns, grid.Size())
	if rep.FirstFailureRun >= gridRuns {
		t.Fatalf("exploration (run %d) was not strictly faster than the uniform grid (run %d)", rep.FirstFailureRun, gridRuns)
	}

	// The failure minimises to the canonical reproducer: the pristine ◇S
	// spec (quality perturbation zeroed) with crashes at time zero hitting
	// the fallback quorum, losing termination only.
	if len(rep.Minimized) == 0 {
		t.Fatalf("no minimised reproducer (failures: %d)", len(rep.Failures))
	}
	min := rep.Minimized[0]
	if min.Config.Detector.Class != fd.ClassEventuallyStrong {
		t.Fatalf("minimal reproducer is not ◇S: %+v", min.Config.Detector)
	}
	if min.Config.Detector != min.Config.Detector.Zeroed() {
		t.Fatalf("minimal reproducer kept quality perturbation: %v", min.Config.Detector)
	}
	if len(min.Config.Crashes) == 0 {
		t.Fatalf("minimal ◇S reproducer lost its crash schedule")
	}
	for _, c := range min.Config.Crashes {
		if c.At != 0 {
			t.Fatalf("crash time not rounded to zero: %v", min.Config.Crashes)
		}
	}
	if !strings.Contains(strings.Join(min.Violations, " "), "termination") {
		t.Fatalf("minimal reproducer violates something other than termination: %v", min.Violations)
	}
}

// TestSignatureAbstractsSeedKeepsBehaviour: two runs differing only in seed
// share a signature (seed churn is not novelty); a run with a different
// verdict or detector class does not.
func TestSignatureAbstractsSeedKeepsBehaviour(t *testing.T) {
	ctx := context.Background()
	run := func(opts ...scenario.Option) scenario.Result {
		return scenario.New(4, opts...).Run(ctx, scenario.Consensus{})
	}
	a := run(scenario.WithSeed(1))
	b := run(scenario.WithSeed(999))
	if SignatureOf(&a, false, false) != SignatureOf(&b, false, false) {
		t.Fatalf("seed changed the signature:\n%s\n%s", SignatureOf(&a, false, false), SignatureOf(&b, false, false))
	}
	c := run(scenario.WithSeed(1), scenario.WithDetectorClass(fd.ClassPerfect))
	if SignatureOf(&a, false, false) == SignatureOf(&c, false, false) {
		t.Fatalf("detector class did not change the signature")
	}
	d := run(scenario.WithSeed(1), scenario.WithDetector(fd.MustParseSpec("eventually-strong{stabilize:50}")),
		scenario.WithCrash(0, 0), scenario.WithTimeout(150*time.Millisecond))
	if d.Verdict.OK {
		t.Fatalf("◇S leader-crash run passed unexpectedly")
	}
	if sd := SignatureOf(&d, false, false); !strings.Contains(sd, "fail(") || !strings.Contains(sd, "termination") {
		t.Fatalf("failing signature does not classify the violation: %s", sd)
	}
}

// TestExploreCancellation: a cancelled exploration reports partial results
// with the remaining budget classified as cancelled, never as failures.
func TestExploreCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Explore(ctx, testOptions(exploreSeed))
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.Runs != 0 || rep.Cancelled != rep.Budget {
		t.Fatalf("pre-cancelled explore ran %d, cancelled %d of %d", rep.Runs, rep.Cancelled, rep.Budget)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("cancelled explore reported failures: %+v", rep.Failures)
	}
}
