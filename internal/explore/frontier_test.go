package explore

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/scenario"
)

// thresholdClass is a synthetic detector class with a hard structural
// boundary at suspect = thresholdBoundary: below it the builder serves the
// exact oracle family, above it the suite loses Σ, so any Σ-consuming
// protocol refuses to set up — an instant, deterministic failure. It gives
// the binary search a known interior boundary to find, with none of the
// wall-clock sensitivity of a starvation boundary.
const (
	thresholdClass    = "frontier-probe"
	thresholdBoundary = model.Time(17)
)

func init() {
	fd.DefaultRegistry().Register(thresholdClass, func(env fd.Env, spec fd.DetectorSpec) (*fd.Suite, error) {
		suite, err := fd.Build(env.Pattern, env.Clock, fd.DetectorSpec{})
		if err != nil {
			return nil, err
		}
		if spec.SuspicionDelay > thresholdBoundary {
			suite.Sigma = nil
		}
		return suite, nil
	}, "suspect")
}

// TestFrontierFindsStructuralBoundary: the binary search brackets the
// synthetic class's boundary exactly.
func TestFrontierFindsStructuralBoundary(t *testing.T) {
	base := scenario.New(4).Config()
	bounds, err := Frontier(context.Background(), base, scenario.Consensus{}, []Axis{
		{Spec: fd.DetectorSpec{Class: thresholdClass}, Param: "suspect", Max: 200},
	}, nil)
	if err != nil {
		t.Fatalf("frontier: %v", err)
	}
	b := bounds[0]
	if b.Unsolvable || b.Censored {
		t.Fatalf("structural boundary misclassified: %+v", b)
	}
	if b.MaxPassing != thresholdBoundary || b.MinFailing != thresholdBoundary+1 {
		t.Fatalf("boundary = (%d, %d], want (%d, %d]", b.MaxPassing, b.MinFailing, thresholdBoundary, thresholdBoundary+1)
	}
	if b.Probes > 12 {
		t.Fatalf("binary search spent %d probes on a 0..200 axis", b.Probes)
	}
}

// TestFrontierMonotonicity pins the implication the search relies on: pass
// at q ⇒ pass at every stronger (smaller) q on the axis. Probed directly on
// both sides of the measured boundary.
func TestFrontierMonotonicity(t *testing.T) {
	ctx := context.Background()
	base := scenario.New(4).Config()
	probe := func(q model.Time) bool {
		cfg := base.Clone()
		cfg.Detector = fd.DetectorSpec{Class: thresholdClass, SuspicionDelay: q}
		return scenario.FromConfig(cfg).Run(ctx, scenario.Consensus{}).Verdict.OK
	}
	for _, q := range []model.Time{0, 1, thresholdBoundary / 2, thresholdBoundary} {
		if !probe(q) {
			t.Fatalf("stronger-than-boundary quality %d failed", q)
		}
	}
	for _, q := range []model.Time{thresholdBoundary + 1, 2 * thresholdBoundary, 200} {
		if probe(q) {
			t.Fatalf("weaker-than-boundary quality %d passed", q)
		}
	}
}

// TestFrontierClassifiesDiamondClasses runs the acceptance axes: on a
// leader-crash consensus schedule, ◇P{stabilize} passes clear to the search
// ceiling (the boundary is censored: any finite prefix burns off in virtual
// time), while ◇S is unsolvable at every quality — its converged quorum
// fallback contains the crashed process, which no stabilisation time fixes.
func TestFrontierClassifiesDiamondClasses(t *testing.T) {
	base := scenario.New(5,
		scenario.WithCrash(0, 0),
		scenario.WithTimeout(500*time.Millisecond),
	).Config()
	bounds, err := Frontier(context.Background(), base, scenario.Consensus{}, []Axis{
		{Spec: fd.DetectorSpec{Class: fd.ClassEventuallyPerfect}, Param: "stabilize", Max: 200},
		{Spec: fd.DetectorSpec{Class: fd.ClassEventuallyStrong}, Param: "stabilize", Max: 200},
	}, []int64{1, 2})
	if err != nil {
		t.Fatalf("frontier: %v", err)
	}
	dp, ds := bounds[0], bounds[1]
	if !dp.Censored || dp.MaxPassing != 200 || dp.Unsolvable {
		t.Fatalf("◇P boundary: %+v, want censored at the ceiling", dp)
	}
	if !ds.Unsolvable {
		t.Fatalf("◇S boundary: %+v, want unsolvable", ds)
	}
	if ds.Runs >= dp.Runs {
		t.Fatalf("unsolvable axis (%d runs) should cost no more than a censored one (%d)", ds.Runs, dp.Runs)
	}
}

// TestFrontierValidatesAxes: unknown classes, foreign parameters and empty
// ceilings fail fast with names, not mid-search.
func TestFrontierValidatesAxes(t *testing.T) {
	for _, tc := range []struct {
		axis Axis
		want string
	}{
		{Axis{Spec: fd.DetectorSpec{Class: "nope"}, Param: "suspect", Max: 10}, "unknown class"},
		{Axis{Spec: fd.DetectorSpec{Class: fd.ClassPerfect}, Param: "stabilize", Max: 10}, "does not consume"},
		{Axis{Spec: fd.DetectorSpec{Class: fd.ClassPerfect}, Param: "suspect", Max: 0}, "ceiling"},
		// An inverted axis never probes 0 (it means "default"), so its
		// bracket [1, Max] needs at least two values.
		{Axis{Spec: fd.DetectorSpec{Class: "heartbeat"}, Param: "timeout", Max: 1}, "ceiling >= 2"},
	} {
		err := ValidateAxis(tc.axis)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ValidateAxis(%+v) = %v, want %q", tc.axis, err, tc.want)
		}
	}
	if err := ValidateAxis(Axis{Spec: fd.DetectorSpec{Class: "diamond-p"}, Param: "stabilize", Max: 10}); err != nil {
		t.Errorf("aliased axis rejected: %v", err)
	}
	// The heartbeat pacing parameters invert the weakening convention
	// (0 = default, larger timeout = stronger); they are searchable as
	// inverted axes rather than rejected.
	if err := ValidateAxis(Axis{Spec: fd.DetectorSpec{Class: "heartbeat"}, Param: "timeout", Max: 10000}); err != nil {
		t.Errorf("inverted heartbeat axis rejected: %v", err)
	}
}

// invThresholdClass is the inverted twin of thresholdClass: it consumes the
// strengthening "timeout" parameter and loses Σ at and below
// invThresholdBoundary, so among the searchable values [1, Max] the
// protocol fails up to the boundary and passes strictly above it — a known
// interior boundary for the inverted bisection (MaxFailing = boundary,
// MinPassing = boundary + 1).
const (
	invThresholdClass    = "frontier-probe-inverted"
	invThresholdBoundary = model.Time(17)
)

func init() {
	fd.DefaultRegistry().Register(invThresholdClass, func(env fd.Env, spec fd.DetectorSpec) (*fd.Suite, error) {
		suite, err := fd.Build(env.Pattern, env.Clock, fd.DetectorSpec{})
		if err != nil {
			return nil, err
		}
		if spec.HeartbeatTimeout <= invThresholdBoundary {
			suite.Sigma = nil
		}
		return suite, nil
	}, "timeout")
}

// TestFrontierInvertedAxis: a strengthening axis is searched over [1, Max]
// for the smallest passing value, and the bracket comes back in
// MinPassing/MaxFailing.
func TestFrontierInvertedAxis(t *testing.T) {
	base := scenario.New(4).Config()
	bounds, err := Frontier(context.Background(), base, scenario.Consensus{}, []Axis{
		{Spec: fd.DetectorSpec{Class: invThresholdClass}, Param: "timeout", Max: 200},
	}, nil)
	if err != nil {
		t.Fatalf("frontier: %v", err)
	}
	b := bounds[0]
	if !b.Inverted {
		t.Fatalf("axis not marked inverted: %+v", b)
	}
	if b.Unsolvable || b.Censored {
		t.Fatalf("interior inverted boundary misclassified: %+v", b)
	}
	if b.MaxFailing != invThresholdBoundary || b.MinPassing != invThresholdBoundary+1 {
		t.Fatalf("boundary = [%d, %d), want [%d, %d)", b.MaxFailing, b.MinPassing, invThresholdBoundary, invThresholdBoundary+1)
	}
	if b.Probes > 12 {
		t.Fatalf("binary search spent %d probes on a 1..200 axis", b.Probes)
	}
}

// TestFrontierResume: a search interrupted after every run and restarted
// from its checkpointed state reports the same boundaries as an
// uninterrupted one, without redoing completed probes.
func TestFrontierResume(t *testing.T) {
	base := scenario.New(4).Config()
	axes := []Axis{
		{Spec: fd.DetectorSpec{Class: thresholdClass}, Param: "suspect", Max: 200},
		{Spec: fd.DetectorSpec{Class: invThresholdClass}, Param: "timeout", Max: 200},
	}
	seeds := []int64{3, 4}
	want, err := Frontier(context.Background(), base, scenario.Consensus{}, axes, seeds)
	if err != nil {
		t.Fatalf("reference frontier: %v", err)
	}

	// Drive the search run-by-run: cancel after each checkpoint, reload
	// the serialized snapshot, resume.
	var snapshot []byte
	stopAfterCheckpoint := fmt.Errorf("stop")
	for step := 0; ; step++ {
		if step > 10000 {
			t.Fatal("resume loop did not converge")
		}
		var state *FrontierState
		if snapshot != nil {
			state, err = LoadFrontierState(snapshot)
			if err != nil {
				t.Fatalf("step %d: load state: %v", step, err)
			}
		}
		got, err := FrontierResume(context.Background(), base, scenario.Consensus{}, axes, seeds, state, func(st *FrontierState) error {
			data, err := st.Marshal()
			if err != nil {
				return err
			}
			snapshot = data
			return stopAfterCheckpoint
		})
		if err == nil {
			if len(got) != len(want) {
				t.Fatalf("resumed frontier returned %d boundaries, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("resumed boundary %d diverged:\n%+v\n%+v", i, got[i], want[i])
				}
			}
			return
		}
		if !strings.Contains(err.Error(), stopAfterCheckpoint.Error()) {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestFrontierStateRejectsMismatch: resuming against different inputs or a
// future schema version is refused, not silently replayed.
func TestFrontierStateRejectsMismatch(t *testing.T) {
	base := scenario.New(4).Config()
	axes := []Axis{{Spec: fd.DetectorSpec{Class: thresholdClass}, Param: "suspect", Max: 200}}
	state := &FrontierState{SchemaVersion: FrontierStateVersion, Fingerprint: "frontier{something-else}"}
	_, err := FrontierResume(context.Background(), base, scenario.Consensus{}, axes, nil, state, nil)
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("mismatched state accepted: %v", err)
	}
	if _, err := LoadFrontierState([]byte(`{"schema_version": 99}`)); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future-versioned state accepted: %v", err)
	}
}

// TestFrontierDeterministic: the search is a pure function of its inputs.
func TestFrontierDeterministic(t *testing.T) {
	base := scenario.New(4).Config()
	axes := []Axis{{Spec: fd.DetectorSpec{Class: thresholdClass}, Param: "suspect", Max: 200}}
	a, err := Frontier(context.Background(), base, scenario.Consensus{}, axes, []int64{3, 4})
	if err != nil {
		t.Fatalf("frontier: %v", err)
	}
	b, err := Frontier(context.Background(), base, scenario.Consensus{}, axes, []int64{3, 4})
	if err != nil {
		t.Fatalf("second frontier: %v", err)
	}
	if a[0] != b[0] {
		t.Fatalf("frontier diverged:\n%+v\n%+v", a[0], b[0])
	}
}
