// Package explore is the coverage-guided exploration subsystem: a
// fuzzer-style loop over the schedule space that replaces blind grids with
// feedback. The paper's claims are boundary claims — Ω+Σ is exactly enough
// for consensus, Ψ for NBAC — so the valuable runs sit on the edge of
// solvability, which uniform grids mostly miss; this package spends its run
// budget where behaviour is changing instead.
//
// The loop keeps a Corpus of configurations that each exhibited a behaviour
// class not seen before (novelty judged by SignatureOf, a lossy abstraction
// of Result.Fingerprint plus an outcome-shape signature), mutates corpus
// members with a deterministic seeded Mutator set, and spends more picks on
// entries whose children keep being novel (the energy schedule). Failing
// configurations are deduplicated by signature and fed through
// scenario.Minimize, so the output is a set of minimal reproducers, not a
// pile of noisy failures.
//
// Determinism is a hard contract: one exploration is a pure function of
// Options.Seed. Runs execute worker-parallel within a generation, but
// planning and corpus updates happen sequentially in generation order, and
// all randomness flows from one splitmix64 stream — the report's Canonical
// rendering is byte-identical across repeated invocations.
//
// Frontier (frontier.go) is the second search mode on the same probing
// machinery: instead of exploring outward it bisects one detector-quality
// axis to locate the measured solvability boundary per class.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/scenario"
)

// Options configures one exploration.
type Options struct {
	// Seed is the master seed: the entire exploration (mutation choices,
	// energy evolution, corpus growth) is a pure function of it.
	Seed int64
	// Runs is the exploration's run budget (exploration runs only; the
	// minimisation phase is budgeted separately and reported as
	// MinimizeCandidates). Required.
	Runs int
	// Wall optionally bounds the exploration in wall-clock time; the budget
	// check runs between generations. 0 = no wall bound. A wall-bounded
	// exploration is NOT reproducible (the cut point depends on machine
	// speed); leave it 0 where determinism matters.
	Wall time.Duration
	// Batch is the generation size: how many mutated configs are planned
	// (sequentially, deterministically) and then run (worker-parallel)
	// before feedback is folded back into the corpus. Default 16.
	Batch int
	// Workers bounds the concurrent runs within a generation; 0 means
	// GOMAXPROCS.
	Workers int
	// Proto is the protocol under exploration. Required.
	Proto scenario.Protocol
	// Base is the exploration's starting configuration (and first corpus
	// entry). Required: use scenario.New(n, opts...).Config().
	Base scenario.Config
	// Mutators is the perturbation set; nil means DefaultMutators(Classes).
	Mutators []Mutator
	// Classes is the detector-class alphabet the default detector-class
	// mutator swaps between; ignored when Mutators is set explicitly.
	Classes []fd.DetectorSpec
	// MinimizeLimit caps how many distinct failure signatures are fed
	// through scenario.Minimize after the exploration (in discovery order).
	// 0 means 3; negative disables minimisation.
	MinimizeLimit int
	// SeedCorpus, if non-nil, preloads a previously serialized corpus
	// before the loop starts: its entries (with their energies), behaviour
	// set and failure dedup set are restored without consuming any run
	// budget, and the budget is spent mutating outward from them — the
	// cross-generation handoff of a campaign. The seeded entries reappear
	// in the report's corpus (in their stored order, ahead of new
	// discoveries), so -corpus-out always carries the full state forward.
	SeedCorpus *CorpusState
	// DepthSignal mixes the log-bucketed suspect-history depth into the
	// novelty signature. It is a real behaviour signal but a
	// scheduling-dependent one, so switching it on trades byte-for-byte
	// reproducibility for sensitivity.
	DepthSignal bool
	// TraceSignal mixes the step scheduler's bucketed trace shape (events,
	// messages, grants up to the trace boundary) into the novelty signature.
	// Unlike DepthSignal it stays on the reproducible side of the contract:
	// the counters are part of the pinned schedule, so explorations remain
	// byte-identical per seed with it on. Runs without a pinned trace (the
	// free-running ablation, timeout-tainted runs) share one "~" territory.
	TraceSignal bool
	// OnRun, if non-nil, streams every executed run as it completes (run is
	// the 1-based run index within the budget). Called concurrently from
	// worker goroutines.
	OnRun func(run int, res *scenario.Result)
}

// Entry is one corpus member: a configuration that exhibited a novel
// behaviour signature, plus its provenance and energy-schedule state.
type Entry struct {
	// Signature is the behaviour class this entry discovered.
	Signature string `json:"signature"`
	// Config is the configuration that exhibited it.
	Config scenario.Config `json:"config"`
	// Parent is the corpus index this entry was mutated from (-1 for the
	// base config), and Mutator the mutator that produced it.
	Parent  int    `json:"parent"`
	Mutator string `json:"mutator"`
	// FoundAtRun is the 1-based run index that discovered it.
	FoundAtRun int `json:"found_at_run"`
	// Failing records whether the discovering run violated its spec.
	Failing bool `json:"failing,omitempty"`
	// Picks counts how often the entry was chosen as a mutation parent;
	// Children counts how many of its mutants were themselves novel.
	Picks    int `json:"picks"`
	Children int `json:"children"`
	// Energy is the entry's current selection weight — serialized with the
	// corpus so a resumed exploration keeps its heat distribution.
	Energy float64 `json:"energy"`
}

// The energy schedule: an entry that exhibited a behaviour class never seen
// before (BehaviourOf) enters the corpus hot — behaviour changes cluster, so
// the edge where behaviour last moved is where the next discovery most
// likely neighbours — while an entry that merely opened new configuration
// territory with familiar behaviour enters at base energy. A novel child
// also re-heats its parent (capped); every duplicate child cools the parent
// (floored, so no entry starves entirely). The corpus therefore concentrates
// picks where behaviour is changing instead of spreading them uniformly —
// which is the entire advantage over a uniform grid.
const (
	baseEnergy      = 1.0
	hotEnergy       = 4.0
	energyReward    = 0.75
	energyCap       = 4.0
	energyDecay     = 0.9
	energyFloor     = 0.15
	planAttempts    = 16 // mutation re-rolls per planned run before accepting a duplicate
	defaultBatch    = 16
	defaultMinimize = 3
)

// Failure is one deduplicated failing behaviour class found during
// exploration: the first run that exhibited it, with its full violation
// list and fingerprint.
type Failure struct {
	Signature   string          `json:"signature"`
	Run         int             `json:"run"`
	Violations  []string        `json:"violations"`
	Fingerprint string          `json:"fingerprint"`
	Config      scenario.Config `json:"config"`
}

// MinimizedFailure is a delta-debugged reproducer of one found failure.
type MinimizedFailure struct {
	FromSignature string          `json:"from_signature"`
	FromRun       int             `json:"from_run"`
	Candidates    int             `json:"candidates"`
	Violations    []string        `json:"violations"`
	Fingerprint   string          `json:"fingerprint"`
	Config        scenario.Config `json:"config"`
}

// MutatorStat is one mutator's share of the exploration.
type MutatorStat struct {
	Name string `json:"name"`
	// Applied counts executed runs planned through this mutator; Novel
	// counts how many of them discovered a new signature.
	Applied int `json:"applied"`
	Novel   int `json:"novel"`
}

// Explore runs the coverage-guided loop and returns its report. It returns
// an error only for invalid options; a cancelled context ends the
// exploration early with the partial report (Cancelled counts the runs the
// cancellation swallowed).
func Explore(ctx context.Context, opts Options) (*Report, error) {
	if opts.Proto == nil {
		return nil, fmt.Errorf("explore: Options.Proto is required")
	}
	if opts.Base.N <= 0 {
		return nil, fmt.Errorf("explore: Options.Base is required (N = %d)", opts.Base.N)
	}
	if opts.Runs <= 0 {
		return nil, fmt.Errorf("explore: Options.Runs must be positive, got %d", opts.Runs)
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = defaultBatch
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	muts := opts.Mutators
	if muts == nil {
		muts = DefaultMutators(opts.Classes)
	}
	if len(muts) == 0 {
		return nil, fmt.Errorf("explore: no mutators")
	}
	minimize := opts.MinimizeLimit
	if minimize == 0 {
		minimize = defaultMinimize
	}

	start := time.Now()
	rng := newRand(opts.Seed)
	rep := &Report{
		Seed:   opts.Seed,
		Proto:  opts.Proto.Name(),
		N:      opts.Base.N,
		Budget: opts.Runs,
	}
	var (
		corpus     []*Entry
		sigIndex   = map[string]int{}  // signature -> corpus index
		behaviours = map[string]bool{} // behaviour parts already seen
		tried      = map[string]bool{} // config keys already planned
		failures   []*Failure
		failSigs   = map[string]bool{}
	)
	if opts.SeedCorpus != nil {
		for i := range opts.SeedCorpus.Entries {
			e := opts.SeedCorpus.Entries[i] // copy
			if _, dup := sigIndex[e.Signature]; dup {
				continue
			}
			if e.Energy <= 0 {
				e.Energy = baseEnergy
			}
			sigIndex[e.Signature] = len(corpus)
			corpus = append(corpus, &e)
			tried[e.Config.Key()] = true
		}
		for _, b := range opts.SeedCorpus.Behaviours {
			behaviours[b] = true
		}
		for _, s := range opts.SeedCorpus.FailureSigs {
			failSigs[s] = true
		}
	}
	mutStats := map[string]*MutatorStat{}
	statOf := func(name string) *MutatorStat {
		s, ok := mutStats[name]
		if !ok {
			s = &MutatorStat{Name: name}
			mutStats[name] = s
			rep.Mutators = append(rep.Mutators, s)
		}
		return s
	}

	// plan chooses one generation of configurations: parents by energy,
	// mutators by weight, each re-rolled until the resulting config has not
	// been planned before (or attempts run out — a duplicate config still
	// burns budget honestly rather than stalling the loop).
	type job struct {
		cfg     scenario.Config
		parent  int
		mutator string
	}
	mutWeights := make([]float64, len(muts))
	for i, m := range muts {
		mutWeights[i] = m.weight()
	}
	plan := func(size int) []job {
		if len(corpus) == 0 {
			// Generation zero: the base configuration itself.
			cfg := opts.Base.Clone()
			tried[cfg.Key()] = true
			return []job{{cfg: cfg, parent: -1, mutator: "base"}}
		}
		energies := make([]float64, len(corpus))
		jobs := make([]job, 0, size)
		for len(jobs) < size {
			for i, e := range corpus {
				energies[i] = e.Energy
			}
			parent := rng.Pick(energies)
			j := job{parent: parent}
			for attempt := 0; attempt < planAttempts; attempt++ {
				mi := rng.Pick(mutWeights)
				cfg := corpus[parent].Config.Clone()
				if !muts[mi].Apply(rng, &cfg) {
					continue
				}
				j.cfg, j.mutator = cfg, muts[mi].Name
				if !tried[cfg.Key()] {
					break
				}
			}
			if j.mutator == "" {
				continue // nothing applicable from this parent; re-pick
			}
			tried[j.cfg.Key()] = true
			corpus[parent].Picks++
			jobs = append(jobs, j)
		}
		return jobs
	}

	deadline := time.Time{}
	if opts.Wall > 0 {
		deadline = start.Add(opts.Wall)
	}

	for rep.Runs+rep.Cancelled < opts.Runs && ctx.Err() == nil {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		jobs := plan(min(batch, opts.Runs-rep.Runs-rep.Cancelled))

		// Execute the generation worker-parallel; results land by index so
		// the feedback pass below is order-deterministic.
		results := make([]scenario.Result, len(jobs))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range jobs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cfg := jobs[i].cfg
				// Trace-signal explorations run every config with the probe
				// analyzer attached, so traceShape can fold probe statistics
				// into the signature. Observe-only and excluded from
				// Config.Key, so corpus and tried-set identity are unchanged.
				cfg.Probes = cfg.Probes || opts.TraceSignal
				results[i] = scenario.FromConfig(cfg).Run(ctx, opts.Proto)
				if opts.OnRun != nil {
					opts.OnRun(rep.Runs+rep.Cancelled+i+1, &results[i])
				}
			}(i)
		}
		wg.Wait()

		// Feedback, sequentially in generation order.
		for i := range jobs {
			res := &results[i]
			if !res.Verdict.OK && ctx.Err() != nil {
				// In flight at cancellation: the failure is the cancellation
				// echoing through the run's timeout backstop, not a
				// discovery — same classification Sweep draws.
				rep.Cancelled++
				continue
			}
			rep.Runs++
			run := rep.Runs + rep.Cancelled
			stat := statOf(jobs[i].mutator)
			stat.Applied++
			sig := SignatureOf(res, opts.DepthSignal, opts.TraceSignal)
			if _, seen := sigIndex[sig]; !seen {
				sigIndex[sig] = len(corpus)
				energy := baseEnergy
				if behaviour := BehaviourOf(res); !behaviours[behaviour] {
					behaviours[behaviour] = true
					energy = hotEnergy
				}
				corpus = append(corpus, &Entry{
					Signature:  sig,
					Config:     res.Config,
					Parent:     jobs[i].parent,
					Mutator:    jobs[i].mutator,
					FoundAtRun: run,
					Failing:    !res.Verdict.OK,
					Energy:     energy,
				})
				stat.Novel++
				if p := jobs[i].parent; p >= 0 {
					corpus[p].Children++
					corpus[p].Energy = min(energyCap, corpus[p].Energy+energyReward)
				}
			} else {
				rep.Duplicates++
				if p := jobs[i].parent; p >= 0 {
					corpus[p].Energy = max(energyFloor, corpus[p].Energy*energyDecay)
				}
			}
			if !res.Verdict.OK {
				if rep.FirstFailureRun == 0 {
					rep.FirstFailureRun = run
				}
				if !failSigs[sig] {
					failSigs[sig] = true
					failures = append(failures, &Failure{
						Signature:   sig,
						Run:         run,
						Violations:  res.Verdict.Violations,
						Fingerprint: res.Fingerprint(),
						Config:      res.Config,
					})
				}
			}
		}
	}
	if ctx.Err() != nil {
		// Budget never handed out counts as cancelled too; runs skipped by
		// an expired wall budget, by contrast, simply were not part of this
		// exploration.
		rep.Cancelled += opts.Runs - rep.Runs - rep.Cancelled
	}

	// Minimisation: the found failures, deduplicated by signature during
	// the loop, shrink to minimal reproducers — deduplicated again by
	// minimal fingerprint, since distinct signatures often share one root
	// cause.
	if minimize > 0 {
		seen := map[string]bool{}
		for i, f := range failures {
			if i >= minimize || ctx.Err() != nil {
				break
			}
			minRes, err := scenario.Minimize(ctx, f.Config, opts.Proto)
			rep.MinimizeCandidates += minRes.Candidates
			if err != nil {
				continue
			}
			if seen[minRes.Fingerprint] {
				continue
			}
			seen[minRes.Fingerprint] = true
			rep.Minimized = append(rep.Minimized, MinimizedFailure{
				FromSignature: f.Signature,
				FromRun:       f.Run,
				Candidates:    minRes.Candidates,
				Violations:    minRes.Result.Verdict.Violations,
				Fingerprint:   minRes.Fingerprint,
				Config:        minRes.Config,
			})
		}
	}

	for _, e := range corpus {
		rep.Corpus = append(rep.Corpus, *e)
	}
	for _, f := range failures {
		rep.Failures = append(rep.Failures, *f)
	}
	rep.Novel = len(corpus)
	rep.Behaviours = sortedKeys(behaviours)
	rep.FailureSigs = sortedKeys(failSigs)
	rep.Elapsed = time.Since(start)
	if rep.Runs > 0 && rep.Elapsed > 0 {
		rep.RunsPerSec = float64(rep.Runs) / rep.Elapsed.Seconds()
	}
	return rep, nil
}
