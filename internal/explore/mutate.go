package explore

import (
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/scenario"
)

// Mutator is one deterministic perturbation of a scenario configuration.
// Apply mutates cfg in place using draws from r and reports whether it was
// applicable (a crash-removal mutator on a crash-free config is not); an
// inapplicable or no-op application is re-rolled by the engine, so Apply
// should return false rather than leave cfg unchanged.
type Mutator struct {
	// Name labels the mutator in reports and per-mutator statistics.
	Name string
	// Weight is the relative selection weight (0 counts as 1).
	Weight float64
	// Apply perturbs cfg, drawing randomness only from r.
	Apply func(r *Rand, cfg *scenario.Config) bool
}

// weight returns the effective selection weight.
func (m Mutator) weight() float64 {
	if m.Weight <= 0 {
		return 1
	}
	return m.Weight
}

// Mutation bounds: crash times and delay ranges are drawn on the quantum
// lattice within these limits, detector ticks from {0, 25, .., maxTicks}.
// They bound the *mutation alphabet*, not the schedule space — a frontier
// search is the tool for pushing a single axis far out.
//
// Crash times draw from the full [0, maxCrashAt] window, which at 5ms spans
// several message round-trips at the mutated delay floor — deliberately
// covering the decision moments of the protocols under test. Under the
// goroutine-step scheduler a crash racing a decision is an ordinary (time,
// seq)-ordered event against a deterministic grant schedule, so even those
// runs are a pure function of the seed. (An earlier alphabet capped crashes
// at 500µs to keep them clear of decision moments, which the free-running
// runtime could not order reproducibly; the step scheduler lifted that
// restriction.)
const (
	maxCrashAt    = 5 * time.Millisecond
	delayFloor    = time.Millisecond
	maxDelayExtra = time.Millisecond     // mutated delay floor: [1ms, 2ms]
	maxDelaySpan  = 4 * time.Millisecond // mutated delay width above the floor
	maxTicks      = model.Time(200)
)

// DefaultMutators is the standard perturbation set over the given
// detector-class alphabet: seed churn, crash-schedule edits (add, drop,
// retime, retarget), delay-range redraws, detector-class swaps, and
// detector-quality perturbation along the parameters the current class
// actually consumes (per fd.Registry.Params — perturbing a parameter a
// class ignores would mint spurious novelty). A drop-rate mutator joins
// only for safety-only configs, where lost liveness is not a spurious
// failure.
func DefaultMutators(classes []fd.DetectorSpec) []Mutator {
	muts := []Mutator{
		{Name: "seed", Weight: 0.5, Apply: func(r *Rand, cfg *scenario.Config) bool {
			cfg.Seed = int64(r.Intn(1 << 30))
			return true
		}},
		{Name: "crash-add", Weight: 2, Apply: func(r *Rand, cfg *scenario.Config) bool {
			if len(cfg.Crashes) >= cfg.N-1 {
				return false // keep at least one process alive
			}
			p, ok := freeProcess(r, cfg)
			if !ok {
				return false
			}
			cfg.Crashes = append(cfg.Crashes, scenario.Crash{P: p, At: r.Quantized(maxCrashAt)})
			return true
		}},
		{Name: "crash-drop", Weight: 0.5, Apply: func(r *Rand, cfg *scenario.Config) bool {
			if len(cfg.Crashes) == 0 {
				return false
			}
			i := r.Intn(len(cfg.Crashes))
			cfg.Crashes = append(cfg.Crashes[:i], cfg.Crashes[i+1:]...)
			return true
		}},
		{Name: "crash-time", Apply: func(r *Rand, cfg *scenario.Config) bool {
			if len(cfg.Crashes) == 0 {
				return false
			}
			i := r.Intn(len(cfg.Crashes))
			cfg.Crashes[i].At = r.Quantized(maxCrashAt)
			return true
		}},
		{Name: "crash-proc", Apply: func(r *Rand, cfg *scenario.Config) bool {
			if len(cfg.Crashes) == 0 {
				return false
			}
			i := r.Intn(len(cfg.Crashes))
			p, ok := freeProcess(r, cfg)
			if !ok {
				return false
			}
			cfg.Crashes[i].P = p
			return true
		}},
		{Name: "delay", Weight: 0.5, Apply: func(r *Rand, cfg *scenario.Config) bool {
			cfg.MinDelay = delayFloor + r.Quantized(maxDelayExtra)
			cfg.MaxDelay = cfg.MinDelay + r.Quantized(maxDelaySpan)
			return true
		}},
		{Name: "detector-param", Weight: 0.5, Apply: func(r *Rand, cfg *scenario.Config) bool {
			keys := fd.DefaultRegistry().Params(cfg.Detector.Class)
			if len(keys) == 0 {
				return false
			}
			p, ok := cfg.Detector.Param(keys[r.Intn(len(keys))])
			if !ok {
				return false
			}
			v := r.Ticks(maxTicks)
			if v == *p {
				return false
			}
			*p = v
			return true
		}},
	}
	if len(classes) > 0 {
		muts = append(muts, Mutator{Name: "detector-class", Weight: 2, Apply: func(r *Rand, cfg *scenario.Config) bool {
			next := classes[r.Intn(len(classes))]
			if next == cfg.Detector {
				return false
			}
			cfg.Detector = next
			return true
		}})
	}
	muts = append(muts, Mutator{Name: "drop-rate", Weight: 0.5, Apply: func(r *Rand, cfg *scenario.Config) bool {
		if cfg.RequireTermination {
			return false // a lossy run legitimately loses liveness; only safety-only configs may mutate here
		}
		rates := []float64{0, 0.01, 0.05, 0.1, 0.2}
		v := rates[r.Intn(len(rates))]
		if v == cfg.DropRate {
			return false
		}
		cfg.DropRate = v
		return true
	}})
	return muts
}

// freeProcess draws a process that is not yet in the crash schedule.
func freeProcess(r *Rand, cfg *scenario.Config) (model.ProcessID, bool) {
	scheduled := map[model.ProcessID]bool{}
	for _, c := range cfg.Crashes {
		scheduled[c.P] = true
	}
	free := make([]model.ProcessID, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if !scheduled[model.ProcessID(i)] {
			free = append(free, model.ProcessID(i))
		}
	}
	if len(free) == 0 {
		return 0, false
	}
	return free[r.Intn(len(free))], true
}
