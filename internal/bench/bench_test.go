// Package bench holds the perf benchmarks of the runtime and the protocol
// stack: consensus round-trips, NBAC, register operations and the raw
// delivery path, each at several system sizes and in both scheduler modes.
//
// Run them with
//
//	go test ./internal/bench -bench . -benchmem
//
// and regenerate the committed BENCH_net.json snapshot with
//
//	BENCH_JSON=1 go test ./internal/bench -run EmitBenchJSON -v
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"weakestfd/internal/campaign"
	"weakestfd/internal/cliutil"
	"weakestfd/internal/consensus"
	"weakestfd/internal/explore"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/nbac"
	"weakestfd/internal/net"
	"weakestfd/internal/register"
	"weakestfd/internal/scenario"
)

const benchTimeout = 30 * time.Second

func oracleOmegaSigma(nw *net.Network) (*fd.OracleOmega, *fd.OracleSigma) {
	return &fd.OracleOmega{Pattern: nw.Pattern(), Clock: nw.Clock()},
		&fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
}

// consensusRoundTrip runs one full (Ω, Σ) ballot-consensus instance — network
// setup, n concurrent proposers, all deciding — and returns an error if any
// correct process failed to decide.
func consensusRoundTrip(n int, opts ...net.Option) error {
	ctx, cancel := context.WithTimeout(context.Background(), benchTimeout)
	defer cancel()
	return consensusRoundTripCtx(ctx, n, opts...)
}

// consensusRoundTripCtx is consensusRoundTrip with the watchdog context
// hoisted out, so benchmark loops can build it once per run instead of
// paying the context machinery on every measured iteration.
func consensusRoundTripCtx(ctx context.Context, n int, opts ...net.Option) error {
	nw := net.NewNetwork(n, opts...)
	defer nw.Close()
	omega, sigma := oracleOmegaSigma(nw)
	group := consensus.NewOmegaSigmaGroup(nw, "bench", omega, sigma)
	defer group.Stop()

	errs := make(chan error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	// One slab of proposer states, spawned as `go ps[i].run()`: the goroutine
	// wrapper captures only the receiver pointer, so the harness costs one
	// allocation per proposer instead of one closure plus boxed loop index.
	// At n in the hundreds the harness would otherwise dominate the very
	// steady-state numbers this benchmark exists to pin down.
	ps := make([]proposer, n)
	for i := range ps {
		ps[i] = proposer{c: group[i], ctx: ctx, val: i, errs: errs, wg: &wg}
		go ps[i].run()
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// proposer is one benchmark participant: a BallotConsensus plus the arguments
// of its Propose call, runnable as a goroutine method.
type proposer struct {
	c    *consensus.BallotConsensus
	ctx  context.Context
	val  int
	errs chan error
	wg   *sync.WaitGroup
}

func (p *proposer) run() {
	defer p.wg.Done()
	if _, err := p.c.Propose(p.ctx, p.val); err != nil {
		p.errs <- err
	}
}

func benchConsensus(b *testing.B, n int, opts ...net.Option) {
	b.ReportAllocs()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	for i := 0; i < b.N; i++ {
		if err := consensusRoundTripCtx(ctx, n, opts...); err != nil {
			b.Fatalf("consensus: %v", err)
		}
	}
}

func BenchmarkConsensus(b *testing.B) {
	// The virtual series runs under the step scheduler — the default mode, so
	// these are the numbers the deterministic-trace contract actually costs.
	for _, n := range []int{3, 10, 50, 200} {
		b.Run(fmt.Sprintf("virtual/n=%d", n), func(b *testing.B) {
			benchConsensus(b, n, net.WithSeed(1))
		})
	}
	// The free-running ablation: same protocol, no grant handshake — goroutines
	// race freely and the channel-timer backpressure heuristics pace virtual
	// time. The gap between this and the step series is the price of full-trace
	// reproducibility.
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("freerunning/n=%d", n), func(b *testing.B) {
			benchConsensus(b, n, net.WithSeed(1), net.WithFreeRunning())
		})
	}
	// The wall-clock-fidelity path the virtual-time scheduler replaced: same
	// protocol, same [0, 200µs] delay range, but the delays are waited out.
	b.Run("realtime/n=10", func(b *testing.B) {
		benchConsensus(b, 10, net.WithSeed(1), net.WithRealTime())
	})
}

func nbacRoundTrip(n int, opts ...net.Option) error {
	nw := net.NewNetwork(n, opts...)
	defer nw.Close()
	psi := &fd.OraclePsi{Pattern: nw.Pattern(), Clock: nw.Clock(), SwitchAfter: 0, Policy: fd.PreferFSOnFailure}
	fs := &fd.OracleFS{Pattern: nw.Pattern(), Clock: nw.Clock()}
	group := nbac.NewPsiFSGroup(nw, "bench", psi, fs)
	defer group.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), benchTimeout)
	defer cancel()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := group.Participants[i].Vote(ctx, nbac.VoteYes); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

func BenchmarkNBAC(b *testing.B) {
	for _, n := range []int{3, 10} {
		b.Run(fmt.Sprintf("virtual/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := nbacRoundTrip(n, net.WithSeed(1)); err != nil {
					b.Fatalf("nbac: %v", err)
				}
			}
		})
	}
}

// BenchmarkRegisterOps measures one ABD write plus one read per iteration on
// a long-lived Σ-based register group.
func BenchmarkRegisterOps(b *testing.B) {
	for _, n := range []int{3, 10, 50} {
		b.Run(fmt.Sprintf("virtual/n=%d", n), func(b *testing.B) {
			nw := net.NewNetwork(n, net.WithSeed(1))
			defer nw.Close()
			_, sigma := oracleOmegaSigma(nw)
			group := register.NewSigmaGroup[int](nw, "bench", sigma)
			defer group.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), benchTimeout)
			defer cancel()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := group[0].Write(ctx, i); err != nil {
					b.Fatalf("write: %v", err)
				}
				if _, err := group[1%n].Read(ctx); err != nil {
					b.Fatalf("read: %v", err)
				}
			}
		})
	}
}

// sweepProto is the benchmark's protocol: (Ω, Σ) ballot consensus with
// poll/backoff scaled to the injected delays, so waiting stays event-driven.
func sweepProto() scenario.Protocol {
	return scenario.Consensus{Options: []consensus.Option{
		consensus.WithPollInterval(10 * time.Millisecond),
		consensus.WithBackoff(20 * time.Millisecond),
	}}
}

// sweepCrashSets is the rotating fault-schedule family of the scenario
// benchmarks: crash-free, a mid-run follower crash, and a mid-ballot crash
// of the initial leader.
var sweepCrashSets = [][]scenario.Crash{
	nil,
	{{P: 4, At: 5 * time.Millisecond}},
	{{P: 0, At: 8 * time.Millisecond}},
}

// BenchmarkScenarioRun measures one full scenario cycle: stand up a
// 5-process cluster, run (Ω, Σ) consensus under a 1–50ms adversarial delay
// distribution plus a rotating crash schedule, check the consensus spec and
// tear the cluster down. The injected delays would cost ~100ms wall-clock
// per run if anything waited them out.
func BenchmarkScenarioRun(b *testing.B) {
	ctx := context.Background()
	proto := sweepProto()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := scenario.New(5,
			scenario.WithSeed(int64(i+1)),
			scenario.WithDelays(time.Millisecond, 50*time.Millisecond),
			scenario.WithCrashes(sweepCrashSets[i%len(sweepCrashSets)]...),
		)
		if res := s.Run(ctx, proto); !res.Verdict.OK {
			b.Fatalf("run %d: %v", i, res.Verdict)
		}
	}
}

// benchScenarioConsensus is one scenario-harness consensus run per
// iteration. Unlike benchConsensus's raw networks, the harness arms the
// trace group, so the step scheduler's digest — and, with WithJournal, the
// journal recorder — is live: the baseline/journaled pair isolates exactly
// the cost of capturing the record stream at emit time.
func benchScenarioConsensus(b *testing.B, n int, opts ...scenario.Option) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := scenario.New(n, append([]scenario.Option{scenario.WithSeed(int64(i + 1))}, opts...)...)
		if res := s.Run(ctx, scenario.Consensus{}); !res.Verdict.OK {
			b.Fatalf("run %d: %v", i, res.Verdict)
		}
	}
}

// BenchmarkConsensusJournaled prices the trace journal: the same traced
// scenario run with and without the journal recorder attached. The
// committed consensus_n10_journal_overhead datapoint is the n=10 ratio.
func BenchmarkConsensusJournaled(b *testing.B) {
	for _, n := range []int{10, 50} {
		n := n
		b.Run(fmt.Sprintf("baseline/n=%d", n), func(b *testing.B) {
			benchScenarioConsensus(b, n)
		})
		b.Run(fmt.Sprintf("journaled/n=%d", n), func(b *testing.B) {
			benchScenarioConsensus(b, n, scenario.WithJournal(scenario.JournalAll))
		})
	}
}

// BenchmarkConsensusProbed prices the streaming probe analyzer: the same
// traced scenario run with and without the probe fold riding the recorder
// tee. The committed consensus_n10_probe_overhead datapoint is the n=10
// probed/baseline ratio (the baseline is the ConsensusJournaled one).
func BenchmarkConsensusProbed(b *testing.B) {
	for _, n := range []int{10, 50} {
		n := n
		b.Run(fmt.Sprintf("baseline/n=%d", n), func(b *testing.B) {
			benchScenarioConsensus(b, n)
		})
		b.Run(fmt.Sprintf("probed/n=%d", n), func(b *testing.B) {
			benchScenarioConsensus(b, n, scenario.WithProbes())
		})
	}
}

// multiConsensusRounds is the instance count of the amortised workload
// benchmark: one cluster stood up, multiConsensusRounds back-to-back
// consensus instances run on it.
const multiConsensusRounds = 16

// benchMultiConsensus is the amortised-workload loop shared by the named
// benchmark and the snapshot emitter (the emitter's testing.Benchmark needs
// the loop directly, without a b.Run wrapper): network, oracles and
// participants are stood up once per iteration and reused across every
// round, so ns/op ÷ rounds approaches the protocol's own round-trip cost
// instead of being dominated by cluster setup.
func benchMultiConsensus(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := scenario.New(5, scenario.WithSeed(int64(i+1))).Run(ctx, scenario.MultiConsensus{Rounds: multiConsensusRounds})
		if !res.Verdict.OK {
			b.Fatalf("run %d: %v", i, res.Verdict)
		}
	}
}

func BenchmarkMultiConsensus(b *testing.B) {
	b.Run(fmt.Sprintf("virtual/n=5/rounds=%d", multiConsensusRounds), benchMultiConsensus)
}

// sweepThroughput runs one fixed-size scenario.Sweep at system size n and
// returns it, for the committed runs-per-second data points (includes the
// sweep's own fan-out machinery, unlike BenchmarkScenarioRun). The emitter
// runs it twice: the historical n=5 series and an n=100 point that exercises
// the batched-broadcast delivery path at cluster scale.
func sweepThroughput(n, runs int) scenario.SweepResult {
	base := scenario.New(n, scenario.WithDelays(time.Millisecond, 50*time.Millisecond))
	seeds := make([]int64, runs/len(sweepCrashSets))
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return scenario.Sweep(context.Background(), base, scenario.Grid{Seeds: seeds, Crashes: sweepCrashSets}, sweepProto())
}

// exploreThroughput runs one fixed-budget coverage-guided exploration, for
// the committed explore_runs_per_sec data point: the full feedback loop
// (signatures, corpus, energy, mutation planning) on top of the per-run
// cost. The alphabet holds only the classes that solve consensus under
// arbitrary crash schedules (oracle Σ and P's accurate complement both
// route around any number of crashes), so no run waits out a
// non-termination timeout — the metric measures engine throughput, not
// wall-clock backstops; the ◇ classes' failure-finding lives in
// internal/explore's own tests.
func exploreThroughput(runs int) (*explore.Report, error) {
	return explore.Explore(context.Background(), explore.Options{
		Seed:  1,
		Runs:  runs,
		Proto: scenario.Consensus{},
		Base: scenario.New(5,
			scenario.WithDelays(time.Millisecond, 3*time.Millisecond),
			scenario.WithTimeout(2*time.Second),
		).Config(),
		Classes: []fd.DetectorSpec{
			{Class: fd.ClassOmegaSigma},
			{Class: fd.ClassPerfect},
		},
		MinimizeLimit: -1,
	})
}

// campaignMergeThroughput measures cmd/campaign's aggregation path: folding
// explore unit reports (each carrying a real exploration's corpus, behaviour
// set and failure table) into one campaign report. The units are
// differently-seeded copies of one real exploration — the same shape a
// many-shard campaign hands the merger — so the metric covers fingerprint
// checks, corpus union with canonical-encoding collision resolution and the
// count re-assertions, per report folded.
func campaignMergeThroughput(units int) (float64, error) {
	rep, err := exploreThroughput(128)
	if err != nil {
		return 0, err
	}
	var unit cliutil.ExploreReport
	unit.FromExplore(rep)
	unit.SpaceFingerprint = "bench"
	inputs := make([]campaign.Input, units)
	for i := range inputs {
		r := unit
		r.Seed = int64(i + 1)
		inputs[i] = campaign.Input{Name: fmt.Sprintf("unit-%d", i), Explore: &r}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := campaign.MergeReports(inputs); err != nil {
				b.Fatalf("merge: %v", err)
			}
		}
	})
	return float64(units) / (float64(res.NsPerOp()) / 1e9), nil
}

// constOmega is a constant Ω source: the cheapest possible Source[V], so a
// benchmark over it isolates the generic Bind[V] query path itself (process
// binding, nil-history check, interface dispatch).
type constOmega struct{}

func (constOmega) At(model.ProcessID) model.ProcessID { return 0 }

// bindSink keeps the benchmarked samples observable so the loop is not
// eliminated.
var bindSink model.ProcessID

// BenchmarkBindSample measures the generic Bind[V] query path through the
// Detector[V] interface — the per-query overhead every protocol pays on top
// of its source. It must stay 0 allocs/op: the adapter is a value, the
// history check a nil test, and a ProcessID sample does not escape.
func BenchmarkBindSample(b *testing.B) {
	var det fd.Omega = fd.BindTo[model.ProcessID](1, constOmega{}, net.NewClock())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bindSink = det.Sample()
	}
}

// TestBindSampleZeroAllocs pins the acceptance bar directly (the benchmark
// reports it; this fails the suite if it regresses).
func TestBindSampleZeroAllocs(t *testing.T) {
	var det fd.Omega = fd.BindTo[model.ProcessID](1, constOmega{}, net.NewClock())
	if allocs := testing.AllocsPerRun(1000, func() { bindSink = det.Sample() }); allocs != 0 {
		t.Fatalf("generic Bind query path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkSendDeliver measures the raw delivery path: one send through the
// event queue into a drained mailbox per iteration. With the discrete-event
// scheduler this must not allocate a goroutine (or anything else beyond
// amortised ring/heap growth) per message.
func BenchmarkSendDeliver(b *testing.B) {
	nw := net.NewNetwork(2, net.WithSeed(1))
	defer nw.Close()
	inbox := nw.Endpoint(1).Subscribe("bench")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			<-inbox
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Endpoint(0).Send(1, "bench", "m", nil)
	}
	<-done
}

// ---- committed benchmark snapshot ----

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestEmitBenchJSON regenerates BENCH_net.json at the repo root so the perf
// trajectory has committed data points. Gated behind BENCH_JSON=1 because it
// runs the full benchmark matrix.
func TestEmitBenchJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_net.json")
	}
	var results []benchResult
	add := func(name string, fn func(b *testing.B)) *testing.BenchmarkResult {
		r := testing.Benchmark(fn)
		results = append(results, benchResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		t.Logf("%s: %v", name, r)
		return &r
	}

	for _, n := range []int{3, 10, 50, 200} {
		n := n
		add(fmt.Sprintf("Consensus/virtual/n=%d", n), func(b *testing.B) {
			benchConsensus(b, n, net.WithSeed(1))
		})
	}
	virtual := results[1] // n=10, step mode (the default)
	// The free-running ablation series, mirroring the step-mode sizes above
	// n=3: the committed step_overhead datapoint is step ns/op over
	// free-running ns/op at n=10, with a 3x acceptance ceiling.
	free10 := add("Consensus/freerunning/n=10", func(b *testing.B) {
		benchConsensus(b, 10, net.WithSeed(1), net.WithFreeRunning())
	})
	for _, n := range []int{50, 200} {
		n := n
		add(fmt.Sprintf("Consensus/freerunning/n=%d", n), func(b *testing.B) {
			benchConsensus(b, n, net.WithSeed(1), net.WithFreeRunning())
		})
	}
	real10 := add("Consensus/realtime/n=10", func(b *testing.B) {
		benchConsensus(b, 10, net.WithSeed(1), net.WithRealTime())
	})
	for _, n := range []int{3, 10} {
		n := n
		add(fmt.Sprintf("NBAC/virtual/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := nbacRoundTrip(n, net.WithSeed(1)); err != nil {
					b.Fatalf("nbac: %v", err)
				}
			}
		})
	}
	for _, n := range []int{3, 10, 50} {
		n := n
		add(fmt.Sprintf("RegisterOps/virtual/n=%d", n), func(b *testing.B) {
			nw := net.NewNetwork(n, net.WithSeed(1))
			defer nw.Close()
			_, sigma := oracleOmegaSigma(nw)
			group := register.NewSigmaGroup[int](nw, "bench", sigma)
			defer group.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), benchTimeout)
			defer cancel()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := group[0].Write(ctx, i); err != nil {
					b.Fatalf("write: %v", err)
				}
				if _, err := group[1%n].Read(ctx); err != nil {
					b.Fatalf("read: %v", err)
				}
			}
		})
	}
	add("ScenarioRun/consensus/n=5", BenchmarkScenarioRun)
	// The journal capture overhead: the same traced scenario run with and
	// without the journal recorder. The committed datapoint is the n=10
	// ratio, with an emit-time acceptance ceiling — capture appends one
	// struct per record on the already-serialized recorder path, so anything
	// past 1.5x means the hook grew real work.
	jBase10 := add("ConsensusJournaled/baseline/n=10", func(b *testing.B) {
		benchScenarioConsensus(b, 10)
	})
	jFull10 := add("ConsensusJournaled/journaled/n=10", func(b *testing.B) {
		benchScenarioConsensus(b, 10, scenario.WithJournal(scenario.JournalAll))
	})
	add("ConsensusJournaled/baseline/n=50", func(b *testing.B) {
		benchScenarioConsensus(b, 50)
	})
	add("ConsensusJournaled/journaled/n=50", func(b *testing.B) {
		benchScenarioConsensus(b, 50, scenario.WithJournal(scenario.JournalAll))
	})
	journalOverhead := float64(jFull10.NsPerOp()) / float64(jBase10.NsPerOp())
	// The probe fold overhead against the same baseline: the analyzer does
	// integer bucketing per record on the serialized recorder path, cheaper
	// than the journal's per-record struct capture, so its ceiling is
	// tighter.
	pFull10 := add("ConsensusProbed/probed/n=10", func(b *testing.B) {
		benchScenarioConsensus(b, 10, scenario.WithProbes())
	})
	probeOverhead := float64(pFull10.NsPerOp()) / float64(jBase10.NsPerOp())
	mc := add(fmt.Sprintf("MultiConsensus/virtual/n=5/rounds=%d", multiConsensusRounds), benchMultiConsensus)
	mcRoundsPerSec := float64(multiConsensusRounds) / (float64(mc.NsPerOp()) / 1e9)
	sweep := sweepThroughput(5, 1500)
	if sweep.Faulted > 0 {
		t.Errorf("scenario sweep: %d of %d runs failed", sweep.Faulted, sweep.Runs)
	}
	t.Logf("scenario sweep: %d runs, %.0f runs/s", sweep.Runs, sweep.RunsPerSec)
	sweep100 := sweepThroughput(100, 60)
	if sweep100.Faulted > 0 {
		t.Errorf("scenario sweep n=100: %d of %d runs failed", sweep100.Faulted, sweep100.Runs)
	}
	t.Logf("scenario sweep n=100: %d runs, %.1f runs/s", sweep100.Runs, sweep100.RunsPerSec)
	exp, err := exploreThroughput(512)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if exp.FirstFailureRun != 0 {
		t.Errorf("explore throughput workload hit a failure at run %d (alphabet should be failure-free)", exp.FirstFailureRun)
	}
	t.Logf("explore: %d runs, %d behaviour classes, %.0f runs/s", exp.Runs, exp.Novel, exp.RunsPerSec)
	mergeRate, err := campaignMergeThroughput(16)
	if err != nil {
		t.Fatalf("campaign merge: %v", err)
	}
	t.Logf("campaign merge: %.0f reports/s", mergeRate)

	bind := add("BindSample", BenchmarkBindSample)
	if bind.AllocsPerOp() != 0 {
		t.Errorf("generic Bind query path allocates %d allocs/op, want 0", bind.AllocsPerOp())
	}
	add("SendDeliver/virtual", func(b *testing.B) {
		nw := net.NewNetwork(2, net.WithSeed(1))
		defer nw.Close()
		inbox := nw.Endpoint(1).Subscribe("bench")
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < b.N; i++ {
				<-inbox
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw.Endpoint(0).Send(1, "bench", "m", nil)
		}
		<-done
	})

	speedup := float64(real10.NsPerOp()) / virtual.NsPerOp
	stepOverhead := virtual.NsPerOp / float64(free10.NsPerOp())
	out := struct {
		GeneratedBy     string        `json:"generated_by"`
		GoVersion       string        `json:"go_version"`
		DelayRange      string        `json:"delay_range"`
		SpeedupN10      float64       `json:"consensus_n10_virtual_vs_realtime_speedup"`
		StepOverheadN10 float64       `json:"consensus_n10_step_vs_freerunning_overhead"`
		JournalOverhead float64       `json:"consensus_n10_journal_overhead"`
		ProbeOverhead   float64       `json:"consensus_n10_probe_overhead"`
		SweepRuns       int           `json:"scenario_sweep_runs"`
		SweepRunsSec    float64       `json:"scenario_sweep_runs_per_sec"`
		Sweep100Runs    int           `json:"scenario_sweep_n100_runs"`
		Sweep100RunsSec float64       `json:"scenario_sweep_n100_runs_per_sec"`
		MultiRoundsSec  float64       `json:"multiconsensus_rounds_per_sec"`
		ExploreRuns     int           `json:"explore_runs"`
		ExploreRunsSec  float64       `json:"explore_runs_per_sec"`
		ExploreCoverage int           `json:"explore_behaviour_classes"`
		MergeReportsSec float64       `json:"campaign_merge_reports_per_sec"`
		Results         []benchResult `json:"results"`
	}{
		GeneratedBy:     "BENCH_JSON=1 go test ./internal/bench -run EmitBenchJSON -v",
		GoVersion:       runtime.Version(),
		DelayRange:      "[0, 200µs]",
		SpeedupN10:      speedup,
		StepOverheadN10: stepOverhead,
		JournalOverhead: journalOverhead,
		ProbeOverhead:   probeOverhead,
		SweepRuns:       sweep.Runs,
		SweepRunsSec:    sweep.RunsPerSec,
		Sweep100Runs:    sweep100.Runs,
		Sweep100RunsSec: sweep100.RunsPerSec,
		MultiRoundsSec:  mcRoundsPerSec,
		ExploreRuns:     exp.Runs,
		ExploreRunsSec:  exp.RunsPerSec,
		ExploreCoverage: exp.Novel,
		MergeReportsSec: mergeRate,
		Results:         results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile("../../BENCH_net.json", data, 0o644); err != nil {
		t.Fatalf("write BENCH_net.json: %v", err)
	}
	t.Logf("consensus n=10 virtual-vs-realtime speedup: %.1fx", speedup)
	if speedup < 10 {
		t.Errorf("virtual-time speedup %.1fx is below the 10x acceptance bar", speedup)
	}
	t.Logf("consensus n=10 step-vs-freerunning overhead: %.2fx", stepOverhead)
	if stepOverhead > 3 {
		t.Errorf("step-scheduler overhead %.2fx exceeds the 3x acceptance ceiling", stepOverhead)
	}
	t.Logf("consensus n=10 journal capture overhead: %.2fx", journalOverhead)
	if journalOverhead > 1.5 {
		t.Errorf("journal capture overhead %.2fx exceeds the 1.5x emit-time ceiling", journalOverhead)
	}
	t.Logf("consensus n=10 probe fold overhead: %.2fx", probeOverhead)
	if probeOverhead > 1.2 {
		t.Errorf("probe fold overhead %.2fx exceeds the 1.2x ceiling", probeOverhead)
	}
}
