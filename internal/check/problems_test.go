package check

import (
	"testing"

	"weakestfd/internal/model"
)

func patternWithCrash(n int, p model.ProcessID, t model.Time) *model.FailurePattern {
	f := model.NewFailurePattern(n)
	f.Crash(p, t)
	return f
}

func TestCheckConsensusValid(t *testing.T) {
	f := model.NewFailurePattern(3)
	o := ConsensusOutcome{
		Proposals: map[model.ProcessID]any{0: 0, 1: 1, 2: 1},
		Decisions: []Decision{
			{Process: 0, Value: 1, Time: 10},
			{Process: 1, Value: 1, Time: 11},
			{Process: 2, Value: 1, Time: 12},
		},
	}
	if v := CheckConsensus(f, o, true); !v.OK {
		t.Fatalf("valid consensus outcome rejected: %v", v)
	}
}

func TestCheckConsensusAgreementViolation(t *testing.T) {
	f := model.NewFailurePattern(2)
	o := ConsensusOutcome{
		Proposals: map[model.ProcessID]any{0: 0, 1: 1},
		Decisions: []Decision{
			{Process: 0, Value: 0, Time: 10},
			{Process: 1, Value: 1, Time: 11},
		},
	}
	if v := CheckConsensus(f, o, false); v.OK {
		t.Fatalf("disagreement accepted")
	}
}

func TestCheckConsensusValidityViolation(t *testing.T) {
	f := model.NewFailurePattern(2)
	o := ConsensusOutcome{
		Proposals: map[model.ProcessID]any{0: 0, 1: 0},
		Decisions: []Decision{{Process: 0, Value: 1, Time: 10}},
	}
	if v := CheckConsensus(f, o, false); v.OK {
		t.Fatalf("unproposed decision accepted")
	}
}

func TestCheckConsensusTermination(t *testing.T) {
	f := patternWithCrash(3, 2, 5)
	o := ConsensusOutcome{
		Proposals: map[model.ProcessID]any{0: 1, 1: 1},
		Decisions: []Decision{{Process: 0, Value: 1, Time: 10}},
	}
	// p1 is correct and never decided: termination fails, safety passes.
	if v := CheckConsensus(f, o, true); v.OK {
		t.Fatalf("missing decision of correct process accepted")
	}
	if v := CheckConsensus(f, o, false); !v.OK {
		t.Fatalf("safety-only check failed: %v", v)
	}
}

func TestCheckQCValid(t *testing.T) {
	f := model.NewFailurePattern(3)
	o := QCOutcome{
		Proposals: map[model.ProcessID]any{0: 0, 1: 1, 2: 0},
		Decisions: []Decision{
			{Process: 0, Value: QCDecision{Value: 0}, Time: 5},
			{Process: 1, Value: QCDecision{Value: 0}, Time: 6},
			{Process: 2, Value: QCDecision{Value: 0}, Time: 7},
		},
	}
	if v := CheckQC(f, o, true); !v.OK {
		t.Fatalf("valid qc outcome rejected: %v", v)
	}
}

func TestCheckQCQuitRequiresFailure(t *testing.T) {
	noFailure := model.NewFailurePattern(2)
	o := QCOutcome{
		Proposals: map[model.ProcessID]any{0: 1, 1: 1},
		Decisions: []Decision{
			{Process: 0, Value: QCDecision{Quit: true}, Time: 10},
			{Process: 1, Value: QCDecision{Quit: true}, Time: 11},
		},
	}
	if v := CheckQC(noFailure, o, false); v.OK {
		t.Fatalf("Quit with no failure accepted")
	}

	withFailure := patternWithCrash(3, 2, 3)
	o2 := QCOutcome{
		Proposals: map[model.ProcessID]any{0: 1, 1: 1},
		Decisions: []Decision{
			{Process: 0, Value: QCDecision{Quit: true}, Time: 10},
			{Process: 1, Value: QCDecision{Quit: true}, Time: 11},
		},
	}
	if v := CheckQC(withFailure, o2, true); !v.OK {
		t.Fatalf("Quit after failure rejected: %v", v)
	}

	// Quit decided before the failure happened is invalid even if a failure
	// occurs later.
	lateFailure := patternWithCrash(3, 2, 50)
	if v := CheckQC(lateFailure, o2, false); v.OK {
		t.Fatalf("Quit decided before the failure accepted")
	}
}

func TestCheckQCAgreementAndValidity(t *testing.T) {
	f := patternWithCrash(3, 2, 1)
	disagree := QCOutcome{
		Proposals: map[model.ProcessID]any{0: 0, 1: 1},
		Decisions: []Decision{
			{Process: 0, Value: QCDecision{Value: 0}, Time: 5},
			{Process: 1, Value: QCDecision{Quit: true}, Time: 6},
		},
	}
	if v := CheckQC(f, disagree, false); v.OK {
		t.Fatalf("qc disagreement accepted")
	}
	unproposed := QCOutcome{
		Proposals: map[model.ProcessID]any{0: 0, 1: 0},
		Decisions: []Decision{{Process: 0, Value: QCDecision{Value: 1}, Time: 5}},
	}
	if v := CheckQC(f, unproposed, false); v.OK {
		t.Fatalf("qc unproposed value accepted")
	}
	wrongType := QCOutcome{
		Decisions: []Decision{{Process: 0, Value: 42, Time: 5}},
	}
	if v := CheckQC(f, wrongType, false); v.OK {
		t.Fatalf("qc wrong decision type accepted")
	}
}

func TestCheckNBACCommitRequiresAllYes(t *testing.T) {
	f := model.NewFailurePattern(3)
	allYes := NBACOutcome{
		Votes: map[model.ProcessID]Vote{0: VoteYes, 1: VoteYes, 2: VoteYes},
		Decisions: []Decision{
			{Process: 0, Value: true, Time: 10},
			{Process: 1, Value: true, Time: 11},
			{Process: 2, Value: true, Time: 12},
		},
	}
	if v := CheckNBAC(f, allYes, true); !v.OK {
		t.Fatalf("all-yes commit rejected: %v", v)
	}

	oneNo := NBACOutcome{
		Votes:     map[model.ProcessID]Vote{0: VoteYes, 1: VoteNo, 2: VoteYes},
		Decisions: []Decision{{Process: 0, Value: true, Time: 10}},
	}
	if v := CheckNBAC(f, oneNo, false); v.OK {
		t.Fatalf("commit despite a No vote accepted")
	}

	// Commit with a missing vote (process never voted) is also invalid.
	missingVote := NBACOutcome{
		Votes:     map[model.ProcessID]Vote{0: VoteYes, 1: VoteYes},
		Decisions: []Decision{{Process: 0, Value: true, Time: 10}},
	}
	if v := CheckNBAC(f, missingVote, false); v.OK {
		t.Fatalf("commit with missing vote accepted")
	}
}

func TestCheckNBACAbortNeedsReason(t *testing.T) {
	noFailure := model.NewFailurePattern(2)
	abortNoReason := NBACOutcome{
		Votes: map[model.ProcessID]Vote{0: VoteYes, 1: VoteYes},
		Decisions: []Decision{
			{Process: 0, Value: false, Time: 10},
			{Process: 1, Value: false, Time: 11},
		},
	}
	if v := CheckNBAC(noFailure, abortNoReason, false); v.OK {
		t.Fatalf("abort with all-yes votes and no failure accepted")
	}

	withNo := NBACOutcome{
		Votes: map[model.ProcessID]Vote{0: VoteYes, 1: VoteNo},
		Decisions: []Decision{
			{Process: 0, Value: false, Time: 10},
			{Process: 1, Value: false, Time: 11},
		},
	}
	if v := CheckNBAC(noFailure, withNo, true); !v.OK {
		t.Fatalf("abort justified by a No vote rejected: %v", v)
	}

	withCrash := patternWithCrash(2, 1, 5)
	abortAfterCrash := NBACOutcome{
		Votes:     map[model.ProcessID]Vote{0: VoteYes},
		Decisions: []Decision{{Process: 0, Value: false, Time: 10}},
	}
	if v := CheckNBAC(withCrash, abortAfterCrash, true); !v.OK {
		t.Fatalf("abort justified by a crash rejected: %v", v)
	}
}

func TestCheckNBACAgreementAndTermination(t *testing.T) {
	f := model.NewFailurePattern(2)
	disagree := NBACOutcome{
		Votes: map[model.ProcessID]Vote{0: VoteYes, 1: VoteYes},
		Decisions: []Decision{
			{Process: 0, Value: true, Time: 10},
			{Process: 1, Value: false, Time: 11},
		},
	}
	if v := CheckNBAC(f, disagree, false); v.OK {
		t.Fatalf("nbac disagreement accepted")
	}

	partial := NBACOutcome{
		Votes: map[model.ProcessID]Vote{0: VoteYes, 1: VoteYes},
		Decisions: []Decision{
			{Process: 0, Value: true, Time: 10},
		},
	}
	if v := CheckNBAC(f, partial, true); v.OK {
		t.Fatalf("nbac missing decision accepted under termination")
	}
	wrongType := NBACOutcome{
		Decisions: []Decision{{Process: 0, Value: "Commit", Time: 10}},
	}
	if v := CheckNBAC(f, wrongType, false); v.OK {
		t.Fatalf("nbac wrong decision type accepted")
	}
}

func TestVoteString(t *testing.T) {
	if VoteYes.String() != "Yes" || VoteNo.String() != "No" {
		t.Fatalf("vote strings wrong")
	}
}

func TestCheckMultiConsensusValid(t *testing.T) {
	f := model.NewFailurePattern(2)
	o := MultiConsensusOutcome{
		Rounds: 2,
		Proposals: []map[model.ProcessID]any{
			{0: 10, 1: 11},
			{0: 20, 1: 21},
		},
		Decisions: [][]Decision{
			{{Process: 0, Value: 10, Time: 5}, {Process: 1, Value: 10, Time: 6}},
			{{Process: 0, Value: 21, Time: 9}, {Process: 1, Value: 21, Time: 9}},
		},
	}
	if v := CheckMultiConsensus(f, o, true); !v.OK {
		t.Fatalf("valid multi-consensus outcome rejected: %v", v)
	}
}

func TestCheckMultiConsensusRoundIsolation(t *testing.T) {
	// A violation in one round must be reported with its round tag, and
	// rounds are checked independently: round 0 disagrees, round 1 is fine.
	f := model.NewFailurePattern(2)
	o := MultiConsensusOutcome{
		Rounds: 2,
		Proposals: []map[model.ProcessID]any{
			{0: 10, 1: 11},
			{0: 20, 1: 21},
		},
		Decisions: [][]Decision{
			{{Process: 0, Value: 10, Time: 5}, {Process: 1, Value: 11, Time: 6}},
			{{Process: 0, Value: 20, Time: 9}, {Process: 1, Value: 20, Time: 9}},
		},
	}
	v := CheckMultiConsensus(f, o, true)
	if v.OK {
		t.Fatalf("round-0 disagreement accepted")
	}
	if len(v.Violations) != 1 {
		t.Fatalf("got %d violations, want 1 (round 1 is clean): %v", len(v.Violations), v)
	}
}

func TestCheckMultiConsensusTerminationPerRound(t *testing.T) {
	// A correct process that decided round 0 but never round 1 violates
	// termination of the second instance.
	f := model.NewFailurePattern(2)
	o := MultiConsensusOutcome{
		Rounds: 2,
		Proposals: []map[model.ProcessID]any{
			{0: 10, 1: 11},
			{0: 20, 1: 21},
		},
		Decisions: [][]Decision{
			{{Process: 0, Value: 10, Time: 5}, {Process: 1, Value: 10, Time: 6}},
			{{Process: 0, Value: 20, Time: 9}},
		},
	}
	if v := CheckMultiConsensus(f, o, true); v.OK {
		t.Fatalf("missing round-1 decision accepted under termination")
	}
	if v := CheckMultiConsensus(f, o, false); !v.OK {
		t.Fatalf("safety-only check rejected a safe partial outcome: %v", v)
	}
}

func TestCheckMultiConsensusShapeMismatch(t *testing.T) {
	f := model.NewFailurePattern(2)
	o := MultiConsensusOutcome{Rounds: 2, Proposals: make([]map[model.ProcessID]any, 1), Decisions: make([][]Decision, 2)}
	if v := CheckMultiConsensus(f, o, false); v.OK {
		t.Fatalf("malformed outcome accepted")
	}
}
