package check

import (
	"weakestfd/internal/model"
)

// Decision records the value a process returned from a problem instance
// (consensus, QC or NBAC) and the logical time at which it returned it.
type Decision struct {
	Process model.ProcessID
	Value   any
	Time    model.Time
}

// ConsensusOutcome is the observable outcome of one consensus instance.
type ConsensusOutcome struct {
	// Proposals holds the value proposed by each process that proposed.
	Proposals map[model.ProcessID]any
	// Decisions holds one entry per process that returned.
	Decisions []Decision
}

// CheckConsensus validates the outcome against the consensus specification of
// Section 4.1. Termination ("every correct process returns") is enforced only
// when requireTermination is true, since safety-only runs may be cut short.
func CheckConsensus(f *model.FailurePattern, o ConsensusOutcome, requireTermination bool) model.Verdict {
	v := model.Ok()

	// Uniform agreement: no two processes (correct or faulty) decide
	// differently.
	for i := 0; i < len(o.Decisions); i++ {
		for j := i + 1; j < len(o.Decisions); j++ {
			if o.Decisions[i].Value != o.Decisions[j].Value {
				v = v.Merge(model.Fail("consensus agreement violated: %v decided %v but %v decided %v",
					o.Decisions[i].Process, o.Decisions[i].Value, o.Decisions[j].Process, o.Decisions[j].Value))
			}
		}
	}

	// Validity: every decided value was proposed.
	for _, d := range o.Decisions {
		proposed := false
		for _, p := range o.Proposals {
			if p == d.Value {
				proposed = true
				break
			}
		}
		if !proposed {
			v = v.Merge(model.Fail("consensus validity violated: %v decided %v, which no process proposed", d.Process, d.Value))
		}
	}

	if requireTermination {
		v = v.Merge(checkAllCorrectDecided(f, o.Decisions, "consensus"))
	}
	return v
}

// MultiConsensusOutcome is the observable outcome of a multi-instance
// consensus workload: Rounds repeated, independent consensus instances run
// on one cluster, with per-round proposal maps and decision lists.
type MultiConsensusOutcome struct {
	// Rounds is the number of consensus instances.
	Rounds int
	// Proposals[r] holds the values proposed in round r, per process.
	Proposals []map[model.ProcessID]any
	// Decisions[r] holds one entry per process that returned from round r.
	Decisions [][]Decision
}

// CheckMultiConsensus validates every round of a multi-instance workload
// against the consensus specification independently — agreement and validity
// within each round, and (optionally) per-round termination of every correct
// process. A violation is tagged with its round so a failing sweep pinpoints
// which instance broke.
func CheckMultiConsensus(f *model.FailurePattern, o MultiConsensusOutcome, requireTermination bool) model.Verdict {
	if len(o.Proposals) != o.Rounds || len(o.Decisions) != o.Rounds {
		return model.Fail("multiconsensus: outcome has %d proposal and %d decision rounds, want %d",
			len(o.Proposals), len(o.Decisions), o.Rounds)
	}
	v := model.Ok()
	for r := 0; r < o.Rounds; r++ {
		round := CheckConsensus(f, ConsensusOutcome{Proposals: o.Proposals[r], Decisions: o.Decisions[r]}, requireTermination)
		if !round.OK {
			v = v.Merge(model.Fail("round %d: %v", r, round))
		}
	}
	return v
}

// QCDecision is a quittable-consensus return value: either Quit, or a regular
// value.
type QCDecision struct {
	Quit  bool
	Value any
}

// QCOutcome is the observable outcome of one quittable-consensus instance.
type QCOutcome struct {
	Proposals map[model.ProcessID]any
	Decisions []Decision // Decision.Value must be a QCDecision
}

// CheckQC validates the outcome against the quittable-consensus specification
// of Section 5: uniform agreement; validity clause (a) — a non-Quit decision
// was proposed by some process; validity clause (b) — Quit may be returned
// only if a failure occurred before the decision; and, optionally,
// termination.
func CheckQC(f *model.FailurePattern, o QCOutcome, requireTermination bool) model.Verdict {
	v := model.Ok()

	decisions := make([]QCDecision, len(o.Decisions))
	for i, d := range o.Decisions {
		qd, ok := d.Value.(QCDecision)
		if !ok {
			return model.Fail("qc: decision of %v has type %T, want QCDecision", d.Process, d.Value)
		}
		decisions[i] = qd
	}

	for i := 0; i < len(decisions); i++ {
		for j := i + 1; j < len(decisions); j++ {
			if decisions[i] != decisions[j] {
				v = v.Merge(model.Fail("qc agreement violated: %v decided %v but %v decided %v",
					o.Decisions[i].Process, decisions[i], o.Decisions[j].Process, decisions[j]))
			}
		}
	}

	for i, d := range decisions {
		if d.Quit {
			if !f.FailureOccurredBy(o.Decisions[i].Time) {
				v = v.Merge(model.Fail("qc validity violated: %v decided Quit at time %d with no prior failure",
					o.Decisions[i].Process, o.Decisions[i].Time))
			}
			continue
		}
		proposed := false
		for _, p := range o.Proposals {
			if p == d.Value {
				proposed = true
				break
			}
		}
		if !proposed {
			v = v.Merge(model.Fail("qc validity violated: %v decided %v, which no process proposed",
				o.Decisions[i].Process, d.Value))
		}
	}

	if requireTermination {
		v = v.Merge(checkAllCorrectDecided(f, o.Decisions, "qc"))
	}
	return v
}

// Vote is an NBAC vote.
type Vote bool

// NBAC votes.
const (
	VoteYes Vote = true
	VoteNo  Vote = false
)

// String implements fmt.Stringer.
func (v Vote) String() string {
	if v == VoteYes {
		return "Yes"
	}
	return "No"
}

// NBACOutcome is the observable outcome of one NBAC instance. Decision values
// must be bool: true for Commit, false for Abort.
type NBACOutcome struct {
	Votes     map[model.ProcessID]Vote
	Decisions []Decision
}

// CheckNBAC validates the outcome against the NBAC specification of Section
// 7.1: uniform agreement; validity clause (a) — Commit only if every process
// voted Yes; validity clause (b) — Abort only if some process voted No or a
// failure occurred before the decision; and, optionally, termination.
func CheckNBAC(f *model.FailurePattern, o NBACOutcome, requireTermination bool) model.Verdict {
	v := model.Ok()

	commits := make([]bool, len(o.Decisions))
	for i, d := range o.Decisions {
		c, ok := d.Value.(bool)
		if !ok {
			return model.Fail("nbac: decision of %v has type %T, want bool", d.Process, d.Value)
		}
		commits[i] = c
	}

	for i := 0; i < len(commits); i++ {
		for j := i + 1; j < len(commits); j++ {
			if commits[i] != commits[j] {
				v = v.Merge(model.Fail("nbac agreement violated: %v and %v decided differently",
					o.Decisions[i].Process, o.Decisions[j].Process))
			}
		}
	}

	someNo := false
	for _, vote := range o.Votes {
		if vote == VoteNo {
			someNo = true
		}
	}
	allYes := !someNo && len(o.Votes) == f.N()

	for i, c := range commits {
		if c {
			if !allYes {
				v = v.Merge(model.Fail("nbac validity violated: %v decided Commit but not all processes voted Yes", o.Decisions[i].Process))
			}
		} else {
			if !someNo && !f.FailureOccurredBy(o.Decisions[i].Time) {
				v = v.Merge(model.Fail("nbac validity violated: %v decided Abort at time %d with all-Yes votes and no prior failure",
					o.Decisions[i].Process, o.Decisions[i].Time))
			}
		}
	}

	if requireTermination {
		v = v.Merge(checkAllCorrectDecided(f, o.Decisions, "nbac"))
	}
	return v
}

func checkAllCorrectDecided(f *model.FailurePattern, decisions []Decision, problem string) model.Verdict {
	v := model.Ok()
	decided := model.NewProcessSet()
	for _, d := range decisions {
		decided.Add(d.Process)
	}
	for _, p := range f.Correct().Slice() {
		if !decided.Contains(p) {
			v = v.Merge(model.Fail("%s termination violated: correct process %v never returned", problem, p))
		}
	}
	return v
}
