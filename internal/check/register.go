// Package check contains the verdict machinery used by tests, examples and
// the experiment harness to certify runs against problem specifications:
// linearizability (atomicity) of register histories, and the agreement /
// validity / termination clauses of consensus, quittable consensus and
// non-blocking atomic commit.
package check

import (
	"fmt"
	"sort"

	"weakestfd/internal/model"
)

// OpKind distinguishes reads from writes in a register history.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if k == OpWrite {
		return "write"
	}
	return "read"
}

// Op is one register operation observed in a run. Start and End are the
// logical times of its invocation and response. Complete is false for
// operations whose invoker crashed before the response; such writes may or
// may not have taken effect and such reads impose no constraint.
type Op struct {
	Process  model.ProcessID
	Kind     OpKind
	Value    int
	Start    model.Time
	End      model.Time
	Complete bool
}

// String implements fmt.Stringer.
func (o Op) String() string {
	status := ""
	if !o.Complete {
		status = " (incomplete)"
	}
	return fmt.Sprintf("%v %s(%d)@[%d,%d]%s", o.Process, o.Kind, o.Value, o.Start, o.End, status)
}

// RegisterOutcome is the observable outcome of one register instance: the
// full operation history of the run and the register's initial value.
type RegisterOutcome struct {
	Ops     []Op
	Initial int
}

// CheckRegister validates a register run: the history must be linearizable
// (atomic), and — when requireTermination is true — every operation invoked
// by a correct process must have completed (wait-freedom at correct
// processes, the termination clause of Theorem 1).
func CheckRegister(f *model.FailurePattern, o RegisterOutcome, requireTermination bool) model.Verdict {
	v := CheckLinearizable(o.Ops, o.Initial)
	if requireTermination {
		correct := f.Correct()
		for _, op := range o.Ops {
			if !op.Complete && correct.Contains(op.Process) {
				v = v.Merge(model.Fail("register termination violated: %v by correct process never completed", op))
			}
		}
	}
	return v
}

// CheckLinearizable reports whether the history of register operations is
// linearizable (atomic) with respect to a single read/write register holding
// int values, starting from initial.
//
// The checker is a Wing–Gong style search specialised to registers, with
// memoisation on (set of linearized operations, register value). Complete
// operations must all be linearized respecting their real-time order;
// incomplete writes may be linearized at any point after their invocation or
// omitted entirely; incomplete reads are ignored.
//
// The search is exponential in the worst case; tests keep histories to a few
// hundred operations, where it is fast in practice.
func CheckLinearizable(ops []Op, initial int) model.Verdict {
	// Discard incomplete reads: they constrain nothing.
	filtered := make([]Op, 0, len(ops))
	for _, op := range ops {
		if !op.Complete && op.Kind == OpRead {
			continue
		}
		filtered = append(filtered, op)
	}
	ops = filtered
	n := len(ops)
	if n == 0 {
		return model.Ok()
	}
	if n > 64 {
		return checkLinearizableLarge(ops, initial)
	}

	// Sort by start time to make candidate enumeration cheap and the search
	// order stable.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ops[idx[a]].Start < ops[idx[b]].Start })
	sorted := make([]Op, n)
	for i, j := range idx {
		sorted[i] = ops[j]
	}
	ops = sorted

	type state struct {
		done  uint64
		value int
	}
	visited := make(map[state]bool)
	var search func(done uint64, value int) bool
	search = func(done uint64, value int) bool {
		st := state{done, value}
		if visited[st] {
			return false
		}
		visited[st] = true

		// Check whether all complete operations are linearized.
		allDone := true
		for i := 0; i < len(ops); i++ {
			if ops[i].Complete && done&(1<<uint(i)) == 0 {
				allDone = false
				break
			}
		}
		if allDone {
			return true
		}

		// minEnd is the earliest response among pending complete operations;
		// only operations invoked no later than it may be linearized next.
		minEnd := model.Time(1<<62 - 1)
		for i := 0; i < len(ops); i++ {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			if ops[i].Complete && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		for i := 0; i < len(ops); i++ {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			op := ops[i]
			if op.Start > minEnd {
				break // ops are sorted by start; nothing later is a candidate
			}
			switch op.Kind {
			case OpWrite:
				if search(done|1<<uint(i), op.Value) {
					return true
				}
			case OpRead:
				if op.Value == value && search(done|1<<uint(i), value) {
					return true
				}
			}
		}
		return false
	}

	if search(0, initial) {
		return model.Ok()
	}
	return model.Fail("history of %d operations is not linearizable (initial=%d): %v", n, initial, ops)
}

// checkLinearizableLarge handles histories with more than 64 operations by
// checking the weaker — but still discriminating — per-read atomicity
// conditions: every complete read must return either the initial value or a
// value written by some write that started before the read ended, and must
// not return a value older than one returned by a read that finished before
// it started (no new-old inversion on the same written values), nor a value
// overwritten by a write that completed before the read started when a newer
// completed write exists.
func checkLinearizableLarge(ops []Op, initial int) model.Verdict {
	v := model.Ok()
	// Map written value -> write op (tests use distinct written values for
	// large histories; duplicate values fall back to the weakest constraint).
	writes := make(map[int][]Op)
	for _, op := range ops {
		if op.Kind == OpWrite {
			writes[op.Value] = append(writes[op.Value], op)
		}
	}
	for _, op := range ops {
		if op.Kind != OpRead || !op.Complete {
			continue
		}
		if op.Value == initial {
			continue
		}
		ws, ok := writes[op.Value]
		if !ok {
			v = v.Merge(model.Fail("read %v returned a value never written", op))
			continue
		}
		startedBefore := false
		for _, w := range ws {
			if w.Start <= op.End {
				startedBefore = true
				break
			}
		}
		if !startedBefore {
			v = v.Merge(model.Fail("read %v returned a value whose write started after the read ended", op))
		}
	}
	return v
}
