package campaign

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"testing"

	"weakestfd/internal/cliutil"
	"weakestfd/internal/explore"
	"weakestfd/internal/scenario"
)

// testExploreSpec is the shared small explore campaign: quick enough that a
// six-unit campaign runs in test time, rich enough (two classes, crashes
// mutated in) that unit reports carry corpora, failures and duplicates.
func testExploreSpec() *ExploreSpec {
	return &ExploreSpec{
		Proto:    "consensus",
		N:        4,
		Seed:     5,
		Runs:     24,
		Batch:    8,
		Classes:  "omega-sigma,eventually-strong{stabilize:50}",
		Minimize: 1,
	}
}

func planTest(t *testing.T, dir, name string, units, shards int) *Manifest {
	t.Helper()
	m := &Manifest{Name: name, Kind: KindExplore, Units: units, Shards: shards, Explore: testExploreSpec()}
	if err := Plan(dir, m); err != nil {
		t.Fatalf("plan: %v", err)
	}
	return m
}

func runShardOK(t *testing.T, dir string, k int) {
	t.Helper()
	if _, _, err := RunShard(context.Background(), RunOptions{Dir: dir, Shard: k}); err != nil {
		t.Fatalf("run shard %d: %v", k, err)
	}
}

// cancelAfterUnit is a log sink that cancels the context as soon as the
// first unit completes — the in-process stand-in for kill -9 between units.
type cancelAfterUnit struct {
	mu     sync.Mutex
	cancel context.CancelFunc
	buf    bytes.Buffer
}

func (w *cancelAfterUnit) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if strings.Contains(w.buf.String(), "completed unit") {
		w.cancel()
	}
	return len(p), nil
}

// TestCampaignShardingAndResumeInvariance is the determinism contract: the
// merged canonical report of a 3-shard campaign — one shard killed mid-range
// and resumed, one unit adopted from a report written before the crashed
// watermark update — is byte-identical to a 1-shard run of the same work.
func TestCampaignShardingAndResumeInvariance(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	planTest(t, dirA, "camp", 6, 3)
	planTest(t, dirB, "camp", 6, 1)

	// Reference: one shard, uninterrupted.
	runShardOK(t, dirB, 1)

	// Fleet: shard 1 runs clean; shard 2 is killed after its first unit.
	runShardOK(t, dirA, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelAfterUnit{cancel: cancel}
	done, total, err := RunShard(ctx, RunOptions{Dir: dirA, Shard: 2, Log: w})
	if err == nil {
		t.Fatalf("killed shard reported success (%d/%d units)", done, total)
	}
	if done != 1 || total != 2 {
		t.Fatalf("killed shard: done=%d total=%d, want 1/2", done, total)
	}

	// Crash-window adoption: unit 3's report already durable (here: the
	// reference run's byte-identical file), watermark not yet advanced.
	unit3, err := os.ReadFile(UnitReportPath(dirB, 3))
	if err != nil {
		t.Fatalf("read reference unit: %v", err)
	}
	if err := os.WriteFile(UnitReportPath(dirA, 3), unit3, 0o644); err != nil {
		t.Fatalf("stage adoptable unit: %v", err)
	}

	// Resume shard 2, run shard 3.
	var log bytes.Buffer
	if _, _, err := RunShard(context.Background(), RunOptions{Dir: dirA, Shard: 2, Log: &log}); err != nil {
		t.Fatalf("resume shard 2: %v", err)
	}
	if !strings.Contains(log.String(), "adopted unit 3") {
		t.Fatalf("resume did not adopt the durable unit report:\n%s", log.String())
	}
	runShardOK(t, dirA, 3)

	mergedA, err := MergeDir(dirA)
	if err != nil {
		t.Fatalf("merge fleet campaign: %v", err)
	}
	mergedB, err := MergeDir(dirB)
	if err != nil {
		t.Fatalf("merge reference campaign: %v", err)
	}
	if ca, cb := mergedA.Canonical(), mergedB.Canonical(); ca != cb {
		t.Fatalf("sharded+killed+resumed campaign diverged from the 1-shard reference\n--- fleet ---\n%s\n--- reference ---\n%s", ca, cb)
	}
	if got := len(mergedA.Explore.Seeds); got != 6 {
		t.Fatalf("merged %d seeds, want 6", got)
	}
	if mergedA.Explore.Runs != 6*24 {
		t.Fatalf("merged runs %d, want %d", mergedA.Explore.Runs, 6*24)
	}
}

// TestPlanImmutable: re-planning identical work is idempotent; re-planning
// different work is refused.
func TestPlanImmutable(t *testing.T) {
	dir := t.TempDir()
	planTest(t, dir, "camp", 4, 2)
	planTest(t, dir, "camp", 4, 2) // identical plan: fine
	m := &Manifest{Name: "camp", Kind: KindExplore, Units: 4, Shards: 4, Explore: testExploreSpec()}
	if err := Plan(dir, m); err == nil || !strings.Contains(err.Error(), "immutable") {
		t.Fatalf("re-plan with different sharding: err=%v, want immutability refusal", err)
	}
}

// TestShardStateRejectsForeignState: a shard state from another campaign
// (different fingerprint) is refused, not silently resumed.
func TestShardStateRejectsForeignState(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	planTest(t, dirA, "camp", 2, 2)
	other := testExploreSpec()
	other.Runs = 16 // different space fingerprint
	mB := &Manifest{Name: "camp", Kind: KindExplore, Units: 2, Shards: 2, Explore: other}
	if err := Plan(dirB, mB); err != nil {
		t.Fatalf("plan B: %v", err)
	}
	runShardOK(t, dirB, 1)
	data, err := os.ReadFile(shardPath(dirB, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shardPath(dirA, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunShard(context.Background(), RunOptions{Dir: dirA, Shard: 1}); err == nil || !strings.Contains(err.Error(), "does not belong") {
		t.Fatalf("foreign shard state: err=%v, want belonging refusal", err)
	}
}

// exploreCorpus runs one small exploration and returns its corpus state.
func exploreCorpus(t *testing.T, seed int64) *explore.CorpusState {
	t.Helper()
	opts, err := testExploreSpec().Options(seed)
	if err != nil {
		t.Fatalf("options: %v", err)
	}
	rep, err := explore.Explore(context.Background(), opts)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	return rep.CorpusState()
}

func marshalCorpus(t *testing.T, c *explore.CorpusState) string {
	t.Helper()
	data, err := c.Marshal()
	if err != nil {
		t.Fatalf("marshal corpus: %v", err)
	}
	return string(data)
}

func mergeC(t *testing.T, states ...*explore.CorpusState) *explore.CorpusState {
	t.Helper()
	out, err := MergeCorpora(states...)
	if err != nil {
		t.Fatalf("merge corpora: %v", err)
	}
	return out
}

// TestMergeCorporaProperties pins the algebra that makes corpus merging
// shard-layout-independent: idempotence, commutativity and associativity,
// all byte-for-byte on the canonical serialization.
func TestMergeCorporaProperties(t *testing.T) {
	a := exploreCorpus(t, 5)
	b := exploreCorpus(t, 6)
	c := exploreCorpus(t, 7)
	if len(a.Entries) == 0 || len(b.Entries) == 0 || len(c.Entries) == 0 {
		t.Fatal("explorations yielded empty corpora; the properties would hold vacuously")
	}

	if got, want := marshalCorpus(t, mergeC(t, a, a)), marshalCorpus(t, mergeC(t, a)); got != want {
		t.Fatalf("merge not idempotent:\n%s\nvs\n%s", got, want)
	}
	if got, want := marshalCorpus(t, mergeC(t, a, b)), marshalCorpus(t, mergeC(t, b, a)); got != want {
		t.Fatalf("merge not commutative:\n%s\nvs\n%s", got, want)
	}
	left := mergeC(t, mergeC(t, a, b), c)
	right := mergeC(t, a, mergeC(t, b, c))
	if got, want := marshalCorpus(t, left), marshalCorpus(t, right); got != want {
		t.Fatalf("merge not associative:\n%s\nvs\n%s", got, want)
	}

	// The merged corpus is a superset of each input's signatures.
	sigs := map[string]bool{}
	for _, e := range mergeC(t, a, b, c).Entries {
		sigs[e.Signature] = true
	}
	for _, in := range []*explore.CorpusState{a, b, c} {
		for _, e := range in.Entries {
			if !sigs[e.Signature] {
				t.Fatalf("merged corpus lost signature %s", e.Signature)
			}
		}
	}
}

// TestMergeRefusals: the failure modes merging exists to catch are refused
// loudly — mismatched fingerprints, double-counted seeds, overlapping grid
// slices, future schema versions.
func TestMergeRefusals(t *testing.T) {
	mkExplore := func(seed int64, fp string) Input {
		return Input{Name: "r", Explore: &cliutil.ExploreReport{
			SchemaVersion: cliutil.ReportSchemaVersion, SpaceFingerprint: fp,
			Proto: "consensus", N: 4, Seed: seed, Budget: 1, Runs: 1, Novel: 0,
		}}
	}
	if _, err := MergeReports([]Input{mkExplore(1, "fpA"), mkExplore(2, "fpB")}); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("fingerprint mismatch: err=%v", err)
	}
	if _, err := MergeReports([]Input{mkExplore(1, "fp"), mkExplore(1, "fp")}); err == nil || !strings.Contains(err.Error(), "seed 1") {
		t.Fatalf("duplicate seed: err=%v", err)
	}

	mkSweep := func(lo, hi int) Input {
		return Input{Name: "r", Sweep: &cliutil.SweepReport{
			SchemaVersion: cliutil.ReportSchemaVersion, GridFingerprint: "fp",
			Proto: "consensus", N: 4, GridSize: 10, IndexLo: lo, IndexHi: hi,
			Runs: hi - lo, Passed: hi - lo,
		}}
	}
	if _, err := MergeReports([]Input{mkSweep(0, 6), mkSweep(4, 10)}); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping ranges: err=%v", err)
	}
	m, err := MergeReports([]Input{mkSweep(0, 6), mkSweep(6, 10)})
	if err != nil {
		t.Fatalf("tiling merge: %v", err)
	}
	if !m.Sweep.Complete || m.Sweep.Runs != 10 {
		t.Fatalf("tiled merge: complete=%t runs=%d", m.Sweep.Complete, m.Sweep.Runs)
	}

	if _, err := ReadInput("r", []byte(`{"schema_version":99,"budget":1}`)); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future schema version: err=%v", err)
	}
}

// TestSweepCampaign: a sharded sweep campaign tiles the grid exactly once
// and its merged counts equal a direct in-process sweep of the same grid.
func TestSweepCampaign(t *testing.T) {
	grid := &cliutil.GridSpec{
		Proto: "consensus", N: 4, Rounds: 2, Seeds: "1-8",
		Crashes: "-;3@5ms", Timeout: "30s", Keep: 2,
	}
	dir := t.TempDir()
	m := &Manifest{Name: "sweepcamp", Kind: KindSweep, Units: 4, Shards: 2, Grid: grid}
	if err := Plan(dir, m); err != nil {
		t.Fatalf("plan: %v", err)
	}
	runShardOK(t, dir, 1)
	runShardOK(t, dir, 2)
	merged, err := MergeDir(dir)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	s := merged.Sweep
	if s == nil || !s.Complete {
		t.Fatalf("merged sweep incomplete: %+v", s)
	}

	base, g, proto, err := cliutil.BuildGrid(*grid)
	if err != nil {
		t.Fatalf("build grid: %v", err)
	}
	direct := scenario.Sweep(context.Background(), base, g, proto)
	if s.Runs != direct.Runs || s.Passed != direct.Passed || s.Faulted != direct.Faulted {
		t.Fatalf("merged counts %d/%d/%d diverge from direct sweep %d/%d/%d",
			s.Runs, s.Passed, s.Faulted, direct.Runs, direct.Passed, direct.Faulted)
	}
	if s.GridSize != direct.GridSize {
		t.Fatalf("grid size %d vs %d", s.GridSize, direct.GridSize)
	}
}
