// Package campaign composes many sweep or explore invocations — across
// processes, machines or CI jobs — into one named, on-disk, resumable
// logical campaign, and folds their reports back into one campaign report.
//
// A campaign divides its work into Units, the atoms of progress: for a
// sweep campaign, unit i of U is the contiguous grid slice
// [i·size/U, (i+1)·size/U) (the same exact-once tiling as scenario.Shard);
// for an explore campaign, unit i is one full exploration seeded with
// base seed + i. Shard k of S owns the contiguous unit range
// [(k−1)·U/S, k·U/S) and executes its units in order, writing one canonical
// report file per unit (atomic rename) and advancing a per-shard watermark
// only after the unit's report is durably on disk. A shard killed mid-unit
// therefore loses at most the unit in flight: resume re-issues exactly the
// units past the watermark, adopting an already-written report when the
// crash fell between the report rename and the watermark update — exact-once
// output either way.
//
// The determinism contract, campaign side: every unit report is a pure
// function of (campaign fingerprint, unit index) — timing fields are left
// zero — so the merged campaign report is a pure function of (fingerprint,
// seed set), independent of shard count, interleaving, kill points and
// resume points. The 1-shard-vs-killed-and-resumed-3-shard byte-identity
// test pins exactly this.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"weakestfd/internal/cliutil"
	"weakestfd/internal/explore"
	"weakestfd/internal/scenario"
)

// ManifestVersion is the schema version of campaign artifacts (manifest,
// shard states); loaders reject newer versions.
const ManifestVersion = 1

// Kind selects the campaign's work type.
type Kind string

const (
	KindSweep   Kind = "sweep"
	KindExplore Kind = "explore"
)

// ExploreSpec is the work description of an explore campaign: the
// cmd/explore surface minus the seed (unit i explores at Seed + i) and
// minus runtime detail (workers, wall budget, progress). Empty Classes,
// Delays and Timeout take cmd/explore's defaults.
type ExploreSpec struct {
	Proto       string `json:"proto"`
	N           int    `json:"n"`
	Rounds      int    `json:"rounds,omitempty"`
	Coordinator int    `json:"coordinator,omitempty"`
	// Seed is the campaign's base seed: unit i runs at Seed + i.
	Seed int64 `json:"seed"`
	// Runs is the exploration budget per unit.
	Runs        int    `json:"runs"`
	Batch       int    `json:"batch,omitempty"`
	Classes     string `json:"classes,omitempty"`
	Crashes     string `json:"crashes,omitempty"`
	Delays      string `json:"delays,omitempty"`
	Timeout     string `json:"timeout,omitempty"`
	SafetyOnly  bool   `json:"safety_only,omitempty"`
	Minimize    int    `json:"minimize"`
	DepthSignal bool   `json:"depth_signal,omitempty"`
	TraceSignal bool   `json:"trace_signal,omitempty"`
}

// Options builds the explore options of one unit. Workers/OnRun are runtime
// detail the caller sets afterwards; they do not affect the unit's result.
func (sp ExploreSpec) Options(unitSeed int64) (explore.Options, error) {
	var opts explore.Options
	if sp.N <= 0 {
		return opts, fmt.Errorf("explore spec: invalid process count %d", sp.N)
	}
	if sp.Runs <= 0 {
		return opts, fmt.Errorf("explore spec: runs must be positive, got %d", sp.Runs)
	}
	proto, err := cliutil.BuildProtocol(sp.Proto, sp.N, max(1, sp.Rounds), sp.Coordinator)
	if err != nil {
		return opts, err
	}
	classes := sp.Classes
	if strings.TrimSpace(classes) == "" {
		classes = "omega-sigma,perfect,eventually-perfect{stabilize:50},eventually-strong{stabilize:50}"
	}
	alphabet, err := cliutil.ParseDetectors(classes)
	if err != nil {
		return opts, fmt.Errorf("explore spec: classes: %v", err)
	}
	delays := sp.Delays
	if strings.TrimSpace(delays) == "" {
		delays = "1ms:3ms"
	}
	delayRanges, err := cliutil.ParseDelays(delays)
	if err != nil || len(delayRanges) != 1 {
		return opts, fmt.Errorf("explore spec: delays: want exactly one min:max range (got %q)", delays)
	}
	timeout := sp.Timeout
	if strings.TrimSpace(timeout) == "" {
		timeout = "250ms"
	}
	d, err := time.ParseDuration(timeout)
	if err != nil {
		return opts, fmt.Errorf("explore spec: timeout: %v", err)
	}
	schedules, err := cliutil.ParseCrashes(sp.Crashes, sp.N)
	if err != nil {
		return opts, fmt.Errorf("explore spec: crashes: %v", err)
	}
	if len(schedules) > 1 {
		return opts, fmt.Errorf("explore spec: the base takes one crash schedule, not %d", len(schedules))
	}
	baseOpts := []scenario.Option{
		scenario.WithSeed(unitSeed),
		scenario.WithDelays(delayRanges[0].Min, delayRanges[0].Max),
		scenario.WithTimeout(d),
	}
	if len(schedules) == 1 {
		baseOpts = append(baseOpts, scenario.WithCrashes(schedules[0]...))
	}
	if sp.SafetyOnly {
		baseOpts = append(baseOpts, scenario.WithSafetyOnly())
	}
	minimize := sp.Minimize
	if minimize <= 0 {
		minimize = -1 // spec semantics match cmd/explore: 0 means none
	}
	return explore.Options{
		Seed:          unitSeed,
		Runs:          sp.Runs,
		Batch:         sp.Batch,
		Proto:         proto,
		Base:          scenario.New(sp.N, baseOpts...).Config(),
		Classes:       alphabet,
		MinimizeLimit: minimize,
		DepthSignal:   sp.DepthSignal,
		TraceSignal:   sp.TraceSignal,
	}, nil
}

// Manifest is a campaign's immutable plan: what the work is, how it is cut
// into units, how units are assigned to shards, and the fingerprint every
// artifact of the campaign must carry. It is written once by Plan and never
// modified; all mutable progress lives in per-shard state files, so
// concurrent shards never write one shared file.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	Kind          Kind   `json:"kind"`
	// Fingerprint identifies the campaign's search space: the grid
	// fingerprint (scenario.Grid.Fingerprint) for a sweep campaign, the
	// space fingerprint (explore.SpaceFingerprint) for an explore one.
	Fingerprint string `json:"fingerprint"`
	// Units is the number of work units; Shards how many contiguous unit
	// ranges they are assigned to (shard k of S owns units
	// [(k−1)·U/S, k·U/S), 1-based k — scenario.Shard's tiling).
	Units  int `json:"units"`
	Shards int `json:"shards"`
	// Exactly one of Grid and Explore is set, matching Kind.
	Grid    *cliutil.GridSpec `json:"grid,omitempty"`
	Explore *ExploreSpec      `json:"explore,omitempty"`
}

// UnitRange returns the half-open unit range [lo, hi) shard k (1-based)
// owns.
func (m *Manifest) UnitRange(k int) (lo, hi int, err error) {
	if k < 1 || k > m.Shards {
		return 0, 0, fmt.Errorf("campaign %s: shard %d out of range 1..%d", m.Name, k, m.Shards)
	}
	lo, hi = scenario.Shard{Index: k, Count: m.Shards}.Bounds(m.Units)
	return lo, hi, nil
}

// UnitSeed returns the master seed of explore unit u.
func (m *Manifest) UnitSeed(u int) int64 { return m.Explore.Seed + int64(u) }

// validate checks the manifest's internal consistency and computes its
// fingerprint from the work description.
func (m *Manifest) validate() error {
	if m.Name == "" || m.Name != filepath.Base(m.Name) || strings.HasPrefix(m.Name, ".") {
		return fmt.Errorf("campaign: invalid name %q", m.Name)
	}
	if m.Units <= 0 {
		return fmt.Errorf("campaign %s: units must be positive, got %d", m.Name, m.Units)
	}
	if m.Shards <= 0 || m.Shards > m.Units {
		return fmt.Errorf("campaign %s: shards must be in 1..units(%d), got %d", m.Name, m.Units, m.Shards)
	}
	switch m.Kind {
	case KindSweep:
		if m.Grid == nil || m.Explore != nil {
			return fmt.Errorf("campaign %s: kind sweep needs exactly the grid spec", m.Name)
		}
		if strings.TrimSpace(m.Grid.Shard) != "" {
			return fmt.Errorf("campaign %s: the grid spec must not set shard %q — sharding is the campaign layer's job", m.Name, m.Grid.Shard)
		}
		base, grid, _, err := cliutil.BuildGrid(*m.Grid)
		if err != nil {
			return fmt.Errorf("campaign %s: grid: %w", m.Name, err)
		}
		if grid.Size() < m.Units {
			return fmt.Errorf("campaign %s: %d units over a grid of %d runs leaves empty units", m.Name, m.Units, grid.Size())
		}
		m.Fingerprint = grid.Fingerprint(base.Config())
	case KindExplore:
		if m.Explore == nil || m.Grid != nil {
			return fmt.Errorf("campaign %s: kind explore needs exactly the explore spec", m.Name)
		}
		opts, err := m.Explore.Options(m.Explore.Seed)
		if err != nil {
			return fmt.Errorf("campaign %s: %w", m.Name, err)
		}
		m.Fingerprint = explore.SpaceFingerprint(opts)
	default:
		return fmt.Errorf("campaign %s: unknown kind %q", m.Name, m.Kind)
	}
	return nil
}

// Artifact paths within a campaign directory.
func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }
func shardPath(dir string, k int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.state.json", k))
}

// UnitReportPath returns the report file of unit u in the campaign dir.
func UnitReportPath(dir string, u int) string {
	return filepath.Join(dir, fmt.Sprintf("unit-%06d.report.json", u))
}

// Plan validates the manifest, stamps its version and fingerprint, and
// writes it into dir (created if missing). Planning is idempotent: an
// existing manifest that renders to identical bytes is accepted, any other
// existing manifest is refused — a campaign's plan is immutable.
func Plan(dir string, m *Manifest) error {
	m.SchemaVersion = ManifestVersion
	if err := m.validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign %s: %w", m.Name, err)
	}
	data, err := marshalJSON(m)
	if err != nil {
		return fmt.Errorf("campaign %s: %w", m.Name, err)
	}
	if old, err := os.ReadFile(manifestPath(dir)); err == nil {
		if string(old) == string(data) {
			return nil
		}
		return fmt.Errorf("campaign %s: %s already holds a different plan; campaigns are immutable once planned", m.Name, manifestPath(dir))
	}
	return cliutil.WriteFileAtomic(manifestPath(dir), data)
}

// LoadManifest reads and validates dir's manifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("campaign: %w (plan first?)", err)
	}
	var m Manifest
	if err := unmarshalJSON(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: parse %s: %w", manifestPath(dir), err)
	}
	if m.SchemaVersion > ManifestVersion {
		return nil, fmt.Errorf("campaign %s: manifest schema_version %d is newer than this build understands (%d)", m.Name, m.SchemaVersion, ManifestVersion)
	}
	want := m.Fingerprint
	if err := m.validate(); err != nil {
		return nil, err
	}
	if m.Fingerprint != want {
		return nil, fmt.Errorf("campaign %s: stored fingerprint does not match the work description:\n  stored:   %s\n  computed: %s", m.Name, want, m.Fingerprint)
	}
	return &m, nil
}

// marshalJSON renders v as indented JSON with a trailing newline, the
// committed-snapshot style shared by every artifact.
func marshalJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// unmarshalJSON is strict-enough JSON parsing for campaign artifacts.
func unmarshalJSON(data []byte, v any) error {
	return json.Unmarshal(data, v)
}
