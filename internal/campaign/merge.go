package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"weakestfd/internal/cliutil"
	"weakestfd/internal/explore"
	"weakestfd/internal/probe"
)

// Merging is a fold with no order: every combinator here unions by a
// canonical key and resolves collisions by taking the element with the
// lexicographically smallest canonical JSON encoding — a total order, so
// min-of-set is commutative, associative and idempotent, which is what the
// property tests pin. Provenance that only makes sense within one
// exploration's discovery order (corpus Parent indices) is normalised away
// before comparison, so the same entry arriving via different merge
// groupings encodes — and therefore compares and wins — identically.

// MergeCorpora unions explore corpora by signature, deterministically and
// order-independently: merge(a,b) == merge(b,a) byte-for-byte, and merges
// nest associatively. Entries are normalised (Parent cleared to −1 — there
// is no shared discovery order for it to index into) and sorted by
// signature; the behaviour and failure-dedup sets union sorted. The result
// is a valid Options.SeedCorpus for the next generation of explorations.
func MergeCorpora(states ...*explore.CorpusState) (*explore.CorpusState, error) {
	out := &explore.CorpusState{SchemaVersion: explore.CorpusVersion}
	bySig := map[string]explore.Entry{}
	behaviours := map[string]bool{}
	failSigs := map[string]bool{}
	for i, st := range states {
		if st == nil {
			continue
		}
		if st.SchemaVersion > explore.CorpusVersion {
			return nil, fmt.Errorf("merge corpora: input %d: schema_version %d is newer than supported version %d", i, st.SchemaVersion, explore.CorpusVersion)
		}
		for _, e := range st.Entries {
			e.Parent = -1
			old, seen := bySig[e.Signature]
			if !seen || encodeLess(e, old) {
				bySig[e.Signature] = e
			}
		}
		for _, b := range st.Behaviours {
			behaviours[b] = true
		}
		for _, s := range st.FailureSigs {
			failSigs[s] = true
		}
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		out.Entries = append(out.Entries, bySig[s])
	}
	out.Behaviours = sortedSet(behaviours)
	out.FailureSigs = sortedSet(failSigs)
	return out, nil
}

// encodeLess orders values by their canonical JSON encoding — the total
// order every merge collision resolves through.
func encodeLess(a, b any) bool {
	return string(mustEncode(a)) < string(mustEncode(b))
}

func mustEncode(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("campaign: unencodable merge element: %v", err))
	}
	return data
}

func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Input is one report file handed to MergeReports: exactly one of Sweep and
// Explore is set. Name labels error messages.
type Input struct {
	Name    string
	Sweep   *cliutil.SweepReport
	Explore *cliutil.ExploreReport
}

// ReadInput parses report bytes of either kind, rejecting future schema
// versions.
func ReadInput(name string, data []byte) (Input, error) {
	sw, ex, err := cliutil.ReadAnyReport(name, data)
	if err != nil {
		return Input{}, err
	}
	return Input{Name: name, Sweep: sw, Explore: ex}, nil
}

// DirInputs collects a complete campaign directory's unit reports as merge
// inputs, refusing unfinished shards and verifying every unit report against
// its shard-recorded digest.
func DirInputs(dir string) ([]Input, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	states, err := ShardStates(dir, m)
	if err != nil {
		return nil, err
	}
	var inputs []Input
	for _, st := range states {
		if !st.Done() {
			return nil, fmt.Errorf("campaign %s: shard %d has %d of %d units done; run it to completion first",
				m.Name, st.Shard, st.Watermark, st.UnitHi-st.UnitLo)
		}
		for i := 0; i < st.Watermark; i++ {
			u := st.UnitLo + i
			path := UnitReportPath(dir, u)
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			if got := Digest(data); got != st.Digests[i] {
				return nil, fmt.Errorf("campaign %s: unit %d report %s does not match its recorded digest (corrupted or hand-edited)", m.Name, u, path)
			}
			in, err := ReadInput(path, data)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, in)
		}
	}
	return inputs, nil
}

// MergeDir folds a complete campaign directory into one merged report.
func MergeDir(dir string) (*Merged, error) {
	inputs, err := DirInputs(dir)
	if err != nil {
		return nil, err
	}
	return MergeReports(inputs)
}

// Merged is the campaign report: any mix of sweep and explore reports
// folded into one artifact. GeneratedBy/GoVersion are provenance, excluded
// from Canonical.
type Merged struct {
	SchemaVersion int            `json:"schema_version"`
	GeneratedBy   string         `json:"generated_by,omitempty"`
	GoVersion     string         `json:"go_version,omitempty"`
	Campaign      string         `json:"campaign,omitempty"`
	Inputs        int            `json:"inputs"`
	Sweep         *MergedSweep   `json:"sweep,omitempty"`
	Explore       *MergedExplore `json:"explore,omitempty"`
}

// MergedSweep folds sweep reports over one grid: counts summed and
// re-asserted, covered index ranges coalesced, failures deduplicated by
// fingerprint.
type MergedSweep struct {
	GridFingerprint string `json:"grid_fingerprint"`
	Proto           string `json:"proto"`
	N               int    `json:"n"`
	GridSize        int    `json:"grid_size"`
	Reports         int    `json:"reports"`
	// Ranges are the covered [lo, hi) global index ranges, disjoint by
	// construction (overlap is refused), sorted and coalesced; Complete
	// reports whether they tile the whole grid.
	Ranges    [][2]int `json:"ranges"`
	Complete  bool     `json:"complete"`
	Runs      int      `json:"runs"`
	Passed    int      `json:"passed"`
	Faulted   int      `json:"faulted"`
	Cancelled int      `json:"cancelled"`
	// Detectors sums the per-class columns across reports, sorted by spec.
	Detectors []cliutil.DetectorReport `json:"detectors,omitempty"`
	// Probes merges the shards' probe aggregates — element-wise histogram
	// addition, commutative and associative, with double-count refusal
	// supplied by the range-disjointness check above, so the merged
	// aggregate is a pure function of the covered index set. Either every
	// input carries an aggregate or none does; a mix is refused.
	Probes *probe.Agg `json:"probes,omitempty"`
	// Failures are deduplicated by result fingerprint (the minimised
	// identity of the failing behaviour), keeping the lowest grid index per
	// fingerprint, sorted by index.
	Failures  []cliutil.FailureReport   `json:"failures,omitempty"`
	Minimized []cliutil.MinimizedReport `json:"minimized,omitempty"`
}

// MergedExplore folds explore reports over one search space: one report
// per seed (exact-once), counts summed, corpora merged by MergeCorpora,
// failures and reproducers deduplicated by fingerprint, frontier tables
// unioned by tightest bracket per axis.
type MergedExplore struct {
	SpaceFingerprint string  `json:"space_fingerprint"`
	Proto            string  `json:"proto"`
	N                int     `json:"n"`
	Reports          int     `json:"reports"`
	Seeds            []int64 `json:"seeds"`
	Budget           int     `json:"budget"`
	Runs             int     `json:"runs"`
	Novel            int     `json:"novel"`
	Duplicates       int     `json:"duplicates"`
	Cancelled        int     `json:"cancelled"`
	// Corpus is the merged corpus state — loadable as the next
	// generation's seed corpus.
	Corpus *explore.CorpusState `json:"corpus,omitempty"`
	// Failures are deduplicated by result fingerprint and sorted by
	// (fingerprint, signature); Minimized by minimised fingerprint.
	Failures  []explore.Failure          `json:"failures,omitempty"`
	Minimized []explore.MinimizedFailure `json:"minimized,omitempty"`
	// Frontier unions the inputs' boundary tables: per axis (spec, param,
	// max), the tightest bracket wins; sorted by (spec, param, max).
	Frontier     []explore.Boundary `json:"frontier,omitempty"`
	FrontierRuns int                `json:"frontier_runs,omitempty"`
}

// MergeReports folds any mix of sweep/explore reports into one campaign
// report. All sweep inputs must share one grid fingerprint and all explore
// inputs one space fingerprint (a report without a fingerprint, or from a
// different grid, is refused — silently folding incompatible reports is
// exactly the failure mode this layer exists to prevent). Count identities
// are re-asserted: per-report partitions must sum, covered sweep ranges
// must be disjoint, explore seeds must be unique. The fold is
// order-independent: any permutation of inputs yields byte-identical
// output.
func MergeReports(inputs []Input) (*Merged, error) {
	out := &Merged{SchemaVersion: cliutil.ReportSchemaVersion, Inputs: len(inputs)}
	var sweeps []*cliutil.SweepReport
	var explores []*cliutil.ExploreReport
	for _, in := range inputs {
		switch {
		case in.Sweep != nil:
			sweeps = append(sweeps, in.Sweep)
		case in.Explore != nil:
			explores = append(explores, in.Explore)
		default:
			return nil, fmt.Errorf("merge: input %s holds no report", in.Name)
		}
		if c := campaignOf(in); c != "" {
			if out.Campaign != "" && out.Campaign != c {
				return nil, fmt.Errorf("merge: inputs from different campaigns %q and %q", out.Campaign, c)
			}
			out.Campaign = c
		}
	}
	if len(sweeps) > 0 {
		ms, err := mergeSweeps(sweeps)
		if err != nil {
			return nil, err
		}
		out.Sweep = ms
	}
	if len(explores) > 0 {
		me, err := mergeExplores(explores)
		if err != nil {
			return nil, err
		}
		out.Explore = me
	}
	return out, nil
}

func campaignOf(in Input) string {
	if in.Sweep != nil {
		return in.Sweep.Campaign
	}
	return in.Explore.Campaign
}

// mergeSweeps folds sweep reports over one grid.
func mergeSweeps(reports []*cliutil.SweepReport) (*MergedSweep, error) {
	first := reports[0]
	if first.GridFingerprint == "" {
		return nil, fmt.Errorf("merge: sweep report has no grid fingerprint; re-generate it with a current build")
	}
	out := &MergedSweep{
		GridFingerprint: first.GridFingerprint,
		Proto:           first.Proto,
		N:               first.N,
		GridSize:        first.GridSize,
		Reports:         len(reports),
	}
	detectors := map[string]*cliutil.DetectorReport{}
	failures := map[string]cliutil.FailureReport{}
	minimized := map[string]cliutil.MinimizedReport{}
	var ranges [][2]int
	for _, r := range reports {
		if r.GridFingerprint != out.GridFingerprint {
			return nil, fmt.Errorf("merge: grid fingerprint mismatch:\n  %s\n  %s", out.GridFingerprint, r.GridFingerprint)
		}
		if r.Proto != out.Proto || r.N != out.N || r.GridSize != out.GridSize {
			return nil, fmt.Errorf("merge: sweep report disagrees on proto/n/grid_size despite equal fingerprints (%s/%d/%d vs %s/%d/%d)",
				r.Proto, r.N, r.GridSize, out.Proto, out.N, out.GridSize)
		}
		if r.Runs != r.IndexHi-r.IndexLo || r.Passed+r.Faulted+r.Cancelled != r.Runs {
			return nil, fmt.Errorf("merge: sweep report counts do not sum: runs=%d over [%d,%d) with %d+%d+%d", r.Runs, r.IndexLo, r.IndexHi, r.Passed, r.Faulted, r.Cancelled)
		}
		ranges = append(ranges, [2]int{r.IndexLo, r.IndexHi})
		out.Runs += r.Runs
		out.Passed += r.Passed
		out.Faulted += r.Faulted
		out.Cancelled += r.Cancelled
		if (r.Probes != nil) != (first.Probes != nil) {
			return nil, fmt.Errorf("merge: some sweep reports carry probe aggregates and some do not; re-run the shards with a uniform probes setting")
		}
		if r.Probes != nil {
			if out.Probes == nil {
				out.Probes = &probe.Agg{SchemaVersion: r.Probes.SchemaVersion}
			}
			if err := out.Probes.Merge(r.Probes); err != nil {
				return nil, fmt.Errorf("merge: %v", err)
			}
		}
		for _, d := range r.Detectors {
			agg, ok := detectors[d.Spec]
			if !ok {
				agg = &cliutil.DetectorReport{Spec: d.Spec}
				detectors[d.Spec] = agg
			}
			agg.Runs += d.Runs
			agg.Passed += d.Passed
			agg.Faulted += d.Faulted
			agg.Cancelled += d.Cancelled
			if d.Probes != nil {
				if agg.Probes == nil {
					agg.Probes = &probe.Agg{SchemaVersion: d.Probes.SchemaVersion}
				}
				if err := agg.Probes.Merge(d.Probes); err != nil {
					return nil, fmt.Errorf("merge: detector %s: %v", d.Spec, err)
				}
			}
		}
		for _, f := range r.Failures {
			old, seen := failures[f.Fingerprint]
			if !seen || f.Index < old.Index || (f.Index == old.Index && encodeLess(f, old)) {
				failures[f.Fingerprint] = f
			}
		}
		if m := r.Minimized; m != nil {
			old, seen := minimized[m.Fingerprint]
			if !seen || m.FromIndex < old.FromIndex || (m.FromIndex == old.FromIndex && encodeLess(*m, old)) {
				minimized[m.Fingerprint] = *m
			}
		}
	}
	var err error
	if out.Ranges, err = coalesce(ranges); err != nil {
		return nil, err
	}
	out.Complete = len(out.Ranges) == 1 && out.Ranges[0] == [2]int{0, out.GridSize}
	for _, spec := range sortedDetectorSpecs(detectors) {
		out.Detectors = append(out.Detectors, *detectors[spec])
	}
	if len(out.Detectors) > 0 {
		sum := 0
		for _, d := range out.Detectors {
			sum += d.Runs
		}
		if sum != out.Runs {
			return nil, fmt.Errorf("merge: per-detector runs sum to %d, merged runs are %d", sum, out.Runs)
		}
	}
	for _, f := range sortedFailures(failures) {
		out.Failures = append(out.Failures, f)
	}
	for _, m := range sortedMinimized(minimized) {
		out.Minimized = append(out.Minimized, m)
	}
	return out, nil
}

// coalesce sorts [lo,hi) ranges, refuses overlap, and joins adjacency.
func coalesce(ranges [][2]int) ([][2]int, error) {
	sort.Slice(ranges, func(i, j int) bool { return ranges[i][0] < ranges[j][0] })
	var out [][2]int
	for _, r := range ranges {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if r[0] < prev[1] {
				return nil, fmt.Errorf("merge: index ranges overlap: [%d,%d) and [%d,%d) — the same grid points were counted twice", prev[0], prev[1], r[0], r[1])
			}
			if r[0] == prev[1] {
				prev[1] = r[1]
				continue
			}
		}
		out = append(out, r)
	}
	return out, nil
}

func sortedDetectorSpecs(m map[string]*cliutil.DetectorReport) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedFailures(m map[string]cliutil.FailureReport) []cliutil.FailureReport {
	out := make([]cliutil.FailureReport, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

func sortedMinimized(m map[string]cliutil.MinimizedReport) []cliutil.MinimizedReport {
	out := make([]cliutil.MinimizedReport, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FromIndex != out[j].FromIndex {
			return out[i].FromIndex < out[j].FromIndex
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// mergeExplores folds explore reports over one search space.
func mergeExplores(reports []*cliutil.ExploreReport) (*MergedExplore, error) {
	first := reports[0]
	if first.SpaceFingerprint == "" {
		return nil, fmt.Errorf("merge: explore report has no space fingerprint; re-generate it with a current build")
	}
	out := &MergedExplore{
		SpaceFingerprint: first.SpaceFingerprint,
		Proto:            first.Proto,
		N:                first.N,
		Reports:          len(reports),
	}
	seeds := map[int64]bool{}
	failures := map[string]explore.Failure{}
	minimized := map[string]explore.MinimizedFailure{}
	frontier := map[string]explore.Boundary{}
	var corpora []*explore.CorpusState
	for _, r := range reports {
		if r.SpaceFingerprint != out.SpaceFingerprint {
			return nil, fmt.Errorf("merge: space fingerprint mismatch:\n  %s\n  %s", out.SpaceFingerprint, r.SpaceFingerprint)
		}
		if r.Proto != out.Proto || r.N != out.N {
			return nil, fmt.Errorf("merge: explore report disagrees on proto/n despite equal fingerprints")
		}
		if seeds[r.Seed] {
			return nil, fmt.Errorf("merge: two explore reports carry seed %d — the same exploration was counted twice", r.Seed)
		}
		seeds[r.Seed] = true
		if r.Novel != len(r.Corpus) {
			return nil, fmt.Errorf("merge: explore report seed %d: novel=%d but corpus holds %d entries", r.Seed, r.Novel, len(r.Corpus))
		}
		out.Budget += r.Budget
		out.Runs += r.Runs
		out.Novel += r.Novel
		out.Duplicates += r.Duplicates
		out.Cancelled += r.Cancelled
		out.FrontierRuns += r.FrontierRuns
		corpora = append(corpora, r.CorpusState())
		for _, f := range r.Failures {
			old, seen := failures[f.Fingerprint]
			if !seen || encodeLess(f, old) {
				failures[f.Fingerprint] = f
			}
		}
		for _, mf := range r.Minimized {
			old, seen := minimized[mf.Fingerprint]
			if !seen || encodeLess(mf, old) {
				minimized[mf.Fingerprint] = mf
			}
		}
		for _, b := range r.Frontier {
			key := fmt.Sprintf("%s\x00%s\x00%d", b.Spec, b.Param, b.Max)
			old, seen := frontier[key]
			if !seen || b.Tighter(old) || (!old.Tighter(b) && encodeLess(b, old)) {
				frontier[key] = b
			}
		}
	}
	for s := range seeds {
		out.Seeds = append(out.Seeds, s)
	}
	sort.Slice(out.Seeds, func(i, j int) bool { return out.Seeds[i] < out.Seeds[j] })
	var err error
	if out.Corpus, err = MergeCorpora(corpora...); err != nil {
		return nil, err
	}
	for _, f := range sortedByFingerprint(failures) {
		out.Failures = append(out.Failures, f)
	}
	mins := make([]string, 0, len(minimized))
	for k := range minimized {
		mins = append(mins, k)
	}
	sort.Strings(mins)
	for _, k := range mins {
		out.Minimized = append(out.Minimized, minimized[k])
	}
	axes := make([]string, 0, len(frontier))
	for k := range frontier {
		axes = append(axes, k)
	}
	sort.Strings(axes)
	for _, k := range axes {
		out.Frontier = append(out.Frontier, frontier[k])
	}
	return out, nil
}

func sortedByFingerprint(m map[string]explore.Failure) []explore.Failure {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]explore.Failure, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Marshal renders the merged report as indented JSON.
func (m *Merged) Marshal() ([]byte, error) { return marshalJSON(m) }

// Canonical renders the merged report's deterministic content byte-stably:
// everything except the provenance header. Equal campaigns — same
// fingerprint, same seed/index coverage — render identically regardless of
// shard count, merge order, kills and resumes; the campaign smoke compares
// these bytes across shard layouts.
func (m *Merged) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign merge schema=%d campaign=%s inputs=%d\n", m.SchemaVersion, m.Campaign, m.Inputs)
	if s := m.Sweep; s != nil {
		fmt.Fprintf(&b, "sweep fingerprint=%s\n", s.GridFingerprint)
		fmt.Fprintf(&b, "  proto=%s n=%d grid_size=%d reports=%d complete=%t ranges=%v\n",
			s.Proto, s.N, s.GridSize, s.Reports, s.Complete, s.Ranges)
		fmt.Fprintf(&b, "  runs=%d passed=%d faulted=%d cancelled=%d\n", s.Runs, s.Passed, s.Faulted, s.Cancelled)
		if p := s.Probes; p != nil {
			fmt.Fprintf(&b, "  probes runs=%d messages[%s] decision_latency[%s] detection_latency[%s] crashes=%d detected=%d missed=%d\n",
				p.Runs, probe.Summary(&p.Messages), probe.Summary(&p.DecisionLatency), probe.Summary(&p.DetectionLatency),
				p.CrashesSeen, p.Detected, p.Missed)
		}
		for _, d := range s.Detectors {
			fmt.Fprintf(&b, "  detector %s: runs=%d passed=%d faulted=%d cancelled=%d\n", d.Spec, d.Runs, d.Passed, d.Faulted, d.Cancelled)
			if p := d.Probes; p != nil {
				fmt.Fprintf(&b, "    probes messages[%s] detection_latency[%s] detected=%d/%d\n",
					probe.Summary(&p.Messages), probe.Summary(&p.DetectionLatency), p.Detected, p.CrashesSeen)
			}
		}
		for _, f := range s.Failures {
			fmt.Fprintf(&b, "  failure index=%d violations=%v\n", f.Index, f.Violations)
			writeIndented(&b, f.Fingerprint)
		}
		for _, mf := range s.Minimized {
			fmt.Fprintf(&b, "  minimized from_index=%d candidates=%d violations=%v\n", mf.FromIndex, mf.Candidates, mf.Violations)
			writeIndented(&b, mf.Fingerprint)
		}
	}
	if e := m.Explore; e != nil {
		fmt.Fprintf(&b, "explore fingerprint=%s\n", e.SpaceFingerprint)
		fmt.Fprintf(&b, "  proto=%s n=%d reports=%d seeds=%v\n", e.Proto, e.N, e.Reports, e.Seeds)
		fmt.Fprintf(&b, "  budget=%d runs=%d novel=%d dup=%d cancelled=%d\n", e.Budget, e.Runs, e.Novel, e.Duplicates, e.Cancelled)
		if c := e.Corpus; c != nil {
			fmt.Fprintf(&b, "  corpus entries=%d behaviours=%d failure_sigs=%d\n", len(c.Entries), len(c.Behaviours), len(c.FailureSigs))
			for _, entry := range c.Entries {
				fmt.Fprintf(&b, "    failing=%t energy=%g sig=%s\n", entry.Failing, entry.Energy, entry.Signature)
			}
		}
		for _, f := range e.Failures {
			fmt.Fprintf(&b, "  failure sig=%s violations=%v\n", f.Signature, f.Violations)
			writeIndented(&b, f.Fingerprint)
		}
		for _, mf := range e.Minimized {
			fmt.Fprintf(&b, "  minimized from_sig=%s candidates=%d violations=%v\n", mf.FromSignature, mf.Candidates, mf.Violations)
			writeIndented(&b, mf.Fingerprint)
		}
		for _, bd := range e.Frontier {
			fmt.Fprintf(&b, "  frontier %s:%s max=%d inverted=%t unsolvable=%t censored=%t bracket=(%d,%d]/[%d,%d)\n",
				bd.Spec, bd.Param, bd.Max, bd.Inverted, bd.Unsolvable, bd.Censored, bd.MaxPassing, bd.MinFailing, bd.MaxFailing, bd.MinPassing)
		}
		if e.FrontierRuns > 0 {
			fmt.Fprintf(&b, "  frontier_runs=%d\n", e.FrontierRuns)
		}
	}
	return b.String()
}

// writeIndented writes a multi-line fingerprint at uniform indentation.
func writeIndented(b *strings.Builder, s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Fprintf(b, "    %s\n", line)
	}
}
