package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"weakestfd/internal/cliutil"
	"weakestfd/internal/explore"
	"weakestfd/internal/scenario"
)

// ShardState is one shard's mutable progress: the watermark of contiguous
// completed units and the digest of each completed unit's report file. Each
// shard owns exactly one state file (shard-<k>.state.json), so concurrent
// shards never contend on shared mutable state; the manifest stays
// immutable. The watermark advances only after the unit's report has been
// atomically renamed into place — the exact-once invariant: units at or
// past the watermark boundary either have a durable, digest-recorded report
// or will be (re-)issued by resume, never both.
type ShardState struct {
	SchemaVersion int    `json:"schema_version"`
	Campaign      string `json:"campaign"`
	Fingerprint   string `json:"fingerprint"`
	Shard         int    `json:"shard"`
	// UnitLo and UnitHi bound the half-open unit range this shard owns.
	UnitLo int `json:"unit_lo"`
	UnitHi int `json:"unit_hi"`
	// Watermark counts leading completed units: units
	// [UnitLo, UnitLo+Watermark) are done and digest-recorded.
	Watermark int `json:"watermark"`
	// Digests holds the sha256 of each completed unit report, aligned with
	// UnitLo+i.
	Digests []string `json:"digests,omitempty"`
}

// Done reports whether every unit of the shard's range is complete.
func (s *ShardState) Done() bool { return s.Watermark >= s.UnitHi-s.UnitLo }

// loadShardState reads shard k's state, or initialises a fresh one when no
// state file exists yet. The state must belong to this manifest.
func loadShardState(dir string, m *Manifest, k int) (*ShardState, error) {
	lo, hi, err := m.UnitRange(k)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(shardPath(dir, k))
	if os.IsNotExist(err) {
		return &ShardState{
			SchemaVersion: ManifestVersion,
			Campaign:      m.Name,
			Fingerprint:   m.Fingerprint,
			Shard:         k,
			UnitLo:        lo,
			UnitHi:        hi,
		}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", m.Name, err)
	}
	var st ShardState
	if err := unmarshalJSON(data, &st); err != nil {
		return nil, fmt.Errorf("campaign %s: parse %s: %w", m.Name, shardPath(dir, k), err)
	}
	if st.SchemaVersion > ManifestVersion {
		return nil, fmt.Errorf("campaign %s: shard state schema_version %d is newer than this build understands (%d)", m.Name, st.SchemaVersion, ManifestVersion)
	}
	if st.Fingerprint != m.Fingerprint || st.Campaign != m.Name || st.Shard != k || st.UnitLo != lo || st.UnitHi != hi {
		return nil, fmt.Errorf("campaign %s: shard state %s does not belong to this manifest (stale or foreign state)", m.Name, shardPath(dir, k))
	}
	if st.Watermark < 0 || st.Watermark > hi-lo || len(st.Digests) != st.Watermark {
		return nil, fmt.Errorf("campaign %s: shard state %s is corrupt (watermark %d, %d digests over %d units)", m.Name, shardPath(dir, k), st.Watermark, len(st.Digests), hi-lo)
	}
	return &st, nil
}

// ShardStates loads every shard's state (fresh zero-watermark states for
// shards that have not started).
func ShardStates(dir string, m *Manifest) ([]*ShardState, error) {
	out := make([]*ShardState, 0, m.Shards)
	for k := 1; k <= m.Shards; k++ {
		st, err := loadShardState(dir, m, k)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// save writes the state atomically.
func (s *ShardState) save(dir string) error {
	data, err := marshalJSON(s)
	if err != nil {
		return err
	}
	return cliutil.WriteFileAtomic(shardPath(dir, s.Shard), data)
}

// RunOptions configures one shard execution. None of it affects unit
// results — workers parallelise within a unit, the log only narrates, and
// journal dumps are separate files beside the unit reports (unit report
// bytes stay a pure function of the campaign fingerprint and unit index,
// journaled or not).
type RunOptions struct {
	Dir     string
	Shard   int
	Workers int
	Log     io.Writer // nil = silent
	// JournalDir, when non-empty, dumps a full trace journal for every
	// failure a completed unit retained (cmd/replay replays them). Dumps
	// re-run the failing config with capture on — deterministic, so the
	// journal records the retained failure's exact schedule.
	JournalDir string
	// OnUnit, when non-nil, is called after every completed (or adopted)
	// unit with the shard's cumulative done count and its unit total — the
	// hook cmd/campaign's -progress emitter snapshots. Called from the
	// shard loop goroutine, between units.
	OnUnit func(done, total int)
}

// RunShard executes (or resumes — the operation is the same) the pending
// units of one shard, in unit order, checkpointing after every unit. It
// returns the units completed across all invocations and the shard's unit
// total. Cancelling ctx stops between runs; the unit in flight is abandoned
// unreported and will be re-issued by the next invocation, byte-identically
// (unit reports are pure functions of the campaign fingerprint and unit
// index).
func RunShard(ctx context.Context, opts RunOptions) (done, total int, err error) {
	m, err := LoadManifest(opts.Dir)
	if err != nil {
		return 0, 0, err
	}
	st, err := loadShardState(opts.Dir, m, opts.Shard)
	if err != nil {
		return 0, 0, err
	}
	total = st.UnitHi - st.UnitLo
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	if st.Watermark > 0 {
		logf("campaign %s shard %d/%d: resuming at unit %d (%d/%d done)",
			m.Name, opts.Shard, m.Shards, st.UnitLo+st.Watermark, st.Watermark, total)
	}
	for u := st.UnitLo + st.Watermark; u < st.UnitHi; u++ {
		if err := ctx.Err(); err != nil {
			return st.Watermark, total, fmt.Errorf("campaign %s shard %d: cancelled before unit %d: %w", m.Name, opts.Shard, u, err)
		}
		data, adopted, err := unitReport(ctx, m, opts, u)
		if err != nil {
			return st.Watermark, total, err
		}
		path := UnitReportPath(opts.Dir, u)
		if !adopted {
			if err := cliutil.WriteFileAtomic(path, data); err != nil {
				return st.Watermark, total, fmt.Errorf("campaign %s: write %s: %w", m.Name, path, err)
			}
		}
		st.Digests = append(st.Digests, Digest(data))
		st.Watermark++
		if err := st.save(opts.Dir); err != nil {
			return st.Watermark - 1, total, fmt.Errorf("campaign %s: save shard state: %w", m.Name, err)
		}
		verb := "completed"
		if adopted {
			verb = "adopted"
		}
		logf("campaign %s shard %d/%d: %s unit %d (%d/%d)", m.Name, opts.Shard, m.Shards, verb, u, st.Watermark, total)
		if opts.OnUnit != nil {
			opts.OnUnit(st.Watermark, total)
		}
		if opts.JournalDir != "" {
			if err := dumpUnitJournals(ctx, m, opts, u, data, logf); err != nil {
				// Journals are diagnostics beside the campaign, not part of
				// its algebra: a dump failure is narrated, never fatal.
				logf("campaign %s shard %d/%d: unit %d journals: %v", m.Name, opts.Shard, m.Shards, u, err)
			}
		}
	}
	return st.Watermark, total, nil
}

// dumpUnitJournals writes a full trace journal beside the unit reports for
// every failure the unit's canonical report retained. It re-parses the
// report bytes (so adopted and freshly-run units journal identically) and
// re-runs each failing config with capture on — both deterministic, so the
// journals are as reproducible as the reports they annotate.
func dumpUnitJournals(ctx context.Context, m *Manifest, opts RunOptions, u int, data []byte, logf func(string, ...any)) error {
	sw, ex, err := cliutil.ReadAnyReport("unit report", data)
	if err != nil {
		return err
	}
	jf := cliutil.JournalFlags{Dir: opts.JournalDir}
	var proto scenario.Protocol
	switch {
	case sw != nil:
		if _, _, proto, err = cliutil.BuildGrid(*m.Grid); err != nil {
			return err
		}
		for _, f := range sw.Failures {
			name := fmt.Sprintf("unit-%06d-failure-%06d", u, f.Index)
			path, err := jf.Dump(ctx, name, f.Config, proto)
			if err != nil {
				return err
			}
			logf("campaign %s: journaled unit %d failure %d -> %s", m.Name, u, f.Index, path)
		}
	case ex != nil:
		eopts, err := m.Explore.Options(m.UnitSeed(u))
		if err != nil {
			return err
		}
		proto = eopts.Proto
		for _, f := range ex.Failures {
			name := fmt.Sprintf("unit-%06d-failure-run%06d", u, f.Run)
			path, err := jf.Dump(ctx, name, f.Config, proto)
			if err != nil {
				return err
			}
			logf("campaign %s: journaled unit %d failure at run %d -> %s", m.Name, u, f.Run, path)
		}
	}
	return nil
}

// unitReport produces unit u's canonical report bytes — re-using an
// already-durable report file when one exists and checks out (the
// crash-between-rename-and-watermark window), else executing the unit.
func unitReport(ctx context.Context, m *Manifest, opts RunOptions, u int) (data []byte, adopted bool, err error) {
	if old, err := os.ReadFile(UnitReportPath(opts.Dir, u)); err == nil {
		if adoptable(m, u, old) {
			return old, true, nil
		}
	}
	switch m.Kind {
	case KindSweep:
		data, err = runSweepUnit(ctx, m, opts, u)
	case KindExplore:
		data, err = runExploreUnit(ctx, m, opts, u)
	default:
		err = fmt.Errorf("campaign %s: unknown kind %q", m.Name, m.Kind)
	}
	return data, false, err
}

// adoptable reports whether previously-written unit report bytes belong to
// this campaign and unit.
func adoptable(m *Manifest, u int, data []byte) bool {
	sw, ex, err := cliutil.ReadAnyReport("unit report", data)
	if err != nil {
		return false
	}
	switch {
	case sw != nil:
		return m.Kind == KindSweep && sw.Campaign == m.Name && sw.Unit != nil && *sw.Unit == u && sw.GridFingerprint == m.Fingerprint
	case ex != nil:
		return m.Kind == KindExplore && ex.Campaign == m.Name && ex.Unit != nil && *ex.Unit == u && ex.SpaceFingerprint == m.Fingerprint
	}
	return false
}

// runSweepUnit sweeps grid slice u and renders its unit report: the
// cmd/sweep report shape with campaign provenance and no wall-clock fields.
func runSweepUnit(ctx context.Context, m *Manifest, opts RunOptions, u int) ([]byte, error) {
	base, grid, proto, err := cliutil.BuildGrid(*m.Grid)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", m.Name, err)
	}
	grid.Shard = scenario.Shard{Index: u + 1, Count: m.Units}
	grid.Workers = opts.Workers
	res := scenario.Sweep(ctx, base, grid, proto)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign %s: unit %d cancelled: %w", m.Name, u, err)
	}
	unit := u
	rep := cliutil.SweepReport{
		SchemaVersion:   cliutil.ReportSchemaVersion,
		Campaign:        m.Name,
		Unit:            &unit,
		GridFingerprint: m.Fingerprint,
		Proto:           proto.Name(),
		N:               m.Grid.N,
		GridSize:        res.GridSize,
		IndexLo:         res.IndexLo,
		IndexHi:         res.IndexHi,
		Runs:            res.Runs,
		Passed:          res.Passed,
		Faulted:         res.Faulted,
		Cancelled:       res.Cancelled,
	}
	rep.Probes = res.Probes
	for _, d := range res.Detectors {
		rep.Detectors = append(rep.Detectors, cliutil.DetectorReport(d))
	}
	for i, f := range res.Failures {
		rep.Failures = append(rep.Failures, cliutil.FailureReport{
			Index:       res.FailureIndices[i],
			Violations:  f.Verdict.Violations,
			Fingerprint: f.Fingerprint(),
			Config:      f.Config,
		})
	}
	return marshalJSON(rep)
}

// runExploreUnit explores at the unit's seed and renders its unit report.
func runExploreUnit(ctx context.Context, m *Manifest, opts RunOptions, u int) ([]byte, error) {
	eopts, err := m.Explore.Options(m.UnitSeed(u))
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", m.Name, err)
	}
	eopts.Workers = opts.Workers
	res, err := explore.Explore(ctx, eopts)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: unit %d: %w", m.Name, u, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign %s: unit %d cancelled: %w", m.Name, u, err)
	}
	unit := u
	rep := cliutil.ExploreReport{Campaign: m.Name, Unit: &unit, SpaceFingerprint: m.Fingerprint}
	rep.FromExplore(res)
	return marshalJSON(rep)
}

// Digest is the sha256 of a unit report, hex-encoded — what shard states
// record and merge verifies.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
