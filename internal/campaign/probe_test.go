package campaign

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"weakestfd/internal/cliutil"
	"weakestfd/internal/probe"
	"weakestfd/internal/scenario"
)

// TestSweepCampaignProbes is the acceptance check for probe aggregation at
// campaign scale: a probed, detector-axis sweep campaign split across two
// shards merges to byte-identical overall and per-detector-class probe
// aggregates as a direct in-process sweep of the same grid — shard count
// and merge order must not leak into the analytics.
func TestSweepCampaignProbes(t *testing.T) {
	// Slow links push the decision past the crash, so the crash lands inside
	// the trace and the detection join has something to measure.
	grid := &cliutil.GridSpec{
		Proto: "consensus", N: 4, Seeds: "1-6",
		Detectors: "omega-sigma,perfect",
		Delays:    "1ms:10ms",
		Crashes:   "-;3@2ms", Timeout: "30s", Keep: 2,
		Probes: true,
	}
	dir := t.TempDir()
	m := &Manifest{Name: "probecamp", Kind: KindSweep, Units: 4, Shards: 2, Grid: grid}
	if err := Plan(dir, m); err != nil {
		t.Fatalf("plan: %v", err)
	}
	runShardOK(t, dir, 1)
	runShardOK(t, dir, 2)
	merged, err := MergeDir(dir)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	s := merged.Sweep
	if s == nil || !s.Complete {
		t.Fatalf("merged sweep incomplete: %+v", s)
	}
	if s.Probes == nil {
		t.Fatal("merged probed campaign carries no probe aggregate")
	}

	base, g, proto, err := cliutil.BuildGrid(*grid)
	if err != nil {
		t.Fatalf("build grid: %v", err)
	}
	direct := scenario.Sweep(context.Background(), base, g, proto)
	if got, want := marshal(t, s.Probes), marshal(t, direct.Probes); got != want {
		t.Fatalf("merged aggregate diverges from the direct sweep\nmerged: %s\ndirect: %s", got, want)
	}
	if len(s.Detectors) != len(direct.Detectors) {
		t.Fatalf("detector counts: %d merged vs %d direct", len(s.Detectors), len(direct.Detectors))
	}
	for i, d := range s.Detectors {
		if got, want := marshal(t, d.Probes), marshal(t, direct.Detectors[i].Probes); got != want {
			t.Fatalf("detector %s aggregate diverges\nmerged: %s\ndirect: %s", d.Spec, got, want)
		}
	}
	if s.Probes.DetectionLatency.Count == 0 {
		t.Fatalf("crash schedule produced no detection-latency samples: %+v", s.Probes)
	}

	// Merge order must not change the bytes: refold the unit reports in
	// reverse and compare canonical renderings.
	inputs, err := DirInputs(dir)
	if err != nil {
		t.Fatalf("dir inputs: %v", err)
	}
	for i, j := 0, len(inputs)-1; i < j; i, j = i+1, j-1 {
		inputs[i], inputs[j] = inputs[j], inputs[i]
	}
	reversed, err := MergeReports(inputs)
	if err != nil {
		t.Fatalf("reversed merge: %v", err)
	}
	if reversed.Canonical() != merged.Canonical() {
		t.Fatalf("merge is order-dependent:\n--- forward ---\n%s\n--- reversed ---\n%s",
			merged.Canonical(), reversed.Canonical())
	}
	if !strings.Contains(merged.Canonical(), "probes runs=") {
		t.Fatalf("canonical rendering omits the probe block:\n%s", merged.Canonical())
	}
}

// TestMergeRefusesProbedMix: shard reports must agree on whether probes
// were captured — folding a probed shard with an unprobed one would
// silently undercount, so the merge refuses instead.
func TestMergeRefusesProbedMix(t *testing.T) {
	mkSweep := func(lo, hi int, agg *probe.Agg) Input {
		return Input{Name: "r", Sweep: &cliutil.SweepReport{
			SchemaVersion: cliutil.ReportSchemaVersion, GridFingerprint: "fp",
			Proto: "consensus", N: 4, GridSize: 10, IndexLo: lo, IndexHi: hi,
			Runs: hi - lo, Passed: hi - lo, Probes: agg,
		}}
	}
	_, err := MergeReports([]Input{mkSweep(0, 6, probe.NewAgg()), mkSweep(6, 10, nil)})
	if err == nil || !strings.Contains(err.Error(), "probe") {
		t.Fatalf("probed/unprobed mix: err=%v", err)
	}
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}
