// Package quorum provides the quorum "guards" used by the register and
// consensus protocols: predicates that decide when a set of acknowledging
// processes is sufficient to complete a phase.
//
// The two main guards mirror the paper's two regimes:
//
//   - MajorityGuard waits for acknowledgements from a strict majority of the
//     processes. It is the guard of the classical Attiya–Bar-Noy–Dolev
//     register and the Chandra–Toueg consensus baseline; it guarantees
//     intersection only in majority-correct environments.
//   - SigmaGuard waits until the acknowledging set covers a quorum currently
//     output by the failure detector Sigma. The intersection property of
//     Sigma gives safety in any environment, and its completeness property
//     gives termination (the quorum eventually contains only correct
//     processes, all of which acknowledge).
package quorum

import (
	"fmt"

	"weakestfd/internal/model"
)

// Guard decides when a set of acknowledging processes suffices to complete a
// quorum phase.
type Guard interface {
	// Satisfied reports whether acknowledgements from the given set of
	// processes are sufficient to complete a quorum phase. Implementations
	// may consult live state (e.g. re-read the failure detector), so callers
	// should re-invoke Satisfied when either the acknowledging set grows or
	// time passes.
	Satisfied(acked model.ProcessSet) bool
	// Name returns a short identifier for traces and experiment tables.
	Name() string
}

// MajorityGuard is satisfied once more than half of the N processes have
// acknowledged.
type MajorityGuard struct {
	N int
}

// Satisfied implements Guard.
func (g MajorityGuard) Satisfied(acked model.ProcessSet) bool {
	return 2*acked.Len() > g.N
}

// Name implements Guard.
func (g MajorityGuard) Name() string { return fmt.Sprintf("majority(%d)", g.N) }

// SigmaSource is the slice of the Sigma failure-detector interface the guard
// needs: the quorum currently output at the guarding process (fd.Sigma —
// any fd.Detector[model.ProcessSet] — satisfies it).
type SigmaSource interface {
	Sample() model.ProcessSet
}

// SigmaGuard is satisfied once the acknowledging set covers the quorum
// currently output by Sigma at the guarding process.
type SigmaGuard struct {
	Source SigmaSource
}

// Satisfied implements Guard.
func (g SigmaGuard) Satisfied(acked model.ProcessSet) bool {
	return g.Source.Sample().SubsetOf(acked)
}

// Name implements Guard.
func (g SigmaGuard) Name() string { return "sigma" }

// FixedGuard is satisfied once a fixed set of processes has acknowledged.
// It is used by tests and by adversarial ablations.
type FixedGuard struct {
	Need model.ProcessSet
}

// Satisfied implements Guard.
func (g FixedGuard) Satisfied(acked model.ProcessSet) bool { return g.Need.SubsetOf(acked) }

// Name implements Guard.
func (g FixedGuard) Name() string { return fmt.Sprintf("fixed%v", g.Need) }

// AllGuard is satisfied only when all N processes have acknowledged; it is the
// guard of the blocking two-phase-commit baseline.
type AllGuard struct {
	N int
}

// Satisfied implements Guard.
func (g AllGuard) Satisfied(acked model.ProcessSet) bool { return acked.Len() >= g.N }

// Name implements Guard.
func (g AllGuard) Name() string { return fmt.Sprintf("all(%d)", g.N) }
