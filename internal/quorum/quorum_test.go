package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"weakestfd/internal/model"
)

func TestMajorityGuard(t *testing.T) {
	g := MajorityGuard{N: 5}
	if g.Satisfied(model.NewProcessSet(0, 1)) {
		t.Errorf("2/5 satisfied majority")
	}
	if !g.Satisfied(model.NewProcessSet(0, 1, 2)) {
		t.Errorf("3/5 did not satisfy majority")
	}
	if g.Name() != "majority(5)" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestMajorityGuardEvenN(t *testing.T) {
	g := MajorityGuard{N: 4}
	if g.Satisfied(model.NewProcessSet(0, 1)) {
		t.Errorf("2/4 satisfied majority (needs strict majority)")
	}
	if !g.Satisfied(model.NewProcessSet(0, 1, 2)) {
		t.Errorf("3/4 did not satisfy majority")
	}
}

type fixedSigma struct{ q model.ProcessSet }

func (f fixedSigma) Sample() model.ProcessSet { return f.q }

func TestSigmaGuard(t *testing.T) {
	g := SigmaGuard{Source: fixedSigma{q: model.NewProcessSet(1, 3)}}
	if g.Satisfied(model.NewProcessSet(1)) {
		t.Errorf("partial cover satisfied sigma guard")
	}
	if !g.Satisfied(model.NewProcessSet(1, 2, 3)) {
		t.Errorf("superset did not satisfy sigma guard")
	}
	if g.Name() != "sigma" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestFixedAndAllGuards(t *testing.T) {
	fg := FixedGuard{Need: model.NewProcessSet(0, 2)}
	if fg.Satisfied(model.NewProcessSet(0, 1)) || !fg.Satisfied(model.NewProcessSet(0, 1, 2)) {
		t.Errorf("FixedGuard wrong")
	}
	ag := AllGuard{N: 3}
	if ag.Satisfied(model.NewProcessSet(0, 1)) || !ag.Satisfied(model.NewProcessSet(0, 1, 2)) {
		t.Errorf("AllGuard wrong")
	}
	if fg.Name() == "" || ag.Name() == "" {
		t.Errorf("names empty")
	}
}

// Property: any two acknowledging sets that each satisfy a majority guard over
// the same N intersect — the intersection property the register relies on.
func TestQuickMajorityIntersection(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		g := MajorityGuard{N: n}
		a, b := model.NewProcessSet(), model.NewProcessSet()
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				a.Add(model.ProcessID(i))
			}
			if r.Intn(2) == 0 {
				b.Add(model.ProcessID(i))
			}
		}
		if g.Satisfied(a) && g.Satisfied(b) {
			return a.Intersects(b)
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: growing the acknowledging set never unsatisfies a guard
// (monotonicity), for the guards whose state is fixed.
func TestQuickGuardMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		guards := []Guard{
			MajorityGuard{N: n},
			AllGuard{N: n},
			FixedGuard{Need: model.NewProcessSet(model.ProcessID(r.Intn(n)))},
			SigmaGuard{Source: fixedSigma{q: model.NewProcessSet(model.ProcessID(r.Intn(n)))}},
		}
		acked := model.NewProcessSet()
		sat := make([]bool, len(guards))
		for i := 0; i < n; i++ {
			acked.Add(model.ProcessID(i))
			for gi, g := range guards {
				now := g.Satisfied(acked)
				if sat[gi] && !now {
					return false
				}
				sat[gi] = now
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
