package nbac

import (
	"context"
	"fmt"

	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/trace"
)

// TwoPC is the classical blocking two-phase commit: every participant sends
// its vote to a fixed coordinator, the coordinator waits for all votes and
// broadcasts Commit iff every vote was Yes, and every participant waits for
// the coordinator's decision.
//
// TwoPC satisfies the agreement and validity clauses of atomic commit but not
// the non-blocking termination clause: a single crash (of a participant
// before voting, or of the coordinator before deciding) blocks every other
// process forever. It is the baseline the experiment harness contrasts with
// the (Ψ, FS)-based NBAC.
type TwoPC struct {
	ep          *net.Endpoint
	instance    string
	coordinator model.ProcessID
	metrics     *trace.Metrics
}

// NewTwoPC creates the participant for the process behind ep, with the given
// fixed coordinator.
func NewTwoPC(ep *net.Endpoint, instance string, coordinator model.ProcessID, opts ...Option) *TwoPC {
	o := buildOptions(opts)
	return &TwoPC{
		ep:          ep,
		instance:    "twopc." + instance,
		coordinator: coordinator,
		metrics:     o.metrics,
	}
}

// Metrics returns the participant's metrics sink.
func (t *TwoPC) Metrics() *trace.Metrics { return t.metrics }

type twopcDecision struct {
	Outcome Outcome
}

// Vote runs the protocol with vote v. It blocks (until the context expires)
// if any process crashes at an inconvenient time — that is the point of the
// baseline.
func (t *TwoPC) Vote(ctx context.Context, v Vote) (Outcome, error) {
	t.metrics.Inc("vote")
	// Step mode: adopt the caller. Blocking forever on a crashed peer is the
	// point of the baseline; a parked task that is never woken again simply
	// stays quiescent until the run's deadline escapes it.
	ctx, release := net.AdoptTask(ctx, t.ep, "twopc.vote")
	defer release()
	task := net.TaskFrom(ctx)
	var in net.Instance
	var inbox <-chan net.Message
	if task != nil {
		in = t.ep.Instance(t.instance)
		in.Watch(task)
		defer in.Watch(nil)
	} else {
		inbox = t.ep.Subscribe(t.instance)
	}
	recv := func() (net.Message, error) {
		if task != nil {
			for {
				if msg, ok := in.TryRecv(); ok {
					return msg, nil
				}
				if err := ctx.Err(); err != nil {
					return net.Message{}, err
				}
				if err := t.ep.Context().Err(); err != nil {
					return net.Message{}, err
				}
				task.Await(ctx)
			}
		}
		select {
		case <-ctx.Done():
			return net.Message{}, ctx.Err()
		case <-t.ep.Context().Done():
			return net.Message{}, t.ep.Context().Err()
		case msg := <-inbox:
			return msg, nil
		}
	}

	// Phase 1: every participant (including the coordinator) sends its vote
	// to the coordinator.
	t.ep.Send(t.coordinator, t.instance, "vote", voteMsg{Vote: v})

	if t.ep.ID() == t.coordinator {
		votes := make(map[model.ProcessID]Vote, t.ep.N())
		for len(votes) < t.ep.N() {
			msg, err := recv()
			if err != nil {
				return Abort, fmt.Errorf("2pc coordinator: %w", err)
			}
			if msg.Type == "vote" {
				votes[msg.From] = msg.Payload.(voteMsg).Vote
			}
		}
		outcome := Commit
		for _, vote := range votes {
			if vote == VoteNo {
				outcome = Abort
				break
			}
		}
		// Phase 2: announce the decision.
		t.ep.Broadcast(t.instance, "decision", twopcDecision{Outcome: outcome})
	}

	// Every participant waits for the coordinator's decision.
	for {
		msg, err := recv()
		if err != nil {
			return Abort, fmt.Errorf("2pc participant: %w", err)
		}
		if msg.Type == "decision" {
			return msg.Payload.(twopcDecision).Outcome, nil
		}
	}
}

// Run executes one single-shot 2PC at this participant: it votes input (a
// Vote or bool) and returns the Outcome (the scenario harness's common
// participant entry point).
func (t *TwoPC) Run(ctx context.Context, input any) (any, error) {
	v, err := voteInput(input)
	if err != nil {
		return nil, err
	}
	return t.Vote(ctx, v)
}

var _ Protocol = (*TwoPC)(nil)
