package nbac

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/qc"
)

// Group is the set of (Ψ, FS)-based NBAC participants of one instance,
// indexed by process id, together with the embedded QC participants it owns.
type Group struct {
	Participants []*QCNBAC
	qcGroup      qc.Group
}

// Stop stops the embedded QC participants.
func (g *Group) Stop() { g.qcGroup.Stop() }

// NewPsiFSGroup builds, for every process of the network, the NBAC stack of
// Corollary 10: a Ψ-based QC participant (Figure 2) wrapped by the Figure 4
// transformation with an FS module. This is the sufficiency construction for
// "(Ψ, FS) solves NBAC in any environment".
func NewPsiFSGroup(nw *net.Network, instance string, psi fd.PsiSource, fs fd.FSSource, opts ...Option) *Group {
	qcGroup := qc.NewPsiGroup(nw, instance, psi)
	g := &Group{
		Participants: make([]*QCNBAC, nw.N()),
		qcGroup:      qcGroup,
	}
	for i := 0; i < nw.N(); i++ {
		ep := nw.Endpoint(model.ProcessID(i))
		boundFS := fd.BindTo(ep.ID(), fs, nw.Clock())
		g.Participants[i] = NewQCNBAC(ep, instance, boundFS, qcGroup[i], opts...)
	}
	return g
}

// NewTwoPCGroup builds the blocking two-phase-commit baseline for every
// process, with the given coordinator.
func NewTwoPCGroup(nw *net.Network, instance string, coordinator model.ProcessID, opts ...Option) []*TwoPC {
	out := make([]*TwoPC, nw.N())
	for i := 0; i < nw.N(); i++ {
		out[i] = NewTwoPC(nw.Endpoint(model.ProcessID(i)), instance, coordinator, opts...)
	}
	return out
}

// QCGroupFromNBAC builds, for every process, a QC participant obtained from
// an NBAC protocol by the Figure 5 transformation. Together with
// NewPsiFSGroup it exercises both directions of Theorem 8.
type QCGroupFromNBAC struct {
	Participants []*NBACQC
	nbacGroup    *Group
}

// Stop stops the underlying NBAC stack.
func (g *QCGroupFromNBAC) Stop() { g.nbacGroup.Stop() }

// NewQCFromNBACGroup stacks Figure 5 on top of the (Ψ, FS)-based NBAC of
// NewPsiFSGroup: QC → NBAC → QC, the round trip used by the equivalence
// tests.
func NewQCFromNBACGroup(nw *net.Network, instance string, psi fd.PsiSource, fs fd.FSSource, opts ...Option) *QCGroupFromNBAC {
	nbacGroup := NewPsiFSGroup(nw, instance+".inner", psi, fs, opts...)
	g := &QCGroupFromNBAC{
		Participants: make([]*NBACQC, nw.N()),
		nbacGroup:    nbacGroup,
	}
	for i := 0; i < nw.N(); i++ {
		ep := nw.Endpoint(model.ProcessID(i))
		g.Participants[i] = NewNBACQC(ep, instance, nbacGroup.Participants[i], opts...)
	}
	return g
}

// FSEmulationGroup runs the FS-from-NBAC emulation (Theorem 8(b)) at every
// process: each round k, every process votes Yes in a fresh (Ψ, FS)-based
// NBAC instance named "<instance>.k"; the emulated signal turns red at the
// first Abort.
type FSEmulationGroup struct {
	Emulators []*FSFromNBAC

	mu        sync.Mutex
	instances map[int]*Group
}

// StopAll stops the emulators and every NBAC instance they created.
func (g *FSEmulationGroup) StopAll() {
	for _, e := range g.Emulators {
		e.Stop()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, grp := range g.instances {
		grp.Stop()
	}
}

// NewFSEmulationGroup starts the emulation on every process of the network.
// Successive NBAC instances are created lazily and shared across processes.
// ctx bounds the whole emulation: cancelling it stops every emulator without
// requiring a StopAll call.
func NewFSEmulationGroup(ctx context.Context, nw *net.Network, instance string, psi fd.PsiSource, fs fd.FSSource, interval time.Duration, opts ...Option) *FSEmulationGroup {
	g := &FSEmulationGroup{instances: make(map[int]*Group)}

	factory := func(p int) func(k int) Protocol {
		return func(k int) Protocol {
			g.mu.Lock()
			defer g.mu.Unlock()
			grp, ok := g.instances[k]
			if !ok {
				grp = NewPsiFSGroup(nw, fmt.Sprintf("%s.%d", instance, k), psi, fs, opts...)
				g.instances[k] = grp
			}
			return grp.Participants[p]
		}
	}

	g.Emulators = make([]*FSFromNBAC, nw.N())
	for i := 0; i < nw.N(); i++ {
		g.Emulators[i] = StartFSFromNBAC(ctx, nw.Endpoint(model.ProcessID(i)), factory(i), interval)
	}
	return g
}
