// Package nbac implements non-blocking atomic commit (NBAC, Section 7) and
// the reductions the paper establishes between NBAC and quittable consensus:
//
//   - QCNBAC (Figure 4): given the failure-signal detector FS, any QC
//     algorithm yields an NBAC algorithm — Theorem 8(a).
//   - NBACQC (Figure 5): any NBAC algorithm yields a QC algorithm —
//     half of Theorem 8(b).
//   - FSFromNBAC: any NBAC algorithm implements FS, by running instances
//     forever with Yes votes and turning red on the first Abort — the other
//     half of Theorem 8(b).
//   - TwoPC: a classical blocking two-phase-commit baseline used by the
//     experiment harness to contrast "non-blocking" with what a
//     coordinator-based protocol does under crashes.
//
// Together with the Ψ-based QC of internal/qc, QCNBAC gives the sufficiency
// half of Corollary 10: (Ψ, FS) solves NBAC in any environment.
package nbac

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/qc"
	"weakestfd/internal/trace"
)

// Vote is a process's NBAC vote.
type Vote bool

// Votes.
const (
	VoteYes Vote = true
	VoteNo  Vote = false
)

// String implements fmt.Stringer.
func (v Vote) String() string {
	if v == VoteYes {
		return "Yes"
	}
	return "No"
}

// Outcome is an NBAC decision.
type Outcome bool

// Outcomes.
const (
	Commit Outcome = true
	Abort  Outcome = false
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	if o == Commit {
		return "Commit"
	}
	return "Abort"
}

// Protocol is a single-shot NBAC instance at one process.
type Protocol interface {
	Vote(ctx context.Context, v Vote) (Outcome, error)
}

// QCNBAC is the algorithm of Figure 4: NBAC from a QC instance and FS.
type QCNBAC struct {
	ep       *net.Endpoint
	instance string
	fs       fd.FS
	qc       qc.QC
	poll     time.Duration
	metrics  *trace.Metrics
}

// Option configures the NBAC participants in this package.
type Option func(*options)

type options struct {
	poll    time.Duration
	metrics *trace.Metrics
}

// WithPollInterval sets how often blocked waits re-sample the failure
// detector. The interval is virtual time on the network's scheduler, so a
// blocked wait costs no wall-clock time. Default 1ms.
func WithPollInterval(d time.Duration) Option { return func(o *options) { o.poll = d } }

// WithMetrics attaches a metrics sink.
func WithMetrics(m *trace.Metrics) Option { return func(o *options) { o.metrics = m } }

func buildOptions(opts []Option) options {
	o := options{poll: time.Millisecond, metrics: trace.NewMetrics()}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// NewQCNBAC creates the Figure 4 participant for the process behind ep: votes
// are exchanged under the given instance name, failures are observed through
// fs, and the agreement step delegates to the supplied QC instance.
func NewQCNBAC(ep *net.Endpoint, instance string, fs fd.FS, quittable qc.QC, opts ...Option) *QCNBAC {
	o := buildOptions(opts)
	return &QCNBAC{
		ep:       ep,
		instance: "nbac." + instance,
		fs:       fs,
		qc:       quittable,
		poll:     o.poll,
		metrics:  o.metrics,
	}
}

// Metrics returns the participant's metrics sink.
func (a *QCNBAC) Metrics() *trace.Metrics { return a.metrics }

type voteMsg struct {
	Vote Vote
}

// Vote runs Figure 4 with vote v and returns Commit or Abort.
func (a *QCNBAC) Vote(ctx context.Context, v Vote) (Outcome, error) {
	a.metrics.Inc("vote")
	// Step mode: adopt the caller so the vote wait and the embedded QC step
	// run as scheduler tasks (a no-op when the ctx already carries a task,
	// e.g. when the FS emulation drives successive instances from one task).
	ctx, release := net.AdoptTask(ctx, a.ep, "nbac.vote")
	defer release()
	task := net.TaskFrom(ctx)

	// Line 1: send the vote to all.
	a.ep.Broadcast(a.instance, "vote", voteMsg{Vote: v})

	// Line 2: wait until either every process's vote arrived or FS is red.
	votes := make(map[model.ProcessID]Vote, a.ep.N())
	ticker := a.ep.NewTicker(a.poll)
	ticker.Bind(task)
	defer ticker.Stop()
	sawRed := false
	if task != nil {
		in := a.ep.Instance(a.instance)
		in.Watch(task)
		defer in.Watch(nil)
		for len(votes) < a.ep.N() {
			if a.fs.Sample() == model.Red {
				sawRed = true
				break
			}
			if msg, ok := in.TryRecv(); ok {
				if msg.Type == "vote" {
					votes[msg.From] = msg.Payload.(voteMsg).Vote
				}
				continue
			}
			if err := ctx.Err(); err != nil {
				return Abort, fmt.Errorf("nbac vote: %w", err)
			}
			if err := a.ep.Context().Err(); err != nil {
				return Abort, fmt.Errorf("nbac vote: %w", err)
			}
			if ticker.TryFire() {
				// A "nop" step while waiting; advance the logical clock so
				// time-based detector behaviour (e.g. detection delays) makes
				// progress even without message traffic.
				a.ep.Clock().Tick()
			} else {
				task.Await(ctx)
			}
		}
	} else {
		inbox := a.ep.Subscribe(a.instance)
		for len(votes) < a.ep.N() {
			if a.fs.Sample() == model.Red {
				sawRed = true
				break
			}
			select {
			case <-ctx.Done():
				return Abort, fmt.Errorf("nbac vote: %w", ctx.Err())
			case <-a.ep.Context().Done():
				return Abort, fmt.Errorf("nbac vote: %w", a.ep.Context().Err())
			case msg := <-inbox:
				if msg.Type == "vote" {
					votes[msg.From] = msg.Payload.(voteMsg).Vote
				}
			case <-ticker.C:
				// A "nop" step while waiting (see the task path above).
				a.ep.Clock().Tick()
			}
		}
	}

	// The vote wait is over; release the ticker before blocking in the QC
	// step, whose waits ride their own timers — an unconsumed virtual tick
	// would freeze the network's clock.
	ticker.Stop()

	// Lines 3-6: propose 1 only if every vote arrived and all are Yes.
	proposal := 0
	if !sawRed && len(votes) == a.ep.N() {
		allYes := true
		for _, vote := range votes {
			if vote == VoteNo {
				allYes = false
				break
			}
		}
		if allYes {
			proposal = 1
		}
	}

	// Line 7: agree through quittable consensus.
	d, err := a.qc.Propose(ctx, proposal)
	if err != nil {
		return Abort, fmt.Errorf("nbac vote: %w", err)
	}

	// Lines 8-11: Commit only on a (non-Quit) decision of 1.
	if !d.Quit && d.Value == 1 {
		a.metrics.Inc("decided.commit")
		return Commit, nil
	}
	a.metrics.Inc("decided.abort")
	return Abort, nil
}

// Run executes one single-shot NBAC at this participant: it votes input
// (a Vote or bool) and returns the Outcome (the scenario harness's common
// participant entry point).
func (a *QCNBAC) Run(ctx context.Context, input any) (any, error) {
	v, err := voteInput(input)
	if err != nil {
		return nil, err
	}
	return a.Vote(ctx, v)
}

func voteInput(input any) (Vote, error) {
	switch v := input.(type) {
	case Vote:
		return v, nil
	case bool:
		return Vote(v), nil
	default:
		return VoteNo, fmt.Errorf("nbac run: input has type %T, want Vote", input)
	}
}

// NBACQC is the algorithm of Figure 5: quittable consensus from any NBAC
// protocol. Proposals must be ints (the algorithm returns the smallest
// proposal received, so values need a total order).
type NBACQC struct {
	ep       *net.Endpoint
	instance string
	nbac     Protocol
	poll     time.Duration
	metrics  *trace.Metrics
}

// NewNBACQC creates the Figure 5 participant for the process behind ep:
// proposals are exchanged under the given instance name and the commit step
// delegates to the supplied NBAC protocol.
func NewNBACQC(ep *net.Endpoint, instance string, nbac Protocol, opts ...Option) *NBACQC {
	o := buildOptions(opts)
	return &NBACQC{
		ep:       ep,
		instance: "nbacqc." + instance,
		nbac:     nbac,
		poll:     o.poll,
		metrics:  o.metrics,
	}
}

// Metrics returns the participant's metrics sink.
func (q *NBACQC) Metrics() *trace.Metrics { return q.metrics }

type proposalMsg struct {
	Value int
}

// Propose runs Figure 5 with proposal v (which must be an int).
func (q *NBACQC) Propose(ctx context.Context, v qc.Value) (qc.Decision, error) {
	q.metrics.Inc("propose")
	value, ok := v.(int)
	if !ok {
		return qc.Decision{}, fmt.Errorf("nbac-based qc: proposal must be int, got %T", v)
	}
	// Step mode: adopt the caller; the embedded NBAC vote reuses the task.
	ctx, release := net.AdoptTask(ctx, q.ep, "nbacqc.propose")
	defer release()

	// Line 1: send the proposal to all.
	q.ep.Broadcast(q.instance, "proposal", proposalMsg{Value: value})

	// Line 2: vote Yes in the NBAC instance.
	outcome, err := q.nbac.Vote(ctx, VoteYes)
	if err != nil {
		return qc.Decision{}, fmt.Errorf("nbac-based qc: %w", err)
	}

	// Lines 3-4: Abort means a failure occurred (everyone voted Yes), so Quit
	// is a legitimate QC decision.
	if outcome == Abort {
		q.metrics.Inc("decided.quit")
		return qc.Decision{Quit: true}, nil
	}

	// Lines 5-7: Commit means every process voted, hence every process also
	// broadcast its proposal; wait for all of them and return the smallest.
	proposals := make(map[model.ProcessID]int, q.ep.N())
	if task := net.TaskFrom(ctx); task != nil {
		in := q.ep.Instance(q.instance)
		in.Watch(task)
		defer in.Watch(nil)
		for len(proposals) < q.ep.N() {
			if msg, ok := in.TryRecv(); ok {
				if msg.Type == "proposal" {
					proposals[msg.From] = msg.Payload.(proposalMsg).Value
				}
				continue
			}
			if err := ctx.Err(); err != nil {
				return qc.Decision{}, fmt.Errorf("nbac-based qc: %w", err)
			}
			if err := q.ep.Context().Err(); err != nil {
				return qc.Decision{}, fmt.Errorf("nbac-based qc: %w", err)
			}
			task.Await(ctx)
		}
	} else {
		inbox := q.ep.Subscribe(q.instance)
		for len(proposals) < q.ep.N() {
			select {
			case <-ctx.Done():
				return qc.Decision{}, fmt.Errorf("nbac-based qc: %w", ctx.Err())
			case <-q.ep.Context().Done():
				return qc.Decision{}, fmt.Errorf("nbac-based qc: %w", q.ep.Context().Err())
			case msg := <-inbox:
				if msg.Type == "proposal" {
					proposals[msg.From] = msg.Payload.(proposalMsg).Value
				}
			}
		}
	}
	smallest := 0
	first := true
	for _, p := range proposals {
		if first || p < smallest {
			smallest = p
			first = false
		}
	}
	q.metrics.Inc("decided.value")
	return qc.Decision{Value: smallest}, nil
}

// Run executes one single-shot quittable consensus at this participant (the
// scenario harness's common participant entry point).
func (q *NBACQC) Run(ctx context.Context, input any) (any, error) {
	d, err := q.Propose(ctx, input)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// FSFromNBAC emulates the failure-signal detector FS from any NBAC protocol
// (Theorem 8(b)): instances are run forever with Yes votes; the signal is
// green until some instance aborts — which, with all-Yes votes, can happen
// only if a failure occurred — and red permanently afterwards.
type FSFromNBAC struct {
	newInstance func(k int) Protocol
	ep          *net.Endpoint
	interval    time.Duration

	mu     sync.Mutex
	red    bool
	rounds int

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// StartFSFromNBAC starts the emulation at the process behind ep. newInstance
// must return this process's participant in the k-th NBAC instance; every
// process of the system must run the emulation with a compatible factory so
// that the instances line up. interval is the pause between successive
// instances, in virtual time on ep's network — successive instances are
// spaced on the schedule, never by wall-clock sleeps. The emulation stops
// when ctx is cancelled, when Stop is called, or when the process crashes.
func StartFSFromNBAC(ctx context.Context, ep *net.Endpoint, newInstance func(k int) Protocol, interval time.Duration) *FSFromNBAC {
	ctx, cancel := context.WithCancel(ctx)
	f := &FSFromNBAC{
		newInstance: newInstance,
		ep:          ep,
		interval:    interval,
		cancel:      cancel,
		done:        make(chan struct{}),
	}
	// In step mode the emulation loop is a scheduler task, so the endless
	// sequence of NBAC instances interleaves deterministically with the
	// protocols under test; in free-running mode it is a plain goroutine.
	ep.Network().Go(ep, "nbac.fs", func(task *net.Task) {
		f.run(ctx, task)
	})
	return f
}

// Sample implements fd.FS.
func (f *FSFromNBAC) Sample() model.FSValue {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.red {
		return model.Red
	}
	return model.Green
}

// Rounds returns the number of NBAC instances that have completed with a
// Commit so far.
func (f *FSFromNBAC) Rounds() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rounds
}

// Stop terminates the emulation. The signal keeps its last value.
func (f *FSFromNBAC) Stop() {
	f.once.Do(f.cancel)
	<-f.done
}

func (f *FSFromNBAC) run(ctx context.Context, task *net.Task) {
	defer close(f.done)
	if task != nil {
		// Thread the task through the ctx so the Vote and Sleep calls below
		// park on the scheduler instead of blocking invisibly.
		ctx = net.WithTask(ctx, task)
	}
	for k := 0; ; k++ {
		outcome, err := f.newInstance(k).Vote(ctx, VoteYes)
		if err != nil {
			return // cancelled, stopped or crashed
		}
		if outcome == Abort {
			f.mu.Lock()
			f.red = true
			f.mu.Unlock()
			return
		}
		f.mu.Lock()
		f.rounds++
		f.mu.Unlock()
		// Inter-instance pause on the virtual clock: spacing is part of the
		// schedule, not a wall-clock wait.
		if err := f.ep.Sleep(ctx, f.interval); err != nil {
			return
		}
	}
}

var _ fd.FS = (*FSFromNBAC)(nil)
