package nbac

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"weakestfd/internal/check"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

const testTimeout = 20 * time.Second

// psiAndFS builds the standard oracle detector pair used by the NBAC stack.
func psiAndFS(nw *net.Network, policy fd.PsiPolicy) (*fd.OraclePsi, *fd.OracleFS) {
	psi := &fd.OraclePsi{Pattern: nw.Pattern(), Clock: nw.Clock(), SwitchAfter: 0, Policy: policy}
	fs := &fd.OracleFS{Pattern: nw.Pattern(), Clock: nw.Clock()}
	return psi, fs
}

// runNBAC has the listed processes vote concurrently and returns the recorded
// outcome. Processes not present in votes never vote (e.g. because they are
// crashed before the instance starts).
func runNBAC(t *testing.T, nw *net.Network, participants []*QCNBAC, votes map[model.ProcessID]Vote, crashAfter []model.ProcessID) check.NBACOutcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	outcome := check.NBACOutcome{Votes: map[model.ProcessID]check.Vote{}}
	for p, v := range votes {
		outcome.Votes[p] = check.Vote(v)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for p, v := range votes {
		wg.Add(1)
		go func(p model.ProcessID, v Vote) {
			defer wg.Done()
			d, err := participants[int(p)].Vote(ctx, v)
			end := nw.Clock().Now()
			if err != nil {
				if !nw.Crashed(p) {
					t.Errorf("nbac vote by correct %v failed: %v", p, err)
				}
				return
			}
			mu.Lock()
			outcome.Decisions = append(outcome.Decisions, check.Decision{Process: p, Value: bool(d == Commit), Time: end})
			mu.Unlock()
		}(p, v)
	}
	if len(crashAfter) > 0 {
		time.Sleep(3 * time.Millisecond)
		for _, p := range crashAfter {
			nw.Crash(p)
		}
	}
	wg.Wait()
	return outcome
}

// Experiment E7: all processes vote Yes and nothing fails — the decision must
// be Commit at every process.
func TestNBACAllYesNoFailureCommits(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(1))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferFSOnFailure)
	group := NewPsiFSGroup(nw, "allyes", psi, fs)
	defer group.Stop()

	votes := map[model.ProcessID]Vote{}
	for i := 0; i < n; i++ {
		votes[model.ProcessID(i)] = VoteYes
	}
	outcome := runNBAC(t, nw, group.Participants, votes, nil)
	if v := check.CheckNBAC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("nbac spec violated: %v", v)
	}
	for _, d := range outcome.Decisions {
		if d.Value != true {
			t.Fatalf("process %v decided Abort although all voted Yes with no failure", d.Process)
		}
	}
}

// Experiment E7: a single No vote forces Abort.
func TestNBACOneNoAborts(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(2))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferFSOnFailure)
	group := NewPsiFSGroup(nw, "oneno", psi, fs)
	defer group.Stop()

	votes := map[model.ProcessID]Vote{}
	for i := 0; i < n; i++ {
		votes[model.ProcessID(i)] = VoteYes
	}
	votes[2] = VoteNo
	outcome := runNBAC(t, nw, group.Participants, votes, nil)
	if v := check.CheckNBAC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("nbac spec violated: %v", v)
	}
	for _, d := range outcome.Decisions {
		if d.Value != false {
			t.Fatalf("process %v decided Commit despite a No vote", d.Process)
		}
	}
}

// Experiment E7: a process crashes before voting; the survivors must not
// block (that is the "non-blocking" in NBAC) and must abort.
func TestNBACCrashBeforeVoteAbortsWithoutBlocking(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(3))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferOmegaSigma)
	group := NewPsiFSGroup(nw, "crash", psi, fs)
	defer group.Stop()

	// p3 crashes before the instance starts and never votes.
	nw.Crash(3)

	votes := map[model.ProcessID]Vote{}
	for i := 0; i < n-1; i++ {
		votes[model.ProcessID(i)] = VoteYes
	}
	outcome := runNBAC(t, nw, group.Participants, votes, nil)
	if v := check.CheckNBAC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("nbac spec violated: %v", v)
	}
	if len(outcome.Decisions) != n-1 {
		t.Fatalf("expected %d decisions, got %d", n-1, len(outcome.Decisions))
	}
	for _, d := range outcome.Decisions {
		if d.Value != false {
			t.Fatalf("process %v decided Commit although a participant crashed before voting", d.Process)
		}
	}
}

// Experiment E7: same scenario but Ψ switches to its FS regime, so the
// agreement step itself returns Quit; the outcome must still be a uniform
// Abort.
func TestNBACCrashWithPsiFSRegime(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(4))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferFSOnFailure)
	group := NewPsiFSGroup(nw, "fsregime", psi, fs)
	defer group.Stop()

	nw.Crash(2)

	votes := map[model.ProcessID]Vote{0: VoteYes, 1: VoteYes}
	outcome := runNBAC(t, nw, group.Participants, votes, nil)
	if v := check.CheckNBAC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("nbac spec violated: %v", v)
	}
	for _, d := range outcome.Decisions {
		if d.Value != false {
			t.Fatalf("process %v decided Commit in the FS regime", d.Process)
		}
	}
}

// Experiment E7: a crash that happens after every process has voted may still
// lead to Commit (the QC step decides 1); whatever the outcome, it must be
// uniform and valid.
func TestNBACCrashAfterVotesStaysConsistent(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(5))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferOmegaSigma)
	group := NewPsiFSGroup(nw, "late", psi, fs)
	defer group.Stop()

	votes := map[model.ProcessID]Vote{}
	for i := 0; i < n; i++ {
		votes[model.ProcessID(i)] = VoteYes
	}
	outcome := runNBAC(t, nw, group.Participants, votes, []model.ProcessID{3})
	if v := check.CheckNBAC(nw.Pattern(), outcome, false); !v.OK {
		t.Fatalf("nbac spec violated: %v", v)
	}
	// All correct processes must have decided.
	decided := model.NewProcessSet()
	for _, d := range outcome.Decisions {
		decided.Add(d.Process)
	}
	for _, p := range nw.Pattern().Correct().Slice() {
		if !decided.Contains(p) {
			t.Fatalf("correct process %v never decided", p)
		}
	}
}

// Experiment E7 (Figure 5 direction): QC obtained from NBAC decides the
// smallest proposal when nothing fails.
func TestQCFromNBACDecidesSmallestProposal(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(6))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferFSOnFailure)
	g := NewQCFromNBACGroup(nw, "qcround", psi, fs)
	defer g.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	proposals := map[model.ProcessID]int{0: 7, 1: 3, 2: 9}
	outcome := check.QCOutcome{Proposals: map[model.ProcessID]any{}}
	for p, v := range proposals {
		outcome.Proposals[p] = v
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p := model.ProcessID(i)
		wg.Add(1)
		go func(p model.ProcessID) {
			defer wg.Done()
			d, err := g.Participants[int(p)].Propose(ctx, proposals[p])
			end := nw.Clock().Now()
			if err != nil {
				t.Errorf("qc-from-nbac propose by %v failed: %v", p, err)
				return
			}
			mu.Lock()
			outcome.Decisions = append(outcome.Decisions, check.Decision{
				Process: p,
				Value:   check.QCDecision{Quit: d.Quit, Value: d.Value},
				Time:    end,
			})
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if v := check.CheckQC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("qc spec violated: %v", v)
	}
	for _, d := range outcome.Decisions {
		qd := d.Value.(check.QCDecision)
		if qd.Quit || qd.Value != 3 {
			t.Fatalf("process %v decided %v, want smallest proposal 3", d.Process, qd)
		}
	}
}

// Experiment E7 (Figure 5 direction): if a participant crashes before the
// instance, the NBAC step aborts and the derived QC returns Quit — which is
// valid because a failure occurred.
func TestQCFromNBACQuitsOnFailure(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(7))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferOmegaSigma)
	g := NewQCFromNBACGroup(nw, "qcfail", psi, fs)
	defer g.Stop()

	nw.Crash(2)

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	var wg sync.WaitGroup
	decisions := make([]check.Decision, 0, 2)
	var mu sync.Mutex
	for i := 0; i < 2; i++ {
		p := model.ProcessID(i)
		wg.Add(1)
		go func(p model.ProcessID) {
			defer wg.Done()
			d, err := g.Participants[int(p)].Propose(ctx, int(p)+1)
			end := nw.Clock().Now()
			if err != nil {
				t.Errorf("propose by %v failed: %v", p, err)
				return
			}
			mu.Lock()
			decisions = append(decisions, check.Decision{Process: p, Value: check.QCDecision{Quit: d.Quit, Value: d.Value}, Time: end})
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	outcome := check.QCOutcome{
		Proposals: map[model.ProcessID]any{0: 1, 1: 2},
		Decisions: decisions,
	}
	if v := check.CheckQC(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("qc spec violated: %v", v)
	}
	for _, d := range decisions {
		if !d.Value.(check.QCDecision).Quit {
			t.Fatalf("process %v decided %v, want Quit", d.Process, d.Value)
		}
	}
}

func TestQCFromNBACRejectsNonIntProposal(t *testing.T) {
	nw := net.NewNetwork(2, net.WithSeed(8))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferFSOnFailure)
	g := NewQCFromNBACGroup(nw, "badtype", psi, fs)
	defer g.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := g.Participants[0].Propose(ctx, "not an int"); err == nil {
		t.Fatalf("non-int proposal accepted")
	}
}

// Experiment E7 (FS emulation): with no failures the emulated FS stays green
// across several instances; after a crash it eventually turns red. The
// emulation's inter-instance pause is virtual time, so instances complete as
// fast as the hardware allows: the test waits on completed rounds, not on the
// wall clock.
func TestFSFromNBACEmulation(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(9))
	defer nw.Close()
	psi, fs := psiAndFS(nw, fd.PreferOmegaSigma)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emu := NewFSEmulationGroup(ctx, nw, "fsemu", psi, fs, 2*time.Millisecond)
	defer emu.StopAll()

	// Let a few all-Yes instances complete; the signal must stay green.
	deadline := time.Now().Add(10 * time.Second)
	for emu.Emulators[0].Rounds() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("emulation completed only %d rounds", emu.Emulators[0].Rounds())
		}
		time.Sleep(time.Millisecond)
	}
	for i, e := range emu.Emulators {
		if e.Sample() != model.Green {
			t.Fatalf("emulated FS at p%d red before any failure", i)
		}
	}

	nw.Crash(2)
	for {
		if emu.Emulators[0].Sample() == model.Red && emu.Emulators[1].Sample() == model.Red {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("emulated FS did not turn red after the crash")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The blocking 2PC baseline: commits in the failure-free case, blocks forever
// when the coordinator crashes — in contrast with the QC-based NBAC under the
// same failure pattern.
func TestTwoPCCommitsWithoutFailure(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(10))
	defer nw.Close()
	group := NewTwoPCGroup(nw, "ok", 0)

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, err := group[i].Vote(ctx, VoteYes)
			if err != nil {
				t.Errorf("2pc vote failed: %v", err)
				return
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	for i, o := range outcomes {
		if o != Commit {
			t.Fatalf("2pc outcome at p%d = %v, want Commit", i, o)
		}
	}
}

func TestTwoPCBlocksOnCoordinatorCrashWhileNBACDoesNot(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(11))
	defer nw.Close()
	twopc := NewTwoPCGroup(nw, "blocked", 0)
	psi, fs := psiAndFS(nw, fd.PreferOmegaSigma)
	nbacGroup := NewPsiFSGroup(nw, "unblocked", psi, fs)
	defer nbacGroup.Stop()

	// The coordinator crashes before anyone votes.
	nw.Crash(0)

	shortCtx, shortCancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer shortCancel()
	if _, err := twopc[1].Vote(shortCtx, VoteYes); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("2pc participant returned %v, want deadline exceeded", err)
	}

	// The NBAC stack under the same failure pattern terminates (with Abort).
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, err := nbacGroup.Participants[i].Vote(ctx, VoteYes)
			if err != nil {
				t.Errorf("nbac vote failed: %v", err)
				return
			}
			if o != Abort {
				t.Errorf("nbac outcome = %v, want Abort", o)
			}
		}(i)
	}
	wg.Wait()
}

func TestVoteAndOutcomeStrings(t *testing.T) {
	if VoteYes.String() != "Yes" || VoteNo.String() != "No" {
		t.Fatalf("vote strings wrong")
	}
	if Commit.String() != "Commit" || Abort.String() != "Abort" {
		t.Fatalf("outcome strings wrong")
	}
}
