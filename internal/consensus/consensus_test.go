package consensus

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"weakestfd/internal/check"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

const testTimeout = 20 * time.Second

// proposer abstracts the two protocol flavours for the shared test harness.
type proposer interface {
	Propose(ctx context.Context, v Value) (Value, error)
}

// runInstance has every listed process propose its value concurrently,
// crashes the processes in crashAfter once proposals are in flight, and
// returns the recorded outcome.
func runInstance(t *testing.T, nw *net.Network, proposers map[model.ProcessID]proposer, proposals map[model.ProcessID]Value, crashAfter []model.ProcessID) check.ConsensusOutcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	outcome := check.ConsensusOutcome{Proposals: map[model.ProcessID]any{}}
	for p, v := range proposals {
		outcome.Proposals[p] = v
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for p, prop := range proposers {
		wg.Add(1)
		go func(p model.ProcessID, prop proposer) {
			defer wg.Done()
			v, err := prop.Propose(ctx, proposals[p])
			end := nw.Clock().Now()
			if err != nil {
				if !nw.Crashed(p) {
					t.Errorf("propose by correct %v failed: %v", p, err)
				}
				return
			}
			mu.Lock()
			outcome.Decisions = append(outcome.Decisions, check.Decision{Process: p, Value: v, Time: end})
			mu.Unlock()
		}(p, prop)
	}
	if len(crashAfter) > 0 {
		time.Sleep(3 * time.Millisecond)
		for _, p := range crashAfter {
			nw.Crash(p)
		}
	}
	wg.Wait()
	return outcome
}

func oracles(nw *net.Network) (*fd.OracleOmega, *fd.OracleSigma) {
	return &fd.OracleOmega{Pattern: nw.Pattern(), Clock: nw.Clock()},
		&fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
}

// Experiment E4: (Ω, Σ) ballot consensus decides with no failures.
func TestOmegaSigmaConsensusNoFailures(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(1))
	defer nw.Close()
	omega, sigma := oracles(nw)
	group := NewOmegaSigmaGroup(nw, "nofail", omega, sigma)
	defer group.Stop()

	proposers := map[model.ProcessID]proposer{}
	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposers[model.ProcessID(i)] = group[i]
		proposals[model.ProcessID(i)] = i % 2
	}
	outcome := runInstance(t, nw, proposers, proposals, nil)
	if v := check.CheckConsensus(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("consensus spec violated: %v", v)
	}
}

// Experiment E4: the leader (p0) crashes mid-run; the survivors must still
// decide consistently.
func TestOmegaSigmaConsensusLeaderCrash(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(2))
	defer nw.Close()
	omega, sigma := oracles(nw)
	group := NewOmegaSigmaGroup(nw, "leadercrash", omega, sigma)
	defer group.Stop()

	proposers := map[model.ProcessID]proposer{}
	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposers[model.ProcessID(i)] = group[i]
		proposals[model.ProcessID(i)] = 100 + i
	}
	outcome := runInstance(t, nw, proposers, proposals, []model.ProcessID{0})
	if v := check.CheckConsensus(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("consensus spec violated: %v", v)
	}
	if len(outcome.Decisions) < n-1 {
		t.Fatalf("only %d processes decided", len(outcome.Decisions))
	}
}

// Experiment E4: only a minority of processes stays correct; (Ω, Σ) consensus
// still terminates — the regime where the majority-based baseline cannot.
func TestOmegaSigmaConsensusMinorityCorrect(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(3))
	defer nw.Close()
	omega, sigma := oracles(nw)
	group := NewOmegaSigmaGroup(nw, "minority", omega, sigma)
	defer group.Stop()

	proposers := map[model.ProcessID]proposer{}
	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposers[model.ProcessID(i)] = group[i]
		proposals[model.ProcessID(i)] = i
	}
	// Crash 3 of 5 processes, including the initial leader.
	outcome := runInstance(t, nw, proposers, proposals, []model.ProcessID{0, 2, 4})
	if v := check.CheckConsensus(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("consensus spec violated: %v", v)
	}
}

// Experiment E5: the Ω-plus-majority baseline still decides while a majority
// is correct, but blocks once a majority has crashed.
func TestOmegaMajorityConsensusNeedsMajority(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(4))
	defer nw.Close()
	omega, _ := oracles(nw)
	group := NewOmegaMajorityGroup(nw, "maj", omega)
	defer group.Stop()

	// With one crash (majority correct) it decides.
	proposers := map[model.ProcessID]proposer{}
	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposers[model.ProcessID(i)] = group[i]
		proposals[model.ProcessID(i)] = i
	}
	outcome := runInstance(t, nw, proposers, proposals, []model.ProcessID{4})
	if v := check.CheckConsensus(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("consensus spec violated with majority correct: %v", v)
	}
}

func TestOmegaMajorityConsensusBlocksWithoutMajority(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(5))
	defer nw.Close()
	omega, _ := oracles(nw)
	group := NewOmegaMajorityGroup(nw, "majblock", omega)
	defer group.Stop()

	// Crash a majority before proposing: no quorum can ever form.
	nw.Crash(2)
	nw.Crash(3)
	nw.Crash(4)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := group[0].Propose(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("propose returned %v, want deadline exceeded", err)
	}

	// The same failure pattern with (Ω, Σ) does decide.
	omega2, sigma2 := oracles(nw)
	group2 := NewOmegaSigmaGroup(nw, "sigmaok", omega2, sigma2)
	defer group2.Stop()
	ctx2, cancel2 := context.WithTimeout(context.Background(), testTimeout)
	defer cancel2()
	var wg sync.WaitGroup
	vals := make([]Value, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := group2[i].Propose(ctx2, i)
			if err != nil {
				t.Errorf("sigma propose failed: %v", err)
				return
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if vals[0] != vals[1] {
		t.Fatalf("disagreement: %v vs %v", vals[0], vals[1])
	}
}

func TestBallotConsensusSingleProposer(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(6))
	defer nw.Close()
	omega, sigma := oracles(nw)
	group := NewOmegaSigmaGroup(nw, "single", omega, sigma)
	defer group.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	v, err := group[0].Propose(ctx, "hello")
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	if v != "hello" {
		t.Fatalf("decided %v, want the only proposal", v)
	}
	if d, ok := group[0].Decision(); !ok || d != "hello" {
		t.Fatalf("Decision() = %v, %v", d, ok)
	}
	if group[0].Metrics().Get("decided") == 0 {
		t.Fatalf("decided counter not incremented")
	}
}

func TestBallotConsensusProposeAfterDecisionReturnsSameValue(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(7))
	defer nw.Close()
	omega, sigma := oracles(nw)
	group := NewOmegaSigmaGroup(nw, "late", omega, sigma)
	defer group.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	first, err := group[0].Propose(ctx, 7)
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	// A process that proposes after the decision must get the same value.
	second, err := group[1].Propose(ctx, 8)
	if err != nil {
		t.Fatalf("late propose: %v", err)
	}
	if first != second {
		t.Fatalf("late proposer decided %v, first decided %v", second, first)
	}
}

func TestBallotConsensusStopUnblocks(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(8))
	defer nw.Close()
	omega, sigma := oracles(nw)
	group := NewOmegaSigmaGroup(nw, "stop", omega, sigma)

	errCh := make(chan error, 1)
	go func() {
		// p1 is not the leader and nobody else proposes, so this blocks until
		// the participant is stopped.
		_, err := group[1].Propose(context.Background(), 1)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	group.Stop()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatalf("propose succeeded with no possible decision")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Stop did not unblock Propose")
	}
}

// Experiment E4 (register route): consensus via Σ-registers plus Ω.
func TestRegisterConsensusDecides(t *testing.T) {
	const n = 3
	nw := net.NewNetwork(n, net.WithSeed(9))
	defer nw.Close()
	omega, sigma := oracles(nw)
	g := NewRegisterConsensusGroup(nw, "regroute", omega, sigma)
	defer g.Stop()

	proposers := map[model.ProcessID]proposer{}
	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposers[model.ProcessID(i)] = g.Participants[i]
		proposals[model.ProcessID(i)] = 10 * (i + 1)
	}
	outcome := runInstance(t, nw, proposers, proposals, nil)
	if v := check.CheckConsensus(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("register-route consensus spec violated: %v", v)
	}
}

// Experiment E4 (register route) with a crash of the initial leader and a
// minority-correct final configuration.
func TestRegisterConsensusLeaderCrashMinorityCorrect(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(10))
	defer nw.Close()
	omega, sigma := oracles(nw)
	g := NewRegisterConsensusGroup(nw, "regcrash", omega, sigma)
	defer g.Stop()

	proposers := map[model.ProcessID]proposer{}
	proposals := map[model.ProcessID]Value{}
	for i := 0; i < n; i++ {
		proposers[model.ProcessID(i)] = g.Participants[i]
		proposals[model.ProcessID(i)] = i
	}
	outcome := runInstance(t, nw, proposers, proposals, []model.ProcessID{0, 1})
	if v := check.CheckConsensus(nw.Pattern(), outcome, true); !v.OK {
		t.Fatalf("register-route consensus spec violated: %v", v)
	}
}

func TestNextBallotIsMonotoneAndOwned(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(11))
	defer nw.Close()
	omega, sigma := oracles(nw)
	group := NewOmegaSigmaGroup(nw, "ballots", omega, sigma)
	defer group.Stop()

	c := group[1]
	prev := Ballot(-1)
	for i := 0; i < 10; i++ {
		b := c.nextBallot()
		if b <= prev {
			t.Fatalf("ballot %d not greater than previous %d", b, prev)
		}
		if int64(b)%int64(nw.N()) != int64(c.ep.ID()) {
			t.Fatalf("ballot %d not owned by process %v", b, c.ep.ID())
		}
		prev = b
	}
}
