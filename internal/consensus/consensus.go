// Package consensus implements single-shot uniform consensus (Section 4) in
// the regimes the paper analyses:
//
//   - BallotConsensus, a leader/quorum ("synod"-style) protocol driven by the
//     leader detector Ω and parameterised by a quorum.Guard. With the
//     Σ-backed guard it is the sufficiency half of Corollary 2 — consensus
//     from (Ω, Σ) in any environment. With the majority guard it is the
//     classical Ω-plus-majority protocol ([4]'s regime), the baseline of
//     experiment E5 that loses liveness once a majority has crashed.
//   - RegisterConsensus, the paper's stated route for Corollary 2: implement
//     atomic registers from Σ (internal/register), then solve consensus from
//     Ω and registers ([19]); it is a shared-memory round-based (Disk-Paxos
//     style) protocol in which every step is a register operation.
//
// Both protocols decide arbitrary (comparable) values; the binary consensus
// of the paper's Section 4.1 is the special case Value ∈ {0, 1}, and no
// separate binary-to-multivalued transformation ([20]) is needed.
package consensus

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/quorum"
	"weakestfd/internal/trace"
)

// Value is a proposed or decided value. Values must be comparable with ==
// (the protocols and the checkers compare them for equality).
type Value = any

// Ballot numbers are totally ordered and partitioned among processes
// (ballot mod n == proposer id), so two proposers never reuse a ballot.
type Ballot int64

// Message types of the ballot protocol.
const (
	msgPrepare  = "prepare"
	msgPromise  = "promise"
	msgAccept   = "accept"
	msgAccepted = "accepted"
	msgReject   = "reject"
	msgDecide   = "decide"
)

// Wire format. Every message carries its ballot in the envelope's Aux word
// and nothing in the payload unless a value travels with it, so the ack-heavy
// acceptor paths allocate no payload box per message:
//
//	prepare   Aux=ballot
//	promise   Aux=ballot  Aux2=accepted ballot (-1: none)  Payload=accepted value
//	accept    Aux=ballot  Payload=value
//	accepted  Aux=ballot
//	reject    Aux=ballot  Aux2=higher promised ballot
//	decide    Payload=value
//
// BallotConsensus is one process's participant in a single consensus
// instance. All processes of the network must create one (they all act as
// acceptors); any subset may call Propose.
type BallotConsensus struct {
	ep      *net.Endpoint
	inst    net.Instance
	omega   fd.Omega
	guard   quorum.Guard
	metrics *trace.Metrics
	poll    time.Duration
	backoff time.Duration

	mu          sync.Mutex
	promised    Ballot
	accepted    Ballot
	acceptedVal Value
	hasAccepted bool
	maxSeen     Ballot
	decided     bool
	decision    Value

	attempt   *attempt
	scratch   *attempt // the one attempt struct a proposer reuses across phases and ballots
	decidedCh chan struct{} // closed when this participant learns the decision

	// waiter is the proposer task blocked in Propose/awaitAttempt (step
	// mode): the acceptor handler, which runs on the dispatch goroutine,
	// wakes it alongside the channel notifies so the scheduler sees the
	// handoff. At most one Propose runs per participant, so one slot is
	// enough.
	waiter net.TaskWaiter

	stop *stopper
}

// stopper is a close-once signal. A group's participants share one stop
// signal and one decision signal, so each costs one channel for all n
// processes; a standalone participant gets its own pair.
type stopper struct {
	once sync.Once
	ch   chan struct{}
}

func newStopper() *stopper { return &stopper{ch: make(chan struct{})} }

func (s *stopper) signal() { s.once.Do(func() { close(s.ch) }) }

// attempt tracks the proposer side of one ballot.
type attempt struct {
	ballot    Ballot
	phase     string // msgPrepare or msgAccept
	acked     model.ProcessSet
	rejected  bool
	bestBal   Ballot
	bestVal   Value
	hasBest   bool
	updated   chan struct{}
	valueSent Value
}

// Option configures a consensus participant.
type Option func(*options)

type options struct {
	metrics *trace.Metrics
	poll    time.Duration
	backoff time.Duration
}

// WithMetrics attaches a metrics sink (ballots attempted, decisions, ...).
func WithMetrics(m *trace.Metrics) Option { return func(o *options) { o.metrics = m } }

// WithPollInterval sets how often blocked waits re-evaluate their condition
// (leadership, quorum coverage). The interval is virtual time on the
// network's scheduler (Endpoint.NewTicker), so a poll costs no wall-clock
// time and each poll step advances the logical clock like any other "nop"
// step of the paper's model. Default 1ms.
func WithPollInterval(d time.Duration) Option { return func(o *options) { o.poll = d } }

// WithBackoff sets how long a proposer waits after a failed ballot before
// retrying, in virtual time (Endpoint.NewTimer): large enough to let a
// contending leader finish, free in wall-clock terms. Default 2ms.
func WithBackoff(d time.Duration) Option { return func(o *options) { o.backoff = d } }

// resolveOptions folds the option list into one shared options struct; the
// default metrics sink is created only when the caller supplied none.
func resolveOptions(opts []Option) *options {
	o := &options{poll: time.Millisecond, backoff: 2 * time.Millisecond}
	for _, fn := range opts {
		fn(o)
	}
	if o.metrics == nil {
		o.metrics = trace.NewMetrics()
	}
	return o
}

// NewBallotConsensus creates the participant for the process behind ep in the
// consensus instance named by instance. omega supplies the leader hint;
// guard decides when a quorum of acceptors has been gathered.
func NewBallotConsensus(ep *net.Endpoint, instance string, omega fd.Omega, guard quorum.Guard, opts ...Option) *BallotConsensus {
	c := &BallotConsensus{}
	c.init(ep, ep.Instance("cons."+instance), omega, guard, resolveOptions(opts), newStopper())
	return c
}

// init wires a (possibly slab-allocated) participant in place and registers
// its delivery handler. Group constructors pass shared options and a shared
// stop signal; the per-participant state is just the struct, its decided
// channel and the handler registration — the acceptor role runs reactively
// on the network's dispatch goroutine, so a participant spawns no goroutine
// at all.
func (c *BallotConsensus) init(ep *net.Endpoint, inst net.Instance, omega fd.Omega, guard quorum.Guard, o *options, stop *stopper) {
	c.ep = ep
	c.inst = inst
	c.omega = omega
	c.guard = guard
	c.metrics = o.metrics
	c.poll = o.poll
	c.backoff = o.backoff
	c.promised = -1
	c.accepted = -1
	c.maxSeen = -1
	c.decidedCh = make(chan struct{})
	c.stop = stop
	inst.Handle(c)
}

// Metrics returns the participant's metrics sink.
func (c *BallotConsensus) Metrics() *trace.Metrics { return c.metrics }

// Stop shuts down the participant: its delivery handler discards everything
// after the stop signal, and pending Propose calls return. For a participant
// built by a group constructor the stop signal is shared, so the first Stop
// stops every participant of the group; the remaining calls are no-ops.
func (c *BallotConsensus) Stop() {
	c.stop.signal()
}

// Decision returns the decided value, if this participant has learned it.
func (c *BallotConsensus) Decision() (Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decision, c.decided
}

// Propose runs the consensus protocol with proposal v and returns the decided
// value. It blocks until a decision is learned, the context is cancelled, or
// the process crashes. All waiting rides the network's virtual clock, so a
// blocked Propose costs no wall-clock time.
func (c *BallotConsensus) Propose(ctx context.Context, v Value) (Value, error) {
	c.metrics.Inc("propose")
	// Submit to the step scheduler: if the network runs in step mode and the
	// caller brought no task, the calling goroutine is adopted for the span
	// of this Propose, so raw-network callers (benchmarks, package tests)
	// take steps under the same deterministic discipline as scenario runners.
	ctx, release := net.AdoptTask(ctx, c.ep, "consensus.propose")
	defer release()
	task := net.TaskFrom(ctx)
	if task != nil {
		c.waiter.Set(task)
		defer c.waiter.Clear()
	}
	// One poll ticker serves the whole call: the non-leader wait below and
	// the leader's quorum waits inside awaitAttempt park on the same lease,
	// so a Propose costs one timer lease however many ballots it leads. The
	// lease must always be consumed by whichever select is currently
	// blocking — an unconsumed virtual-time fire holds the clock until its
	// owner receives it — so the ticker is stopped around Sleep (the one
	// blocking call that does not receive from it) and at every exit. The
	// stops are spelled out instead of deferred: a defer closure over the
	// ticker variable is a heap allocation on every Propose.
	ticker := c.ep.NewTicker(c.poll)
	ticker.Bind(task)
	for {
		if val, ok := c.Decision(); ok {
			ticker.Stop()
			return val, nil
		}
		if c.omega.Sample() == c.ep.ID() {
			if val, ok, err := c.lead(ctx, v, ticker); err != nil {
				ticker.Stop()
				return nil, err
			} else if ok {
				ticker.Stop()
				return val, nil
			}
			// Failed ballot: back off so a contending (old) leader can finish.
			ticker.Stop()
			if err := c.ep.Sleep(ctx, c.backoff); err != nil {
				return nil, fmt.Errorf("consensus propose: %w", err)
			}
			ticker = c.ep.NewTicker(c.poll)
			ticker.Bind(task)
			continue
		}
		if task != nil {
			// Step mode: the select below becomes condition rechecks around a
			// scheduler park. Wakes arrive from the acceptor handler (via
			// waiter), the bound ticker, and a crash of this process.
			if err := c.ep.Context().Err(); err != nil {
				ticker.Stop()
				return nil, fmt.Errorf("consensus propose: %w", err)
			}
			if err := ctx.Err(); err != nil {
				ticker.Stop()
				return nil, fmt.Errorf("consensus propose: %w", err)
			}
			if ticker.TryFire() {
				c.ep.Clock().Tick()
				select {
				case <-c.stop.ch:
					ticker.Stop()
					return nil, fmt.Errorf("consensus propose: participant stopped")
				default:
				}
				continue
			}
			task.Await(ctx)
			continue
		}
		select {
		case <-c.ep.Context().Done():
			ticker.Stop()
			return nil, fmt.Errorf("consensus propose: %w", c.ep.Context().Err())
		case <-c.decidedCh:
		case <-ticker.C:
			// A "nop" step while waiting: advance the logical clock so
			// time-based detector behaviour (suspicion delays, leadership
			// changes) makes progress even without message traffic. The
			// caller's context and the stop signal are re-checked here
			// rather than parked on — two fewer channels per select, and
			// every blocked select costs one runtime sudog per channel, per
			// waiter, re-allocated after each GC. The latency cost is one
			// poll tick; the ticker keeps firing through both conditions
			// (cancellation and group Stop leave the network running), and
			// the cases above cover the events that do silence it: crash
			// and close fire the endpoint context, a decision closes
			// decidedCh.
			c.ep.Clock().Tick()
			if err := ctx.Err(); err != nil {
				ticker.Stop()
				return nil, fmt.Errorf("consensus propose: %w", err)
			}
			select {
			case <-c.stop.ch:
				ticker.Stop()
				return nil, fmt.Errorf("consensus propose: participant stopped")
			default:
			}
		}
	}
}

// Run executes one single-shot consensus at this participant: it proposes
// input and returns the decided value. It is the scenario harness's common
// participant entry point (see internal/scenario).
func (c *BallotConsensus) Run(ctx context.Context, input any) (any, error) {
	return c.Propose(ctx, input)
}

// lead runs one ballot as the proposer. It returns (value, true, nil) when a
// decision was reached, (nil, false, nil) when the ballot was preempted, and
// an error when the context was cancelled.
func (c *BallotConsensus) lead(ctx context.Context, proposal Value, ticker *net.Timer) (Value, bool, error) {
	c.metrics.Inc("ballots")
	ballot := c.nextBallot()

	// Phase 1: prepare.
	att := c.newAttempt(ballot, msgPrepare)
	c.inst.BroadcastAux(msgPrepare, int64(ballot), 0, nil)
	ok, err := c.awaitAttempt(ctx, att, ticker)
	if err != nil || !ok {
		c.clearAttempt()
		return nil, false, err
	}

	// Choose the value: the accepted value of the highest ballot seen, or the
	// proposer's own proposal if no acceptor has accepted anything.
	c.mu.Lock()
	value := proposal
	if att.hasBest {
		value = att.bestVal
	}
	c.mu.Unlock()

	// Phase 2: accept.
	att2 := c.newAttempt(ballot, msgAccept)
	att2.valueSent = value
	c.inst.BroadcastAux(msgAccept, int64(ballot), 0, value)
	ok, err = c.awaitAttempt(ctx, att2, ticker)
	c.clearAttempt()
	if err != nil || !ok {
		return nil, false, err
	}

	// Decision: tell everyone (including ourselves).
	c.inst.Broadcast(msgDecide, value)
	c.learn(value)
	return value, true, nil
}

func (c *BallotConsensus) nextBallot() Ballot {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := Ballot(c.ep.N())
	id := Ballot(c.ep.ID())
	round := c.maxSeen/n + 1
	b := round*n + id
	if b <= c.maxSeen {
		b += n
	}
	c.maxSeen = b
	return b
}

// newAttempt readies the proposer's attempt state for one phase of one
// ballot. The attempt struct, its acknowledgement set and its update channel
// are reused across phases and ballots (a participant runs at most one
// attempt at a time), so a proposal's steady state allocates them once.
func (c *BallotConsensus) newAttempt(b Ballot, phase string) *attempt {
	c.mu.Lock()
	defer c.mu.Unlock()
	att := c.scratch
	if att == nil {
		att = &attempt{acked: model.NewProcessSetCap(c.ep.N()), updated: make(chan struct{}, 1)}
		c.scratch = att
	}
	att.ballot = b
	att.phase = phase
	att.acked.Clear()
	att.rejected = false
	att.bestBal = -1
	att.bestVal = nil
	att.hasBest = false
	att.valueSent = nil
	select {
	case <-att.updated:
	default:
	}
	c.attempt = att
	return att
}

func (c *BallotConsensus) clearAttempt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempt = nil
}

// awaitAttempt waits until the attempt's acknowledgement set satisfies the
// quorum guard (true), the attempt is rejected by a higher ballot (false), or
// the context is cancelled.
func (c *BallotConsensus) awaitAttempt(ctx context.Context, att *attempt, ticker *net.Timer) (bool, error) {
	task := net.TaskFrom(ctx)
	for {
		// The guard is consulted under the participant's mutex with the live
		// acknowledgement set: guards only read the set (quorum.Guard's
		// contract), so the clone the old code took per poll iteration was
		// pure garbage.
		c.mu.Lock()
		rejected := att.rejected
		decided := c.decided
		satisfied := !rejected && !decided && c.guard.Satisfied(att.acked)
		c.mu.Unlock()
		if decided {
			// Someone already decided; the proposer can stop immediately.
			return false, nil
		}
		if rejected {
			c.metrics.Inc("ballots.preempted")
			return false, nil
		}
		if satisfied {
			return true, nil
		}
		if task != nil {
			// Step mode: park; acknowledgement arrivals (handler-side waiter
			// wakes), ticker fires and crashes all grant us a recheck step.
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("consensus ballot %d: %w", att.ballot, err)
			}
			if err := c.ep.Context().Err(); err != nil {
				return false, fmt.Errorf("consensus ballot %d: %w", att.ballot, c.ep.Context().Err())
			}
			if ticker.TryFire() {
				c.ep.Clock().Tick()
				select {
				case <-c.stop.ch:
					return false, fmt.Errorf("consensus ballot %d: participant stopped", att.ballot)
				default:
				}
				continue
			}
			task.Await(ctx)
			continue
		}
		select {
		case <-ctx.Done():
			return false, fmt.Errorf("consensus ballot %d: %w", att.ballot, ctx.Err())
		case <-c.ep.Context().Done():
			return false, fmt.Errorf("consensus ballot %d: %w", att.ballot, c.ep.Context().Err())
		case <-att.updated:
		case <-ticker.C:
			// Nop step: keeps Σ re-evaluation (whose output can shrink as
			// suspicion delays expire) and the logical clock moving while
			// acknowledgements are outstanding. Stop is re-checked on the
			// tick instead of parked on, as in Propose.
			c.ep.Clock().Tick()
			select {
			case <-c.stop.ch:
				return false, fmt.Errorf("consensus ballot %d: participant stopped", att.ballot)
			default:
			}
		}
	}
}

// learn records the decision and wakes up waiting Propose calls.
func (c *BallotConsensus) learn(v Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.decided {
		return
	}
	c.decided = true
	c.decision = v
	c.metrics.Inc("decided")
	close(c.decidedCh)
	c.waiter.Wake()
}

// HandleMessage implements net.Handler: it plays the acceptor role and
// routes proposer acknowledgements, running synchronously on the network's
// dispatch goroutine. There is no receive loop and no goroutine behind it —
// an idle acceptor costs nothing. The dispatcher already suppresses
// deliveries to crashed processes, so the only gate needed here is the stop
// signal; everything it does (mutex-guarded state updates, non-blocking
// notifies, sends and broadcasts, which merely enqueue) is non-blocking, as
// Handle requires.
func (c *BallotConsensus) HandleMessage(msg net.Message) {
	select {
	case <-c.stop.ch:
		return
	default:
	}
	c.handle(msg)
}

func (c *BallotConsensus) handle(msg net.Message) {
	switch msg.Type {
	case msgPrepare:
		ballot := Ballot(msg.Aux)
		c.mu.Lock()
		if ballot > c.maxSeen {
			c.maxSeen = ballot
		}
		if ballot >= c.promised {
			c.promised = ballot
			accepted, acceptedVal := Ballot(-1), Value(nil)
			if c.hasAccepted {
				accepted, acceptedVal = c.accepted, c.acceptedVal
			}
			c.mu.Unlock()
			c.inst.SendAux(msg.From, msgPromise, int64(ballot), int64(accepted), acceptedVal)
			return
		}
		higher := c.promised
		c.mu.Unlock()
		c.inst.SendAux(msg.From, msgReject, int64(ballot), int64(higher), nil)

	case msgAccept:
		ballot := Ballot(msg.Aux)
		c.mu.Lock()
		if ballot > c.maxSeen {
			c.maxSeen = ballot
		}
		if ballot >= c.promised {
			c.promised = ballot
			c.accepted = ballot
			c.acceptedVal = msg.Payload
			c.hasAccepted = true
			c.mu.Unlock()
			c.inst.SendAux(msg.From, msgAccepted, int64(ballot), 0, nil)
			return
		}
		higher := c.promised
		c.mu.Unlock()
		c.inst.SendAux(msg.From, msgReject, int64(ballot), int64(higher), nil)

	case msgPromise:
		ballot, accepted := Ballot(msg.Aux), Ballot(msg.Aux2)
		c.mu.Lock()
		if att := c.attempt; att != nil && att.phase == msgPrepare && att.ballot == ballot {
			att.acked.Add(msg.From)
			if accepted >= 0 && accepted > att.bestBal {
				att.bestBal = accepted
				att.bestVal = msg.Payload
				att.hasBest = true
			}
			notify(att.updated)
			c.waiter.Wake()
		}
		c.mu.Unlock()

	case msgAccepted:
		ballot := Ballot(msg.Aux)
		c.mu.Lock()
		if att := c.attempt; att != nil && att.phase == msgAccept && att.ballot == ballot {
			att.acked.Add(msg.From)
			notify(att.updated)
			c.waiter.Wake()
		}
		c.mu.Unlock()

	case msgReject:
		ballot, higher := Ballot(msg.Aux), Ballot(msg.Aux2)
		c.mu.Lock()
		if higher > c.maxSeen {
			c.maxSeen = higher
		}
		if att := c.attempt; att != nil && att.ballot == ballot {
			att.rejected = true
			notify(att.updated)
			c.waiter.Wake()
		}
		c.mu.Unlock()

	case msgDecide:
		c.mu.Lock()
		already := c.decided
		c.mu.Unlock()
		c.learn(msg.Payload)
		if !already {
			// Relay the decision once, so that every correct process learns it
			// even if the original proposer crashed mid-broadcast. The relay
			// forwards the incoming payload box as-is, so the n relays of a
			// decision wave allocate nothing.
			c.inst.Broadcast(msgDecide, msg.Payload)
		}
	}
}

func notify(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}
