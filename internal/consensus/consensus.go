// Package consensus implements single-shot uniform consensus (Section 4) in
// the regimes the paper analyses:
//
//   - BallotConsensus, a leader/quorum ("synod"-style) protocol driven by the
//     leader detector Ω and parameterised by a quorum.Guard. With the
//     Σ-backed guard it is the sufficiency half of Corollary 2 — consensus
//     from (Ω, Σ) in any environment. With the majority guard it is the
//     classical Ω-plus-majority protocol ([4]'s regime), the baseline of
//     experiment E5 that loses liveness once a majority has crashed.
//   - RegisterConsensus, the paper's stated route for Corollary 2: implement
//     atomic registers from Σ (internal/register), then solve consensus from
//     Ω and registers ([19]); it is a shared-memory round-based (Disk-Paxos
//     style) protocol in which every step is a register operation.
//
// Both protocols decide arbitrary (comparable) values; the binary consensus
// of the paper's Section 4.1 is the special case Value ∈ {0, 1}, and no
// separate binary-to-multivalued transformation ([20]) is needed.
package consensus

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/quorum"
	"weakestfd/internal/trace"
)

// Value is a proposed or decided value. Values must be comparable with ==
// (the protocols and the checkers compare them for equality).
type Value = any

// Ballot numbers are totally ordered and partitioned among processes
// (ballot mod n == proposer id), so two proposers never reuse a ballot.
type Ballot int64

// Message types of the ballot protocol.
const (
	msgPrepare  = "prepare"
	msgPromise  = "promise"
	msgAccept   = "accept"
	msgAccepted = "accepted"
	msgReject   = "reject"
	msgDecide   = "decide"
)

type prepareReq struct {
	Ballot Ballot
}

type promiseAck struct {
	Ballot      Ballot
	Accepted    Ballot
	AcceptedVal Value
	HasAccepted bool
}

type acceptReq struct {
	Ballot Ballot
	Val    Value
}

type acceptedAck struct {
	Ballot Ballot
}

type rejectAck struct {
	Ballot Ballot
	Higher Ballot
}

type decideMsg struct {
	Val Value
}

// BallotConsensus is one process's participant in a single consensus
// instance. All processes of the network must create one (they all act as
// acceptors); any subset may call Propose.
type BallotConsensus struct {
	ep       *net.Endpoint
	instance string
	omega    fd.Omega
	guard    quorum.Guard
	metrics  *trace.Metrics
	poll     time.Duration
	backoff  time.Duration

	mu          sync.Mutex
	promised    Ballot
	accepted    Ballot
	acceptedVal Value
	hasAccepted bool
	maxSeen     Ballot
	decided     bool
	decision    Value
	decidedCh   chan struct{}

	attempt *attempt

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// attempt tracks the proposer side of one ballot.
type attempt struct {
	ballot    Ballot
	phase     string // msgPrepare or msgAccept
	acked     model.ProcessSet
	rejected  bool
	bestBal   Ballot
	bestVal   Value
	hasBest   bool
	updated   chan struct{}
	valueSent Value
}

// Option configures a consensus participant.
type Option func(*options)

type options struct {
	metrics *trace.Metrics
	poll    time.Duration
	backoff time.Duration
}

// WithMetrics attaches a metrics sink (ballots attempted, decisions, ...).
func WithMetrics(m *trace.Metrics) Option { return func(o *options) { o.metrics = m } }

// WithPollInterval sets how often blocked waits re-evaluate their condition
// (leadership, quorum coverage). The interval is virtual time on the
// network's scheduler (Endpoint.NewTicker), so a poll costs no wall-clock
// time and each poll step advances the logical clock like any other "nop"
// step of the paper's model. Default 1ms.
func WithPollInterval(d time.Duration) Option { return func(o *options) { o.poll = d } }

// WithBackoff sets how long a proposer waits after a failed ballot before
// retrying, in virtual time (Endpoint.NewTimer): large enough to let a
// contending leader finish, free in wall-clock terms. Default 2ms.
func WithBackoff(d time.Duration) Option { return func(o *options) { o.backoff = d } }

// NewBallotConsensus creates the participant for the process behind ep in the
// consensus instance named by instance. omega supplies the leader hint;
// guard decides when a quorum of acceptors has been gathered.
func NewBallotConsensus(ep *net.Endpoint, instance string, omega fd.Omega, guard quorum.Guard, opts ...Option) *BallotConsensus {
	o := options{metrics: trace.NewMetrics(), poll: time.Millisecond, backoff: 2 * time.Millisecond}
	for _, fn := range opts {
		fn(&o)
	}
	c := &BallotConsensus{
		ep:        ep,
		instance:  "cons." + instance,
		omega:     omega,
		guard:     guard,
		metrics:   o.metrics,
		poll:      o.poll,
		backoff:   o.backoff,
		promised:  -1,
		accepted:  -1,
		maxSeen:   -1,
		decidedCh: make(chan struct{}),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go c.run()
	return c
}

// Metrics returns the participant's metrics sink.
func (c *BallotConsensus) Metrics() *trace.Metrics { return c.metrics }

// Stop shuts down the participant's message loop.
func (c *BallotConsensus) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Decision returns the decided value, if this participant has learned it.
func (c *BallotConsensus) Decision() (Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decision, c.decided
}

// Propose runs the consensus protocol with proposal v and returns the decided
// value. It blocks until a decision is learned, the context is cancelled, or
// the process crashes. All waiting rides the network's virtual clock, so a
// blocked Propose costs no wall-clock time.
func (c *BallotConsensus) Propose(ctx context.Context, v Value) (Value, error) {
	c.metrics.Inc("propose")
	// The poll ticker exists only while this loop is the one blocking: a
	// virtual-time ticker whose owner stops receiving (here: while leading a
	// ballot, which blocks in awaitAttempt on its own ticker) would freeze
	// the network's virtual clock, so it is stopped before every nested
	// blocking call and re-created on the next non-leader wait.
	var ticker *net.Timer
	stopTicker := func() {
		if ticker != nil {
			ticker.Stop()
			ticker = nil
		}
	}
	defer stopTicker()
	for {
		if val, ok := c.Decision(); ok {
			return val, nil
		}
		if c.omega.Sample() == c.ep.ID() {
			stopTicker()
			if val, ok, err := c.lead(ctx, v); err != nil {
				return nil, err
			} else if ok {
				return val, nil
			}
			// Failed ballot: back off so a contending (old) leader can finish.
			if err := c.ep.Sleep(ctx, c.backoff); err != nil {
				return nil, fmt.Errorf("consensus propose: %w", err)
			}
			continue
		}
		if ticker == nil {
			ticker = c.ep.NewTicker(c.poll)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("consensus propose: %w", ctx.Err())
		case <-c.ep.Context().Done():
			return nil, fmt.Errorf("consensus propose: %w", c.ep.Context().Err())
		case <-c.stop:
			return nil, fmt.Errorf("consensus propose: participant stopped")
		case <-c.decidedCh:
		case <-ticker.C:
			// A "nop" step while waiting: advance the logical clock so
			// time-based detector behaviour (suspicion delays, leadership
			// changes) makes progress even without message traffic.
			c.ep.Clock().Tick()
		}
	}
}

// Run executes one single-shot consensus at this participant: it proposes
// input and returns the decided value. It is the scenario harness's common
// participant entry point (see internal/scenario).
func (c *BallotConsensus) Run(ctx context.Context, input any) (any, error) {
	return c.Propose(ctx, input)
}

// lead runs one ballot as the proposer. It returns (value, true, nil) when a
// decision was reached, (nil, false, nil) when the ballot was preempted, and
// an error when the context was cancelled.
func (c *BallotConsensus) lead(ctx context.Context, proposal Value) (Value, bool, error) {
	c.metrics.Inc("ballots")
	ballot := c.nextBallot()

	// Phase 1: prepare.
	att := c.newAttempt(ballot, msgPrepare)
	c.ep.Broadcast(c.instance, msgPrepare, prepareReq{Ballot: ballot})
	ok, err := c.awaitAttempt(ctx, att)
	if err != nil || !ok {
		c.clearAttempt()
		return nil, false, err
	}

	// Choose the value: the accepted value of the highest ballot seen, or the
	// proposer's own proposal if no acceptor has accepted anything.
	c.mu.Lock()
	value := proposal
	if att.hasBest {
		value = att.bestVal
	}
	c.mu.Unlock()

	// Phase 2: accept.
	att2 := c.newAttempt(ballot, msgAccept)
	att2.valueSent = value
	c.ep.Broadcast(c.instance, msgAccept, acceptReq{Ballot: ballot, Val: value})
	ok, err = c.awaitAttempt(ctx, att2)
	c.clearAttempt()
	if err != nil || !ok {
		return nil, false, err
	}

	// Decision: tell everyone (including ourselves).
	c.ep.Broadcast(c.instance, msgDecide, decideMsg{Val: value})
	c.learn(value)
	return value, true, nil
}

func (c *BallotConsensus) nextBallot() Ballot {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := Ballot(c.ep.N())
	id := Ballot(c.ep.ID())
	round := c.maxSeen/n + 1
	b := round*n + id
	if b <= c.maxSeen {
		b += n
	}
	c.maxSeen = b
	return b
}

func (c *BallotConsensus) newAttempt(b Ballot, phase string) *attempt {
	c.mu.Lock()
	defer c.mu.Unlock()
	att := &attempt{
		ballot:  b,
		phase:   phase,
		acked:   model.NewProcessSet(),
		bestBal: -1,
		updated: make(chan struct{}, 1),
	}
	c.attempt = att
	return att
}

func (c *BallotConsensus) clearAttempt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempt = nil
}

// awaitAttempt waits until the attempt's acknowledgement set satisfies the
// quorum guard (true), the attempt is rejected by a higher ballot (false), or
// the context is cancelled.
func (c *BallotConsensus) awaitAttempt(ctx context.Context, att *attempt) (bool, error) {
	ticker := c.ep.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		c.mu.Lock()
		rejected := att.rejected
		acked := att.acked.Clone()
		decided := c.decided
		c.mu.Unlock()
		if decided {
			// Someone already decided; the proposer can stop immediately.
			return false, nil
		}
		if rejected {
			c.metrics.Inc("ballots.preempted")
			return false, nil
		}
		if c.guard.Satisfied(acked) {
			return true, nil
		}
		select {
		case <-ctx.Done():
			return false, fmt.Errorf("consensus ballot %d: %w", att.ballot, ctx.Err())
		case <-c.ep.Context().Done():
			return false, fmt.Errorf("consensus ballot %d: %w", att.ballot, c.ep.Context().Err())
		case <-c.stop:
			return false, fmt.Errorf("consensus ballot %d: participant stopped", att.ballot)
		case <-att.updated:
		case <-ticker.C:
			// Nop step: keeps Σ re-evaluation (whose output can shrink as
			// suspicion delays expire) and the logical clock moving while
			// acknowledgements are outstanding.
			c.ep.Clock().Tick()
		}
	}
}

// learn records the decision and wakes up waiting Propose calls.
func (c *BallotConsensus) learn(v Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.decided {
		return
	}
	c.decided = true
	c.decision = v
	c.metrics.Inc("decided")
	close(c.decidedCh)
}

// run is the single reader of the participant's message stream; it plays the
// acceptor role and routes proposer acknowledgements.
func (c *BallotConsensus) run() {
	defer close(c.done)
	inbox := c.ep.Subscribe(c.instance)
	for {
		select {
		case <-c.stop:
			return
		case <-c.ep.Context().Done():
			return
		case msg := <-inbox:
			c.handle(msg)
		}
	}
}

func (c *BallotConsensus) handle(msg net.Message) {
	switch msg.Type {
	case msgPrepare:
		req := msg.Payload.(prepareReq)
		c.mu.Lock()
		if req.Ballot > c.maxSeen {
			c.maxSeen = req.Ballot
		}
		if req.Ballot >= c.promised {
			c.promised = req.Ballot
			ack := promiseAck{Ballot: req.Ballot, Accepted: c.accepted, AcceptedVal: c.acceptedVal, HasAccepted: c.hasAccepted}
			c.mu.Unlock()
			c.ep.Send(msg.From, c.instance, msgPromise, ack)
			return
		}
		higher := c.promised
		c.mu.Unlock()
		c.ep.Send(msg.From, c.instance, msgReject, rejectAck{Ballot: req.Ballot, Higher: higher})

	case msgAccept:
		req := msg.Payload.(acceptReq)
		c.mu.Lock()
		if req.Ballot > c.maxSeen {
			c.maxSeen = req.Ballot
		}
		if req.Ballot >= c.promised {
			c.promised = req.Ballot
			c.accepted = req.Ballot
			c.acceptedVal = req.Val
			c.hasAccepted = true
			c.mu.Unlock()
			c.ep.Send(msg.From, c.instance, msgAccepted, acceptedAck{Ballot: req.Ballot})
			return
		}
		higher := c.promised
		c.mu.Unlock()
		c.ep.Send(msg.From, c.instance, msgReject, rejectAck{Ballot: req.Ballot, Higher: higher})

	case msgPromise:
		ack := msg.Payload.(promiseAck)
		c.mu.Lock()
		if att := c.attempt; att != nil && att.phase == msgPrepare && att.ballot == ack.Ballot {
			att.acked.Add(msg.From)
			if ack.HasAccepted && ack.Accepted > att.bestBal {
				att.bestBal = ack.Accepted
				att.bestVal = ack.AcceptedVal
				att.hasBest = true
			}
			notify(att.updated)
		}
		c.mu.Unlock()

	case msgAccepted:
		ack := msg.Payload.(acceptedAck)
		c.mu.Lock()
		if att := c.attempt; att != nil && att.phase == msgAccept && att.ballot == ack.Ballot {
			att.acked.Add(msg.From)
			notify(att.updated)
		}
		c.mu.Unlock()

	case msgReject:
		ack := msg.Payload.(rejectAck)
		c.mu.Lock()
		if ack.Higher > c.maxSeen {
			c.maxSeen = ack.Higher
		}
		if att := c.attempt; att != nil && att.ballot == ack.Ballot {
			att.rejected = true
			notify(att.updated)
		}
		c.mu.Unlock()

	case msgDecide:
		dec := msg.Payload.(decideMsg)
		c.mu.Lock()
		already := c.decided
		c.mu.Unlock()
		c.learn(dec.Val)
		if !already {
			// Relay the decision once, so that every correct process learns it
			// even if the original proposer crashed mid-broadcast.
			c.ep.Broadcast(c.instance, msgDecide, decideMsg{Val: dec.Val})
		}
	}
}

func notify(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}
