package consensus

import (
	"fmt"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/quorum"
	"weakestfd/internal/register"
)

// Group is the set of ballot-consensus participants of one instance, indexed
// by process id.
type Group []*BallotConsensus

// Stop stops every participant.
func (g Group) Stop() {
	for _, c := range g {
		c.Stop()
	}
}

// newGroup allocates the shared machinery and one contiguous slab of
// participants, wiring each through init with the guard returned by guardAt.
// Sharing one options struct (and hence one Metrics unless the caller supplied
// their own) and one stop channel across the group keeps the per-participant
// setup cost to the struct, its decided channel and the handler registration;
// the Ω bindings come as one slab whose elements are boxed by pointer, which
// allocates nothing per participant.
func newGroup(nw *net.Network, instance string, omega fd.OmegaSource, guardAt func(i int) quorum.Guard, opts []Option) Group {
	n := nw.N()
	o := resolveOptions(opts)
	stop := newStopper()
	name := "cons." + instance
	omegas := fd.BindAll(omega, nw.Clock(), n)
	parts := make([]BallotConsensus, n)
	g := make(Group, n)
	for i := 0; i < n; i++ {
		ep := nw.Endpoint(model.ProcessID(i))
		parts[i].init(ep, ep.Instance(name), &omegas[i], guardAt(i), o, stop)
		g[i] = &parts[i]
	}
	return g
}

// NewOmegaSigmaGroup builds the (Ω, Σ) consensus of Corollary 2 over every
// process of the network: leadership comes from omega's module at each
// process, quorums from sigma's.
func NewOmegaSigmaGroup(nw *net.Network, instance string, omega fd.OmegaSource, sigma fd.SigmaSource, opts ...Option) Group {
	sigmas := fd.BindAll(sigma, nw.Clock(), nw.N())
	guards := make([]quorum.SigmaGuard, nw.N())
	for i := range guards {
		guards[i] = quorum.SigmaGuard{Source: &sigmas[i]}
	}
	return newGroup(nw, instance, omega, func(i int) quorum.Guard { return &guards[i] }, opts)
}

// NewOmegaMajorityGroup builds the classical Ω-plus-majority consensus (the
// regime of [4], baseline of experiment E5): same protocol, but quorums are
// plain majorities, so liveness is lost once a majority has crashed.
func NewOmegaMajorityGroup(nw *net.Network, instance string, omega fd.OmegaSource, opts ...Option) Group {
	var guard quorum.Guard = quorum.MajorityGuard{N: nw.N()}
	return newGroup(nw, instance, omega, func(int) quorum.Guard { return guard }, opts)
}

// RegisterGroup is the set of register-based consensus participants of one
// instance together with the register groups they run on.
type RegisterGroup struct {
	Participants []*RegisterConsensus
	regGroups    []register.Group[RoundState]
	decGroup     register.Group[DecisionState]
}

// Stop stops all underlying register replicas.
func (g *RegisterGroup) Stop() {
	for _, rg := range g.regGroups {
		rg.Stop()
	}
	g.decGroup.Stop()
}

// NewRegisterConsensusGroup builds the paper's register route for Corollary 2
// over every process: n single-writer round registers plus one decision
// register, all implemented from Σ, plus Ω for leadership.
func NewRegisterConsensusGroup(nw *net.Network, instance string, omega fd.OmegaSource, sigma fd.SigmaSource, regOpts ...register.Option) *RegisterGroup {
	n := nw.N()
	g := &RegisterGroup{
		Participants: make([]*RegisterConsensus, n),
		regGroups:    make([]register.Group[RoundState], n),
	}
	for owner := 0; owner < n; owner++ {
		g.regGroups[owner] = register.NewSigmaGroup[RoundState](nw, fmt.Sprintf("%s.r%d", instance, owner), sigma, regOpts...)
	}
	g.decGroup = register.NewSigmaGroup[DecisionState](nw, instance+".dec", sigma, regOpts...)

	for i := 0; i < n; i++ {
		p := model.ProcessID(i)
		regs := make([]*register.Register[RoundState], n)
		for owner := 0; owner < n; owner++ {
			regs[owner] = g.regGroups[owner][i]
		}
		g.Participants[i] = NewRegisterConsensus(RegisterConsensusConfig{
			ID:    p,
			EP:    nw.Endpoint(p),
			Omega: fd.BindTo(p, omega, nw.Clock()),
			Regs:  regs,
			Dec:   g.decGroup[i],
		})
	}
	return g
}
