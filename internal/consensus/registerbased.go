package consensus

import (
	"context"
	"fmt"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/register"
	"weakestfd/internal/trace"
)

// RegisterConsensus solves consensus from Ω and atomic registers — the route
// the paper uses to prove Corollary 2 (registers come from Σ via
// internal/register, consensus comes from Ω plus registers, after [19]).
//
// The protocol is a shared-memory round-based ("Disk Paxos" style) algorithm:
//
//   - Every process p owns a single-writer register regs[p] holding
//     (mbal, bal, val): the highest ballot p has started, and the ballot and
//     value of p's last phase-2 write.
//   - A proposer with ballot b writes mbal=b to its own register, reads all
//     registers, and aborts if it sees a higher mbal. Otherwise it adopts the
//     value of the highest bal it read (or its own proposal), writes
//     (bal=b, val=v) to its own register, re-reads all registers, and decides
//     v if it still sees no higher mbal.
//   - The decision is published in a separate multi-writer decision register
//     that every process polls, so non-leaders learn the outcome through
//     shared memory alone.
//
// Only the process currently trusted by Ω plays proposer, which yields
// termination once Ω has stabilised; safety is independent of Ω and follows
// from register atomicity.
type RegisterConsensus struct {
	id      model.ProcessID
	n       int
	ep      *net.Endpoint
	omega   fd.Omega
	regs    []*register.Register[RoundState]
	dec     *register.Register[DecisionState]
	metrics *trace.Metrics
	poll    time.Duration
	maxSeen Ballot
}

// RoundState is the content of a proposer register.
type RoundState struct {
	MBal Ballot
	Bal  Ballot
	Val  Value
	Has  bool
}

// DecisionState is the content of the decision register.
type DecisionState struct {
	Decided bool
	Val     Value
}

// RegisterConsensusConfig wires one process's handles: Regs[i] must be the
// local handle of the register group owned by process i, and Dec the local
// handle of the decision register group. EP is the process's network
// endpoint; the participant's poll pauses ride its virtual clock. If EP is
// nil it is derived from the process's decision-register replica.
type RegisterConsensusConfig struct {
	ID      model.ProcessID
	EP      *net.Endpoint
	Omega   fd.Omega
	Regs    []*register.Register[RoundState]
	Dec     *register.Register[DecisionState]
	Metrics *trace.Metrics
	Poll    time.Duration
}

// NewRegisterConsensus builds the participant from its configuration.
func NewRegisterConsensus(cfg RegisterConsensusConfig) *RegisterConsensus {
	m := cfg.Metrics
	if m == nil {
		m = trace.NewMetrics()
	}
	poll := cfg.Poll
	if poll == 0 {
		poll = time.Millisecond
	}
	ep := cfg.EP
	if ep == nil && cfg.Dec != nil {
		ep = cfg.Dec.Endpoint()
	}
	if ep == nil {
		panic("consensus: RegisterConsensusConfig needs an endpoint (EP or Dec)")
	}
	return &RegisterConsensus{
		id:      cfg.ID,
		n:       len(cfg.Regs),
		ep:      ep,
		omega:   cfg.Omega,
		regs:    cfg.Regs,
		dec:     cfg.Dec,
		metrics: m,
		poll:    poll,
		maxSeen: -1,
	}
}

// Metrics returns the participant's metrics sink.
func (c *RegisterConsensus) Metrics() *trace.Metrics { return c.metrics }

// Propose runs the protocol with proposal v and returns the decided value.
func (c *RegisterConsensus) Propose(ctx context.Context, v Value) (Value, error) {
	c.metrics.Inc("propose")
	// Step mode: adopt the caller. Every wait below — register Read/Write
	// round-trips and the poll Sleep — is task-aware through the ctx.
	ctx, release := net.AdoptTask(ctx, c.ep, "consensus.register")
	defer release()
	for {
		// Has someone already decided?
		d, err := c.dec.Read(ctx)
		if err != nil {
			return nil, fmt.Errorf("register consensus: decision read: %w", err)
		}
		if d.Decided {
			return d.Val, nil
		}
		if c.omega.Sample() != c.id {
			if err := c.pause(ctx); err != nil {
				return nil, fmt.Errorf("register consensus: %w", err)
			}
			continue
		}
		decided, val, err := c.lead(ctx, v)
		if err != nil {
			return nil, err
		}
		if decided {
			return val, nil
		}
		if err := c.pause(ctx); err != nil {
			return nil, fmt.Errorf("register consensus: %w", err)
		}
	}
}

// pause is one poll step of virtual time; like every "nop" step it advances
// the logical clock so detector behaviour keeps making progress.
func (c *RegisterConsensus) pause(ctx context.Context) error {
	if err := c.ep.Sleep(ctx, c.poll); err != nil {
		return err
	}
	c.ep.Clock().Tick()
	return nil
}

// Run executes one single-shot consensus at this participant: it proposes
// input and returns the decided value (the scenario harness's common
// participant entry point).
func (c *RegisterConsensus) Run(ctx context.Context, input any) (any, error) {
	return c.Propose(ctx, input)
}

// lead runs one ballot; it returns (true, v) on decision and (false, nil) if
// the ballot was preempted by a higher one.
func (c *RegisterConsensus) lead(ctx context.Context, proposal Value) (bool, Value, error) {
	c.metrics.Inc("ballots")
	b := c.nextBallot()
	own := c.regs[int(c.id)]

	// Phase 1: announce the ballot in our own register, then read everyone.
	cur, err := own.Read(ctx)
	if err != nil {
		return false, nil, fmt.Errorf("register consensus: phase1 self read: %w", err)
	}
	cur.MBal = b
	if err := own.Write(ctx, cur); err != nil {
		return false, nil, fmt.Errorf("register consensus: phase1 write: %w", err)
	}
	states, err := c.readAll(ctx)
	if err != nil {
		return false, nil, err
	}
	value := proposal
	bestBal := Ballot(-1)
	for _, st := range states {
		if st.MBal > b {
			c.observe(st.MBal)
			c.metrics.Inc("ballots.preempted")
			return false, nil, nil
		}
		if st.Has && st.Bal > bestBal {
			bestBal = st.Bal
			value = st.Val
		}
	}

	// Phase 2: record (bal=b, val=value) in our own register, then re-read.
	if err := own.Write(ctx, RoundState{MBal: b, Bal: b, Val: value, Has: true}); err != nil {
		return false, nil, fmt.Errorf("register consensus: phase2 write: %w", err)
	}
	states, err = c.readAll(ctx)
	if err != nil {
		return false, nil, err
	}
	for _, st := range states {
		if st.MBal > b {
			c.observe(st.MBal)
			c.metrics.Inc("ballots.preempted")
			return false, nil, nil
		}
	}

	// Decided: publish through the decision register.
	if err := c.dec.Write(ctx, DecisionState{Decided: true, Val: value}); err != nil {
		return false, nil, fmt.Errorf("register consensus: decision write: %w", err)
	}
	c.metrics.Inc("decided")
	return true, value, nil
}

func (c *RegisterConsensus) readAll(ctx context.Context) ([]RoundState, error) {
	states := make([]RoundState, c.n)
	for i := 0; i < c.n; i++ {
		st, err := c.regs[i].Read(ctx)
		if err != nil {
			return nil, fmt.Errorf("register consensus: read of reg[%d]: %w", i, err)
		}
		states[i] = st
	}
	return states, nil
}

func (c *RegisterConsensus) observe(b Ballot) {
	if b > c.maxSeen {
		c.maxSeen = b
	}
}

func (c *RegisterConsensus) nextBallot() Ballot {
	n := Ballot(c.n)
	id := Ballot(c.id)
	round := c.maxSeen/n + 1
	b := round*n + id
	if b <= c.maxSeen {
		b += n
	}
	c.maxSeen = b
	return b
}
