package register

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"weakestfd/internal/check"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

const opTimeout = 10 * time.Second

func TestTimestampOrdering(t *testing.T) {
	a := Timestamp{Seq: 1, Writer: 0}
	b := Timestamp{Seq: 1, Writer: 1}
	c := Timestamp{Seq: 2, Writer: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatalf("timestamp ordering wrong")
	}
	if b.Less(a) || a.Less(a) {
		t.Fatalf("timestamp ordering not strict")
	}
	if a.String() != "1.p0" {
		t.Fatalf("String = %q", a.String())
	}
}

// opRecorder collects operations with logical start/end times for the
// linearizability checker.
type opRecorder struct {
	mu    sync.Mutex
	clock *net.Clock
	ops   []check.Op
}

func (rec *opRecorder) read(ctx context.Context, r *Register[int], p model.ProcessID) error {
	start := rec.clock.Now()
	v, err := r.Read(ctx)
	end := rec.clock.Now()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.ops = append(rec.ops, check.Op{Process: p, Kind: check.OpRead, Value: v, Start: start, End: end, Complete: err == nil})
	return err
}

func (rec *opRecorder) write(ctx context.Context, r *Register[int], p model.ProcessID, v int) error {
	start := rec.clock.Now()
	err := r.Write(ctx, v)
	end := rec.clock.Now()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.ops = append(rec.ops, check.Op{Process: p, Kind: check.OpWrite, Value: v, Start: start, End: end, Complete: err == nil})
	return err
}

func (rec *opRecorder) linearizable(t *testing.T) {
	t.Helper()
	rec.mu.Lock()
	ops := append([]check.Op{}, rec.ops...)
	rec.mu.Unlock()
	if v := check.CheckLinearizable(ops, 0); !v.OK {
		t.Fatalf("history not linearizable: %v", v)
	}
}

func TestSigmaRegisterBasicReadWrite(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(1))
	defer nw.Close()
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	group := NewSigmaGroup[int](nw, "basic", sigma)
	defer group.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()

	if err := group[0].Write(ctx, 42); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 0; i < 3; i++ {
		v, err := group[i].Read(ctx)
		if err != nil {
			t.Fatalf("read at %d: %v", i, err)
		}
		if v != 42 {
			t.Fatalf("read at %d = %d, want 42", i, v)
		}
	}
	if group[0].Metrics().Get("ops.write") != 1 {
		t.Fatalf("write not counted")
	}
}

func TestSigmaRegisterInitialValue(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(2))
	defer nw.Close()
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	group := NewSigmaGroup[int](nw, "init", sigma)
	defer group.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	v, err := group[2].Read(ctx)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v != 0 {
		t.Fatalf("initial read = %d, want 0", v)
	}
}

// Experiment E1: the Σ-based register stays linearizable and live even when
// only a minority of processes is correct.
func TestSigmaRegisterLinearizableMinorityCorrect(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(3))
	defer nw.Close()
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	group := NewSigmaGroup[int](nw, "minority", sigma)
	defer group.Stop()

	rec := &opRecorder{clock: nw.Clock()}
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()

	// Warm-up traffic from all processes.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := model.ProcessID(i)
			_ = rec.write(ctx, group[i], p, 100+i)
			_ = rec.read(ctx, group[i], p)
		}(i)
	}
	wg.Wait()

	// Crash three of five processes: only a minority ({0,1}) stays correct.
	nw.Crash(2)
	nw.Crash(3)
	nw.Crash(4)

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := model.ProcessID(i)
			for k := 0; k < 5; k++ {
				if err := rec.write(ctx, group[i], p, 1000*i+k); err != nil {
					t.Errorf("write by %v after crashes: %v", p, err)
					return
				}
				if err := rec.read(ctx, group[i], p); err != nil {
					t.Errorf("read by %v after crashes: %v", p, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	rec.linearizable(t)
}

// Experiment E1 (contention): concurrent writers and readers on all processes
// with a crash injected mid-run; the resulting history must be linearizable.
func TestSigmaRegisterLinearizableUnderConcurrencyAndCrash(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(4))
	defer nw.Close()
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	group := NewSigmaGroup[int](nw, "conc", sigma)
	defer group.Stop()

	rec := &opRecorder{clock: nw.Clock()}
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := model.ProcessID(i)
			for k := 0; k < 4; k++ {
				// Crashed processes' operations may fail; that is fine — they
				// are recorded as incomplete.
				_ = rec.write(ctx, group[i], p, 10*i+k+1)
				_ = rec.read(ctx, group[i], p)
			}
		}(i)
	}
	// Crash a process while traffic is flowing.
	time.Sleep(5 * time.Millisecond)
	nw.Crash(4)
	wg.Wait()
	rec.linearizable(t)
}

func TestMajorityRegisterLinearizableWithMajority(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(5))
	defer nw.Close()
	group := NewMajorityGroup[int](nw, "maj")
	defer group.Stop()

	rec := &opRecorder{clock: nw.Clock()}
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()

	nw.Crash(4) // 4 of 5 correct: still a majority

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := model.ProcessID(i)
			for k := 0; k < 3; k++ {
				if err := rec.write(ctx, group[i], p, 10*i+k+1); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if err := rec.read(ctx, group[i], p); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	rec.linearizable(t)
}

// Experiment E2: the majority-based register blocks once a majority has
// crashed, while the Σ-based register over the same failure pattern keeps
// terminating.
func TestMajorityRegisterBlocksWithoutMajority(t *testing.T) {
	const n = 5
	nw := net.NewNetwork(n, net.WithSeed(6))
	defer nw.Close()
	majGroup := NewMajorityGroup[int](nw, "maj")
	defer majGroup.Stop()
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	sigGroup := NewSigmaGroup[int](nw, "sig", sigma)
	defer sigGroup.Stop()

	nw.Crash(2)
	nw.Crash(3)
	nw.Crash(4)

	// The Σ-based register still completes operations.
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	if err := sigGroup[0].Write(ctx, 7); err != nil {
		t.Fatalf("sigma register write blocked despite Σ: %v", err)
	}
	if v, err := sigGroup[1].Read(ctx); err != nil || v != 7 {
		t.Fatalf("sigma register read = %d, %v", v, err)
	}

	// The majority-based register blocks: the operation must time out.
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer shortCancel()
	err := majGroup[0].Write(shortCtx, 7)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("majority register write returned %v, want deadline exceeded", err)
	}
}

func TestWriteTrackedContainsACorrectProcess(t *testing.T) {
	const n = 4
	nw := net.NewNetwork(n, net.WithSeed(7))
	defer nw.Close()
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	group := NewSigmaGroup[int](nw, "tracked", sigma)
	defer group.Stop()

	nw.Crash(3)
	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()

	participants, err := group[1].WriteTracked(ctx, 5)
	if err != nil {
		t.Fatalf("WriteTracked: %v", err)
	}
	if participants.IsEmpty() {
		t.Fatalf("no participants recorded")
	}
	if !participants.Intersects(nw.Pattern().Correct()) {
		t.Fatalf("participants %v contain no correct process", participants)
	}
}

func TestRegisterGenericValueType(t *testing.T) {
	type payload struct {
		K int
		S string
	}
	nw := net.NewNetwork(3, net.WithSeed(8))
	defer nw.Close()
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	group := NewSigmaGroup[payload](nw, "struct", sigma)
	defer group.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	defer cancel()
	want := payload{K: 3, S: "hello"}
	if err := group[0].Write(ctx, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := group[2].Read(ctx)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got != want {
		t.Fatalf("read = %+v, want %+v", got, want)
	}
}

func TestRegisterOperationFailsAfterOwnCrash(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(9))
	defer nw.Close()
	sigma := &fd.OracleSigma{Pattern: nw.Pattern(), Clock: nw.Clock()}
	group := NewSigmaGroup[int](nw, "owncrash", sigma)
	defer group.Stop()

	nw.Crash(1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := group[1].Write(ctx, 1); err == nil {
		t.Fatalf("write by crashed process succeeded")
	}
}

func TestRegisterStopUnblocksOperations(t *testing.T) {
	nw := net.NewNetwork(3, net.WithSeed(10))
	defer nw.Close()
	// A guard that can never be satisfied keeps operations blocked until Stop.
	r := New[int](nw.Endpoint(0), "stuck", neverGuard{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- r.Write(context.Background(), 1)
	}()
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatalf("write succeeded with unsatisfiable guard")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Stop did not unblock the pending operation")
	}
	r.Stop() // idempotent
}

type neverGuard struct{}

func (neverGuard) Satisfied(model.ProcessSet) bool { return false }
func (neverGuard) Name() string                    { return "never" }
