package register

import (
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/quorum"
)

// Group is the set of register handles of all processes for one replicated
// register instance; index i is process i's handle.
type Group[V any] []*Register[V]

// Stop stops every replica in the group.
func (g Group[V]) Stop() {
	for _, r := range g {
		r.Stop()
	}
}

// NewSigmaGroup builds a Σ-based register group over every process of the
// network: process i's replica waits on quorums output by sigma's module at
// process i. This is the sufficiency construction of Theorem 1.
func NewSigmaGroup[V any](nw *net.Network, instance string, sigma fd.SigmaSource, opts ...Option) Group[V] {
	g := make(Group[V], nw.N())
	for i := 0; i < nw.N(); i++ {
		ep := nw.Endpoint(model.ProcessID(i))
		bound := fd.BindTo(ep.ID(), sigma, nw.Clock())
		g[i] = New[V](ep, instance, quorum.SigmaGuard{Source: bound}, opts...)
	}
	return g
}

// NewMajorityGroup builds the classical majority-based ABD register group
// (the baseline of experiment E2); it needs no failure detector but is
// correct only in majority-correct environments.
func NewMajorityGroup[V any](nw *net.Network, instance string, opts ...Option) Group[V] {
	g := make(Group[V], nw.N())
	for i := 0; i < nw.N(); i++ {
		ep := nw.Endpoint(model.ProcessID(i))
		g[i] = New[V](ep, instance, quorum.MajorityGuard{N: nw.N()}, opts...)
	}
	return g
}
