// Package register implements fault-tolerant multi-writer multi-reader atomic
// (linearizable) registers over the asynchronous message-passing runtime, in
// the two regimes the paper contrasts:
//
//   - With the quorum failure detector Σ (Theorem 1, sufficiency direction):
//     the Attiya–Bar-Noy–Dolev protocol with its "wait for a majority"
//     replaced by "wait until the acknowledging set covers a quorum currently
//     output by Σ". Σ's intersection property gives atomicity in any
//     environment; its completeness property gives termination at correct
//     processes.
//   - With plain majorities (the classical ABD baseline): correct only in
//     majority-correct environments; operations block forever once a majority
//     has crashed, which experiment E2 demonstrates.
//
// Both are instances of the same generic protocol parameterised by a
// quorum.Guard.
//
// Every operation follows the two-phase structure of ABD:
//
//	Write(v): query phase (collect timestamps from a quorum), then store phase
//	          (push (maxTs+1, v) to a quorum).
//	Read():   query phase (collect timestamp/value pairs from a quorum), then
//	          write-back phase (push the freshest pair to a quorum) so that a
//	          later read cannot observe an older value.
//
// The write path exposes the set of processes that acknowledged the store
// phase (WriteTracked). This is the executable counterpart of the participant
// sets Pi(k) of Figure 1, which the Σ-extraction construction in
// internal/extract consumes.
package register

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/quorum"
	"weakestfd/internal/trace"
)

// Timestamp orders writes: sequence number first, writer id as tie-break, so
// that concurrent writes by different processes are totally ordered.
type Timestamp struct {
	Seq    int64
	Writer model.ProcessID
}

// Less reports whether t is strictly older than o.
func (t Timestamp) Less(o Timestamp) bool {
	if t.Seq != o.Seq {
		return t.Seq < o.Seq
	}
	return t.Writer < o.Writer
}

// String implements fmt.Stringer.
func (t Timestamp) String() string { return fmt.Sprintf("%d.%v", t.Seq, t.Writer) }

// Message types exchanged by the protocol.
const (
	msgGet    = "get"     // query phase request
	msgGetAck = "get.ack" // query phase reply: timestamp and value
	msgSet    = "set"     // store / write-back phase request
	msgSetAck = "set.ack" // store phase acknowledgement
)

type getReq struct {
	Op int64
}

type getAck[V any] struct {
	Op  int64
	Ts  Timestamp
	Val V
}

type setReq[V any] struct {
	Op  int64
	Ts  Timestamp
	Val V
}

type setAck struct {
	Op int64
}

// Register is one process's handle on a replicated register. All processes
// that share the same network and instance name form the replica group; every
// one of them must create (and keep running) a Register for the protocol to
// make progress, since each hosts a replica.
//
// A Register is safe for concurrent use by multiple goroutines of its
// process.
type Register[V any] struct {
	ep       *net.Endpoint
	instance string
	guard    quorum.Guard
	metrics  *trace.Metrics
	poll     time.Duration

	mu    sync.Mutex
	ts    Timestamp
	value V
	opSeq int64
	pend  map[int64]*pending[V]

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	task     *net.Task // replica loop's step-scheduler task (nil when free-running)
}

// pending tracks the acknowledgements of one in-flight phase.
type pending[V any] struct {
	acked   model.ProcessSet
	bestTs  Timestamp
	bestVal V
	updated chan struct{}
	waiter  net.TaskWaiter // client task parked in await (step mode)
}

// Option configures a Register.
type Option func(*options)

type options struct {
	metrics *trace.Metrics
	poll    time.Duration
}

// WithMetrics attaches a metrics sink counting operations and phases.
func WithMetrics(m *trace.Metrics) Option {
	return func(o *options) { o.metrics = m }
}

// WithPollInterval sets how often a blocked phase re-evaluates its quorum
// guard even without new acknowledgements (needed with Σ, whose output can
// change over time). The interval is virtual time on the network's scheduler
// (Endpoint.NewTicker): re-evaluation costs no wall-clock time, and each poll
// step advances the logical clock like any "nop" step. The default is 1ms.
func WithPollInterval(d time.Duration) Option {
	return func(o *options) { o.poll = d }
}

// New creates the register replica and client handle for the process behind
// ep, joining the replica group identified by instance. The guard decides
// when a phase has gathered enough acknowledgements: quorum.MajorityGuard for
// the classical ABD protocol, quorum.SigmaGuard for the Σ-based one.
func New[V any](ep *net.Endpoint, instance string, guard quorum.Guard, opts ...Option) *Register[V] {
	o := options{metrics: trace.NewMetrics(), poll: time.Millisecond}
	for _, fn := range opts {
		fn(&o)
	}
	r := &Register[V]{
		ep:       ep,
		instance: "reg." + instance,
		guard:    guard,
		metrics:  o.metrics,
		poll:     o.poll,
		ts:       Timestamp{Seq: 0, Writer: -1},
		pend:     make(map[int64]*pending[V]),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	r.task = ep.Network().Go(ep, "register.replica", r.run)
	return r
}

// Metrics returns the register's metrics sink.
func (r *Register[V]) Metrics() *trace.Metrics { return r.metrics }

// Endpoint returns the network endpoint this replica runs on.
func (r *Register[V]) Endpoint() *net.Endpoint { return r.ep }

// Stop shuts down the replica's message loop. The register group loses this
// replica, exactly as if the process stopped participating.
func (r *Register[V]) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.task.Wake()
	<-r.done
}

// run is the single reader of the register's message stream: it serves the
// replica role (answering get/set requests) and routes acknowledgements to
// in-flight operations of the local process. In step mode it is a scheduler
// task: it drains the mailbox synchronously on each granted step and parks,
// woken by the dispatcher's pushes (Watch), by crash, and by Stop.
func (r *Register[V]) run(task *net.Task) {
	defer close(r.done)
	if task != nil {
		in := r.ep.Instance(r.instance)
		in.Watch(task)
		for {
			for {
				msg, ok := in.TryRecv()
				if !ok {
					break
				}
				r.handle(msg)
			}
			select {
			case <-r.stop:
				return
			default:
			}
			if r.ep.Context().Err() != nil {
				return
			}
			task.Await(nil)
		}
	}
	inbox := r.ep.Subscribe(r.instance)
	for {
		select {
		case <-r.stop:
			return
		case <-r.ep.Context().Done():
			return
		case msg := <-inbox:
			r.handle(msg)
		}
	}
}

func (r *Register[V]) handle(msg net.Message) {
	switch msg.Type {
	case msgGet:
		req := msg.Payload.(getReq)
		r.mu.Lock()
		ack := getAck[V]{Op: req.Op, Ts: r.ts, Val: r.value}
		r.mu.Unlock()
		r.ep.Send(msg.From, r.instance, msgGetAck, ack)

	case msgSet:
		req := msg.Payload.(setReq[V])
		r.mu.Lock()
		if r.ts.Less(req.Ts) {
			r.ts = req.Ts
			r.value = req.Val
		}
		r.mu.Unlock()
		r.ep.Send(msg.From, r.instance, msgSetAck, setAck{Op: req.Op})

	case msgGetAck:
		ack := msg.Payload.(getAck[V])
		r.mu.Lock()
		if p, ok := r.pend[ack.Op]; ok {
			p.acked.Add(msg.From)
			if p.bestTs.Less(ack.Ts) {
				p.bestTs = ack.Ts
				p.bestVal = ack.Val
			}
			notify(p.updated)
			p.waiter.Wake()
		}
		r.mu.Unlock()

	case msgSetAck:
		ack := msg.Payload.(setAck)
		r.mu.Lock()
		if p, ok := r.pend[ack.Op]; ok {
			p.acked.Add(msg.From)
			notify(p.updated)
			p.waiter.Wake()
		}
		r.mu.Unlock()
	}
}

func notify(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// newPending registers a fresh in-flight phase and returns its id and state.
func (r *Register[V]) newPending() (int64, *pending[V]) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.opSeq++
	id := r.opSeq
	p := &pending[V]{
		acked:   model.NewProcessSet(),
		bestTs:  Timestamp{Seq: -1, Writer: -1},
		updated: make(chan struct{}, 1),
	}
	r.pend[id] = p
	return id, p
}

func (r *Register[V]) dropPending(id int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pend, id)
}

// await blocks until the guard is satisfied by the phase's acknowledgement
// set, the context is cancelled, or the process crashes. It returns the
// acknowledging set on success.
func (r *Register[V]) await(ctx context.Context, p *pending[V]) (model.ProcessSet, error) {
	task := net.TaskFrom(ctx)
	p.waiter.Set(task)
	ticker := r.ep.NewTicker(r.poll)
	ticker.Bind(task)
	defer ticker.Stop()
	for {
		r.mu.Lock()
		acked := p.acked.Clone()
		r.mu.Unlock()
		if r.guard.Satisfied(acked) {
			return acked, nil
		}
		if task != nil {
			// Step mode: park between acknowledgement arrivals; the replica
			// task's handler wakes us through the pending's waiter.
			if err := ctx.Err(); err != nil {
				return model.NewProcessSet(), err
			}
			if err := r.ep.Context().Err(); err != nil {
				return model.NewProcessSet(), err
			}
			select {
			case <-r.stop:
				return model.NewProcessSet(), context.Canceled
			default:
			}
			if ticker.TryFire() {
				r.ep.Clock().Tick()
				continue
			}
			task.Await(ctx)
			continue
		}
		select {
		case <-ctx.Done():
			return model.NewProcessSet(), ctx.Err()
		case <-r.ep.Context().Done():
			return model.NewProcessSet(), r.ep.Context().Err()
		case <-r.stop:
			return model.NewProcessSet(), context.Canceled
		case <-p.updated:
		case <-ticker.C:
			// Nop step: keeps the logical clock (and with it Σ's suspicion
			// horizon) moving while acknowledgements are outstanding.
			r.ep.Clock().Tick()
		}
	}
}

// queryPhase broadcasts a get request and waits for a quorum of replies,
// returning the freshest timestamp/value seen and the acknowledging set.
func (r *Register[V]) queryPhase(ctx context.Context) (Timestamp, V, model.ProcessSet, error) {
	id, p := r.newPending()
	defer r.dropPending(id)
	r.metrics.Inc("phases.query")
	r.ep.Broadcast(r.instance, msgGet, getReq{Op: id})
	acked, err := r.await(ctx, p)
	if err != nil {
		var zero V
		return Timestamp{}, zero, acked, err
	}
	r.mu.Lock()
	ts, val := p.bestTs, p.bestVal
	r.mu.Unlock()
	return ts, val, acked, nil
}

// storePhase broadcasts a set request and waits for a quorum of
// acknowledgements, returning the acknowledging set.
func (r *Register[V]) storePhase(ctx context.Context, ts Timestamp, val V) (model.ProcessSet, error) {
	id, p := r.newPending()
	defer r.dropPending(id)
	r.metrics.Inc("phases.store")
	r.ep.Broadcast(r.instance, msgSet, setReq[V]{Op: id, Ts: ts, Val: val})
	return r.await(ctx, p)
}

// Read performs an atomic read: it returns the freshest value covered by a
// quorum and writes it back to a quorum before returning, so that any later
// read observes a value at least as fresh.
func (r *Register[V]) Read(ctx context.Context) (V, error) {
	r.metrics.Inc("ops.read")
	ctx, release := net.AdoptTask(ctx, r.ep, "register.read")
	defer release()
	ts, val, _, err := r.queryPhase(ctx)
	if err != nil {
		var zero V
		return zero, fmt.Errorf("register read (query phase): %w", err)
	}
	if ts.Seq < 0 {
		// No replica had a value yet; normalise to the initial timestamp.
		ts = Timestamp{Seq: 0, Writer: -1}
		var zero V
		val = zero
	}
	if _, err := r.storePhase(ctx, ts, val); err != nil {
		var zero V
		return zero, fmt.Errorf("register read (write-back phase): %w", err)
	}
	return val, nil
}

// Write performs an atomic write of val.
func (r *Register[V]) Write(ctx context.Context, val V) error {
	_, err := r.WriteTracked(ctx, val)
	return err
}

// Run performs one write of input (which must have the register's value type)
// followed by one read, returning the read value. It makes Register satisfy
// the scenario harness's common participant interface; note the harness's
// built-in Registers descriptor wraps the same two calls with per-operation
// timing records instead, which the linearizability checker needs and this
// generic entry point cannot provide.
func (r *Register[V]) Run(ctx context.Context, input any) (any, error) {
	val, ok := input.(V)
	if !ok {
		var zero V
		return nil, fmt.Errorf("register run: input has type %T, want %T", input, zero)
	}
	if err := r.Write(ctx, val); err != nil {
		return nil, err
	}
	return r.Read(ctx)
}

// WriteTracked performs an atomic write and returns the set of processes that
// acknowledged its store phase — the executable analogue of the participant
// set Pi(k) of Figure 1. The set always contains at least one correct process
// (a quorum acknowledged the value; if every acknowledger were faulty, a
// later read served entirely by other processes could miss the value, which
// the quorum intersection property forbids).
func (r *Register[V]) WriteTracked(ctx context.Context, val V) (model.ProcessSet, error) {
	r.metrics.Inc("ops.write")
	ctx, release := net.AdoptTask(ctx, r.ep, "register.write")
	defer release()
	ts, _, queryAcks, err := r.queryPhase(ctx)
	if err != nil {
		return model.NewProcessSet(), fmt.Errorf("register write (query phase): %w", err)
	}
	next := Timestamp{Seq: ts.Seq + 1, Writer: r.ep.ID()}
	storeAcks, err := r.storePhase(ctx, next, val)
	if err != nil {
		return model.NewProcessSet(), fmt.Errorf("register write (store phase): %w", err)
	}
	return queryAcks.Union(storeAcks), nil
}
