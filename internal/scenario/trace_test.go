package scenario

import (
	"context"
	"testing"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

// traceFamily lists one representative point per protocol family. Unlike
// determinismFamily (which pins the outcome fingerprint and therefore needs
// schedule-independent winners), the trace contract pins the entire grant and
// delivery schedule, so any seeded step-mode configuration qualifies — the
// assertion is byte-equality of Result.TraceFingerprint across repeated runs,
// the tentpole guarantee of the step scheduler.
func traceFamily() []struct {
	name  string
	s     *Scenario
	proto Protocol
} {
	return []struct {
		name  string
		s     *Scenario
		proto Protocol
	}{
		{"consensus", New(5, WithSeed(101), WithDelays(time.Millisecond, 10*time.Millisecond)), Consensus{}},
		{"qc", New(4, WithSeed(102)), QC{}},
		{"nbac", New(4, WithSeed(103)), NBAC{}},
		{"twopc", New(4, WithSeed(104)), TwoPC{}},
		{"nbacqc", New(4, WithSeed(105)), NBACQC{}},
		{"multiconsensus", New(4, WithSeed(106)), MultiConsensus{Rounds: 2}},
		{"registers", New(3, WithSeed(107)), Registers{Values: []int{7, 8, 9}}},
	}
}

// TestTraceDeterministic is the trace-determinism guarantee: repeated runs of
// an identical seeded configuration produce a non-empty, byte-identical
// TraceFingerprint (and identical shape counters) for every protocol family.
// CI exercises this under -race, where goroutine scheduling noise is maximal —
// exactly what the quiescence handshake must make invisible.
func TestTraceDeterministic(t *testing.T) {
	ctx := context.Background()
	rounds := 3
	if raceEnabled {
		rounds = 2
	}
	for _, tc := range traceFamily() {
		want := tc.s.Run(ctx, tc.proto)
		if !want.Verdict.OK {
			t.Fatalf("%s: verdict %v", tc.name, want.Verdict)
		}
		if want.TraceFingerprint == "" {
			t.Fatalf("%s: step-mode run produced no trace fingerprint", tc.name)
		}
		if want.TraceSummary.Events == 0 || want.TraceSummary.Grants == 0 {
			t.Fatalf("%s: implausible trace counters %+v", tc.name, want.TraceSummary)
		}
		for round := 1; round < rounds; round++ {
			got := tc.s.Run(ctx, tc.proto)
			if got.TraceFingerprint != want.TraceFingerprint {
				t.Fatalf("%s: trace fingerprint diverged on round %d\nfirst: %s %+v\nround: %s %+v",
					tc.name, round, want.TraceFingerprint, want.TraceSummary, got.TraceFingerprint, got.TraceSummary)
			}
			if got.TraceSummary != want.TraceSummary {
				t.Fatalf("%s: trace counters diverged on round %d: %+v vs %+v",
					tc.name, round, want.TraceSummary, got.TraceSummary)
			}
			if got.Fingerprint() != want.Fingerprint() {
				t.Fatalf("%s: outcome fingerprint diverged on round %d", tc.name, round)
			}
		}
	}
}

// TestTraceDeterministicCrashAtDecisionMoment injects a crash at the exact
// virtual instant a crash-free run of the same seed finishes deciding — the
// tightest race between a crash event and the decision deliveries it competes
// with. Under the free-running dispatcher this race was resolved by goroutine
// scheduling; under the step scheduler the crash is an ordinary
// (time, seq)-ordered event against a deterministic grant schedule, so the
// full trace must replay byte-identically, whichever way the tie resolves.
func TestTraceDeterministicCrashAtDecisionMoment(t *testing.T) {
	ctx := context.Background()
	base := New(5, WithSeed(108), WithDelays(time.Millisecond, 5*time.Millisecond))
	ref := base.Run(ctx, Consensus{})
	if !ref.Verdict.OK {
		t.Fatalf("crash-free reference failed: %v", ref.Verdict)
	}
	decision := ref.VirtualEnd
	for _, tc := range []struct {
		name string
		p    model.ProcessID
		at   time.Duration
	}{
		{"leader-at-decision", 0, decision},
		{"follower-at-decision", 4, decision},
		{"leader-mid-run", 0, decision / 2},
	} {
		s := New(5, WithSeed(108), WithDelays(time.Millisecond, 5*time.Millisecond), WithCrash(tc.p, tc.at))
		want := s.Run(ctx, Consensus{})
		if want.TraceFingerprint == "" {
			t.Fatalf("%s: no trace fingerprint", tc.name)
		}
		got := s.Run(ctx, Consensus{})
		if got.TraceFingerprint != want.TraceFingerprint {
			t.Fatalf("%s: trace diverged across runs\nfirst: %s %+v\nagain: %s %+v",
				tc.name, want.TraceFingerprint, want.TraceSummary, got.TraceFingerprint, got.TraceSummary)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("%s: outcome fingerprint diverged", tc.name)
		}
	}
}

// TestFreeRunningAblation pins the two sides of the determinism contract: the
// free-running ablation keeps the outcome fingerprint of the step-mode run
// (outcome determinism never depended on the scheduler for this family) but
// forfeits the trace — empty fingerprint, zero counters.
func TestFreeRunningAblation(t *testing.T) {
	ctx := context.Background()
	step := New(5, WithSeed(109)).Run(ctx, Consensus{})
	free := New(5, WithSeed(109), WithFreeRunning()).Run(ctx, Consensus{})
	if !step.Verdict.OK || !free.Verdict.OK {
		t.Fatalf("verdicts: step %v, free-running %v", step.Verdict, free.Verdict)
	}
	if step.TraceFingerprint == "" {
		t.Fatal("step-mode run produced no trace fingerprint")
	}
	if free.TraceFingerprint != "" || free.TraceSummary != (net.TraceStats{}) {
		t.Fatalf("free-running run reported a trace: %q %+v", free.TraceFingerprint, free.TraceSummary)
	}
	if free.Fingerprint() != step.Fingerprint() {
		t.Fatalf("outcome fingerprint differs across modes\nstep: %s\nfree: %s",
			step.Fingerprint(), free.Fingerprint())
	}
}

// TestMinimizeTrace: trace-mode minimisation holds the reference schedule
// fixed. A crash scheduled far beyond the trace's end never pops before the
// group exits, so its time shrinks (the minimiser rounds it down as long as it
// stays schedule-invisible) while everything the schedule consults is pinned;
// the minimal configuration must reproduce the reference trace byte-for-byte.
func TestMinimizeTrace(t *testing.T) {
	ctx := context.Background()
	base := New(4, WithSeed(110))
	ref := base.Run(ctx, Consensus{})
	if !ref.Verdict.OK || ref.TraceFingerprint == "" {
		t.Fatalf("reference: verdict %v, trace %q", ref.Verdict, ref.TraceFingerprint)
	}
	lateAt := 4 * ref.VirtualEnd
	cfg := New(4, WithSeed(110), WithCrash(3, lateAt)).Config()
	mr, err := MinimizeTrace(ctx, cfg, Consensus{})
	if err != nil {
		t.Fatalf("MinimizeTrace: %v", err)
	}
	if mr.TraceFingerprint == "" {
		t.Fatal("minimal reproducer lost the trace fingerprint")
	}
	if mr.Candidates < 2 {
		t.Fatalf("minimisation ran only %d candidate(s)", mr.Candidates)
	}
	// The reference configuration (with the late crash) must itself share the
	// minimal run's trace: trace equality is the acceptance predicate.
	if got := FromConfig(cfg).Run(ctx, Consensus{}); got.TraceFingerprint != mr.TraceFingerprint {
		t.Fatalf("minimal trace %s does not match reference config's %s", mr.TraceFingerprint, got.TraceFingerprint)
	}
	// And re-running the minimal config reproduces it.
	if got := FromConfig(mr.Config).Run(ctx, Consensus{}); got.TraceFingerprint != mr.TraceFingerprint {
		t.Fatalf("minimal config does not reproduce its own trace: %s vs %s", got.TraceFingerprint, mr.TraceFingerprint)
	}
	// The schedule-invisible crash time shrank.
	for _, c := range mr.Config.Crashes {
		if c.At >= lateAt {
			t.Errorf("schedule-invisible crash time did not shrink: %v (was %v)", c.At, lateAt)
		}
	}
}

// TestMinimizeTraceRequiresStepMode: the ablation has no trace to hold fixed,
// so trace-mode minimisation must refuse it rather than accept everything.
func TestMinimizeTraceRequiresStepMode(t *testing.T) {
	cfg := New(4, WithSeed(111), WithFreeRunning()).Config()
	if _, err := MinimizeTrace(context.Background(), cfg, Consensus{}); err == nil {
		t.Fatal("MinimizeTrace accepted a free-running configuration")
	}
}
