package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"weakestfd/internal/journal"
	"weakestfd/internal/net"
)

// countingRecorder is a trivial Config.Recorder observer.
type countingRecorder struct{ n int }

func (c *countingRecorder) Record(net.TraceRecord) { c.n++ }

// TestJournaledRunByteStable pins the journal's place on the determinism
// contract: capture is observe-only (the journaled run keeps the
// fingerprint of its unjournaled twin), journal bytes are a pure function
// of (seed, config), the journal verifies against the live fingerprint, and
// its meta mirrors the run's trace counters.
func TestJournaledRunByteStable(t *testing.T) {
	ctx := context.Background()
	plain := New(5, WithSeed(120), WithDelays(time.Millisecond, 10*time.Millisecond)).Run(ctx, Consensus{})
	if !plain.Verdict.OK || plain.TraceFingerprint == "" {
		t.Fatalf("plain run: verdict %v, trace %q", plain.Verdict, plain.TraceFingerprint)
	}

	s := New(5, WithSeed(120), WithDelays(time.Millisecond, 10*time.Millisecond), WithJournal(JournalAll))
	res := s.Run(ctx, Consensus{})
	if !res.Verdict.OK || res.Journal == nil {
		t.Fatalf("journaled run: verdict %v, journal %v", res.Verdict, res.Journal)
	}
	if res.TraceFingerprint != plain.TraceFingerprint {
		t.Fatalf("journaling perturbed the trace: %s vs %s", res.TraceFingerprint, plain.TraceFingerprint)
	}
	j := res.Journal
	if j.Meta.Mode != journal.ModeFull || !j.Complete() {
		t.Fatalf("full-mode journal: mode %q, complete %v", j.Meta.Mode, j.Complete())
	}
	if j.Meta.Protocol != res.Protocol || j.Meta.TraceFingerprint != res.TraceFingerprint {
		t.Fatalf("journal meta provenance: %+v", j.Meta)
	}
	st := res.TraceSummary
	if j.Meta.Events != st.Events || j.Meta.Messages != st.Messages || j.Meta.Timers != st.Timers ||
		j.Meta.Crashes != st.Crashes || j.Meta.Grants != st.Grants {
		t.Fatalf("journal meta counters %+v do not mirror trace summary %+v", j.Meta, st)
	}
	if err := j.Verify(); err != nil {
		t.Fatalf("journal failed verification against the live fingerprint: %v", err)
	}

	first, err := j.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	again := s.Run(ctx, Consensus{})
	second, err := again.Journal.Encode()
	if err != nil {
		t.Fatalf("encode second run: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("two identically-configured runs journaled different bytes")
	}
}

// TestJournalRingSuffix: a small ring wraps on a real run and the resulting
// suffix journal refuses verification and replay as a suffix — not by
// diverging at record 0.
func TestJournalRingSuffix(t *testing.T) {
	res := New(5, WithSeed(121), WithJournal(16)).Run(context.Background(), Consensus{})
	if !res.Verdict.OK || res.Journal == nil {
		t.Fatalf("verdict %v, journal %v", res.Verdict, res.Journal)
	}
	j := res.Journal
	if j.Meta.Mode != journal.ModeRing || len(j.Records) != 16 {
		t.Fatalf("ring journal: mode %q, %d records", j.Meta.Mode, len(j.Records))
	}
	if j.Meta.FirstIndex != j.Meta.TotalRecords-16 || j.Complete() {
		t.Fatalf("ring journal indices: %+v", j.Meta)
	}
	if err := j.Replayable(); err == nil || !strings.Contains(err.Error(), "journal is a suffix") {
		t.Fatalf("suffix replay refusal: %v", err)
	}
	if _, err := Replay(context.Background(), Consensus{}, j); err == nil || !strings.Contains(err.Error(), "journal is a suffix") {
		t.Fatalf("Replay accepted a suffix journal: %v", err)
	}
}

// TestReplayRoundTrip: a journaled run replays against its own journal with
// every record matching, through an encode/decode cycle — exactly what
// cmd/replay does with the on-disk file.
func TestReplayRoundTrip(t *testing.T) {
	ctx := context.Background()
	res := New(5, WithSeed(122), WithCrash(0, 5*time.Millisecond), WithJournal(JournalAll)).Run(ctx, Consensus{})
	if res.Journal == nil {
		t.Fatalf("no journal: verdict %v", res.Verdict)
	}
	data, err := res.Journal.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	j, err := journal.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	rr, err := Replay(ctx, Consensus{}, j)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rr.OK() || rr.Matched != len(j.Records) {
		t.Fatalf("replay diverged: %+v (matched %d of %d)", rr.Divergence, rr.Matched, len(j.Records))
	}
	if rr.Result.TraceFingerprint != j.Meta.TraceFingerprint {
		t.Fatalf("replayed fingerprint %s differs from journal's %s", rr.Result.TraceFingerprint, j.Meta.TraceFingerprint)
	}
}

// TestReplayDivergesOnMutation mutates one journal record at the head,
// middle and tail of the stream; replay must stop at exactly that index.
func TestReplayDivergesOnMutation(t *testing.T) {
	ctx := context.Background()
	res := New(4, WithSeed(123), WithJournal(JournalAll)).Run(ctx, Consensus{})
	if res.Journal == nil {
		t.Fatalf("no journal: verdict %v", res.Verdict)
	}
	ref := res.Journal
	for _, at := range []int{0, len(ref.Records) / 2, len(ref.Records) - 1} {
		data, err := ref.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		j, err := journal.Decode(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Bump a field the record actually carries, whatever its shape.
		r := &j.Records[at]
		if r.Op == "E" {
			r.Seq += 97
		} else {
			r.Task += 97
		}
		rr, err := Replay(ctx, Consensus{}, j)
		if err != nil {
			t.Fatalf("mutation at %d: replay error: %v", at, err)
		}
		if rr.OK() || rr.Divergence.Index != at {
			t.Fatalf("mutation at %d: divergence %+v", at, rr.Divergence)
		}
		if rep := rr.Divergence.Report(j, 4); !strings.Contains(rep, ">>>") {
			t.Fatalf("mutation at %d: report has no context marker:\n%s", at, rep)
		}
	}
}

// TestReplayRefusesProtocolMismatch: a journal replays only under the
// protocol it recorded.
func TestReplayRefusesProtocolMismatch(t *testing.T) {
	ctx := context.Background()
	res := New(4, WithSeed(124), WithJournal(JournalAll)).Run(ctx, QC{})
	if res.Journal == nil {
		t.Fatalf("no journal: verdict %v", res.Verdict)
	}
	if _, err := Replay(ctx, Consensus{}, res.Journal); err == nil || !strings.Contains(err.Error(), "journal records protocol") {
		t.Fatalf("protocol mismatch not refused: %v", err)
	}
}

// TestJournalFreeRunningRefused: the ablation has no step trace; asking it
// to journal (or to check a replay) fails the run with a verdict naming the
// conflict rather than producing an empty journal.
func TestJournalFreeRunningRefused(t *testing.T) {
	res := New(4, WithSeed(125), WithFreeRunning(), WithJournal(JournalAll)).Run(context.Background(), Consensus{})
	if res.Verdict.OK || res.Journal != nil {
		t.Fatalf("free-running journaled run: verdict %v, journal %v", res.Verdict, res.Journal)
	}
	if msg := strings.Join(res.Verdict.Violations, "; "); !strings.Contains(msg, "free-running") {
		t.Fatalf("refusal does not name the ablation: %v", res.Verdict)
	}
}

// TestTaintedJournalCarriesReason forces a wall-clock escape (total message
// loss under a tight timeout: consensus can never decide, so the runners are
// parked when the backstop fires) and pins the taint surface end to end: the
// run forfeits its fingerprint but names the escape, the journal records the
// reason in its meta, and replay refuses the journal with that reason.
func TestTaintedJournalCarriesReason(t *testing.T) {
	res := New(3, WithSeed(126), WithDropRate(1), WithSafetyOnly(),
		WithTimeout(200*time.Millisecond), WithJournal(JournalAll)).Run(context.Background(), Consensus{})
	if res.TraceFingerprint != "" {
		t.Fatalf("tainted run kept a fingerprint %s", res.TraceFingerprint)
	}
	if res.TraceSummary.TaintReason == "" {
		t.Fatalf("tainted run carries no reason: %+v", res.TraceSummary)
	}
	j := res.Journal
	if j == nil {
		t.Fatal("tainted run produced no journal (the capture should survive for inspection)")
	}
	if j.Meta.TaintReason != res.TraceSummary.TaintReason || j.Meta.TraceFingerprint != "" {
		t.Fatalf("journal meta does not mirror the taint: %+v", j.Meta)
	}
	if err := j.Replayable(); err == nil || !strings.Contains(err.Error(), "tainted") {
		t.Fatalf("tainted journal replay refusal: %v", err)
	}
	if _, err := Replay(context.Background(), Consensus{}, j); err == nil || !strings.Contains(err.Error(), "tainted") {
		t.Fatalf("Replay accepted a tainted journal: %v", err)
	}
}

// TestJournalTeesToConfigRecorder: Config.Recorder observes the same stream
// the journal captures when both are set.
func TestJournalTeesToConfigRecorder(t *testing.T) {
	var cr countingRecorder
	cfg := New(4, WithSeed(127), WithJournal(JournalAll)).Config()
	cfg.Recorder = &cr
	res := FromConfig(cfg).Run(context.Background(), Consensus{})
	if res.Journal == nil {
		t.Fatalf("no journal: verdict %v", res.Verdict)
	}
	if cr.n != res.Journal.Meta.TotalRecords || cr.n == 0 {
		t.Fatalf("observer saw %d records, journal captured %d", cr.n, res.Journal.Meta.TotalRecords)
	}
}

// TestMinimizeTraceJournaled: with journaling on, trace minimisation also
// accepts candidates whose full schedule is an exact prefix of the
// reference's — and the equality case still holds byte-for-byte.
func TestMinimizeTraceJournaled(t *testing.T) {
	ctx := context.Background()
	ref := New(4, WithSeed(128), WithJournal(JournalAll)).Run(ctx, Consensus{})
	if !ref.Verdict.OK || ref.Journal == nil {
		t.Fatalf("reference: verdict %v", ref.Verdict)
	}
	cfg := New(4, WithSeed(128), WithCrash(3, 4*ref.VirtualEnd), WithJournal(JournalAll)).Config()
	mr, err := MinimizeTrace(ctx, cfg, Consensus{})
	if err != nil {
		t.Fatalf("MinimizeTrace: %v", err)
	}
	got := FromConfig(mr.Config).Run(ctx, Consensus{})
	if got.TraceFingerprint != mr.TraceFingerprint {
		t.Fatalf("minimal config does not reproduce its trace: %s vs %s", got.TraceFingerprint, mr.TraceFingerprint)
	}
	// The minimal run's schedule must relate to the reference schedule by the
	// acceptance relation: equal, or a strict prefix.
	refJ := FromConfig(cfg).Run(ctx, Consensus{}).Journal
	if got.Journal == nil || refJ == nil {
		t.Fatal("journaling was dropped during minimisation")
	}
	if got.TraceFingerprint != refJ.Meta.TraceFingerprint && !journal.IsPrefix(refJ, got.Journal) {
		t.Fatal("minimal schedule is neither equal to nor a prefix of the reference schedule")
	}
}
