package scenario

import (
	"context"
	"strings"
	"testing"
	"time"

	"weakestfd/internal/fd"
)

// TestSuspectHistoryRecordedWithRingCap: a suspect-class run records the
// samples its derived detectors actually took, bounded by the configured
// ring cap, and surfaces the depth in the Result. The oracle family has no
// suspect view, so its depth stays zero.
func TestSuspectHistoryRecordedWithRingCap(t *testing.T) {
	ctx := context.Background()

	res := New(4, WithDetector(fd.MustParseSpec("eventually-perfect{stabilize:40}"))).Run(ctx, Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("◇P consensus failed: %v", res.Verdict)
	}
	if res.HistoryDepth == 0 {
		t.Fatalf("suspect-class run recorded no history")
	}
	if res.HistoryDepth > DefaultHistoryLimit {
		t.Fatalf("history depth %d exceeds the default ring cap %d", res.HistoryDepth, DefaultHistoryLimit)
	}

	// A tiny cap still records (and reports what it dropped): every process
	// samples Ω and Σ at least once, so a cap of 3 at n=4 must overflow.
	res = New(4,
		WithDetector(fd.DetectorSpec{Class: fd.ClassPerfect}),
		WithHistoryLimit(3),
	).Run(ctx, Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("P consensus failed: %v", res.Verdict)
	}
	if res.HistoryDepth != 3 {
		t.Fatalf("capped history depth = %d, want exactly the cap 3", res.HistoryDepth)
	}
	if res.HistoryDropped == 0 {
		t.Fatalf("a consensus run takes more than 3 samples; Dropped = 0")
	}

	// Disabled recording, and the oracle family (no suspect view), stay 0.
	res = New(4, WithDetector(fd.DetectorSpec{Class: fd.ClassPerfect}), WithHistoryLimit(0)).Run(ctx, Consensus{})
	if res.HistoryDepth != 0 || res.HistoryDropped != 0 {
		t.Fatalf("disabled recording still measured depth %d (dropped %d)", res.HistoryDepth, res.HistoryDropped)
	}
	res = New(4).Run(ctx, Consensus{})
	if !res.Verdict.OK || res.HistoryDepth != 0 {
		t.Fatalf("oracle family: verdict %v, depth %d", res.Verdict, res.HistoryDepth)
	}
}

// TestConfigCloneIsDeep: mutating a clone's crash schedule leaves the
// original untouched — the contract exploration mutators rely on.
func TestConfigCloneIsDeep(t *testing.T) {
	orig := New(3, WithCrash(1, time.Millisecond)).Config()
	mut := orig.Clone()
	mut.Crashes[0].P = 2
	mut.Crashes = append(mut.Crashes, Crash{P: 0, At: 0})
	mut.Seed = 99
	if orig.Crashes[0].P != 1 || len(orig.Crashes) != 1 || orig.Seed == 99 {
		t.Fatalf("clone aliases the original: %+v", orig)
	}
}

// TestConfigKeyIdentity: Key distinguishes every behaviour-determining
// dimension (including seed and crash order) and is stable for clones.
func TestConfigKeyIdentity(t *testing.T) {
	base := New(3, WithCrash(1, time.Millisecond), WithCrash(2, time.Millisecond)).Config()
	if base.Key() != base.Clone().Key() {
		t.Fatalf("clone changed the key")
	}
	perturb := []func(*Config){
		func(c *Config) { c.Seed++ },
		func(c *Config) { c.MaxDelay += time.Millisecond },
		func(c *Config) { c.DropRate = 0.5 },
		func(c *Config) { c.Detector.Class = fd.ClassPerfect },
		func(c *Config) { c.Detector.StabilizeAfter = 7 },
		func(c *Config) { c.Crashes[0].At = 0 },
		func(c *Config) { c.Crashes[0], c.Crashes[1] = c.Crashes[1], c.Crashes[0] },
		func(c *Config) { c.RequireTermination = false },
	}
	seen := map[string]int{base.Key(): -1}
	for i, p := range perturb {
		cfg := base.Clone()
		p(&cfg)
		key := cfg.Key()
		if j, dup := seen[key]; dup {
			t.Fatalf("perturbation %d collides with %d: %q", i, j, key)
		}
		seen[key] = i
	}
}

// TestConsensusUnderHeartbeatClass: the message-passing detector class
// solves consensus on the same scenarios the oracles do — crash-free and
// with a crashed initial leader — while the QC stack honestly refuses it
// (no message-passing Ψ).
func TestConsensusUnderHeartbeatClass(t *testing.T) {
	ctx := context.Background()
	spec := fd.MustParseSpec("heartbeat{interval:500,timeout:4000}")

	res := New(4, WithDetector(spec)).Run(ctx, Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("crash-free heartbeat consensus failed: %v", res.Verdict)
	}
	if !strings.Contains(res.Fingerprint(), "det=heartbeat{interval:500,timeout:4000}") {
		t.Fatalf("fingerprint lacks the heartbeat spec:\n%s", res.Fingerprint())
	}

	res = New(4, WithDetector(spec), WithCrash(0, 0), WithTimeout(10*time.Second)).Run(ctx, Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("heartbeat consensus with crashed leader failed: %v", res.Verdict)
	}

	res = New(4, WithDetector(spec)).Run(ctx, QC{})
	if res.Verdict.OK || !strings.Contains(strings.Join(res.Verdict.Violations, " "), "provides no") {
		t.Fatalf("QC under heartbeat: %v, want a setup refusal naming the missing Ψ", res.Verdict)
	}
}

// TestSweepHeartbeatAgainstOracleAxis is the PR 4 follow-up made real: one
// sweep comparing the implemented detectors against the oracle family on the
// same grid. Both classes must solve every point of a crash-free grid.
func TestSweepHeartbeatAgainstOracleAxis(t *testing.T) {
	grid := Grid{
		Seeds: []int64{71, 72, 73},
		Detectors: []fd.DetectorSpec{
			{Class: fd.ClassOmegaSigma},
			fd.MustParseSpec("heartbeat{interval:500,timeout:4000}"),
		},
	}
	res := Sweep(context.Background(), New(4), grid, Consensus{})
	if !res.AllPassed() {
		t.Fatalf("oracle-vs-heartbeat sweep failed: %d of %d, first: %v", res.Faulted, res.Runs, firstViolation(res))
	}
	for _, d := range res.Detectors {
		if d.Passed != d.Runs {
			t.Fatalf("detector %q passed %d of %d", d.Spec, d.Passed, d.Runs)
		}
	}
}
