package scenario

import (
	"context"
	"testing"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/nbac"
	"weakestfd/internal/qc"
)

func TestScenarioTwoPC(t *testing.T) {
	// Crash-free, all-Yes: the blocking baseline commits everywhere.
	res := New(4, WithSeed(21)).Run(context.Background(), TwoPC{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if o.Value != nbac.Commit {
			t.Fatalf("%v decided %v, want Commit", o.Process, o.Value)
		}
	}

	// One No vote: abort everywhere.
	res = New(4, WithSeed(22)).Run(context.Background(),
		TwoPC{Votes: []nbac.Vote{nbac.VoteYes, nbac.VoteNo, nbac.VoteYes, nbac.VoteYes}})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if o.Value != nbac.Abort {
			t.Fatalf("%v decided %v, want Abort", o.Process, o.Value)
		}
	}
}

func TestScenarioTwoPCBlocksOnCoordinatorCrash(t *testing.T) {
	// The baseline's defining defect: the coordinator crashes before
	// deciding and every survivor blocks until the wall-clock backstop.
	// Safety still holds (nobody decides), which is all the safety-only
	// check demands.
	res := New(3,
		WithSeed(23),
		WithCrash(0, 0),
		WithSafetyOnly(),
		WithTimeout(300*time.Millisecond),
	).Run(context.Background(), TwoPC{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if o.Returned {
			t.Fatalf("%v decided %v under a crashed coordinator — 2PC should block", o.Process, o.Value)
		}
	}
}

func TestScenarioNBACQC(t *testing.T) {
	// Crash-free: Figure 5 decides the smallest proposal (process 0's 0).
	res := New(4, WithSeed(24)).Run(context.Background(), NBACQC{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		d, ok := o.Value.(qc.Decision)
		if !ok {
			t.Fatalf("%v returned %T, want qc.Decision", o.Process, o.Value)
		}
		if d.Quit || d.Value != 0 {
			t.Fatalf("%v decided %v, want value 0", o.Process, d)
		}
	}

	// A pre-run crash lets the inner NBAC abort, which Figure 5 maps to a
	// legitimate Quit; either regime must satisfy the QC spec.
	res = New(4, WithSeed(25), WithCrash(3, 0)).Run(context.Background(), NBACQC{})
	if !res.Verdict.OK {
		t.Fatalf("crash run verdict: %v", res.Verdict)
	}
}

func TestScenarioMultiConsensus(t *testing.T) {
	const rounds = 4
	res := New(5, WithSeed(26)).Run(context.Background(), MultiConsensus{Rounds: rounds})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		ds, ok := o.Value.([]RoundDecision)
		if !ok {
			t.Fatalf("%v returned %T, want []RoundDecision", o.Process, o.Value)
		}
		if len(ds) != rounds {
			t.Fatalf("%v completed %d rounds, want %d", o.Process, len(ds), rounds)
		}
		for r, d := range ds {
			if d.Round != r {
				t.Fatalf("%v round %d labelled %d", o.Process, r, d.Round)
			}
		}
	}
}

func TestScenarioMultiConsensusWithCrash(t *testing.T) {
	// A follower crash partway through the instance sequence: survivors
	// must still decide every round, and every decided round must satisfy
	// the consensus spec independently.
	res := New(5,
		WithSeed(27),
		WithCrash(4, 2*time.Millisecond),
		WithDelays(200*time.Microsecond, time.Millisecond),
	).Run(context.Background(), MultiConsensus{Rounds: 3})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

func TestScenarioSigmaExtraction(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto SigmaExtraction
	}{
		{"sigma-registers", SigmaExtraction{Rounds: 2}},
		{"majority-registers", SigmaExtraction{Majority: true, Rounds: 2}},
	} {
		res := New(3, WithSeed(28)).Run(context.Background(), tc.proto)
		if !res.Verdict.OK {
			t.Fatalf("%s: verdict: %v", tc.name, res.Verdict)
		}
		// A mid-run crash must not be reported as a violation: the eventual-
		// accuracy clause is not checkable at the fixed round cutoff (the
		// survivors' last quorums may legitimately still contain the crashed
		// process), so the descriptor checks intersection + termination only.
		crashy := New(3, WithSeed(28), WithCrash(2, 300*time.Microsecond)).Run(context.Background(), tc.proto)
		if !crashy.Verdict.OK {
			t.Fatalf("%s with crash: verdict: %v", tc.name, crashy.Verdict)
		}
		for _, o := range res.Outcomes {
			set, ok := o.Value.(model.ProcessSet)
			if !ok {
				t.Fatalf("%s: %v returned %T, want model.ProcessSet", tc.name, o.Process, o.Value)
			}
			if set.IsEmpty() {
				t.Fatalf("%s: %v emulated an empty quorum", tc.name, o.Process)
			}
		}
	}
}

// TestSweepSmokeNewProtocols puts every newly-descriptored workload through
// a small seed × delay grid — the same shape the CI smoke matrix uses for
// the original families. TwoPC sweeps crash-free (it is the blocking
// baseline); the rest also take a mid-run follower crash.
func TestSweepSmokeNewProtocols(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	delays := []DelayRange{
		{0, 200 * time.Microsecond},
		{500 * time.Microsecond, 2 * time.Millisecond},
	}
	crashFree := Grid{Seeds: seeds, Delays: delays}
	crashy := Grid{Seeds: seeds, Delays: delays, Crashes: [][]Crash{
		nil,
		{{P: 3, At: 300 * time.Microsecond}},
	}}
	cases := []struct {
		n     int
		grid  Grid
		proto Protocol
	}{
		{4, crashFree, TwoPC{}},
		{4, crashy, NBACQC{}},
		{4, crashy, MultiConsensus{Rounds: 2}},
		{3, crashFree, SigmaExtraction{Rounds: 2}},
	}
	for _, tc := range cases {
		res := Sweep(context.Background(), New(tc.n), tc.grid, tc.proto)
		if !res.AllPassed() {
			t.Fatalf("%s: %d of %d runs failed; first: %v",
				tc.proto.Name(), res.Faulted, res.Runs, firstViolation(res))
		}
	}
}
