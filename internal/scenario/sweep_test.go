package scenario

import (
	"context"
	"testing"
	"time"

	"weakestfd/internal/consensus"
	"weakestfd/internal/nbac"
)

// determinismFamily lists scenario × protocol points whose complete outcome
// (every process's returned value or error, plus the verdict) is a pure
// function of the configuration. Two constructions make that true even with
// crashes in the schedule:
//
//   - crashes only at virtual time 0, which the dispatcher executes before
//     any delivery, so the crashed process deterministically errors; and
//   - either a single stable leader (whose proposal deterministically wins)
//     or identical inputs at every process (so any winner yields the same
//     value).
//
// Logical tick counts are still scheduling-dependent, which is why
// Result.Fingerprint excludes timestamps; everything it does include must be
// byte-identical across repeated runs of these points.
func determinismFamily() []struct {
	name  string
	s     *Scenario
	proto Protocol
} {
	return []struct {
		name  string
		s     *Scenario
		proto Protocol
	}{
		{"consensus/no-crash", New(5, WithSeed(11)), Consensus{}},
		{"consensus/slow-links", New(5, WithSeed(12), WithDelays(time.Millisecond, 20*time.Millisecond)), Consensus{}},
		{"consensus/leader-crash-same-value", New(5, WithSeed(13), WithCrash(0, 0)),
			Consensus{Proposals: []any{42, 42, 42, 42, 42}}},
		{"consensus/follower-crash", New(5, WithSeed(14), WithCrash(4, 0)), Consensus{}},
		{"qc/no-crash", New(4, WithSeed(15)), QC{}},
		{"nbac/all-yes", New(4, WithSeed(16)), NBAC{}},
		{"nbac/one-no", New(4, WithSeed(17)),
			NBAC{Votes: []nbac.Vote{nbac.VoteYes, nbac.VoteNo, nbac.VoteYes, nbac.VoteYes}}},
		{"registers/same-value", New(3, WithSeed(18)), Registers{Values: []int{7, 7, 7}}},
	}
}

// TestSweepDeterministic is the sweep-determinism guarantee: an identical
// scenario seed produces a byte-identical outcome fingerprint across
// repeated runs (exercised under -race by CI, where the extra scheduling
// noise makes any hidden order dependence surface).
func TestSweepDeterministic(t *testing.T) {
	ctx := context.Background()
	rounds := 4
	if raceEnabled {
		rounds = 2
	}
	for _, tc := range determinismFamily() {
		want := tc.s.Run(ctx, tc.proto)
		if !want.Verdict.OK {
			t.Fatalf("%s: verdict %v", tc.name, want.Verdict)
		}
		wantFP := want.Fingerprint()
		for round := 1; round < rounds; round++ {
			got := tc.s.Run(ctx, tc.proto).Fingerprint()
			if got != wantFP {
				t.Fatalf("%s: fingerprint diverged on round %d\n--- first run ---\n%s\n--- round %d ---\n%s",
					tc.name, round, wantFP, round, got)
			}
		}
	}
}

// TestSweepResultDeterministic runs the same grid through Sweep twice (with
// parallel workers) and requires identical aggregates: worker scheduling
// must not leak into the result.
func TestSweepResultDeterministic(t *testing.T) {
	base := New(5, WithSeed(1))
	grid := Grid{
		Seeds:   []int64{21, 22, 23, 24, 25, 26},
		Delays:  []DelayRange{{0, 200 * time.Microsecond}, {time.Millisecond, 5 * time.Millisecond}},
		Crashes: [][]Crash{nil, {{P: 4, At: 0}}},
		Workers: 4,
	}
	a := Sweep(context.Background(), base, grid, Consensus{})
	b := Sweep(context.Background(), base, grid, Consensus{})
	if a.Runs != b.Runs || a.Passed != b.Passed || a.Faulted != b.Faulted {
		t.Fatalf("sweep aggregates diverged: %+v vs %+v", a, b)
	}
	if !a.AllPassed() {
		t.Fatalf("sweep failed: %d of %d, first: %v", a.Faulted, a.Runs, firstViolation(a))
	}
}

// TestSweepTenThousand is the acceptance bar of the scenario harness: a
// 10k-run sweep at n=5 with mid-run crashes and 1–50ms injected delays
// completes in under ~10s of wall clock with every verdict passing — the
// delays alone would cost days if anything waited them out. Under -race the
// grid shrinks 10× (the bar is calibrated for the plain build).
func TestSweepTenThousand(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-run sweep skipped in -short mode")
	}
	seeds := make([]int64, 625)
	if raceEnabled {
		seeds = seeds[:63]
	}
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	grid := Grid{
		Seeds: seeds,
		Delays: []DelayRange{
			{time.Millisecond, 10 * time.Millisecond},
			{5 * time.Millisecond, 20 * time.Millisecond},
			{10 * time.Millisecond, 50 * time.Millisecond},
			{time.Millisecond, 50 * time.Millisecond},
		},
		Crashes: [][]Crash{
			nil,
			{{P: 4, At: 5 * time.Millisecond}},
			{{P: 1, At: 2 * time.Millisecond}, {P: 3, At: 10 * time.Millisecond}},
			{{P: 0, At: 8 * time.Millisecond}}, // the initial leader, mid-ballot
		},
	}
	base := New(5)
	// Poll/backoff are virtual-time knobs: scale them with the injected
	// delays so waiting is event-driven rather than tick-churn.
	proto := Consensus{Options: []consensus.Option{
		consensus.WithPollInterval(10 * time.Millisecond),
		consensus.WithBackoff(20 * time.Millisecond),
	}}
	res := Sweep(context.Background(), base, grid, proto)
	if !res.AllPassed() {
		t.Fatalf("%d of %d runs failed; first: %v", res.Faulted, res.Runs, firstViolation(res))
	}
	t.Logf("%d runs in %v (%.0f runs/s)", res.Runs, res.Elapsed.Round(time.Millisecond), res.RunsPerSec)
	if !raceEnabled && res.Elapsed > 12*time.Second {
		t.Errorf("sweep took %v, want under ~10s", res.Elapsed)
	}
}
