package scenario

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"weakestfd/internal/consensus"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/nbac"
)

// determinismFamily lists scenario × protocol points whose complete outcome
// (every process's returned value or error, plus the verdict) is a pure
// function of the configuration. Two constructions make that true even with
// crashes in the schedule:
//
//   - crashes only at virtual time 0, which the dispatcher executes before
//     any delivery, so the crashed process deterministically errors; and
//   - either a single stable leader (whose proposal deterministically wins)
//     or identical inputs at every process (so any winner yields the same
//     value).
//
// Logical tick counts are still scheduling-dependent, which is why
// Result.Fingerprint excludes timestamps; everything it does include must be
// byte-identical across repeated runs of these points.
func determinismFamily() []struct {
	name  string
	s     *Scenario
	proto Protocol
} {
	return []struct {
		name  string
		s     *Scenario
		proto Protocol
	}{
		{"consensus/no-crash", New(5, WithSeed(11)), Consensus{}},
		{"consensus/slow-links", New(5, WithSeed(12), WithDelays(time.Millisecond, 20*time.Millisecond)), Consensus{}},
		{"consensus/leader-crash-same-value", New(5, WithSeed(13), WithCrash(0, 0)),
			Consensus{Proposals: []any{42, 42, 42, 42, 42}}},
		{"consensus/follower-crash", New(5, WithSeed(14), WithCrash(4, 0)), Consensus{}},
		{"qc/no-crash", New(4, WithSeed(15)), QC{}},
		{"nbac/all-yes", New(4, WithSeed(16)), NBAC{}},
		{"nbac/one-no", New(4, WithSeed(17)),
			NBAC{Votes: []nbac.Vote{nbac.VoteYes, nbac.VoteNo, nbac.VoteYes, nbac.VoteYes}}},
		{"registers/same-value", New(3, WithSeed(18)), Registers{Values: []int{7, 7, 7}}},
		// Multi-instance consensus: a stable leader decides every round, so
		// each round's winner is schedule-determined; RoundDecision renders
		// without its logical timestamp precisely so this entry holds.
		{"multiconsensus/no-crash", New(4, WithSeed(19)), MultiConsensus{Rounds: 3}},
		// The detector-spec axis: class P behaves like the exact oracle
		// family crash-free (stable leader p0), and the ◇ classes are made
		// schedule-determined by identical proposals — their chaotic prefix
		// elects whoever, but every winner carries the same value.
		{"consensus/perfect-class", New(5, WithSeed(20),
			WithDetector(fd.MustParseSpec("perfect{suspect:3}"))), Consensus{}},
		{"consensus/diamond-p-same-value", New(5, WithSeed(21),
			WithDetector(fd.MustParseSpec("eventually-perfect{stabilize:40}"))),
			Consensus{Proposals: []any{9, 9, 9, 9, 9}}},
		{"consensus/diamond-s-same-value", New(5, WithSeed(22),
			WithDetector(fd.MustParseSpec("eventually-strong{stabilize:40}"))),
			Consensus{Proposals: []any{9, 9, 9, 9, 9}}},
	}
}

// TestSweepDeterministic is the sweep-determinism guarantee: an identical
// scenario seed produces a byte-identical outcome fingerprint across
// repeated runs (exercised under -race by CI, where the extra scheduling
// noise makes any hidden order dependence surface).
func TestSweepDeterministic(t *testing.T) {
	ctx := context.Background()
	rounds := 4
	if raceEnabled {
		rounds = 2
	}
	for _, tc := range determinismFamily() {
		want := tc.s.Run(ctx, tc.proto)
		if !want.Verdict.OK {
			t.Fatalf("%s: verdict %v", tc.name, want.Verdict)
		}
		wantFP := want.Fingerprint()
		for round := 1; round < rounds; round++ {
			got := tc.s.Run(ctx, tc.proto).Fingerprint()
			if got != wantFP {
				t.Fatalf("%s: fingerprint diverged on round %d\n--- first run ---\n%s\n--- round %d ---\n%s",
					tc.name, round, wantFP, round, got)
			}
		}
	}
}

// TestSweepResultDeterministic runs the same grid through Sweep twice (with
// parallel workers) and requires identical aggregates: worker scheduling
// must not leak into the result.
func TestSweepResultDeterministic(t *testing.T) {
	base := New(5, WithSeed(1))
	grid := Grid{
		Seeds:   []int64{21, 22, 23, 24, 25, 26},
		Delays:  []DelayRange{{0, 200 * time.Microsecond}, {time.Millisecond, 5 * time.Millisecond}},
		Crashes: [][]Crash{nil, {{P: 4, At: 0}}},
		Workers: 4,
	}
	a := Sweep(context.Background(), base, grid, Consensus{})
	b := Sweep(context.Background(), base, grid, Consensus{})
	if a.Runs != b.Runs || a.Passed != b.Passed || a.Faulted != b.Faulted {
		t.Fatalf("sweep aggregates diverged: %+v vs %+v", a, b)
	}
	if !a.AllPassed() {
		t.Fatalf("sweep failed: %d of %d, first: %v", a.Faulted, a.Runs, firstViolation(a))
	}
}

// TestSweepTenThousand is the acceptance bar of the scenario harness: a
// 10k-run sweep at n=5 with mid-run crashes and 1–50ms injected delays
// completes in under ~10s of wall clock with every verdict passing — the
// delays alone would cost days if anything waited them out. Under -race the
// grid shrinks 10× (the bar is calibrated for the plain build).
func TestSweepTenThousand(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-run sweep skipped in -short mode")
	}
	seeds := make([]int64, 625)
	if raceEnabled {
		seeds = seeds[:63]
	}
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	grid := Grid{
		Seeds: seeds,
		Delays: []DelayRange{
			{time.Millisecond, 10 * time.Millisecond},
			{5 * time.Millisecond, 20 * time.Millisecond},
			{10 * time.Millisecond, 50 * time.Millisecond},
			{time.Millisecond, 50 * time.Millisecond},
		},
		Crashes: [][]Crash{
			nil,
			{{P: 4, At: 5 * time.Millisecond}},
			{{P: 1, At: 2 * time.Millisecond}, {P: 3, At: 10 * time.Millisecond}},
			{{P: 0, At: 8 * time.Millisecond}}, // the initial leader, mid-ballot
		},
	}
	base := New(5)
	// Poll/backoff are virtual-time knobs: scale them with the injected
	// delays so waiting is event-driven rather than tick-churn.
	proto := Consensus{Options: []consensus.Option{
		consensus.WithPollInterval(10 * time.Millisecond),
		consensus.WithBackoff(20 * time.Millisecond),
	}}
	res := Sweep(context.Background(), base, grid, proto)
	if !res.AllPassed() {
		t.Fatalf("%d of %d runs failed; first: %v", res.Faulted, res.Runs, firstViolation(res))
	}
	t.Logf("%d runs in %v (%.0f runs/s)", res.Runs, res.Elapsed.Round(time.Millisecond), res.RunsPerSec)
	if !raceEnabled && res.Elapsed > 12*time.Second {
		t.Errorf("sweep took %v, want under ~10s", res.Elapsed)
	}
}

// runnerFunc adapts a function to the Runner interface, for test protocols.
type runnerFunc func(ctx context.Context, input any) (any, error)

func (f runnerFunc) Run(ctx context.Context, input any) (any, error) { return f(ctx, input) }

// cancelProbeProto is a single-process test protocol for the sweep's
// cancellation semantics: runs whose seed is <= failFastBelow fail
// immediately (a genuine spec violation), every other run blocks until the
// sweep's context is cancelled (a ctx-induced non-failure).
type cancelProbeProto struct {
	failFastBelow int64
	started       chan struct{} // one tick per run that begins executing
}

func (p cancelProbeProto) Name() string { return "test/cancel-probe" }

func (p cancelProbeProto) Setup(cl *Cluster) (*Instance, error) {
	seed := cl.Config.Seed
	inst := &Instance{
		Runners: make([]Runner, cl.Config.N),
		Inputs:  make([]any, cl.Config.N),
		Check: func(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict {
			for _, o := range outs {
				if !o.Returned {
					return model.Fail("probe %v did not finish: %v", o.Process, o.Err)
				}
			}
			return model.Ok()
		},
	}
	inst.Runners[0] = runnerFunc(func(ctx context.Context, _ any) (any, error) {
		p.started <- struct{}{}
		if seed <= p.failFastBelow {
			return nil, fmt.Errorf("injected fast failure (seed %d)", seed)
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	return inst, nil
}

// TestSweepCancellationSemantics is the contract for a cancelled sweep:
// grid points cut short by ctx — whether never submitted, never started, or
// in flight when the cancellation hit — are Cancelled, not Faulted, and
// never pollute Failures; genuine pre-cancellation spec violations stay
// Faulted. The three buckets always sum to Runs.
func TestSweepCancellationSemantics(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	proto := cancelProbeProto{failFastBelow: 2, started: make(chan struct{}, len(seeds))}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var streamed []int
	var mu sync.Mutex
	grid := Grid{
		Seeds:   seeds,
		Workers: 2,
		OnRun: func(i int, _ *Result) {
			mu.Lock()
			streamed = append(streamed, i)
			mu.Unlock()
		},
	}
	resCh := make(chan SweepResult, 1)
	go func() { resCh <- Sweep(ctx, New(1), grid, proto) }()

	// Two fail-fast runs (seeds 1, 2) complete, two more start and block;
	// then the sweep is cancelled mid-flight.
	for i := 0; i < 4; i++ {
		<-proto.started
	}
	cancel()
	res := <-resCh

	if res.Runs != len(seeds) {
		t.Fatalf("Runs = %d, want %d", res.Runs, len(seeds))
	}
	if got := res.Passed + res.Faulted + res.Cancelled; got != res.Runs {
		t.Fatalf("Passed (%d) + Faulted (%d) + Cancelled (%d) = %d, want Runs = %d",
			res.Passed, res.Faulted, res.Cancelled, got, res.Runs)
	}
	if res.Passed != 0 || res.Faulted != 2 || res.Cancelled != 6 {
		t.Fatalf("classification = %d passed / %d faulted / %d cancelled, want 0/2/6",
			res.Passed, res.Faulted, res.Cancelled)
	}
	if len(res.Failures) != 2 {
		t.Fatalf("retained %d failures, want the 2 genuine ones", len(res.Failures))
	}
	for i, f := range res.Failures {
		if f.Config.Seed > 2 {
			t.Errorf("failure %d has seed %d: a ctx-induced run leaked into Failures (verdict: %v)",
				i, f.Config.Seed, f.Verdict)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(streamed) != 2 {
		t.Errorf("OnRun streamed %d runs, want only the 2 executed (cancelled runs are not reported)", len(streamed))
	}
}

// TestSweepShardsPartitionGrid is the sharding contract: shard k/m covers a
// contiguous slice of the row-major index space, the shards are pairwise
// disjoint, their union covers every grid index exactly once, and the
// shard-summed aggregates equal the unsharded sweep's.
func TestSweepShardsPartitionGrid(t *testing.T) {
	base := New(3)
	grid := Grid{
		Seeds:   []int64{31, 32, 33, 34, 35},
		Delays:  []DelayRange{{0, 200 * time.Microsecond}, {500 * time.Microsecond, 2 * time.Millisecond}},
		Crashes: [][]Crash{nil, {{P: 2, At: 300 * time.Microsecond}}},
	}
	size := grid.Size() // 5 × 2 × 2 = 20, not divisible by 3 shards
	full := Sweep(context.Background(), base, grid, Consensus{})
	if full.GridSize != size || full.IndexLo != 0 || full.IndexHi != size {
		t.Fatalf("unsharded sweep bounds = [%d, %d) of %d, want [0, %d)", full.IndexLo, full.IndexHi, full.GridSize, size)
	}

	const shards = 3
	covered := make([]int, size)
	var mu sync.Mutex
	var runs, passed, faulted int
	prevHi := 0
	for k := 1; k <= shards; k++ {
		g := grid
		g.Shard = Shard{Index: k, Count: shards}
		g.OnRun = func(i int, _ *Result) {
			mu.Lock()
			covered[i]++
			mu.Unlock()
		}
		r := Sweep(context.Background(), base, g, Consensus{})
		if r.GridSize != size || r.IndexLo != prevHi || r.IndexHi <= r.IndexLo {
			t.Fatalf("shard %d/%d covers [%d, %d) of %d, want contiguous from %d", k, shards, r.IndexLo, r.IndexHi, r.GridSize, prevHi)
		}
		if r.Runs != r.IndexHi-r.IndexLo {
			t.Fatalf("shard %d/%d: Runs = %d, want %d", k, shards, r.Runs, r.IndexHi-r.IndexLo)
		}
		prevHi = r.IndexHi
		runs += r.Runs
		passed += r.Passed
		faulted += r.Faulted
	}
	if prevHi != size {
		t.Fatalf("last shard ends at %d, want %d", prevHi, size)
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("grid index %d executed %d times across shards, want exactly once", i, c)
		}
	}
	if runs != full.Runs || passed != full.Passed || faulted != full.Faulted {
		t.Fatalf("shard-summed aggregates %d/%d/%d diverge from unsharded %d/%d/%d",
			runs, passed, faulted, full.Runs, full.Passed, full.Faulted)
	}
}

// TestSweepKeepAllCounts: the count-only mode needed at million-run scale —
// every failure is counted, none is retained.
func TestSweepKeepAllCounts(t *testing.T) {
	badBase := New(5,
		WithCrashes(Crash{2, 0}, Crash{3, 0}, Crash{4, 0}),
		WithTimeout(200*time.Millisecond),
	)
	res := Sweep(context.Background(), badBase, Grid{Seeds: []int64{1, 2}, KeepFailures: KeepAllCounts}, Consensus{Majority: true})
	if res.Faulted != 2 {
		t.Fatalf("Faulted = %d, want 2", res.Faulted)
	}
	if len(res.Failures) != 0 || len(res.FailureIndices) != 0 {
		t.Fatalf("KeepAllCounts retained %d failures, want none", len(res.Failures))
	}
}

// TestSweepSeedSpan: the unmaterialised seed range behaves exactly like the
// equivalent explicit seed list — same size, same row-major expansion, same
// ordering after explicit Seeds — while staying O(1) in memory.
func TestSweepSeedSpan(t *testing.T) {
	base := New(3)
	explicit := Grid{
		Seeds:   []int64{5, 6, 7, 8},
		Crashes: [][]Crash{nil, {{P: 2, At: 0}}},
	}
	span := Grid{
		SeedSpan: SeedSpan{From: 5, N: 4},
		Crashes:  [][]Crash{nil, {{P: 2, At: 0}}},
	}
	if span.Size() != explicit.Size() {
		t.Fatalf("span grid size %d != explicit %d", span.Size(), explicit.Size())
	}
	for i := 0; i < span.Size(); i++ {
		a, b := explicit.ConfigAt(base.Config(), i), span.ConfigAt(base.Config(), i)
		if a.Seed != b.Seed || len(a.Crashes) != len(b.Crashes) {
			t.Fatalf("index %d: span config (seed %d) != explicit (seed %d)", i, b.Seed, a.Seed)
		}
	}

	// Explicit seeds come first, the span follows.
	mixed := Grid{Seeds: []int64{100}, SeedSpan: SeedSpan{From: 200, N: 2}}
	if mixed.Size() != 3 {
		t.Fatalf("mixed seed axis size %d, want 3", mixed.Size())
	}
	for i, want := range []int64{100, 200, 201} {
		if got := mixed.ConfigAt(base.Config(), i).Seed; got != want {
			t.Fatalf("mixed index %d: seed %d, want %d", i, got, want)
		}
	}

	// A sharded sweep over a span-only grid still tiles it exactly.
	g := Grid{SeedSpan: SeedSpan{From: 1, N: 10}, Shard: Shard{Index: 2, Count: 3}}
	res := Sweep(context.Background(), base, g, Consensus{})
	if res.GridSize != 10 || res.IndexLo != 3 || res.IndexHi != 6 || !res.AllPassed() {
		t.Fatalf("span shard sweep = %+v", res)
	}
}

// TestGridFingerprint: the fingerprint identifies the work — base config and
// every grid axis — and nothing about how it is executed (shard, workers,
// retention), so shards of one grid agree on it and different grids do not.
func TestGridFingerprint(t *testing.T) {
	base := New(5, WithSeed(1)).Config()
	grid := Grid{
		Seeds:     []int64{1, 2, 3},
		SeedSpan:  SeedSpan{From: 10, N: 4},
		Detectors: []fd.DetectorSpec{{Class: fd.ClassOmegaSigma}, {Class: fd.ClassPerfect}},
		Delays:    []DelayRange{{Min: 1000, Max: 3000}},
		Crashes:   [][]Crash{nil, {{P: 3, At: 5 * time.Millisecond}}},
	}
	fp := grid.Fingerprint(base)
	if fp != grid.Fingerprint(base) {
		t.Fatal("fingerprint not stable across calls")
	}

	sharded := grid
	sharded.Shard = Shard{Index: 2, Count: 3}
	sharded.Workers = 7
	sharded.KeepFailures = KeepAllCounts
	if sharded.Fingerprint(base) != fp {
		t.Fatal("execution detail (shard/workers/keep) leaked into the fingerprint")
	}

	changed := grid
	changed.Seeds = []int64{1, 2, 4}
	if changed.Fingerprint(base) == fp {
		t.Fatal("seed axis change did not change the fingerprint")
	}
	otherBase := New(5, WithSeed(1), WithSafetyOnly()).Config()
	if grid.Fingerprint(otherBase) == fp {
		t.Fatal("base config change did not change the fingerprint")
	}
}
