package scenario

import (
	"context"
	"fmt"
	"time"

	"weakestfd/internal/extract"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
)

// SigmaExtraction runs the Figure 1 necessity construction of Theorem 1 as a
// sweepable workload: every process runs a SigmaExtractor over a bank of
// atomic registers (Σ-based by default, majority-based with Majority),
// repeatedly writing, reading and pinging until it has completed Rounds
// iterations, then returns its final emulated quorum. The combined Σ-output
// history of all processes is checked against the quorum-detector
// specification's perpetual clause — every pair of emulated quorums, across
// all processes and times, must intersect — plus, when the scenario requires
// termination, that every correct process reached its round target. The
// eventual-accuracy clause (quorums eventually contain only correct
// processes) is deliberately not checked: the run stops at a fixed round
// cutoff, and immediately after a crash the still-correct outputs may
// legitimately contain the crashed process for a while — evaluating an
// "eventually" at an arbitrary finite cutoff would report false violations
// on every crashy grid point.
//
// This puts the extraction construction on the same grid axis as the native
// protocols: seeds, delay distributions and crash schedules quantify over
// the schedules the paper's necessity proof ranges over.
type SigmaExtraction struct {
	// Majority builds the registers on plain majorities (the "Σ ex nihilo"
	// regime of majority-correct environments) instead of the Σ oracle.
	Majority bool
	// Rounds is how many extraction iterations each process completes
	// before reporting its quorum (default 2).
	Rounds int
	// Interval is the extractor's inter-round pause in virtual time
	// (default 200µs, matching the default delay range).
	Interval time.Duration
}

// Name implements Protocol.
func (s SigmaExtraction) Name() string {
	if s.Majority {
		return "extract/sigma-majority"
	}
	return "extract/sigma"
}

// Setup implements Protocol.
func (s SigmaExtraction) Setup(cl *Cluster) (*Instance, error) {
	n := cl.Net.N()
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	interval := s.Interval
	if interval <= 0 {
		interval = 200 * time.Microsecond
	}
	var g *extract.SigmaExtractionGroup
	if s.Majority {
		g = extract.NewSigmaExtractionGroupFromMajorityRegisters(cl.Net, cl.Instance, interval)
	} else {
		sigma, err := cl.NeedSigma()
		if err != nil {
			return nil, err
		}
		g = extract.NewSigmaExtractionGroupFromSigmaRegisters(cl.Net, cl.Instance, sigma, interval)
	}
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check: func(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict {
			v := model.CheckSigma(f, g.CombinedHistory(), model.SafetyOnlyCheckOptions())
			if requireTermination {
				for _, o := range outs {
					if f.Correct().Contains(o.Process) && !o.Returned {
						v = v.Merge(model.Fail("sigma extraction: correct process %v never reported a quorum: %v", o.Process, o.Err))
					}
				}
			}
			return v
		},
		Stop: g.Stop,
	}
	for i := 0; i < n; i++ {
		inst.Runners[i] = &sigmaExtractRunner{
			ex:     g.Extractors[i],
			ep:     cl.Net.Endpoint(model.ProcessID(i)),
			target: rounds,
			poll:   interval,
		}
		inst.Inputs[i] = rounds
	}
	return inst, nil
}

// sigmaExtractRunner is one process's scenario step: wait (on virtual time)
// until its extractor has completed the target number of Figure 1
// iterations, then report the emulated quorum. A crashed process's extractor
// aborts, so the runner errors out instead of spinning.
type sigmaExtractRunner struct {
	ex     *extract.SigmaExtractor
	ep     *net.Endpoint
	target int
	poll   time.Duration
}

// Run implements Runner.
func (r *sigmaExtractRunner) Run(ctx context.Context, _ any) (any, error) {
	for r.ex.Rounds() < r.target {
		if r.ep.Crashed() {
			return nil, fmt.Errorf("sigma extraction: process %v crashed after %d rounds", r.ep.ID(), r.ex.Rounds())
		}
		if err := r.ep.Sleep(ctx, r.poll); err != nil {
			return nil, fmt.Errorf("sigma extraction: %w", err)
		}
	}
	return r.ex.Sample(), nil
}
