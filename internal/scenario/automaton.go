package scenario

import (
	"context"
	"fmt"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/netrun"
	"weakestfd/internal/qc"
	"weakestfd/internal/sim"
)

// Automaton runs a step-model algorithm (sim.Automaton) over the network
// through the internal/netrun bridge — the same harness surface as the
// native protocol packages, so automata sweep across schedule grids exactly
// like them. Each process's detector value per step comes from the
// scenario's oracle family: (Ω, Σ) pairs by default, Ψ values with UsePsi.
type Automaton struct {
	// Algorithm is the automaton to execute at every process.
	Algorithm sim.Automaton
	// Label names the protocol in results (default: "automaton").
	Label string
	// UsePsi feeds Ψ values to each step instead of (Ω, Σ) pairs.
	UsePsi bool
	// QC checks the outputs against the quittable-consensus spec (outputs
	// must be sim.QCOutcome); the default checks plain consensus.
	QC bool
	// Inputs overrides the per-process inputs (default: process i gets i).
	Inputs []any
	// Poll is the λ-step pause; netrun's default applies when zero.
	Poll time.Duration
}

// Name implements Protocol.
func (a Automaton) Name() string {
	if a.Label != "" {
		return "automaton/" + a.Label
	}
	return "automaton"
}

// Setup implements Protocol.
func (a Automaton) Setup(cl *Cluster) (*Instance, error) {
	if a.Algorithm == nil {
		return nil, fmt.Errorf("automaton: no algorithm")
	}
	n := cl.Net.N()
	chk := checkConsensusOutcomes
	if a.QC {
		chk = checkAutomatonQCOutcomes
	}
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check:   chk,
	}
	var omega fd.OmegaSource
	var sigma fd.SigmaSource
	var psi fd.PsiSource
	var err error
	if a.UsePsi {
		if psi, err = cl.NeedPsi(); err != nil {
			return nil, err
		}
	} else {
		if omega, err = cl.NeedOmega(); err != nil {
			return nil, err
		}
		if sigma, err = cl.NeedSigma(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		p := model.ProcessID(i)
		var det netrun.Detector
		if a.UsePsi {
			det = func() any { return psi.At(p) }
		} else {
			det = func() any {
				return model.OmegaSigmaValue{
					Leader: omega.At(p),
					Quorum: sigma.At(p),
				}
			}
		}
		inst.Runners[i] = automatonRunner{r: &netrun.Runner{
			Endpoint:  cl.Net.Endpoint(p),
			Instance:  cl.Instance,
			Automaton: a.Algorithm,
			Detector:  det,
			Poll:      a.Poll,
		}}
		if i < len(a.Inputs) {
			inst.Inputs[i] = a.Inputs[i]
		} else {
			inst.Inputs[i] = i
		}
	}
	return inst, nil
}

// automatonRunner adapts netrun.Runner's wired-input form to the harness's
// per-run-input form.
type automatonRunner struct {
	r *netrun.Runner
}

// Run implements Runner.
func (a automatonRunner) Run(ctx context.Context, input any) (any, error) {
	return a.r.RunWith(ctx, input)
}

func checkAutomatonQCOutcomes(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict {
	mapped := make([]Outcome, len(outs))
	for i, out := range outs {
		mapped[i] = out
		if !out.Returned {
			continue
		}
		qo, ok := out.Value.(sim.QCOutcome)
		if !ok {
			return model.Fail("automaton qc scenario: %v returned %T, want sim.QCOutcome", out.Process, out.Value)
		}
		mapped[i].Value = qc.Decision{Quit: qo.Quit, Value: qo.Value}
	}
	return checkQCOutcomes(f, mapped, requireTermination)
}
