//go:build race

package scenario

// raceEnabled reports whether the race detector is compiled in; the large
// sweep tests scale their run counts down under it (every operation is an
// order of magnitude slower, and the 10s wall-clock bar is calibrated for
// the plain build).
const raceEnabled = true
