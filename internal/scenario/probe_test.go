package scenario

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/journal"
	"weakestfd/internal/model"
)

// probed returns tc's scenario with probe capture switched on — the
// observe-only twin of the original configuration.
func probed(s *Scenario) *Scenario {
	cfg := s.Config()
	cfg.Probes = true
	return FromConfig(cfg)
}

func encodeProbes(t *testing.T, res Result, name string) []byte {
	t.Helper()
	if res.Probes == nil {
		t.Fatalf("%s: probed step-mode run carries no probes (summary %+v)", name, res.TraceSummary)
	}
	data, err := res.Probes.Encode()
	if err != nil {
		t.Fatalf("%s: encode probes: %v", name, err)
	}
	return data
}

// TestProbesDeterministic is the probe half of the trace-determinism
// guarantee: repeated probed runs of an identical seeded configuration
// produce byte-identical Result.Probes for every protocol family, and probe
// capture is observe-only — the probed run keeps the TraceFingerprint of
// its unprobed twin. CI exercises this under -race.
func TestProbesDeterministic(t *testing.T) {
	ctx := context.Background()
	rounds := 3
	if raceEnabled {
		rounds = 2
	}
	for _, tc := range traceFamily() {
		bare := tc.s.Run(ctx, tc.proto)
		if !bare.Verdict.OK {
			t.Fatalf("%s: verdict %v", tc.name, bare.Verdict)
		}
		if bare.Probes != nil {
			t.Fatalf("%s: unprobed run grew probes", tc.name)
		}

		s := probed(tc.s)
		want := s.Run(ctx, tc.proto)
		wantEnc := encodeProbes(t, want, tc.name)
		if want.TraceFingerprint != bare.TraceFingerprint {
			t.Fatalf("%s: probe capture perturbed the trace: %s vs unprobed %s",
				tc.name, want.TraceFingerprint, bare.TraceFingerprint)
		}
		if sp := want.Probes.Stream; sp.Events == 0 || sp.Messages == 0 || sp.MessageDelay.Count == 0 {
			t.Fatalf("%s: implausible stream probes %+v", tc.name, sp)
		}
		for round := 1; round < rounds; round++ {
			got := s.Run(ctx, tc.proto)
			gotEnc := encodeProbes(t, got, tc.name)
			if string(gotEnc) != string(wantEnc) {
				t.Fatalf("%s: probes diverged on round %d\nfirst: %s\nround: %s",
					tc.name, round, wantEnc, gotEnc)
			}
		}
	}
}

// TestProbesDeterministicCrashAtDecisionMoment aims a crash at the exact
// virtual instant the crash-free twin decides — the trace-determinism
// stress case — and requires the probe fold (including the detection join,
// which is where a nondeterministic crash set would surface) to be
// byte-stable across runs.
func TestProbesDeterministicCrashAtDecisionMoment(t *testing.T) {
	ctx := context.Background()
	ref := New(5, WithSeed(108), WithDelays(time.Millisecond, 5*time.Millisecond)).Run(ctx, Consensus{})
	if !ref.Verdict.OK {
		t.Fatalf("crash-free reference failed: %v", ref.Verdict)
	}
	decision := ref.VirtualEnd
	for _, tc := range []struct {
		name string
		p    model.ProcessID
		at   time.Duration
	}{
		{"leader-at-decision", 0, decision},
		{"follower-at-decision", 4, decision},
		{"leader-mid-run", 0, decision / 2},
	} {
		s := New(5, WithSeed(108), WithDelays(time.Millisecond, 5*time.Millisecond),
			WithCrash(tc.p, tc.at), WithProbes())
		want := s.Run(ctx, Consensus{})
		wantEnc := encodeProbes(t, want, tc.name)
		got := s.Run(ctx, Consensus{})
		gotEnc := encodeProbes(t, got, tc.name)
		if string(gotEnc) != string(wantEnc) {
			t.Fatalf("%s: probes diverged across runs\nfirst: %s\nagain: %s", tc.name, wantEnc, gotEnc)
		}
	}
}

// TestProbesCrashContent pins the fold's crash-facing content on a run with
// a real mid-run crash: the crash shows up in the stream counters and
// CrashedProcs, the crash-to-decision histogram fills, and the detection
// join against the default suspect history counts the crash.
func TestProbesCrashContent(t *testing.T) {
	ctx := context.Background()
	res := New(5, WithSeed(109), WithDelays(time.Millisecond, 5*time.Millisecond),
		WithCrash(3, 2*time.Millisecond), WithProbes()).Run(ctx, Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Probes == nil {
		t.Fatal("probed run carries no probes")
	}
	sp := res.Probes.Stream
	if sp.Crashes != 1 || len(sp.CrashedProcs) != 1 || sp.CrashedProcs[0] != 3 {
		t.Fatalf("crash not folded: crashes=%d crashed_procs=%v", sp.Crashes, sp.CrashedProcs)
	}
	if sp.CrashToDecision.Count == 0 {
		t.Fatalf("crash-to-decision histogram empty: %+v", sp)
	}
	d := res.Probes.Detection
	if d == nil || d.Crashes != 1 {
		t.Fatalf("detection join missed the crash: %+v", d)
	}
	if d.Detected+d.Missed != d.Crashes {
		t.Fatalf("detection counters do not partition the crashes: %+v", d)
	}
	if d.Detected > 0 && d.Latency.Count != d.Detected {
		t.Fatalf("latency histogram holds %d samples for %d detections", d.Latency.Count, d.Detected)
	}
}

// TestProbesJournalOffline is the replay -stats contract at the library
// layer: a journaled run always carries its live probe capture in Meta, and
// refolding the journal's record stream offline (after an encode/decode
// round trip) reproduces the live stream probes byte-for-byte — no
// re-execution involved.
func TestProbesJournalOffline(t *testing.T) {
	ctx := context.Background()
	res := New(5, WithSeed(110), WithDelays(time.Millisecond, 10*time.Millisecond),
		WithCrash(4, 3*time.Millisecond), WithJournal(JournalAll)).Run(ctx, Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Journal == nil {
		t.Fatal("journaled run carries no journal")
	}
	// Journaling implies probing: every v2 journal's Meta carries the live
	// capture even without WithProbes.
	if res.Probes == nil || res.Journal.Meta.Probes == nil {
		t.Fatalf("journaled run carries no live probes (result %v, meta %v)",
			res.Probes != nil, res.Journal.Meta.Probes != nil)
	}
	if !res.Journal.Meta.Probes.Equal(res.Probes) {
		t.Fatal("journal meta probes differ from the result's")
	}

	data, err := res.Journal.Encode()
	if err != nil {
		t.Fatalf("encode journal: %v", err)
	}
	j, err := journal.Decode(data)
	if err != nil {
		t.Fatalf("decode journal: %v", err)
	}
	stream, err := j.RecomputeProbes()
	if err != nil {
		t.Fatalf("recompute probes: %v", err)
	}
	offline, err := json.Marshal(stream)
	if err != nil {
		t.Fatalf("marshal offline stream: %v", err)
	}
	live, err := json.Marshal(res.Probes.Stream)
	if err != nil {
		t.Fatalf("marshal live stream: %v", err)
	}
	if string(offline) != string(live) {
		t.Fatalf("offline refold differs from live capture\noffline: %s\nlive:    %s", offline, live)
	}
}

// TestProbesFreeRunningRefusal: the free-running ablation has no record
// stream to fold, so asking it for probes fails the run with a reason
// instead of returning silently empty analytics.
func TestProbesFreeRunningRefusal(t *testing.T) {
	res := New(4, WithSeed(111), WithFreeRunning(), WithProbes()).Run(context.Background(), Consensus{})
	if res.Verdict.OK {
		t.Fatal("free-running probed run passed; want a refusal verdict")
	}
	if res.Probes != nil {
		t.Fatal("refused run still carries probes")
	}
}

// TestSweepProbeAggregates: a probed grid folds per-run probes into the
// sweep aggregate and the per-detector aggregates deterministically — the
// fold happens in grid order after the workers join, so worker scheduling
// must not leak into the bytes.
func TestSweepProbeAggregates(t *testing.T) {
	base := New(5, WithSeed(1))
	grid := Grid{
		Seeds:   []int64{31, 32, 33},
		Crashes: [][]Crash{nil, {{P: 4, At: 0}}},
		Workers: 4,
		Probes:  true,
	}
	a := Sweep(context.Background(), base, grid, Consensus{})
	if !a.AllPassed() {
		t.Fatalf("sweep failed: %d of %d, first: %v", a.Faulted, a.Runs, firstViolation(a))
	}
	if a.Probes == nil {
		t.Fatal("probed sweep carries no aggregate")
	}
	if a.Probes.Runs != int64(a.Runs) {
		t.Fatalf("aggregate covers %d runs, sweep ran %d", a.Probes.Runs, a.Runs)
	}
	if a.Probes.Messages.Count != int64(a.Runs) {
		t.Fatalf("message histogram holds %d runs' counts, want %d", a.Probes.Messages.Count, a.Runs)
	}
	b := Sweep(context.Background(), base, grid, Consensus{})
	ja, _ := json.Marshal(a.Probes)
	jb, _ := json.Marshal(b.Probes)
	if string(ja) != string(jb) {
		t.Fatalf("sweep probe aggregate diverged across runs\nfirst: %s\nagain: %s", ja, jb)
	}

	// An unprobed grid stays probe-free.
	grid.Probes = false
	if c := Sweep(context.Background(), base, grid, Consensus{}); c.Probes != nil {
		t.Fatal("unprobed sweep grew a probe aggregate")
	}
}

// TestSweepProbeDetectorAggregates: with a detector axis, each spec's runs
// fold into that detector's aggregate and the per-detector run counts
// partition the sweep.
func TestSweepProbeDetectorAggregates(t *testing.T) {
	base := New(5, WithSeed(1))
	grid := Grid{
		Seeds:     []int64{41, 42},
		Detectors: []fd.DetectorSpec{{Class: fd.ClassOmegaSigma}, {Class: fd.ClassPerfect}},
		Crashes:   [][]Crash{nil, {{P: 4, At: 0}}},
		Workers:   4,
		Probes:    true,
	}
	res := Sweep(context.Background(), base, grid, Consensus{})
	if !res.AllPassed() {
		t.Fatalf("sweep failed: %d of %d, first: %v", res.Faulted, res.Runs, firstViolation(res))
	}
	if len(res.Detectors) == 0 {
		t.Fatal("detector axis produced no per-detector counts")
	}
	var runs int64
	for _, d := range res.Detectors {
		if d.Probes == nil {
			t.Fatalf("detector %s carries no probe aggregate", d.Spec)
		}
		if d.Probes.Runs != int64(d.Runs) {
			t.Fatalf("detector %s aggregate covers %d runs, counted %d", d.Spec, d.Probes.Runs, d.Runs)
		}
		runs += d.Probes.Runs
	}
	if runs != res.Probes.Runs {
		t.Fatalf("per-detector aggregates cover %d runs, sweep aggregate %d", runs, res.Probes.Runs)
	}
}
