//go:build !race

package scenario

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
