// Deterministic replay: re-execute a journaled run and hold it to its
// journal. The step scheduler makes the record stream a pure function of
// (seed, config), so re-running the journal's embedded config must reproduce
// the recorded stream record-for-record; the first scheduler decision that
// differs is a real divergence — a nondeterminism bug, a code change that
// perturbed the schedule, or a corrupted journal — and is reported precisely
// rather than as a mysteriously different outcome.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"

	"weakestfd/internal/journal"
)

// ReplayResult is the outcome of one replay.
type ReplayResult struct {
	// Result is the re-executed run.
	Result Result
	// Divergence is the first point where the run departed from the
	// journal, or nil when every record matched.
	Divergence *journal.Divergence
	// Matched is how many records matched (all of them when Divergence is
	// nil).
	Matched int
}

// OK reports a fully matching replay.
func (r ReplayResult) OK() bool { return r.Divergence == nil }

// Replay re-executes the journal's embedded scenario configuration under
// proto with a record-by-record checker attached, asserting every scheduler
// decision — next event, next grant, next exit — against the recorded one.
//
// It refuses journals that cannot anchor a replay (tainted runs, ring-mode
// suffixes, future schema versions are already refused at load) and errors
// if the replayed run itself escapes to wall-clock (the comparison is then
// meaningless, not divergent). On a clean full match the replayed run's
// TraceFingerprint is additionally cross-checked against the journal's —
// byte-equal by construction, so a mismatch means the journal's meta does
// not belong to its records.
func Replay(ctx context.Context, proto Protocol, j *journal.Journal) (ReplayResult, error) {
	var out ReplayResult
	if err := j.Replayable(); err != nil {
		return out, err
	}
	var cfg Config
	if err := json.Unmarshal(j.Meta.Config, &cfg); err != nil {
		return out, fmt.Errorf("replay: parse journal config: %w", err)
	}
	if j.Meta.Protocol != "" && proto.Name() != j.Meta.Protocol {
		return out, fmt.Errorf("replay: journal records protocol %q, got %q", j.Meta.Protocol, proto.Name())
	}
	chk := journal.NewChecker(j)
	cfg.Journal = 0
	cfg.Recorder = chk
	out.Result = FromConfig(cfg).Run(ctx, proto)
	out.Matched = chk.Matched()
	if reason := out.Result.TraceSummary.TaintReason; reason != "" {
		return out, fmt.Errorf("replay: the replayed run escaped to wall-clock, so the comparison is void (%s); raise the timeout and retry", reason)
	}
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("replay: cancelled: %w", err)
	}
	out.Divergence = chk.Finish()
	if out.Divergence == nil && out.Result.TraceFingerprint != j.Meta.TraceFingerprint {
		return out, fmt.Errorf("replay: every record matched but the fingerprints differ (run %s, journal %s): the journal's meta does not belong to its records",
			out.Result.TraceFingerprint, j.Meta.TraceFingerprint)
	}
	return out, nil
}
