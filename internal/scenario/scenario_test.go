package scenario

import (
	"context"
	"testing"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/nbac"
	"weakestfd/internal/qc"
	"weakestfd/internal/sim"
)

// ---- single runs: every built-in protocol through the one-call harness ----

func TestScenarioConsensusNoFailures(t *testing.T) {
	res := New(5, WithSeed(1)).Run(context.Background(), Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if !o.Returned {
			t.Fatalf("%v never returned: %v", o.Process, o.Err)
		}
	}
	if res.VirtualEnd == 0 {
		t.Fatalf("virtual clock never advanced")
	}
}

func TestScenarioConsensusLeaderCrashMinorityCorrect(t *testing.T) {
	// The initial leader and two more processes crash mid-run; (Ω, Σ)
	// consensus still terminates at the minority of survivors.
	res := New(5,
		WithSeed(2),
		WithCrash(0, 300*time.Microsecond),
		WithCrash(2, 500*time.Microsecond),
		WithCrash(4, 700*time.Microsecond),
	).Run(context.Background(), Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	if res.Pattern.NumFaulty() == 0 {
		t.Fatalf("no crash was injected")
	}
}

func TestScenarioConsensusRegisterRoute(t *testing.T) {
	res := New(3, WithSeed(3)).Run(context.Background(), Consensus{Registers: true})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

func TestScenarioConsensusMajorityBaselineSafetyOnly(t *testing.T) {
	// The Ω-plus-majority baseline loses liveness once a majority has
	// crashed; with a short wall-clock budget and safety-only checking the
	// run must still be safe (agreement/validity on whatever returned).
	res := New(5,
		WithSeed(4),
		WithCrashes(Crash{2, 0}, Crash{3, 0}, Crash{4, 0}),
		WithSafetyOnly(),
		WithTimeout(300*time.Millisecond),
	).Run(context.Background(), Consensus{Majority: true})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if o.Returned {
			t.Fatalf("%v decided %v with a crashed majority under the majority guard", o.Process, o.Value)
		}
	}
}

func TestScenarioQC(t *testing.T) {
	// Ψ switches late and prefers FS when a failure occurred by then: the
	// pre-run crash makes every survivor Quit.
	res := New(4,
		WithSeed(5),
		WithCrash(3, 0),
		WithPsiSwitch(10, fd.PreferFSOnFailure),
	).Run(context.Background(), QC{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if !o.Returned {
			continue
		}
		if d := o.Value.(qc.Decision); !d.Quit {
			t.Fatalf("%v decided %v, want Quit after a pre-run failure", o.Process, d)
		}
	}
}

func TestScenarioNBAC(t *testing.T) {
	// All-Yes, no failures: must Commit everywhere.
	res := New(4, WithSeed(6)).Run(context.Background(), NBAC{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if o.Value != nbac.Commit {
			t.Fatalf("%v decided %v, want Commit", o.Process, o.Value)
		}
	}

	// One No vote: must Abort everywhere.
	res = New(4, WithSeed(7)).Run(context.Background(), NBAC{Votes: []nbac.Vote{nbac.VoteYes, nbac.VoteNo, nbac.VoteYes, nbac.VoteYes}})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if o.Value != nbac.Abort {
			t.Fatalf("%v decided %v, want Abort", o.Process, o.Value)
		}
	}
}

func TestScenarioRegisters(t *testing.T) {
	res := New(5, WithSeed(8), WithCrash(4, 400*time.Microsecond)).Run(context.Background(), Registers{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

func TestScenarioDropRateSafetyOnly(t *testing.T) {
	// A lossy network may starve liveness but must never break agreement;
	// the run is bounded by the wall-clock backstop and checked for safety
	// only.
	res := New(3,
		WithSeed(9),
		WithDropRate(0.4),
		WithSafetyOnly(),
		WithTimeout(300*time.Millisecond),
	).Run(context.Background(), Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

func TestScenarioSuspicionDelay(t *testing.T) {
	// With a suspicion delay the crashed leader stays trusted for a while;
	// consensus must still terminate once the delay expires.
	res := New(3,
		WithSeed(10),
		WithCrash(0, 0),
		WithSuspicionDelay(50),
	).Run(context.Background(), Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

func TestScenarioAutomatonConsensus(t *testing.T) {
	// The step-model consensus automaton runs through the same harness as
	// the native protocols, crash schedule and all.
	res := New(4,
		WithSeed(12),
		WithCrash(0, 2*time.Millisecond),
	).Run(context.Background(), Automaton{Algorithm: sim.ConsensusAutomaton{}, Label: "consensus"})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

func TestScenarioAutomatonQC(t *testing.T) {
	// The QC automaton under Ψ's FS regime (pre-run crash, FS-preferring
	// policy) must Quit everywhere — checked against the QC spec.
	res := New(3,
		WithSeed(13),
		WithCrash(2, 0),
		WithPsiSwitch(0, fd.PreferFSOnFailure),
	).Run(context.Background(), Automaton{Algorithm: sim.QCAutomaton{}, Label: "qc", UsePsi: true, QC: true})
	if !res.Verdict.OK {
		t.Fatalf("verdict: %v", res.Verdict)
	}
	for _, o := range res.Outcomes {
		if o.Returned && !o.Value.(sim.QCOutcome).Quit {
			t.Fatalf("%v decided %v, want Quit", o.Process, o.Value)
		}
	}
}

// ---- sweep ----

func TestSweepGridExpansion(t *testing.T) {
	base := New(3, WithSeed(1), WithCrash(0, time.Millisecond))
	grid := Grid{
		Seeds:   []int64{1, 2, 3},
		Delays:  []DelayRange{{0, 100 * time.Microsecond}, {time.Millisecond, 2 * time.Millisecond}},
		Crashes: [][]Crash{nil, {{P: 1, At: 0}}},
	}
	if got := grid.Size(); got != 12 {
		t.Fatalf("grid size = %d, want 12", got)
	}
	cfgs := expand(base.Config(), grid)
	if len(cfgs) != 12 {
		t.Fatalf("expanded %d configs, want 12", len(cfgs))
	}
	// Row-major: the first config carries the first of every dimension; the
	// crash-free point replaces (not inherits) the base schedule.
	if cfgs[0].Seed != 1 || len(cfgs[0].Crashes) != 0 || cfgs[1].Crashes[0].P != 1 {
		t.Fatalf("unexpected expansion order: %+v", cfgs[:2])
	}
	// Empty dimensions fall back to the base values.
	cfgs = expand(base.Config(), Grid{})
	if len(cfgs) != 1 || cfgs[0].Seed != 1 || len(cfgs[0].Crashes) != 1 {
		t.Fatalf("empty grid expansion wrong: %+v", cfgs)
	}
}

func TestSweepAggregatesAndReportsFailures(t *testing.T) {
	base := New(3, WithSafetyOnly())
	grid := Grid{Seeds: []int64{1, 2, 3, 4}, Workers: 2}
	res := Sweep(context.Background(), base, grid, Consensus{})
	if res.Runs != 4 || !res.AllPassed() {
		t.Fatalf("sweep = %+v, want 4 passing runs", res)
	}
	if res.RunsPerSec <= 0 {
		t.Fatalf("throughput not computed")
	}

	// The majority baseline with a crashed majority and termination
	// required fails every run; the failures carry their configs.
	badBase := New(5,
		WithCrashes(Crash{2, 0}, Crash{3, 0}, Crash{4, 0}),
		WithTimeout(200*time.Millisecond),
	)
	bad := Sweep(context.Background(), badBase, Grid{Seeds: []int64{1, 2}, KeepFailures: 1}, Consensus{Majority: true})
	if bad.Passed != 0 || bad.Faulted != 2 {
		t.Fatalf("bad sweep = %+v, want 2 failures", bad)
	}
	if len(bad.Failures) != 1 || bad.Failures[0].Config.Seed != 1 {
		t.Fatalf("failure retention wrong: %d retained", len(bad.Failures))
	}
}

// TestSweepSmoke is the CI smoke matrix: 64 scenarios per protocol family
// (seeds × delays × crash schedules at n=3 and n=5), every verdict passing.
func TestSweepSmoke(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	delays := []DelayRange{
		{0, 200 * time.Microsecond},
		{500 * time.Microsecond, 2 * time.Millisecond},
	}
	protos := []Protocol{Consensus{}, QC{}, NBAC{}, Registers{}}
	for _, n := range []int{3, 5} {
		crashes := [][]Crash{
			nil,
			{{P: model.ProcessID(n - 1), At: 300 * time.Microsecond}},
		}
		base := New(n)
		grid := Grid{Seeds: seeds, Delays: delays, Crashes: crashes}
		for _, proto := range protos {
			res := Sweep(context.Background(), base, grid, proto)
			if !res.AllPassed() {
				t.Fatalf("n=%d %s: %d of %d runs failed; first: %v",
					n, proto.Name(), res.Faulted, res.Runs, firstViolation(res))
			}
		}
	}
}

func firstViolation(res SweepResult) any {
	if len(res.Failures) == 0 {
		return "(no retained failure)"
	}
	return res.Failures[0].Verdict
}
