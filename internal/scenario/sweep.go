package scenario

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// DelayRange is one delay distribution of a sweep grid.
type DelayRange struct {
	Min, Max time.Duration
}

// Grid spans the scenario family a Sweep explores: the cross product of
// seeds × delay ranges × crash schedules, each dimension falling back to the
// base scenario's value when left empty. A 16-seed × 4-delay × 8-schedule
// grid is 512 runs; the expansion is deterministic (row-major: seeds
// outermost, crash schedules innermost), so run #k always denotes the same
// configuration.
type Grid struct {
	// Seeds to run. Empty = the base scenario's seed.
	Seeds []int64
	// Delays to run. Empty = the base scenario's delay range.
	Delays []DelayRange
	// Crashes holds alternative fault schedules. Empty = the base
	// scenario's schedule. Use [][]Crash{nil} next to real schedules to
	// include a crash-free point.
	Crashes [][]Crash
	// Workers is the number of concurrent runner goroutines; 0 means
	// GOMAXPROCS.
	Workers int
	// KeepFailures caps how many failing Results are retained in full
	// (earliest grid points first); 0 means 8. Pass/fail counts always
	// cover every run.
	KeepFailures int
}

// Size returns the number of runs the grid expands to over a base scenario.
func (g Grid) Size() int {
	return max(1, len(g.Seeds)) * max(1, len(g.Delays)) * max(1, len(g.Crashes))
}

// SweepResult aggregates a sweep: total and passing run counts, the first
// few failing results in grid order, and throughput.
type SweepResult struct {
	Runs    int
	Passed  int
	Faulted int // runs that executed and whose verdict failed
	// Cancelled counts grid points never executed because the sweep's
	// context was cancelled; they are neither passes nor spec failures.
	Cancelled int
	// Failures holds the first KeepFailures failing results in grid order,
	// each carrying the exact Config to re-run it in isolation.
	Failures []Result
	Elapsed  time.Duration
	// RunsPerSec is the sweep's wall-clock throughput over executed runs.
	RunsPerSec float64
}

// AllPassed reports whether every grid point executed and passed.
func (r SweepResult) AllPassed() bool { return r.Passed == r.Runs }

// Sweep expands the grid over the base scenario and runs every
// configuration against proto, fanning runs across worker goroutines —
// the "millions of runs" driver the virtual-time scheduler makes cheap.
// proto.Setup is called once per run and must therefore be reusable (the
// built-in protocol descriptors are). The aggregation is deterministic: runs
// are indexed by grid order, so identical inputs yield an identical
// SweepResult whenever each individual run is deterministic.
func Sweep(ctx context.Context, base *Scenario, grid Grid, proto Protocol) SweepResult {
	cfgs := expand(base.Config(), grid)
	workers := grid.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	keep := grid.KeepFailures
	if keep <= 0 {
		keep = 8
	}

	start := time.Now()
	ran := make([]bool, len(cfgs))
	verdicts := make([]bool, len(cfgs))
	failed := make([]*Result, len(cfgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res := FromConfig(cfgs[i]).Run(ctx, proto)
				ran[i] = true
				verdicts[i] = res.Verdict.OK
				if !res.Verdict.OK {
					failed[i] = &res
				}
			}
		}()
	}
submit:
	for i := range cfgs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break submit // stop submitting; the rest is reported as Cancelled
		}
	}
	close(jobs)
	wg.Wait()

	out := SweepResult{Runs: len(cfgs), Elapsed: time.Since(start)}
	for i := range cfgs {
		switch {
		case !ran[i]:
			out.Cancelled++
		case verdicts[i]:
			out.Passed++
		default:
			out.Faulted++
			if failed[i] != nil && len(out.Failures) < keep {
				out.Failures = append(out.Failures, *failed[i])
			}
		}
	}
	if executed := out.Runs - out.Cancelled; executed > 0 && out.Elapsed > 0 {
		out.RunsPerSec = float64(executed) / out.Elapsed.Seconds()
	}
	return out
}

// expand materialises the grid's cross product over the base config in
// row-major order: seeds, then delays, then crash schedules.
func expand(base Config, grid Grid) []Config {
	seeds := grid.Seeds
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	delays := grid.Delays
	if len(delays) == 0 {
		delays = []DelayRange{{base.MinDelay, base.MaxDelay}}
	}
	crashes := grid.Crashes
	if len(crashes) == 0 {
		crashes = [][]Crash{base.Crashes}
	}
	cfgs := make([]Config, 0, len(seeds)*len(delays)*len(crashes))
	for _, seed := range seeds {
		for _, d := range delays {
			for _, cs := range crashes {
				cfg := base
				cfg.Seed = seed
				cfg.MinDelay, cfg.MaxDelay = d.Min, d.Max
				cfg.Crashes = append([]Crash(nil), cs...)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}
