package scenario

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"weakestfd/internal/fd"
	"weakestfd/internal/probe"
)

// DelayRange is one delay distribution of a sweep grid.
type DelayRange struct {
	Min, Max time.Duration
}

// KeepAllCounts is the Grid.KeepFailures sentinel for "count every failure
// but retain none of the Results" — the count-only mode a million-run sweep
// needs, where holding even a handful of full Results (configs, outcomes,
// traces) per shard is pure overhead.
const KeepAllCounts = -1

// Shard restricts a sweep to one contiguous slice of the grid's row-major
// index space, so independent invocations (other processes, other machines)
// cover disjoint runs whose union is the whole grid. Shard k of m covers
// global indices [(k-1)·size/m, k·size/m) — every index exactly once across
// k = 1..m. The zero value means "the whole grid".
type Shard struct {
	// Index is the 1-based shard number, in [1, Count].
	Index int
	// Count is the total number of shards.
	Count int
}

// enabled reports whether the shard actually restricts the grid.
func (s Shard) enabled() bool { return s.Count > 1 }

// Bounds returns the half-open global index range [lo, hi) the shard covers
// over a grid of the given size — the single definition of the tiling, which
// Sweep and external drivers (cmd/sweep progress totals) must share.
func (s Shard) Bounds(size int) (lo, hi int) {
	if !s.enabled() {
		return 0, size
	}
	if s.Index < 1 || s.Index > s.Count {
		panic(fmt.Sprintf("scenario: shard index %d out of range 1..%d", s.Index, s.Count))
	}
	return (s.Index - 1) * size / s.Count, s.Index * size / s.Count
}

// SeedSpan contributes the N consecutive seeds From, From+1, …, From+N−1 to
// a grid's seed axis without materialising them — the grid stays O(1) in
// memory no matter how many million seeds the span covers, matching the
// lazy ConfigAt expansion. The zero value contributes nothing.
type SeedSpan struct {
	From int64
	N    int
}

// Grid spans the scenario family a Sweep explores: the cross product of
// seeds × detector specs × delay ranges × crash schedules, each dimension
// falling back to the base scenario's value when left empty. A 16-seed ×
// 4-detector × 4-delay × 2-schedule grid is 512 runs; the expansion is
// deterministic (row-major: seeds outermost, then detectors, then delays,
// crash schedules innermost), so run #k always denotes the same
// configuration — which is what makes sharding across processes and
// re-running a failure by index meaningful.
type Grid struct {
	// Seeds to run. The seed axis is Seeds followed by SeedSpan; when both
	// are empty it falls back to the base scenario's seed.
	Seeds []int64
	// SeedSpan appends a contiguous, unmaterialised seed range after Seeds
	// (the million-seed axis of sharded sweeps).
	SeedSpan SeedSpan
	// Detectors holds the detector-spec axis: each grid point runs under
	// one of these specs. Empty = the base scenario's spec. This is the
	// axis that asks the paper's own question — which detector class (at
	// which quality) solves the problem — so Sweep additionally aggregates
	// per-spec counts into SweepResult.Detectors when it is non-empty.
	Detectors []fd.DetectorSpec
	// Delays to run. Empty = the base scenario's delay range.
	Delays []DelayRange
	// Crashes holds alternative fault schedules. Empty = the base
	// scenario's schedule. Use [][]Crash{nil} next to real schedules to
	// include a crash-free point.
	Crashes [][]Crash
	// Shard restricts the sweep to one contiguous slice of the row-major
	// index space (see Shard). The zero value sweeps the whole grid.
	Shard Shard
	// Workers is the number of concurrent runner goroutines; 0 means
	// GOMAXPROCS.
	Workers int
	// KeepFailures caps how many failing Results are retained in full
	// (earliest grid points first). 0 means 8 (kept for compatibility);
	// KeepAllCounts (or any negative value) retains none while still
	// counting every failure. Pass/fail counts always cover every run.
	KeepFailures int
	// OnRun, if non-nil, streams every executed run's result as it
	// completes: index is the run's global row-major grid index. It is
	// called concurrently from worker goroutines and must be safe for
	// that; runs abandoned because the sweep's context was cancelled are
	// not reported.
	OnRun func(index int, res *Result)
	// Probes enables the streaming probe analyzer (Config.Probes) on every
	// grid point and folds each run's fold into SweepResult.Probes and the
	// per-detector aggregates. Observe-only and trace-tier, like the config
	// flag it sets: it never changes a run's schedule or identity, so —
	// like Shard and Workers — it is excluded from Fingerprint.
	Probes bool
}

// seedCount is the length of the seed axis (0 = fall back to the base seed).
func (g Grid) seedCount() int { return len(g.Seeds) + max(0, g.SeedSpan.N) }

// Size returns the number of runs the grid expands to over a base scenario,
// before sharding.
func (g Grid) Size() int {
	return max(1, g.seedCount()) * max(1, len(g.Detectors)) * max(1, len(g.Delays)) * max(1, len(g.Crashes))
}

// Fingerprint returns the canonical identity of the sweep this grid
// describes over the base config: the base's canonical key plus every axis
// in expansion order, byte-stably. Two (base, grid) pairs with equal
// fingerprints expand to the same configurations at the same row-major
// indices — the identity a campaign manifest records and campaign merge
// enforces before folding shard reports together. Shard, Workers,
// KeepFailures and OnRun are execution detail, not identity, and are
// excluded: sharding or re-running a grid never changes its fingerprint.
func (g Grid) Fingerprint(base Config) string {
	var b strings.Builder
	b.WriteString("grid{base=")
	b.WriteString(base.Key())
	b.WriteString(";seeds=")
	for i, s := range g.Seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	if g.SeedSpan.N > 0 {
		fmt.Fprintf(&b, ";seedspan=%d+%d", g.SeedSpan.From, g.SeedSpan.N)
	}
	b.WriteString(";detectors=")
	for i, d := range g.Detectors {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(d.String())
	}
	b.WriteString(";delays=")
	for i, d := range g.Delays {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%v,%v]", d.Min, d.Max)
	}
	b.WriteString(";crashes=")
	for i, cs := range g.Crashes {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%v", cs)
	}
	b.WriteByte('}')
	return b.String()
}

// detectorIndexAt returns the position on the detector axis of global grid
// index i; ok is false when the grid has no detector axis.
func (g Grid) detectorIndexAt(i int) (int, bool) {
	if len(g.Detectors) == 0 {
		return 0, false
	}
	nc := max(1, len(g.Crashes))
	nd := max(1, len(g.Delays))
	return (i / (nc * nd)) % len(g.Detectors), true
}

// ConfigAt returns the configuration of global grid index i (row-major:
// seeds outermost, then detector specs, then delays, crash schedules
// innermost) over the base config. It is how Sweep materialises runs —
// lazily, one index at a time, so a million-point grid never exists in
// memory — and how external tooling (cmd/sweep, failure reports) maps an
// index back to its exact scenario.
func (g Grid) ConfigAt(base Config, i int) Config {
	if i < 0 || i >= g.Size() {
		panic(fmt.Sprintf("scenario: grid index %d out of range 0..%d", i, g.Size()-1))
	}
	nc := max(1, len(g.Crashes))
	nd := max(1, len(g.Delays))
	ndet := max(1, len(g.Detectors))
	cfg := base
	if ci := i % nc; len(g.Crashes) > 0 {
		cfg.Crashes = append([]Crash(nil), g.Crashes[ci]...)
	} else {
		cfg.Crashes = append([]Crash(nil), base.Crashes...)
	}
	if di := (i / nc) % nd; len(g.Delays) > 0 {
		cfg.MinDelay, cfg.MaxDelay = g.Delays[di].Min, g.Delays[di].Max
	}
	if deti, ok := g.detectorIndexAt(i); ok {
		cfg.Detector = g.Detectors[deti]
	}
	if si := i / (nc * nd * ndet); g.seedCount() > 0 {
		if si < len(g.Seeds) {
			cfg.Seed = g.Seeds[si]
		} else {
			cfg.Seed = g.SeedSpan.From + int64(si-len(g.Seeds))
		}
	}
	return cfg
}

// SweepResult aggregates a sweep: total and passing run counts, the first
// few failing results in grid order, and throughput.
type SweepResult struct {
	// GridSize is the full grid's run count; Runs is this sweep's share of
	// it ([IndexLo, IndexHi) after sharding — the whole grid when the
	// shard is zero).
	GridSize int
	// IndexLo and IndexHi bound the half-open global index range this
	// sweep covered.
	IndexLo, IndexHi int
	Runs             int
	Passed           int
	Faulted          int // runs that executed and whose verdict failed
	// Cancelled counts grid points whose run never executed, or was cut
	// short by the sweep context's cancellation; they are neither passes
	// nor spec failures.
	Cancelled int
	// Failures holds the first KeepFailures failing results in grid order,
	// each carrying the exact Config to re-run it in isolation.
	Failures []Result
	// FailureIndices holds the global grid index of each retained failure,
	// aligned with Failures.
	FailureIndices []int
	// Detectors aggregates this sweep's runs per detector spec, aligned
	// with the grid's Detectors axis; nil when the grid has no detector
	// axis. This is the sweep's cross-detector comparison table: which
	// class (at which quality) solved the problem on how many points.
	Detectors []DetectorCount
	// Probes aggregates every executed run's probe fold (Grid.Probes):
	// mergeable histograms of per-run message cost, decision latency and
	// failure-detection latency. Folded in grid order after the workers
	// join, so it is byte-stable whenever the runs are; nil when Grid.Probes
	// was off. Shard aggregates merge commutatively (element-wise histogram
	// addition), which is how campaign merge folds them.
	Probes  *probe.Agg
	Elapsed time.Duration
	// RunsPerSec is the sweep's wall-clock throughput over executed runs.
	RunsPerSec float64
}

// DetectorCount is one detector spec's share of a sweep: how many of its
// grid points ran, passed, violated the spec, or were cancelled.
type DetectorCount struct {
	// Spec is the canonical rendering of the detector spec (its fingerprint).
	Spec string
	// Runs is the number of this sweep's grid points under the spec.
	Runs int
	// Passed, Faulted and Cancelled partition Runs exactly like the
	// sweep-wide counts.
	Passed    int
	Faulted   int
	Cancelled int
	// Probes aggregates the spec's runs' probe folds (Grid.Probes) — the
	// per-class detection-latency and message-cost comparison the sweep
	// report surfaces; nil when probes were off.
	Probes *probe.Agg
}

// AllPassed reports whether every grid point executed and passed.
func (r SweepResult) AllPassed() bool { return r.Passed == r.Runs }

// Sweep expands the grid over the base scenario and runs every configuration
// of its shard against proto, fanning runs across worker goroutines — the
// "millions of runs" driver the virtual-time scheduler makes cheap. When the
// grid carries a detector axis the result additionally reports per-spec
// pass/fail counts, one invocation answering the paper's comparison question
// across detector classes.
// proto.Setup is called once per run and must therefore be reusable (the
// built-in protocol descriptors are). The aggregation is deterministic: runs
// are indexed by grid order, so identical inputs yield an identical
// SweepResult whenever each individual run is deterministic.
//
// Cancelling ctx stops the sweep early: grid points not yet executed — and
// runs in flight at that moment, whose verdicts are ctx-induced timeouts,
// not spec violations — are counted as Cancelled and never retained in
// Failures. The classification is deliberately conservative: a run whose
// genuine violation completes inside the cancellation window is also
// counted Cancelled (the harness cannot distinguish it from the
// cancellation echoing through the run's timeout backstop without
// re-checking); a schedule-determined failure is recovered by re-running
// its grid point.
func Sweep(ctx context.Context, base *Scenario, grid Grid, proto Protocol) SweepResult {
	baseCfg := base.Config()
	size := grid.Size()
	lo, hi := grid.Shard.Bounds(size)
	workers := grid.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > hi-lo {
		workers = hi - lo
	}
	keep := grid.KeepFailures
	if keep == 0 {
		keep = 8
	}

	start := time.Now()
	passed := make([]bool, hi-lo)
	faulted := make([]bool, hi-lo)
	failed := make([]*Result, hi-lo)
	var probed []*probe.Probes
	if grid.Probes {
		probed = make([]*probe.Probes, hi-lo)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // handed out but never started: Cancelled
				}
				cfg := grid.ConfigAt(baseCfg, i)
				cfg.Probes = cfg.Probes || grid.Probes
				res := FromConfig(cfg).Run(ctx, proto)
				if !res.Verdict.OK && ctx.Err() != nil {
					// The run was in flight when the sweep was cancelled:
					// its failure is the cancellation echoing through the
					// run's wall-clock backstop (timeout → no termination),
					// not a spec violation. Count it as Cancelled.
					continue
				}
				if res.Verdict.OK {
					passed[i-lo] = true
				} else {
					faulted[i-lo] = true
					failed[i-lo] = &res
				}
				if probed != nil {
					probed[i-lo] = res.Probes
				}
				if grid.OnRun != nil {
					grid.OnRun(i, &res)
				}
			}
		}()
	}
submit:
	for i := lo; i < hi; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break submit // stop submitting; the rest is reported as Cancelled
		}
	}
	close(jobs)
	wg.Wait()

	out := SweepResult{GridSize: size, IndexLo: lo, IndexHi: hi, Runs: hi - lo, Elapsed: time.Since(start)}
	if len(grid.Detectors) > 0 {
		out.Detectors = make([]DetectorCount, len(grid.Detectors))
		for d, spec := range grid.Detectors {
			out.Detectors[d].Spec = spec.String()
		}
	}
	if grid.Probes {
		out.Probes = probe.NewAgg()
		for d := range out.Detectors {
			out.Detectors[d].Probes = probe.NewAgg()
		}
	}
	var scrap DetectorCount // increment sink when the grid has no detector axis
	for j := range passed {
		det := &scrap
		if d, ok := grid.detectorIndexAt(lo + j); ok {
			det = &out.Detectors[d]
			det.Runs++
		}
		if probed != nil && probed[j] != nil {
			// Fold in grid order, single goroutine: the aggregate is
			// byte-stable whenever the runs are. (A tainted or cancelled
			// run contributes nothing — its fold was never published.)
			out.Probes.Add(probed[j])
			if det.Probes != nil {
				det.Probes.Add(probed[j])
			}
		}
		switch {
		case passed[j]:
			out.Passed++
			det.Passed++
		case faulted[j]:
			out.Faulted++
			det.Faulted++
			if failed[j] != nil && keep > 0 && len(out.Failures) < keep {
				out.Failures = append(out.Failures, *failed[j])
				out.FailureIndices = append(out.FailureIndices, lo+j)
			}
		default:
			out.Cancelled++
			det.Cancelled++
		}
	}
	if executed := out.Runs - out.Cancelled; executed > 0 && out.Elapsed > 0 {
		out.RunsPerSec = float64(executed) / out.Elapsed.Seconds()
	}
	return out
}

// expand materialises the whole grid's cross product over the base config in
// row-major order. Sweep itself expands lazily via ConfigAt; expand is the
// eager form for tests and small tooling.
func expand(base Config, grid Grid) []Config {
	cfgs := make([]Config, grid.Size())
	for i := range cfgs {
		cfgs[i] = grid.ConfigAt(base, i)
	}
	return cfgs
}
