package scenario

import (
	"context"
	"testing"
	"time"
)

// TestSerialAndBatchedBroadcastFingerprintsIdentical is the end-to-end proof
// of the batched-enqueue determinism contract: for a family of seeded
// configurations spanning system sizes, delay ranges, drop rates, crash
// schedules and protocols, the run fingerprint is byte-identical whether
// broadcasts go through the batched enqueue (the default) or the serial
// per-recipient loop (WithSerialBroadcast). The contract lives in
// eventQueue.pushBroadcast — same RNG draws in the same order, same
// (time, seq) slots — and this matrix pins it at the level sweeps actually
// compare: Result.Fingerprint.
func TestSerialAndBatchedBroadcastFingerprintsIdentical(t *testing.T) {
	t.Parallel()
	type family struct {
		name  string
		n     int
		proto Protocol
		opts  []Option
	}
	families := []family{
		{name: "consensus/fast-links", n: 3, proto: Consensus{}},
		{name: "consensus/slow-links", n: 5, proto: Consensus{},
			opts: []Option{WithDelays(time.Millisecond, 20*time.Millisecond)}},
		{name: "consensus/leader-crash", n: 5, proto: Consensus{},
			opts: []Option{WithCrash(0, 400*time.Microsecond)}},
		// Safety-only with a short backstop: a lossy run may never terminate,
		// and the point here is only that the drop-draw sequence (the one
		// extra RNG stream the batched path must replay exactly) matches.
		{name: "consensus/lossy", n: 4, proto: Consensus{},
			opts: []Option{WithDropRate(0.2), WithSafetyOnly(), WithTimeout(300 * time.Millisecond)}},
		{name: "nbac", n: 4, proto: NBAC{}},
		{name: "qc", n: 4, proto: QC{}},
	}
	seeds := []int64{1, 7, 42}
	for _, f := range families {
		for _, seed := range seeds {
			t.Run(f.name, func(t *testing.T) {
				opts := append([]Option{WithSeed(seed)}, f.opts...)
				batched := New(f.n, opts...).Run(context.Background(), f.proto)
				serial := New(f.n, append(opts, WithSerialBroadcast())...).Run(context.Background(), f.proto)
				if bf, sf := batched.Fingerprint(), serial.Fingerprint(); bf != sf {
					t.Fatalf("seed %d: fingerprints diverged between batched and serial broadcast\n--- batched ---\n%s\n--- serial ---\n%s", seed, bf, sf)
				}
			})
		}
	}
}

// TestSerialBroadcastExcludedFromIdentity: the toggle is an implementation
// ablation, not a point of the schedule space, so it must not show up in a
// config's Key (dedup identity) and the serial twin of a config must
// fingerprint identically (checked exhaustively above; the Key clause here).
func TestSerialBroadcastExcludedFromIdentity(t *testing.T) {
	t.Parallel()
	a := New(3, WithSeed(5)).Config()
	b := New(3, WithSeed(5), WithSerialBroadcast()).Config()
	if a.Key() != b.Key() {
		t.Fatalf("SerialBroadcast leaked into Config.Key:\n%s\n%s", a.Key(), b.Key())
	}
}
