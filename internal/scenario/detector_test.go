package scenario

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"weakestfd/internal/fd"
)

// detectorAxis is the cross-class comparison grid of the acceptance
// criterion: the paper's family plus the three Chandra–Toueg classes.
func detectorAxis() []fd.DetectorSpec {
	return []fd.DetectorSpec{
		{Class: fd.ClassOmegaSigma},
		{Class: fd.ClassPerfect},
		fd.MustParseSpec("eventually-perfect{stabilize:50}"),
		fd.MustParseSpec("eventually-strong{stabilize:50}"),
	}
}

// TestSweepDetectorAxis sweeps one consensus grid across four named detector
// specs in a single invocation and checks the per-spec aggregation: every
// spec gets its exact share of the grid, the shares sum to the sweep totals,
// and on a crash-free grid every class solves consensus.
func TestSweepDetectorAxis(t *testing.T) {
	specs := detectorAxis()
	grid := Grid{
		Seeds:     []int64{41, 42, 43},
		Detectors: specs,
		Delays:    []DelayRange{{0, 200 * time.Microsecond}, {time.Millisecond, 5 * time.Millisecond}},
	}
	if got, want := grid.Size(), 3*4*2; got != want {
		t.Fatalf("grid size = %d, want %d", got, want)
	}
	res := Sweep(context.Background(), New(5), grid, Consensus{})
	if len(res.Detectors) != len(specs) {
		t.Fatalf("per-detector counts: %d entries, want %d", len(res.Detectors), len(specs))
	}
	var runs, passed int
	for i, d := range res.Detectors {
		if d.Spec != specs[i].String() {
			t.Fatalf("detector %d spec = %q, want %q", i, d.Spec, specs[i])
		}
		if d.Runs != grid.Size()/len(specs) {
			t.Fatalf("detector %q ran %d points, want %d", d.Spec, d.Runs, grid.Size()/len(specs))
		}
		if d.Passed+d.Faulted+d.Cancelled != d.Runs {
			t.Fatalf("detector %q counts do not partition: %+v", d.Spec, d)
		}
		runs += d.Runs
		passed += d.Passed
	}
	if runs != res.Runs || passed != res.Passed {
		t.Fatalf("per-detector sums %d/%d diverge from sweep totals %d/%d", runs, passed, res.Runs, res.Passed)
	}
	if !res.AllPassed() {
		t.Fatalf("crash-free cross-class sweep failed: %d of %d, first: %v", res.Faulted, res.Runs, firstViolation(res))
	}
}

// TestSweepDetectorAxisSeparatesClasses pins the class physics the axis
// exists to expose: with the initial leader crashed at time zero, the exact
// classes and stabilising ◇P still solve consensus, while ◇S — whose
// converged quorum emulation falls back to the fixed lowest-id majority,
// which contains the crashed process — loses termination on every point.
func TestSweepDetectorAxisSeparatesClasses(t *testing.T) {
	specs := detectorAxis()
	grid := Grid{
		Seeds:     []int64{51, 52},
		Detectors: specs,
	}
	base := New(5,
		WithCrash(0, 0),
		WithTimeout(time.Second),
	)
	res := Sweep(context.Background(), base, grid, Consensus{})
	want := map[string]int{
		specs[0].String(): 2, // omega-sigma: Σ completeness routes around the crash
		specs[1].String(): 2, // perfect: complement-Σ ditto
		specs[2].String(): 2, // ◇P: recovers once the prefix stabilises
		specs[3].String(): 0, // ◇S: fixed-majority fallback contains the crashed p0
	}
	for _, d := range res.Detectors {
		if d.Passed != want[d.Spec] {
			t.Fatalf("detector %q passed %d of %d, want %d (full table: %+v)",
				d.Spec, d.Passed, d.Runs, want[d.Spec], res.Detectors)
		}
	}
	if res.Faulted != 2 {
		t.Fatalf("Faulted = %d, want exactly the ◇S points", res.Faulted)
	}
}

// TestGridDetectorRowMajorLayout pins the expansion order with the detector
// axis in place: seeds outermost, then detectors, then delays, then crash
// schedules.
func TestGridDetectorRowMajorLayout(t *testing.T) {
	specA, specB := fd.DetectorSpec{Class: fd.ClassPerfect}, fd.MustParseSpec("eventually-perfect{stabilize:9}")
	grid := Grid{
		Seeds:     []int64{1, 2},
		Detectors: []fd.DetectorSpec{specA, specB},
		Delays:    []DelayRange{{0, 0}, {0, time.Millisecond}},
		Crashes:   [][]Crash{nil, {{P: 1, At: 0}}},
	}
	base := New(3).Config()
	if got, want := grid.Size(), 2*2*2*2; got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	for i := 0; i < grid.Size(); i++ {
		cfg := grid.ConfigAt(base, i)
		wantCrash := i % 2
		wantDelay := (i / 2) % 2
		wantDet := (i / 4) % 2
		wantSeed := i / 8
		if got := len(cfg.Crashes); got != wantCrash {
			t.Fatalf("index %d: %d crashes, want %d", i, got, wantCrash)
		}
		if (cfg.MaxDelay != 0) != (wantDelay == 1) {
			t.Fatalf("index %d: max delay %v, want slot %d", i, cfg.MaxDelay, wantDelay)
		}
		wantSpec := []fd.DetectorSpec{specA, specB}[wantDet]
		if cfg.Detector != wantSpec {
			t.Fatalf("index %d: detector %v, want %v", i, cfg.Detector, wantSpec)
		}
		if cfg.Seed != []int64{1, 2}[wantSeed] {
			t.Fatalf("index %d: seed %d, want %d", i, cfg.Seed, []int64{1, 2}[wantSeed])
		}
	}
}

// TestSweepDetectorAxisDeterministic extends the determinism family across
// the new axis: repeated sweeps of a detector grid yield byte-identical
// per-index fingerprints and identical per-spec aggregates. Identical
// proposals keep every point schedule-determined — during the ◇ classes'
// chaotic prefix each process trusts itself, so with distinct proposals the
// winning ballot (legitimately) depends on goroutine scheduling.
func TestSweepDetectorAxisDeterministic(t *testing.T) {
	grid := Grid{
		Seeds:     []int64{61, 62},
		Detectors: detectorAxis(),
		Workers:   4,
	}
	base := New(4)
	proto := Consensus{Proposals: []any{9, 9, 9, 9}}
	collect := func() (map[int]string, SweepResult) {
		fps := make(map[int]string)
		var mu sync.Mutex
		g := grid
		g.OnRun = func(i int, res *Result) {
			mu.Lock()
			fps[i] = res.Fingerprint()
			mu.Unlock()
		}
		res := Sweep(context.Background(), base, g, proto)
		return fps, res
	}
	fpsA, resA := collect()
	fpsB, resB := collect()
	if !resA.AllPassed() {
		t.Fatalf("detector sweep failed: %v", firstViolation(resA))
	}
	if len(fpsA) != grid.Size() || len(fpsB) != grid.Size() {
		t.Fatalf("fingerprint coverage %d/%d of %d", len(fpsA), len(fpsB), grid.Size())
	}
	for i, fp := range fpsA {
		if fpsB[i] != fp {
			t.Fatalf("fingerprint at grid index %d diverged across sweeps\n--- first ---\n%s\n--- second ---\n%s", i, fp, fpsB[i])
		}
	}
	for i := range resA.Detectors {
		if resA.Detectors[i] != resB.Detectors[i] {
			t.Fatalf("per-spec counts diverged: %+v vs %+v", resA.Detectors[i], resB.Detectors[i])
		}
	}
}

// TestFingerprintCarriesDetectorSpec: the canonical spec rendering is part of
// the run fingerprint, so cross-class sweep results stay distinguishable.
func TestFingerprintCarriesDetectorSpec(t *testing.T) {
	res := New(3, WithDetector(fd.MustParseSpec("perfect{suspect:4}"))).Run(context.Background(), Consensus{})
	if !res.Verdict.OK {
		t.Fatalf("perfect-class consensus failed: %v", res.Verdict)
	}
	if !strings.Contains(res.Fingerprint(), "det=perfect{suspect:4}") {
		t.Fatalf("fingerprint lacks the canonical spec:\n%s", res.Fingerprint())
	}
}

// TestProtocolsRefuseMissingDetectors: a class that cannot honestly provide a
// detector refuses the protocols that need it — the sweep-visible form of
// "◇P does not solve NBAC".
func TestProtocolsRefuseMissingDetectors(t *testing.T) {
	ctx := context.Background()
	spec := fd.MustParseSpec("eventually-perfect{stabilize:10}")
	for _, proto := range []Protocol{QC{}, NBAC{}, NBACQC{}} {
		res := New(3, WithDetector(spec)).Run(ctx, proto)
		if res.Verdict.OK {
			t.Fatalf("%s ran under %v, want a setup refusal", proto.Name(), spec)
		}
		if msg := strings.Join(res.Verdict.Violations, " "); !strings.Contains(msg, "provides no") {
			t.Fatalf("%s: violation does not name the missing detector: %v", proto.Name(), msg)
		}
	}
}

// TestConsensusUnderEachClass runs single scenarios (not a sweep) against
// every built-in class, crash-free: each must decide and pass the spec.
func TestConsensusUnderEachClass(t *testing.T) {
	ctx := context.Background()
	for _, spec := range detectorAxis() {
		res := New(4, WithDetector(spec)).Run(ctx, Consensus{})
		if !res.Verdict.OK {
			t.Fatalf("consensus under %v failed: %v", spec, res.Verdict)
		}
	}
}

// TestMinimizeZeroesIrrelevantDetectorSpec: detector perturbation that has
// nothing to do with the failure is removed in one zero-spec pass, and the
// surviving config carries the pristine class.
func TestMinimizeZeroesIrrelevantDetectorSpec(t *testing.T) {
	cfg := failingMajorityConfig()
	cfg.Detector = fd.MustParseSpec("omega-sigma{suspect:6,detect:11,switch:7}")
	min, err := Minimize(context.Background(), cfg, Consensus{Majority: true})
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if want := (fd.DetectorSpec{Class: "omega-sigma"}); min.Config.Detector != want {
		t.Fatalf("minimal spec = %+v, want zeroed %+v", min.Config.Detector, want)
	}
	if len(min.Config.Crashes) != 3 {
		t.Fatalf("minimal schedule has %d crashes, want 3", len(min.Config.Crashes))
	}
}
