// Failure minimisation: delta debugging over the schedule space.
//
// A sweep reports a failing grid point as a whole Config — seed, delay
// range, crash schedule, detector delays — most of which is usually
// irrelevant to the violation. Minimize greedily shrinks that config while
// the verdict still fails, which the virtual-time scheduler makes cheap:
// every candidate is a full cluster run, but a run costs no wall-clock
// waiting (only genuinely-failing liveness candidates pay their wall-clock
// timeout backstop).
package scenario

import (
	"context"
	"fmt"
	"time"

	"weakestfd/internal/journal"
	"weakestfd/internal/model"
)

// MinimizeResult is the outcome of a minimisation: the smallest
// configuration found that still reproduces (a failing verdict for Minimize,
// the reference schedule for MinimizeTrace), the reproducing run of that
// configuration, and its byte-stable fingerprints for deduplicating
// reproducers across sweeps.
type MinimizeResult struct {
	// Config is the minimal reproducing configuration.
	Config Config
	// Result is the reproducing run of Config (Result.Config == Config).
	Result Result
	// Fingerprint is Result.Fingerprint(): byte-identical across repeated
	// minimisations of a schedule-determined failure.
	Fingerprint string
	// TraceFingerprint is Result.TraceFingerprint — under MinimizeTrace it
	// equals the reference run's by construction; under Minimize it is
	// whatever schedule the minimal failing run took (empty in free-running
	// mode and for tainted timeout runs).
	TraceFingerprint string
	// Candidates is how many candidate runs were executed, including the
	// initial reproduction.
	Candidates int
}

// Minimize shrinks a failing configuration to a minimal reproducer: it
// greedily drops crash-schedule entries, rounds the surviving crash times
// down (to zero, then to coarser units, then by halving), collapses the
// delay range, zeroes the drop rate, tries removing the detector
// perturbation entirely (the zero-quality spec of the same class) and only
// then bisects the surviving detector quality parameters — each
// step kept only while the verdict still fails — until a fixpoint. This is
// delta debugging over the schedule space: every candidate is one cheap
// virtual-time run of proto.
//
// Minimize returns an error if cfg does not fail to begin with, or if ctx is
// cancelled mid-search (the best reproducer found so far is still returned).
// The search is deterministic for a deterministic protocol: same input, same
// minimal config, same fingerprint.
func Minimize(ctx context.Context, cfg Config, proto Protocol) (MinimizeResult, error) {
	return minimize(ctx, cfg, proto, false)
}

// MinimizeTrace shrinks a configuration to a minimal one reproducing the
// same schedule, not merely the same verdict: the reference run's
// TraceFingerprint is recorded and a candidate is accepted only if its own
// trace digest is byte-identical. The passes are the same as Minimize's, so
// what survives is exactly the configuration content the schedule depends on
// — a crash scheduled after the trace ends drops out, a detector parameter
// the schedule never consults bisects away, while anything that perturbs a
// single delivery or grant is pinned. It requires step mode (the ablation
// has no trace to hold fixed) and an untainted reference run.
//
// When cfg journals the full record stream (Config.Journal == JournalAll),
// acceptance widens from fingerprint equality to journal-prefix containment:
// a candidate whose whole record stream is an exact prefix of the reference
// stream is accepted too. The digest alone cannot express "same schedule,
// stopped earlier" — only the stored records can — so this is how a timeout
// parameter or a crash scheduled just before the reference trace's end
// shrinks away without perturbing a single retained record.
func MinimizeTrace(ctx context.Context, cfg Config, proto Protocol) (MinimizeResult, error) {
	return minimize(ctx, cfg, proto, true)
}

func minimize(ctx context.Context, cfg Config, proto Protocol, sameTrace bool) (MinimizeResult, error) {
	m := &minimizer{ctx: ctx, proto: proto, memo: map[string]*memoEntry{}}
	cur := FromConfig(cfg).Config() // private copy of the crash schedule

	// Reference run. In trace mode it defines the acceptance target, so it
	// runs before the predicate can exist; either way it seeds the memo.
	ref := FromConfig(cur).Run(ctx, proto)
	m.candidates++
	if sameTrace {
		if ref.TraceFingerprint == "" {
			m.memo[minimizeKey(cur)] = &memoEntry{res: ref}
			return MinimizeResult{Config: cur, Result: ref, Candidates: m.candidates},
				fmt.Errorf("minimize: reference run produced no trace fingerprint (free-running ablation, or a timeout-tainted run)")
		}
		want := ref.TraceFingerprint
		if refJ := ref.Journal; refJ != nil && refJ.Complete() {
			// Full-stream journaling is on: accept byte-identical schedules
			// and exact schedule prefixes (see the MinimizeTrace doc).
			m.accept = func(r *Result) bool {
				return r.TraceFingerprint == want ||
					(r.Journal != nil && journal.IsPrefix(refJ, r.Journal))
			}
		} else {
			m.accept = func(r *Result) bool { return r.TraceFingerprint == want }
		}
	} else {
		m.accept = func(r *Result) bool { return !r.Verdict.OK }
	}
	accepted := m.accept(&ref) && ctx.Err() == nil
	m.memo[minimizeKey(cur)] = &memoEntry{res: ref, ok: accepted}
	if !accepted {
		if err := ctx.Err(); err != nil {
			return MinimizeResult{Candidates: m.candidates}, fmt.Errorf("minimize: cancelled before reproducing: %w", err)
		}
		return MinimizeResult{Config: cur, Result: ref, Candidates: m.candidates},
			fmt.Errorf("minimize: configuration does not fail (verdict: %v)", ref.Verdict)
	}
	best := ref

	for changed := true; changed; {
		changed = false
		if ctx.Err() != nil {
			break
		}

		// Drop crash-schedule entries one at a time (each drop re-tries the
		// shrunk schedule, so a run of removable entries goes in one pass).
		for i := 0; i < len(cur.Crashes); {
			cand := cur
			cand.Crashes = append(append([]Crash(nil), cur.Crashes[:i]...), cur.Crashes[i+1:]...)
			if r, ok := m.fails(cand); ok {
				cur, best, changed = cand, r, true
			} else {
				i++
			}
		}

		// Round the surviving crash times down: to zero if the failure
		// survives it, else to coarser units, else by halving.
		for i := range cur.Crashes {
			at := cur.Crashes[i].At
			for _, v := range roundedDown(at) {
				cand := cur
				cand.Crashes = append([]Crash(nil), cur.Crashes...)
				cand.Crashes[i].At = v
				if r, ok := m.fails(cand); ok {
					cur, best, changed = cand, r, true
					break
				}
			}
		}

		// Collapse the delay range: to the degenerate [0, 0] point if
		// possible, else to the deterministic [Min, Min] point.
		if cur.MinDelay != 0 || cur.MaxDelay != 0 {
			cand := cur
			cand.MinDelay, cand.MaxDelay = 0, 0
			if r, ok := m.fails(cand); ok {
				cur, best, changed = cand, r, true
			} else if cur.MaxDelay > cur.MinDelay {
				cand = cur
				cand.MaxDelay = cur.MinDelay
				if r, ok := m.fails(cand); ok {
					cur, best, changed = cand, r, true
				}
			}
		}

		// Reliable links reproduce more failures than one would expect.
		if cur.DropRate > 0 {
			cand := cur
			cand.DropRate = 0
			if r, ok := m.fails(cand); ok {
				cur, best, changed = cand, r, true
			}
		}

		// Remove the detector perturbation entirely first: one run with the
		// zero-quality spec (same class, every delay parameter reset) often
		// replaces a whole sequence of per-parameter bisections.
		if cur.Detector != cur.Detector.Zeroed() {
			cand := cur
			cand.Detector = cur.Detector.Zeroed()
			if r, ok := m.fails(cand); ok {
				cur, best, changed = cand, r, true
			}
		}

		// Bisect the surviving detector quality parameters toward zero
		// (logical ticks, so the search space is small and the probes are
		// cheap). The parameter list comes from the spec itself, so new
		// quality dimensions join the shrink automatically.
		for dim := range cur.Detector.TimeParams() {
			orig := *cur.Detector.TimeParams()[dim]
			if orig == 0 {
				continue
			}
			v, r, ok := m.bisectTime(orig, func(t model.Time) Config {
				cand := cur
				*cand.Detector.TimeParams()[dim] = t
				return cand
			})
			if ok && v < orig {
				cand := cur
				*cand.Detector.TimeParams()[dim] = v
				cur, best, changed = cand, r, true
			}
		}
	}

	out := MinimizeResult{
		Config:           cur,
		Result:           best,
		Fingerprint:      best.Fingerprint(),
		TraceFingerprint: best.TraceFingerprint,
		Candidates:       m.candidates,
	}
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("minimize: cancelled mid-search: %w", err)
	}
	return out, nil
}

// minimizer carries the shared state of one minimisation: the acceptance
// predicate (failing verdict, or trace-fingerprint equality), the run memo
// (bisection and fixpoint passes revisit configurations) and the candidate
// counter.
type minimizer struct {
	ctx        context.Context
	proto      Protocol
	accept     func(*Result) bool
	memo       map[string]*memoEntry
	candidates int
}

// memoEntry is one memoised candidate run. The full Result is kept even for
// rejected candidates: trace-mode passes compare fingerprints of runs the
// verdict mode would have discarded, and diagnostics want the near-misses.
type memoEntry struct {
	res Result
	ok  bool
}

// fails runs the candidate (or recalls it from the memo) and reports whether
// the acceptance predicate held. Acceptance observed after the minimizer's
// context was cancelled is discounted — it is the cancellation echoing
// through the run's timeout backstop, the same distinction Sweep draws for
// its Cancelled count.
func (m *minimizer) fails(cfg Config) (Result, bool) {
	key := minimizeKey(cfg)
	if e, ok := m.memo[key]; ok {
		return e.res, e.ok
	}
	if m.ctx.Err() != nil {
		return Result{}, false
	}
	res := FromConfig(cfg).Run(m.ctx, m.proto)
	m.candidates++
	ok := m.accept(&res) && m.ctx.Err() == nil
	m.memo[key] = &memoEntry{res: res, ok: ok}
	return res, ok
}

// bisectTime finds the smallest logical-tick value in [0, orig] whose
// candidate still fails, assuming apply(orig) fails (it is the current
// config) and failure is monotone in the value. Returns ok=false if even
// apply(orig) stopped failing under the memo's view (cancellation).
func (m *minimizer) bisectTime(orig model.Time, apply func(model.Time) Config) (model.Time, Result, bool) {
	if r, ok := m.fails(apply(0)); ok {
		return 0, r, true
	}
	lo, hi := model.Time(0), orig // lo passes, hi fails
	var hiRes Result
	hiOK := false
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if r, ok := m.fails(apply(mid)); ok {
			hi, hiRes, hiOK = mid, r, true
		} else {
			lo = mid
		}
	}
	if !hiOK {
		hiRes, hiOK = m.fails(apply(hi))
	}
	return hi, hiRes, hiOK
}

// roundedDown lists the shrink candidates for a crash time, most aggressive
// first: zero, truncation to coarser units, halving. Values that do not
// strictly shrink are omitted.
func roundedDown(at time.Duration) []time.Duration {
	var out []time.Duration
	seen := map[time.Duration]bool{at: true}
	for _, v := range []time.Duration{
		0,
		at.Truncate(time.Millisecond),
		at.Truncate(100 * time.Microsecond),
		at / 2,
	} {
		if v < at && !seen[v] {
			out = append(out, v)
			seen[v] = true
		}
	}
	return out
}

// minimizeKey renders the dimensions Minimize mutates canonically, for the
// verdict memo. The detector is identified by its canonical spec fingerprint
// (DetectorSpec.String), so the zero-spec pass and the per-parameter
// bisections share memo entries whenever they land on the same spec. Crash
// order is preserved: schedule order breaks (at, seq) ties in the event
// queue, so it is part of the configuration's identity.
func minimizeKey(cfg Config) string {
	return fmt.Sprintf("%v|%v|%v|%g|%s|%v",
		cfg.Crashes, cfg.MinDelay, cfg.MaxDelay, cfg.DropRate, cfg.Detector, cfg.Timeout)
}
