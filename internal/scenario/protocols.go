package scenario

import (
	"context"
	"fmt"
	"sync"

	"weakestfd/internal/check"
	"weakestfd/internal/consensus"
	"weakestfd/internal/fd"
	"weakestfd/internal/model"
	"weakestfd/internal/nbac"
	"weakestfd/internal/qc"
	"weakestfd/internal/register"
)

// Runner is the common run interface of protocol participants: one
// single-shot execution with a per-process input, returning that process's
// outcome. consensus.BallotConsensus, consensus.RegisterConsensus,
// qc.PsiQC, nbac.QCNBAC, nbac.NBACQC, nbac.TwoPC and register.Register all
// satisfy it.
type Runner interface {
	Run(ctx context.Context, input any) (any, error)
}

// Statically require the protocol packages to satisfy Runner.
var (
	_ Runner = (*consensus.BallotConsensus)(nil)
	_ Runner = (*consensus.RegisterConsensus)(nil)
	_ Runner = (*qc.PsiQC)(nil)
	_ Runner = (*nbac.QCNBAC)(nil)
	_ Runner = (*nbac.NBACQC)(nil)
	_ Runner = (*nbac.TwoPC)(nil)
	_ Runner = (*register.Register[int])(nil)
)

// Instance is a wired run of a protocol on a cluster: one Runner and input
// per process (nil Runner = the process takes no step), the spec checker for
// the outcomes they produce, and the teardown hook.
type Instance struct {
	Runners []Runner
	Inputs  []any
	Check   func(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict
	Stop    func()
}

// Protocol is a protocol family that can be stood up on a scenario's
// cluster. Implementations must be reusable: Setup is called once per run,
// possibly concurrently from sweep workers, and must put all per-run state
// into the returned Instance.
type Protocol interface {
	// Name labels the protocol in results.
	Name() string
	// Setup wires one participant per process onto the cluster.
	Setup(cl *Cluster) (*Instance, error)
}

// ---- consensus ----

// Consensus runs single-shot consensus: the (Ω, Σ) ballot protocol by
// default, the Ω-plus-majority baseline with Majority, or the paper's
// register route (Σ-registers plus Ω) with Registers.
type Consensus struct {
	// Majority uses plain majority quorums instead of Σ (the regime of [4]:
	// liveness is lost once a majority has crashed).
	Majority bool
	// Registers takes the register-based route of Corollary 2 instead of
	// the message-passing ballot protocol.
	Registers bool
	// Proposals overrides the per-process proposals (default: process i
	// proposes i).
	Proposals []any
	// Options is forwarded to the ballot participants.
	Options []consensus.Option
}

// Name implements Protocol.
func (c Consensus) Name() string {
	switch {
	case c.Registers:
		return "consensus/registers"
	case c.Majority:
		return "consensus/majority"
	default:
		return "consensus/omega-sigma"
	}
}

// Setup implements Protocol.
func (c Consensus) Setup(cl *Cluster) (*Instance, error) {
	if c.Registers && c.Majority {
		return nil, fmt.Errorf("consensus: Registers and Majority are mutually exclusive")
	}
	n := cl.Net.N()
	omega, err := cl.NeedOmega()
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check:   checkConsensusOutcomes,
	}
	for i := 0; i < n; i++ {
		if i < len(c.Proposals) {
			inst.Inputs[i] = c.Proposals[i]
		} else {
			inst.Inputs[i] = i
		}
	}
	switch {
	case c.Registers:
		sigma, err := cl.NeedSigma()
		if err != nil {
			return nil, err
		}
		g := consensus.NewRegisterConsensusGroup(cl.Net, cl.Instance, omega, sigma)
		for i, p := range g.Participants {
			inst.Runners[i] = p
		}
		inst.Stop = g.Stop
	case c.Majority:
		g := consensus.NewOmegaMajorityGroup(cl.Net, cl.Instance, omega, c.Options...)
		for i, p := range g {
			inst.Runners[i] = p
		}
		inst.Stop = g.Stop
	default:
		sigma, err := cl.NeedSigma()
		if err != nil {
			return nil, err
		}
		g := consensus.NewOmegaSigmaGroup(cl.Net, cl.Instance, omega, sigma, c.Options...)
		for i, p := range g {
			inst.Runners[i] = p
		}
		inst.Stop = g.Stop
	}
	return inst, nil
}

func checkConsensusOutcomes(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict {
	o := check.ConsensusOutcome{Proposals: map[model.ProcessID]any{}}
	for _, out := range outs {
		o.Proposals[out.Process] = out.Input
		if out.Returned {
			o.Decisions = append(o.Decisions, check.Decision{Process: out.Process, Value: out.Value, Time: out.End})
		}
	}
	return check.CheckConsensus(f, o, requireTermination)
}

// ---- quittable consensus ----

// QC runs single-shot quittable consensus from Ψ (Figure 2).
type QC struct {
	// Proposals overrides the per-process proposals (default: process i
	// proposes i).
	Proposals []any
	// Options is forwarded to the participants.
	Options []qc.Option
}

// Name implements Protocol.
func (QC) Name() string { return "qc/psi" }

// Setup implements Protocol.
func (q QC) Setup(cl *Cluster) (*Instance, error) {
	n := cl.Net.N()
	psi, err := cl.NeedPsi()
	if err != nil {
		return nil, err
	}
	g := qc.NewPsiGroup(cl.Net, cl.Instance, psi, q.Options...)
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check:   checkQCOutcomes,
		Stop:    g.Stop,
	}
	for i := 0; i < n; i++ {
		inst.Runners[i] = g[i]
		if i < len(q.Proposals) {
			inst.Inputs[i] = q.Proposals[i]
		} else {
			inst.Inputs[i] = i
		}
	}
	return inst, nil
}

func checkQCOutcomes(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict {
	o := check.QCOutcome{Proposals: map[model.ProcessID]any{}}
	for _, out := range outs {
		o.Proposals[out.Process] = out.Input
		if !out.Returned {
			continue
		}
		d, ok := out.Value.(qc.Decision)
		if !ok {
			return model.Fail("qc scenario: %v returned %T, want qc.Decision", out.Process, out.Value)
		}
		o.Decisions = append(o.Decisions, check.Decision{
			Process: out.Process,
			Value:   check.QCDecision{Quit: d.Quit, Value: d.Value},
			Time:    out.End,
		})
	}
	return check.CheckQC(f, o, requireTermination)
}

// ---- non-blocking atomic commit ----

// NBAC runs single-shot non-blocking atomic commit through the stack of
// Corollary 10: Ψ-based QC wrapped by the Figure 4 transformation with FS.
type NBAC struct {
	// Votes overrides the per-process votes (default: everyone votes Yes).
	Votes []nbac.Vote
	// Options is forwarded to the participants.
	Options []nbac.Option
}

// Name implements Protocol.
func (NBAC) Name() string { return "nbac/psi-fs" }

// Setup implements Protocol.
func (a NBAC) Setup(cl *Cluster) (*Instance, error) {
	n := cl.Net.N()
	psi, err := cl.NeedPsi()
	if err != nil {
		return nil, err
	}
	fs, err := cl.NeedFS()
	if err != nil {
		return nil, err
	}
	g := nbac.NewPsiFSGroup(cl.Net, cl.Instance, psi, fs, a.Options...)
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check:   checkNBACOutcomes,
		Stop:    g.Stop,
	}
	for i := 0; i < n; i++ {
		inst.Runners[i] = g.Participants[i]
		vote := nbac.VoteYes
		if i < len(a.Votes) {
			vote = a.Votes[i]
		}
		inst.Inputs[i] = vote
	}
	return inst, nil
}

func checkNBACOutcomes(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict {
	o := check.NBACOutcome{Votes: map[model.ProcessID]check.Vote{}}
	for _, out := range outs {
		if v, ok := out.Input.(nbac.Vote); ok {
			o.Votes[out.Process] = check.Vote(v)
		}
		if !out.Returned {
			continue
		}
		oc, ok := out.Value.(nbac.Outcome)
		if !ok {
			return model.Fail("nbac scenario: %v returned %T, want nbac.Outcome", out.Process, out.Value)
		}
		o.Decisions = append(o.Decisions, check.Decision{Process: out.Process, Value: bool(oc), Time: out.End})
	}
	return check.CheckNBAC(f, o, requireTermination)
}

// ---- blocking two-phase commit (baseline) ----

// TwoPC runs the classical blocking two-phase commit — the baseline the
// paper's NBAC stack is contrasted with. It satisfies the agreement and
// validity clauses of atomic commit but not non-blocking termination: a
// single inconvenient crash blocks every other process until the run's
// timeout, so crashy sweep grids should combine it with WithSafetyOnly.
type TwoPC struct {
	// Coordinator is the fixed coordinator process (default 0).
	Coordinator model.ProcessID
	// Votes overrides the per-process votes (default: everyone votes Yes).
	Votes []nbac.Vote
	// Options is forwarded to the participants.
	Options []nbac.Option
}

// Name implements Protocol.
func (TwoPC) Name() string { return "nbac/twopc" }

// Setup implements Protocol.
func (t TwoPC) Setup(cl *Cluster) (*Instance, error) {
	n := cl.Net.N()
	if int(t.Coordinator) < 0 || int(t.Coordinator) >= n {
		return nil, fmt.Errorf("twopc: coordinator %v out of range 0..%d", t.Coordinator, n-1)
	}
	g := nbac.NewTwoPCGroup(cl.Net, cl.Instance, t.Coordinator, t.Options...)
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check:   checkNBACOutcomes,
	}
	for i := 0; i < n; i++ {
		inst.Runners[i] = g[i]
		vote := nbac.VoteYes
		if i < len(t.Votes) {
			vote = t.Votes[i]
		}
		inst.Inputs[i] = vote
	}
	return inst, nil
}

// ---- quittable consensus from NBAC (Figure 5) ----

// NBACQC runs quittable consensus obtained from an NBAC protocol by the
// Figure 5 transformation, stacked on the (Ψ, FS)-based NBAC of Corollary
// 10 — the QC → NBAC → QC round trip of Theorem 8, as a sweepable workload.
// Proposals must be ints (Figure 5 decides the smallest proposal received).
type NBACQC struct {
	// Proposals overrides the per-process proposals (default: process i
	// proposes i). Every entry must be an int.
	Proposals []any
	// Options is forwarded to the participants.
	Options []nbac.Option
}

// Name implements Protocol.
func (NBACQC) Name() string { return "qc/from-nbac" }

// Setup implements Protocol.
func (q NBACQC) Setup(cl *Cluster) (*Instance, error) {
	n := cl.Net.N()
	psi, err := cl.NeedPsi()
	if err != nil {
		return nil, err
	}
	fs, err := cl.NeedFS()
	if err != nil {
		return nil, err
	}
	g := nbac.NewQCFromNBACGroup(cl.Net, cl.Instance, psi, fs, q.Options...)
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check:   checkQCOutcomes,
		Stop:    g.Stop,
	}
	for i := 0; i < n; i++ {
		inst.Runners[i] = g.Participants[i]
		if i < len(q.Proposals) {
			inst.Inputs[i] = q.Proposals[i]
		} else {
			inst.Inputs[i] = i
		}
	}
	return inst, nil
}

// ---- multi-instance consensus ----

// MultiConsensus runs Rounds independent consensus instances back to back on
// one cluster — the amortised workload: network, oracles and participants
// are stood up once, then reused, so per-decision cost approaches the
// protocol's own round-trip instead of being dominated by cluster setup.
// Process i proposes a distinct value derived from (round, i) in every
// round; each round is checked against the consensus spec independently.
type MultiConsensus struct {
	// Rounds is the number of instances (default 1).
	Rounds int
	// Majority uses the Ω-plus-majority baseline instead of (Ω, Σ).
	Majority bool
	// Options is forwarded to every round's participants.
	Options []consensus.Option
}

// Name implements Protocol.
func (m MultiConsensus) Name() string {
	if m.Majority {
		return "consensus/multi-majority"
	}
	return "consensus/multi"
}

func (m MultiConsensus) rounds() int { return max(1, m.Rounds) }

// multiProposal is the value process p proposes in round r: injective over
// (round, process) so cross-round value leakage shows up as a validity
// violation, not a silent coincidence.
func multiProposal(r, p int) int { return r*1_000_003 + p }

// Setup implements Protocol.
func (m MultiConsensus) Setup(cl *Cluster) (*Instance, error) {
	n := cl.Net.N()
	k := m.rounds()
	omega, err := cl.NeedOmega()
	if err != nil {
		return nil, err
	}
	var sigma fd.SigmaSource
	if !m.Majority {
		if sigma, err = cl.NeedSigma(); err != nil {
			return nil, err
		}
	}
	groups := make([]consensus.Group, k)
	for r := range groups {
		name := fmt.Sprintf("%s.mc%d", cl.Instance, r)
		if m.Majority {
			groups[r] = consensus.NewOmegaMajorityGroup(cl.Net, name, omega, m.Options...)
		} else {
			groups[r] = consensus.NewOmegaSigmaGroup(cl.Net, name, omega, sigma, m.Options...)
		}
	}
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check:   m.check,
		Stop: func() {
			for _, g := range groups {
				g.Stop()
			}
		},
	}
	for i := 0; i < n; i++ {
		inst.Runners[i] = &multiConsensusRunner{groups: groups, idx: i, clock: cl.Net.Clock()}
		inst.Inputs[i] = i
	}
	return inst, nil
}

// RoundDecision is one round's decision within a multi-instance workload, as
// returned (in a slice, one entry per completed round) by every
// MultiConsensus participant.
type RoundDecision struct {
	Round int
	Value any
	Time  model.Time
}

// String renders the decision without its logical timestamp: tick counts are
// scheduling-dependent even for a fixed seed, and this rendering is what
// reaches Result.Fingerprint through Outcome.Value — the byte-stable part
// must stay byte-stable. The Time field itself remains available to the
// spec checker.
func (d RoundDecision) String() string { return fmt.Sprintf("r%d=%v", d.Round, d.Value) }

func (m MultiConsensus) check(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict {
	k := m.rounds()
	o := check.MultiConsensusOutcome{
		Rounds:    k,
		Proposals: make([]map[model.ProcessID]any, k),
		Decisions: make([][]check.Decision, k),
	}
	for r := 0; r < k; r++ {
		o.Proposals[r] = map[model.ProcessID]any{}
	}
	for _, out := range outs {
		base, ok := out.Input.(int)
		if !ok {
			continue // the process took no step
		}
		for r := 0; r < k; r++ {
			o.Proposals[r][out.Process] = multiProposal(r, base)
		}
		if !out.Returned {
			continue
		}
		ds, ok := out.Value.([]RoundDecision)
		if !ok {
			return model.Fail("multiconsensus scenario: %v returned %T, want []RoundDecision", out.Process, out.Value)
		}
		for _, d := range ds {
			if d.Round < 0 || d.Round >= k {
				return model.Fail("multiconsensus scenario: %v decided in round %d of %d", out.Process, d.Round, k)
			}
			o.Decisions[d.Round] = append(o.Decisions[d.Round], check.Decision{Process: out.Process, Value: d.Value, Time: d.Time})
		}
	}
	return check.CheckMultiConsensus(f, o, requireTermination)
}

// multiConsensusRunner drives one process through every round sequentially;
// rounds are independent instances, so a process enters round r+1 as soon as
// it decides round r, without waiting for laggards.
type multiConsensusRunner struct {
	groups []consensus.Group
	idx    int
	clock  interface{ Now() model.Time }
}

// Run implements Runner.
func (m *multiConsensusRunner) Run(ctx context.Context, input any) (any, error) {
	base, ok := input.(int)
	if !ok {
		return nil, fmt.Errorf("multiconsensus: input has type %T, want int", input)
	}
	decisions := make([]RoundDecision, 0, len(m.groups))
	for r, g := range m.groups {
		v, err := g[m.idx].Run(ctx, multiProposal(r, base))
		if err != nil {
			return nil, fmt.Errorf("multiconsensus round %d: %w", r, err)
		}
		decisions = append(decisions, RoundDecision{Round: r, Value: v, Time: m.clock.Now()})
	}
	return decisions, nil
}

// ---- atomic registers ----

// Registers runs the replicated-register protocol: each process performs one
// write of its value followed by one read, and the whole operation history
// is checked for linearizability. Σ-based quorums by default (Theorem 1),
// plain majorities with Majority.
type Registers struct {
	// Majority uses the classical ABD majority guard instead of Σ.
	Majority bool
	// Values overrides the per-process written values (default: process i
	// writes i+1; zero is the register's initial value).
	Values []int
	// Options is forwarded to the replicas.
	Options []register.Option
}

// Name implements Protocol.
func (r Registers) Name() string {
	if r.Majority {
		return "register/majority"
	}
	return "register/sigma"
}

// Setup implements Protocol.
func (r Registers) Setup(cl *Cluster) (*Instance, error) {
	n := cl.Net.N()
	var g register.Group[int]
	if r.Majority {
		g = register.NewMajorityGroup[int](cl.Net, cl.Instance, r.Options...)
	} else {
		sigma, err := cl.NeedSigma()
		if err != nil {
			return nil, err
		}
		g = register.NewSigmaGroup[int](cl.Net, cl.Instance, sigma, r.Options...)
	}
	rec := &opRecorder{clock: cl.Net.Clock()}
	inst := &Instance{
		Runners: make([]Runner, n),
		Inputs:  make([]any, n),
		Check: func(f *model.FailurePattern, outs []Outcome, requireTermination bool) model.Verdict {
			return check.CheckRegister(f, check.RegisterOutcome{Ops: rec.snapshot(), Initial: 0}, requireTermination)
		},
		Stop: g.Stop,
	}
	for i := 0; i < n; i++ {
		val := i + 1
		if i < len(r.Values) {
			val = r.Values[i]
		}
		inst.Runners[i] = &registerRunner{reg: g[i], rec: rec}
		inst.Inputs[i] = val
	}
	return inst, nil
}

// opRecorder collects the operation history of a register run for the
// linearizability check.
type opRecorder struct {
	clock interface{ Now() model.Time }
	mu    sync.Mutex
	ops   []check.Op
}

func (r *opRecorder) record(p model.ProcessID, kind check.OpKind, invoke func() (int, error)) (int, error) {
	start := r.clock.Now()
	v, err := invoke()
	end := r.clock.Now()
	r.mu.Lock()
	r.ops = append(r.ops, check.Op{
		Process:  p,
		Kind:     kind,
		Value:    v,
		Start:    start,
		End:      end,
		Complete: err == nil,
	})
	r.mu.Unlock()
	return v, err
}

func (r *opRecorder) snapshot() []check.Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]check.Op(nil), r.ops...)
}

// registerRunner is one process's scenario step on a register group: a
// recorded write of the input followed by a recorded read, so the run's full
// history feeds the atomicity checker.
type registerRunner struct {
	reg *register.Register[int]
	rec *opRecorder
}

// Run implements Runner.
func (r *registerRunner) Run(ctx context.Context, input any) (any, error) {
	val, ok := input.(int)
	if !ok {
		return nil, fmt.Errorf("register scenario: input has type %T, want int", input)
	}
	p := r.reg.Endpoint().ID()
	if _, err := r.rec.record(p, check.OpWrite, func() (int, error) {
		return val, r.reg.Write(ctx, val)
	}); err != nil {
		return nil, err
	}
	return r.rec.record(p, check.OpRead, func() (int, error) {
		return r.reg.Read(ctx)
	})
}
