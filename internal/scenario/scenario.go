// Package scenario is the declarative harness that stands up a whole cluster
// in one call: network, fault schedule, detector family, protocol
// participants and spec checking. The paper's results are statements over
// *all* failure patterns and schedules; this package is the API for
// quantifying over them executably — a Scenario describes one point of that
// space (seed, delay distribution, drop rate, crash schedule, detector
// delays), Run executes a protocol on it under the virtual-time scheduler
// and feeds the outcomes straight into internal/check, and Sweep fans a
// seed × delay × crash-timing grid across worker goroutines.
//
// A run costs zero wall-clock waiting: every protocol pause (poll intervals,
// backoffs, inter-instance spacing) and every injected delay rides the
// virtual clock of internal/net, and scheduled crashes are events on the
// same queue, ordered against deliveries by (time, seq) like everything
// else. Millions of adversarial schedules are a loop, not a cluster.
//
//	res := scenario.New(5,
//	    scenario.WithSeed(7),
//	    scenario.WithDelays(time.Millisecond, 20*time.Millisecond),
//	    scenario.WithCrash(0, 5*time.Millisecond),
//	).Run(ctx, scenario.Consensus{})
//	if !res.Verdict.OK { ... }
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"weakestfd/internal/fd"
	_ "weakestfd/internal/fdimpl" // registers the message-passing "heartbeat" detector class
	"weakestfd/internal/journal"
	"weakestfd/internal/model"
	"weakestfd/internal/net"
	"weakestfd/internal/probe"
	"weakestfd/internal/trace"
)

// Crash is one entry of a scenario's fault schedule: process P crashes once
// the network's virtual clock reaches At. The crash is executed by the
// event dispatcher itself, so for a fixed seed it is ordered against message
// deliveries deterministically.
type Crash struct {
	P  model.ProcessID
	At time.Duration
}

// Config is the complete description of one scenario. Build it with New and
// the With* options; the zero values of individual fields match the
// defaults of internal/net (seed 1, delays [0, 200µs], reliable links, no
// crashes, exact oracles).
type Config struct {
	// N is the number of processes.
	N int
	// Seed drives both the delay and the drop RNG streams.
	Seed int64
	// MinDelay and MaxDelay bound the per-message delivery delay.
	MinDelay, MaxDelay time.Duration
	// DropRate is the per-message drop probability (0 = reliable links; the
	// paper's model). A lossy run may legitimately lose liveness, so
	// combining DropRate > 0 with RequireTermination is usually wrong.
	DropRate float64
	// Crashes is the fault schedule, in virtual time.
	Crashes []Crash
	// Detector is the declarative detector specification: a registry class
	// ("omega-sigma", "perfect", "eventually-perfect", "eventually-strong",
	// or anything registered on fd.DefaultRegistry) plus quality parameters.
	// The zero value is the exact paper family.
	Detector fd.DetectorSpec
	// RequireTermination makes the spec check enforce that every correct
	// process returns. New sets it; WithSafetyOnly clears it.
	RequireTermination bool
	// Timeout bounds the run in wall-clock time (a liveness backstop; the
	// run itself never waits out virtual delays). New sets 30s.
	Timeout time.Duration
	// SerialBroadcast routes every broadcast through the serial
	// per-recipient enqueue path instead of the batched one
	// (net.WithSerialBroadcast). The two paths are contractually
	// schedule-identical — same RNG draws, same (time, seq) slots — so this
	// is an ablation and verification toggle, not a behaviour axis, and it
	// is deliberately excluded from both Key and Result.Fingerprint: a
	// config and its serial twin are the same point of the schedule space,
	// and the determinism tests compare their fingerprints byte-for-byte.
	SerialBroadcast bool
	// HistoryLimit caps the run's suspect-list sample history (a
	// model.History ring of the most recent samples, recorded through
	// fd.Bind for detector classes with a suspect view). New sets
	// DefaultHistoryLimit; 0 or negative disables recording. The retained
	// depth is surfaced as Result.HistoryDepth — bounded detector-activity
	// signal, not a checker input.
	HistoryLimit int
	// FreeRunning runs the network under the free-running ablation
	// (net.WithFreeRunning) instead of the default goroutine-step scheduler.
	// Outcome-level behaviour (Verdict, Fingerprint) is contractually
	// identical either way — only the step scheduler additionally pins the
	// full schedule, so Result.TraceFingerprint is empty under the ablation.
	// Like SerialBroadcast it is an ablation toggle, not a behaviour axis,
	// and is deliberately excluded from Key and Result.Fingerprint. The
	// environment variable WEAKESTFD_FREE_RUNNING=1 forces the ablation for
	// every run of the process (the CI outcome-compatibility step uses it).
	FreeRunning bool
	// Journal selects trace journaling: 0 (the default) captures nothing,
	// JournalAll captures the run's full record stream into Result.Journal,
	// and k > 0 ring-buffers the last k records (cheap always-on capture
	// that yields a suffix journal once it wraps). Journal bytes are
	// trace-tier: a pure function of (seed, config) in step mode. Capture is
	// observe-only — a journaled run keeps the TraceFingerprint of its
	// unjournaled twin — so, like the ablation toggles, Journal is
	// deliberately excluded from Key and Result.Fingerprint. Free-running
	// runs have no step trace and refuse journaling (the run fails with a
	// setup verdict rather than producing an empty journal).
	Journal int
	// Probes attaches the streaming probe analyzer (internal/probe) to the
	// run's step-trace stream and publishes its fold as Result.Probes: log-
	// bucketed virtual-time histograms, per-process grant/delivery vectors,
	// decision depth and failure-detection latency. Probes are trace-tier —
	// a pure function of (seed, config) in step mode — and observe-only (a
	// probed run keeps the TraceFingerprint of its unprobed twin), so like
	// Journal the flag is deliberately excluded from Key and
	// Result.Fingerprint. Free-running runs have no step trace and refuse
	// probes the same way they refuse journaling. Journaled runs compute
	// probes implicitly, so every journal carries its live capture for
	// replay -stats to recompute against.
	Probes bool
	// Recorder, when non-nil, is attached to the run's step-trace stream
	// (net.WithTraceRecorder) alongside any Journal capture. It is how
	// Replay wires its record-by-record checker into a run; programmatic
	// observers can use it directly. Never serialized, never part of the
	// config's identity.
	Recorder net.TraceRecorder `json:"-"`
}

// JournalAll selects full-stream journaling (Config.Journal).
const JournalAll = journal.KeepAll

// envFreeRunning forces the free-running ablation process-wide; see
// Config.FreeRunning.
var envFreeRunning = os.Getenv("WEAKESTFD_FREE_RUNNING") == "1"

// DefaultHistoryLimit is the suspect-history ring cap New configures: deep
// enough to characterise a run's detector activity, shallow enough that a
// million-run sweep pays O(cap) per run, not O(queries).
const DefaultHistoryLimit = 256

// Clone returns a deep copy of the configuration (the crash schedule is the
// only reference field). It is the mutation hook exploration loops start
// from: mutate the clone, the original stays intact.
func (c Config) Clone() Config {
	c.Crashes = append([]Crash(nil), c.Crashes...)
	return c
}

// Key renders every behaviour-determining field canonically — the identity
// of a configuration for deduplication (an exploration corpus, a tried-set).
// Unlike Result.Fingerprint it includes nothing about outcomes, and unlike
// the minimiser's memo key it includes the seed and the system size. Crash
// order is preserved: schedule order breaks (at, seq) ties in the event
// queue, so it is part of the identity.
func (c Config) Key() string {
	return fmt.Sprintf("n=%d seed=%d delay=[%v,%v] drop=%g det=%s crashes=%v term=%t timeout=%v",
		c.N, c.Seed, c.MinDelay, c.MaxDelay, c.DropRate, c.Detector, c.Crashes, c.RequireTermination, c.Timeout)
}

// Option configures a scenario.
type Option func(*Config)

// WithSeed seeds the delay and drop RNG streams.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithDelays sets the per-message delivery delay range. In virtual time the
// magnitude is free: 50ms delays cost no more wall-clock than 50µs ones.
func WithDelays(min, max time.Duration) Option {
	return func(c *Config) { c.MinDelay, c.MaxDelay = min, max }
}

// WithDropRate makes every message be dropped independently with the given
// probability. Adversarial, safety-only territory: combine with
// WithSafetyOnly unless the rate is 0.
func WithDropRate(p float64) Option { return func(c *Config) { c.DropRate = p } }

// WithCrash schedules process p to crash at virtual time at.
func WithCrash(p model.ProcessID, at time.Duration) Option {
	return func(c *Config) { c.Crashes = append(c.Crashes, Crash{P: p, At: at}) }
}

// WithCrashes replaces the whole fault schedule.
func WithCrashes(crashes ...Crash) Option {
	return func(c *Config) { c.Crashes = append([]Crash(nil), crashes...) }
}

// WithDetector selects the run's detector family declaratively: class plus
// quality parameters. It replaces whatever spec the config carried.
func WithDetector(spec fd.DetectorSpec) Option {
	return func(c *Config) { c.Detector = spec }
}

// WithDetectorClass selects the detector class by registry name, keeping the
// quality parameters already configured.
func WithDetectorClass(class string) Option {
	return func(c *Config) { c.Detector.Class = class }
}

// WithSuspicionDelay makes crashed processes linger in Σ quorums, as Ω
// leader candidates and outside suspect lists for d logical ticks after
// their crash.
func WithSuspicionDelay(d model.Time) Option {
	return func(c *Config) { c.Detector.SuspicionDelay = d }
}

// WithFSDetectionDelay makes the FS signal turn red only d logical ticks
// after the first crash.
func WithFSDetectionDelay(d model.Time) Option {
	return func(c *Config) { c.Detector.DetectionDelay = d }
}

// WithStabilizeAfter sets when the ◇ detector classes end their
// false-suspicion prefix.
func WithStabilizeAfter(d model.Time) Option {
	return func(c *Config) { c.Detector.StabilizeAfter = d }
}

// WithPsiSwitch sets when Ψ leaves ⊥ and which regime it prefers.
func WithPsiSwitch(after model.Time, policy fd.PsiPolicy) Option {
	return func(c *Config) {
		c.Detector.PsiSwitchAfter = after
		c.Detector.PsiPolicy = policy
	}
}

// WithSerialBroadcast selects the serial per-recipient broadcast enqueue
// path. Schedules are identical either way (that is what the determinism
// tests prove with it); the toggle exists so sweeps can cheaply double-check
// the contract on any configuration.
func WithSerialBroadcast() Option { return func(c *Config) { c.SerialBroadcast = true } }

// WithFreeRunning selects the free-running scheduler ablation; see
// Config.FreeRunning.
func WithFreeRunning() Option { return func(c *Config) { c.FreeRunning = true } }

// WithJournal captures the run's trace record stream into Result.Journal:
// k == JournalAll keeps every record, k > 0 ring-buffers the last k. See
// Config.Journal.
func WithJournal(k int) Option { return func(c *Config) { c.Journal = k } }

// WithProbes attaches the streaming probe analyzer to the run; see
// Config.Probes.
func WithProbes() Option { return func(c *Config) { c.Probes = true } }

// WithSafetyOnly checks only the perpetual (safety) clauses: agreement and
// validity, not termination. Use it for runs that are cut short or
// deliberately starved (drop rates, majority loss under majority guards).
func WithSafetyOnly() Option { return func(c *Config) { c.RequireTermination = false } }

// WithHistoryLimit caps the run's suspect-list sample history at the most
// recent limit samples; limit <= 0 disables recording entirely.
func WithHistoryLimit(limit int) Option { return func(c *Config) { c.HistoryLimit = limit } }

// WithTimeout bounds the run in wall-clock time.
func WithTimeout(d time.Duration) Option { return func(c *Config) { c.Timeout = d } }

// Scenario is an immutable, reusable description of one cluster + schedule.
// Run may be called any number of times (each run stands up a fresh
// network); Sweep derives grid points from it.
type Scenario struct {
	cfg Config
}

// New builds a scenario over n processes. Defaults: seed 1, delays
// [0, 200µs], reliable links, no crashes, exact oracles, termination
// required, 30s wall-clock backstop.
func New(n int, opts ...Option) *Scenario {
	if n <= 0 {
		panic(fmt.Sprintf("scenario: invalid process count %d", n))
	}
	cfg := Config{
		N:                  n,
		Seed:               1,
		MinDelay:           0,
		MaxDelay:           200 * time.Microsecond,
		RequireTermination: true,
		Timeout:            30 * time.Second,
		HistoryLimit:       DefaultHistoryLimit,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Scenario{cfg: cfg}
}

// FromConfig wraps an explicit configuration (the form Sweep produces for
// its grid points).
func FromConfig(cfg Config) *Scenario { return &Scenario{cfg: cfg} }

// Config returns a copy of the scenario's configuration.
func (s *Scenario) Config() Config { return s.cfg.Clone() }

// Cluster is the stood-up side of a scenario that a Protocol wires itself
// onto: the network plus the detector suite built from the scenario's
// DetectorSpec over the live failure pattern. Setup implementations hand
// Detectors.Omega/Sigma to the consensus and register constructions and
// Detectors.Psi/FS to the QC/NBAC stack.
type Cluster struct {
	// Net is the run's network.
	Net *net.Network
	// Detectors is the detector suite built from Config.Detector. Fields
	// the spec's class cannot honestly provide are nil; a Protocol's Setup
	// must refuse to wire itself onto a missing detector (see
	// Cluster.Need*), which is how sweeps report that a class does not
	// solve a problem.
	Detectors *fd.Suite
	// Instance is the instance name protocols should run under.
	Instance string
	// Config is the scenario being run.
	Config Config
}

// missing builds the Setup error for a detector the spec's class does not
// provide — the formal "this class does not solve this problem" verdict of a
// cross-detector sweep.
func (cl *Cluster) missing(kind string) error {
	return fmt.Errorf("detector spec %q provides no %s", cl.Config.Detector, kind)
}

// NeedOmega returns the suite's Ω source, or an error naming the spec.
func (cl *Cluster) NeedOmega() (fd.OmegaSource, error) {
	if cl.Detectors.Omega == nil {
		return nil, cl.missing("Ω")
	}
	return cl.Detectors.Omega, nil
}

// NeedSigma returns the suite's Σ source, or an error naming the spec.
func (cl *Cluster) NeedSigma() (fd.SigmaSource, error) {
	if cl.Detectors.Sigma == nil {
		return nil, cl.missing("Σ")
	}
	return cl.Detectors.Sigma, nil
}

// NeedFS returns the suite's FS source, or an error naming the spec.
func (cl *Cluster) NeedFS() (fd.FSSource, error) {
	if cl.Detectors.FS == nil {
		return nil, cl.missing("FS")
	}
	return cl.Detectors.FS, nil
}

// NeedPsi returns the suite's Ψ source, or an error naming the spec.
func (cl *Cluster) NeedPsi() (fd.PsiSource, error) {
	if cl.Detectors.Psi == nil {
		return nil, cl.missing("Ψ")
	}
	return cl.Detectors.Psi, nil
}

// Outcome is one process's result from a run: the input it was handed, what
// its Run returned, and the logical interval it was active. A process that
// crashed (or timed out) before returning has Returned == false and Err set.
type Outcome struct {
	Process  model.ProcessID
	Input    any
	Value    any
	Err      error
	Start    model.Time
	End      model.Time
	Returned bool
}

// Result is everything one run produced, ready for assertions and
// aggregation.
type Result struct {
	// Protocol is the protocol's name.
	Protocol string
	// Config is the scenario that was run.
	Config Config
	// Verdict is the spec checker's judgement of the outcomes.
	Verdict model.Verdict
	// Outcomes holds one entry per participating process, indexed by id.
	Outcomes []Outcome
	// Pattern is the failure pattern the run actually exhibited (scheduled
	// crashes that came due after the run completed are absent).
	Pattern *model.FailurePattern
	// Metrics is the network's counter snapshot.
	Metrics map[string]int64
	// Trace is the run's event log (crashes, protocol events).
	Trace []trace.Event
	// VirtualEnd is the virtual clock when the run finished; Wall is the
	// wall-clock time it took. Their ratio is the speedup virtual time buys.
	VirtualEnd time.Duration
	// Wall is the run's wall-clock duration.
	Wall time.Duration
	// HistoryDepth is how many suspect-list samples the run's history ring
	// retained (bounded by Config.HistoryLimit); HistoryDropped counts the
	// samples the cap discarded. Together they are a cheap detector-activity
	// signal — usable in novelty signatures without unbounded memory — but,
	// like tick counts, they are scheduling-dependent and therefore excluded
	// from Fingerprint. Zero for classes without a suspect view.
	HistoryDepth   int
	HistoryDropped int64
	// TraceFingerprint is the step scheduler's digest of the full schedule:
	// every delivered event, every task step grant and every clean task exit,
	// hashed in dispatch order up to the exit of the last runner. Two
	// identically-configured runs must produce byte-identical values — the
	// trace-level strengthening of Fingerprint. It is empty under the
	// free-running ablation, and empty when the run was tainted by a
	// wall-clock escape (the Timeout backstop cut a run at a point virtual
	// time cannot pin; the Verdict is still deterministic, the schedule
	// suffix is not).
	TraceFingerprint string
	// TraceSummary counts the record mix behind TraceFingerprint (events by
	// kind, grants) — the exploration's trace-shape signature buckets these.
	// When a wall-clock escape tainted the run, the counters are zero and
	// TraceSummary.TaintReason names the escape (which task on which
	// process); both are zero under the free-running ablation.
	TraceSummary net.TraceStats
	// Journal is the run's captured trace record stream (Config.Journal),
	// ready to encode to disk; nil when journaling was off or the run
	// produced no trace group. A tainted run still yields its journal —
	// with Meta.TaintReason set and no fingerprint — so the capture can be
	// inspected even though it cannot anchor a replay.
	Journal *journal.Journal
	// Probes is the streaming probe fold over the run's record stream
	// (Config.Probes, implied by Config.Journal != 0): byte-stable per
	// (seed, config) in step mode, like TraceFingerprint. Nil when probes
	// were off, the run produced no trace group, or a wall-clock escape
	// tainted the trace (a tainted record stream pins nothing, so its fold
	// is not published).
	Probes *probe.Probes
}

// Run stands the scenario up, executes the protocol on it, tears everything
// down and returns the checked result. Each call uses a fresh network; a
// Scenario is safe to Run concurrently from multiple goroutines.
func (s *Scenario) Run(ctx context.Context, proto Protocol) Result {
	cfg := s.Config()
	res := Result{Protocol: proto.Name(), Config: cfg}
	start := time.Now()
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}

	log := trace.NewLog()
	netOpts := []net.Option{
		net.WithSeed(cfg.Seed),
		net.WithDelays(cfg.MinDelay, cfg.MaxDelay),
		net.WithDropRate(cfg.DropRate),
		net.WithLog(log),
	}
	if cfg.SerialBroadcast {
		netOpts = append(netOpts, net.WithSerialBroadcast())
	}
	if cfg.FreeRunning || envFreeRunning {
		netOpts = append(netOpts, net.WithFreeRunning())
	}
	// Journaling, probes and replay checking all observe the step-trace
	// stream, which the free-running ablation does not have: refuse up front
	// with a verdict naming the conflict, rather than returning an empty
	// journal a replay would then "diverge" on at record 0, or an empty
	// probe fold that would masquerade as a quiet run.
	var jrec *journal.Recorder
	var analyzer *probe.Analyzer
	if cfg.Journal != 0 || cfg.Recorder != nil || cfg.Probes {
		if cfg.FreeRunning || envFreeRunning {
			res.Verdict = model.Fail("scenario trace: the free-running ablation has no step trace to journal, probe or replay; drop WithJournal/WithProbes/Config.Recorder or run in step mode")
			res.Wall = time.Since(start)
			return res
		}
		var recs []net.TraceRecorder
		if cfg.Journal != 0 {
			jrec = journal.NewRecorder(cfg.Journal)
			recs = append(recs, jrec)
		}
		if cfg.Probes || cfg.Journal != 0 {
			// A journaled run computes probes even without Config.Probes, so
			// every journal's Meta carries the live capture replay -stats
			// recomputes against.
			analyzer = probe.NewAnalyzer(cfg.N)
			recs = append(recs, analyzer)
		}
		if cfg.Recorder != nil {
			recs = append(recs, cfg.Recorder)
		}
		rec := recs[0]
		for _, r := range recs[1:] {
			rec = teeRecorder{rec, r}
		}
		netOpts = append(netOpts, net.WithTraceRecorder(rec))
	}
	nw := net.NewNetwork(cfg.N, netOpts...)
	defer nw.Close()

	var hist *model.History
	if cfg.HistoryLimit > 0 {
		hist = model.NewHistoryWithLimit(cfg.HistoryLimit)
	}

	// Freeze dispatch while the detector suite and the protocol wire
	// themselves up and the fault schedule is laid out, so every event of
	// the initial batch — including the boot messages of message-passing
	// detector classes — gets its (time, seq) slot before anything is
	// delivered.
	nw.Freeze()
	suite, err := fd.DefaultRegistry().Build(fd.Env{
		Pattern:     nw.Pattern(),
		Clock:       nw.Clock(),
		Runtime:     nw,
		SuspectHist: hist,
	}, cfg.Detector)
	if err != nil {
		nw.Thaw()
		res.Verdict = model.Fail("scenario detectors: %v", err)
		res.Wall = time.Since(start)
		return res
	}
	if suite.Stop != nil {
		// Registered after the network's Close, so detector ensembles stop
		// before their endpoints disappear under them.
		defer suite.Stop()
	}
	cl := &Cluster{
		Net:       nw,
		Detectors: suite,
		Instance:  "scn",
		Config:    cfg,
	}

	inst, err := proto.Setup(cl)
	if err != nil {
		nw.Thaw()
		res.Verdict = model.Fail("scenario setup: %v", err)
		res.Wall = time.Since(start)
		return res
	}
	if inst.Stop != nil {
		defer inst.Stop()
	}
	for _, cr := range cfg.Crashes {
		nw.ScheduleCrash(cr.P, cr.At)
	}

	outs := make([]Outcome, cfg.N)
	done := make(chan int, cfg.N)
	launched := 0
	runOne := func(runCtx context.Context, i int, r Runner, input any) {
		o := &outs[i]
		o.Start = nw.Clock().Now()
		v, err := r.Run(runCtx, input)
		o.End = nw.Clock().Now()
		o.Value, o.Err = v, err
		o.Returned = err == nil
		done <- i
	}
	type launch struct {
		i     int
		r     Runner
		input any
	}
	launches := make([]launch, 0, cfg.N)
	for i := range outs {
		outs[i] = Outcome{Process: model.ProcessID(i)}
		if i >= len(inst.Runners) || inst.Runners[i] == nil {
			continue
		}
		var input any
		if i < len(inst.Inputs) {
			input = inst.Inputs[i]
		}
		outs[i].Input = input
		launches = append(launches, launch{i: i, r: inst.Runners[i], input: input})
	}
	launched = len(launches)
	stepTrace := nw.StepMode() && launched > 0
	if stepTrace {
		// Spawn the runners as trace-group tasks while dispatch is still
		// frozen: registration order — and with it every task id, the initial
		// ready order and the whole grant schedule — is fixed by this loop,
		// not by the Go scheduler. The trace ends when the last runner exits.
		nw.TraceGroup(launched)
		for _, l := range launches {
			l := l
			nw.GoGroup(nw.Endpoint(model.ProcessID(l.i)), "scn.runner", func(t *net.Task) {
				runOne(net.WithTask(ctx, t), l.i, l.r, l.input)
			})
		}
	} else {
		for _, l := range launches {
			l := l
			go runOne(ctx, l.i, l.r, l.input)
		}
	}
	nw.Thaw()
	for ; launched > 0; launched-- {
		<-done
	}
	if stepTrace {
		res.TraceFingerprint, res.TraceSummary = nw.TraceResult()
		tainted := res.TraceSummary.TaintReason != ""
		if tainted && (jrec != nil || analyzer != nil) {
			// A wall-clock escape means the runners exited without the
			// token, so the dispatcher may still be delivering — and
			// recording. Quiesce it before reading any capture: Close is
			// idempotent and waits for the dispatcher goroutine. (A clean
			// finalization needs no such barrier — the last exiting task
			// holds the token, and recording stops at finalization.)
			nw.Close()
		}
		if analyzer != nil && !tainted {
			p := &probe.Probes{SchemaVersion: probe.Version, Stream: analyzer.Finish()}
			if hist != nil {
				p.Detection = probe.DetectionFrom(nw.Pattern(), p.Stream.CrashedProcs, hist.Samples())
			}
			res.Probes = p
		}
		if jrec != nil {
			res.Journal = res.buildJournal(jrec)
		}
	}

	res.Pattern = nw.Pattern().Clone()
	res.Outcomes = outs
	if inst.Check != nil {
		res.Verdict = inst.Check(res.Pattern, outs, cfg.RequireTermination)
	} else {
		res.Verdict = model.Ok()
	}
	res.VirtualEnd = nw.VirtualNow()
	res.Metrics = nw.Metrics().Snapshot()
	res.Trace = log.Events()
	if hist != nil {
		res.HistoryDepth = hist.Len()
		res.HistoryDropped = hist.Dropped()
	}
	res.Wall = time.Since(start)
	return res
}

// teeRecorder fans one trace stream out to two recorders (journal capture
// plus a caller-supplied observer). Calls stay serialized — the tee runs on
// the same token-serialized path as any single recorder.
type teeRecorder struct{ a, b net.TraceRecorder }

func (t teeRecorder) Record(r net.TraceRecord) {
	t.a.Record(r)
	t.b.Record(r)
}

// buildJournal assembles the captured record stream into a self-contained
// journal: the config is embedded with its journaling knobs zeroed (a
// journal reproduces the plain run; replay attaches its own checker), and
// the trace integrity fields come from the finished run.
func (r *Result) buildJournal(rec *journal.Recorder) *journal.Journal {
	cc := r.Config.Clone()
	cc.Journal = 0
	cc.Recorder = nil
	cc.Probes = false
	cfgJSON, err := json.Marshal(cc)
	if err != nil {
		// Config is plain data; this cannot fail. Keep the journal usable
		// for inspection even if it somehow does.
		cfgJSON = nil
	}
	st := r.TraceSummary
	return rec.Journal(journal.Meta{
		Protocol:         r.Protocol,
		Config:           cfgJSON,
		TraceFingerprint: r.TraceFingerprint,
		TaintReason:      st.TaintReason,
		Events:           st.Events,
		Messages:         st.Messages,
		Timers:           st.Timers,
		Crashes:          st.Crashes,
		Grants:           st.Grants,
		Probes:           r.Probes,
	})
}

// Fingerprint renders the run's scheduling-independent content canonically:
// the configuration, the protocol, the verdict, and each process's
// (returned, value, errored) outcome in process order. Logical timestamps,
// metrics and wall times are deliberately excluded — tick counts and
// throughput depend on goroutine scheduling even for a fixed seed, while
// everything in the fingerprint is reproducible across identically-seeded
// runs of a schedule-determined protocol. The sweep determinism tests
// compare these byte-for-byte.
func (r Result) Fingerprint() string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "proto=%s n=%d seed=%d delay=[%v,%v] drop=%g", r.Protocol, cfg.N, cfg.Seed, cfg.MinDelay, cfg.MaxDelay, cfg.DropRate)
	fmt.Fprintf(&b, " det=%s", cfg.Detector)
	crashes := append([]Crash(nil), cfg.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].At != crashes[j].At {
			return crashes[i].At < crashes[j].At
		}
		return crashes[i].P < crashes[j].P
	})
	fmt.Fprintf(&b, " crashes=%v", crashes)
	fmt.Fprintf(&b, "\nverdict=%v\n", r.Verdict)
	for _, o := range r.Outcomes {
		if o.Returned {
			fmt.Fprintf(&b, "%v: %v\n", o.Process, o.Value)
		} else if o.Err != nil {
			fmt.Fprintf(&b, "%v: error\n", o.Process)
		} else {
			fmt.Fprintf(&b, "%v: no-op\n", o.Process)
		}
	}
	return b.String()
}
