package scenario

import (
	"context"
	"testing"
	"time"
)

// failingMajorityConfig is a deliberately noisy reproducer: the Ω-plus-
// majority baseline at n=5 with four scheduled crashes (one more than
// needed to kill the majority), scattered crash times, a wide delay range
// and a short wall-clock backstop. Minimal failing form: three crashes at
// virtual time zero over degenerate [0, 0] delays.
func failingMajorityConfig() Config {
	return New(5,
		WithSeed(3),
		WithDelays(500*time.Microsecond, 2*time.Millisecond),
		WithCrashes(
			Crash{P: 1, At: 3 * time.Millisecond},
			Crash{P: 2, At: 900 * time.Microsecond},
			Crash{P: 3, At: 1100 * time.Microsecond},
			Crash{P: 4, At: 2100 * time.Microsecond},
		),
		WithTimeout(150*time.Millisecond),
	).Config()
}

// TestMinimizeShrinksFailingConsensusConfig is the delta-debugging
// acceptance test: a seeded failing config shrinks to a strictly smaller
// reproducer with a known minimal schedule, the reproducer still fails when
// re-run from its Config alone, and its fingerprint is byte-stable.
func TestMinimizeShrinksFailingConsensusConfig(t *testing.T) {
	ctx := context.Background()
	proto := Consensus{Majority: true}
	orig := failingMajorityConfig()

	min, err := Minimize(ctx, orig, proto)
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if min.Result.Verdict.OK {
		t.Fatalf("minimal config does not fail: %v", min.Result.Verdict)
	}
	// Strictly smaller: the redundant fourth crash is gone (majority loss
	// at n=5 needs exactly three), every surviving crash time rounded to
	// zero, the delay range collapsed to the degenerate point.
	if len(min.Config.Crashes) != 3 {
		t.Fatalf("minimal schedule has %d crashes, want 3: %v", len(min.Config.Crashes), min.Config.Crashes)
	}
	for _, c := range min.Config.Crashes {
		if c.At != 0 {
			t.Fatalf("crash %v not rounded to time zero: %v", c.P, min.Config.Crashes)
		}
	}
	if min.Config.MinDelay != 0 || min.Config.MaxDelay != 0 {
		t.Fatalf("delay range not collapsed: [%v, %v]", min.Config.MinDelay, min.Config.MaxDelay)
	}
	if min.Candidates < 2 {
		t.Fatalf("minimize reports %d candidate runs, want several", min.Candidates)
	}

	// The reproducer is self-contained: re-running the minimal Config in
	// isolation reproduces the identical failure, byte for byte.
	rerun := FromConfig(min.Config).Run(ctx, proto)
	if rerun.Verdict.OK {
		t.Fatalf("minimal config passed on re-run")
	}
	if got := rerun.Fingerprint(); got != min.Fingerprint {
		t.Fatalf("fingerprint not stable across re-runs\n--- minimize ---\n%s\n--- rerun ---\n%s", min.Fingerprint, got)
	}

	// And the search itself is deterministic: same input, same minimum.
	again, err := Minimize(ctx, failingMajorityConfig(), proto)
	if err != nil {
		t.Fatalf("second minimize: %v", err)
	}
	if again.Fingerprint != min.Fingerprint {
		t.Fatalf("minimize not deterministic\n--- first ---\n%s\n--- second ---\n%s", min.Fingerprint, again.Fingerprint)
	}
}

// TestMinimizePassingConfigErrors: a config that does not fail is a usage
// error, not a silent no-op.
func TestMinimizePassingConfigErrors(t *testing.T) {
	cfg := New(3, WithSeed(5)).Config()
	if _, err := Minimize(context.Background(), cfg, Consensus{}); err == nil {
		t.Fatalf("minimize of a passing config returned no error")
	}
}

// TestMinimizeCancelledMidSearch: cancelling the context aborts the search
// with an error instead of looping or misreading ctx-induced timeouts as
// fresh spec failures.
func TestMinimizeCancelledMidSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Minimize(ctx, failingMajorityConfig(), Consensus{Majority: true}); err == nil {
		t.Fatalf("minimize under a cancelled context returned no error")
	}
}
