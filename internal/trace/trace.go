// Package trace provides lightweight run instrumentation shared by the
// protocol packages, the benchmark harness and cmd/experiments: monotonic
// counters (message counts, rounds, retries) and an append-only event log.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"weakestfd/internal/model"
)

// Counter is an interned handle to one named counter: a bare atomic, so hot
// paths that intern a handle once pay neither a lock nor a map lookup per
// increment.
type Counter struct {
	n atomic.Int64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Get returns the counter's current value.
func (c *Counter) Get() int64 { return c.n.Load() }

// Metrics is a set of named monotonic counters, sharded into one atomic per
// key. The zero value is ready to use. Metrics is safe for concurrent use.
//
// The registry is a read-locked plain map rather than a sync.Map: interning a
// handle neither boxes the string key into an interface nor pays the trie
// initialisation a fresh sync.Map performs, so creating many short-lived
// Metrics (one per run of a sweep) stays cheap.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter interns and returns the handle for the named counter. The handle is
// stable for the lifetime of the Metrics; hot paths should intern once and
// increment the handle.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		if m.counters == nil {
			// Sized for the usual complement of protocol counters, so interning
			// them into a fresh Metrics does not grow the map incrementally.
			m.counters = make(map[string]*Counter, 16)
		}
		c = new(Counter)
		m.counters[name] = c
	}
	return c
}

// Add increments the named counter by n.
func (m *Metrics) Add(name string, n int64) { m.Counter(name).Add(n) }

// Inc increments the named counter by one.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Get returns the current value of the named counter (zero if never touched).
func (m *Metrics) Get(name string) int64 {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Get()
}

// Snapshot returns a copy of all counters.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]int64, len(m.counters))
	for k, c := range m.counters {
		out[k] = c.Get()
	}
	return out
}

// String renders the counters sorted by name, e.g. "msgs.sent=12 rounds=3".
func (m *Metrics) String() string {
	snap := m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, snap[k])
	}
	return strings.Join(parts, " ")
}

// Event is one entry of a run's event log.
type Event struct {
	Time    model.Time
	Process model.ProcessID
	Kind    string
	Detail  string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("[t=%d %v] %s: %s", e.Time, e.Process, e.Kind, e.Detail)
}

// Log is an append-only event log. The zero value is ready to use. Log is
// safe for concurrent use. A nil *Log discards appended events, so protocol
// code can trace unconditionally.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append adds an event to the log. Appending to a nil log is a no-op.
func (l *Log) Append(t model.Time, p model.ProcessID, kind, format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Time: t, Process: p, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Events returns a copy of all events in append order. A nil log has none.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Filter returns the events of the given kind.
func (l *Log) Filter(kind string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
