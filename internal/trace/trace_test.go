package trace

import (
	"sync"
	"testing"
)

func TestMetricsBasics(t *testing.T) {
	m := NewMetrics()
	m.Inc("msgs")
	m.Add("msgs", 4)
	m.Add("rounds", 2)
	if got := m.Get("msgs"); got != 5 {
		t.Fatalf("Get(msgs) = %d", got)
	}
	if got := m.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %d", got)
	}
	snap := m.Snapshot()
	if snap["rounds"] != 2 || len(snap) != 2 {
		t.Fatalf("Snapshot = %v", snap)
	}
	if got := m.String(); got != "msgs=5 rounds=2" {
		t.Fatalf("String = %q", got)
	}
}

func TestMetricsZeroValueAndConcurrency(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := m.Get("n"); got != 800 {
		t.Fatalf("Get = %d, want 800", got)
	}
}

func TestLog(t *testing.T) {
	l := NewLog()
	l.Append(1, 0, "send", "to %d", 2)
	l.Append(2, 1, "recv", "from %d", 0)
	l.Append(3, 1, "send", "to %d", 0)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	sends := l.Filter("send")
	if len(sends) != 2 {
		t.Fatalf("Filter(send) = %v", sends)
	}
	if got := l.Events()[0].String(); got != "[t=1 p0] send: to 2" {
		t.Fatalf("Event.String = %q", got)
	}
}

func TestNilLogIsDiscard(t *testing.T) {
	var l *Log
	l.Append(1, 0, "send", "x") // must not panic
	if l.Len() != 0 || l.Events() != nil {
		t.Fatalf("nil log not empty")
	}
}
