package net

import (
	"fmt"

	"weakestfd/internal/model"
)

// Message is the envelope carried by the in-memory network. Type is a
// protocol-defined tag (e.g. "abd.read.req"); Payload is a protocol-defined
// value. Instance lets independent protocol instances share one network
// without seeing each other's traffic (the runtime does not interpret it
// beyond routing; protocols filter on it).
//
// Aux and Aux2 are two protocol-defined scalar words carried inline in the
// envelope. Control messages whose whole content is one or two integers
// (ballot numbers, round counters, sequence numbers) can ride in them with a
// nil Payload, sparing the interface boxing a struct payload costs on every
// send — on the ack-heavy paths of the quorum protocols that box is the
// dominant steady-state allocation. They are zero when unused.
type Message struct {
	From     model.ProcessID
	To       model.ProcessID
	Type     string
	Instance string
	Payload  any
	Aux      int64
	Aux2     int64
	SentAt   model.Time
}

// String implements fmt.Stringer.
func (m Message) String() string {
	return fmt.Sprintf("%v->%v %s/%s", m.From, m.To, m.Instance, m.Type)
}
