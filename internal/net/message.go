package net

import (
	"fmt"

	"weakestfd/internal/model"
)

// Message is the envelope carried by the in-memory network. Type is a
// protocol-defined tag (e.g. "abd.read.req"); Payload is a protocol-defined
// value. Instance lets independent protocol instances share one network
// without seeing each other's traffic (the runtime does not interpret it
// beyond routing; protocols filter on it).
type Message struct {
	From     model.ProcessID
	To       model.ProcessID
	Type     string
	Instance string
	Payload  any
	SentAt   model.Time
}

// String implements fmt.Stringer.
func (m Message) String() string {
	return fmt.Sprintf("%v->%v %s/%s", m.From, m.To, m.Instance, m.Type)
}
