package net

import (
	"sync/atomic"

	"weakestfd/internal/model"
)

// Clock is the executable counterpart of the paper's discrete global clock:
// a logical tick counter advanced by the runtime on every send and delivery.
// Processes never read it to make protocol decisions (the model is
// asynchronous); it is used to timestamp crash events and failure-detector
// samples so that recorded histories can be checked against the formal
// specifications.
type Clock struct {
	now atomic.Int64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current logical time.
func (c *Clock) Now() model.Time { return model.Time(c.now.Load()) }

// Tick advances the clock by one and returns the new time.
func (c *Clock) Tick() model.Time { return model.Time(c.now.Add(1)) }

// TickN advances the clock by n ticks at once and returns the first of the n
// new times, so a batch of n sends can reserve the same contiguous run of
// timestamps that n individual Tick calls would have produced.
func (c *Clock) TickN(n int) model.Time { return model.Time(c.now.Add(int64(n)) - int64(n) + 1) }
