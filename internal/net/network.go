// Package net is the asynchronous message-passing runtime used by the
// protocol packages: an in-memory network of n processes connected by
// reliable links with unbounded (randomised) delays, plus crash injection.
//
// It realises the system model of Section 2 of the paper: processes fail only
// by crashing, links never lose or corrupt messages between processes that do
// not crash, and there is no bound processes may rely on for message delay.
// Crashes are recorded into a live model.FailurePattern, which is the ground
// truth read by the oracle failure detectors in internal/fd and by the
// specification checkers.
//
// # Execution substrate
//
// Delivery is a discrete-event scheduler, not a goroutine per message: every
// send pushes a (deliveryTime, seq) event onto a min-heap drained by one
// dispatcher goroutine. By default the scheduler runs in virtual time — the
// injected delay determines the delivery order exactly as it would in real
// time, but waiting for it costs zero wall-clock time, so a run executes as
// fast as the hardware allows and, for a batch of sends enqueued under
// Freeze/Thaw with WithSeed, deterministically. WithRealTime switches the same scheduler to
// wall-clock waits for fidelity experiments. Timers (Endpoint.NewTicker,
// Endpoint.NewTimer) ride the same event heap, which is how heartbeat-style
// failure detectors stay meaningful when time is virtual. See ARCHITECTURE.md
// for the scheduler's design and its determinism guarantees.
//
// Protocol instances are interned: the first use of an instance name resolves
// it to a per-network instState carrying the contiguous mailbox array and the
// per-instance counters, and an Instance handle (Endpoint.Instance) lets hot
// loops send, broadcast and receive with no per-call map lookup at all.
package net

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/trace"
)

// Option configures a Network.
type Option func(*Network)

// WithDelays sets the per-message delivery delay range. Delays are drawn
// uniformly from [min, max]. The default is [0, 200µs], which is enough to
// reorder messages aggressively; in virtual-time mode the magnitude is free.
func WithDelays(min, max time.Duration) Option {
	return func(n *Network) {
		n.minDelay, n.maxDelay = min, max
	}
}

// WithSeed seeds the delay generator. The drawn delay sequence is a pure
// function of the seed and enqueue order; in virtual-time mode the delivery
// order of a batch enqueued under Freeze/Thaw is then fully reproducible
// (the virtual clock is still during a freeze, so the whole batch shares one
// base time). Free-running senders racing the dispatcher (or each other)
// reintroduce enqueue-order and base-time nondeterminism.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.seed = seed }
}

// WithRealTime makes the scheduler wait out delays and timer deadlines on the
// wall clock instead of virtual time. Use it for wall-clock fidelity tests;
// everything else is faster and more reproducible in the default virtual-time
// mode.
func WithRealTime() Option {
	return func(n *Network) { n.realtime = true }
}

// WithDropRate makes every message be dropped independently with probability
// p ∈ [0, 1]. Drop decisions are drawn from a dedicated seeded RNG stream, so
// turning losses on (or off) never shifts the delay sequence of the messages
// that survive. The paper's model assumes reliable links between correct
// processes, so a lossy network is an adversarial knob for safety-only runs:
// protocol liveness may legitimately be lost when p > 0.
func WithDropRate(p float64) Option {
	return func(n *Network) {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("net: drop rate %v outside [0, 1]", p))
		}
		n.dropRate = p
	}
}

// WithMetrics attaches a metrics sink; the network counts sent, delivered and
// dropped messages into it.
func WithMetrics(m *trace.Metrics) Option {
	return func(n *Network) { n.metrics = m }
}

// WithLog attaches an event log; the network records crashes into it. Without
// it the network's log is nil, which trace.Log accepts and discards.
func WithLog(l *trace.Log) Option {
	return func(n *Network) { n.log = l }
}

// WithSerialBroadcast makes Broadcast enqueue its n per-recipient sends one
// at a time (n queue-lock acquisitions and n sift-ups) instead of through the
// batched single-lock fast path. Both paths consume the seeded RNG streams in
// exactly the same per-recipient order and therefore produce byte-identical
// (deliveryTime, seq) schedules; the knob exists so determinism tests can
// prove that equivalence and benchmarks can measure the batching win.
func WithSerialBroadcast() Option {
	return func(n *Network) { n.serial = true }
}

// WithFreeRunning disables the deterministic goroutine-step scheduler and
// lets protocol goroutines race the dispatcher, as the runtime did before
// run-to-quiescence stepping: events are popped in timestamp batches, the
// anti-gallop heuristics (bounded yields plus unbuffered-timer backpressure)
// pace virtual time, and determinism holds only for schedule-determined
// outcomes, not traces. It is kept as a benchmarked ablation — the measured
// price of the step discipline — and as the mode real-time runs use.
// Networks in free-running mode never produce a trace fingerprint.
func WithFreeRunning() Option {
	return func(n *Network) { n.freeRunning = true }
}

// WithTraceRecorder attaches rec to the step scheduler's trace stream: every
// record the trace digest hashes (events, grants, exits — see TraceRecord) is
// also passed to rec, in hash order, while a trace group is armed. The
// recorder is observe-only: attaching one cannot perturb the schedule, so a
// journaled run and a plain run of the same seeded configuration produce the
// same TraceFingerprint. A no-op in free-running or real-time mode, which
// have no step trace to record.
func WithTraceRecorder(rec TraceRecorder) Option {
	return func(n *Network) { n.traceRec = rec }
}

// Network is an in-memory asynchronous network of n processes. Create one
// with NewNetwork, hand each protocol participant its Endpoint, inject
// crashes with Crash, and Close it when the run is over.
type Network struct {
	n        int
	clock    *Clock
	pattern  *model.FailurePattern
	metrics  *trace.Metrics
	log      *trace.Log
	minDelay time.Duration
	maxDelay time.Duration
	seed     int64
	dropRate float64
	realtime bool
	serial   bool

	// freeRunning disables run-to-quiescence stepping (WithFreeRunning);
	// real-time mode implies it. When false, stepper holds the scheduler
	// state and the dispatcher runs dispatchStep instead of the batch loop.
	freeRunning bool
	stepper     *stepper
	traceRec    TraceRecorder

	q *eventQueue

	cSent      *trace.Counter
	cDelivered *trace.Counter
	cDropped   *trace.Counter
	cCrashes   *trace.Counter

	instMu    sync.RWMutex
	instances map[string]*instState

	endpoints []Endpoint
	closed    atomic.Bool
	wg        sync.WaitGroup
}

// instState is the interned per-instance state: the instance's sent counter
// and its mailboxes, one per process, in one contiguous allocation. Message
// events resolve their mailbox at enqueue time, so the dispatcher and the
// receivers never look an instance up again.
type instState struct {
	name  string
	sent  *trace.Counter
	boxes []mailbox // indexed by ProcessID
}

// NewNetwork creates a network of n processes with no crashes yet.
func NewNetwork(n int, opts ...Option) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("net: invalid process count %d", n))
	}
	nw := &Network{
		n:        n,
		clock:    NewClock(),
		pattern:  model.NewFailurePattern(n),
		metrics:  trace.NewMetrics(),
		minDelay: 0,
		maxDelay: 200 * time.Microsecond,
		seed:     1,
	}
	for _, o := range opts {
		o(nw)
	}
	nw.cSent = nw.metrics.Counter("msgs.sent")
	nw.cDelivered = nw.metrics.Counter("msgs.delivered")
	nw.cDropped = nw.metrics.Counter("msgs.dropped")
	nw.cCrashes = nw.metrics.Counter("crashes")
	nw.q = newEventQueue(n, nw.seed, nw.minDelay, nw.maxDelay, nw.dropRate, nw.realtime)
	if !nw.freeRunning && !nw.realtime {
		nw.stepper = newStepper(nw.q, nw.traceRec)
	}
	nw.instances = make(map[string]*instState)
	nw.endpoints = make([]Endpoint, n)
	for i := range nw.endpoints {
		ep := &nw.endpoints[i]
		ep.id = model.ProcessID(i)
		ep.net = nw
		ep.ctx.done = make(chan struct{})
	}
	nw.wg.Add(1)
	go nw.dispatch()
	return nw
}

// N returns the number of processes.
func (nw *Network) N() int { return nw.n }

// Clock returns the network's logical clock.
func (nw *Network) Clock() *Clock { return nw.clock }

// Pattern returns the live failure pattern recording the crashes injected so
// far. Oracle failure detectors and specification checkers read it.
func (nw *Network) Pattern() *model.FailurePattern { return nw.pattern }

// Metrics returns the network's metrics sink.
func (nw *Network) Metrics() *trace.Metrics { return nw.metrics }

// Endpoint returns process p's endpoint.
func (nw *Network) Endpoint(p model.ProcessID) *Endpoint {
	return &nw.endpoints[int(p)]
}

// intern resolves an instance name to its interned state, creating it on
// first use. The fast path is a read-locked plain map lookup — unlike a
// sync.Map it does not box the string key into an interface, so a cold call
// site that still sends by name costs no allocation.
func (nw *Network) intern(name string) *instState {
	nw.instMu.RLock()
	st := nw.instances[name]
	nw.instMu.RUnlock()
	if st != nil {
		return st
	}
	nw.instMu.Lock()
	if st = nw.instances[name]; st == nil {
		st = &instState{
			name:  name,
			sent:  nw.metrics.Counter("msgs.sent." + name),
			boxes: make([]mailbox, nw.n),
		}
		for i := range st.boxes {
			st.boxes[i].init()
		}
		if nw.closed.Load() {
			for i := range st.boxes {
				st.boxes[i].stop()
			}
		}
		nw.instances[name] = st
	}
	nw.instMu.Unlock()
	return st
}

// Crash kills process p: its crash is recorded in the failure pattern at the
// current logical time, its context is cancelled, its timers are stopped, and
// no further messages are delivered to or accepted from it. Crashing an
// already-crashed process is a no-op.
func (nw *Network) Crash(p model.ProcessID) {
	ep := &nw.endpoints[int(p)]
	if ep.crashed.Swap(true) {
		return
	}
	t := nw.clock.Tick()
	nw.pattern.Crash(p, t)
	nw.log.Append(t, p, "crash", "process crashed")
	nw.cCrashes.Inc()
	ep.ctx.cancel()
	ep.stopTimers()
	// Wake the crashed process's tasks: each observes its cancelled context
	// on its next granted step and unwinds inside the step discipline, so the
	// error return of a crashed participant is part of the trace, not a race.
	ep.wakeTasks()
}

// ScheduleCrash enqueues a crash of process p after the given span of virtual
// time. Unlike a Crash call from an arbitrary goroutine, a scheduled crash is
// executed by the dispatcher itself when the event queue reaches its
// timestamp, so it is ordered against message deliveries and timer fires
// exactly by (deliveryTime, seq) — the crash timing of a seeded scenario is
// part of the schedule, not a wall-clock race. Scheduling a crash for an
// already-crashed process is a harmless no-op when the event fires.
func (nw *Network) ScheduleCrash(p model.ProcessID, after time.Duration) {
	if int(p) < 0 || int(p) >= nw.n {
		panic(fmt.Sprintf("net: scheduled crash of out-of-range process %v", p))
	}
	nw.q.pushCrash(p, int64(nw.q.virtualNow())+int64(after))
}

// Crashed reports whether p has crashed.
func (nw *Network) Crashed(p model.ProcessID) bool {
	return nw.endpoints[int(p)].crashed.Load()
}

// Alive returns the set of processes that have not crashed.
func (nw *Network) Alive() model.ProcessSet {
	s := model.NewProcessSet()
	for i := range nw.endpoints {
		if !nw.endpoints[i].crashed.Load() {
			s.Add(model.ProcessID(i))
		}
	}
	return s
}

// Close shuts the network down: all endpoints' contexts are cancelled, all
// timers are stopped, the dispatcher drains, and all mailboxes stop. A closed
// network drops every subsequent send.
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	for i := range nw.endpoints {
		ep := &nw.endpoints[i]
		ep.ctx.cancel()
		ep.stopTimers()
	}
	if nw.stepper != nil {
		// Release every task blocked on a grant (parked, or waiting its first
		// step) so their goroutines can observe cancellation and exit; the
		// dispatcher never waits on an aborted task.
		nw.stepper.abortAll()
	}
	if dropped := nw.q.close(); dropped > 0 {
		nw.cDropped.Add(int64(dropped))
	}
	nw.wg.Wait()
	nw.instMu.RLock()
	defer nw.instMu.RUnlock()
	for _, st := range nw.instances {
		for i := range st.boxes {
			st.boxes[i].stop()
		}
	}
}

// Freeze pauses event dispatch: sends and timer schedules are accepted and
// queued, but nothing is delivered until Thaw. Use it to construct a batch of
// events atomically — the scheduler then dispatches the whole batch in exact
// (delay, enqueue-seq) order, which is what makes a seeded scenario's
// delivery order fully deterministic regardless of how goroutines race the
// dispatcher. Scenario drivers use it to lay out adversarial schedules before
// releasing them.
func (nw *Network) Freeze() { nw.q.setHeld(true) }

// Thaw resumes event dispatch after Freeze.
func (nw *Network) Thaw() { nw.q.setHeld(false) }

// sendTo enqueues an asynchronous delivery to one process. It is a no-op if
// the network is closed or the sender has crashed.
func (nw *Network) sendTo(st *instState, from, to model.ProcessID, typ string, aux, aux2 int64, payload any) {
	if nw.closed.Load() || nw.Crashed(from) {
		nw.cDropped.Inc()
		return
	}
	if int(to) < 0 || int(to) >= nw.n {
		panic(fmt.Sprintf("net: send to out-of-range process %v", to))
	}
	sentAt := nw.clock.Tick()
	nw.cSent.Inc()
	st.sent.Inc()
	msg := Message{From: from, To: to, Instance: st.name, Type: typ, Payload: payload, Aux: aux, Aux2: aux2, SentAt: sentAt}
	if !nw.q.pushMessage(msg, &st.boxes[int(to)]) {
		nw.cDropped.Inc()
	}
}

// broadcast enqueues one delivery per process. On the default fast path the
// whole fan-out is one eventQueue.pushBroadcast call: the logical clock is
// advanced n ticks at once and the queue lock taken once, but the
// per-recipient RNG consumption and sequence numbering are exactly those of
// n sendTo calls in recipient order — see pushBroadcast for the contract.
// With WithSerialBroadcast it degenerates to that n-call loop.
func (nw *Network) broadcast(st *instState, from model.ProcessID, typ string, aux, aux2 int64, payload any) {
	if nw.closed.Load() || nw.Crashed(from) {
		nw.cDropped.Add(int64(nw.n))
		return
	}
	if nw.serial {
		for i := 0; i < nw.n; i++ {
			nw.sendTo(st, from, model.ProcessID(i), typ, aux, aux2, payload)
		}
		return
	}
	first := nw.clock.TickN(nw.n)
	nw.cSent.Add(int64(nw.n))
	st.sent.Add(int64(nw.n))
	tmpl := Message{From: from, Instance: st.name, Type: typ, Payload: payload, Aux: aux, Aux2: aux2, SentAt: first}
	enqueued, ok := nw.q.pushBroadcast(tmpl, st.boxes)
	if !ok {
		enqueued = 0
	}
	if d := nw.n - enqueued; d > 0 {
		nw.cDropped.Add(int64(d))
	}
}

// dispatch is the single delivery goroutine. In step mode (the default) it
// runs the run-to-quiescence loop: deliver ONE event, then grant every task
// that delivery woke — serially, in deterministic FIFO wake order — until the
// network is quiescent again, then pop the next event. In free-running mode
// (WithFreeRunning, or real time) it drains the event queue in
// (deliveryTime, seq) order with same-instant events popped as one batch
// under a single lock acquisition (the delivery path is handoff-bound, so
// per-event locking was the hot spot). Either way no goroutine is ever
// spawned per message, and no lock or lookup beyond the destination mailbox's
// own mutex is taken per delivery.
func (nw *Network) dispatch() {
	defer nw.wg.Done()
	if nw.stepper != nil {
		nw.dispatchStep()
		return
	}
	var batch []event
	for {
		var ok bool
		batch, ok = nw.q.popBatch(batch[:0])
		if !ok {
			return
		}
		for i := range batch {
			ev := &batch[i]
			nw.deliver(ev)
			*ev = event{} // release payload references held by the batch buffer
		}
	}
}

// dispatchStep is the step-mode dispatcher loop: alternate between granting
// ready tasks to quiescence and delivering single events. popStep prioritises
// ready tasks over due events, so an event delivery's entire wake cascade
// (including wakes issued by granted tasks themselves) settles before the
// next event is popped — the quiescence handshake.
func (nw *Network) dispatchStep() {
	s := nw.stepper
	for {
		ev, mode := nw.q.popStep(s)
		switch mode {
		case stepClosed:
			return
		case stepGrant:
			s.runReady()
		case stepEvent:
			s.recordEvent(&ev)
			nw.deliver(&ev)
		}
	}
}

// deliver executes one popped event; shared by both dispatcher modes.
func (nw *Network) deliver(ev *event) {
	switch ev.kind {
	case evMessage:
		if nw.closed.Load() || nw.Crashed(ev.msg.To) {
			nw.cDropped.Inc()
		} else {
			nw.clock.Tick()
			ev.box.push(ev.msg)
			// Counted after the push: once the books balance
			// (sent == delivered + dropped) every message really is
			// in its mailbox, so quiescence is observable from the
			// counters alone.
			nw.cDelivered.Inc()
		}
	case evTimer:
		ev.tm.fired(ev.at, ev.tgen)
	case evCrash:
		nw.Crash(ev.msg.To)
	}
}

// processCtx is the minimal context.Context behind Endpoint.Context: done
// channel plus Canceled error, nothing else. A full context.WithCancel chain
// costs several allocations per process, which dominates network construction
// at large n; protocol code only ever selects on Done and reports Err.
type processCtx struct {
	done     chan struct{}
	canceled atomic.Bool
}

func (c *processCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *processCtx) Done() <-chan struct{}       { return c.done }
func (c *processCtx) Value(any) any               { return nil }

func (c *processCtx) Err() error {
	if c.canceled.Load() {
		return context.Canceled
	}
	return nil
}

func (c *processCtx) cancel() {
	if c.canceled.CompareAndSwap(false, true) {
		close(c.done)
	}
}

// Endpoint is a process's connection to the network. A protocol participant
// running at process p sends through it and subscribes to per-instance
// message streams.
type Endpoint struct {
	id      model.ProcessID
	net     *Network
	ctx     processCtx
	crashed atomic.Bool

	mu       sync.Mutex
	timers   []*Timer
	tasks    []*Task   // step-mode tasks owned by this process, woken on crash
	timerArr [4]*Timer // inline backing for timers: typical processes hold at most a few concurrent leases
}

// ID returns the process identifier of this endpoint.
func (ep *Endpoint) ID() model.ProcessID { return ep.id }

// N returns the number of processes in the network.
func (ep *Endpoint) N() int { return ep.net.n }

// Context is cancelled when the process crashes or the network closes.
// Protocol loops must select on it so that crashed processes stop taking
// steps.
func (ep *Endpoint) Context() context.Context { return &ep.ctx }

// Crashed reports whether this process has crashed.
func (ep *Endpoint) Crashed() bool { return ep.crashed.Load() }

// Clock returns the network's logical clock.
func (ep *Endpoint) Clock() *Clock { return ep.net.clock }

// Network returns the network this endpoint belongs to.
func (ep *Endpoint) Network() *Network { return ep.net }

// Instance resolves an instance name once and returns the handle hot paths
// should hold on to: every Instance method runs with zero name lookups.
// Instance is a small value, so resolving one allocates nothing beyond the
// first-use interning of the name itself.
func (ep *Endpoint) Instance(name string) Instance {
	return Instance{ep: ep, st: ep.net.intern(name)}
}

// Send sends a message of the given instance and type to process "to".
func (ep *Endpoint) Send(to model.ProcessID, instance, typ string, payload any) {
	ep.net.sendTo(ep.net.intern(instance), ep.id, to, typ, 0, 0, payload)
}

// Broadcast sends the message to every process, including the sender itself
// (the paper's algorithms routinely "send to all" and rely on receiving their
// own message).
func (ep *Endpoint) Broadcast(instance, typ string, payload any) {
	ep.net.broadcast(ep.net.intern(instance), ep.id, typ, 0, 0, payload)
}

// Subscribe returns the channel of messages addressed to this process for the
// given protocol instance. Messages that arrive before the first Subscribe
// call are buffered, so subscribing after communication has started does not
// lose messages. Each instance has a single stream; concurrent readers drain
// it cooperatively. Do not mix Subscribe and TryRecv on one instance: the
// channel's forwarder goroutine would race TryRecv for messages.
func (ep *Endpoint) Subscribe(instance string) <-chan Message {
	return ep.Instance(instance).Subscribe()
}

// TryRecv pops the next buffered message for the given instance without
// blocking, straight from the mailbox ring. Unlike Subscribe there is no
// forwarder goroutine between the dispatcher and the caller, so after the
// network delivers a message it is visible here immediately — which is what
// lets timeout-driven loops (internal/fdimpl) drain their traffic
// synchronously before acting on a tick. Do not mix with Subscribe on the
// same instance.
func (ep *Endpoint) TryRecv(instance string) (Message, bool) {
	return ep.Instance(instance).TryRecv()
}

// Instance is an interned handle on one (process, instance) pair: the mailbox
// and counters are resolved once at Instance() time, so sends, broadcasts and
// receives through the handle perform no map lookups. The zero Instance is
// invalid. Instance values are cheap to copy and safe for concurrent use.
type Instance struct {
	ep *Endpoint
	st *instState
}

// Name returns the interned instance name.
func (in Instance) Name() string { return in.st.name }

// Send sends a message of this instance to process "to".
func (in Instance) Send(to model.ProcessID, typ string, payload any) {
	in.ep.net.sendTo(in.st, in.ep.id, to, typ, 0, 0, payload)
}

// SendAux sends a message whose scalar content rides in the envelope's Aux
// words (see Message): no payload box is allocated when payload is nil.
func (in Instance) SendAux(to model.ProcessID, typ string, aux, aux2 int64, payload any) {
	in.ep.net.sendTo(in.st, in.ep.id, to, typ, aux, aux2, payload)
}

// Broadcast sends the message to every process through the batched enqueue
// fast path (a single queue-lock acquisition for the whole fan-out).
func (in Instance) Broadcast(typ string, payload any) {
	in.ep.net.broadcast(in.st, in.ep.id, typ, 0, 0, payload)
}

// BroadcastAux is Broadcast with the envelope's scalar Aux words set; like
// SendAux it allocates no payload box when payload is nil.
func (in Instance) BroadcastAux(typ string, aux, aux2 int64, payload any) {
	in.ep.net.broadcast(in.st, in.ep.id, typ, aux, aux2, payload)
}

// Subscribe returns the channel facade over this process's mailbox; see
// Endpoint.Subscribe.
func (in Instance) Subscribe() <-chan Message {
	return in.box().subscribe()
}

// TryRecv pops the next buffered message without blocking; see
// Endpoint.TryRecv.
func (in Instance) TryRecv() (Message, bool) {
	return in.box().tryPop()
}

// Recv blocks until a message for this process is buffered and pops it. It
// returns ok=false when the mailbox has stopped (network close) or the wait
// was interrupted by Wake — callers must then re-check their own stop
// conditions and may simply call Recv again. Unlike Subscribe there is no
// forwarder goroutine or channel between the dispatcher and the caller: the
// dispatcher's push wakes the receiver directly, one handoff per message. Do
// not mix with Subscribe on the same instance.
func (in Instance) Recv() (Message, bool) {
	return in.box().recv()
}

// Handler is a synchronous message consumer registered with Instance.Handle.
// It is an interface rather than a func value so that registering a
// pointer-backed participant allocates nothing (boxing a pointer into an
// interface is free; wrapping a method in a func value is a heap closure).
type Handler interface {
	// HandleMessage is invoked on the network's dispatch goroutine, once per
	// delivered message, in delivery order. It must not block.
	HandleMessage(Message)
}

// Handle registers h as this process's delivery handler for the instance:
// the dispatcher invokes it synchronously, on the dispatch goroutine, for
// every message instead of buffering into the mailbox ring. It is the
// zero-goroutine consumption mode for purely reactive participants — no
// per-process receive loop, no wakeup, no handoff; the cost of an idle
// participant is nothing at all.
//
// The handler must not block (it stalls delivery for the whole network if it
// does) and must not call Recv/TryRecv/Subscribe on this instance; sending —
// including broadcasts — is fine, the events are enqueued for later
// dispatch. Messages already buffered before Handle are not replayed;
// register the handler before traffic starts. Passing nil restores buffered
// delivery.
func (in Instance) Handle(h Handler) {
	in.box().setHandler(h)
}

// Wake interrupts this process's pending and future Recv calls on the
// instance, making them return ok=false so the receiving loop can observe a
// stop condition. One Wake releases all current waiters.
func (in Instance) Wake() {
	in.box().wake()
}

// WakeAll interrupts the pending Recv calls of every process on this
// instance, so a group-level shutdown can release all receiving loops at
// once. Loops whose own stop condition has not been signalled simply observe
// a spurious wake and block again.
func (in Instance) WakeAll() {
	for i := range in.st.boxes {
		in.st.boxes[i].wake()
	}
}

func (in Instance) box() *mailbox { return &in.st.boxes[int(in.ep.id)] }

// adoptTimer ties a timer's lifetime to the process: crash or network close
// stops it, so an exiting protocol loop cannot freeze virtual time. Dead
// timers (stopped, or one-shots that fired) are compacted away on each adopt
// so per-operation timers do not accumulate for the network's lifetime.
func (ep *Endpoint) adoptTimer(t *Timer) {
	ep.mu.Lock()
	dead := ep.crashed.Load() || ep.net.closed.Load()
	if !dead {
		if ep.timers == nil {
			// First adoption (or first after a stopTimers sweep, which only
			// happens once the process is dead): borrow the inline array so
			// the common ≤4-lease case allocates no list. stopTimers hands
			// the backing away, but never to a process that can adopt again.
			ep.timers = ep.timerArr[:0]
		}
		live := ep.timers[:0]
		for _, old := range ep.timers {
			if !old.Stopped() {
				live = append(live, old)
			}
		}
		for i := len(live); i < len(ep.timers); i++ {
			ep.timers[i] = nil
		}
		ep.timers = append(live, t)
	}
	ep.mu.Unlock()
	if dead {
		t.Stop()
	}
}

func (ep *Endpoint) stopTimers() {
	ep.mu.Lock()
	timers := ep.timers
	ep.timers = nil
	ep.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// mailbox is an unbounded FIFO queue: push never blocks the dispatcher, and
// consumers take messages either directly (tryPop, recv) or through a lazily
// created channel facade (subscribe). Internally it is a ring buffer with
// condition-variable wakeup; consumed slots are cleared and the backing array
// is reused, unlike the old q = q[1:] slice pump, which pinned every
// delivered payload until the slice reallocated.
//
// The push fast path is lock-light: when no reader is blocked (the common
// case for TryRecv-driven consumers, and for reactive consumers that are
// busy processing) push is a mutex-protected ring write with no
// condition-variable signal at all — waiters are counted, and the signal is
// issued only when someone is actually waiting.
type mailbox struct {
	mu      sync.Mutex
	cond    sync.Cond
	buf     []Message
	head    int
	count   int
	waiters int
	wakes   uint64
	closed  bool
	handler Handler
	watcher *Task // step-mode task woken per push; see Instance.Watch

	out     chan Message
	quit    chan struct{}
	subOnce sync.Once
}

// init prepares a zero mailbox in place (mailboxes live in the instState's
// contiguous array). The subscriber channel and its forwarder are created
// lazily on first subscribe, so TryRecv/Recv-only consumers never pay for
// them.
func (m *mailbox) init() {
	m.cond.L = &m.mu
}

// subscribe returns the channel facade, creating it and starting the
// forwarder on first use so that TryRecv-only consumers never compete with
// it.
func (m *mailbox) subscribe() <-chan Message {
	m.subOnce.Do(func() {
		m.mu.Lock()
		m.out = make(chan Message)
		m.quit = make(chan struct{}, 1)
		if m.closed {
			m.quit <- struct{}{}
		}
		m.mu.Unlock()
		go m.forward()
	})
	m.mu.Lock()
	out := m.out
	m.mu.Unlock()
	return out
}

func (m *mailbox) push(msg Message) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if h := m.handler; h != nil {
		// Handler mode: deliver synchronously on the pushing (dispatcher)
		// goroutine, bypassing the ring. The handler is called outside the
		// lock so it can trigger sends without re-entering the mailbox.
		m.mu.Unlock()
		h.HandleMessage(msg)
		return
	}
	if m.count == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.count)%len(m.buf)] = msg
	m.count++
	awaken := m.waiters > 0
	watcher := m.watcher
	m.mu.Unlock()
	if awaken {
		m.cond.Signal()
	}
	watcher.Wake()
}

// grow doubles the ring, re-linearising the live window. Caller holds m.mu.
func (m *mailbox) grow() {
	newCap := 2 * len(m.buf)
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]Message, newCap)
	for i := 0; i < m.count; i++ {
		buf[i] = m.buf[(m.head+i)%len(m.buf)]
	}
	m.buf, m.head = buf, 0
}

// pop blocks until a message is queued or the mailbox stops.
func (m *mailbox) pop() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.count == 0 && !m.closed {
		m.waiters++
		m.cond.Wait()
		m.waiters--
	}
	if m.closed {
		return Message{}, false
	}
	return m.popLocked(), true
}

// recv blocks like pop but is additionally released by wake, returning
// ok=false without popping so the caller can re-check its stop conditions.
func (m *mailbox) recv() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entered := m.wakes
	for m.count == 0 && !m.closed && m.wakes == entered {
		m.waiters++
		m.cond.Wait()
		m.waiters--
	}
	if m.closed || m.count == 0 {
		return Message{}, false
	}
	return m.popLocked(), true
}

// wake releases all blocked recv calls; see Instance.Wake.
func (m *mailbox) setHandler(h Handler) {
	m.mu.Lock()
	m.handler = h
	m.mu.Unlock()
}

func (m *mailbox) wake() {
	m.mu.Lock()
	m.wakes++
	m.mu.Unlock()
	m.cond.Broadcast()
}

// tryPop pops the next message if one is queued, without blocking.
func (m *mailbox) tryPop() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.count == 0 {
		return Message{}, false
	}
	return m.popLocked(), true
}

func (m *mailbox) popLocked() Message {
	msg := m.buf[m.head]
	m.buf[m.head] = Message{} // release the payload reference
	m.head = (m.head + 1) % len(m.buf)
	m.count--
	return msg
}

// forward is the mailbox's only goroutine (started on first subscribe): it
// moves messages from the ring to the subscriber channel.
func (m *mailbox) forward() {
	for {
		msg, ok := m.pop()
		if !ok {
			return
		}
		select {
		case m.out <- msg:
		case <-m.quit:
			return
		}
	}
}

func (m *mailbox) stop() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	quit := m.quit
	m.mu.Unlock()
	m.cond.Broadcast()
	if quit != nil {
		select {
		case quit <- struct{}{}:
		default:
		}
	}
}
