// Package net is the asynchronous message-passing runtime used by the
// protocol packages: an in-memory network of n processes connected by
// reliable links with unbounded (randomised) delays, plus crash injection.
//
// It realises the system model of Section 2 of the paper: processes fail only
// by crashing, links never lose or corrupt messages between processes that do
// not crash, and there is no bound processes may rely on for message delay.
// Crashes are recorded into a live model.FailurePattern, which is the ground
// truth read by the oracle failure detectors in internal/fd and by the
// specification checkers.
//
// # Execution substrate
//
// Delivery is a discrete-event scheduler, not a goroutine per message: every
// send pushes a (deliveryTime, seq) event onto a min-heap drained by one
// dispatcher goroutine. By default the scheduler runs in virtual time — the
// injected delay determines the delivery order exactly as it would in real
// time, but waiting for it costs zero wall-clock time, so a run executes as
// fast as the hardware allows and, for a batch of sends enqueued under
// Freeze/Thaw with WithSeed, deterministically. WithRealTime switches the same scheduler to
// wall-clock waits for fidelity experiments. Timers (Endpoint.NewTicker,
// Endpoint.NewTimer) ride the same event heap, which is how heartbeat-style
// failure detectors stay meaningful when time is virtual. See ARCHITECTURE.md
// for the scheduler's design and its determinism guarantees.
package net

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/trace"
)

// Option configures a Network.
type Option func(*Network)

// WithDelays sets the per-message delivery delay range. Delays are drawn
// uniformly from [min, max]. The default is [0, 200µs], which is enough to
// reorder messages aggressively; in virtual-time mode the magnitude is free.
func WithDelays(min, max time.Duration) Option {
	return func(n *Network) {
		n.minDelay, n.maxDelay = min, max
	}
}

// WithSeed seeds the delay generator. The drawn delay sequence is a pure
// function of the seed and enqueue order; in virtual-time mode the delivery
// order of a batch enqueued under Freeze/Thaw is then fully reproducible
// (the virtual clock is still during a freeze, so the whole batch shares one
// base time). Free-running senders racing the dispatcher (or each other)
// reintroduce enqueue-order and base-time nondeterminism.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.seed = seed }
}

// WithRealTime makes the scheduler wait out delays and timer deadlines on the
// wall clock instead of virtual time. Use it for wall-clock fidelity tests;
// everything else is faster and more reproducible in the default virtual-time
// mode.
func WithRealTime() Option {
	return func(n *Network) { n.realtime = true }
}

// WithDropRate makes every message be dropped independently with probability
// p ∈ [0, 1]. Drop decisions are drawn from a dedicated seeded RNG stream, so
// turning losses on (or off) never shifts the delay sequence of the messages
// that survive. The paper's model assumes reliable links between correct
// processes, so a lossy network is an adversarial knob for safety-only runs:
// protocol liveness may legitimately be lost when p > 0.
func WithDropRate(p float64) Option {
	return func(n *Network) {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("net: drop rate %v outside [0, 1]", p))
		}
		n.dropRate = p
	}
}

// WithMetrics attaches a metrics sink; the network counts sent, delivered and
// dropped messages into it.
func WithMetrics(m *trace.Metrics) Option {
	return func(n *Network) { n.metrics = m }
}

// WithLog attaches an event log; the network records crashes into it. Without
// it the network's log is nil, which trace.Log accepts and discards.
func WithLog(l *trace.Log) Option {
	return func(n *Network) { n.log = l }
}

// Network is an in-memory asynchronous network of n processes. Create one
// with NewNetwork, hand each protocol participant its Endpoint, inject
// crashes with Crash, and Close it when the run is over.
type Network struct {
	n        int
	clock    *Clock
	pattern  *model.FailurePattern
	metrics  *trace.Metrics
	log      *trace.Log
	minDelay time.Duration
	maxDelay time.Duration
	seed     int64
	dropRate float64
	realtime bool

	q *eventQueue

	cSent      *trace.Counter
	cDelivered *trace.Counter
	cDropped   *trace.Counter
	instSent   sync.Map // instance string -> *trace.Counter, interned once

	endpoints []*Endpoint
	closed    atomic.Bool
	wg        sync.WaitGroup
}

// NewNetwork creates a network of n processes with no crashes yet.
func NewNetwork(n int, opts ...Option) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("net: invalid process count %d", n))
	}
	nw := &Network{
		n:        n,
		clock:    NewClock(),
		pattern:  model.NewFailurePattern(n),
		metrics:  trace.NewMetrics(),
		minDelay: 0,
		maxDelay: 200 * time.Microsecond,
		seed:     1,
	}
	for _, o := range opts {
		o(nw)
	}
	nw.cSent = nw.metrics.Counter("msgs.sent")
	nw.cDelivered = nw.metrics.Counter("msgs.delivered")
	nw.cDropped = nw.metrics.Counter("msgs.dropped")
	nw.q = newEventQueue(nw.seed, nw.minDelay, nw.maxDelay, nw.dropRate, nw.realtime)
	nw.endpoints = make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		nw.endpoints[i] = &Endpoint{
			id:     model.ProcessID(i),
			net:    nw,
			ctx:    ctx,
			cancel: cancel,
			boxes:  make(map[string]*mailbox),
		}
	}
	nw.wg.Add(1)
	go nw.dispatch()
	return nw
}

// N returns the number of processes.
func (nw *Network) N() int { return nw.n }

// Clock returns the network's logical clock.
func (nw *Network) Clock() *Clock { return nw.clock }

// Pattern returns the live failure pattern recording the crashes injected so
// far. Oracle failure detectors and specification checkers read it.
func (nw *Network) Pattern() *model.FailurePattern { return nw.pattern }

// Metrics returns the network's metrics sink.
func (nw *Network) Metrics() *trace.Metrics { return nw.metrics }

// Endpoint returns process p's endpoint.
func (nw *Network) Endpoint(p model.ProcessID) *Endpoint {
	return nw.endpoints[int(p)]
}

// Crash kills process p: its crash is recorded in the failure pattern at the
// current logical time, its context is cancelled, its timers are stopped, and
// no further messages are delivered to or accepted from it. Crashing an
// already-crashed process is a no-op.
func (nw *Network) Crash(p model.ProcessID) {
	ep := nw.endpoints[int(p)]
	if ep.crashed.Swap(true) {
		return
	}
	t := nw.clock.Tick()
	nw.pattern.Crash(p, t)
	nw.log.Append(t, p, "crash", "process crashed")
	nw.metrics.Inc("crashes")
	ep.cancel()
	ep.stopTimers()
}

// ScheduleCrash enqueues a crash of process p after the given span of virtual
// time. Unlike a Crash call from an arbitrary goroutine, a scheduled crash is
// executed by the dispatcher itself when the event queue reaches its
// timestamp, so it is ordered against message deliveries and timer fires
// exactly by (deliveryTime, seq) — the crash timing of a seeded scenario is
// part of the schedule, not a wall-clock race. Scheduling a crash for an
// already-crashed process is a harmless no-op when the event fires.
func (nw *Network) ScheduleCrash(p model.ProcessID, after time.Duration) {
	if int(p) < 0 || int(p) >= nw.n {
		panic(fmt.Sprintf("net: scheduled crash of out-of-range process %v", p))
	}
	nw.q.pushCrash(p, int64(nw.q.virtualNow())+int64(after))
}

// Crashed reports whether p has crashed.
func (nw *Network) Crashed(p model.ProcessID) bool {
	return nw.endpoints[int(p)].crashed.Load()
}

// Alive returns the set of processes that have not crashed.
func (nw *Network) Alive() model.ProcessSet {
	s := model.NewProcessSet()
	for i, ep := range nw.endpoints {
		if !ep.crashed.Load() {
			s.Add(model.ProcessID(i))
		}
	}
	return s
}

// Close shuts the network down: all endpoints' contexts are cancelled, all
// timers are stopped, the dispatcher drains, and all mailboxes stop. A closed
// network drops every subsequent send.
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	for _, ep := range nw.endpoints {
		ep.cancel()
		ep.stopTimers()
	}
	if dropped := nw.q.close(); dropped > 0 {
		nw.cDropped.Add(int64(dropped))
	}
	nw.wg.Wait()
	for _, ep := range nw.endpoints {
		ep.closeBoxes()
	}
}

// Freeze pauses event dispatch: sends and timer schedules are accepted and
// queued, but nothing is delivered until Thaw. Use it to construct a batch of
// events atomically — the scheduler then dispatches the whole batch in exact
// (delay, enqueue-seq) order, which is what makes a seeded scenario's
// delivery order fully deterministic regardless of how goroutines race the
// dispatcher. Scenario drivers use it to lay out adversarial schedules before
// releasing them.
func (nw *Network) Freeze() { nw.q.setHeld(true) }

// Thaw resumes event dispatch after Freeze.
func (nw *Network) Thaw() { nw.q.setHeld(false) }

// send enqueues an asynchronous delivery of msg. It is a no-op if the network
// is closed or the sender has crashed.
func (nw *Network) send(msg Message) {
	if nw.closed.Load() || nw.Crashed(msg.From) {
		nw.cDropped.Inc()
		return
	}
	if int(msg.To) < 0 || int(msg.To) >= nw.n {
		panic(fmt.Sprintf("net: send to out-of-range process %v", msg.To))
	}
	msg.SentAt = nw.clock.Tick()
	nw.cSent.Inc()
	nw.instCounter(msg.Instance).Inc()
	if !nw.q.pushMessage(msg) {
		nw.cDropped.Inc()
	}
}

// instCounter returns the interned per-instance sent counter, building the
// "msgs.sent.<instance>" key only on the first send of each instance.
func (nw *Network) instCounter(instance string) *trace.Counter {
	if c, ok := nw.instSent.Load(instance); ok {
		return c.(*trace.Counter)
	}
	c, _ := nw.instSent.LoadOrStore(instance, nw.metrics.Counter("msgs.sent."+instance))
	return c.(*trace.Counter)
}

// dispatch is the single delivery goroutine: it drains the event queue in
// (deliveryTime, seq) order, delivering messages into mailboxes, firing
// timers and executing scheduled crashes. Events that are due at the same
// virtual instant are popped as one batch under a single lock acquisition
// (the delivery path is handoff-bound, so per-event locking was the hot
// spot). No goroutine is ever spawned per message.
func (nw *Network) dispatch() {
	defer nw.wg.Done()
	var batch []event
	for {
		var ok bool
		batch, ok = nw.q.popBatch(batch[:0])
		if !ok {
			return
		}
		for i := range batch {
			ev := &batch[i]
			switch ev.kind {
			case evMessage:
				if nw.closed.Load() || nw.Crashed(ev.msg.To) {
					nw.cDropped.Inc()
				} else {
					nw.clock.Tick()
					nw.cDelivered.Inc()
					nw.endpoints[int(ev.msg.To)].deliver(ev.msg)
				}
			case evTimer:
				ev.tm.fired(ev.at)
			case evCrash:
				nw.Crash(ev.msg.To)
			}
			*ev = event{} // release payload references held by the batch buffer
		}
	}
}

// Endpoint is a process's connection to the network. A protocol participant
// running at process p sends through it and subscribes to per-instance
// message streams.
type Endpoint struct {
	id      model.ProcessID
	net     *Network
	ctx     context.Context
	cancel  context.CancelFunc
	crashed atomic.Bool

	mu     sync.Mutex
	boxes  map[string]*mailbox
	timers []*Timer
}

// ID returns the process identifier of this endpoint.
func (ep *Endpoint) ID() model.ProcessID { return ep.id }

// N returns the number of processes in the network.
func (ep *Endpoint) N() int { return ep.net.n }

// Context is cancelled when the process crashes or the network closes.
// Protocol loops must select on it so that crashed processes stop taking
// steps.
func (ep *Endpoint) Context() context.Context { return ep.ctx }

// Crashed reports whether this process has crashed.
func (ep *Endpoint) Crashed() bool { return ep.crashed.Load() }

// Clock returns the network's logical clock.
func (ep *Endpoint) Clock() *Clock { return ep.net.clock }

// Network returns the network this endpoint belongs to.
func (ep *Endpoint) Network() *Network { return ep.net }

// Send sends a message of the given instance and type to process "to".
func (ep *Endpoint) Send(to model.ProcessID, instance, typ string, payload any) {
	ep.net.send(Message{From: ep.id, To: to, Instance: instance, Type: typ, Payload: payload})
}

// Broadcast sends the message to every process, including the sender itself
// (the paper's algorithms routinely "send to all" and rely on receiving their
// own message).
func (ep *Endpoint) Broadcast(instance, typ string, payload any) {
	for i := 0; i < ep.net.n; i++ {
		ep.Send(model.ProcessID(i), instance, typ, payload)
	}
}

// Subscribe returns the channel of messages addressed to this process for the
// given protocol instance. Messages that arrive before the first Subscribe
// call are buffered, so subscribing after communication has started does not
// lose messages. Each instance has a single stream; concurrent readers drain
// it cooperatively. Do not mix Subscribe and TryRecv on one instance: the
// channel's forwarder goroutine would race TryRecv for messages.
func (ep *Endpoint) Subscribe(instance string) <-chan Message {
	return ep.box(instance).subscribe()
}

// TryRecv pops the next buffered message for the given instance without
// blocking, straight from the mailbox ring. Unlike Subscribe there is no
// forwarder goroutine between the dispatcher and the caller, so after the
// network delivers a message it is visible here immediately — which is what
// lets timeout-driven loops (internal/fdimpl) drain their traffic
// synchronously before acting on a tick. Do not mix with Subscribe on the
// same instance.
func (ep *Endpoint) TryRecv(instance string) (Message, bool) {
	return ep.box(instance).tryPop()
}

func (ep *Endpoint) box(instance string) *mailbox {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	b, ok := ep.boxes[instance]
	if !ok {
		b = newMailbox()
		ep.boxes[instance] = b
	}
	return b
}

func (ep *Endpoint) deliver(msg Message) {
	ep.box(msg.Instance).push(msg)
}

// adoptTimer ties a timer's lifetime to the process: crash or network close
// stops it, so an exiting protocol loop cannot freeze virtual time. Dead
// timers (stopped, or one-shots that fired) are compacted away on each adopt
// so per-operation timers do not accumulate for the network's lifetime.
func (ep *Endpoint) adoptTimer(t *Timer) {
	ep.mu.Lock()
	dead := ep.crashed.Load() || ep.net.closed.Load()
	if !dead {
		live := ep.timers[:0]
		for _, old := range ep.timers {
			if !old.stopped.Load() {
				live = append(live, old)
			}
		}
		for i := len(live); i < len(ep.timers); i++ {
			ep.timers[i] = nil
		}
		ep.timers = append(live, t)
	}
	ep.mu.Unlock()
	if dead {
		t.Stop()
	}
}

func (ep *Endpoint) stopTimers() {
	ep.mu.Lock()
	timers := ep.timers
	ep.timers = nil
	ep.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

func (ep *Endpoint) closeBoxes() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for _, b := range ep.boxes {
		b.stop()
	}
}

// mailbox is an unbounded FIFO queue with a channel interface: push never
// blocks the dispatcher, and out delivers in FIFO order. Internally it is a
// ring buffer with condition-variable wakeup; consumed slots are cleared and
// the backing array is reused, unlike the old q = q[1:] slice pump, which
// pinned every delivered payload until the slice reallocated.
type mailbox struct {
	mu     sync.Mutex
	cond   sync.Cond
	buf    []Message
	head   int
	count  int
	closed bool

	out     chan Message
	quit    chan struct{}
	once    sync.Once
	subOnce sync.Once
}

func newMailbox() *mailbox {
	m := &mailbox{
		out:  make(chan Message),
		quit: make(chan struct{}),
	}
	m.cond.L = &m.mu
	return m
}

// subscribe returns the channel facade, starting the forwarder on first use
// so that TryRecv-only consumers never compete with it.
func (m *mailbox) subscribe() <-chan Message {
	m.subOnce.Do(func() { go m.forward() })
	return m.out
}

func (m *mailbox) push(msg Message) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.count == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.count)%len(m.buf)] = msg
	m.count++
	m.mu.Unlock()
	m.cond.Signal()
}

// grow doubles the ring, re-linearising the live window. Caller holds m.mu.
func (m *mailbox) grow() {
	newCap := 2 * len(m.buf)
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]Message, newCap)
	for i := 0; i < m.count; i++ {
		buf[i] = m.buf[(m.head+i)%len(m.buf)]
	}
	m.buf, m.head = buf, 0
}

// pop blocks until a message is queued or the mailbox stops.
func (m *mailbox) pop() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.count == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.closed {
		return Message{}, false
	}
	return m.popLocked(), true
}

// tryPop pops the next message if one is queued, without blocking.
func (m *mailbox) tryPop() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.count == 0 {
		return Message{}, false
	}
	return m.popLocked(), true
}

func (m *mailbox) popLocked() Message {
	msg := m.buf[m.head]
	m.buf[m.head] = Message{} // release the payload reference
	m.head = (m.head + 1) % len(m.buf)
	m.count--
	return msg
}

// forward is the mailbox's only goroutine: it moves messages from the ring to
// the subscriber channel.
func (m *mailbox) forward() {
	for {
		msg, ok := m.pop()
		if !ok {
			return
		}
		select {
		case m.out <- msg:
		case <-m.quit:
			return
		}
	}
}

func (m *mailbox) stop() {
	m.once.Do(func() {
		m.mu.Lock()
		m.closed = true
		m.mu.Unlock()
		m.cond.Broadcast()
		close(m.quit)
	})
}
