// Package net is the asynchronous message-passing runtime used by the
// protocol packages: an in-memory network of n processes connected by
// reliable links with unbounded (randomised) delays, plus crash injection.
//
// It realises the system model of Section 2 of the paper: processes fail only
// by crashing, links never lose or corrupt messages between processes that do
// not crash, and there is no bound processes may rely on for message delay.
// Crashes are recorded into a live model.FailurePattern, which is the ground
// truth read by the oracle failure detectors in internal/fd and by the
// specification checkers.
package net

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/trace"
)

// Option configures a Network.
type Option func(*Network)

// WithDelays sets the per-message delivery delay range. Delays are drawn
// uniformly from [min, max]. The default is [0, 200µs], which is enough to
// reorder messages aggressively without slowing tests down.
func WithDelays(min, max time.Duration) Option {
	return func(n *Network) {
		n.minDelay, n.maxDelay = min, max
	}
}

// WithSeed seeds the delay generator, making the injected delays reproducible
// (goroutine scheduling remains a source of nondeterminism).
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithMetrics attaches a metrics sink; the network counts sent, delivered and
// dropped messages into it.
func WithMetrics(m *trace.Metrics) Option {
	return func(n *Network) { n.metrics = m }
}

// WithLog attaches an event log; the network records crashes into it.
func WithLog(l *trace.Log) Option {
	return func(n *Network) { n.log = l }
}

// Network is an in-memory asynchronous network of n processes. Create one
// with NewNetwork, hand each protocol participant its Endpoint, inject
// crashes with Crash, and Close it when the run is over.
type Network struct {
	n        int
	clock    *Clock
	pattern  *model.FailurePattern
	metrics  *trace.Metrics
	log      *trace.Log
	minDelay time.Duration
	maxDelay time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand

	endpoints []*Endpoint
	closed    atomic.Bool
	wg        sync.WaitGroup
}

// NewNetwork creates a network of n processes with no crashes yet.
func NewNetwork(n int, opts ...Option) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("net: invalid process count %d", n))
	}
	nw := &Network{
		n:        n,
		clock:    NewClock(),
		pattern:  model.NewFailurePattern(n),
		metrics:  trace.NewMetrics(),
		minDelay: 0,
		maxDelay: 200 * time.Microsecond,
		rng:      rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(nw)
	}
	nw.endpoints = make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		nw.endpoints[i] = &Endpoint{
			id:     model.ProcessID(i),
			net:    nw,
			ctx:    ctx,
			cancel: cancel,
			boxes:  make(map[string]*mailbox),
		}
	}
	return nw
}

// N returns the number of processes.
func (nw *Network) N() int { return nw.n }

// Clock returns the network's logical clock.
func (nw *Network) Clock() *Clock { return nw.clock }

// Pattern returns the live failure pattern recording the crashes injected so
// far. Oracle failure detectors and specification checkers read it.
func (nw *Network) Pattern() *model.FailurePattern { return nw.pattern }

// Metrics returns the network's metrics sink.
func (nw *Network) Metrics() *trace.Metrics { return nw.metrics }

// Endpoint returns process p's endpoint.
func (nw *Network) Endpoint(p model.ProcessID) *Endpoint {
	return nw.endpoints[int(p)]
}

// Crash kills process p: its crash is recorded in the failure pattern at the
// current logical time, its context is cancelled, and no further messages are
// delivered to or accepted from it. Crashing an already-crashed process is a
// no-op.
func (nw *Network) Crash(p model.ProcessID) {
	ep := nw.endpoints[int(p)]
	if ep.crashed.Swap(true) {
		return
	}
	t := nw.clock.Tick()
	nw.pattern.Crash(p, t)
	nw.log.Append(t, p, "crash", "process crashed")
	nw.metrics.Inc("crashes")
	ep.cancel()
}

// Crashed reports whether p has crashed.
func (nw *Network) Crashed(p model.ProcessID) bool {
	return nw.endpoints[int(p)].crashed.Load()
}

// Alive returns the set of processes that have not crashed.
func (nw *Network) Alive() model.ProcessSet {
	s := model.NewProcessSet()
	for i, ep := range nw.endpoints {
		if !ep.crashed.Load() {
			s.Add(model.ProcessID(i))
		}
	}
	return s
}

// Close shuts the network down: all endpoints' contexts are cancelled, all
// mailboxes stop, and in-flight delivery goroutines are awaited. A closed
// network drops every subsequent send.
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	for _, ep := range nw.endpoints {
		ep.cancel()
	}
	nw.wg.Wait()
	for _, ep := range nw.endpoints {
		ep.closeBoxes()
	}
}

func (nw *Network) delay() time.Duration {
	if nw.maxDelay <= nw.minDelay {
		return nw.minDelay
	}
	nw.rngMu.Lock()
	defer nw.rngMu.Unlock()
	return nw.minDelay + time.Duration(nw.rng.Int63n(int64(nw.maxDelay-nw.minDelay)+1))
}

// send enqueues an asynchronous delivery of msg. It is a no-op if the network
// is closed or the sender has crashed.
func (nw *Network) send(msg Message) {
	if nw.closed.Load() || nw.Crashed(msg.From) {
		nw.metrics.Inc("msgs.dropped")
		return
	}
	if int(msg.To) < 0 || int(msg.To) >= nw.n {
		panic(fmt.Sprintf("net: send to out-of-range process %v", msg.To))
	}
	msg.SentAt = nw.clock.Tick()
	nw.metrics.Inc("msgs.sent")
	nw.metrics.Inc("msgs.sent." + msg.Instance)
	d := nw.delay()
	nw.wg.Add(1)
	go func() {
		defer nw.wg.Done()
		if d > 0 {
			time.Sleep(d)
		}
		if nw.closed.Load() || nw.Crashed(msg.To) {
			nw.metrics.Inc("msgs.dropped")
			return
		}
		nw.clock.Tick()
		nw.metrics.Inc("msgs.delivered")
		nw.endpoints[int(msg.To)].deliver(msg)
	}()
}

// Endpoint is a process's connection to the network. A protocol participant
// running at process p sends through it and subscribes to per-instance
// message streams.
type Endpoint struct {
	id      model.ProcessID
	net     *Network
	ctx     context.Context
	cancel  context.CancelFunc
	crashed atomic.Bool

	mu    sync.Mutex
	boxes map[string]*mailbox
}

// ID returns the process identifier of this endpoint.
func (ep *Endpoint) ID() model.ProcessID { return ep.id }

// N returns the number of processes in the network.
func (ep *Endpoint) N() int { return ep.net.n }

// Context is cancelled when the process crashes or the network closes.
// Protocol loops must select on it so that crashed processes stop taking
// steps.
func (ep *Endpoint) Context() context.Context { return ep.ctx }

// Crashed reports whether this process has crashed.
func (ep *Endpoint) Crashed() bool { return ep.crashed.Load() }

// Clock returns the network's logical clock.
func (ep *Endpoint) Clock() *Clock { return ep.net.clock }

// Network returns the network this endpoint belongs to.
func (ep *Endpoint) Network() *Network { return ep.net }

// Send sends a message of the given instance and type to process "to".
func (ep *Endpoint) Send(to model.ProcessID, instance, typ string, payload any) {
	ep.net.send(Message{From: ep.id, To: to, Instance: instance, Type: typ, Payload: payload})
}

// Broadcast sends the message to every process, including the sender itself
// (the paper's algorithms routinely "send to all" and rely on receiving their
// own message).
func (ep *Endpoint) Broadcast(instance, typ string, payload any) {
	for i := 0; i < ep.net.n; i++ {
		ep.Send(model.ProcessID(i), instance, typ, payload)
	}
}

// Subscribe returns the channel of messages addressed to this process for the
// given protocol instance. Messages that arrive before the first Subscribe
// call are buffered, so subscribing after communication has started does not
// lose messages. Each instance has a single stream; concurrent readers drain
// it cooperatively.
func (ep *Endpoint) Subscribe(instance string) <-chan Message {
	return ep.box(instance).out
}

func (ep *Endpoint) box(instance string) *mailbox {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	b, ok := ep.boxes[instance]
	if !ok {
		b = newMailbox()
		ep.boxes[instance] = b
	}
	return b
}

func (ep *Endpoint) deliver(msg Message) {
	ep.box(msg.Instance).push(msg)
}

func (ep *Endpoint) closeBoxes() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for _, b := range ep.boxes {
		b.stop()
	}
}

// mailbox is an unbounded FIFO queue with a channel interface: push never
// blocks the network's delivery goroutines and out delivers in FIFO order.
type mailbox struct {
	in   chan Message
	out  chan Message
	quit chan struct{}
	once sync.Once
}

func newMailbox() *mailbox {
	m := &mailbox{
		in:   make(chan Message, 16),
		out:  make(chan Message),
		quit: make(chan struct{}),
	}
	go m.pump()
	return m
}

func (m *mailbox) push(msg Message) {
	select {
	case m.in <- msg:
	case <-m.quit:
	}
}

func (m *mailbox) stop() { m.once.Do(func() { close(m.quit) }) }

func (m *mailbox) pump() {
	var q []Message
	for {
		var out chan Message
		var head Message
		if len(q) > 0 {
			out = m.out
			head = q[0]
		}
		select {
		case msg := <-m.in:
			q = append(q, msg)
		case out <- head:
			q = q[1:]
		case <-m.quit:
			return
		}
	}
}
