package net

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"
)

// deliveryOrder sends k messages as one frozen batch from p0 to p1 on a
// fresh network with the given seed and returns the payload order in which
// they came out. Freeze makes the batch atomic: the dispatcher sorts the
// whole batch instead of racing the sender for a prefix of it.
func deliveryOrder(t *testing.T, seed int64, k int) []int {
	t.Helper()
	nw := NewNetwork(2, WithSeed(seed))
	defer nw.Close()
	inbox := nw.Endpoint(1).Subscribe("order")
	nw.Freeze()
	for i := 0; i < k; i++ {
		nw.Endpoint(0).Send(1, "order", "n", i)
	}
	nw.Thaw()
	got := make([]int, 0, k)
	for i := 0; i < k; i++ {
		select {
		case msg := <-inbox:
			got = append(got, msg.Payload.(int))
		case <-time.After(5 * time.Second):
			t.Fatalf("received only %d/%d messages", len(got), k)
		}
	}
	return got
}

// The virtual-time scheduler's contract: the delivery order of a serially
// enqueued batch is exactly the stable sort of (sampled delay, enqueue-seq).
// The old goroutine-per-message path could not promise this for any seed.
func TestVirtualDeliveryOrderIsSortedByDelayThenSeq(t *testing.T) {
	const k = 500
	for _, seed := range []int64{1, 7, 42, 99, 123456789} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Replay the RNG to reconstruct the delays the network drew.
			rng := splitmix64{x: uint64(seed)}
			minD, maxD := int64(0), int64(200*time.Microsecond)
			span := uint64(maxD-minD) + 1
			type exp struct {
				delay int64
				seq   int
			}
			exps := make([]exp, k)
			for i := range exps {
				exps[i] = exp{delay: minD + int64(rng.next()%span), seq: i}
			}
			sort.SliceStable(exps, func(a, b int) bool {
				if exps[a].delay != exps[b].delay {
					return exps[a].delay < exps[b].delay
				}
				return exps[a].seq < exps[b].seq
			})
			want := make([]int, k)
			for i, e := range exps {
				want[i] = e.seq
			}

			got := deliveryOrder(t, seed, k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("delivery order diverges from (delay, seq) sort at %d: got %d want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// Two runs of the same seeded scenario must produce identical delivery
// orders: the virtual-time scheduler is deterministic where the old
// sleep-based path depended on the whims of the goroutine scheduler.
func TestVirtualDeliveryOrderIsDeterministic(t *testing.T) {
	const k = 400
	for _, seed := range []int64{3, 2024} {
		a := deliveryOrder(t, seed, k)
		b := deliveryOrder(t, seed, k)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: runs diverge at position %d: %d vs %d", seed, i, a[i], b[i])
			}
		}
	}
}

// The delivery path must not spawn a goroutine per message: after thousands
// of in-flight sends the goroutine count stays within a small constant of the
// baseline (dispatcher + one forwarder per mailbox).
func TestNoGoroutinePerMessage(t *testing.T) {
	nw := NewNetwork(2, WithDelays(0, 100*time.Microsecond))
	defer nw.Close()
	nw.Endpoint(1).Subscribe("flood") // create the mailbox and its forwarder
	baseline := runtime.NumGoroutine()
	const k = 5000
	for i := 0; i < k; i++ {
		nw.Endpoint(0).Send(1, "flood", "n", i)
	}
	if g := runtime.NumGoroutine(); g > baseline+3 {
		t.Fatalf("goroutines grew from %d to %d with %d in-flight messages", baseline, g, k)
	}
}

// Closing a network with messages still queued must account for them:
// msgs.sent == msgs.delivered + msgs.dropped holds after Close.
func TestCloseBalancesMessageAccounting(t *testing.T) {
	nw := NewNetwork(2)
	nw.Endpoint(1).Subscribe("bal")
	nw.Freeze() // hold dispatch so the sends are still in the heap at Close
	const k = 25
	for i := 0; i < k; i++ {
		nw.Endpoint(0).Send(1, "bal", "m", i)
	}
	nw.Close()
	m := nw.Metrics()
	sent, delivered, dropped := m.Get("msgs.sent"), m.Get("msgs.delivered"), m.Get("msgs.dropped")
	if sent != k {
		t.Fatalf("msgs.sent = %d, want %d", sent, k)
	}
	if sent != delivered+dropped {
		t.Fatalf("accounting unbalanced: sent=%d delivered=%d dropped=%d", sent, delivered, dropped)
	}
}

// Crash on a network constructed without WithLog must not panic: the log
// field is a nil *trace.Log, whose Append is a documented no-op. Regression
// test for the nil-receiver path.
func TestCrashWithoutLogDoesNotPanic(t *testing.T) {
	nw := NewNetwork(2) // note: no WithLog
	defer nw.Close()
	nw.Crash(1)
	if !nw.Crashed(1) {
		t.Fatalf("crash not recorded")
	}
	if !nw.Pattern().Faulty().Contains(1) {
		t.Fatalf("crash missing from failure pattern")
	}
}

// The mailbox ring must wrap, grow, and preserve FIFO across both, with
// consumed slots released.
func TestMailboxRingWrapsAndGrows(t *testing.T) {
	m := new(mailbox)
	m.init()
	defer m.stop()
	out := m.subscribe()
	next := 0
	read := func(k int) {
		for i := 0; i < k; i++ {
			select {
			case msg := <-out:
				if msg.Payload.(int) != next {
					t.Fatalf("out of order: got %v want %d", msg.Payload, next)
				}
				next++
			case <-time.After(2 * time.Second):
				t.Fatalf("mailbox stalled at %d", next)
			}
		}
	}
	n := 0
	push := func(k int) {
		for i := 0; i < k; i++ {
			m.push(Message{Payload: n})
			n++
		}
	}
	push(10) // within initial capacity
	read(6)
	push(40) // forces growth with a non-zero head: re-linearisation path
	read(30)
	push(100) // forces another doubling after wrap
	read(114)
}

// Events pushed with equal virtual timestamps (zero delay) must come out in
// enqueue order even when interleaved with timestamped traffic.
func TestZeroDelayPreservesSendOrder(t *testing.T) {
	nw := NewNetwork(2, WithDelays(0, 0))
	defer nw.Close()
	inbox := nw.Endpoint(1).Subscribe("fifo")
	const k = 200
	for i := 0; i < k; i++ {
		nw.Endpoint(0).Send(1, "fifo", "n", i)
	}
	for i := 0; i < k; i++ {
		select {
		case msg := <-inbox:
			if msg.Payload.(int) != i {
				t.Fatalf("position %d: got %v", i, msg.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("stalled at %d", i)
		}
	}
}

// The drop-rate → threshold conversion must stay monotone and inside the
// uint64 range across the whole [0, 1] span, in particular for rates just
// below 1: scaling such a rate to the 64-bit comparison space lands within a
// few ULPs of 2⁶⁴, where a rounded-up product would make the float→uint64
// conversion implementation-defined (a threshold of 0 would turn a
// near-total-loss link into a fully reliable one).
func TestDropThresholdEdgeCases(t *testing.T) {
	cases := []struct {
		rate string
		in   float64
		min  uint64 // threshold lower bound
	}{
		{"half", 0.5, 1 << 63},
		{"just-below-one", math.Nextafter(1, 0), ^uint64(0) - 1<<12},
		{"one", 1, ^uint64(0)},
		{"above-one", 1.5, ^uint64(0)},
	}
	for _, tc := range cases {
		got := dropThresholdFor(tc.in)
		if got < tc.min {
			t.Errorf("%s: dropThresholdFor(%g) = %d, want >= %d", tc.rate, tc.in, got, tc.min)
		}
	}
	if a, b := dropThresholdFor(0.3), dropThresholdFor(0.7); a >= b {
		t.Errorf("threshold not monotone: %d (rate 0.3) >= %d (rate 0.7)", a, b)
	}
}

// A drop rate one ULP below 1 must behave as near-total loss, not as a
// reliable link: with the old unclamped conversion a rounded product of
// exactly 2⁶⁴ could yield threshold 0 and deliver everything.
func TestDropRateJustBelowOneDropsMessages(t *testing.T) {
	q := newEventQueue(2, 1, 0, 0, math.Nextafter(1, 0), false)
	delivered := 0
	for i := 0; i < 200; i++ {
		if q.pushMessage(Message{To: 0}, nil) {
			delivered++
		}
	}
	// P(survive) = 2048/2⁶⁴ per message; even one survivor in 200 sends
	// would be a ~1e-14 event, so any delivery indicates a broken clamp.
	if delivered != 0 {
		t.Fatalf("drop rate just below 1 delivered %d of 200 messages", delivered)
	}
	q.close()
}
