package net

import (
	"context"
	"sync"
	"time"
)

// Timer is a one-shot or periodic timer driven by the network's scheduler.
// In virtual-time mode it fires when the virtual clock reaches its deadline —
// instantly in wall-clock terms once no earlier event is pending — and in
// real-time mode it fires on the wall clock, like time.Timer.
//
// C receives the virtual time at which the timer fired. The channel is
// unbuffered and fed with backpressure: in virtual-time mode the dispatcher
// will not advance virtual time past a fire that its consumer has not yet
// taken, for any timer in the network. This keeps virtual time from
// galloping ahead of the goroutines it drives, which is what makes
// timeout-based failure detectors meaningful under virtual time.
//
// Timers created through an Endpoint are stopped automatically when the
// process crashes or the network closes; a consumer that stops receiving
// must call Stop, or virtual time freezes for the whole network.
//
// A Timer is a lease on a pooled core: the struct and channels behind it are
// recycled once the timer is stopped (or a one-shot has fired and been
// consumed). After Stop returns, or after a one-shot's single fire has been
// received, C must not be received from again — the channel may already be
// feeding a later lease.
type Timer struct {
	C <-chan time.Duration

	core *timerCore
	gen  uint64
}

// timerFire is one fire handed from the dispatcher to a core's feeder.
type timerFire struct {
	at  int64
	gen uint64
}

// timerCore is the pooled machinery behind a Timer lease: the consumer
// channel, the dispatcher→feeder fire channel and the stop signal are
// allocated once and reused across leases. gen identifies the current lease;
// heap events and fires carry the gen they were scheduled under, so anything
// left over from a dead lease is discarded instead of cross-talking.
type timerCore struct {
	c       chan time.Duration
	fire    chan timerFire // dispatcher -> feeder, capacity 1
	stopSig chan struct{}  // Stop -> feeder, capacity 1

	mu      sync.Mutex
	q       *eventQueue
	gen     uint64
	leaseID uint64 // run-local id of the current lease (eventQueue.nextLease)
	period  int64  // ns; 0 for one-shot
	stopped bool

	// Task binding (Timer.Bind): when owner is set, a fire wakes the owner
	// task and increments pending for Timer.TryFire instead of feeding the
	// channel — no feeder handoff, no outstanding-count backpressure; the
	// step scheduler's grant discipline paces virtual time exactly.
	owner   *Task
	pending int
}

// timerCorePool is a global freelist of timer cores. A parked core keeps its
// feeder goroutine alive (blocked in select, consuming nothing): leasing a
// pooled core therefore spawns no goroutine and allocates only the Timer
// handle. When the pool is full a released core is dropped for the GC, and
// its feeder exits.
type timerCorePool struct {
	mu   sync.Mutex
	free []*timerCore
}

const timerCorePoolCap = 4096

var timerCores timerCorePool

func (p *timerCorePool) get() *timerCore {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		tc := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return tc
	}
	p.mu.Unlock()
	tc := &timerCore{
		c:       make(chan time.Duration),
		fire:    make(chan timerFire, 1),
		stopSig: make(chan struct{}, 1),
	}
	go tc.feed()
	return tc
}

// put parks the core, reporting whether it was kept; on false the caller's
// feeder must exit, the core is garbage.
func (p *timerCorePool) put(tc *timerCore) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) >= timerCorePoolCap {
		return false
	}
	p.free = append(p.free, tc)
	return true
}

func newTimer(q *eventQueue, delay, period time.Duration) *Timer {
	tc := timerCores.get()
	tid := q.nextLease()
	tc.mu.Lock()
	tc.q = q
	tc.gen++
	tc.leaseID = tid
	tc.period = int64(period)
	tc.stopped = false
	gen := tc.gen
	tc.mu.Unlock()
	t := &Timer{C: tc.c, core: tc, gen: gen}
	q.scheduleTimer(tc, int64(q.virtualNow())+int64(delay), gen, tid)
	return t
}

// Stop terminates the timer. It never fires again, and a feeder blocked on an
// unconsumed fire is released. Stop is idempotent and safe to call
// concurrently with fires.
func (t *Timer) Stop() { t.core.stopLease(t.gen) }

// Bind routes this timer's fires to a step-scheduler task: instead of feeding
// the C channel (with its backpressure on virtual time), each fire wakes the
// task and banks one TryFire credit. The task consumes fires with the
// condition-recheck idiom — TryFire inside its Await loop. Bind must be called
// before the first fire can pop, i.e. by the task that created the timer
// during one of its own granted steps; binding a nil task is a no-op (the
// free-running call-site degrades to the channel path). A bound timer's C
// must not be received from.
func (t *Timer) Bind(task *Task) {
	if task == nil {
		return
	}
	tc := t.core
	tc.mu.Lock()
	if tc.gen == t.gen && !tc.stopped {
		tc.owner = task
	}
	tc.mu.Unlock()
}

// TryFire consumes one banked fire of a bound timer, reporting whether one
// was pending. For a ticker each fire banks one credit; for a one-shot at
// most one credit ever exists.
func (t *Timer) TryFire() bool {
	tc := t.core
	tc.mu.Lock()
	ok := tc.gen == t.gen && tc.pending > 0
	if ok {
		tc.pending--
	}
	tc.mu.Unlock()
	return ok
}

// Stopped reports whether the timer is dead: stopped explicitly, spent (a
// delivered one-shot), or already recycled into a later lease.
func (t *Timer) Stopped() bool {
	tc := t.core
	tc.mu.Lock()
	dead := tc.gen != t.gen || tc.stopped
	tc.mu.Unlock()
	return dead
}

func (tc *timerCore) stopLease(gen uint64) {
	tc.mu.Lock()
	if gen != tc.gen || tc.stopped {
		tc.mu.Unlock()
		return
	}
	tc.stopped = true
	// The lease is live, so its feeder is running and consumes the signal
	// before exiting; the channel (capacity 1) is therefore free.
	select {
	case tc.stopSig <- struct{}{}:
	default:
	}
	tc.mu.Unlock()
}

// fired is called by the dispatcher when a timer heap event pops. at is the
// virtual fire time, gen the lease the event was scheduled under; events of a
// dead lease are discarded here.
//
// A periodic timer reschedules eagerly, before its consumer has taken the
// fire: the next tick sits in the heap while the previous one counts as
// outstanding, so in virtual-time mode the clock freezes — for the whole
// network — until the slowest tick consumer has caught up. That is what
// stops virtual time from galloping past a descheduled process and tripping
// timeout-based failure detectors. (In real-time mode the wall clock paces
// pops instead, and a lagging consumer just loses ticks, like time.Ticker.)
//
// The fire is pushed while still holding the core's mutex: a concurrent Stop
// serialises either entirely before (and the push is skipped) or entirely
// after (and the live feeder drains the fire on exit), so an outstanding
// count can never be stranded with no feeder to release it.
func (tc *timerCore) fired(at int64, gen uint64) {
	tc.mu.Lock()
	if gen != tc.gen || tc.stopped {
		tc.mu.Unlock()
		return
	}
	if tc.period > 0 {
		tc.q.scheduleTimer(tc, at+tc.period, gen, tc.leaseID)
	}
	if tc.owner != nil {
		// Task-bound (step mode): bank a TryFire credit and wake the owner.
		// No outstanding count — the dispatcher delivers timer fires one at a
		// time and runs the woken task to its next park before popping
		// further events, so virtual time cannot outrun the consumer.
		tc.pending++
		owner := tc.owner
		tc.mu.Unlock()
		owner.Wake()
		return
	}
	tc.q.outstanding.Add(1)
	select {
	case tc.fire <- timerFire{at: at, gen: gen}:
	default:
		// Consumer more than one fire behind (possible only under real
		// time, where pops are wall-clock paced): drop the tick.
		tc.q.fireDone()
	}
	tc.mu.Unlock()
}

// feed is the core's persistent feeder: it forwards fires to the consumer
// with backpressure across successive leases, parking the core back on the
// freelist at each lease's end. The goroutine outlives leases (that is what
// makes re-leasing a pooled core allocation- and spawn-free) and exits only
// when the full pool drops the core.
//
// A parked core's channels are empty (endLease drains them with the lease
// already marked stopped, so nothing can be sent concurrently), which is the
// invariant that lets the feeder block on the same select whether the core is
// leased or parked.
func (tc *timerCore) feed() {
	for {
		select {
		case f := <-tc.fire:
			tc.mu.Lock()
			q := tc.q
			live := f.gen == tc.gen && !tc.stopped
			period := tc.period
			tc.mu.Unlock()
			if !live {
				// The lease died between fired's push and here (Stop won the
				// race): release the outstanding count and wait for the stop
				// token that is on its way.
				q.fireDone()
				continue
			}
			select {
			case tc.c <- time.Duration(f.at):
				q.fireDone()
				if period == 0 {
					// A delivered one-shot is spent: the lease ends here.
					tc.mu.Lock()
					tc.stopped = true
					tc.mu.Unlock()
					if !tc.endLease(q) {
						return
					}
				}
			case <-tc.stopSig:
				q.fireDone()
				if !tc.endLease(q) {
					return
				}
			}
		case <-tc.stopSig:
			tc.mu.Lock()
			q := tc.q
			tc.mu.Unlock()
			if !tc.endLease(q) {
				return
			}
		}
	}
}

// endLease drains lease residue, invalidates the lease and parks the core on
// the freelist, reporting whether the core was kept (false: pool full, the
// feeder must exit). The lease is already marked stopped on every path that
// gets here, so neither fired nor stopLease can send a new token between the
// drain and the gen bump. Pending heap events of the old lease are discarded
// by fired's gen check, which never touches q, so clearing it here cannot
// race them.
func (tc *timerCore) endLease(q *eventQueue) bool {
	select {
	case <-tc.fire:
		q.fireDone()
	default:
	}
	select {
	case <-tc.stopSig:
	default:
	}
	tc.mu.Lock()
	tc.gen++
	tc.leaseID = 0
	tc.stopped = true
	tc.q = nil
	tc.owner = nil
	tc.pending = 0
	tc.mu.Unlock()
	return timerCores.put(tc)
}

// VirtualNow returns the network's current virtual time: the timestamp of the
// latest dispatched event in virtual-time mode, or the wall-clock time since
// network creation in real-time mode.
func (nw *Network) VirtualNow() time.Duration { return nw.q.virtualNow() }

// NewTimer returns a timer that fires once after d of virtual time. The
// caller owns it and must Stop it if it abandons C before the fire.
func (nw *Network) NewTimer(d time.Duration) *Timer { return newTimer(nw.q, d, 0) }

// NewTicker returns a timer that fires every d of virtual time. The caller
// must Stop it.
func (nw *Network) NewTicker(d time.Duration) *Timer { return newTimer(nw.q, d, d) }

// VirtualNow returns the network's current virtual time.
func (ep *Endpoint) VirtualNow() time.Duration { return ep.net.q.virtualNow() }

// NewTimer returns a one-shot timer owned by this process: it is stopped
// automatically when the process crashes or the network closes.
func (ep *Endpoint) NewTimer(d time.Duration) *Timer {
	t := newTimer(ep.net.q, d, 0)
	ep.adoptTimer(t)
	return t
}

// NewTicker returns a periodic timer owned by this process: it is stopped
// automatically when the process crashes or the network closes.
func (ep *Endpoint) NewTicker(d time.Duration) *Timer {
	t := newTimer(ep.net.q, d, d)
	ep.adoptTimer(t)
	return t
}

// Sleep blocks this process for d of virtual time: instantly in wall-clock
// terms once no earlier event is pending, but ordered after everything the
// network delivers in the meantime. It returns nil after the wait, or the
// first relevant error if ctx is cancelled or the process crashes (a crashed
// process never finishes a sleep).
func (ep *Endpoint) Sleep(ctx context.Context, d time.Duration) error {
	if task := TaskFrom(ctx); task != nil {
		// Step mode: the sleep is a park point the scheduler can see. The
		// timer is created and bound during one of our own granted steps, so
		// its fire cannot pop before the binding is visible.
		t := ep.NewTimer(d)
		defer t.Stop()
		t.Bind(task)
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := ep.ctx.Err(); err != nil {
				return err
			}
			if t.TryFire() {
				return nil
			}
			task.Await(ctx)
		}
	}
	t := ep.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-ep.ctx.Done():
		return ep.ctx.Err()
	case <-t.C:
		return nil
	}
}
