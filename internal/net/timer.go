package net

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Timer is a one-shot or periodic timer driven by the network's scheduler.
// In virtual-time mode it fires when the virtual clock reaches its deadline —
// instantly in wall-clock terms once no earlier event is pending — and in
// real-time mode it fires on the wall clock, like time.Timer.
//
// C receives the virtual time at which the timer fired. The channel is
// unbuffered and fed with backpressure: in virtual-time mode the dispatcher
// will not advance virtual time past a fire that its consumer has not yet
// taken, for any timer in the network. This keeps virtual time from
// galloping ahead of the goroutines it drives, which is what makes
// timeout-based failure detectors meaningful under virtual time.
//
// Timers created through an Endpoint are stopped automatically when the
// process crashes or the network closes; a consumer that stops receiving
// must call Stop, or virtual time freezes for the whole network.
type Timer struct {
	C <-chan time.Duration

	c      chan time.Duration
	q      *eventQueue
	period int64 // ns; 0 for one-shot

	stopped  atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	fire     chan int64 // dispatcher -> feeder, capacity 1
}

func newTimer(q *eventQueue, delay, period time.Duration) *Timer {
	t := &Timer{
		c:      make(chan time.Duration),
		q:      q,
		period: int64(period),
		stop:   make(chan struct{}),
		fire:   make(chan int64, 1),
	}
	t.C = t.c
	go t.feed()
	q.scheduleTimer(t, int64(q.virtualNow())+int64(delay))
	return t
}

// Stop terminates the timer. It never fires again, and a feeder blocked on an
// unconsumed fire is released. Stop is idempotent and safe to call
// concurrently with fires.
func (t *Timer) Stop() {
	t.stopOnce.Do(func() {
		t.stopped.Store(true)
		close(t.stop)
	})
}

// fired is called by the dispatcher when the timer's heap event pops. at is
// the virtual fire time.
//
// A periodic timer reschedules eagerly, before its consumer has taken the
// fire: the next tick sits in the heap while the previous one counts as
// outstanding, so in virtual-time mode the clock freezes — for the whole
// network — until the slowest tick consumer has caught up. That is what
// stops virtual time from galloping past a descheduled process and tripping
// timeout-based failure detectors. (In real-time mode the wall clock paces
// pops instead, and a lagging consumer just loses ticks, like time.Ticker.)
func (t *Timer) fired(at int64) {
	if t.stopped.Load() {
		return
	}
	if t.period > 0 {
		t.q.scheduleTimer(t, at+t.period)
	}
	t.q.outstanding.Add(1)
	select {
	case t.fire <- at:
		if t.stopped.Load() {
			// The feeder may have exited between the check above and the
			// send; reclaim the fire if it is still queued so the
			// outstanding count cannot wedge virtual time.
			select {
			case <-t.fire:
				t.q.fireDone()
			default:
			}
		}
	default:
		// Consumer more than one fire behind (possible only under real
		// time, where pops are wall-clock paced): drop the tick.
		t.q.fireDone()
	}
}

// feed forwards fires to the consumer with backpressure.
func (t *Timer) feed() {
	defer func() {
		// Release any fire handed out but never delivered.
		select {
		case <-t.fire:
			t.q.fireDone()
		default:
		}
	}()
	for {
		select {
		case at := <-t.fire:
			select {
			case t.c <- time.Duration(at):
				t.q.fireDone()
			case <-t.stop:
				t.q.fireDone()
				return
			}
			if t.period == 0 {
				// A delivered one-shot is spent: mark it stopped so the
				// owning endpoint can compact it away.
				t.stopped.Store(true)
				return
			}
		case <-t.stop:
			return
		}
	}
}

// VirtualNow returns the network's current virtual time: the timestamp of the
// latest dispatched event in virtual-time mode, or the wall-clock time since
// network creation in real-time mode.
func (nw *Network) VirtualNow() time.Duration { return nw.q.virtualNow() }

// NewTimer returns a timer that fires once after d of virtual time. The
// caller owns it and must Stop it if it abandons C before the fire.
func (nw *Network) NewTimer(d time.Duration) *Timer { return newTimer(nw.q, d, 0) }

// NewTicker returns a timer that fires every d of virtual time. The caller
// must Stop it.
func (nw *Network) NewTicker(d time.Duration) *Timer { return newTimer(nw.q, d, d) }

// VirtualNow returns the network's current virtual time.
func (ep *Endpoint) VirtualNow() time.Duration { return ep.net.q.virtualNow() }

// NewTimer returns a one-shot timer owned by this process: it is stopped
// automatically when the process crashes or the network closes.
func (ep *Endpoint) NewTimer(d time.Duration) *Timer {
	t := newTimer(ep.net.q, d, 0)
	ep.adoptTimer(t)
	return t
}

// NewTicker returns a periodic timer owned by this process: it is stopped
// automatically when the process crashes or the network closes.
func (ep *Endpoint) NewTicker(d time.Duration) *Timer {
	t := newTimer(ep.net.q, d, d)
	ep.adoptTimer(t)
	return t
}

// Sleep blocks this process for d of virtual time: instantly in wall-clock
// terms once no earlier event is pending, but ordered after everything the
// network delivers in the meantime. It returns nil after the wait, or the
// first relevant error if ctx is cancelled or the process crashes (a crashed
// process never finishes a sleep).
func (ep *Endpoint) Sleep(ctx context.Context, d time.Duration) error {
	t := ep.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-ep.ctx.Done():
		return ep.ctx.Err()
	case <-t.C:
		return nil
	}
}
