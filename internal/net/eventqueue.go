package net

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"weakestfd/internal/model"
)

// eventKind discriminates the things the scheduler delivers: message
// deliveries, timer fires and scheduled crashes.
type eventKind uint8

const (
	evMessage eventKind = iota
	evTimer
	evCrash
)

// event is one pending delivery in the scheduler's priority queue, ordered by
// (at, seq): at is the virtual-nanosecond delivery time, seq the enqueue
// sequence number that breaks ties FIFO. A message event carries the mailbox
// it resolves to, interned at enqueue time, so the dispatcher delivers
// without any per-message map lookup. A timer event carries the core and the
// lease generation it was scheduled under. A crash event reuses msg.To as the
// crashing process.
type event struct {
	at     int64
	seq    uint64
	kind   eventKind
	tgen   uint64
	tid    uint64 // run-local timer lease id (see eventQueue.leases)
	sentAt int64  // message events: the enqueue-time base (at - sentAt is the drawn delay)
	msg    Message
	tm     *timerCore
	box    *mailbox
}

// splitmix64 is the cheap, statistically solid PRNG used to draw message
// delays. It lives inside the event queue and is only touched under the
// queue's lock, so there is no separate RNG mutex on the send path.
type splitmix64 struct{ x uint64 }

func (s *splitmix64) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// eventQueue is the discrete-event core of the network: a min-heap of
// (at, seq, event) drained by a single dispatcher goroutine.
//
// In virtual-time mode (the default) the queue never waits in wall-clock
// time: popping an event advances the virtual clock to the event's timestamp,
// so a 200µs injected delay reorders messages exactly as it would in real
// time but costs nothing. Message events are stamped now+delay, so a delay
// larger than a timer deadline really does land after that timer fires —
// delay distributions keep their adversarial meaning. During a Freeze the
// clock is still, so a frozen batch shares one base time and its delivery
// order is exactly the order obtained by sorting (delay, enqueue-seq) —
// deterministic given a seed, independent of goroutine scheduling. Timer
// events carry absolute
// virtual deadlines and are what actually moves the virtual clock forward.
//
// In real-time mode (WithRealTime) the same dispatcher waits on the wall
// clock until the earliest event's deadline, preserving wall-clock fidelity
// without the old goroutine-per-message cost.
type eventQueue struct {
	mu      sync.Mutex
	heap    []event // min-heap by (at, seq); hand-rolled to avoid interface boxing
	seq     uint64
	leases  uint64 // timer lease ids handed out by this queue (run-local)
	rng     splitmix64
	dropRng splitmix64 // separate stream so drop decisions never shift delay draws
	vnow    int64      // virtual now (ns); written under mu by the dispatcher

	minDelay, maxDelay int64  // message delay range, ns
	dropThreshold      uint64 // drop a message when dropRng.next() < threshold; 0 = reliable

	realtime bool
	epoch    time.Time // wall time of virtual zero (real-time mode)

	held   bool // dispatch paused by Network.Freeze
	closed bool

	vnowAtomic  atomic.Int64  // mirror of vnow for lock-free reads
	outstanding atomic.Int64  // timer fires handed out but not yet consumed
	notify      chan struct{} // poked on push
	consumed    chan struct{} // poked when an outstanding fire is consumed
	quit        chan struct{} // closed on close()
}

func newEventQueue(n int, seed int64, minDelay, maxDelay time.Duration, dropRate float64, realtime bool) *eventQueue {
	q := &eventQueue{
		heap:     make([]event, 0, eventHeapCap(n)),
		rng:      splitmix64{x: uint64(seed)},
		dropRng:  splitmix64{x: uint64(seed) ^ 0xd1b54a32d192ed03},
		minDelay: int64(minDelay),
		maxDelay: int64(maxDelay),
		realtime: realtime,
		notify:   make(chan struct{}, 1),
		consumed: make(chan struct{}, 1),
		quit:     make(chan struct{}),
	}
	if dropRate > 0 {
		q.dropThreshold = dropThresholdFor(dropRate)
	}
	if realtime {
		q.epoch = time.Now()
	}
	return q
}

// eventHeapCap sizes the event heap's initial backing array. The queue's
// high-water mark is set by broadcast storms — every participant reacting to
// one round of traffic with a broadcast of its own enqueues O(n²) events
// before the dispatcher drains them — so growing the heap from zero by
// append-doubling re-copies ~2× the peak on every fresh network. That churn,
// not the events themselves, dominated bytes/op of the consensus benchmarks
// (events are value types inside this one array; there is no per-event
// allocation to pool away). Pre-sizing to n² removes it; the clamp keeps tiny
// test networks cheap and bounds the up-front cost at large n, where one
// further doubling round is acceptable.
func eventHeapCap(n int) int {
	const minCap, maxCap = 64, 32768
	c := n * n
	if c < minCap {
		return minCap
	}
	if c > maxCap {
		return maxCap
	}
	return c
}

// dropThresholdFor converts a drop probability into the uint64 comparison
// threshold of pushMessage: a message is dropped when dropRng.next() falls
// below it. The scaling to the full 64-bit space uses math.Ldexp (an exact
// exponent shift, so rate*2⁶⁴ never rounds), and the result is clamped below
// 2⁶⁴ explicitly: a product that reaches 2⁶⁴ would make the float→uint64
// conversion implementation-defined — on some targets it yields 0, turning a
// near-total-loss link into a fully reliable one.
func dropThresholdFor(dropRate float64) uint64 {
	scaled := math.Ldexp(dropRate, 64)
	if scaled >= math.Ldexp(1, 64) {
		return ^uint64(0)
	}
	return uint64(scaled)
}

// virtualNow returns the current virtual time. In real-time mode it is the
// wall-clock time elapsed since the network was created.
func (q *eventQueue) virtualNow() time.Duration {
	if q.realtime {
		return time.Since(q.epoch)
	}
	return time.Duration(q.vnowAtomic.Load())
}

// drawDelay samples a delivery delay from [minDelay, maxDelay]. Caller holds
// q.mu.
func (q *eventQueue) drawDelay() int64 {
	if q.maxDelay <= q.minDelay {
		return q.minDelay
	}
	span := uint64(q.maxDelay-q.minDelay) + 1
	return q.minDelay + int64(q.rng.next()%span)
}

// base returns the enqueue-time origin deliveries are stamped from. Caller
// holds q.mu.
func (q *eventQueue) base() int64 {
	if q.realtime {
		return int64(time.Since(q.epoch))
	}
	return q.vnow
}

// pushMessage enqueues a delivery of msg into box at now+delay. It reports
// false if the queue is already closed or the lossy-link knob dropped the
// message. The delay is drawn under the queue lock, so enqueue order
// determines RNG consumption order; during a Freeze the virtual clock is
// necessarily still, so a frozen batch shares one base time and its delivery
// order is exactly the (delay, seq) sort. Drop decisions consume a dedicated
// RNG stream, so the delay sequence of the surviving messages is unchanged.
func (q *eventQueue) pushMessage(msg Message, box *mailbox) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.dropThreshold > 0 && q.dropRng.next() < q.dropThreshold {
		q.mu.Unlock()
		return false
	}
	base := q.base()
	at := base + q.drawDelay()
	q.seq++
	q.heapPush(event{at: at, seq: q.seq, kind: evMessage, sentAt: base, msg: msg, box: box})
	q.mu.Unlock()
	q.poke(q.notify)
	return true
}

// pushBroadcast enqueues one delivery of tmpl per process under a single lock
// acquisition: recipient i gets tmpl with To=i, SentAt=tmpl.SentAt+i, and its
// mailbox resolved from boxes[i]. It returns the number of deliveries
// enqueued (the rest were dropped by the lossy-link knob) and ok=false if the
// queue was already closed.
//
// Determinism contract: the RNG consumption per recipient — drop draw first
// (only when losses are enabled), then, for survivors only, one delay draw
// and one sequence number — is exactly the per-call order of pushMessage, in
// recipient order 0..n-1. A broadcast therefore consumes the seeded streams
// identically to the n-call serial loop it replaces, and the resulting
// (deliveryTime, seq) schedule is byte-identical; only the number of lock
// acquisitions and heap operations changes. The batch is appended and the
// heap re-established in one pass: a full bottom-up heapify when the run is
// large relative to the heap (container/heap's Init strategy, O(len) beats
// n× sift-up's O(n·log len)), per-element sift-up otherwise.
func (q *eventQueue) pushBroadcast(tmpl Message, boxes []mailbox) (enqueued int, ok bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, false
	}
	base := q.base()
	start := len(q.heap)
	for i := range boxes {
		if q.dropThreshold > 0 && q.dropRng.next() < q.dropThreshold {
			continue
		}
		at := base + q.drawDelay()
		q.seq++
		m := tmpl
		m.To = model.ProcessID(i)
		m.SentAt = tmpl.SentAt + model.Time(i)
		q.heap = append(q.heap, event{at: at, seq: q.seq, kind: evMessage, sentAt: base, msg: m, box: &boxes[i]})
	}
	enqueued = len(q.heap) - start
	if enqueued > 0 {
		q.restoreAppended(start)
	}
	q.mu.Unlock()
	if enqueued > 0 {
		q.poke(q.notify)
	}
	return enqueued, true
}

// restoreAppended re-establishes the heap invariant after a run of events was
// appended at index start. For a small run each element sifts up; for a run
// comparable to the heap size a full bottom-up heapify is cheaper (O(len)
// versus O(run·log len)). Caller holds q.mu.
func (q *eventQueue) restoreAppended(start int) {
	n := len(q.heap)
	run := n - start
	if run*bits.Len(uint(n)) > n {
		for i := n/2 - 1; i >= 0; i-- {
			q.siftDown(i, n)
		}
		return
	}
	for i := start; i < n; i++ {
		q.siftUp(i)
	}
}

// pushCrash enqueues a crash of process p at the absolute virtual time at. The
// dispatcher executes the crash inline when the event pops, so a scheduled
// crash is ordered against message deliveries and timer fires exactly by
// (at, seq) — deterministic for a seeded scenario.
func (q *eventQueue) pushCrash(p model.ProcessID, at int64) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.seq++
	q.heapPush(event{at: at, seq: q.seq, kind: evCrash, msg: Message{To: p}})
	q.mu.Unlock()
	q.poke(q.notify)
}

// scheduleTimer enqueues a fire of timer core tc's lease gen at the absolute
// virtual time at. tid is the lease's run-local id: unlike gen — which counts
// leases of a globally pooled core and therefore depends on process history —
// tid is drawn from this queue's own counter, so it is reproducible across
// runs and safe to hash into the trace digest.
func (q *eventQueue) scheduleTimer(tc *timerCore, at int64, gen, tid uint64) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.seq++
	q.heapPush(event{at: at, seq: q.seq, kind: evTimer, tm: tc, tgen: gen, tid: tid})
	q.mu.Unlock()
	q.poke(q.notify)
}

// nextLease hands out a run-local timer lease id.
func (q *eventQueue) nextLease() uint64 {
	q.mu.Lock()
	q.leases++
	id := q.leases
	q.mu.Unlock()
	return id
}

func (q *eventQueue) poke(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// fireDone records that a previously handed-out timer fire has been consumed
// (or abandoned), allowing the dispatcher to advance virtual time again.
func (q *eventQueue) fireDone() {
	q.outstanding.Add(-1)
	q.poke(q.consumed)
}

// gapYields is how many scheduler yields the free-running dispatcher grants
// runnable goroutines before letting virtual time jump forward over an empty
// stretch. It bounds the window in which a reactive send (e.g. an ack a
// protocol goroutine is about to issue) could be leapfrogged by a later
// timer. It is a heuristic, and it is exactly what step mode's quiescence
// handshake replaces: popStep needs no yields because an empty ready queue
// proves there is no runnable goroutine to wait for. Only the free-running
// ablation (WithFreeRunning, real time) still uses it, via popBatch.
const gapYields = 4

// popBatch blocks until the next event is due, then pops it AND every further
// event whose delivery time has already been reached, all under one lock
// acquisition, appending them to dst in (at, seq) order. It returns ok=false
// once the queue closes. popBatch must only be called by the single
// dispatcher goroutine.
//
// Batching matters because delivery is handoff-bound: popping one event per
// lock acquisition made the dispatcher trade the queue lock with senders once
// per message. A burst of same-instant deliveries (a broadcast, a frozen
// scenario batch, zero-delay traffic) now drains in a single critical
// section. Only events with at ≤ the (just advanced) virtual clock are
// drained, so batching never reorders anything: the batch is exactly the
// prefix the old one-at-a-time loop would have produced.
func (q *eventQueue) popBatch(dst []event) ([]event, bool) {
	yields := 0
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return dst, false
		}
		if q.held {
			q.mu.Unlock()
			select {
			case <-q.notify:
			case <-q.quit:
				return dst, false
			}
			continue
		}
		if len(q.heap) == 0 {
			q.mu.Unlock()
			select {
			case <-q.notify:
			case <-q.quit:
				return dst, false
			}
			continue
		}
		head := q.heap[0]
		if head.at > q.vnow {
			if q.realtime {
				wait := time.Duration(head.at) - time.Since(q.epoch)
				if wait > 0 {
					q.mu.Unlock()
					tm := time.NewTimer(wait)
					select {
					case <-tm.C:
					case <-q.notify:
					case <-q.quit:
						tm.Stop()
						return dst, false
					}
					tm.Stop()
					continue
				}
			} else if head.kind != evMessage {
				// Virtual time is about to jump to a timer deadline (or a
				// scheduled crash). First wait for every timer fire already
				// handed out to be consumed — a process still reacting to
				// "now" must not be outrun by the clock — then yield a few
				// times so runnable goroutines can schedule earlier events
				// (e.g. the ack a process is just about to send, which would
				// sort before this deadline). Message events need no such
				// pause: a message popping at now+delay cannot leapfrog
				// anything a running goroutine would still schedule, because
				// later sends are stamped from the later clock.
				if q.outstanding.Load() > 0 {
					q.mu.Unlock()
					select {
					case <-q.consumed:
					case <-q.notify:
					case <-q.quit:
						return dst, false
					}
					continue
				}
				if yields < gapYields {
					yields++
					q.mu.Unlock()
					runtime.Gosched()
					continue
				}
			}
		}
		// Advance the clock to the head event, then drain every event that is
		// due by the new now. In real-time mode "due" is measured against the
		// wall clock so a late dispatcher catches up in one batch.
		limit := q.vnow
		if head.at > limit {
			limit = head.at
		}
		if q.realtime {
			if elapsed := int64(time.Since(q.epoch)); elapsed > limit {
				limit = elapsed
			}
		}
		for len(q.heap) > 0 && q.heap[0].at <= limit {
			dst = append(dst, q.heap[0])
			q.heapPopHead()
		}
		if limit > q.vnow {
			q.vnow = limit
			q.vnowAtomic.Store(limit)
		}
		q.mu.Unlock()
		return dst, true
	}
}

// stepResult is what popStep tells the step-mode dispatcher to do next.
type stepResult uint8

const (
	stepClosed stepResult = iota // queue closed; dispatcher exits
	stepGrant                    // ready tasks pending; run them to quiescence
	stepEvent                    // one event popped; deliver it
)

// popStep is popBatch's step-mode replacement: it blocks until there is work
// and hands the dispatcher exactly one unit of it — a pending task grant
// (which always takes priority, so a delivery's wake cascade settles before
// the next event) or a single popped event with the virtual clock advanced to
// its timestamp. Because the network is provably quiescent whenever the ready
// queue is empty, registered tasks need no yield-loop heuristic before the
// clock jumps to a timer deadline: there is no runnable task to outrun. Two
// residues of the free-running machinery remain, both for goroutines the
// quiescence proof cannot see. The outstanding-fire wait covers legacy
// channel-fed timer consumers (Timer.C readers outside the task discipline,
// e.g. raw-network tests); task-bound timers never touch the outstanding
// counter. The bounded yield covers goroutines that have not yet reached
// AdoptTask: on GOMAXPROCS=1 the grant handshake's channel handoffs keep
// reinstalling dispatcher/task as the scheduler's next-run goroutine, which
// can starve a runnable-but-unadopted caller for a whole preemption timeslice
// (~10ms wall) while virtual time gallops through its poll ticks — so before
// jumping the clock the dispatcher yields a few times to let such callers
// run and register. Adoption order by racing plain goroutines is wall-clock
// nondeterministic either way (such callers are never part of a trace
// group), so the yield costs nothing from the trace contract. popStep must
// only be called by the single dispatcher goroutine.
func (q *eventQueue) popStep(s *stepper) (event, stepResult) {
	yields := 0
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return event{}, stepClosed
		}
		if q.held {
			q.mu.Unlock()
			select {
			case <-q.notify:
			case <-q.quit:
				return event{}, stepClosed
			}
			continue
		}
		if s.readyPending() {
			q.mu.Unlock()
			return event{}, stepGrant
		}
		if len(q.heap) == 0 {
			q.mu.Unlock()
			select {
			case <-q.notify:
			case <-q.quit:
				return event{}, stepClosed
			}
			continue
		}
		head := q.heap[0]
		if head.at > q.vnow && head.kind != evMessage {
			if q.outstanding.Load() > 0 {
				q.mu.Unlock()
				select {
				case <-q.consumed:
				case <-q.notify:
				case <-q.quit:
					return event{}, stepClosed
				}
				continue
			}
			if yields < gapYields {
				yields++
				q.mu.Unlock()
				runtime.Gosched()
				continue
			}
		}
		ev := q.heap[0]
		q.heapPopHead()
		if ev.at > q.vnow {
			q.vnow = ev.at
			q.vnowAtomic.Store(ev.at)
		}
		q.mu.Unlock()
		return ev, stepEvent
	}
}

// setHeld pauses or resumes dispatch; see Network.Freeze.
func (q *eventQueue) setHeld(held bool) {
	q.mu.Lock()
	q.held = held
	q.mu.Unlock()
	if !held {
		q.poke(q.notify)
	}
}

// close shuts the queue down and returns the number of message events it
// discarded, so the caller can keep sent == delivered + dropped balanced.
func (q *eventQueue) close() int {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0
	}
	q.closed = true
	dropped := 0
	for _, ev := range q.heap {
		if ev.kind == evMessage {
			dropped++
		}
	}
	q.heap = nil
	q.mu.Unlock()
	close(q.quit)
	return dropped
}

// --- min-heap on []event, ordered by (at, seq) ---
//
// Hand-rolled instead of container/heap so events stay values in the backing
// slice: no interface boxing, hence no per-message allocation on the delivery
// path.

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) heapPush(ev event) {
	q.heap = append(q.heap, ev)
	q.siftUp(len(q.heap) - 1)
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *eventQueue) siftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(q.heap[l], q.heap[smallest]) {
			smallest = l
		}
		if r < n && eventLess(q.heap[r], q.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

func (q *eventQueue) heapPopHead() {
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap[n] = event{} // release payload reference
	q.heap = q.heap[:n]
	q.siftDown(0, n)
}
