package net

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"weakestfd/internal/model"
	"weakestfd/internal/trace"
)

func TestClock(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("Now = %d", c.Now())
	}
	if c.Tick() != 1 || c.Tick() != 2 || c.Now() != 2 {
		t.Fatalf("Tick sequence wrong")
	}
}

func TestSendAndReceive(t *testing.T) {
	nw := NewNetwork(3, WithSeed(42))
	defer nw.Close()

	ep0, ep1 := nw.Endpoint(0), nw.Endpoint(1)
	inbox := ep1.Subscribe("test")
	ep0.Send(1, "test", "hello", 99)

	select {
	case msg := <-inbox:
		if msg.From != 0 || msg.To != 1 || msg.Type != "hello" || msg.Payload.(int) != 99 {
			t.Fatalf("message = %+v", msg)
		}
		if msg.String() != "p0->p1 test/hello" {
			t.Fatalf("String = %q", msg.String())
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("message not delivered")
	}
}

func TestBroadcastReachesAllIncludingSelf(t *testing.T) {
	nw := NewNetwork(4, WithSeed(7))
	defer nw.Close()

	inboxes := make([]<-chan Message, 4)
	for i := 0; i < 4; i++ {
		inboxes[i] = nw.Endpoint(model.ProcessID(i)).Subscribe("bc")
	}
	nw.Endpoint(2).Broadcast("bc", "ping", nil)

	for i, in := range inboxes {
		select {
		case msg := <-in:
			if msg.From != 2 || msg.Type != "ping" {
				t.Fatalf("process %d got %+v", i, msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("process %d never received broadcast", i)
		}
	}
}

func TestSubscribeAfterDeliveryDoesNotLoseMessages(t *testing.T) {
	nw := NewNetwork(2, WithSeed(3), WithDelays(0, 0))
	defer nw.Close()

	nw.Endpoint(0).Send(1, "late", "m", 1)
	time.Sleep(20 * time.Millisecond) // let delivery happen before anyone subscribes
	select {
	case msg := <-nw.Endpoint(1).Subscribe("late"):
		if msg.Payload.(int) != 1 {
			t.Fatalf("payload = %v", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("buffered message lost")
	}
}

func TestInstancesAreIsolated(t *testing.T) {
	nw := NewNetwork(2, WithSeed(5), WithDelays(0, 0))
	defer nw.Close()

	a := nw.Endpoint(1).Subscribe("a")
	b := nw.Endpoint(1).Subscribe("b")
	nw.Endpoint(0).Send(1, "a", "x", nil)

	select {
	case <-a:
	case <-time.After(2 * time.Second):
		t.Fatalf("instance a message missing")
	}
	select {
	case msg := <-b:
		t.Fatalf("instance b received foreign message %v", msg)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCrashStopsDeliveryAndSending(t *testing.T) {
	nw := NewNetwork(3, WithSeed(11), WithDelays(0, 0))
	defer nw.Close()

	victim := nw.Endpoint(1)
	inbox := victim.Subscribe("x")
	other := nw.Endpoint(2).Subscribe("x")

	nw.Crash(1)
	if !nw.Crashed(1) || !victim.Crashed() {
		t.Fatalf("crash flag not set")
	}
	select {
	case <-victim.Context().Done():
	case <-time.After(time.Second):
		t.Fatalf("context not cancelled on crash")
	}

	// Messages to the crashed process are dropped.
	nw.Endpoint(0).Send(1, "x", "m", nil)
	select {
	case msg := <-inbox:
		t.Fatalf("crashed process received %v", msg)
	case <-time.After(50 * time.Millisecond):
	}

	// Messages from the crashed process are dropped.
	victim.Send(2, "x", "m", nil)
	select {
	case msg := <-other:
		t.Fatalf("message from crashed process delivered: %v", msg)
	case <-time.After(50 * time.Millisecond):
	}

	// The crash is recorded in the failure pattern.
	if !nw.Pattern().Faulty().Contains(1) {
		t.Fatalf("crash not recorded in failure pattern")
	}
	if got := nw.Alive(); !got.Equal(model.NewProcessSet(0, 2)) {
		t.Fatalf("Alive = %v", got)
	}
}

func TestCrashIsIdempotent(t *testing.T) {
	nw := NewNetwork(2)
	defer nw.Close()
	nw.Crash(0)
	first := nw.Pattern().CrashTime(0)
	nw.Crash(0)
	if nw.Pattern().CrashTime(0) != first {
		t.Fatalf("second Crash changed the crash time")
	}
	if nw.Metrics().Get("crashes") != 1 {
		t.Fatalf("crashes counter = %d", nw.Metrics().Get("crashes"))
	}
}

func TestFIFOPerMailboxWithZeroDelay(t *testing.T) {
	// With zero injected delay a single sender's messages to one instance are
	// enqueued in order by the (serial) test goroutine and must come out in
	// FIFO order.
	nw := NewNetwork(2, WithDelays(0, 0))
	defer nw.Close()

	inbox := nw.Endpoint(1).Subscribe("fifo")
	const k = 50
	done := make(chan struct{})
	var got []int
	go func() {
		defer close(done)
		for i := 0; i < k; i++ {
			msg := <-inbox
			got = append(got, msg.Payload.(int))
		}
	}()
	for i := 0; i < k; i++ {
		nw.Endpoint(0).Send(1, "fifo", "n", i)
		time.Sleep(200 * time.Microsecond)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only received %d/%d messages", len(got), k)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out-of-order delivery at %d: %v", i, got[:i+1])
		}
	}
}

func TestMetricsCountsSends(t *testing.T) {
	m := trace.NewMetrics()
	nw := NewNetwork(3, WithMetrics(m), WithDelays(0, 0))
	defer nw.Close()

	nw.Endpoint(0).Broadcast("m", "t", nil)
	deadline := time.Now().Add(2 * time.Second)
	for m.Get("msgs.delivered") < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Get("msgs.sent") != 3 {
		t.Fatalf("msgs.sent = %d", m.Get("msgs.sent"))
	}
	if m.Get("msgs.sent.m") != 3 {
		t.Fatalf("msgs.sent.m = %d", m.Get("msgs.sent.m"))
	}
	if m.Get("msgs.delivered") != 3 {
		t.Fatalf("msgs.delivered = %d", m.Get("msgs.delivered"))
	}
}

func TestCloseDropsSubsequentSends(t *testing.T) {
	nw := NewNetwork(2, WithDelays(0, 0))
	inbox := nw.Endpoint(1).Subscribe("x")
	nw.Close()
	nw.Endpoint(0).Send(1, "x", "m", nil)
	select {
	case msg := <-inbox:
		t.Fatalf("message delivered after Close: %v", msg)
	case <-time.After(50 * time.Millisecond):
	}
	nw.Close() // second Close must be a no-op
}

func TestManyConcurrentSendersStress(t *testing.T) {
	nw := NewNetwork(5, WithSeed(99))
	defer nw.Close()

	const perSender = 40
	var wg sync.WaitGroup
	received := make(chan int, 5*5*perSender)
	for i := 0; i < 5; i++ {
		inbox := nw.Endpoint(model.ProcessID(i)).Subscribe("stress")
		go func() {
			for msg := range inbox {
				received <- msg.Payload.(int)
			}
		}()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				nw.Endpoint(model.ProcessID(id)).Broadcast("stress", "n", id*1000+j)
			}
		}(i)
	}
	wg.Wait()
	want := 5 * 5 * perSender
	deadline := time.After(10 * time.Second)
	for i := 0; i < want; i++ {
		select {
		case <-received:
		case <-deadline:
			t.Fatalf("received %d/%d messages", i, want)
		}
	}
}

func TestInvalidConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewNetwork(0) did not panic")
		}
	}()
	NewNetwork(0)
}

func TestSendOutOfRangePanics(t *testing.T) {
	nw := NewNetwork(2)
	defer nw.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("send to out-of-range process did not panic")
		}
	}()
	nw.Endpoint(0).Send(5, "x", "m", nil)
}

func TestEndpointAccessors(t *testing.T) {
	nw := NewNetwork(3)
	defer nw.Close()
	ep := nw.Endpoint(2)
	if ep.ID() != 2 || ep.N() != 3 || ep.Network() != nw || ep.Clock() != nw.Clock() {
		t.Fatalf("accessors wrong")
	}
	if fmt.Sprint(ep.ID()) != "p2" {
		t.Fatalf("ID string = %v", ep.ID())
	}
}
